package faultmodel

import (
	"math"
	"math/rand"
	"testing"

	"fidelity/internal/accel"
	"fidelity/internal/nn"
	"fidelity/internal/numerics"
	"fidelity/internal/tensor"
)

func deriveNVDLA(t *testing.T) []Model {
	t.Helper()
	models, err := Derive(accel.NVDLASmall())
	if err != nil {
		t.Fatal(err)
	}
	return models
}

// The derived model set must reproduce Table II: seven rows with the paper's
// %FF and RF values.
func TestDeriveMatchesTableII(t *testing.T) {
	models := deriveNVDLA(t)
	if len(models) != 7 {
		t.Fatalf("derived %d models, want 7", len(models))
	}
	want := map[ID]struct {
		frac     float64
		rf       int
		allUsers bool
		all      bool
	}{
		BeforeCBUFInput:  {frac: 0.025, allUsers: true},
		BeforeCBUFWeight: {frac: 0.048, allUsers: true},
		CBUFMACInput:     {frac: 0.162, rf: 16},
		CBUFMACWeight:    {frac: 0.216, rf: 16},
		OutputPSum:       {frac: 0.379, rf: 1},
		LocalControl:     {frac: 0.057, rf: 1},
		GlobalControl:    {frac: 0.113, all: true},
	}
	for id, w := range want {
		m, err := ByID(models, id)
		if err != nil {
			t.Fatalf("missing model %v", id)
		}
		if math.Abs(m.FFFrac-w.frac) > 1e-9 {
			t.Errorf("%v FFFrac = %v, want %v", id, m.FFFrac, w.frac)
		}
		if m.RF != w.rf || m.RFAllUsers != w.allUsers || m.RFAll != w.all {
			t.Errorf("%v RF=(%d,%v,%v), want (%d,%v,%v)", id, m.RF, m.RFAllUsers, m.RFAll, w.rf, w.allUsers, w.all)
		}
	}
	// %FF column must cover the whole design.
	var sum float64
	for _, m := range models {
		sum += m.FFFrac
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("FF fractions sum to %v", sum)
	}
}

func TestDeriveRejectsBadConfig(t *testing.T) {
	cfg := accel.NVDLASmall()
	cfg.AtomicK = 0
	if _, err := Derive(cfg); err == nil {
		t.Error("invalid config should fail")
	}
}

func TestByIDMissing(t *testing.T) {
	if _, err := ByID(nil, GlobalControl); err == nil {
		t.Error("empty set should fail")
	}
}

func TestIDStrings(t *testing.T) {
	for _, id := range AllIDs() {
		if id.String() == "" {
			t.Errorf("empty string for %d", int(id))
		}
	}
	if ID(99).String() == "" {
		t.Error("unknown ID string empty")
	}
}

// Build a small conv site + execution for plan tests.
func convExec(t *testing.T, codec numerics.Codec, seed int64) (nn.Site, *nn.Operands) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	conv := nn.NewConv2D("conv", 3, 3, 4, 32, 1, 1, codec).InitRandom(rng, 0.3)
	x := tensor.New(1, 6, 6, 4)
	x.RandNormal(rng, 1)
	x.Apply(codec.Round)
	out := conv.Forward(x, nil)
	return conv, &nn.Operands{In: x, W: conv.W, B: conv.B, Out: out}
}

func newSampler(t *testing.T, seed int64) *Sampler {
	t.Helper()
	s, err := NewSampler(deriveNVDLA(t), seed)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSamplerRejectsIncompleteSet(t *testing.T) {
	if _, err := NewSampler(nil, 1); err == nil {
		t.Error("empty model set should fail")
	}
}

func TestPlanGlobalControl(t *testing.T) {
	s := newSampler(t, 1)
	site, op := convExec(t, numerics.MustCodec(numerics.FP16, 0), 1)
	p, err := s.Plan(GlobalControl, site, 0, op)
	if err != nil {
		t.Fatal(err)
	}
	if !p.GlobalFailure {
		t.Error("global control plan must mark system failure")
	}
	if ch := Apply(p, site, op); ch != nil {
		t.Error("global plan must not patch outputs")
	}
}

func TestPlanLocalControl(t *testing.T) {
	s := newSampler(t, 2)
	codec := numerics.MustCodec(numerics.FP16, 0)
	site, op := convExec(t, codec, 2)
	golden := op.Out.Clone()
	p, err := s.Plan(LocalControl, site, 0, op)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Neurons) != 1 {
		t.Fatalf("local control RF must be 1, got %d neurons", len(p.Neurons))
	}
	changes := Apply(p, site, op)
	if len(changes) != 1 {
		t.Fatalf("changes = %d", len(changes))
	}
	diffs := golden.DiffIndices(op.Out, 0)
	if len(diffs) != 1 {
		t.Fatalf("exactly one neuron must change, got %d", len(diffs))
	}
	if got := op.Out.Data()[diffs[0]]; got != p.RandomValue {
		t.Errorf("patched value %v != plan value %v", got, p.RandomValue)
	}
}

func TestPlanOutputPSum(t *testing.T) {
	s := newSampler(t, 3)
	codec := numerics.MustCodec(numerics.FP16, 0)
	site, op := convExec(t, codec, 3)
	golden := op.Out.Clone()
	p, err := s.Plan(OutputPSum, site, 0, op)
	if err != nil {
		t.Fatal(err)
	}
	changes := Apply(p, site, op)
	if len(changes) != 1 {
		t.Fatalf("changes = %d", len(changes))
	}
	// The faulty value must be exactly a bit-flip of the golden value.
	c := changes[0]
	if codec.FlipBit(c.Golden, p.Bit) != c.Faulty {
		t.Errorf("faulty %v is not bit %d flip of %v", c.Faulty, p.Bit, c.Golden)
	}
	if len(golden.DiffIndices(op.Out, 0)) != 1 {
		t.Error("exactly one neuron must change")
	}
}

// CBUF→MAC input model on conv: the faulty neurons must share one 2-D
// position and span consecutive channels (Fig 2a target a4 pattern), and all
// patched values must equal a full recomputation with the flipped input.
func TestPlanCBUFMACInputConv(t *testing.T) {
	s := newSampler(t, 4)
	codec := numerics.MustCodec(numerics.FP16, 0)
	site, op := convExec(t, codec, 4)
	p, err := s.Plan(CBUFMACInput, site, 0, op)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Neurons) == 0 || len(p.Neurons) > 16 {
		t.Fatalf("neuron window = %d, want 1..16", len(p.Neurons))
	}
	first := p.Neurons[0]
	for i, idx := range p.Neurons {
		if idx[0] != first[0] || idx[1] != first[1] || idx[2] != first[2] {
			t.Errorf("neuron %d not at same 2D position: %v vs %v", i, idx, first)
		}
		if i > 0 && idx[3] != p.Neurons[i-1][3]+1 {
			t.Errorf("channels not consecutive at %d", i)
		}
	}
	// Verify patched values against brute-force recomputation.
	conv := site.(*nn.Conv2D)
	x2 := op.In.Clone()
	x2.Data()[p.Override.Flat] = codec.FlipBit(x2.Data()[p.Override.Flat], p.Bit)
	ref := conv.Forward(x2, nil)
	Apply(p, site, op)
	for _, idx := range p.Neurons {
		if got, want := op.Out.At(idx...), ref.At(idx...); got != want {
			t.Fatalf("patched %v = %v, want %v", idx, got, want)
		}
	}
}

// CBUF→MAC weight model on conv: ≤16 neurons, all in one output channel,
// consecutive in row-major order (Fig 2a target a1/a2 pattern).
func TestPlanCBUFMACWeightConv(t *testing.T) {
	s := newSampler(t, 5)
	codec := numerics.MustCodec(numerics.FP16, 0)
	site, op := convExec(t, codec, 5)
	sizes := map[int]bool{}
	for trial := 0; trial < 50; trial++ {
		p, err := s.Plan(CBUFMACWeight, site, 0, op)
		if err != nil {
			t.Fatal(err)
		}
		if len(p.Neurons) == 0 || len(p.Neurons) > 16 {
			t.Fatalf("neuron window = %d, want 1..16", len(p.Neurons))
		}
		sizes[len(p.Neurons)] = true
		oc := p.Neurons[0][3]
		for _, idx := range p.Neurons {
			if idx[3] != oc {
				t.Fatalf("weight fault crossed output channels: %v", p.Neurons)
			}
		}
	}
	// The random hold-window offset must produce varying subset sizes
	// ("all or a subset of 16").
	if len(sizes) < 5 {
		t.Errorf("weight subset sizes should vary, got %v", sizes)
	}
}

// Before-CBUF weight model on conv must corrupt all users of the weight:
// every spatial position of one output channel.
func TestPlanBeforeCBUFWeightConv(t *testing.T) {
	s := newSampler(t, 6)
	codec := numerics.MustCodec(numerics.FP16, 0)
	site, op := convExec(t, codec, 6)
	p, err := s.Plan(BeforeCBUFWeight, site, 0, op)
	if err != nil {
		t.Fatal(err)
	}
	os := op.Out.Shape()
	if len(p.Neurons) != os[0]*os[1]*os[2] {
		t.Fatalf("before-CBUF weight affects %d neurons, want %d (all positions of one channel)",
			len(p.Neurons), os[0]*os[1]*os[2])
	}
	golden := op.Out.Clone()
	changes := Apply(p, site, op)
	// Every change must be inside the predicted set.
	pred := map[int]bool{}
	for _, idx := range p.Neurons {
		pred[op.Out.Offset(idx...)] = true
	}
	for _, c := range changes {
		if !pred[c.Flat] {
			t.Errorf("change at %d outside predicted set", c.Flat)
		}
	}
	// And the patch must equal brute-force recomputation.
	conv := site.(*nn.Conv2D)
	w2 := conv.W.Clone()
	w2.Data()[p.Override.Flat] = codec.FlipBit(w2.Data()[p.Override.Flat], p.Bit)
	ref := nn.NewConv2D("ref", 3, 3, 4, 32, 1, 1, codec)
	ref.W, ref.B = w2, conv.B
	refOut := ref.Forward(op.In, nil)
	if diffs := refOut.DiffIndices(op.Out, 0); len(diffs) != 0 {
		t.Errorf("patched output differs from brute-force at %d neurons", len(diffs))
	}
	_ = golden
}

// FC plans: CBUF→MAC input affects RF consecutive output neurons; weight
// affects the same output neuron across consecutive batch rows.
func TestPlanFCPatterns(t *testing.T) {
	s := newSampler(t, 7)
	codec := numerics.MustCodec(numerics.FP16, 0)
	rng := rand.New(rand.NewSource(7))
	fc := nn.NewDense("fc", 64, 48, codec).InitRandom(rng, 0.2)
	x := tensor.New(20, 64) // 20 "rows" (e.g. sequence positions)
	x.RandNormal(rng, 1)
	x.Apply(codec.Round)
	out := fc.Forward(x, nil)
	op := &nn.Operands{In: x, W: fc.W, B: fc.B, Out: out}

	p, err := s.Plan(CBUFMACInput, fc, 0, op)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Neurons) == 0 || len(p.Neurons) > 16 {
		t.Fatalf("FC input window = %d", len(p.Neurons))
	}
	b := p.Neurons[0][0]
	for i, idx := range p.Neurons {
		if idx[0] != b {
			t.Error("FC input fault crossed batch rows")
		}
		if i > 0 && idx[1] != p.Neurons[i-1][1]+1 {
			t.Error("FC input neurons not consecutive")
		}
	}

	p, err = s.Plan(CBUFMACWeight, fc, 0, op)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Neurons) == 0 || len(p.Neurons) > 16 {
		t.Fatalf("FC weight window = %d", len(p.Neurons))
	}
	o := p.Neurons[0][1]
	for _, idx := range p.Neurons {
		if idx[1] != o {
			t.Error("FC weight fault must hit one output neuron index across rows")
		}
	}
}

// MatMul plans: input affects consecutive neurons of one row, weight affects
// consecutive neurons of one column.
func TestPlanMatMulPatterns(t *testing.T) {
	s := newSampler(t, 8)
	codec := numerics.MustCodec(numerics.FP16, 0)
	rng := rand.New(rand.NewSource(8))
	mm := nn.NewMatMulSite("mm", false, 0, codec)
	a, b := tensor.New(24, 32), tensor.New(32, 24)
	a.RandNormal(rng, 1)
	b.RandNormal(rng, 1)
	out := mm.Run(a, b, nil)
	op := &nn.Operands{In: a, W: b, Out: out}

	p, err := s.Plan(CBUFMACInput, mm, 0, op)
	if err != nil {
		t.Fatal(err)
	}
	row := p.Neurons[0][0]
	for _, idx := range p.Neurons {
		if idx[0] != row {
			t.Error("matmul input fault crossed rows")
		}
	}
	p, err = s.Plan(CBUFMACWeight, mm, 0, op)
	if err != nil {
		t.Fatal(err)
	}
	col := p.Neurons[0][1]
	for _, idx := range p.Neurons {
		if idx[1] != col {
			t.Error("matmul weight fault crossed columns")
		}
	}
}

// Quantized datapaths: the flipped operand and patched outputs stay within
// codec-representable values.
func TestPlanQuantizedRepresentable(t *testing.T) {
	s := newSampler(t, 9)
	codec := numerics.MustCodec(numerics.INT8, 8)
	site, op := convExec(t, codec, 9)
	for _, id := range []ID{CBUFMACInput, CBUFMACWeight, OutputPSum} {
		p, err := s.Plan(id, site, 0, op)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range Apply(p, site, op) {
			if codec.Round(c.Faulty) != c.Faulty {
				t.Errorf("%v: faulty value %v not representable in INT8", id, c.Faulty)
			}
		}
	}
}

package faultmodel

import (
	"fmt"
	"math/rand"

	"fidelity/internal/nn"
)

// Plan is one concrete, fully sampled fault-injection instance: the software
// realization of a single-cycle FF bit-flip at a random fault site mapped
// onto one layer execution.
type Plan struct {
	// Model is the software fault model applied.
	Model ID
	// SiteName names the layer execution targeted.
	SiteName string
	// Visit is the execution count of the site to target (for sites that
	// run multiple times per inference, e.g. LSTM gates).
	Visit int

	// Override carries the flipped operand for datapath models that
	// recompute neurons (nil for OutputPSum/LocalControl/GlobalControl).
	Override *nn.Override
	// Bit is the flipped bit position.
	Bit int
	// ExtraBits lists additional bits flipped in the same register — the
	// paper's "multiple single-cycle bit-flips in a single register"
	// abstraction. Empty for plain SEUs.
	ExtraBits []int
	// Neurons are the output multi-indices to patch.
	Neurons [][]int
	// RandomValue is the replacement value for LocalControl plans.
	RandomValue float32
	// GlobalFailure marks a GlobalControl plan: the run is classified as a
	// system failure without executing.
	GlobalFailure bool
}

// countingSource wraps a math/rand source and counts state advances, so a
// sampler's exact position in its deterministic random stream can be
// exported (SamplerState) and restored (NewSamplerAt). Both Int63 and Uint64
// advance the underlying generator by exactly one step, so a single draw
// counter captures the position regardless of which rand.Rand methods pulled
// from the source.
type countingSource struct {
	src   rand.Source64
	draws uint64
}

func (c *countingSource) Int63() int64   { c.draws++; return c.src.Int63() }
func (c *countingSource) Uint64() uint64 { c.draws++; return c.src.Uint64() }
func (c *countingSource) Seed(s int64)   { c.src.Seed(s); c.draws = 0 }

// SamplerState is an exportable position in a sampler's random stream: the
// seed plus the number of source draws consumed so far. Restoring it with
// NewSamplerAt continues the exact stream, which is what lets an interrupted
// campaign resume without replaying completed experiments.
type SamplerState struct {
	Seed  int64  `json:"seed"`
	Draws uint64 `json:"draws"`
}

// Sampler draws fault-injection plans using the accelerator's reuse
// parameters (RF and neuron patterns per layer kind from Table II).
type Sampler struct {
	models map[ID]Model
	rf     int // the CBUF→MAC reuse factor (16 for NVDLA)
	seed   int64
	src    *countingSource
	rng    *rand.Rand
}

// NewSampler builds a sampler over a derived model set.
func NewSampler(models []Model, seed int64) (*Sampler, error) {
	byID := make(map[ID]Model, len(models))
	for _, m := range models {
		byID[m.ID] = m
	}
	cm, ok := byID[CBUFMACInput]
	if !ok || cm.RF <= 0 {
		return nil, fmt.Errorf("faultmodel: model set lacks a CBUF→MAC input model with positive RF")
	}
	src := &countingSource{src: NewStreamSource(seed)}
	return &Sampler{models: byID, rf: cm.RF, seed: seed, src: src, rng: rand.New(src)}, nil
}

// NewSamplerAt builds a sampler positioned at a previously exported state by
// fast-forwarding the stream past the consumed draws. The continuation is
// bit-identical to the original sampler's.
func NewSamplerAt(models []Model, st SamplerState) (*Sampler, error) {
	s, err := NewSampler(models, st.Seed)
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < st.Draws; i++ {
		s.src.src.Uint64()
	}
	s.src.draws = st.Draws
	return s, nil
}

// State exports the sampler's stream position for checkpointing.
func (s *Sampler) State() SamplerState {
	return SamplerState{Seed: s.seed, Draws: s.src.draws}
}

// Reseed repositions the sampler at the start of a fresh stream without
// rebuilding the model tables. Campaigns call it before every experiment to
// give each one an independent, cursor-derived stream: a panicking or hung
// experiment then cannot perturb the draws of any other experiment.
func (s *Sampler) Reseed(seed int64) {
	s.seed = seed
	s.src.Seed(seed)
}

// RF returns the CBUF→MAC reuse factor of the sampled design.
func (s *Sampler) RF() int { return s.rf }

// Rand exposes the sampler's RNG for callers that need coordinated
// randomness (e.g. input selection in campaigns).
func (s *Sampler) Rand() *rand.Rand { return s.rng }

// Plan samples a concrete injection for model id against one recorded layer
// execution. op must be the operand set of that execution (shapes only are
// used for sampling; values are read at apply time).
func (s *Sampler) Plan(id ID, site nn.Site, visit int, op *nn.Operands) (*Plan, error) {
	m, ok := s.models[id]
	if !ok {
		return nil, fmt.Errorf("faultmodel: unknown model %v", id)
	}
	p := &Plan{Model: id, SiteName: site.Name(), Visit: visit}
	switch id {
	case GlobalControl:
		p.GlobalFailure = true
		return p, nil

	case LocalControl:
		// RF = 1: one random output neuron receives a non-deterministic
		// value, modeled as a uniformly random bit pattern of the datapath
		// width (Sec. III-C).
		flat := s.rng.Intn(op.Out.Size())
		p.Neurons = [][]int{op.Out.Unflatten(flat)}
		codec := site.Codec()
		bits := uint32(s.rng.Int63()) & (uint32(1)<<uint(codec.Bits()) - 1)
		p.RandomValue = codec.Decode(bits)
		return p, nil

	case OutputPSum:
		// RF = 1: a bit-flip in the stored value of one output neuron.
		flat := s.rng.Intn(op.Out.Size())
		p.Neurons = [][]int{op.Out.Unflatten(flat)}
		p.Bit = s.rng.Intn(site.Codec().Bits())
		return p, nil

	case BeforeCBUFInput, BeforeCBUFWeight:
		kind := nn.OperandInput
		target := op.In
		if id == BeforeCBUFWeight {
			kind = nn.OperandWeight
			target = op.W
		}
		if target == nil {
			return nil, fmt.Errorf("faultmodel: site %s has no %v operand", site.Name(), kind)
		}
		flat := s.rng.Intn(target.Size())
		p.Bit = s.rng.Intn(site.Codec().Bits())
		p.Override = &nn.Override{Kind: kind, Flat: flat}
		// All neurons that use the value (Table I row 1: determined by the
		// scheduling/reuse algorithm — values in the on-chip buffer are
		// reused for every MAC operation involving them). A buffer entry
		// that no output consumes (e.g. an input pixel skipped by a strided
		// kernel) yields an empty set: the fault is architecturally masked.
		p.Neurons = site.NeuronsUsingOperand(op, kind, flat)
		return p, nil

	case CBUFMACInput:
		return s.planCBUFInput(p, m, site, op)

	case CBUFMACWeight:
		return s.planCBUFWeight(p, m, site, op)
	}
	return nil, fmt.Errorf("faultmodel: unhandled model %v", id)
}

// planCBUFInput realizes the Table II CBUF→MAC input row: the faulty input
// value reaches the RF parallel compute units, so RF neurons that share the
// value are corrupted. The RF-neuron window follows the layer kind's
// schedule mapping.
func (s *Sampler) planCBUFInput(p *Plan, m Model, site nn.Site, op *nn.Operands) (*Plan, error) {
	if op.In == nil {
		return nil, fmt.Errorf("faultmodel: site %s has no input operand", site.Name())
	}
	// Only values that actually stream through the broadcast register can be
	// struck there, so resample until the element has users (strided kernels
	// can leave some buffer entries unread).
	var flat int
	var users [][]int
	for try := 0; ; try++ {
		flat = s.rng.Intn(op.In.Size())
		users = site.NeuronsUsingOperand(op, nn.OperandInput, flat)
		if len(users) > 0 {
			break
		}
		if try >= 64 {
			return nil, fmt.Errorf("faultmodel: no used input element found at site %s", site.Name())
		}
	}
	p.Bit = s.rng.Intn(site.Codec().Bits())
	p.Override = &nn.Override{Kind: nn.OperandInput, Flat: flat}
	switch site.Kind() {
	case nn.KindConv:
		// RF neurons at the same 2-D position spanning RF consecutive
		// channels (Fig 2a target a4). Pick one using position, then the
		// aligned channel block containing its channel.
		u := users[s.rng.Intn(len(users))]
		cdim := op.Out.Dim(op.Out.Rank() - 1)
		c0 := (u[len(u)-1] / s.rf) * s.rf
		p.Neurons = nil
		for c := c0; c < c0+s.rf && c < cdim; c++ {
			idx := append(append([]int(nil), u[:len(u)-1]...), c)
			p.Neurons = append(p.Neurons, idx)
		}
	default:
		// FC: RF consecutive output neurons of the using row; MatMul: RF
		// consecutive neurons in the using output row. users are already
		// ordered along that row.
		start := (s.rng.Intn(len(users)) / s.rf) * s.rf
		end := start + s.rf
		if end > len(users) {
			end = len(users)
		}
		p.Neurons = users[start:end]
	}
	return p, nil
}

// planCBUFWeight realizes the Table II CBUF→MAC weight row: the weight
// register holds its value for up to RF cycles, so a random injection cycle
// corrupts a suffix of the RF-neuron window — "all or a subset of" the RF
// consecutive neurons that reuse the weight (Fig 2a target a2).
func (s *Sampler) planCBUFWeight(p *Plan, m Model, site nn.Site, op *nn.Operands) (*Plan, error) {
	if op.W == nil {
		return nil, fmt.Errorf("faultmodel: site %s has no weight operand", site.Name())
	}
	var flat int
	var users [][]int
	for try := 0; ; try++ {
		flat = s.rng.Intn(op.W.Size())
		users = site.NeuronsUsingOperand(op, nn.OperandWeight, flat)
		if len(users) > 0 {
			break
		}
		if try >= 64 {
			return nil, fmt.Errorf("faultmodel: no used weight element found at site %s", site.Name())
		}
	}
	p.Bit = s.rng.Intn(site.Codec().Bits())
	p.Override = &nn.Override{Kind: nn.OperandWeight, Flat: flat}
	// Model the random injection cycle within the hold window: choose an
	// aligned RF window along the users sequence, then keep a random suffix
	// (reuse.Result.SampleSubset semantics: neurons with timestamp >= p).
	start := (s.rng.Intn(len(users)) / s.rf) * s.rf
	end := start + s.rf
	if end > len(users) {
		end = len(users)
	}
	window := users[start:end]
	suffix := s.rng.Intn(len(window)) // p in [0, window)
	p.Neurons = window[suffix:]
	return p, nil
}

// Apply executes a plan against a live layer execution, patching op.Out in
// place. It returns the list of (flat index, golden, faulty) changes for
// outcome analysis.
func Apply(p *Plan, site nn.Site, op *nn.Operands) []Change {
	if p.GlobalFailure {
		return nil
	}
	var changes []Change
	codec := site.Codec()
	switch p.Model {
	case LocalControl:
		idx := p.Neurons[0]
		old := op.Out.At(idx...)
		op.Out.Set(p.RandomValue, idx...)
		changes = append(changes, Change{Flat: op.Out.Offset(idx...), Golden: old, Faulty: p.RandomValue})

	case OutputPSum:
		idx := p.Neurons[0]
		old := op.Out.At(idx...)
		faulty := codec.FlipBit(old, p.Bit)
		for _, b := range p.ExtraBits {
			faulty = codec.FlipBit(faulty, b)
		}
		op.Out.Set(faulty, idx...)
		changes = append(changes, Change{Flat: op.Out.Offset(idx...), Golden: old, Faulty: faulty})

	default:
		// Datapath recompute models: flip the stored operand bit and
		// recompute every affected neuron with the override.
		ov := *p.Override
		var stored float32
		switch ov.Kind {
		case nn.OperandInput:
			stored = op.In.Data()[ov.Flat]
		case nn.OperandWeight:
			stored = op.W.Data()[ov.Flat]
		case nn.OperandBias:
			stored = op.B.Data()[ov.Flat]
		}
		ov.Value = codec.FlipBit(stored, p.Bit)
		for _, b := range p.ExtraBits {
			ov.Value = codec.FlipBit(ov.Value, b)
		}
		for _, idx := range p.Neurons {
			old := op.Out.At(idx...)
			faulty := site.ComputeNeuron(op, idx, &ov)
			if faulty != old {
				op.Out.Set(faulty, idx...)
				changes = append(changes, Change{Flat: op.Out.Offset(idx...), Golden: old, Faulty: faulty})
			}
		}
	}
	return changes
}

// Change records one patched output neuron.
type Change struct {
	// Flat is the row-major index into the layer output.
	Flat int
	// Golden and Faulty are the neuron values before and after injection.
	Golden, Faulty float32
}

package faultmodel

import (
	"math"
	"math/rand"
	"testing"
)

// Every campaign result in this repo is a function of the draws below: the
// sampler, the workload builders, the datasets, and the validation harness
// all seed from NewStreamSource. These golden sequences pin the generator
// bit-for-bit, so a Go toolchain bump, a refactor of stream.go, or an
// accidental switch to another source cannot silently shift every
// published number. The seed-0 sequence equals the SplitMix64 reference
// vectors from Steele et al.'s published implementation — if this test
// fails, the generator changed, and with it the identity of every
// checkpoint and StudyResult ever written.
func TestNewStreamSourceGoldenDraws(t *testing.T) {
	golden := map[int64][8]uint64{
		0: {0xe220a8397b1dcdaf, 0x6e789e6aa1b965f4, 0x06c45d188009454f, 0xf88bb8a8724c81ec,
			0x1b39896a51a8749b, 0x53cb9f0c747ea2ea, 0x2c829abe1f4532e1, 0xc584133ac916ab3c},
		1: {0x910a2dec89025cc1, 0xbeeb8da1658eec67, 0xf893a2eefb32555e, 0x71c18690ee42c90b,
			0x71bb54d8d101b5b9, 0xc34d0bff90150280, 0xe099ec6cd7363ca5, 0x85e7bb0f12278575},
		42: {0xbdd732262feb6e95, 0x28efe333b266f103, 0x47526757130f9f52, 0x581ce1ff0e4ae394,
			0x09bc585a244823f2, 0xde4431fa3c80db06, 0x37e9671c45376d5d, 0xccf635ee9e9e2fa4},
		-7: {0x6c1e186443822970, 0x7a87f4dabcf192aa, 0xe8313fe1d7350611, 0x28ceb6e1eddad0c2,
			0x90df7bd8aeb77931, 0xced1ff39db554c45, 0x8cf5d38fac285a78, 0x01b4b0d3e2abd63b},
	}
	for seed, want := range golden {
		src := NewStreamSource(seed)
		for i, w := range want {
			if got := src.Uint64(); got != w {
				t.Fatalf("seed %d draw %d: got %#x, want %#x", seed, i, got, w)
			}
		}
	}
}

// The engine wraps streams in *rand.Rand, so the derived draws (Intn,
// Float64, NormFloat64) depend on math/rand's derivation layer as well as
// on the source. Pin those too: math/rand's algorithms are frozen by the
// Go 1 compatibility promise, and this test turns that promise into a
// checked invariant of the campaign identity.
func TestStreamRandDerivedGoldenDraws(t *testing.T) {
	rng := rand.New(NewStreamSource(42))
	wantInts := []int{451, 953, 371, 935, 165, 597, 582, 863}
	for i, w := range wantInts {
		if got := rng.Intn(1000); got != w {
			t.Fatalf("Intn draw %d: got %d, want %d", i, got, w)
		}
	}
	wantFloats := []float64{0.33993103891702064, 0.6184820663561349, 0.20490183179877555, 0.4929891857946924}
	for i, w := range wantFloats {
		if got := rng.Float64(); got != w {
			t.Fatalf("Float64 draw %d: got %v, want %v", i, got, w)
		}
	}
	wantNorms := []float64{-0.6359704713073784, -0.6903276259932356, 0.6516915257958338, 0.37080548448197903}
	for i, w := range wantNorms {
		if got := rng.NormFloat64(); got != w || math.IsNaN(got) {
			t.Fatalf("NormFloat64 draw %d: got %v, want %v", i, got, w)
		}
	}
}

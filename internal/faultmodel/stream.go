package faultmodel

import "math/rand"

// splitMix64 is the SplitMix64 generator (Steele, Lea & Flood, "Fast
// Splittable Pseudorandom Number Generators", OOPSLA 2014): a 64-bit
// finalizer over a Weyl sequence. It backs the per-experiment sampling
// streams because campaigns reseed once or twice per experiment — once for
// the experiment itself and once to predict its target for batching — and
// math/rand's default lagged-Fibonacci source pays an O(607) warm-up loop
// per Seed, which measures at a fifth of short-campaign wall clock. Seeding
// SplitMix64 is one store; its output quality is ample for picking fault
// sites and bits.
type splitMix64 struct{ state uint64 }

func (s *splitMix64) Seed(seed int64) { s.state = uint64(seed) }

func (s *splitMix64) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *splitMix64) Int63() int64 { return int64(s.Uint64() >> 1) }

// NewStreamSource returns a source producing the exact stream a Sampler
// seeded (or Reseeded) at seed draws from. Injection target prediction uses
// it to replay the first draw of an experiment's stream without touching the
// live sampler.
func NewStreamSource(seed int64) rand.Source64 {
	return &splitMix64{state: uint64(seed)}
}

// Package faultmodel derives and applies the software fault models of the
// paper's Table II: for each flip-flop category of an accelerator, the model
// that reproduces — purely in software — the set of faulty output neurons
// and their faulty values caused by a single-cycle FF bit-flip.
//
// The models are derived from Reuse Factor Analysis (package reuse) plus the
// accelerator's scheduling/reuse algorithm, and are applied to live layer
// executions of the nn substrate via per-neuron recomputation with operand
// overrides.
package faultmodel

import (
	"fmt"

	"fidelity/internal/accel"
	"fidelity/internal/reuse"
)

// ID enumerates the software fault models (one per Table II row).
type ID int

const (
	// BeforeCBUFInput: one random bit-flip at one randomly chosen input,
	// affecting all neurons that use the input value.
	BeforeCBUFInput ID = iota
	// BeforeCBUFWeight: one random bit-flip at one randomly chosen weight,
	// affecting all neurons that use the weight value.
	BeforeCBUFWeight
	// CBUFMACInput: one random bit-flip at one randomly chosen input,
	// affecting the corresponding RF (=16 for NVDLA) faulty neurons.
	CBUFMACInput
	// CBUFMACWeight: one random bit-flip at one randomly chosen weight,
	// affecting the corresponding <= RF (=16) neurons.
	CBUFMACWeight
	// OutputPSum: one random bit-flip at one randomly chosen output neuron
	// or partial sum (RF = 1).
	OutputPSum
	// LocalControl: a random faulty value at one randomly chosen output
	// neuron (RF = 1; the effect of a control flip is non-deterministic).
	LocalControl
	// GlobalControl: system failure (a fault in an active global control FF
	// always results in application error or system anomaly).
	GlobalControl
)

// String returns a short model name.
func (id ID) String() string {
	switch id {
	case BeforeCBUFInput:
		return "beforeCBUF/input"
	case BeforeCBUFWeight:
		return "beforeCBUF/weight"
	case CBUFMACInput:
		return "cbuf2mac/input"
	case CBUFMACWeight:
		return "cbuf2mac/weight"
	case OutputPSum:
		return "output/psum"
	case LocalControl:
		return "local-control"
	case GlobalControl:
		return "global-control"
	default:
		return fmt.Sprintf("ID(%d)", int(id))
	}
}

// MarshalText encodes the ID as its short name, so maps keyed by ID
// serialize to readable JSON in campaign checkpoints and manifests.
func (id ID) MarshalText() ([]byte, error) { return []byte(id.String()), nil }

// UnmarshalText parses a short model name produced by MarshalText.
func (id *ID) UnmarshalText(b []byte) error {
	parsed, err := ParseID(string(b))
	if err != nil {
		return err
	}
	*id = parsed
	return nil
}

// ParseID resolves a short model name (the String form) back to its ID.
func ParseID(s string) (ID, error) {
	for _, id := range AllIDs() {
		if id.String() == s {
			return id, nil
		}
	}
	return 0, fmt.Errorf("faultmodel: unknown model name %q", s)
}

// AllIDs lists every model in Table II row order.
func AllIDs() []ID {
	return []ID{
		BeforeCBUFInput, BeforeCBUFWeight, CBUFMACInput, CBUFMACWeight,
		OutputPSum, LocalControl, GlobalControl,
	}
}

// Model is one derived software fault model: a Table II row.
type Model struct {
	ID ID
	// Cat is the FF category the model covers.
	Cat accel.Category
	// FFFrac is the fraction of the design's FFs covered (Table II "%FF").
	FFFrac float64
	// RF is the reuse factor; RFAllUsers marks layer-dependent "all neurons
	// using the value" reuse, and RFAll marks "a large number / all" (global
	// control).
	RF         int
	RFAllUsers bool
	RFAll      bool
	// Analysis is the Algorithm 1 result the RF was derived from, when the
	// category is analyzed via Algorithm 1 (CBUF→MAC and output categories).
	Analysis reuse.Result
}

// Derive produces the accelerator's software fault models from its config —
// the Table II generation step. The datapath rows come from Reuse Factor
// Analysis; the control rows follow Sec. III-B3.
func Derive(cfg *accel.Config) ([]Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	crs, err := reuse.AnalyzeNVDLACategories(cfg)
	if err != nil {
		return nil, err
	}
	byCat := make(map[accel.Category]reuse.CategoryResult, len(crs))
	for _, cr := range crs {
		byCat[cr.Cat] = cr
	}

	var models []Model
	for _, g := range cfg.Census {
		m := Model{Cat: g.Cat, FFFrac: g.Frac}
		switch g.Cat.Class {
		case accel.LocalControl:
			m.ID = LocalControl
			m.RF = 1
		case accel.GlobalControl:
			m.ID = GlobalControl
			m.RFAll = true
		default:
			cr, ok := byCat[g.Cat]
			if !ok {
				return nil, fmt.Errorf("faultmodel: no reuse analysis for category %v", g.Cat)
			}
			switch {
			case cr.AllUsers:
				m.RFAllUsers = true
				if g.Cat.Var == accel.VarInput {
					m.ID = BeforeCBUFInput
				} else {
					m.ID = BeforeCBUFWeight
				}
			case g.Cat.Pos == accel.CBUFToMAC && g.Cat.Var == accel.VarInput:
				m.ID = CBUFMACInput
				m.RF = cr.Result.RF
				m.Analysis = cr.Result
			case g.Cat.Pos == accel.CBUFToMAC && g.Cat.Var == accel.VarWeight:
				m.ID = CBUFMACWeight
				m.RF = cr.Result.RF
				m.Analysis = cr.Result
			default:
				m.ID = OutputPSum
				m.RF = cr.Result.RF
				m.Analysis = cr.Result
			}
		}
		models = append(models, m)
	}
	return models, nil
}

// ByID returns the model with the given ID from a derived set.
func ByID(models []Model, id ID) (Model, error) {
	for _, m := range models {
		if m.ID == id {
			return m, nil
		}
	}
	return Model{}, fmt.Errorf("faultmodel: no model %v in derived set", id)
}

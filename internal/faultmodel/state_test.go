package faultmodel

import (
	"encoding/json"
	"testing"

	"fidelity/internal/accel"
)

// A restored sampler must continue the exact random stream of the original:
// this is the property that makes interrupted campaigns resumable without
// replaying completed experiments.
func TestSamplerStateRoundTrip(t *testing.T) {
	models, err := Derive(accel.NVDLASmall())
	if err != nil {
		t.Fatal(err)
	}
	orig, err := NewSampler(models, 99)
	if err != nil {
		t.Fatal(err)
	}
	// Consume a mixed sequence of draw kinds, as campaigns do.
	for i := 0; i < 137; i++ {
		switch i % 3 {
		case 0:
			orig.Rand().Intn(1000)
		case 1:
			orig.Rand().Float64()
		default:
			orig.Rand().Int63()
		}
	}
	st := orig.State()
	if st.Seed != 99 || st.Draws == 0 {
		t.Fatalf("state = %+v", st)
	}
	restored, err := NewSamplerAt(models, st)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		a, b := orig.Rand().Int63(), restored.Rand().Int63()
		if a != b {
			t.Fatalf("draw %d diverged: %d vs %d", i, a, b)
		}
	}
	if orig.State() != restored.State() {
		t.Errorf("states diverged: %+v vs %+v", orig.State(), restored.State())
	}
}

// The counting source must not perturb the stream relative to the seed:
// two fresh samplers with the same seed are identical.
func TestSamplerDeterminism(t *testing.T) {
	models, err := Derive(accel.NVDLASmall())
	if err != nil {
		t.Fatal(err)
	}
	a, _ := NewSampler(models, 7)
	b, _ := NewSampler(models, 7)
	for i := 0; i < 64; i++ {
		if x, y := a.Rand().Uint64(), b.Rand().Uint64(); x != y {
			t.Fatalf("draw %d: %d vs %d", i, x, y)
		}
	}
}

func TestIDTextMarshal(t *testing.T) {
	for _, id := range AllIDs() {
		b, err := id.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var back ID
		if err := back.UnmarshalText(b); err != nil {
			t.Fatal(err)
		}
		if back != id {
			t.Errorf("%v round-tripped to %v", id, back)
		}
	}
	if _, err := ParseID("no-such-model"); err == nil {
		t.Error("unknown name should fail")
	}
	// Maps keyed by ID must serialize with readable keys.
	m := map[ID]int{CBUFMACInput: 3, GlobalControl: 1}
	blob, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back map[ID]int
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back[CBUFMACInput] != 3 || back[GlobalControl] != 1 {
		t.Errorf("map round trip: %v", back)
	}
}

package faultmodel

import (
	"math/rand"
	"testing"

	"fidelity/internal/accel"
	"fidelity/internal/nn"
	"fidelity/internal/numerics"
	"fidelity/internal/rtlsim"
	"fidelity/internal/tensor"
)

func TestPlanMemoryErrorsValidation(t *testing.T) {
	codec := numerics.MustCodec(numerics.FP16, 0)
	site, op := convExec(t, codec, 31)
	if _, err := PlanMemoryErrors(site, op, nil); err == nil {
		t.Error("empty error list should fail")
	}
	if _, err := PlanMemoryErrors(site, op, []MemoryError{{Kind: nn.OperandInput, Word: 1 << 30, Bits: []int{0}}}); err == nil {
		t.Error("out-of-range word should fail")
	}
	if _, err := PlanMemoryErrors(site, op, []MemoryError{{Kind: nn.OperandInput, Word: 0}}); err == nil {
		t.Error("no bits should fail")
	}
	if _, err := PlanMemoryErrors(site, op, []MemoryError{{Kind: nn.OperandOutput, Word: 0, Bits: []int{0}}}); err == nil {
		t.Error("output buffer should fail")
	}
}

// A single-bit memory error must behave exactly like the before-CBUF FF
// model (Datapath RF Property 1).
func TestSingleMemoryErrorEqualsBeforeCBUF(t *testing.T) {
	codec := numerics.MustCodec(numerics.FP16, 0)
	site, op := convExec(t, codec, 32)
	conv := site.(*nn.Conv2D)

	word, bit := 17, 13
	plan, err := PlanMemoryErrors(site, op, []MemoryError{{Kind: nn.OperandWeight, Word: word, Bits: []int{bit}}})
	if err != nil {
		t.Fatal(err)
	}
	ApplyMemory(plan, site, op)

	w2 := conv.W.Clone()
	w2.Data()[word] = codec.FlipBit(w2.Data()[word], bit)
	ref := nn.NewConv2D("ref", 3, 3, 4, 32, 1, 1, codec)
	ref.W, ref.B = w2, conv.B
	refOut := ref.Forward(op.In, nil)
	if diffs := refOut.DiffIndices(op.Out, 0); len(diffs) != 0 {
		t.Errorf("memory model differs from brute force at %d neurons", len(diffs))
	}
}

// Multiple memory errors corrupt the union of the per-word reuse sets, and
// the patched output matches a full forward pass over the doubly corrupted
// operands.
func TestMultiWordMemoryErrors(t *testing.T) {
	codec := numerics.MustCodec(numerics.FP16, 0)
	site, op := convExec(t, codec, 33)
	conv := site.(*nn.Conv2D)

	errs := []MemoryError{
		{Kind: nn.OperandInput, Word: 5, Bits: []int{14}},
		{Kind: nn.OperandWeight, Word: 40, Bits: []int{13, 2}},
	}
	plan, err := PlanMemoryErrors(site, op, errs)
	if err != nil {
		t.Fatal(err)
	}
	// Union must be at least as large as the bigger individual set.
	single, _ := PlanMemoryErrors(site, op, errs[1:])
	if len(plan.Neurons) < len(single.Neurons) {
		t.Errorf("union %d smaller than single-set %d", len(plan.Neurons), len(single.Neurons))
	}
	ApplyMemory(plan, site, op)

	in2 := op.In.Clone()
	in2.Data()[5] = codec.FlipBit(in2.Data()[5], 14)
	w2 := conv.W.Clone()
	w2.Data()[40] = codec.FlipBit(codec.FlipBit(w2.Data()[40], 13), 2)
	ref := nn.NewConv2D("ref", 3, 3, 4, 32, 1, 1, codec)
	ref.W, ref.B = w2, conv.B
	refOut := ref.Forward(in2, nil)
	if diffs := refOut.DiffIndices(op.Out, 0); len(diffs) != 0 {
		t.Errorf("multi-error model differs from brute force at %d neurons", len(diffs))
	}
}

// The software memory model must match the cycle-level simulator exactly —
// the Sec. III-E validation.
func TestMemoryModelMatchesRTLSim(t *testing.T) {
	codec := numerics.MustCodec(numerics.FP16, 0)
	cfg := accel.NVDLASmall()
	rng := rand.New(rand.NewSource(34))
	conv := nn.NewConv2D("conv", 3, 3, 3, 10, 1, 1, codec).InitRandom(rng, 0.4)
	x := tensor.New(1, 7, 7, 3)
	x.RandNormal(rng, 1)
	layer := rtlsim.ConvLayer(x, conv.W, conv.B.Data(), 1, 1, codec)

	golden := conv.Forward(x, nil)
	for trial := 0; trial < 10; trial++ {
		mems := []rtlsim.MemFault{
			{Weight: false, Word: rng.Intn(x.Size()), Bits: []int{rng.Intn(16)}},
			{Weight: true, Word: rng.Intn(conv.W.Size()), Bits: []int{rng.Intn(16), rng.Intn(16)}},
		}
		rtl, err := rtlsim.RunWithMemoryFaults(cfg, layer, mems)
		if err != nil {
			t.Fatal(err)
		}
		var errs []MemoryError
		for _, m := range mems {
			kind := nn.OperandInput
			if m.Weight {
				kind = nn.OperandWeight
			}
			errs = append(errs, MemoryError{Kind: kind, Word: m.Word, Bits: m.Bits})
		}
		op := &nn.Operands{In: x, W: conv.W, B: conv.B, Out: golden.Clone()}
		plan, err := PlanMemoryErrors(conv, op, errs)
		if err != nil {
			t.Fatal(err)
		}
		ApplyMemory(plan, conv, op)
		if diffs := op.Out.DiffIndices(rtl.Out, 0); len(diffs) != 0 {
			t.Fatalf("trial %d: software memory model differs from cycle sim at %d neurons", trial, len(diffs))
		}
	}
}

func TestSampleMemoryErrors(t *testing.T) {
	codec := numerics.MustCodec(numerics.INT8, 8)
	site, op := convExec(t, codec, 35)
	s := newSampler(t, 35)
	errs, err := s.SampleMemoryErrors(site, op, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(errs) != 5 {
		t.Fatalf("errors = %d", len(errs))
	}
	for _, e := range errs {
		if len(e.Bits) != 2 {
			t.Errorf("bits = %v", e.Bits)
		}
		for _, b := range e.Bits {
			if b < 0 || b >= 8 {
				t.Errorf("bit %d outside INT8 word", b)
			}
		}
	}
	if _, err := s.SampleMemoryErrors(site, op, 0, 1); err == nil {
		t.Error("zero errors should fail")
	}
	if _, err := s.SampleMemoryErrors(site, op, 1, 99); err == nil {
		t.Error("too many bits should fail")
	}
}

package faultmodel

import (
	"fmt"
	"sort"

	"fidelity/internal/nn"
	"fidelity/internal/tensor"
)

// This file implements the paper's Sec. III-E extension: FIdelity applied to
// memory errors. Per Datapath RF Property (1), an error in one on-chip
// memory word behaves exactly like a fault in the datapath FFs feeding that
// memory (Table I row 1: all neurons using the value are affected), and
// multiple memory errors corrupt the union of the per-word reuse sets.

// MemoryError is one corrupted word of the on-chip buffer: one or more bit
// flips in the stored encoding of a single value.
type MemoryError struct {
	// Kind selects the buffer: OperandInput or OperandWeight.
	Kind nn.OperandKind
	// Word is the flat element index within the buffer.
	Word int
	// Bits lists the flipped bit positions within the word (SEU: one;
	// multi-bit upsets: several).
	Bits []int
}

// MemoryPlan is the derived software fault model for a set of memory errors.
type MemoryPlan struct {
	Errors []MemoryError
	// Neurons is the union of the per-word reuse sets, deduplicated.
	Neurons [][]int
}

// PlanMemoryErrors derives the faulty neuron set for a set of memory errors
// against one layer execution.
func PlanMemoryErrors(site nn.Site, op *nn.Operands, errs []MemoryError) (*MemoryPlan, error) {
	if len(errs) == 0 {
		return nil, fmt.Errorf("faultmodel: no memory errors given")
	}
	seen := map[int]bool{}
	var neurons [][]int
	for _, e := range errs {
		var buf *tensor.Tensor
		switch e.Kind {
		case nn.OperandInput:
			buf = op.In
		case nn.OperandWeight:
			buf = op.W
		default:
			return nil, fmt.Errorf("faultmodel: memory errors must target input or weight buffers, got %v", e.Kind)
		}
		if buf == nil {
			return nil, fmt.Errorf("faultmodel: site %s has no %v buffer", site.Name(), e.Kind)
		}
		if e.Word < 0 || e.Word >= buf.Size() {
			return nil, fmt.Errorf("faultmodel: word %d outside %v buffer of %d", e.Word, e.Kind, buf.Size())
		}
		if len(e.Bits) == 0 {
			return nil, fmt.Errorf("faultmodel: memory error at word %d flips no bits", e.Word)
		}
		for _, idx := range site.NeuronsUsingOperand(op, e.Kind, e.Word) {
			off := op.Out.Offset(idx...)
			if !seen[off] {
				seen[off] = true
				neurons = append(neurons, idx)
			}
		}
	}
	// Deterministic order for reproducibility.
	sort.Slice(neurons, func(i, j int) bool {
		return op.Out.Offset(neurons[i]...) < op.Out.Offset(neurons[j]...)
	})
	return &MemoryPlan{Errors: errs, Neurons: neurons}, nil
}

// ApplyMemory executes a memory plan: flip the stored words, recompute every
// neuron in the union reuse set, and patch op.Out in place.
func ApplyMemory(p *MemoryPlan, site nn.Site, op *nn.Operands) []Change {
	codec := site.Codec()
	// Clone the corrupted buffers so multiple word errors act jointly.
	work := *op
	var inClone, wClone *tensor.Tensor
	for _, e := range p.Errors {
		switch e.Kind {
		case nn.OperandInput:
			if inClone == nil {
				inClone = op.In.Clone()
				work.In = inClone
			}
			v := inClone.Data()[e.Word]
			for _, b := range e.Bits {
				v = codec.FlipBit(v, b)
			}
			inClone.Data()[e.Word] = v
		case nn.OperandWeight:
			if wClone == nil {
				wClone = op.W.Clone()
				work.W = wClone
			}
			v := wClone.Data()[e.Word]
			for _, b := range e.Bits {
				v = codec.FlipBit(v, b)
			}
			wClone.Data()[e.Word] = v
		}
	}
	var changes []Change
	for _, idx := range p.Neurons {
		old := op.Out.At(idx...)
		faulty := site.ComputeNeuron(&work, idx, nil)
		if faulty != old {
			op.Out.Set(faulty, idx...)
			changes = append(changes, Change{Flat: op.Out.Offset(idx...), Golden: old, Faulty: faulty})
		}
	}
	return changes
}

// SampleMemoryErrors draws n independent memory errors, each flipping
// bitsPerWord distinct bits of a uniformly chosen word in a uniformly chosen
// buffer.
func (s *Sampler) SampleMemoryErrors(site nn.Site, op *nn.Operands, n, bitsPerWord int) ([]MemoryError, error) {
	if n <= 0 || bitsPerWord <= 0 {
		return nil, fmt.Errorf("faultmodel: n and bitsPerWord must be positive")
	}
	width := site.Codec().Bits()
	if bitsPerWord > width {
		return nil, fmt.Errorf("faultmodel: %d bits exceed the %d-bit word", bitsPerWord, width)
	}
	var out []MemoryError
	for i := 0; i < n; i++ {
		kind := nn.OperandInput
		buf := op.In
		if op.W != nil && s.rng.Intn(2) == 1 {
			kind = nn.OperandWeight
			buf = op.W
		}
		bits := s.rng.Perm(width)[:bitsPerWord]
		sort.Ints(bits)
		out = append(out, MemoryError{Kind: kind, Word: s.rng.Intn(buf.Size()), Bits: bits})
	}
	return out, nil
}

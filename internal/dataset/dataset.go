// Package dataset generates the seeded synthetic workload inputs that stand
// in for the paper's evaluation datasets (ImageNet, Cifar10, COCO, IWSLT14,
// UCI HAR). Fault-injection outcome analysis always compares a faulty run
// against the fault-free run on the same input, so what matters is that the
// inputs have realistic shape, dynamic range, and structure — not that they
// come from the original corpora (see DESIGN.md, substitution 5).
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"fidelity/internal/faultmodel"
	"fidelity/internal/tensor"
)

// Name identifies a synthetic dataset.
type Name string

// Supported datasets.
const (
	// ImagenetLike: 32×32×3 natural-image-like inputs (smooth blobs + noise).
	ImagenetLike Name = "imagenet-like"
	// Cifar10Like: 16×16×3 inputs with the same construction.
	Cifar10Like Name = "cifar10-like"
	// COCOLike: 48×48×3 detection scenes with bright object patches.
	COCOLike Name = "coco-like"
	// IWSLTLike: token sequences over a small vocabulary.
	IWSLTLike Name = "iwslt-like"
	// HARLike: 6-channel accelerometer/gyroscope-like time series.
	HARLike Name = "har-like"
)

// Image synthesizes one natural-image-like NHWC tensor: a few smooth
// Gaussian blobs over a textured background, normalized to roughly [-1, 1].
func Image(h, w, c int, seed int64) *tensor.Tensor {
	rng := rand.New(faultmodel.NewStreamSource(seed))
	img := tensor.New(1, h, w, c)
	type blob struct {
		cy, cx, sigma float64
		amp           [8]float64
	}
	nb := 2 + rng.Intn(4)
	blobs := make([]blob, nb)
	for i := range blobs {
		b := blob{
			cy:    rng.Float64() * float64(h),
			cx:    rng.Float64() * float64(w),
			sigma: 1.5 + rng.Float64()*float64(h)/4,
		}
		for ch := 0; ch < c && ch < len(b.amp); ch++ {
			b.amp[ch] = rng.NormFloat64()
		}
		blobs[i] = b
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			for ch := 0; ch < c; ch++ {
				v := 0.1 * rng.NormFloat64() // sensor noise
				for _, b := range blobs {
					d2 := (float64(y)-b.cy)*(float64(y)-b.cy) + (float64(x)-b.cx)*(float64(x)-b.cx)
					v += b.amp[ch%len(b.amp)] * math.Exp(-d2/(2*b.sigma*b.sigma))
				}
				img.Set(float32(math.Tanh(v)), 0, y, x, ch)
			}
		}
	}
	return img
}

// Tokens synthesizes a token sequence over vocab with mild bigram structure
// (each token prefers a successor near itself), mimicking natural-language
// statistics enough to exercise embedding/attention paths.
func Tokens(seqLen, vocab int, seed int64) []int {
	rng := rand.New(faultmodel.NewStreamSource(seed))
	out := make([]int, seqLen)
	cur := rng.Intn(vocab)
	for i := range out {
		out[i] = cur
		if rng.Float64() < 0.6 {
			cur = (cur + 1 + rng.Intn(4)) % vocab
		} else {
			cur = rng.Intn(vocab)
		}
	}
	return out
}

// TimeSeries synthesizes a (steps, channels) activity-recognition-like
// signal: per-channel sinusoids with random phase/frequency plus noise.
func TimeSeries(steps, channels int, seed int64) *tensor.Tensor {
	rng := rand.New(faultmodel.NewStreamSource(seed))
	ts := tensor.New(steps, channels)
	for ch := 0; ch < channels; ch++ {
		freq := 0.05 + rng.Float64()*0.3
		phase := rng.Float64() * 2 * math.Pi
		amp := 0.5 + rng.Float64()
		for s := 0; s < steps; s++ {
			v := amp*math.Sin(freq*float64(s)+phase) + 0.15*rng.NormFloat64()
			ts.Set(float32(v), s, ch)
		}
	}
	return ts
}

// Sample produces the i-th input of a dataset as a tensor. Token datasets
// return a (seq, 1) tensor of token IDs (consumed by an embedding layer).
func Sample(name Name, i int) (*tensor.Tensor, error) {
	seed := int64(i)*1_000_003 + 17
	switch name {
	case ImagenetLike:
		return Image(32, 32, 3, seed), nil
	case Cifar10Like:
		return Image(16, 16, 3, seed), nil
	case COCOLike:
		return Image(48, 48, 3, seed), nil
	case IWSLTLike:
		toks := Tokens(24, 64, seed)
		t := tensor.New(len(toks), 1)
		for j, v := range toks {
			t.Set(float32(v), j, 0)
		}
		return t, nil
	case HARLike:
		return TimeSeries(48, 6, seed), nil
	default:
		return nil, fmt.Errorf("dataset: unknown dataset %q", name)
	}
}

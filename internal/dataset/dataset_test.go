package dataset

import (
	"math"
	"testing"
)

func TestImageProperties(t *testing.T) {
	img := Image(32, 32, 3, 1)
	if img.Dim(0) != 1 || img.Dim(1) != 32 || img.Dim(2) != 32 || img.Dim(3) != 3 {
		t.Fatalf("shape = %v", img.Shape())
	}
	for _, v := range img.Data() {
		if v < -1 || v > 1 || math.IsNaN(float64(v)) {
			t.Fatalf("pixel %v outside [-1,1]", v)
		}
	}
	// Images must have spatial structure (not white noise): neighboring
	// pixels correlate.
	var same, diff float64
	for y := 0; y < 31; y++ {
		for x := 0; x < 31; x++ {
			a := float64(img.At(0, y, x, 0))
			same += math.Abs(a - float64(img.At(0, y, x+1, 0)))
			diff += math.Abs(a - float64(img.At(0, (y+16)%32, (x+16)%32, 0)))
		}
	}
	if same >= diff {
		t.Error("image lacks spatial correlation")
	}
}

func TestImageDeterministicPerSeed(t *testing.T) {
	a := Image(16, 16, 3, 7)
	b := Image(16, 16, 3, 7)
	c := Image(16, 16, 3, 8)
	if !a.Equal(b) {
		t.Error("same seed must reproduce the image")
	}
	if a.Equal(c) {
		t.Error("different seeds should differ")
	}
}

func TestTokens(t *testing.T) {
	toks := Tokens(24, 64, 3)
	if len(toks) != 24 {
		t.Fatalf("len = %d", len(toks))
	}
	for _, tk := range toks {
		if tk < 0 || tk >= 64 {
			t.Fatalf("token %d out of vocab", tk)
		}
	}
	toks2 := Tokens(24, 64, 3)
	for i := range toks {
		if toks[i] != toks2[i] {
			t.Fatal("tokens not deterministic")
		}
	}
}

func TestTimeSeries(t *testing.T) {
	ts := TimeSeries(48, 6, 5)
	if ts.Dim(0) != 48 || ts.Dim(1) != 6 {
		t.Fatalf("shape = %v", ts.Shape())
	}
	// Signals should oscillate: both signs present per channel.
	for ch := 0; ch < 6; ch++ {
		pos, neg := false, false
		for s := 0; s < 48; s++ {
			if ts.At(s, ch) > 0 {
				pos = true
			}
			if ts.At(s, ch) < 0 {
				neg = true
			}
		}
		if !pos || !neg {
			t.Errorf("channel %d does not oscillate", ch)
		}
	}
}

func TestSampleAllDatasets(t *testing.T) {
	for _, name := range []Name{ImagenetLike, Cifar10Like, COCOLike, IWSLTLike, HARLike} {
		x, err := Sample(name, 3)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if x.Size() == 0 {
			t.Fatalf("%s: empty sample", name)
		}
		y, _ := Sample(name, 3)
		if !x.Equal(y) {
			t.Errorf("%s: sample 3 not deterministic", name)
		}
		z, _ := Sample(name, 4)
		if x.Equal(z) {
			t.Errorf("%s: samples 3 and 4 identical", name)
		}
	}
	if _, err := Sample("mnist", 0); err == nil {
		t.Error("unknown dataset should fail")
	}
}

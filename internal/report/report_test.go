package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Title", "A", "B")
	tb.Add("x", "1")
	tb.Add("longer", "2")
	s := tb.String()
	if !strings.Contains(s, "Title") || !strings.Contains(s, "longer") {
		t.Errorf("table missing content:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("unexpected line count %d:\n%s", len(lines), s)
	}
	// Columns aligned: both rows' second column starts at the same offset.
	r1 := strings.Index(lines[3], "1")
	r2 := strings.Index(lines[4], "2")
	if r1 != r2 {
		t.Errorf("columns misaligned: %d vs %d", r1, r2)
	}
}

func TestTableAddf(t *testing.T) {
	tb := NewTable("", "A", "B", "C")
	tb.Addf("%s|%d|%.2f", "x", 3, 1.5)
	if len(tb.Rows[0]) != 3 || tb.Rows[0][2] != "1.50" {
		t.Errorf("Addf rows = %v", tb.Rows)
	}
}

func TestCSV(t *testing.T) {
	tb := NewTable("", "name", "value")
	tb.Add("a,b", `say "hi"`)
	csv := tb.CSV()
	if !strings.Contains(csv, `"a,b"`) {
		t.Errorf("comma cell not quoted: %s", csv)
	}
	if !strings.Contains(csv, `"say ""hi"""`) {
		t.Errorf("quote cell not escaped: %s", csv)
	}
	if !strings.HasPrefix(csv, "name,value\n") {
		t.Errorf("header wrong: %s", csv)
	}
}

func TestBarChart(t *testing.T) {
	c := &BarChart{Title: "FIT", Width: 40, RefLine: 0.2, RefLabel: "ASIL-D"}
	c.Add("yolo", Segment{"datapath", 3}, Segment{"local", 0.5}, Segment{"global", 6})
	c.Add("tiny", Segment{"datapath", 0.05})
	s := c.String()
	if !strings.Contains(s, "legend:") {
		t.Errorf("missing legend:\n%s", s)
	}
	if !strings.Contains(s, "9.5") {
		t.Errorf("missing total:\n%s", s)
	}
	if !strings.Contains(s, "ASIL-D") {
		t.Errorf("missing ref label:\n%s", s)
	}
	// The dominant bar must be visibly longer.
	lines := strings.Split(s, "\n")
	var yoloFill, tinyFill int
	for _, l := range lines {
		if strings.HasPrefix(l, "yolo") {
			yoloFill = strings.Count(l, "#") + strings.Count(l, "=") + strings.Count(l, ".")
		}
		if strings.HasPrefix(l, "tiny") {
			tinyFill = strings.Count(l, "#")
		}
	}
	if yoloFill <= tinyFill {
		t.Errorf("bar lengths wrong: yolo=%d tiny=%d", yoloFill, tinyFill)
	}
}

func TestBarChartSort(t *testing.T) {
	c := &BarChart{}
	c.Add("small", Segment{"x", 1})
	c.Add("big", Segment{"x", 10})
	c.SortBarsByTotal()
	if c.Bars[0].Label != "big" {
		t.Error("sort failed")
	}
}

func TestBarChartEmpty(t *testing.T) {
	c := &BarChart{Title: "empty"}
	if s := c.String(); !strings.Contains(s, "empty") {
		t.Errorf("empty chart should still render title: %q", s)
	}
}

// Package report renders the reproduction's tables and figures as aligned
// ASCII (for terminals and EXPERIMENTS.md) and CSV (for external plotting).
package report

import (
	"fmt"
	"sort"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable builds a table with the given title and headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends a row; extra/missing cells are tolerated.
func (t *Table) Add(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Addf appends a row of formatted values; the formatted string is split into
// cells at '|' separators, so cell content must not contain pipes.
func (t *Table) Addf(format string, args ...any) {
	t.Add(strings.Split(fmt.Sprintf(format, args...), "|")...)
}

// String renders the aligned table.
func (t *Table) String() string {
	cols := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	width := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.Rows {
		measure(r)
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(r []string) {
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(r) {
				c = r[i]
			}
			fmt.Fprintf(&b, "%-*s", width[i]+2, c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	total := 0
	for _, w := range width {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (cells containing commas
// are quoted).
func (t *Table) CSV() string {
	var b strings.Builder
	row := func(r []string) {
		for i, c := range r {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteString(`"` + strings.ReplaceAll(c, `"`, `""`) + `"`)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	row(t.Headers)
	for _, r := range t.Rows {
		row(r)
	}
	return b.String()
}

// Bar is one bar of a chart, optionally stacked into named segments.
type Bar struct {
	Label    string
	Segments []Segment
}

// Segment is one stacked component of a bar.
type Segment struct {
	Name  string
	Value float64
}

// Total returns the bar's height.
func (b Bar) Total() float64 {
	var s float64
	for _, seg := range b.Segments {
		s += seg.Value
	}
	return s
}

// BarChart renders horizontal stacked bars with a shared scale — the ASCII
// analog of the paper's Fig 4/5/6 stacked FIT-rate charts.
type BarChart struct {
	Title string
	Bars  []Bar
	// Width is the maximum bar width in characters (default 50).
	Width int
	// RefLine draws a reference marker at this value when > 0 (e.g. the 0.2
	// ASIL-D budget).
	RefLine float64
	// RefLabel names the reference line.
	RefLabel string
}

// Add appends a stacked bar.
func (c *BarChart) Add(label string, segments ...Segment) {
	c.Bars = append(c.Bars, Bar{Label: label, Segments: segments})
}

// segmentGlyphs maps stack positions to fill characters.
var segmentGlyphs = []byte{'#', '=', '.', '+', '*'}

// String renders the chart.
func (c *BarChart) String() string {
	width := c.Width
	if width <= 0 {
		width = 50
	}
	maxv := c.RefLine
	labelW := 0
	for _, b := range c.Bars {
		if t := b.Total(); t > maxv {
			maxv = t
		}
		if len(b.Label) > labelW {
			labelW = len(b.Label)
		}
	}
	if maxv <= 0 {
		maxv = 1
	}
	var sb strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&sb, "%s\n", c.Title)
	}
	// Legend from segment names in first appearance order.
	seen := map[string]int{}
	var order []string
	for _, b := range c.Bars {
		for _, s := range b.Segments {
			if _, ok := seen[s.Name]; !ok && s.Name != "" {
				seen[s.Name] = len(order)
				order = append(order, s.Name)
			}
		}
	}
	if len(order) > 0 {
		sb.WriteString("legend: ")
		for i, n := range order {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "%c=%s", segmentGlyphs[i%len(segmentGlyphs)], n)
		}
		sb.WriteByte('\n')
	}
	refCol := -1
	if c.RefLine > 0 {
		refCol = int(c.RefLine / maxv * float64(width))
	}
	for _, b := range c.Bars {
		row := make([]byte, width)
		for i := range row {
			row[i] = ' '
		}
		pos := 0.0
		for _, s := range b.Segments {
			glyph := byte('#')
			if i, ok := seen[s.Name]; ok {
				glyph = segmentGlyphs[i%len(segmentGlyphs)]
			}
			from := int(pos / maxv * float64(width))
			pos += s.Value
			to := int(pos / maxv * float64(width))
			for i := from; i < to && i < width; i++ {
				row[i] = glyph
			}
		}
		if refCol >= 0 && refCol < width && row[refCol] == ' ' {
			row[refCol] = '|'
		}
		fmt.Fprintf(&sb, "%-*s %s %.4g\n", labelW, b.Label, string(row), b.Total())
	}
	if c.RefLine > 0 {
		fmt.Fprintf(&sb, "%-*s %s\n", labelW, "", fmt.Sprintf("| marks %s = %.3g", c.RefLabel, c.RefLine))
	}
	return sb.String()
}

// SortBarsByTotal orders bars descending by height.
func (c *BarChart) SortBarsByTotal() {
	sort.SliceStable(c.Bars, func(i, j int) bool {
		return c.Bars[i].Total() > c.Bars[j].Total()
	})
}

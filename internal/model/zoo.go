// Package model builds the compact, deterministic versions of the paper's
// evaluation networks (Table IV): Inception, ResNet50, MobileNet, Yolo,
// Transformer, and an LSTM RNN. Each "-lite" model keeps the defining
// topology of its namesake — inception branch-and-concat modules, residual
// blocks, depthwise-separable convolutions, a dense detection head,
// attention blocks, recurrent gates — at a size that makes million-sample
// fault-injection campaigns tractable. Weights are seeded (not trained);
// see DESIGN.md substitution 4 for why this preserves fault-propagation
// behaviour.
package model

import (
	"fmt"
	"math"
	"math/rand"

	"fidelity/internal/dataset"
	"fidelity/internal/faultmodel"
	"fidelity/internal/nn"
	"fidelity/internal/numerics"
)

// MetricKind selects the correctness metric (Table IV).
type MetricKind int

const (
	// MetricTop1 is Top-1 label match.
	MetricTop1 MetricKind = iota
	// MetricBLEU is BLEU-score difference within tolerance.
	MetricBLEU
	// MetricDetection is detection-precision difference within tolerance.
	MetricDetection
)

// String names the metric.
func (m MetricKind) String() string {
	switch m {
	case MetricTop1:
		return "top1"
	case MetricBLEU:
		return "bleu"
	case MetricDetection:
		return "detection"
	default:
		return fmt.Sprintf("MetricKind(%d)", int(m))
	}
}

// Workload pairs a network with its dataset and correctness metric.
type Workload struct {
	Net     *nn.Network
	Dataset dataset.Name
	Metric  MetricKind
	// Yolo decoding geometry (MetricDetection only).
	Grid, Anchors, Classes int
}

// Names lists the supported model names. "resnet-bounded" is the ResNet
// topology with value-bounding clamps after every block — the Key Result 5
// co-design mitigation proposed in the paper's Architectural Insights.
func Names() []string {
	return []string{"inception", "resnet", "resnet-bounded", "mobilenet", "yolo", "transformer", "rnn"}
}

// Build constructs a workload by name at the given precision with a
// deterministic seed. The quantizer calibration range is fixed at 8, chosen
// so the seeded networks' activations occupy most of the INT range.
func Build(name string, prec numerics.Precision, seed int64) (*Workload, error) {
	codec, err := numerics.NewCodec(prec, 8)
	if err != nil {
		return nil, err
	}
	rng := rand.New(faultmodel.NewStreamSource(seed))
	switch name {
	case "inception":
		return inceptionLite(codec, rng), nil
	case "resnet":
		return resnetLite(codec, rng, 0), nil
	case "resnet-bounded":
		// Bound chosen from the fault-free activation profile of the seeded
		// network (max |activation| ≈ 6): generous for clean values, tight
		// for exponent-flip outliers.
		return resnetLite(codec, rng, 8), nil
	case "mobilenet":
		return mobilenetLite(codec, rng), nil
	case "yolo":
		return yoloLite(codec, rng), nil
	case "transformer":
		return transformerLite(codec, rng), nil
	case "rnn":
		return rnnLite(codec, rng), nil
	default:
		return nil, fmt.Errorf("model: unknown model %q (have %v)", name, Names())
	}
}

// stddev gives fan-in scaled initialization so activations keep unit-order
// variance through depth (essential for quantized precisions).
func stddev(fanIn int) float32 {
	if fanIn <= 0 {
		fanIn = 1
	}
	return float32(1.2 / math.Sqrt(float64(fanIn)))
}

// convBNReLU is the standard conv → folded-BN → ReLU stack.
func convBNReLU(name string, rng *rand.Rand, kh, inC, outC, stride, pad int, codec numerics.Codec) nn.Layer {
	conv := nn.NewConv2D(name, kh, kh, inC, outC, stride, pad, codec).InitRandom(rng, stddev(kh*kh*inC))
	bn := nn.NewBatchNorm(name+"/bn", outC, codec).InitRandom(rng)
	return nn.NewSequential(name+"/block", conv, bn, nn.NewReLU(name+"/relu", codec))
}

// inceptionLite: stem conv, two inception modules (1×1, 3×3, 5×5, pooled-1×1
// branches), global pooling and a classifier — the Inception topology on
// 32×32×3 "imagenet-like" inputs, 10 classes.
func inceptionLite(codec numerics.Codec, rng *rand.Rand) *Workload {
	module := func(name string, inC int) nn.Layer {
		return nn.NewBranches(name, 3,
			convBNReLU(name+"/b1x1", rng, 1, inC, 8, 1, 0, codec),
			nn.NewSequential(name+"/b3x3",
				convBNReLU(name+"/b3x3r", rng, 1, inC, 8, 1, 0, codec),
				convBNReLU(name+"/b3x3c", rng, 3, 8, 12, 1, 1, codec),
			),
			nn.NewSequential(name+"/b5x5",
				convBNReLU(name+"/b5x5r", rng, 1, inC, 4, 1, 0, codec),
				convBNReLU(name+"/b5x5c", rng, 5, 4, 8, 1, 2, codec),
			),
			nn.NewSequential(name+"/bpool",
				nn.NewZeroPad(name+"/pad", 1),
				nn.NewMaxPool(name+"/pool", 3, 1),
				convBNReLU(name+"/poolproj", rng, 1, inC, 4, 1, 0, codec),
			),
		)
	}
	// Module output channels: 8+12+8+4 = 32.
	root := nn.NewSequential("inception",
		convBNReLU("stem", rng, 3, 3, 16, 2, 1, codec), // 32→16
		module("inc1", 16),
		nn.NewMaxPool("pool1", 2, 2), // 16→8... pool of branches output
		module("inc2", 32),
		nn.NewGlobalAvgPool("gap", codec),
		nn.NewDense("fc", 32, 10, codec).InitRandom(rng, stddev(32)),
		nn.NewSoftmax("softmax"),
	)
	return &Workload{
		Net:     nn.NewNetwork("inception-lite", root, codec),
		Dataset: dataset.ImagenetLike,
		Metric:  MetricTop1,
	}
}

// resnetLite: stem + three residual stages with projection shortcuts — the
// ResNet50 topology in miniature. A positive bound inserts value-bounding
// clamps after every stage (the Key Result 5 mitigation).
func resnetLite(codec numerics.Codec, rng *rand.Rand, bound float32) *Workload {
	guard := func(name string, l nn.Layer) nn.Layer {
		if bound <= 0 {
			return l
		}
		return nn.NewSequential(name+"/guarded", l, nn.NewClamp(name+"/clamp", bound, codec))
	}
	block := func(name string, inC, outC, stride int) nn.Layer {
		body := nn.NewSequential(name+"/body",
			convBNReLU(name+"/c1", rng, 3, inC, outC, stride, 1, codec),
			nn.NewConv2D(name+"/c2", 3, 3, outC, outC, 1, 1, codec).InitRandom(rng, stddev(9*outC)),
			nn.NewBatchNorm(name+"/bn2", outC, codec).InitRandom(rng),
		)
		var shortcut nn.Layer
		if inC != outC || stride != 1 {
			shortcut = nn.NewConv2D(name+"/proj", 1, 1, inC, outC, stride, 0, codec).InitRandom(rng, stddev(inC))
		}
		return nn.NewSequential(name,
			nn.NewResidual(name+"/res", body, shortcut, codec),
			nn.NewReLU(name+"/relu", codec),
		)
	}
	name := "resnet-lite"
	if bound > 0 {
		name = "resnet-lite-bounded"
	}
	root := nn.NewSequential(name,
		guard("stem", convBNReLU("stem", rng, 3, 3, 16, 1, 1, codec)),
		guard("res1", block("res1", 16, 16, 1)),
		guard("res2", block("res2", 16, 32, 2)),
		guard("res3", block("res3", 32, 32, 1)),
		nn.NewGlobalAvgPool("gap", codec),
		nn.NewDense("fc", 32, 10, codec).InitRandom(rng, stddev(32)),
		nn.NewSoftmax("softmax"),
	)
	return &Workload{
		Net:     nn.NewNetwork(name, root, codec),
		Dataset: dataset.Cifar10Like,
		Metric:  MetricTop1,
	}
}

// mobilenetLite: depthwise-separable convolution stacks with ReLU6.
func mobilenetLite(codec numerics.Codec, rng *rand.Rand) *Workload {
	dwsep := func(name string, inC, outC, stride int) nn.Layer {
		return nn.NewSequential(name,
			nn.NewDepthwiseConv2D(name+"/dw", 3, 3, inC, stride, 1, codec).InitRandom(rng, stddev(9)),
			nn.NewBatchNorm(name+"/bn1", inC, codec).InitRandom(rng),
			nn.NewRelu6(name+"/r1", codec),
			nn.NewConv2D(name+"/pw", 1, 1, inC, outC, 1, 0, codec).InitRandom(rng, stddev(inC)),
			nn.NewBatchNorm(name+"/bn2", outC, codec).InitRandom(rng),
			nn.NewRelu6(name+"/r2", codec),
		)
	}
	root := nn.NewSequential("mobilenet",
		convBNReLU("stem", rng, 3, 3, 8, 2, 1, codec), // 16→8 on cifar-like
		dwsep("ds1", 8, 16, 1),
		dwsep("ds2", 16, 32, 2),
		dwsep("ds3", 32, 32, 1),
		nn.NewGlobalAvgPool("gap", codec),
		nn.NewDense("fc", 32, 10, codec).InitRandom(rng, stddev(32)),
		nn.NewSoftmax("softmax"),
	)
	return &Workload{
		Net:     nn.NewNetwork("mobilenet-lite", root, codec),
		Dataset: dataset.Cifar10Like,
		Metric:  MetricTop1,
	}
}

// yoloLite: a leaky-ReLU backbone with residual blocks and a dense
// detection head producing (grid × grid × anchors·(5+classes)) — the
// single-shot detector topology of Yolo on 48×48×3 "coco-like" scenes.
func yoloLite(codec numerics.Codec, rng *rand.Rand) *Workload {
	const grid, anchors, classes = 6, 2, 4
	convLeaky := func(name string, kh, inC, outC, stride, pad int) nn.Layer {
		return nn.NewSequential(name,
			nn.NewConv2D(name+"/c", kh, kh, inC, outC, stride, pad, codec).InitRandom(rng, stddev(kh*kh*inC)),
			nn.NewBatchNorm(name+"/bn", outC, codec).InitRandom(rng),
			nn.NewLeakyReLU(name+"/lrelu", 0.1, codec),
		)
	}
	resBlock := func(name string, c int) nn.Layer {
		body := nn.NewSequential(name+"/body",
			convLeaky(name+"/c1", 1, c, c/2, 1, 0),
			convLeaky(name+"/c2", 3, c/2, c, 1, 1),
		)
		return nn.NewResidual(name, body, nil, codec)
	}
	head := nn.NewConv2D("head", 1, 1, 32, anchors*(5+classes), 1, 0, codec).InitRandom(rng, stddev(32))
	root := nn.NewSequential("yolo",
		convLeaky("stem", 3, 3, 16, 2, 1),   // 48→24
		convLeaky("down1", 3, 16, 32, 2, 1), // 24→12
		resBlock("res1", 32),
		convLeaky("down2", 3, 32, 32, 2, 1), // 12→6
		resBlock("res2", 32),
		head,
	)
	return &Workload{
		Net:     nn.NewNetwork("yolo-lite", root, codec),
		Dataset: dataset.COCOLike,
		Metric:  MetricDetection,
		Grid:    grid, Anchors: anchors, Classes: classes,
	}
}

// transformerLite: embedding → two encoder blocks (multi-head attention +
// feed-forward, residual + layer norm) → vocabulary projection; greedy
// per-position decoding gives the "translation" for BLEU scoring.
func transformerLite(codec numerics.Codec, rng *rand.Rand) *Workload {
	const vocab, dModel, heads, dff = 64, 32, 4, 64
	encoder := func(name string) nn.Layer {
		attn := nn.NewMultiHeadAttention(name+"/mha", dModel, heads, codec).InitRandom(rng, stddev(dModel))
		ffn := nn.NewFeedForward(name+"/ffn", dModel, dff, codec)
		ffn.InitRandom(rng, stddev(dModel))
		return nn.NewSequential(name,
			nn.NewResidual(name+"/res1", attn, nil, codec),
			nn.NewLayerNorm(name+"/ln1", dModel),
			nn.NewResidual(name+"/res2", ffn, nil, codec),
			nn.NewLayerNorm(name+"/ln2", dModel),
		)
	}
	root := nn.NewSequential("transformer",
		nn.NewEmbedding("embed", vocab, dModel).InitRandom(rng, 0.5),
		encoder("enc1"),
		encoder("enc2"),
		nn.NewDense("vocab", dModel, vocab, codec).InitRandom(rng, stddev(dModel)),
	)
	return &Workload{
		Net:     nn.NewNetwork("transformer-lite", root, codec),
		Dataset: dataset.IWSLTLike,
		Metric:  MetricBLEU,
	}
}

// rnnLite: an LSTM over HAR-like time series with a classifier head — the
// paper's RNN validation workload ("a FC layer in LSTM").
func rnnLite(codec numerics.Codec, rng *rand.Rand) *Workload {
	root := nn.NewSequential("rnn",
		nn.NewLSTM("lstm", 6, 24, codec).InitRandom(rng, stddev(30)),
		nn.NewDense("fc", 24, 6, codec).InitRandom(rng, stddev(24)),
		nn.NewSoftmax("softmax"),
	)
	return &Workload{
		Net:     nn.NewNetwork("rnn-lite", root, codec),
		Dataset: dataset.HARLike,
		Metric:  MetricTop1,
	}
}

package model

import (
	"fmt"
	"math"

	"fidelity/internal/metrics"
	"fidelity/internal/tensor"
)

// AppOutput is a decoded application-level output: the object the
// correctness metric compares, as opposed to the raw layer tensor.
type AppOutput struct {
	// Label is the Top-1 class (classification workloads).
	Label int
	// Tokens is the greedy decode (translation workloads).
	Tokens []int
	// Boxes is the decoded detection set (detection workloads).
	Boxes []metrics.Box
	// Raw is the network output tensor.
	Raw *tensor.Tensor
}

// Decode converts a raw network output into the workload's application
// output.
func (w *Workload) Decode(out *tensor.Tensor) AppOutput {
	ao := AppOutput{Raw: out}
	switch w.Metric {
	case MetricTop1:
		ao.Label = out.ArgMax()
	case MetricBLEU:
		seq, vocab := out.Dim(0), out.Dim(1)
		ao.Tokens = make([]int, seq)
		for s := 0; s < seq; s++ {
			best, bestv := 0, float32(math.Inf(-1))
			for v := 0; v < vocab; v++ {
				if x := out.At(s, v); x > bestv {
					best, bestv = v, x
				}
			}
			ao.Tokens[s] = best
		}
	case MetricDetection:
		ao.Boxes = w.decodeBoxes(out)
	}
	return ao
}

// decodeBoxes interprets the Yolo head output (1, g, g, A·(5+C)): per cell
// and anchor, [objectness, cx, cy, w, h, class scores...]. Cells with
// sigmoid(objectness) above threshold emit a box.
func (w *Workload) decodeBoxes(out *tensor.Tensor) []metrics.Box {
	const objThreshold = 0.5
	g, a, c := w.Grid, w.Anchors, w.Classes
	var boxes []metrics.Box
	for gy := 0; gy < g; gy++ {
		for gx := 0; gx < g; gx++ {
			for an := 0; an < a; an++ {
				base := an * (5 + c)
				obj := sigmoid(out.At(0, gy, gx, base))
				if obj < objThreshold {
					continue
				}
				bx := (float64(gx) + sigmoid(out.At(0, gy, gx, base+1))) / float64(g)
				by := (float64(gy) + sigmoid(out.At(0, gy, gx, base+2))) / float64(g)
				bw := 0.05 + 0.5*sigmoid(out.At(0, gy, gx, base+3))
				bh := 0.05 + 0.5*sigmoid(out.At(0, gy, gx, base+4))
				best, bestv := 0, float32(math.Inf(-1))
				for cl := 0; cl < c; cl++ {
					if v := out.At(0, gy, gx, base+5+cl); v > bestv {
						best, bestv = cl, v
					}
				}
				boxes = append(boxes, metrics.Box{
					X: bx - bw/2, Y: by - bh/2, W: bw, H: bh,
					Class: best, Score: obj,
				})
			}
		}
	}
	return boxes
}

func sigmoid(v float32) float64 {
	return 1 / (1 + math.Exp(-float64(v)))
}

// Score computes the workload's quality score of a faulty output against the
// golden output: 1 for a perfect match under the metric. For Top-1 the score
// is 1 (match) or 0 (mismatch).
func (w *Workload) Score(golden, faulty AppOutput) float64 {
	switch w.Metric {
	case MetricTop1:
		if golden.Label == faulty.Label {
			return 1
		}
		return 0
	case MetricBLEU:
		return metrics.BLEU(golden.Tokens, faulty.Tokens)
	case MetricDetection:
		return metrics.DetectionF1(golden.Boxes, faulty.Boxes)
	default:
		return 0
	}
}

// Correct applies the Table IV correctness criterion: Top-1 requires an
// exact label match; BLEU/detection require the score within tol of the
// fault-free score.
func (w *Workload) Correct(golden, faulty AppOutput, tol float64) bool {
	score := w.Score(golden, faulty)
	if w.Metric == MetricTop1 {
		return score == 1
	}
	return metrics.WithinTolerance(score, tol)
}

// Describe summarizes the workload for reports.
func (w *Workload) Describe() string {
	return fmt.Sprintf("%s [%s, %s, %s]", w.Net.Name(), w.Net.Precision, w.Dataset, w.Metric)
}

package model

import (
	"testing"

	"fidelity/internal/dataset"
	"fidelity/internal/metrics"
	"fidelity/internal/nn"
	"fidelity/internal/numerics"
)

// Every model must build at every precision, run its dataset's input, and
// produce a deterministic, decodable output.
func TestAllModelsBuildAndRun(t *testing.T) {
	for _, name := range Names() {
		for _, p := range []numerics.Precision{numerics.FP32, numerics.FP16, numerics.INT16, numerics.INT8} {
			w, err := Build(name, p, 42)
			if err != nil {
				t.Fatalf("%s/%v: %v", name, p, err)
			}
			x, err := dataset.Sample(w.Dataset, 0)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			out := w.Net.Forward(x)
			out2 := w.Net.Forward(x)
			if !out.Equal(out2) {
				t.Errorf("%s/%v: inference is not deterministic", name, p)
			}
			ao := w.Decode(out)
			if ao.Raw == nil {
				t.Errorf("%s/%v: decode lost raw output", name, p)
			}
			if w.Score(ao, ao) != 1 {
				t.Errorf("%s/%v: self-score must be 1", name, p)
			}
			if !w.Correct(ao, w.Decode(out2), 0.1) {
				t.Errorf("%s/%v: identical runs must be correct", name, p)
			}
		}
	}
}

func TestBuildUnknown(t *testing.T) {
	if _, err := Build("alexnet", numerics.FP16, 1); err == nil {
		t.Error("unknown model should fail")
	}
}

// Every model must expose injection sites of the kinds its namesake
// exercises in the paper (Table III).
func TestModelsExposeExpectedSites(t *testing.T) {
	wantKinds := map[string][]nn.Kind{
		"inception":   {nn.KindConv, nn.KindFC},
		"resnet":      {nn.KindConv, nn.KindFC},
		"mobilenet":   {nn.KindConv, nn.KindFC},
		"yolo":        {nn.KindConv},
		"transformer": {nn.KindFC, nn.KindMatMul},
		"rnn":         {nn.KindFC},
	}
	for name, kinds := range wantKinds {
		w, err := Build(name, numerics.FP16, 1)
		if err != nil {
			t.Fatal(err)
		}
		have := map[nn.Kind]bool{}
		for _, s := range w.Net.Sites() {
			have[s.Kind()] = true
		}
		for _, k := range kinds {
			if !have[k] {
				t.Errorf("%s: missing %v sites (have %v)", name, k, have)
			}
		}
		if len(w.Net.Sites()) == 0 {
			t.Errorf("%s: no injection sites", name)
		}
	}
}

// Different seeds must give different outputs (weights actually random) but
// the same seed must give identical networks.
func TestSeedDeterminism(t *testing.T) {
	w1, _ := Build("resnet", numerics.FP16, 7)
	w2, _ := Build("resnet", numerics.FP16, 7)
	w3, _ := Build("resnet", numerics.FP16, 8)
	x, _ := dataset.Sample(dataset.Cifar10Like, 3)
	o1 := w1.Net.Forward(x)
	o2 := w2.Net.Forward(x)
	o3 := w3.Net.Forward(x)
	if !o1.Equal(o2) {
		t.Error("same seed must reproduce the network")
	}
	if o1.Equal(o3) {
		t.Error("different seeds should differ")
	}
}

// The classifier outputs must be proper distributions, and different inputs
// should usually yield different labels across a batch of samples.
func TestClassifierOutputs(t *testing.T) {
	w, _ := Build("inception", numerics.FP16, 11)
	labels := map[int]bool{}
	for i := 0; i < 8; i++ {
		x, _ := dataset.Sample(w.Dataset, i)
		out := w.Net.Forward(x)
		var sum float32
		for _, v := range out.Data() {
			if v < 0 || v > 1 {
				t.Fatalf("softmax output %v out of range", v)
			}
			sum += v
		}
		if sum < 0.99 || sum > 1.01 {
			t.Fatalf("softmax sums to %v", sum)
		}
		labels[w.Decode(out).Label] = true
	}
	if len(labels) < 2 {
		t.Errorf("all 8 inputs mapped to one label — degenerate network")
	}
}

// Yolo must emit at least one box on some inputs (the detection metric needs
// a non-empty golden set to be meaningful).
func TestYoloEmitsBoxes(t *testing.T) {
	w, _ := Build("yolo", numerics.FP16, 5)
	total := 0
	for i := 0; i < 6; i++ {
		x, _ := dataset.Sample(w.Dataset, i)
		ao := w.Decode(w.Net.Forward(x))
		total += len(ao.Boxes)
		for _, b := range ao.Boxes {
			if b.W <= 0 || b.H <= 0 {
				t.Errorf("degenerate box %+v", b)
			}
		}
	}
	if total == 0 {
		t.Error("yolo produced no boxes on 6 scenes")
	}
}

// Transformer decodes full-length token sequences; BLEU of the sequence with
// itself is 1.
func TestTransformerDecode(t *testing.T) {
	w, _ := Build("transformer", numerics.FP16, 9)
	x, _ := dataset.Sample(w.Dataset, 0)
	ao := w.Decode(w.Net.Forward(x))
	if len(ao.Tokens) != x.Dim(0) {
		t.Fatalf("decoded %d tokens for %d positions", len(ao.Tokens), x.Dim(0))
	}
	if metrics.BLEU(ao.Tokens, ao.Tokens) != 1 {
		t.Error("self-BLEU must be 1")
	}
}

func TestMetricKindString(t *testing.T) {
	for _, m := range []MetricKind{MetricTop1, MetricBLEU, MetricDetection, MetricKind(9)} {
		if m.String() == "" {
			t.Error("empty metric name")
		}
	}
	w, _ := Build("rnn", numerics.INT8, 1)
	if w.Describe() == "" {
		t.Error("empty describe")
	}
}

// The bounded variant must match the plain ResNet exactly on fault-free
// inputs whose activations stay inside the bound (same weights, same seed),
// and it must clip injected out-of-range values.
func TestBoundedResNet(t *testing.T) {
	plain, err := Build("resnet", numerics.FP16, 42)
	if err != nil {
		t.Fatal(err)
	}
	bounded, err := Build("resnet-bounded", numerics.FP16, 42)
	if err != nil {
		t.Fatal(err)
	}
	x, _ := dataset.Sample(dataset.Cifar10Like, 0)
	po := plain.Net.Forward(x)
	bo := bounded.Net.Forward(x)
	if plain.Decode(po).Label != bounded.Decode(bo).Label {
		t.Error("bounding must not change the fault-free prediction")
	}
	if len(plain.Net.Sites()) != len(bounded.Net.Sites()) {
		t.Errorf("site counts differ: %d vs %d", len(plain.Net.Sites()), len(bounded.Net.Sites()))
	}
}

// Package reuse implements Reuse Factor Analysis (paper Sec. III-B,
// Algorithm 1), the core of the FIdelity framework: given a target flip-flop
// described by a minimal amount of high-level microarchitectural information,
// it derives the maximum number of output neurons a single-cycle bit-flip in
// that FF can corrupt (the reuse factor, RF), the relative locations of all
// possible faulty neurons, and the order in which they are computed.
package reuse

import (
	"fmt"
	"math/rand"
	"sort"

	"fidelity/internal/accel"
)

// Neuron is a relative output-neuron index in (batch, height, width, channel)
// coordinates, expressed relative to the reference neuron — the first neuron
// computed by the first compute unit at loop 0 (Algorithm 1, input 5).
type Neuron struct {
	Batch, H, W, C int
}

// String renders the neuron coordinate.
func (n Neuron) String() string {
	return fmt.Sprintf("(%d,%d,%d,%d)", n.Batch, n.H, n.W, n.C)
}

// FaultyNeuron is a relative faulty-neuron record with the loop timestamp l
// at which it is generated (Algorithm 1, line 6).
type FaultyNeuron struct {
	Neuron Neuron
	// Loop is the timestamp l: the number of cycles after the target FF last
	// updated its output value when this neuron consumed the faulty value.
	Loop int
}

// UnitID identifies a compute unit (a multiplier for input/weight FFs, an
// accumulator/adder for partial-sum/bias FFs).
type UnitID int

// Input is the complete input set of Algorithm 1. All five inputs come from
// high-level design information: the block diagram gives the FF-to-compute-
// unit connectivity, and the scheduling/reuse algorithm gives the neuron
// mappings.
type Input struct {
	// Var and Stage identify the target FF's category (input 1).
	Var   accel.VarType
	Stage accel.Position

	// FFValueCycles is the maximum number of cycles the target FF holds the
	// same output value (input 2).
	FFValueCycles int

	// Units returns M_l: the compute units that use the target FF's value at
	// the l-th loop after the FF last updated (input 3).
	Units func(l int) []UnitID

	// InEffectCycles returns the number of cycles a single-cycle value in
	// the target FF is in effect at unit m during loop l (input 4).
	InEffectCycles func(m UnitID, l int) int

	// Neurons returns the relative output-neuron indices computed in the
	// y-th cycle by unit m since m started using the target FF's value at
	// loop l (input 5).
	Neurons func(m UnitID, y, l int) []Neuron
}

// Validate checks that the input set is complete and sane.
func (in *Input) Validate() error {
	if in.FFValueCycles <= 0 {
		return fmt.Errorf("reuse: FF_value_cycles must be positive, got %d", in.FFValueCycles)
	}
	if in.Units == nil || in.InEffectCycles == nil || in.Neurons == nil {
		return fmt.Errorf("reuse: Units, InEffectCycles and Neurons functions are all required")
	}
	return nil
}

// Result is the output of Algorithm 1.
type Result struct {
	// RF is the reuse factor: the maximum number of distinct faulty output
	// neurons a single-cycle bit-flip in the target FF can generate.
	RF int
	// Faulty lists the distinct faulty neurons with their loop timestamps,
	// in the order they are generated.
	Faulty []FaultyNeuron
}

// Analyze executes Algorithm 1.
func Analyze(in Input) (Result, error) {
	if err := in.Validate(); err != nil {
		return Result{}, err
	}
	var faulty []FaultyNeuron
	seen := make(map[Neuron]bool)
	for l := 0; l < in.FFValueCycles; l++ { // line 2
		for _, m := range in.Units(l) { // line 3
			ec := in.InEffectCycles(m, l)
			if ec < 0 {
				return Result{}, fmt.Errorf("reuse: negative in_effect_cycles(%d) at loop %d", m, l)
			}
			for cycle := 0; cycle < ec; cycle++ { // line 4
				for _, n := range in.Neurons(m, cycle, l) { // line 5
					if !seen[n] { // insert with dedup (line 6)
						seen[n] = true
						faulty = append(faulty, FaultyNeuron{Neuron: n, Loop: l})
					}
				}
			}
		}
	}
	return Result{RF: len(faulty), Faulty: faulty}, nil // lines 11-12
}

// SampleSubset models a random fault-injection cycle (Sec. III-B1): when the
// target FF holds its output for more than one cycle, the injection may land
// p cycles into the hold window, in which case only neurons with timestamp
// l >= p are corrupted. rng selects p uniformly from [0, FFValueCycles).
// The returned slice preserves generation order.
func (r Result) SampleSubset(ffValueCycles int, rng *rand.Rand) []FaultyNeuron {
	if ffValueCycles <= 1 {
		return append([]FaultyNeuron(nil), r.Faulty...)
	}
	p := rng.Intn(ffValueCycles)
	var out []FaultyNeuron
	for _, f := range r.Faulty {
		if f.Loop >= p {
			out = append(out, f)
		}
	}
	return out
}

// Neurons returns just the neuron coordinates of the result, in generation
// order.
func (r Result) Neurons() []Neuron {
	out := make([]Neuron, len(r.Faulty))
	for i, f := range r.Faulty {
		out[i] = f.Neuron
	}
	return out
}

// Union merges results from multiple datapath FFs, the combination rule for
// local control FFs that are coupled with several datapath FFs (Sec. III-B3:
// "we take the sum of the RF values and the union of FaultyNeurons").
// Duplicate neurons are kept once with their earliest loop timestamp; RF is
// the number of distinct neurons in the union.
func Union(results ...Result) Result {
	seen := make(map[Neuron]int) // neuron -> index in out
	var out []FaultyNeuron
	for _, r := range results {
		for _, f := range r.Faulty {
			if i, ok := seen[f.Neuron]; ok {
				if f.Loop < out[i].Loop {
					out[i].Loop = f.Loop
				}
				continue
			}
			seen[f.Neuron] = len(out)
			out = append(out, f)
		}
	}
	return Result{RF: len(out), Faulty: out}
}

// SortNeurons orders neurons lexicographically by (batch, h, w, c); useful
// for comparing neuron sets from different derivations.
func SortNeurons(ns []Neuron) {
	sort.Slice(ns, func(i, j int) bool {
		a, b := ns[i], ns[j]
		switch {
		case a.Batch != b.Batch:
			return a.Batch < b.Batch
		case a.H != b.H:
			return a.H < b.H
		case a.W != b.W:
			return a.W < b.W
		default:
			return a.C < b.C
		}
	})
}

// EqualNeuronSets reports whether two neuron lists contain the same set of
// coordinates, ignoring order.
func EqualNeuronSets(a, b []Neuron) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]Neuron(nil), a...)
	bs := append([]Neuron(nil), b...)
	SortNeurons(as)
	SortNeurons(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

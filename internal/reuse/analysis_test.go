package reuse

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fidelity/internal/accel"
)

func TestAnalyzeValidation(t *testing.T) {
	if _, err := Analyze(Input{}); err == nil {
		t.Error("empty input should fail")
	}
	in := NVDLATargetA1(4)
	in.FFValueCycles = 0
	if _, err := Analyze(in); err == nil {
		t.Error("zero FF_value_cycles should fail")
	}
	in = NVDLATargetA1(4)
	in.InEffectCycles = func(m UnitID, l int) int { return -1 }
	if _, err := Analyze(in); err == nil {
		t.Error("negative in_effect_cycles should fail")
	}
}

// Fig 2(a): target a1 affects t consecutive neurons in one output channel.
func TestFig2aTargetA1(t *testing.T) {
	const tt = 16
	r, err := Analyze(NVDLATargetA1(tt))
	if err != nil {
		t.Fatal(err)
	}
	if r.RF != tt {
		t.Fatalf("a1 RF = %d, want %d", r.RF, tt)
	}
	for i, f := range r.Faulty {
		want := Neuron{W: i}
		if f.Neuron != want {
			t.Errorf("a1 neuron %d = %v, want %v", i, f.Neuron, want)
		}
		if f.Loop != 0 {
			t.Errorf("a1 loop timestamp = %d, want 0 (single-cycle value)", f.Loop)
		}
	}
}

// Fig 2(a): target a2 affects the same neuron set as a1 but with loop
// timestamps spanning the hold window, so a random injection cycle yields
// between 1 and t faulty neurons.
func TestFig2aTargetA2(t *testing.T) {
	const tt = 16
	r, err := Analyze(NVDLATargetA2(tt))
	if err != nil {
		t.Fatal(err)
	}
	if r.RF != tt {
		t.Fatalf("a2 RF = %d, want %d", r.RF, tt)
	}
	a1, _ := Analyze(NVDLATargetA1(tt))
	if !EqualNeuronSets(r.Neurons(), a1.Neurons()) {
		t.Error("a2 must affect the same neuron set as a1")
	}
	// Timestamps must be 0..t-1 so the injection-cycle subsetting works.
	for i, f := range r.Faulty {
		if f.Loop != i {
			t.Errorf("a2 loop[%d] = %d", i, f.Loop)
		}
	}
	rng := rand.New(rand.NewSource(1))
	sizes := map[int]bool{}
	for i := 0; i < 200; i++ {
		sub := r.SampleSubset(tt, rng)
		if len(sub) < 1 || len(sub) > tt {
			t.Fatalf("a2 subset size %d outside [1,%d]", len(sub), tt)
		}
		sizes[len(sub)] = true
	}
	if len(sizes) < 10 {
		t.Errorf("subset sizes should vary across injections, got %d distinct", len(sizes))
	}
}

// Fig 2(a): target a3's faulty value lasts one cycle: RF = 1.
func TestFig2aTargetA3(t *testing.T) {
	r, err := Analyze(NVDLATargetA3())
	if err != nil {
		t.Fatal(err)
	}
	if r.RF != 1 {
		t.Errorf("a3 RF = %d, want 1", r.RF)
	}
}

// Fig 2(a): target a4 is broadcast to k² multipliers: RF = k², spanning k²
// consecutive channels at one 2-D position.
func TestFig2aTargetA4(t *testing.T) {
	const k2 = 16
	r, err := Analyze(NVDLATargetA4(k2))
	if err != nil {
		t.Fatal(err)
	}
	if r.RF != k2 {
		t.Fatalf("a4 RF = %d, want %d", r.RF, k2)
	}
	for i, f := range r.Faulty {
		if f.Neuron.H != 0 || f.Neuron.W != 0 || f.Neuron.Batch != 0 {
			t.Errorf("a4 neuron %d not at same 2D position: %v", i, f.Neuron)
		}
		if f.Neuron.C != i {
			t.Errorf("a4 neuron %d channel = %d", i, f.Neuron.C)
		}
	}
}

// Fig 2(b): target b1 (systolic weight) corrupts k consecutive rows in one
// column: RF = k.
func TestFig2bTargetB1(t *testing.T) {
	const k = 12
	r, err := Analyze(EyerissTargetB1(k))
	if err != nil {
		t.Fatal(err)
	}
	if r.RF != k {
		t.Fatalf("b1 RF = %d, want %d", r.RF, k)
	}
	for i, f := range r.Faulty {
		if f.Neuron.H != i || f.Neuron.W != 0 || f.Neuron.C != 0 {
			t.Errorf("b1 neuron %d = %v, want row %d col 0", i, f.Neuron, i)
		}
	}
}

// Fig 2(b): target b2 (diagonal input reuse) has RF = k·t across t channels
// × k rows.
func TestFig2bTargetB2(t *testing.T) {
	const k, tt = 12, 7
	r, err := Analyze(EyerissTargetB2(k, tt))
	if err != nil {
		t.Fatal(err)
	}
	if r.RF != k*tt {
		t.Fatalf("b2 RF = %d, want %d", r.RF, k*tt)
	}
	rows := map[int]bool{}
	chans := map[int]bool{}
	for _, f := range r.Faulty {
		rows[f.Neuron.H] = true
		chans[f.Neuron.C] = true
		if f.Neuron.W != 0 {
			t.Errorf("b2 neuron outside last column: %v", f.Neuron)
		}
	}
	if len(rows) != k || len(chans) != tt {
		t.Errorf("b2 spans %d rows × %d channels, want %d × %d", len(rows), len(chans), k, tt)
	}
}

// Fig 2(b): target b3 (bias) has RF = 1.
func TestFig2bTargetB3(t *testing.T) {
	r, err := Analyze(EyerissTargetB3())
	if err != nil {
		t.Fatal(err)
	}
	if r.RF != 1 {
		t.Errorf("b3 RF = %d, want 1", r.RF)
	}
}

// Datapath RF Property (4): along a datapath flow, RF must not increase in
// later pipeline stages. a1 (earlier) vs a2 vs a3 (later) demonstrate the
// monotone chain t >= t >= 1.
func TestRFMonotoneAlongPipeline(t *testing.T) {
	const tt = 16
	a1, _ := Analyze(NVDLATargetA1(tt))
	a2, _ := Analyze(NVDLATargetA2(tt))
	a3, _ := Analyze(NVDLATargetA3())
	if !(a1.RF >= a2.RF && a2.RF >= a3.RF) {
		t.Errorf("RF chain %d >= %d >= %d violated", a1.RF, a2.RF, a3.RF)
	}
}

// Property: RF always equals the number of distinct faulty neurons, and
// never exceeds the total loop×unit×cycle work.
func TestRFBoundsProperty(t *testing.T) {
	f := func(holdRaw, unitsRaw, effRaw uint8) bool {
		hold := int(holdRaw%4) + 1
		nu := int(unitsRaw%4) + 1
		eff := int(effRaw%4) + 1
		units := make([]UnitID, nu)
		for i := range units {
			units[i] = UnitID(i)
		}
		in := Input{
			FFValueCycles:  hold,
			Units:          func(l int) []UnitID { return units },
			InEffectCycles: func(m UnitID, l int) int { return eff },
			Neurons: func(m UnitID, y, l int) []Neuron {
				return []Neuron{{H: int(m), W: y, C: l}}
			},
		}
		r, err := Analyze(in)
		if err != nil {
			return false
		}
		if r.RF != len(r.Faulty) {
			return false
		}
		seen := map[Neuron]bool{}
		for _, fn := range r.Faulty {
			if seen[fn.Neuron] {
				return false // duplicates must be removed
			}
			seen[fn.Neuron] = true
		}
		return r.RF <= hold*nu*eff
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestUnionOfResults(t *testing.T) {
	r1 := Result{RF: 2, Faulty: []FaultyNeuron{
		{Neuron: Neuron{C: 0}, Loop: 1},
		{Neuron: Neuron{C: 1}, Loop: 0},
	}}
	r2 := Result{RF: 2, Faulty: []FaultyNeuron{
		{Neuron: Neuron{C: 1}, Loop: 2},
		{Neuron: Neuron{C: 2}, Loop: 0},
	}}
	u := Union(r1, r2)
	if u.RF != 3 {
		t.Fatalf("union RF = %d, want 3", u.RF)
	}
	// Duplicate neuron C=1 keeps its earliest timestamp 0.
	for _, f := range u.Faulty {
		if f.Neuron.C == 1 && f.Loop != 0 {
			t.Errorf("union kept loop %d for duplicate, want 0", f.Loop)
		}
	}
}

func TestSampleSubsetSingleCycle(t *testing.T) {
	r, _ := Analyze(NVDLATargetA4(4))
	rng := rand.New(rand.NewSource(2))
	sub := r.SampleSubset(1, rng)
	if len(sub) != r.RF {
		t.Errorf("single-cycle subset = %d, want full set %d", len(sub), r.RF)
	}
}

func TestEqualNeuronSets(t *testing.T) {
	a := []Neuron{{C: 1}, {C: 0}}
	b := []Neuron{{C: 0}, {C: 1}}
	if !EqualNeuronSets(a, b) {
		t.Error("order must not matter")
	}
	if EqualNeuronSets(a, b[:1]) {
		t.Error("different sizes must differ")
	}
	if EqualNeuronSets([]Neuron{{C: 1}}, []Neuron{{C: 2}}) {
		t.Error("different members must differ")
	}
}

func TestAnalyzeNVDLACategories(t *testing.T) {
	cfg := accel.NVDLASmall()
	crs, err := AnalyzeNVDLACategories(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(crs) != 5 {
		t.Fatalf("categories = %d, want 5", len(crs))
	}
	byCat := map[string]CategoryResult{}
	for _, cr := range crs {
		byCat[cr.Cat.String()] = cr
	}
	// Table II RF column.
	if !byCat["before CBUF/input"].AllUsers || !byCat["before CBUF/weight"].AllUsers {
		t.Error("before-CBUF categories must be all-users")
	}
	if rf := byCat["between CBUF & MAC/input"].Result.RF; rf != 16 {
		t.Errorf("CBUF→MAC input RF = %d, want 16", rf)
	}
	if rf := byCat["between CBUF & MAC/weight"].Result.RF; rf != 16 {
		t.Errorf("CBUF→MAC weight RF = %d, want 16", rf)
	}
	if rf := byCat["inside MAC/output"].Result.RF; rf != 1 {
		t.Errorf("output RF = %d, want 1", rf)
	}
}

func TestNeuronString(t *testing.T) {
	if (Neuron{1, 2, 3, 4}).String() != "(1,2,3,4)" {
		t.Error("neuron string format")
	}
}

// Property: SampleSubset always returns a suffix-closed subset — every
// neuron with timestamp >= the minimum returned timestamp is included.
func TestSampleSubsetSuffixClosed(t *testing.T) {
	r, err := Analyze(NVDLATargetA2(16))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(64))
	for trial := 0; trial < 200; trial++ {
		sub := r.SampleSubset(16, rng)
		if len(sub) == 0 {
			t.Fatal("subset must not be empty for a full-window result")
		}
		minLoop := sub[0].Loop
		for _, f := range sub {
			if f.Loop < minLoop {
				minLoop = f.Loop
			}
		}
		want := 0
		for _, f := range r.Faulty {
			if f.Loop >= minLoop {
				want++
			}
		}
		if len(sub) != want {
			t.Fatalf("subset of %d not suffix-closed (want %d from loop %d)", len(sub), want, minLoop)
		}
	}
}

// Property: Union is idempotent and commutative on neuron sets.
func TestUnionProperties(t *testing.T) {
	a, _ := Analyze(NVDLATargetA4(8))
	b, _ := Analyze(NVDLATargetA1(4))
	ab := Union(a, b)
	ba := Union(b, a)
	if !EqualNeuronSets(ab.Neurons(), ba.Neurons()) {
		t.Error("union not commutative on neuron sets")
	}
	aa := Union(a, a)
	if aa.RF != a.RF {
		t.Errorf("union not idempotent: %d vs %d", aa.RF, a.RF)
	}
	if ab.RF > a.RF+b.RF {
		t.Errorf("union RF %d exceeds sum %d", ab.RF, a.RF+b.RF)
	}
}

package reuse

import (
	"fmt"

	"fidelity/internal/accel"
)

// This file encodes the worked examples of paper Fig. 2 as Algorithm 1
// inputs. They serve three purposes: documentation of how the five inputs
// are read off a block diagram, regression tests reproducing the figure's RF
// values, and the per-category analysis used to derive the NVDLA software
// fault models of Table II.

// NVDLATargetA1 is Fig 2(a) target a1: a weight FF whose output feeds one
// multiplier (m00) through a downstream register that holds each value for t
// cycles. A single-cycle flip in a1 therefore stays in effect at m00 for t
// cycles, corrupting t consecutive neurons of one output channel (the MACs
// scan the output feature map in row-major order).
func NVDLATargetA1(t int) Input {
	return Input{
		Var:           accel.VarWeight,
		Stage:         accel.CBUFToMAC,
		FFValueCycles: 1,
		Units:         func(l int) []UnitID { return []UnitID{0} },
		InEffectCycles: func(m UnitID, l int) int {
			return t
		},
		Neurons: func(m UnitID, y, l int) []Neuron {
			// Row-major scan: consecutive cycles produce consecutive W
			// positions within the same output channel.
			return []Neuron{{Batch: 0, H: 0, W: y, C: 0}}
		},
	}
}

// NVDLATargetA2 is Fig 2(a) target a2: the weight register that holds each
// value for t cycles, feeding multiplier m00 one operation per cycle. Its
// full faulty-neuron set equals a1's, but because FF_value_cycles = t, a
// random injection cycle corrupts between 1 and t neurons (SampleSubset).
func NVDLATargetA2(t int) Input {
	return Input{
		Var:           accel.VarWeight,
		Stage:         accel.CBUFToMAC,
		FFValueCycles: t,
		Units:         func(l int) []UnitID { return []UnitID{0} },
		InEffectCycles: func(m UnitID, l int) int {
			return 1
		},
		Neurons: func(m UnitID, y, l int) []Neuron {
			return []Neuron{{Batch: 0, H: 0, W: l, C: 0}}
		},
	}
}

// NVDLATargetA3 is Fig 2(a) target a3: a per-cycle weight register directly
// at the multiplier input. The faulty value lasts one cycle and feeds one
// operation: RF = 1.
func NVDLATargetA3() Input {
	return Input{
		Var:           accel.VarWeight,
		Stage:         accel.InsideMAC,
		FFValueCycles: 1,
		Units:         func(l int) []UnitID { return []UnitID{0} },
		InEffectCycles: func(m UnitID, l int) int {
			return 1
		},
		Neurons: func(m UnitID, y, l int) []Neuron {
			return []Neuron{{Batch: 0, H: 0, W: 0, C: 0}}
		},
	}
}

// NVDLATargetA4 is Fig 2(a) target a4: an input FF broadcast to all k²
// multipliers, which compute the output neurons at the same (height, width)
// position in k² consecutive channels in the same cycle: RF = k².
func NVDLATargetA4(kSquared int) Input {
	units := make([]UnitID, kSquared)
	for i := range units {
		units[i] = UnitID(i)
	}
	return Input{
		Var:           accel.VarInput,
		Stage:         accel.CBUFToMAC,
		FFValueCycles: 1,
		Units:         func(l int) []UnitID { return units },
		InEffectCycles: func(m UnitID, l int) int {
			return 1
		},
		Neurons: func(m UnitID, y, l int) []Neuron {
			return []Neuron{{Batch: 0, H: 0, W: 0, C: int(m)}}
		},
	}
}

// EyerissTargetB1 is Fig 2(b) target b1: a weight FF in a k×k systolic array.
// The weight value is passed from one MAC column to the next each cycle, and
// consecutive columns compute consecutive output rows, so a single-cycle
// flip corrupts k neurons occupying k consecutive rows of one output column:
// RF = k.
func EyerissTargetB1(k int) Input {
	units := make([]UnitID, k)
	for i := range units {
		units[i] = UnitID(i)
	}
	return Input{
		Var:           accel.VarWeight,
		Stage:         accel.CBUFToMAC,
		FFValueCycles: 1,
		Units:         func(l int) []UnitID { return units },
		InEffectCycles: func(m UnitID, l int) int {
			return 1
		},
		Neurons: func(m UnitID, y, l int) []Neuron {
			// Column m of the array computes output row m; the faulty weight
			// lands in the same output column of each row.
			return []Neuron{{Batch: 0, H: int(m), W: 0, C: 0}}
		},
	}
}

// EyerissTargetB2 is Fig 2(b) target b2: an input FF whose value is reused
// diagonally across k MACs and, inside each MAC, across t consecutive output
// channels (here the input is only needed for the last output column):
// RF = k·t, occupying t consecutive channels × k consecutive rows in the
// last column.
func EyerissTargetB2(k, t int) Input {
	units := make([]UnitID, k)
	for i := range units {
		units[i] = UnitID(i)
	}
	return Input{
		Var:           accel.VarInput,
		Stage:         accel.CBUFToMAC,
		FFValueCycles: 1,
		Units:         func(l int) []UnitID { return units },
		InEffectCycles: func(m UnitID, l int) int {
			return t
		},
		Neurons: func(m UnitID, y, l int) []Neuron {
			return []Neuron{{Batch: 0, H: int(m), W: 0, C: y}}
		},
	}
}

// EyerissTargetB3 is Fig 2(b) target b3: a bias FF connected to a single
// BiasAdd unit with no temporal reuse: RF = 1.
func EyerissTargetB3() Input {
	return Input{
		Var:           accel.VarBias,
		Stage:         accel.AfterMAC,
		FFValueCycles: 1,
		Units:         func(l int) []UnitID { return []UnitID{0} },
		InEffectCycles: func(m UnitID, l int) int {
			return 1
		},
		Neurons: func(m UnitID, y, l int) []Neuron {
			return []Neuron{{Batch: 0, H: 0, W: 0, C: 0}}
		},
	}
}

// CategoryResult pairs a datapath FF category with its Algorithm 1 result.
type CategoryResult struct {
	Cat    accel.Category
	Result Result
	// AllUsers marks categories whose RF is "all neurons that use the
	// value" (before-CBUF positions, Table I row 1) — the concrete neuron
	// set is layer-dependent and derived by the fault model, not by
	// Algorithm 1.
	AllUsers bool
}

// AnalyzeNVDLACategories runs Reuse Factor Analysis for every datapath FF
// category of an NVDLA-like design (Datapath RF Property 3 makes one
// analysis per category sufficient). This is the derivation behind the
// "RF" column of Table II.
func AnalyzeNVDLACategories(cfg *accel.Config) ([]CategoryResult, error) {
	k2 := cfg.AtomicK
	t := cfg.WeightHoldCycles

	type entry struct {
		cat      accel.Category
		in       *Input
		allUsers bool
	}
	a4 := NVDLATargetA4(k2)
	a2 := NVDLATargetA2(t)
	a3out := Input{ // output/psum register: one neuron per FF (Datapath RF Property 2)
		Var:            accel.VarOutput,
		Stage:          accel.InsideMAC,
		FFValueCycles:  1,
		Units:          func(l int) []UnitID { return []UnitID{0} },
		InEffectCycles: func(m UnitID, l int) int { return 1 },
		Neurons: func(m UnitID, y, l int) []Neuron {
			return []Neuron{{}}
		},
	}
	entries := []entry{
		{cat: accel.Category{Class: accel.Datapath, Var: accel.VarInput, Pos: accel.BeforeCBUF}, allUsers: true},
		{cat: accel.Category{Class: accel.Datapath, Var: accel.VarWeight, Pos: accel.BeforeCBUF}, allUsers: true},
		{cat: accel.Category{Class: accel.Datapath, Var: accel.VarInput, Pos: accel.CBUFToMAC}, in: &a4},
		{cat: accel.Category{Class: accel.Datapath, Var: accel.VarWeight, Pos: accel.CBUFToMAC}, in: &a2},
		{cat: accel.Category{Class: accel.Datapath, Var: accel.VarOutput, Pos: accel.InsideMAC}, in: &a3out},
	}
	var out []CategoryResult
	for _, e := range entries {
		cr := CategoryResult{Cat: e.cat, AllUsers: e.allUsers}
		if e.in != nil {
			r, err := Analyze(*e.in)
			if err != nil {
				return nil, fmt.Errorf("reuse: category %v: %w", e.cat, err)
			}
			cr.Result = r
		}
		out = append(out, cr)
	}
	return out, nil
}

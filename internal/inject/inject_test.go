package inject

import (
	"context"
	"testing"

	"fidelity/internal/accel"
	"fidelity/internal/dataset"
	"fidelity/internal/faultmodel"
	"fidelity/internal/model"
	"fidelity/internal/numerics"
)

func newInjector(t *testing.T, netName string, prec numerics.Precision, seed int64) *Injector {
	t.Helper()
	w, err := model.Build(netName, prec, 42)
	if err != nil {
		t.Fatal(err)
	}
	models, err := faultmodel.Derive(accel.NVDLASmall())
	if err != nil {
		t.Fatal(err)
	}
	s, err := faultmodel.NewSampler(models, seed)
	if err != nil {
		t.Fatal(err)
	}
	inj := New(w, s)
	x, err := dataset.Sample(w.Dataset, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := inj.Prepare(x); err != nil {
		t.Fatal(err)
	}
	return inj
}

func TestRunRequiresPrepare(t *testing.T) {
	w, _ := model.Build("resnet", numerics.FP16, 1)
	models, _ := faultmodel.Derive(accel.NVDLASmall())
	s, _ := faultmodel.NewSampler(models, 1)
	inj := New(w, s)
	if _, err := inj.Run(context.Background(), faultmodel.OutputPSum, 0.1); err == nil {
		t.Error("Run before Prepare should fail")
	}
}

func TestGlobalControlAlwaysFails(t *testing.T) {
	inj := newInjector(t, "resnet", numerics.FP16, 1)
	for i := 0; i < 5; i++ {
		r, err := inj.Run(context.Background(), faultmodel.GlobalControl, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		if r.Outcome != SystemAnomaly || !r.Outcome.Failed() {
			t.Fatalf("global control outcome = %v", r.Outcome)
		}
	}
}

func TestDatapathInjectionOutcomes(t *testing.T) {
	inj := newInjector(t, "resnet", numerics.FP16, 2)
	counts := map[Outcome]int{}
	for i := 0; i < 60; i++ {
		r, err := inj.Run(context.Background(), faultmodel.OutputPSum, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		counts[r.Outcome]++
		if r.Outcome == SystemAnomaly {
			t.Fatal("datapath faults cannot time out in software injection")
		}
		if r.FaultyNeurons > 1 {
			t.Fatalf("output/psum model changed %d neurons, want <= 1", r.FaultyNeurons)
		}
	}
	// RF=1 single-bit flips in a CNN are mostly masked but not always.
	if counts[Masked] == 0 {
		t.Error("expected some masked outcomes")
	}
}

// CBUF→MAC faults touch at most RF neurons; before-CBUF faults can touch
// many more.
func TestModelNeuronCounts(t *testing.T) {
	inj := newInjector(t, "resnet", numerics.FP16, 3)
	maxCBUF, maxBefore := 0, 0
	for i := 0; i < 40; i++ {
		r, err := inj.Run(context.Background(), faultmodel.CBUFMACInput, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		if r.FaultyNeurons > 16 {
			t.Fatalf("CBUF→MAC input changed %d neurons, want <= 16", r.FaultyNeurons)
		}
		if r.FaultyNeurons > maxCBUF {
			maxCBUF = r.FaultyNeurons
		}
		rb, err := inj.Run(context.Background(), faultmodel.BeforeCBUFWeight, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		if rb.FaultyNeurons > maxBefore {
			maxBefore = rb.FaultyNeurons
		}
	}
	if maxBefore <= maxCBUF {
		t.Errorf("before-CBUF faults should reach more neurons: %d vs %d", maxBefore, maxCBUF)
	}
}

func TestLocalControlRF1(t *testing.T) {
	inj := newInjector(t, "mobilenet", numerics.FP16, 4)
	for i := 0; i < 20; i++ {
		r, err := inj.Run(context.Background(), faultmodel.LocalControl, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		if r.FaultyNeurons > 1 {
			t.Fatalf("local control changed %d neurons", r.FaultyNeurons)
		}
	}
}

// The transformer exercises FC and MatMul sites via LSTM-free attention
// paths; injections must complete and classify.
func TestTransformerInjection(t *testing.T) {
	inj := newInjector(t, "transformer", numerics.FP16, 5)
	for _, id := range []faultmodel.ID{faultmodel.CBUFMACInput, faultmodel.CBUFMACWeight, faultmodel.OutputPSum} {
		r, err := inj.Run(context.Background(), id, 0.1)
		if err != nil {
			t.Fatalf("%v: %v", id, err)
		}
		if r.Score < 0 || r.Score > 1.0001 {
			t.Errorf("%v: score %v out of range", id, r.Score)
		}
	}
}

// The RNN's gate Dense runs once per timestep; injection must land on a
// specific visit without error.
func TestRNNInjectionVisits(t *testing.T) {
	inj := newInjector(t, "rnn", numerics.FP16, 6)
	for i := 0; i < 10; i++ {
		if _, err := inj.Run(context.Background(), faultmodel.CBUFMACWeight, 0.1); err != nil {
			t.Fatal(err)
		}
	}
}

// Wider tolerance can only increase masking (Key Result 3's mechanism).
func TestToleranceMonotonic(t *testing.T) {
	inj := newInjector(t, "yolo", numerics.FP16, 7)
	masked10, masked20 := 0, 0
	for i := 0; i < 40; i++ {
		r, err := inj.Run(context.Background(), faultmodel.BeforeCBUFInput, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		if r.Outcome == Masked {
			masked10++
		}
		// Reclassify the same score under 20%.
		if r.Outcome == Masked || r.Score >= 0.8 {
			masked20++
		}
	}
	if masked20 < masked10 {
		t.Errorf("20%% tolerance masked fewer than 10%%: %d < %d", masked20, masked10)
	}
}

func TestOutcomeStrings(t *testing.T) {
	for _, o := range []Outcome{Masked, OutputError, SystemAnomaly, Outcome(9)} {
		if o.String() == "" {
			t.Error("empty outcome name")
		}
	}
	if Masked.Failed() || !OutputError.Failed() || !SystemAnomaly.Failed() {
		t.Error("Failed classification wrong")
	}
}

// RunAt pins the injection to a specific execution.
func TestRunAtPinsSite(t *testing.T) {
	inj := newInjector(t, "rnn", numerics.FP16, 8)
	n := inj.Executions()
	if n < 2 {
		t.Fatalf("rnn should have many executions, got %d", n)
	}
	if _, err := inj.RunAt(context.Background(), -1, faultmodel.OutputPSum, 0.1); err == nil {
		t.Error("negative index should fail")
	}
	if _, err := inj.RunAt(context.Background(), n, faultmodel.OutputPSum, 0.1); err == nil {
		t.Error("out-of-range index should fail")
	}
	r, err := inj.RunAt(context.Background(), 0, faultmodel.OutputPSum, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// Execution 0 is the first gate Dense invocation.
	if r.Site != "lstm/gates" {
		t.Errorf("pinned site = %s", r.Site)
	}
	// The last execution is the classifier head.
	r, err = inj.RunAt(context.Background(), n-1, faultmodel.OutputPSum, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Site != "fc" {
		t.Errorf("pinned last site = %s", r.Site)
	}
}

// TestPredictTargetMatchesPick verifies PredictTarget's core contract: for
// any experiment seed, the scratch-generator prediction lands on exactly the
// execution that pickExec draws after Reseed(seed). Site-grouped batching in
// the campaign engine is sound only if this holds for every seed, so sweep a
// few hundred across topologies with very different work distributions.
func TestPredictTargetMatchesPick(t *testing.T) {
	for _, net := range []string{"inception", "rnn", "mobilenet"} {
		inj := newInjector(t, net, numerics.FP16, 1)
		for seed := int64(0); seed < 300; seed++ {
			want := inj.PredictTarget(seed)
			inj.Sampler.Reseed(seed)
			got := inj.pickExec()
			w := inj.execs[want]
			if got.Site != w.Site || got.Visit != w.Visit {
				t.Fatalf("%s seed %d: PredictTarget -> %s#%d, pickExec -> %s#%d",
					net, seed, w.Site.Name(), w.Visit, got.Site.Name(), got.Visit)
			}
		}
	}
}

// TestPredictTargetMatchesRun closes the loop end to end: a full Run seeded
// at seed must report the site PredictTarget named, proving that no draw
// before target selection was missed.
func TestPredictTargetMatchesRun(t *testing.T) {
	inj := newInjector(t, "resnet", numerics.FP16, 1)
	for seed := int64(0); seed < 30; seed++ {
		want := inj.Execution(inj.PredictTarget(seed)).Site.Name()
		inj.Sampler.Reseed(seed)
		r, err := inj.Run(context.Background(), faultmodel.OutputPSum, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		if r.Site != want {
			t.Fatalf("seed %d: Run hit %s, PredictTarget said %s", seed, r.Site, want)
		}
	}
}

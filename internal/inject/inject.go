// Package inject is step 2 of the FIdelity flow: it applies the software
// fault models to end-to-end inference runs of the nn substrate and
// classifies each experiment's outcome (masked vs. application output error
// vs. system anomaly), producing the Prob_SWmask statistics Eq. 2 consumes.
package inject

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"fidelity/internal/faultmodel"
	"fidelity/internal/model"
	"fidelity/internal/nn"
	"fidelity/internal/tensor"
)

// Outcome classifies one fault-injection experiment (Sec. III-D: masked vs.
// system failure, where failure covers output errors and system anomalies).
type Outcome int

const (
	// Masked: the application output is sufficiently similar to the golden
	// output under the workload's correctness metric.
	Masked Outcome = iota
	// OutputError: the application output violates the correctness metric.
	OutputError
	// SystemAnomaly: time-out or hang (global-control faults).
	SystemAnomaly
	// FrameworkFault: the experiment did not produce an application outcome
	// because the injection framework itself failed — a panic in the
	// recompute path or a watchdog-killed hang. It is a harness outcome, not
	// a hardware one: the campaign supervisor quarantines the experiment and
	// excludes it from the Prob_SWmask statistics Eq. 2 consumes.
	FrameworkFault
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case Masked:
		return "masked"
	case OutputError:
		return "output-error"
	case SystemAnomaly:
		return "system-anomaly"
	case FrameworkFault:
		return "framework-fault"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Failed reports whether the outcome counts as a system failure in Eq. 2.
func (o Outcome) Failed() bool { return o != Masked }

// ReplayCost reports what the incremental replay engine did during one
// experiment's forward pass. Nil on Results produced by the full-forward
// path (replay disabled, or global-control shortcuts that run no forward).
type ReplayCost struct {
	// Skipped counts layer executions served from the golden trace.
	Skipped int
	// Recomputed counts layer executions in the fault's downstream cone.
	Recomputed int
	// Converged counts recomputed executions whose output matched golden
	// again, re-enabling skips downstream.
	Converged int
	// RegionSwept counts recomputed executions served by the dirty-region
	// sweep: only the output box reached by the fault was recomputed.
	RegionSwept int
	// MACsAvoided estimates the MAC work of skipped site executions.
	MACsAvoided float64
	// ArenaReuses counts output buffers recycled instead of allocated.
	ArenaReuses int64
}

// HardenCost reports what range-restriction clamping did during one
// experiment's forward pass. Nil for unhardened networks and for
// global-control shortcuts that run no forward pass.
type HardenCost struct {
	// ClampApplications counts site executions whose output was
	// bounds-checked.
	ClampApplications int64
	// Saturated counts individual output values forced back into the
	// profiled envelope.
	Saturated int64
}

// Result records one experiment.
type Result struct {
	Outcome Outcome
	Model   faultmodel.ID
	Site    string
	// FaultyNeurons is the number of output neurons changed at the injected
	// layer.
	FaultyNeurons int
	// MaxPerturbation is the largest |faulty − golden| among the changed
	// neurons (Key Result 5's quantity). Infinities and NaN map to +Inf.
	MaxPerturbation float64
	// Score is the application quality score vs. the golden output.
	Score float64
	// Replay carries the replay engine's per-experiment savings, nil when
	// the experiment ran the full forward pass.
	Replay *ReplayCost
	// Harden carries the clamp counters of a hardened network's forward
	// pass, nil otherwise. Like Replay, it is run-cost telemetry, not part
	// of the experiment outcome.
	Harden *HardenCost
}

// Injector runs fault-injection experiments against one workload.
type Injector struct {
	W       *model.Workload
	Sampler *faultmodel.Sampler

	// DisableReplay forces every experiment through the legacy full forward
	// pass. The replay engine is bit-identical to it; the switch exists for
	// differential testing and as an operational escape hatch.
	DisableReplay bool

	// DisableRegionSweep makes replayed recomputes cover whole layers instead
	// of only the dirty output region. Bit-identical either way; the switch
	// exists for differential testing and as an operational escape hatch.
	DisableRegionSweep bool

	// cached golden state per input
	input   *tensor.Tensor
	golden  model.AppOutput
	execs   []nn.SiteExecution
	weights []float64
	total   float64

	// replay state (nil when DisableReplay)
	trace *nn.GoldenTrace
	arena *nn.Arena
	rctx  *nn.Context
}

// New builds an injector for workload w with sampler s.
func New(w *model.Workload, s *faultmodel.Sampler) *Injector {
	return &Injector{W: w, Sampler: s}
}

// Golden is the recorded golden state for one input: the decoded clean
// inference output, every site execution (with golden activations when
// traced for replay), the work-proportional sampling weights, and the replay
// trace. It is immutable once TraceGolden returns, so a campaign records it
// once per input and shares it across every shard's injector — replay only
// reads the trace, and each injector keeps its own mutable replay context.
type Golden struct {
	input   *tensor.Tensor
	golden  model.AppOutput
	execs   []nn.SiteExecution
	weights []float64
	total   float64
	trace   *nn.GoldenTrace // nil when traced without replay support
}

// Input returns the input tensor the golden state was recorded for. It is
// read-only for the lifetime of the Golden: injection never mutates the
// network input (faults land on operands and outputs of site executions).
func (g *Golden) Input() *tensor.Tensor { return g.input }

// TraceGolden runs the golden inference for x and records the shared golden
// state. withReplay selects the activation-recording trace the replay engine
// consumes; pass false only when every sharing injector sets DisableReplay.
func TraceGolden(w *model.Workload, x *tensor.Tensor, withReplay bool) (*Golden, error) {
	g := &Golden{input: x}
	var out *tensor.Tensor
	if withReplay {
		out, g.execs, g.trace = w.Net.TraceWithActivations(x)
	} else {
		out, g.execs = w.Net.Trace(x)
	}
	if len(g.execs) == 0 {
		return nil, fmt.Errorf("inject: workload %s has no injection sites", w.Net.Name())
	}
	g.golden = w.Decode(out)
	g.weights = make([]float64, len(g.execs))
	for i, e := range g.execs {
		g.weights[i] = execWork(e)
		g.total += g.weights[i]
		if g.trace != nil {
			g.trace.SetWork(e.Site, e.Visit, g.weights[i])
		}
	}
	return g, nil
}

// Prepare runs the golden inference for input x and caches the trace —
// including, unless DisableReplay is set, the golden output tensor of every
// layer execution, which subsequent Runs replay incrementally instead of
// recomputing the full network. Must be called before Run; call again to
// switch inputs. Campaigns with several injectors over the same input should
// TraceGolden once and PrepareGolden each injector instead.
func (in *Injector) Prepare(x *tensor.Tensor) error {
	g, err := TraceGolden(in.W, x, !in.DisableReplay)
	if err != nil {
		return err
	}
	return in.PrepareGolden(g)
}

// PrepareGolden initializes the injector from a shared Golden, skipping the
// golden forward pass. g must have been traced with withReplay matching
// !in.DisableReplay, for the injector's own workload.
func (in *Injector) PrepareGolden(g *Golden) error {
	if (g.trace == nil) != in.DisableReplay {
		return fmt.Errorf("inject: golden trace recorded with withReplay=%v but injector has DisableReplay=%v",
			g.trace != nil, in.DisableReplay)
	}
	in.input = g.input
	in.golden = g.golden
	in.execs = g.execs
	in.weights = g.weights
	in.total = g.total
	in.trace = g.trace
	if in.DisableReplay {
		in.arena, in.rctx = nil, nil
		return nil
	}
	in.arena = nn.NewArena()
	in.rctx = nn.NewReplayContext(in.trace, in.arena)
	in.rctx.SetRegionSweep(!in.DisableRegionSweep)
	return nil
}

// execWork estimates the MAC work of a site execution: output size times the
// reduction length — the proxy for the time share during which the layer's
// values occupy the accelerator datapath.
func execWork(e nn.SiteExecution) float64 {
	red := 1.0
	if c, ok := e.Site.(*nn.Conv2D); ok && c.Depthwise {
		// One filter per channel: the reduction is just the kernel window.
		red = float64(c.KH * c.KW)
	} else if len(e.WShape) > 0 {
		wsize := 1
		for _, d := range e.WShape {
			wsize *= d
		}
		outCh := e.WShape[len(e.WShape)-1]
		if e.Site != nil && e.Site.Kind() != nn.KindConv {
			outCh = e.WShape[1] // (K, N) layout
		}
		if outCh > 0 {
			red = float64(wsize) / float64(outCh)
		}
	}
	return float64(e.OutSize) * red
}

// pickExec samples a site execution proportionally to its work.
func (in *Injector) pickExec() nn.SiteExecution {
	r := in.Sampler.Rand().Float64() * in.total
	for i, w := range in.weights {
		r -= w
		if r <= 0 {
			return in.execs[i]
		}
	}
	return in.execs[len(in.execs)-1]
}

// PredictTarget returns the execution index a Run whose experiment stream is
// seeded at seed will target, without touching the injector's own sampler.
// The target draw is the first Float64 of the stream (pickExec), so a scratch
// generator over the same seed reproduces it exactly. Campaigns use this to
// group a batch of cursor-derived experiments by target site before running
// them: grouping is sound precisely because each experiment re-derives its
// whole stream from its cursor seed, so execution order cannot change any
// drawn value.
func (in *Injector) PredictTarget(seed int64) int {
	r := rand.New(faultmodel.NewStreamSource(seed)).Float64() * in.total
	for i, w := range in.weights {
		r -= w
		if r <= 0 {
			return i
		}
	}
	return len(in.execs) - 1
}

// Golden returns the cached fault-free application output.
func (in *Injector) Golden() model.AppOutput { return in.golden }

// Executions returns the number of recorded site executions for the
// prepared input.
func (in *Injector) Executions() int { return len(in.execs) }

// Execution returns the i-th recorded site execution.
func (in *Injector) Execution(i int) nn.SiteExecution { return in.execs[i] }

// Run executes one experiment: sample a fault of model id at a work-weighted
// site execution, inject it, and classify the outcome under tolerance tol.
// A single experiment is the cancellation atom: ctx is checked once on
// entry, before any sampler draw, so a cancelled Run never advances the
// sampler's random stream (which is what keeps checkpoints exact).
func (in *Injector) Run(ctx context.Context, id faultmodel.ID, tol float64) (Result, error) {
	return in.run(ctx, id, tol, -1)
}

// RunAt executes one experiment pinned to the execIdx-th site execution —
// used by per-layer campaigns that estimate Prob_SWmask(cat, r) separately
// for every layer r.
func (in *Injector) RunAt(ctx context.Context, execIdx int, id faultmodel.ID, tol float64) (Result, error) {
	if execIdx < 0 || execIdx >= len(in.execs) {
		return Result{}, fmt.Errorf("inject: execution %d outside [0,%d)", execIdx, len(in.execs))
	}
	return in.run(ctx, id, tol, execIdx)
}

func (in *Injector) run(ctx context.Context, id faultmodel.ID, tol float64, execIdx int) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	if in.input == nil {
		return Result{}, fmt.Errorf("inject: Prepare must be called first")
	}
	res := Result{Model: id}
	if id == faultmodel.GlobalControl {
		// FIdelity models faults in active global control FFs as always
		// failing (Prob_SWmask = 0); the concrete anomaly is a time-out or
		// massive corruption.
		res.Outcome = SystemAnomaly
		res.Site = "global"
		res.Score = 0
		return res, nil
	}
	target := in.pickExec()
	if execIdx >= 0 {
		target = in.execs[execIdx]
	}
	res.Site = target.Site.Name()

	var plan *faultmodel.Plan
	var changes []faultmodel.Change
	var planErr error
	var fctx *nn.Context
	hook := func(site nn.Layer, visit int, op *nn.Operands) {
		s, ok := site.(nn.Site)
		if !ok || s != target.Site || visit != target.Visit || planErr != nil || plan != nil {
			return
		}
		// One experiment injects exactly once: detach the hook so the rest
		// of the traversal stops paying for dispatch and visit re-checks.
		defer fctx.Detach()
		plan, planErr = in.Sampler.Plan(id, s, visit, op)
		if planErr != nil {
			return
		}
		changes = faultmodel.Apply(plan, s, op)
	}
	var out *tensor.Tensor
	if in.rctx != nil {
		// Incremental replay: reclaim last experiment's buffers (also after
		// a recovered panic mid-pass), arm the target, and let the context
		// serve golden tensors for everything outside the fault's cone.
		in.arena.Reset()
		arenaBase := in.arena.Reuses()
		fctx = in.rctx
		fctx.SetTarget(target.Site, target.Visit, hook)
		out = in.W.Net.ForwardWithContext(in.input, fctx)
		st := fctx.Stats()
		res.Replay = &ReplayCost{
			Skipped:     st.Skipped,
			Recomputed:  st.Recomputed,
			Converged:   st.Converged,
			RegionSwept: st.RegionSwept,
			MACsAvoided: st.MACsAvoided,
			ArenaReuses: in.arena.Reuses() - arenaBase,
		}
	} else {
		fctx = nn.NewContext(hook)
		out = in.W.Net.ForwardWithContext(in.input, fctx)
	}
	if in.W.Net.Hardened() {
		hs := fctx.HardenStats()
		res.Harden = &HardenCost{ClampApplications: hs.ClampApplications, Saturated: hs.Saturated}
	}
	if planErr != nil {
		return Result{}, planErr
	}
	if plan == nil {
		return Result{}, fmt.Errorf("inject: target execution %s#%d not reached", target.Site.Name(), target.Visit)
	}

	res.FaultyNeurons = len(changes)
	for _, c := range changes {
		d := math.Abs(float64(c.Faulty) - float64(c.Golden))
		if math.IsNaN(d) {
			d = math.Inf(1)
		}
		if d > res.MaxPerturbation {
			res.MaxPerturbation = d
		}
	}
	if len(changes) == 0 {
		// The flip did not alter any stored output value: architecturally
		// masked at the layer itself.
		res.Outcome = Masked
		res.Score = 1
		return res, nil
	}
	faulty := in.W.Decode(out)
	res.Score = in.W.Score(in.golden, faulty)
	if in.W.Correct(in.golden, faulty, tol) {
		res.Outcome = Masked
	} else {
		res.Outcome = OutputError
	}
	return res, nil
}

// Package inject is step 2 of the FIdelity flow: it applies the software
// fault models to end-to-end inference runs of the nn substrate and
// classifies each experiment's outcome (masked vs. application output error
// vs. system anomaly), producing the Prob_SWmask statistics Eq. 2 consumes.
package inject

import (
	"context"
	"fmt"
	"math"

	"fidelity/internal/faultmodel"
	"fidelity/internal/model"
	"fidelity/internal/nn"
	"fidelity/internal/tensor"
)

// Outcome classifies one fault-injection experiment (Sec. III-D: masked vs.
// system failure, where failure covers output errors and system anomalies).
type Outcome int

const (
	// Masked: the application output is sufficiently similar to the golden
	// output under the workload's correctness metric.
	Masked Outcome = iota
	// OutputError: the application output violates the correctness metric.
	OutputError
	// SystemAnomaly: time-out or hang (global-control faults).
	SystemAnomaly
	// FrameworkFault: the experiment did not produce an application outcome
	// because the injection framework itself failed — a panic in the
	// recompute path or a watchdog-killed hang. It is a harness outcome, not
	// a hardware one: the campaign supervisor quarantines the experiment and
	// excludes it from the Prob_SWmask statistics Eq. 2 consumes.
	FrameworkFault
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case Masked:
		return "masked"
	case OutputError:
		return "output-error"
	case SystemAnomaly:
		return "system-anomaly"
	case FrameworkFault:
		return "framework-fault"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Failed reports whether the outcome counts as a system failure in Eq. 2.
func (o Outcome) Failed() bool { return o != Masked }

// ReplayCost reports what the incremental replay engine did during one
// experiment's forward pass. Nil on Results produced by the full-forward
// path (replay disabled, or global-control shortcuts that run no forward).
type ReplayCost struct {
	// Skipped counts layer executions served from the golden trace.
	Skipped int
	// Recomputed counts layer executions in the fault's downstream cone.
	Recomputed int
	// Converged counts recomputed executions whose output matched golden
	// again, re-enabling skips downstream.
	Converged int
	// MACsAvoided estimates the MAC work of skipped site executions.
	MACsAvoided float64
	// ArenaReuses counts output buffers recycled instead of allocated.
	ArenaReuses int64
}

// Result records one experiment.
type Result struct {
	Outcome Outcome
	Model   faultmodel.ID
	Site    string
	// FaultyNeurons is the number of output neurons changed at the injected
	// layer.
	FaultyNeurons int
	// MaxPerturbation is the largest |faulty − golden| among the changed
	// neurons (Key Result 5's quantity). Infinities and NaN map to +Inf.
	MaxPerturbation float64
	// Score is the application quality score vs. the golden output.
	Score float64
	// Replay carries the replay engine's per-experiment savings, nil when
	// the experiment ran the full forward pass.
	Replay *ReplayCost
}

// Injector runs fault-injection experiments against one workload.
type Injector struct {
	W       *model.Workload
	Sampler *faultmodel.Sampler

	// DisableReplay forces every experiment through the legacy full forward
	// pass. The replay engine is bit-identical to it; the switch exists for
	// differential testing and as an operational escape hatch.
	DisableReplay bool

	// cached golden state per input
	input   *tensor.Tensor
	golden  model.AppOutput
	execs   []nn.SiteExecution
	weights []float64
	total   float64

	// replay state (nil when DisableReplay)
	trace *nn.GoldenTrace
	arena *nn.Arena
	rctx  *nn.Context
}

// New builds an injector for workload w with sampler s.
func New(w *model.Workload, s *faultmodel.Sampler) *Injector {
	return &Injector{W: w, Sampler: s}
}

// Prepare runs the golden inference for input x and caches the trace —
// including, unless DisableReplay is set, the golden output tensor of every
// layer execution, which subsequent Runs replay incrementally instead of
// recomputing the full network. Must be called before Run; call again to
// switch inputs.
func (in *Injector) Prepare(x *tensor.Tensor) error {
	var out *tensor.Tensor
	var execs []nn.SiteExecution
	if in.DisableReplay {
		out, execs = in.W.Net.Trace(x)
		in.trace, in.arena, in.rctx = nil, nil, nil
	} else {
		out, execs, in.trace = in.W.Net.TraceWithActivations(x)
		in.arena = nn.NewArena()
		in.rctx = nn.NewReplayContext(in.trace, in.arena)
	}
	if len(execs) == 0 {
		return fmt.Errorf("inject: workload %s has no injection sites", in.W.Net.Name())
	}
	in.input = x
	in.golden = in.W.Decode(out)
	in.execs = execs
	in.weights = make([]float64, len(execs))
	in.total = 0
	for i, e := range in.execs {
		in.weights[i] = execWork(e)
		in.total += in.weights[i]
		if in.trace != nil {
			in.trace.SetWork(e.Site, e.Visit, in.weights[i])
		}
	}
	return nil
}

// execWork estimates the MAC work of a site execution: output size times the
// reduction length — the proxy for the time share during which the layer's
// values occupy the accelerator datapath.
func execWork(e nn.SiteExecution) float64 {
	red := 1.0
	if c, ok := e.Site.(*nn.Conv2D); ok && c.Depthwise {
		// One filter per channel: the reduction is just the kernel window.
		red = float64(c.KH * c.KW)
	} else if len(e.WShape) > 0 {
		wsize := 1
		for _, d := range e.WShape {
			wsize *= d
		}
		outCh := e.WShape[len(e.WShape)-1]
		if e.Site != nil && e.Site.Kind() != nn.KindConv {
			outCh = e.WShape[1] // (K, N) layout
		}
		if outCh > 0 {
			red = float64(wsize) / float64(outCh)
		}
	}
	return float64(e.OutSize) * red
}

// pickExec samples a site execution proportionally to its work.
func (in *Injector) pickExec() nn.SiteExecution {
	r := in.Sampler.Rand().Float64() * in.total
	for i, w := range in.weights {
		r -= w
		if r <= 0 {
			return in.execs[i]
		}
	}
	return in.execs[len(in.execs)-1]
}

// Golden returns the cached fault-free application output.
func (in *Injector) Golden() model.AppOutput { return in.golden }

// Executions returns the number of recorded site executions for the
// prepared input.
func (in *Injector) Executions() int { return len(in.execs) }

// Execution returns the i-th recorded site execution.
func (in *Injector) Execution(i int) nn.SiteExecution { return in.execs[i] }

// Run executes one experiment: sample a fault of model id at a work-weighted
// site execution, inject it, and classify the outcome under tolerance tol.
// A single experiment is the cancellation atom: ctx is checked once on
// entry, before any sampler draw, so a cancelled Run never advances the
// sampler's random stream (which is what keeps checkpoints exact).
func (in *Injector) Run(ctx context.Context, id faultmodel.ID, tol float64) (Result, error) {
	return in.run(ctx, id, tol, -1)
}

// RunAt executes one experiment pinned to the execIdx-th site execution —
// used by per-layer campaigns that estimate Prob_SWmask(cat, r) separately
// for every layer r.
func (in *Injector) RunAt(ctx context.Context, execIdx int, id faultmodel.ID, tol float64) (Result, error) {
	if execIdx < 0 || execIdx >= len(in.execs) {
		return Result{}, fmt.Errorf("inject: execution %d outside [0,%d)", execIdx, len(in.execs))
	}
	return in.run(ctx, id, tol, execIdx)
}

func (in *Injector) run(ctx context.Context, id faultmodel.ID, tol float64, execIdx int) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	if in.input == nil {
		return Result{}, fmt.Errorf("inject: Prepare must be called first")
	}
	res := Result{Model: id}
	if id == faultmodel.GlobalControl {
		// FIdelity models faults in active global control FFs as always
		// failing (Prob_SWmask = 0); the concrete anomaly is a time-out or
		// massive corruption.
		res.Outcome = SystemAnomaly
		res.Site = "global"
		res.Score = 0
		return res, nil
	}
	target := in.pickExec()
	if execIdx >= 0 {
		target = in.execs[execIdx]
	}
	res.Site = target.Site.Name()

	var plan *faultmodel.Plan
	var changes []faultmodel.Change
	var planErr error
	var fctx *nn.Context
	hook := func(site nn.Layer, visit int, op *nn.Operands) {
		s, ok := site.(nn.Site)
		if !ok || s != target.Site || visit != target.Visit || planErr != nil || plan != nil {
			return
		}
		// One experiment injects exactly once: detach the hook so the rest
		// of the traversal stops paying for dispatch and visit re-checks.
		defer fctx.Detach()
		plan, planErr = in.Sampler.Plan(id, s, visit, op)
		if planErr != nil {
			return
		}
		changes = faultmodel.Apply(plan, s, op)
	}
	var out *tensor.Tensor
	if in.rctx != nil {
		// Incremental replay: reclaim last experiment's buffers (also after
		// a recovered panic mid-pass), arm the target, and let the context
		// serve golden tensors for everything outside the fault's cone.
		in.arena.Reset()
		arenaBase := in.arena.Reuses()
		fctx = in.rctx
		fctx.SetTarget(target.Site, target.Visit, hook)
		out = in.W.Net.ForwardWithContext(in.input, fctx)
		st := fctx.Stats()
		res.Replay = &ReplayCost{
			Skipped:     st.Skipped,
			Recomputed:  st.Recomputed,
			Converged:   st.Converged,
			MACsAvoided: st.MACsAvoided,
			ArenaReuses: in.arena.Reuses() - arenaBase,
		}
	} else {
		fctx = nn.NewContext(hook)
		out = in.W.Net.ForwardWithContext(in.input, fctx)
	}
	if planErr != nil {
		return Result{}, planErr
	}
	if plan == nil {
		return Result{}, fmt.Errorf("inject: target execution %s#%d not reached", target.Site.Name(), target.Visit)
	}

	res.FaultyNeurons = len(changes)
	for _, c := range changes {
		d := math.Abs(float64(c.Faulty) - float64(c.Golden))
		if math.IsNaN(d) {
			d = math.Inf(1)
		}
		if d > res.MaxPerturbation {
			res.MaxPerturbation = d
		}
	}
	if len(changes) == 0 {
		// The flip did not alter any stored output value: architecturally
		// masked at the layer itself.
		res.Outcome = Masked
		res.Score = 1
		return res, nil
	}
	faulty := in.W.Decode(out)
	res.Score = in.W.Score(in.golden, faulty)
	if in.W.Correct(in.golden, faulty, tol) {
		res.Outcome = Masked
	} else {
		res.Outcome = OutputError
	}
	return res, nil
}

package distrib

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"fidelity/internal/campaign"
	"fidelity/internal/telemetry"
)

// chaosSpec is a compact campaign for the chaos matrix: small enough that 6
// profiles × 3 worker counts stay tractable under -race, real enough that
// every protocol path (lease, heartbeat, final, re-issue) gets exercised.
func chaosSpec() CampaignSpec {
	return CampaignSpec{
		Workload:     "mobilenet",
		Precision:    "fp16",
		WorkloadSeed: 42,
		Tolerance:    0.05,
		Samples:      24,
		Inputs:       1,
		Seed:         11,
		Shards:       6,
	}.Normalize()
}

// startChaosWorkers launches n Work loops whose HTTP clients route through
// per-worker seeded ChaosTransports.
func startChaosWorkers(ctx context.Context, t *testing.T, base string, n int, profile ChaosProfile, seedBase int64) func() {
	t.Helper()
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = Work(ctx, WorkerOptions{
				BaseURL: base,
				ID:      fmt.Sprintf("chaos-%d", i),
				Poll:    10 * time.Millisecond,
				HTTPClient: &http.Client{
					Transport: NewChaosTransport(seedBase+int64(i), profile, nil),
				},
				Telemetry:    telemetry.New(),
				PublishEvery: 4,
			})
		}(i)
	}
	return func() {
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Errorf("chaos worker %d: %v", i, err)
			}
		}
	}
}

// TestChaosTransportDifferential is the tentpole proof: under every chaos
// profile — dropped connections, lost replies, latency, duplicated
// deliveries, truncated bodies, bit-corrupted bodies, 5xx bursts — at 1, 2
// and 4 workers, the distributed campaign's StudyResult is byte-identical to
// a clean in-process Study. Every perturbation must land in one of three
// sinks: a transient retry, a lease-table rejection, or a digest-mismatch
// re-send. Anything that leaks past those corrupts bytes, and this test
// catches it.
func TestChaosTransportDifferential(t *testing.T) {
	spec := chaosSpec()
	want := baselineJSON(t, spec)

	profiles := []struct {
		name string
		p    ChaosProfile
	}{
		{"drop", ChaosProfile{DropBefore: 0.08, DropAfter: 0.05}},
		{"delay", ChaosProfile{Delay: 0.4, MaxDelay: 3 * time.Millisecond}},
		{"duplicate", ChaosProfile{Duplicate: 0.15}},
		{"truncate", ChaosProfile{Truncate: 0.12}},
		{"corrupt", ChaosProfile{Corrupt: 0.12}},
		{"5xx", ChaosProfile{ServerError: 0.08, BurstLen: 3}},
	}
	for pi, pr := range profiles {
		for _, workers := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("%s/workers=%d", pr.name, workers), func(t *testing.T) {
				c, err := NewCoordinator(CoordinatorOptions{Spec: spec, LeaseTTL: 600 * time.Millisecond})
				if err != nil {
					t.Fatal(err)
				}
				// Server-side chaos rides the same profile on its own stream.
				srv := httptest.NewServer(ChaosMiddleware(int64(1000*pi+workers), pr.p, c.Handler()))
				defer srv.Close()

				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
				defer cancel()
				wait := startChaosWorkers(ctx, t, srv.URL, workers, pr.p, int64(100*pi+10*workers))
				res, err := c.Result(ctx)
				if err != nil {
					t.Fatal(err)
				}
				wait()

				if got := resultJSON(t, res); string(got) != string(want) {
					t.Errorf("chaos profile %q with %d workers diverged from the clean baseline:\n got %s\nwant %s",
						pr.name, workers, got, want)
				}
			})
		}
	}
}

// TestDistribAuditClean: with AuditFraction 1 every shard is independently
// re-run and byte-compared. Honest workers must pass every audit, the audit
// telemetry must account for every shard, and the result must stay
// byte-identical to the baseline (audit re-runs contribute verification,
// never data).
func TestDistribAuditClean(t *testing.T) {
	spec := chaosSpec()
	want := baselineJSON(t, spec)

	c, err := NewCoordinator(CoordinatorOptions{Spec: spec, LeaseTTL: time.Second, AuditFraction: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	wait := startWorkers(ctx, t, srv.URL, 2, "honest")
	res, err := c.Result(ctx)
	if err != nil {
		t.Fatal(err)
	}
	wait()

	if res.Partial {
		t.Error("clean audited campaign flagged Partial")
	}
	if got := resultJSON(t, res); string(got) != string(want) {
		t.Errorf("audited result differs from baseline:\n got %s\nwant %s", got, want)
	}
	st := c.Status()
	if st.Shards.Done != spec.Shards {
		t.Errorf("shards done = %d, want %d", st.Shards.Done, spec.Shards)
	}
	a := st.Telemetry.Audit
	if a == nil {
		t.Fatal("no audit block in status telemetry")
	}
	if a.Sampled != int64(spec.Shards) || a.Passed != int64(spec.Shards) || a.Failed != 0 || a.Pending != 0 {
		t.Errorf("audit snapshot = %+v, want %d sampled, all passed", a, spec.Shards)
	}
}

// TestDistribAuditFlagsLyingWorker injects a worker that completes a shard
// but reports tampered tallies. The audit re-run on an honest worker must
// produce a different canonical digest, fail the audit, flag the campaign
// Partial, and name the lying worker in the audit telemetry — even though
// the tampered data itself is indistinguishable from a legitimate
// checkpoint.
func TestDistribAuditFlagsLyingWorker(t *testing.T) {
	spec := chaosSpec()

	c, err := NewCoordinator(CoordinatorOptions{Spec: spec, LeaseTTL: 2 * time.Second, AuditFraction: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	// The liar takes the first shard, runs it honestly, then tampers with
	// the final checkpoint before reporting it.
	var reply LeaseReply
	postJSON(t, srv.URL+"/v1/lease", LeaseRequest{Worker: "liar"}, &reply)
	if reply.Lease == nil {
		t.Fatal("no lease granted to the liar")
	}
	lease := reply.Lease
	w, err := spec.BuildWorkload()
	if err != nil {
		t.Fatal(err)
	}
	sc, err := campaign.RunShard(context.Background(), c.cfg, w, spec.Options(), campaign.ShardRun{
		Index:  lease.Shard,
		Resume: lease.Resume,
	})
	if err != nil {
		t.Fatal(err)
	}
	sc.Experiments++ // the lie
	var rep ReportReply
	postJSON(t, srv.URL+"/v1/report", ReportRequest{Worker: "liar", LeaseID: lease.ID, Shard: sc, Final: true}, &rep)
	if !rep.OK {
		t.Fatal("tampered final report rejected up front; the audit has nothing to catch")
	}

	// Honest workers finish the rest, including every audit re-run. The
	// liar's shard audit must fail.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	wait := startWorkers(ctx, t, srv.URL, 2, "honest")
	res, err := c.Result(ctx)
	if err != nil {
		t.Fatal(err)
	}
	wait()

	if !res.Partial {
		t.Error("campaign with a failed audit not flagged Partial")
	}
	a := c.Status().Telemetry.Audit
	if a == nil {
		t.Fatal("no audit block in status telemetry")
	}
	if a.Failed != 1 || len(a.Failures) != 1 {
		t.Fatalf("audit snapshot = %+v, want exactly one failure", a)
	}
	f := a.Failures[0]
	if f.Shard != lease.Shard || f.Worker != "liar" {
		t.Errorf("audit failure = %+v, want shard %d blamed on worker liar", f, lease.Shard)
	}
	if f.Sum == f.AuditSum || f.Sum == "" || f.AuditSum == "" {
		t.Errorf("audit failure digests = %q vs %q, want two distinct non-empty sums", f.Sum, f.AuditSum)
	}
}

// TestDistribDrain covers the graceful-shutdown contract at the protocol
// level: once draining, new lease requests are refused with Draining set,
// in-flight reports are still accepted, and the coordinator reaches Idle
// once the outstanding lease lands its final report.
func TestDistribDrain(t *testing.T) {
	spec := chaosSpec()
	c, err := NewCoordinator(CoordinatorOptions{Spec: spec, LeaseTTL: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	var reply LeaseReply
	postJSON(t, srv.URL+"/v1/lease", LeaseRequest{Worker: "w1"}, &reply)
	if reply.Lease == nil {
		t.Fatal("no lease granted before drain")
	}
	lease := reply.Lease

	c.StartDrain()
	if c.Idle() {
		t.Error("coordinator idle with a live lease")
	}
	var refused LeaseReply
	postJSON(t, srv.URL+"/v1/lease", LeaseRequest{Worker: "w2"}, &refused)
	if refused.Lease != nil || !refused.Draining {
		t.Errorf("lease during drain = %+v, want refused with Draining", refused)
	}

	// The in-flight shard still lands.
	w, err := spec.BuildWorkload()
	if err != nil {
		t.Fatal(err)
	}
	sc, err := campaign.RunShard(context.Background(), c.cfg, w, spec.Options(), campaign.ShardRun{
		Index:  lease.Shard,
		Resume: lease.Resume,
	})
	if err != nil {
		t.Fatal(err)
	}
	var rep ReportReply
	postJSON(t, srv.URL+"/v1/report", ReportRequest{Worker: "w1", LeaseID: lease.ID, Shard: sc, Final: true}, &rep)
	if !rep.OK {
		t.Error("in-flight final report rejected during drain")
	}
	if !c.Idle() {
		t.Error("coordinator not idle after the outstanding lease finalized")
	}
	if st := c.Status(); !st.Draining {
		t.Errorf("status = %+v, want Draining", st)
	}
}

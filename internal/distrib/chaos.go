package distrib

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"fidelity/internal/faultmodel"
)

// ChaosProfile describes one adversarial transport regime. Probabilities are
// per-request in [0,1]; zero fields inject nothing. The same profile drives
// both the client-side ChaosTransport and the server-side ChaosMiddleware,
// which draw from independent seeded streams so a run's fault schedule is a
// pure function of (seed, request order).
type ChaosProfile struct {
	// DropBefore is the probability a request never reaches the server
	// (connection refused / reset before delivery).
	DropBefore float64
	// DropAfter is the probability the server processes the request but the
	// reply is lost — the nasty half of the two generals problem, which is
	// what makes duplicate-report rejection load-bearing.
	DropAfter float64
	// Delay is the probability of an added latency of up to MaxDelay.
	Delay    float64
	MaxDelay time.Duration
	// Duplicate is the probability a request is delivered twice back to
	// back, with the first reply discarded.
	Duplicate float64
	// Truncate is the probability a body (request or response) is cut short.
	Truncate float64
	// Corrupt is the probability a single body byte is bit-flipped.
	Corrupt float64
	// ServerError is the probability (middleware only) that a request starts
	// a burst of BurstLen consecutive 503s.
	ServerError float64
	// BurstLen is the 5xx burst length (0 = 1).
	BurstLen int
}

// chaosPlan is one request's worth of fault decisions, drawn up front under
// the stream lock so the schedule depends only on request order, never on
// downstream timing.
type chaosPlan struct {
	dropBefore  bool
	dropAfter   bool
	delay       time.Duration
	duplicate   bool
	truncReq    bool
	corruptReq  bool
	truncResp   bool
	corruptResp bool
	// cut and flip position the truncation/bit-flip as fractions of the
	// body length, so the same plan applies to any body size.
	cutReq, cutResp   float64
	flipReq, flipResp float64
}

// ChaosTransport is a deterministic, seedable http.RoundTripper that
// perturbs traffic according to a ChaosProfile: dropped requests, lost
// replies, latency, duplicated deliveries, truncated and bit-corrupted JSON
// bodies. It exists to prove the distributed campaign path end to end: under
// every profile the final StudyResult must stay byte-identical to a clean
// in-process Study, because every perturbation is either retried, rejected
// by the coordinator's lease accounting, or caught by the body digests.
type ChaosTransport struct {
	inner   http.RoundTripper
	profile ChaosProfile

	mu  sync.Mutex
	rng *rand.Rand
}

// NewChaosTransport wraps inner (nil = http.DefaultTransport) with the
// profile's fault schedule, drawn from a faultmodel stream seeded with seed.
func NewChaosTransport(seed int64, profile ChaosProfile, inner http.RoundTripper) *ChaosTransport {
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &ChaosTransport{
		inner:   inner,
		profile: profile,
		rng:     rand.New(faultmodel.NewStreamSource(seed)),
	}
}

// plan draws every decision for one request in a fixed order.
func (t *ChaosTransport) plan() chaosPlan {
	t.mu.Lock()
	defer t.mu.Unlock()
	p, r := t.profile, t.rng
	var pl chaosPlan
	pl.dropBefore = r.Float64() < p.DropBefore
	pl.dropAfter = r.Float64() < p.DropAfter
	if r.Float64() < p.Delay && p.MaxDelay > 0 {
		pl.delay = time.Duration(r.Int63n(int64(p.MaxDelay)) + 1)
	}
	pl.duplicate = r.Float64() < p.Duplicate
	pl.truncReq = r.Float64() < p.Truncate
	pl.corruptReq = r.Float64() < p.Corrupt
	pl.truncResp = r.Float64() < p.Truncate
	pl.corruptResp = r.Float64() < p.Corrupt
	pl.cutReq, pl.cutResp = r.Float64(), r.Float64()
	pl.flipReq, pl.flipResp = r.Float64(), r.Float64()
	return pl
}

// RoundTrip applies the drawn plan. Perturbed request bodies keep their
// original DigestHeader, so the server detects the damage and answers 503 —
// which the worker's transient-retry loop turns into a clean re-send.
func (t *ChaosTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	pl := t.plan()

	var body []byte
	if req.Body != nil {
		var err error
		body, err = io.ReadAll(req.Body)
		req.Body.Close()
		if err != nil {
			return nil, err
		}
	}

	if pl.delay > 0 {
		time.Sleep(pl.delay)
	}
	if pl.dropBefore {
		return nil, fmt.Errorf("chaos: connection dropped before delivery (%s %s)", req.Method, req.URL.Path)
	}

	send := body
	if pl.truncReq && len(body) > 1 {
		send = body[:1+int(pl.cutReq*float64(len(body)-1))]
	} else if pl.corruptReq && len(body) > 0 {
		send = bytes.Clone(body)
		send[int(pl.flipReq*float64(len(send)))%len(send)] ^= 0x20
	}

	deliver := func(b []byte) (*http.Response, error) {
		r2 := req.Clone(req.Context())
		if req.Body != nil {
			r2.Body = io.NopCloser(bytes.NewReader(b))
			r2.ContentLength = int64(len(b))
		}
		return t.inner.RoundTrip(r2)
	}

	if pl.duplicate {
		if resp, err := deliver(send); err == nil {
			// First delivery's reply is discarded; the server must treat the
			// second as the duplicate it is.
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
	resp, err := deliver(send)
	if err != nil {
		return nil, err
	}
	if pl.dropAfter {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, fmt.Errorf("chaos: reply lost after delivery (%s %s)", req.Method, req.URL.Path)
	}

	if pl.truncResp || pl.corruptResp {
		rb, rerr := io.ReadAll(io.LimitReader(resp.Body, MaxRequestBytes))
		resp.Body.Close()
		if rerr != nil {
			return nil, rerr
		}
		if pl.truncResp && len(rb) > 1 {
			rb = rb[:1+int(pl.cutResp*float64(len(rb)-1))]
		} else if pl.corruptResp && len(rb) > 0 {
			rb[int(pl.flipResp*float64(len(rb)))%len(rb)] ^= 0x20
		}
		resp.Body = io.NopCloser(bytes.NewReader(rb))
		resp.ContentLength = int64(len(rb))
		resp.Header.Del("Content-Length")
	}
	return resp, nil
}

// ChaosMiddleware wraps h with server-side chaos: latency, aborted
// connections, and deterministic 5xx bursts, drawn from a faultmodel stream
// seeded with seed. Aborts and 5xxs fire *before* h runs, so they model an
// overloaded or crashing front end, never a half-applied state change (the
// lost-reply case is ChaosTransport's DropAfter).
func ChaosMiddleware(seed int64, profile ChaosProfile, h http.Handler) http.Handler {
	var mu sync.Mutex
	rng := rand.New(faultmodel.NewStreamSource(seed))
	burst := 0
	return http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		mu.Lock()
		var delay time.Duration
		if rng.Float64() < profile.Delay && profile.MaxDelay > 0 {
			delay = time.Duration(rng.Int63n(int64(profile.MaxDelay)) + 1)
		}
		abort := rng.Float64() < profile.DropBefore
		if burst == 0 && rng.Float64() < profile.ServerError {
			burst = profile.BurstLen
			if burst <= 0 {
				burst = 1
			}
		}
		fail := burst > 0
		if fail {
			burst--
		}
		mu.Unlock()

		if delay > 0 {
			time.Sleep(delay)
		}
		if abort {
			panic(http.ErrAbortHandler)
		}
		if fail {
			http.Error(rw, "chaos: injected server error", http.StatusServiceUnavailable)
			return
		}
		h.ServeHTTP(rw, r)
	})
}

package distrib

import (
	"fmt"
	"time"

	"fidelity/internal/campaign"
	"fidelity/internal/telemetry"
)

// shardStatus is one shard's place in the lease lifecycle.
type shardStatus int

const (
	// shardPending: not currently leased; available for (re-)issue.
	shardPending shardStatus = iota
	// shardLeased: a live lease covers it.
	shardLeased
	// shardDone: a final report completed it.
	shardDone
	// shardDegraded: a final report marked it exhausted (failure budget
	// spent). Terminal, but the assembled result will be Partial.
	shardDegraded
	// shardWaiting: an adaptive-campaign shard parked at the round barrier
	// (campaign.AdaptiveParked): every recorded round executed, held out of
	// the lease pool until the coordinator's planner extends its history
	// (back to shardPending) or finalizes it (shardDone).
	shardWaiting
)

func (s shardStatus) terminal() bool { return s == shardDone || s == shardDegraded }

// auditState tracks a completed shard's independent re-verification. Shard
// determinism (DESIGN.md §6) means a second worker re-running a shard from
// scratch must reproduce the primary checkpoint byte for byte, so a digest
// mismatch is proof of a faulty worker or transport — not noise.
type auditState int

const (
	// auditNone: the shard was not sampled for audit.
	auditNone auditState = iota
	// auditPending: sampled, waiting for a (preferably different) worker.
	auditPending
	// auditLeased: a live audit lease covers the re-run.
	auditLeased
	// auditPassed: the re-run's checkpoint digest matched the primary's.
	auditPassed
	// auditFailed: the digests differ — the campaign is flagged Partial.
	auditFailed
)

func (a auditState) resolved() bool { return a == auditNone || a == auditPassed || a == auditFailed }

type shardEntry struct {
	status shardStatus
	// ckpt is the last coordinator-accepted checkpoint (nil until a worker
	// first reports). Re-issued leases resume from it, so streamed progress
	// survives a lapsed worker.
	ckpt *campaign.ShardCheckpoint
	// lease is the current lease ID while shardLeased.
	lease string
	// sum is the canonical-JSON digest of the accepted final checkpoint and
	// worker who produced it, recorded at acceptance time. Verifying this at
	// state load catches corruption across the shard's whole lifetime in
	// coordinator memory, not just on disk.
	sum    string
	worker string
	// audit fields mirror the primary ones for the verification re-run. The
	// audit checkpoint is kept separate so a lapsing audit never clobbers
	// the primary result it is meant to check.
	audit       auditState
	auditLease  string
	auditCkpt   *campaign.ShardCheckpoint
	auditSum    string
	auditWorker string
	// auditSince is when the shard became auditable; it gates the fallback
	// that lets the primary worker audit itself when no one else shows up.
	auditSince time.Time
}

type leaseEntry struct {
	id       string
	shard    int
	worker   string
	deadline time.Time
	// audit marks a verification re-run lease: its reports update the audit
	// checkpoint, never the primary one.
	audit bool
}

// leaseTable tracks shard ownership. It is not safe for concurrent use; the
// coordinator serializes access under its mutex. Expiry is lazy: lapsed
// leases are swept at the head of every operation, so no background timer is
// needed and the table is trivially restorable from a persisted snapshot.
type leaseTable struct {
	ttl     time.Duration
	seq     int
	shards  []shardEntry
	leases  map[string]*leaseEntry
	expired int
	// auditFor, when non-nil, selects which completed shards get an audit
	// re-run (a deterministic sample of the campaign seed).
	auditFor func(shard int) bool
}

func newLeaseTable(n int, ttl time.Duration) *leaseTable {
	return &leaseTable{
		ttl:    ttl,
		shards: make([]shardEntry, n),
		leases: map[string]*leaseEntry{},
	}
}

// sweep drops lapsed leases, returning their shards to the pending pool with
// their last accepted checkpoints intact.
func (t *leaseTable) sweep(now time.Time) {
	for id, le := range t.leases {
		if now.After(le.deadline) {
			e := &t.shards[le.shard]
			if le.audit {
				if e.auditLease == id {
					e.audit = auditPending
					e.auditLease = ""
				}
			} else if e.lease == id {
				e.status = shardPending
				e.lease = ""
			}
			delete(t.leases, id)
			t.expired++
		}
	}
}

// acquire grants the lowest-indexed pending shard to worker, or, when every
// shard is terminal, the lowest-indexed pending audit re-run. Audit leases
// prefer a worker other than the one that produced the primary result — an
// independent witness — falling back to self-audit only after a full TTL
// with no other taker, so single-worker deployments still drain.
func (t *leaseTable) acquire(worker string, now time.Time) *Lease {
	t.sweep(now)
	for i := range t.shards {
		e := &t.shards[i]
		if e.status != shardPending {
			continue
		}
		t.seq++
		id := fmt.Sprintf("lease-%d", t.seq)
		e.status = shardLeased
		e.lease = id
		t.leases[id] = &leaseEntry{id: id, shard: i, worker: worker, deadline: now.Add(t.ttl)}
		return &Lease{ID: id, Shard: i, TTLMS: t.ttl.Milliseconds(), Resume: e.ckpt}
	}
	for i := range t.shards {
		e := &t.shards[i]
		if e.audit != auditPending {
			continue
		}
		if worker == e.worker && now.Before(e.auditSince.Add(t.ttl)) {
			continue
		}
		t.seq++
		id := fmt.Sprintf("lease-%d", t.seq)
		e.audit = auditLeased
		e.auditLease = id
		t.leases[id] = &leaseEntry{id: id, shard: i, worker: worker, deadline: now.Add(t.ttl), audit: true}
		return &Lease{ID: id, Shard: i, TTLMS: t.ttl.Milliseconds(), Resume: e.auditCkpt, Audit: true}
	}
	return nil
}

// report applies a worker's checkpoint to the table. Only the shard's
// current lease holder is accepted; anything else — an expired lease, a
// lease superseded by a re-issue, a duplicate of an already-final report —
// is rejected so a resurrected worker cannot clobber a shard that moved on.
// Accepted non-final reports extend the lease (heartbeat); accepted final
// reports make the shard terminal (or resolve its audit).
func (t *leaseTable) report(req *ReportRequest, now time.Time) bool {
	t.sweep(now)
	le := t.leases[req.LeaseID]
	if le == nil || le.worker != req.Worker || le.shard != req.Shard.Index {
		return false
	}
	e := &t.shards[le.shard]
	if le.audit {
		return t.reportAudit(le, e, req, now)
	}
	e.ckpt = &req.Shard
	if !req.Final {
		le.deadline = now.Add(t.ttl)
		return true
	}
	delete(t.leases, req.LeaseID)
	e.lease = ""
	switch {
	case req.Exhausted:
		e.status = shardDegraded
	case req.Shard.Done:
		e.status = shardDone
		// Seal the accepted result: digest + producer, recorded at the
		// moment of acceptance. Degraded shards are excluded from audit —
		// their quarantine lists can depend on wall-clock supervision
		// (timeouts), so a re-run mismatch would not be proof of fault.
		if sum, err := digestJSON(&req.Shard); err == nil {
			e.sum = sum
			e.worker = req.Worker
			if t.auditFor != nil && t.auditFor(le.shard) {
				e.audit = auditPending
				e.auditSince = now
			}
		}
	case campaign.AdaptiveParked(req.Shard):
		// Parked at the adaptive round barrier: hold the shard out of the
		// lease pool (re-leasing it would run zero experiments and park
		// again). The coordinator's planner moves it on once every shard
		// reaches the barrier.
		e.status = shardWaiting
		e.worker = req.Worker
	default:
		// A final report that neither completed nor degraded the shard:
		// the worker gave the lease back. Re-issue from its checkpoint.
		e.status = shardPending
	}
	return true
}

// reportAudit applies a report against an audit lease: heartbeats stream to
// the audit checkpoint (never the primary), and the final report resolves
// the audit by comparing canonical digests.
func (t *leaseTable) reportAudit(le *leaseEntry, e *shardEntry, req *ReportRequest, now time.Time) bool {
	e.auditCkpt = &req.Shard
	if !req.Final {
		le.deadline = now.Add(t.ttl)
		return true
	}
	delete(t.leases, le.id)
	e.auditLease = ""
	if !req.Shard.Done && !req.Exhausted {
		// Lease handed back unfinished; re-issue the audit.
		e.audit = auditPending
		return true
	}
	sum, err := digestJSON(&req.Shard)
	if err != nil {
		e.audit = auditPending
		return true
	}
	e.auditSum = sum
	e.auditWorker = req.Worker
	if sum == e.sum {
		e.audit = auditPassed
	} else {
		e.audit = auditFailed
	}
	return true
}

// terminal reports whether every shard is done or degraded AND every sampled
// audit has resolved — the campaign does not finish with verifications in
// flight.
func (t *leaseTable) terminal() bool {
	for i := range t.shards {
		if !t.shards[i].status.terminal() || !t.shards[i].audit.resolved() {
			return false
		}
	}
	return true
}

// auditFailures counts unresolved-as-failed audits.
func (t *leaseTable) auditFailures() int {
	n := 0
	for i := range t.shards {
		if t.shards[i].audit == auditFailed {
			n++
		}
	}
	return n
}

// auditSnapshot summarizes the audit pass for telemetry, nil when no shard
// was sampled.
func (t *leaseTable) auditSnapshot() *telemetry.AuditSnapshot {
	var a telemetry.AuditSnapshot
	for i := range t.shards {
		e := &t.shards[i]
		switch e.audit {
		case auditNone:
			continue
		case auditPending, auditLeased:
			a.Pending++
		case auditPassed:
			a.Passed++
		case auditFailed:
			a.Failed++
			a.Failures = append(a.Failures, telemetry.AuditFailure{
				Shard:       i,
				Worker:      e.worker,
				AuditWorker: e.auditWorker,
				Sum:         e.sum,
				AuditSum:    e.auditSum,
			})
		}
		a.Sampled++
	}
	if a.Sampled == 0 {
		return nil
	}
	return &a
}

// checkpoints returns one terminal checkpoint per shard, in index order.
// Only valid once terminal() holds (every terminal shard has reported at
// least once, so every ckpt is non-nil). Audit checkpoints are never merged:
// on a mismatch we know one copy is wrong but not which, so the primary data
// is kept and the campaign flagged Partial instead.
func (t *leaseTable) checkpoints() []campaign.ShardCheckpoint {
	out := make([]campaign.ShardCheckpoint, len(t.shards))
	for i := range t.shards {
		out[i] = *t.shards[i].ckpt
	}
	return out
}

// counts summarizes shard statuses and total accepted experiments. A done
// shard whose audit is still open counts as Auditing, not Done, so status
// consumers see the campaign is not finished yet.
func (t *leaseTable) counts() (ShardCounts, int) {
	var c ShardCounts
	exps := 0
	for i := range t.shards {
		switch t.shards[i].status {
		case shardPending:
			c.Pending++
		case shardLeased:
			c.Leased++
		case shardDone:
			if !t.shards[i].audit.resolved() {
				c.Auditing++
			} else {
				c.Done++
			}
		case shardDegraded:
			c.Degraded++
		case shardWaiting:
			c.Waiting++
		}
		if t.shards[i].ckpt != nil {
			exps += t.shards[i].ckpt.Experiments
		}
	}
	return c, exps
}

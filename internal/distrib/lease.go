package distrib

import (
	"fmt"
	"time"

	"fidelity/internal/campaign"
)

// shardStatus is one shard's place in the lease lifecycle.
type shardStatus int

const (
	// shardPending: not currently leased; available for (re-)issue.
	shardPending shardStatus = iota
	// shardLeased: a live lease covers it.
	shardLeased
	// shardDone: a final report completed it.
	shardDone
	// shardDegraded: a final report marked it exhausted (failure budget
	// spent). Terminal, but the assembled result will be Partial.
	shardDegraded
)

func (s shardStatus) terminal() bool { return s == shardDone || s == shardDegraded }

type shardEntry struct {
	status shardStatus
	// ckpt is the last coordinator-accepted checkpoint (nil until a worker
	// first reports). Re-issued leases resume from it, so streamed progress
	// survives a lapsed worker.
	ckpt *campaign.ShardCheckpoint
	// lease is the current lease ID while shardLeased.
	lease string
}

type leaseEntry struct {
	id       string
	shard    int
	worker   string
	deadline time.Time
}

// leaseTable tracks shard ownership. It is not safe for concurrent use; the
// coordinator serializes access under its mutex. Expiry is lazy: lapsed
// leases are swept at the head of every operation, so no background timer is
// needed and the table is trivially restorable from a persisted snapshot.
type leaseTable struct {
	ttl     time.Duration
	seq     int
	shards  []shardEntry
	leases  map[string]*leaseEntry
	expired int
}

func newLeaseTable(n int, ttl time.Duration) *leaseTable {
	return &leaseTable{
		ttl:    ttl,
		shards: make([]shardEntry, n),
		leases: map[string]*leaseEntry{},
	}
}

// sweep drops lapsed leases, returning their shards to the pending pool with
// their last accepted checkpoints intact.
func (t *leaseTable) sweep(now time.Time) {
	for id, le := range t.leases {
		if now.After(le.deadline) {
			e := &t.shards[le.shard]
			if e.lease == id {
				e.status = shardPending
				e.lease = ""
			}
			delete(t.leases, id)
			t.expired++
		}
	}
}

// acquire grants the lowest-indexed pending shard to worker, or nil when
// every shard is leased or terminal.
func (t *leaseTable) acquire(worker string, now time.Time) *Lease {
	t.sweep(now)
	for i := range t.shards {
		e := &t.shards[i]
		if e.status != shardPending {
			continue
		}
		t.seq++
		id := fmt.Sprintf("lease-%d", t.seq)
		e.status = shardLeased
		e.lease = id
		t.leases[id] = &leaseEntry{id: id, shard: i, worker: worker, deadline: now.Add(t.ttl)}
		return &Lease{ID: id, Shard: i, TTLMS: t.ttl.Milliseconds(), Resume: e.ckpt}
	}
	return nil
}

// report applies a worker's checkpoint to the table. Only the shard's
// current lease holder is accepted; anything else — an expired lease, a
// lease superseded by a re-issue — is rejected so a resurrected worker
// cannot clobber a shard that moved on. Accepted non-final reports extend
// the lease (heartbeat); accepted final reports make the shard terminal.
func (t *leaseTable) report(req *ReportRequest, now time.Time) bool {
	t.sweep(now)
	le := t.leases[req.LeaseID]
	if le == nil || le.worker != req.Worker || le.shard != req.Shard.Index {
		return false
	}
	e := &t.shards[le.shard]
	e.ckpt = &req.Shard
	if !req.Final {
		le.deadline = now.Add(t.ttl)
		return true
	}
	delete(t.leases, req.LeaseID)
	e.lease = ""
	switch {
	case req.Exhausted:
		e.status = shardDegraded
	case req.Shard.Done:
		e.status = shardDone
	default:
		// A final report that neither completed nor degraded the shard:
		// the worker gave the lease back. Re-issue from its checkpoint.
		e.status = shardPending
	}
	return true
}

// terminal reports whether every shard is done or degraded.
func (t *leaseTable) terminal() bool {
	for i := range t.shards {
		if !t.shards[i].status.terminal() {
			return false
		}
	}
	return true
}

// checkpoints returns one terminal checkpoint per shard, in index order.
// Only valid once terminal() holds (every terminal shard has reported at
// least once, so every ckpt is non-nil).
func (t *leaseTable) checkpoints() []campaign.ShardCheckpoint {
	out := make([]campaign.ShardCheckpoint, len(t.shards))
	for i := range t.shards {
		out[i] = *t.shards[i].ckpt
	}
	return out
}

// counts summarizes shard statuses and total accepted experiments.
func (t *leaseTable) counts() (ShardCounts, int) {
	var c ShardCounts
	exps := 0
	for i := range t.shards {
		switch t.shards[i].status {
		case shardPending:
			c.Pending++
		case shardLeased:
			c.Leased++
		case shardDone:
			c.Done++
		case shardDegraded:
			c.Degraded++
		}
		if t.shards[i].ckpt != nil {
			exps += t.shards[i].ckpt.Experiments
		}
	}
	return c, exps
}

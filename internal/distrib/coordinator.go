package distrib

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"fidelity/internal/accel"
	"fidelity/internal/campaign"
	"fidelity/internal/faultmodel"
	"fidelity/internal/model"
	"fidelity/internal/telemetry"
)

// DefaultLeaseTTL is the heartbeat budget when CoordinatorOptions.LeaseTTL
// is zero. Workers heartbeat at a third of the TTL, so the default tolerates
// two consecutive lost reports before a shard is re-issued.
const DefaultLeaseTTL = 30 * time.Second

// stateVersion guards the coordinator's persisted state format. The
// integrity additions (per-shard digests, audit records, checksum envelope)
// are strictly additive and the envelope is self-describing, so version 1
// still covers both pre- and post-integrity files.
const stateVersion = 1

// CoordinatorOptions configures NewCoordinator.
type CoordinatorOptions struct {
	// Spec defines the campaign. Normalized and validated by NewCoordinator.
	Spec CampaignSpec
	// Config is the accelerator under study (nil = accel.NVDLASmall()).
	Config *accel.Config
	// LeaseTTL is the per-lease heartbeat budget (0 = DefaultLeaseTTL).
	LeaseTTL time.Duration
	// StatePath, when non-empty, is where the coordinator durably persists
	// its lease table and collected checkpoints (via the campaign engine's
	// atomic-write machinery, wrapped in a content-checksum envelope). A
	// coordinator restarted on the same path resumes the campaign: collected
	// shards are not re-run, live leases stay valid, and the final result is
	// identical. A state file that fails its integrity check is quarantined
	// (renamed aside) and the campaign restarts from scratch rather than
	// resuming from corrupt data.
	StatePath string
	// AuditFraction, in [0,1], selects a deterministic sample of completed
	// shards for verification re-runs: each sampled shard is re-leased from
	// scratch to a second worker and the two checkpoints' canonical digests
	// compared. Shard determinism makes any mismatch proof of a faulty
	// worker or transport; the campaign is then flagged Partial. 0 disables
	// auditing, 1 re-verifies every shard.
	AuditFraction float64
	// Telemetry, when non-nil, receives the coordinator's own phase
	// tracking; worker snapshots are merged into it for Status.
	Telemetry *telemetry.Collector
}

// coordinatorState is the durable form of a coordinator. The shard tallies
// ride inside a standard campaign checkpoint, so the file doubles as a valid
// campaign.Checkpoint for offline inspection. On disk the whole struct is
// wrapped in campaign's content-checksum envelope; Meta additionally pins
// each completed shard's digest as recorded at acceptance time, so
// corruption anywhere between acceptance and reload is detected.
type coordinatorState struct {
	Version int          `json:"version"`
	Spec    CampaignSpec `json:"spec"`
	// Checkpoint holds every shard's last accepted state (canonical empty
	// states for shards no worker has reported yet).
	Checkpoint *campaign.Checkpoint `json:"checkpoint"`
	// Reported lists shards with at least one accepted report; the rest
	// restore with no resume state.
	Reported []int `json:"reported,omitempty"`
	// Degraded lists shards whose final report was Exhausted.
	Degraded []int `json:"degraded,omitempty"`
	// Meta carries per-shard integrity and audit records for completed
	// shards. Absent in legacy files.
	Meta []persistedShardMeta `json:"meta,omitempty"`
	// Leases are the live primary leases at persist time. They survive a
	// restart so in-flight workers keep streaming without interruption.
	// Audit leases are deliberately not persisted: a restart reverts them to
	// audit-pending and the re-run is simply re-issued.
	Leases []persistedLease `json:"leases,omitempty"`
	// Seq is the lease ID counter; Expired the lapsed-lease count.
	Seq     int `json:"seq"`
	Expired int `json:"expired,omitempty"`
}

type persistedLease struct {
	ID       string    `json:"id"`
	Shard    int       `json:"shard"`
	Worker   string    `json:"worker"`
	Deadline time.Time `json:"deadline"`
}

// persistedShardMeta is one completed shard's integrity record: the digest
// of its accepted checkpoint, who produced it, and the audit outcome.
type persistedShardMeta struct {
	Shard  int    `json:"shard"`
	Sum    string `json:"sum,omitempty"`
	Worker string `json:"worker,omitempty"`
	// Audit is "", "pending", "passed" or "failed". A live audit lease
	// persists as "pending" — the re-run restarts after a coordinator
	// restart.
	Audit       string `json:"audit,omitempty"`
	AuditWorker string `json:"audit_worker,omitempty"`
	AuditSum    string `json:"audit_sum,omitempty"`
}

// auditSeed derives the audit-sampling stream seed for one shard from the
// campaign seed (splitmix64-style mixing, the engine's experimentSeed
// pattern). Sampling depends only on (Seed, shard) — never on timing or
// worker identity — so every coordinator restart draws the same sample.
func auditSeed(seed int64, shard int) int64 {
	z := uint64(seed) ^ 0xa0d17a5eed1e57a7
	z += uint64(shard) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// auditSelected reports whether shard falls in the deterministic audit
// sample of size frac.
func auditSelected(seed int64, frac float64, shard int) bool {
	if frac <= 0 {
		return false
	}
	if frac >= 1 {
		return true
	}
	r := rand.New(faultmodel.NewStreamSource(auditSeed(seed, shard)))
	return r.Float64() < frac
}

// Coordinator owns one campaign: it partitions the study into the engine's
// logical shards, leases them to workers, collects streamed checkpoints,
// re-issues shards whose leases lapse, audits a sample of completed shards
// against independent re-runs, and assembles the final StudyResult from the
// terminal checkpoints — the exact assembly an in-process Study performs, so
// the result is byte-identical.
type Coordinator struct {
	spec      CampaignSpec
	cfg       *accel.Config
	w         *model.Workload
	opts      campaign.StudyOptions
	statePath string
	audit     float64
	tel       *telemetry.Collector
	// strata is the adaptive campaign's canonical stratum order (nil for
	// fixed-count campaigns). The coordinator is the campaign's planner:
	// shards never plan, they replay the round history it records in their
	// checkpoints, so distributed results stay byte-identical to in-process.
	strata []campaign.Stratum

	mu       sync.Mutex
	table    *leaseTable
	workers  map[string]telemetry.Snapshot
	result   *campaign.StudyResult
	failure  error
	draining bool
	done     chan struct{}
	doneOnce sync.Once
	// strataSnap is the latest round barrier's per-stratum telemetry block,
	// attached to Status (coordinator-side planner state, not worker-merged).
	strataSnap *telemetry.StrataSnapshot
}

// NewCoordinator builds a coordinator for o.Spec. If o.StatePath names an
// existing state file, the campaign resumes from it; the file must describe
// the same spec and accelerator config, otherwise NewCoordinator refuses
// rather than silently mixing two campaigns' shards. A state file that fails
// its integrity check (torn write, bit rot) is quarantined to
// StatePath+".corrupt" and the campaign restarts clean — detected loudly,
// never resumed silently wrong.
func NewCoordinator(o CoordinatorOptions) (*Coordinator, error) {
	spec := o.Spec.Normalize()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if o.AuditFraction < 0 || o.AuditFraction > 1 {
		return nil, fmt.Errorf("distrib: audit fraction must be in [0,1] (got %g)", o.AuditFraction)
	}
	cfg := o.Config
	if cfg == nil {
		cfg = accel.NVDLASmall()
	}
	w, err := spec.BuildWorkload()
	if err != nil {
		return nil, err
	}
	ttl := o.LeaseTTL
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	c := &Coordinator{
		spec:      spec,
		cfg:       cfg,
		w:         w,
		opts:      spec.Options(),
		statePath: o.StatePath,
		audit:     o.AuditFraction,
		tel:       o.Telemetry,
		table:     nil,
		workers:   map[string]telemetry.Snapshot{},
		done:      make(chan struct{}),
	}
	c.table = c.newTable(ttl)
	c.opts.Telemetry = o.Telemetry
	if spec.TargetCI > 0 {
		if c.strata, err = campaign.CampaignStrata(w, c.opts); err != nil {
			return nil, err
		}
	}
	if c.statePath != "" {
		if _, err := os.Stat(c.statePath); err == nil {
			if err := c.load(); err != nil {
				if !errors.Is(err, campaign.ErrCorruptArtifact) {
					return nil, err
				}
				// Quarantine the corrupt file where an operator can inspect
				// it, count the detection, and restart the campaign clean.
				// Shard determinism makes the re-run byte-identical, so the
				// only cost is the lost progress.
				if c.tel != nil {
					c.tel.RecordCorruptArtifact()
				}
				if rerr := os.Rename(c.statePath, c.statePath+".corrupt"); rerr != nil {
					return nil, fmt.Errorf("distrib: quarantine corrupt state: %v (detected: %w)", rerr, err)
				}
				c.table = c.newTable(ttl)
			}
		} else if !errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("distrib: state %s: %w", c.statePath, err)
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	// A restored adaptive campaign may have persisted with every shard parked
	// at the barrier; plan the next round before anything is leased.
	c.advanceRoundLocked()
	c.maybeFinishLocked()
	if c.result == nil && c.failure == nil && c.statePath != "" {
		if err := c.persistLocked(); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// newTable builds a fresh lease table wired to the audit sampler.
func (c *Coordinator) newTable(ttl time.Duration) *leaseTable {
	t := newLeaseTable(c.spec.Shards, ttl)
	if c.audit > 0 {
		seed, frac := c.spec.Seed, c.audit
		t.auditFor = func(shard int) bool { return auditSelected(seed, frac, shard) }
	}
	return t
}

// load restores the lease table from the persisted state file. Corruption —
// a failed envelope checksum, an unparseable file, or a shard checkpoint
// that no longer matches the digest recorded when it was accepted — returns
// or absorbs campaign.ErrCorruptArtifact semantics: whole-file damage
// errors out (the caller quarantines), per-shard damage drops just that
// shard back to pending for re-issue.
func (c *Coordinator) load() error {
	blob, err := os.ReadFile(c.statePath)
	if err != nil {
		return fmt.Errorf("distrib: read state: %w", err)
	}
	var st coordinatorState
	if err := campaign.OpenSealedJSON(blob, &st); err != nil {
		if errors.Is(err, campaign.ErrCorruptArtifact) {
			return fmt.Errorf("distrib: state %s: %w", c.statePath, err)
		}
		// An unparseable file is the same corruption class as a failed
		// checksum: a torn or garbled write.
		return fmt.Errorf("distrib: state %s: %w: %v", c.statePath, campaign.ErrCorruptArtifact, err)
	}
	if st.Version != stateVersion {
		return fmt.Errorf("distrib: state %s has version %d, want %d", c.statePath, st.Version, stateVersion)
	}
	if st.Spec.Normalize() != c.spec {
		return fmt.Errorf("distrib: state %s describes a different campaign spec; refusing to resume", c.statePath)
	}
	if !st.Checkpoint.Matches(c.cfg, c.w, c.opts, c.spec.Shards) {
		return fmt.Errorf("distrib: state %s checkpoint does not match this campaign (config %s); refusing to resume",
			c.statePath, c.cfg.Fingerprint())
	}
	reported := map[int]bool{}
	for _, i := range st.Reported {
		reported[i] = true
	}
	degraded := map[int]bool{}
	for _, i := range st.Degraded {
		degraded[i] = true
	}
	for i := range c.table.shards {
		sc := st.Checkpoint.Shard[i]
		e := &c.table.shards[i]
		if reported[i] {
			scCopy := sc
			e.ckpt = &scCopy
		}
		switch {
		case degraded[i]:
			e.status = shardDegraded
		case sc.Done:
			e.status = shardDone
		case reported[i] && campaign.AdaptiveParked(sc):
			e.status = shardWaiting
		default:
			e.status = shardPending
		}
	}
	meta := map[int]persistedShardMeta{}
	for _, m := range st.Meta {
		meta[m.Shard] = m
	}
	for i := range c.table.shards {
		e := &c.table.shards[i]
		if e.status != shardDone || e.ckpt == nil {
			continue
		}
		sum, err := digestJSON(e.ckpt)
		if err != nil {
			continue
		}
		m, ok := meta[i]
		if ok && m.Sum != "" && m.Sum != sum {
			// The stored checkpoint no longer matches the digest recorded at
			// acceptance: the shard's data was corrupted somewhere between
			// acceptance and this reload. Drop it and re-issue the shard —
			// determinism makes the re-run equivalent.
			if c.tel != nil {
				c.tel.RecordCorruptArtifact()
			}
			*e = shardEntry{status: shardPending}
			continue
		}
		e.sum = sum
		e.worker = m.Worker
		switch m.Audit {
		case "passed":
			e.audit = auditPassed
			e.auditWorker, e.auditSum = m.AuditWorker, m.AuditSum
		case "failed":
			e.audit = auditFailed
			e.auditWorker, e.auditSum = m.AuditWorker, m.AuditSum
		case "pending":
			e.audit = auditPending
			if e.ckpt.Adaptive != nil {
				// Adaptive audits replay the recorded history from empty
				// tallies (never persisted mid-flight; rebuild the resume
				// state the audit lease hands out).
				e.auditCkpt = campaign.AdaptiveAuditResume(i, e.ckpt.Adaptive.History)
			}
		default:
			// No audit record (legacy file, or audit enabled after the
			// shard completed): sample it now so the audit policy holds
			// across restarts.
			if c.table.auditFor != nil && c.table.auditFor(i) {
				e.audit = auditPending
				if e.ckpt.Adaptive != nil {
					e.auditCkpt = campaign.AdaptiveAuditResume(i, e.ckpt.Adaptive.History)
				}
			}
		}
	}
	for _, pl := range st.Leases {
		if pl.Shard < 0 || pl.Shard >= len(c.table.shards) {
			continue
		}
		e := &c.table.shards[pl.Shard]
		if e.status != shardPending {
			// Terminal shards never revert to leased, and a waiting shard's
			// lease already ended with the parked final report.
			continue
		}
		e.status = shardLeased
		e.lease = pl.ID
		c.table.leases[pl.ID] = &leaseEntry{id: pl.ID, shard: pl.Shard, worker: pl.Worker, deadline: pl.Deadline}
	}
	c.table.seq = st.Seq
	c.table.expired = st.Expired
	return nil
}

// persistLocked writes the current lease table durably, sealed in the
// campaign content-checksum envelope. Callers hold c.mu.
func (c *Coordinator) persistLocked() error {
	if c.statePath == "" {
		return nil
	}
	st := coordinatorState{
		Version: stateVersion,
		Spec:    c.spec,
		Seq:     c.table.seq,
		Expired: c.table.expired,
	}
	shards := make([]campaign.ShardCheckpoint, len(c.table.shards))
	for i := range c.table.shards {
		e := &c.table.shards[i]
		if e.ckpt != nil {
			shards[i] = *e.ckpt
			st.Reported = append(st.Reported, i)
		} else {
			shards[i] = campaign.NewShardCheckpoint(i)
		}
		if e.status == shardDegraded {
			st.Degraded = append(st.Degraded, i)
		}
		if e.sum == "" && e.audit == auditNone {
			continue
		}
		m := persistedShardMeta{Shard: i, Sum: e.sum, Worker: e.worker}
		switch e.audit {
		case auditPending, auditLeased:
			m.Audit = "pending"
		case auditPassed:
			m.Audit = "passed"
			m.AuditWorker, m.AuditSum = e.auditWorker, e.auditSum
		case auditFailed:
			m.Audit = "failed"
			m.AuditWorker, m.AuditSum = e.auditWorker, e.auditSum
		}
		st.Meta = append(st.Meta, m)
	}
	st.Checkpoint = campaign.NewCheckpoint(c.cfg, c.w, c.opts, shards)
	for _, le := range c.table.leases {
		if le.audit {
			// Audit leases restart from scratch after a coordinator restart;
			// persisting them would demote done shards on load.
			continue
		}
		st.Leases = append(st.Leases, persistedLease{ID: le.id, Shard: le.shard, Worker: le.worker, Deadline: le.deadline})
	}
	sort.Slice(st.Leases, func(i, j int) bool { return st.Leases[i].ID < st.Leases[j].ID })
	err := campaign.RetryIO(c.tel, campaign.DefaultIORetries, campaign.DefaultIOBackoff, func() error {
		return campaign.AtomicWriteSealedJSON(c.statePath, &st)
	})
	if err != nil {
		return fmt.Errorf("distrib: persist state: %w", err)
	}
	return nil
}

// advanceRoundLocked is the adaptive campaign's round barrier, mirroring the
// in-process runAdaptiveCampaign loop: once every shard is parked (waiting)
// or terminal, merge the accepted checkpoints' tallies in canonical stratum
// order and either record the next Neyman allocation in every waiting shard's
// history (returning them to the lease pool) or finalize them in the
// canonical done form. All planning floats are evaluated here and nowhere
// else, so any worker fleet replays identical rounds. Callers hold c.mu.
func (c *Coordinator) advanceRoundLocked() {
	if c.spec.TargetCI <= 0 || c.finishedLocked() {
		return
	}
	waiting := 0
	for i := range c.table.shards {
		switch c.table.shards[i].status {
		case shardWaiting:
			waiting++
		case shardDone, shardDegraded:
		default:
			return // a leased or pending shard has not reached the barrier
		}
	}
	if waiting == 0 {
		return
	}
	ckpts := make([]campaign.ShardCheckpoint, len(c.table.shards))
	for i := range c.table.shards {
		if e := &c.table.shards[i]; e.ckpt != nil {
			ckpts[i] = *e.ckpt
		} else {
			ckpts[i] = campaign.NewShardCheckpoint(i)
		}
	}
	history := campaign.AdaptiveHistory(ckpts)
	tallies := campaign.StrataTallies(c.strata, ckpts)
	next, converged := campaign.PlanRound(c.strata, history, tallies, c.spec.TargetCI)
	snap := campaign.StrataTelemetry(c.strata, tallies, history, c.spec.TargetCI)
	c.strataSnap = &snap
	if c.tel != nil {
		c.tel.SetStrata(snap)
	}
	if converged {
		for i := range c.table.shards {
			e := &c.table.shards[i]
			if e.status != shardWaiting {
				continue
			}
			// Synthesize the canonical done form — the exact bytes the shard
			// itself would publish had it known the campaign was converged —
			// and seal it like any accepted final checkpoint.
			campaign.FinalizeAdaptiveShard(e.ckpt, c.spec.Inputs)
			e.status = shardDone
			if sum, err := digestJSON(e.ckpt); err == nil {
				e.sum = sum
				if c.table.auditFor != nil && c.table.auditFor(i) {
					e.audit = auditPending
					//lint:allow wallclock audit self-fallback gating is wall-clock liveness, not campaign identity
					e.auditSince = time.Now()
					// Audit re-runs replay the full recorded history from
					// empty tallies; a from-scratch resume would just park.
					e.auditCkpt = campaign.AdaptiveAuditResume(i, e.ckpt.Adaptive.History)
				}
			}
		}
		return
	}
	newHist := append(campaign.CloneHistory(history), next)
	for i := range c.table.shards {
		e := &c.table.shards[i]
		if e.status != shardWaiting {
			continue
		}
		e.ckpt.Adaptive.History = campaign.CloneHistory(newHist)
		e.status = shardPending
	}
}

// maybeFinishLocked assembles the StudyResult once every shard is terminal
// and every sampled audit has resolved. A failed audit does not discard the
// primary data — a digest mismatch proves one of the two runs is wrong, not
// which — so the result is kept but flagged Partial. Callers hold c.mu.
func (c *Coordinator) maybeFinishLocked() {
	if c.result != nil || c.failure != nil || !c.table.terminal() {
		return
	}
	res, err := campaign.AssembleResult(c.cfg, c.w, c.opts, c.table.checkpoints())
	if err != nil {
		c.failLocked(err)
		return
	}
	if c.table.auditFailures() > 0 {
		res.Partial = true
	}
	c.result = res
	c.doneOnce.Do(func() { close(c.done) })
}

// failLocked records a terminal campaign failure. Callers hold c.mu.
func (c *Coordinator) failLocked(err error) {
	if c.failure == nil && c.result == nil {
		c.failure = err
		c.doneOnce.Do(func() { close(c.done) })
	}
}

// finished reports terminal state. Callers hold c.mu.
func (c *Coordinator) finishedLocked() bool { return c.result != nil || c.failure != nil }

// Result blocks until the campaign finishes (every shard terminal and the
// result assembled) or ctx is cancelled.
func (c *Coordinator) Result(ctx context.Context) (*campaign.StudyResult, error) {
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-c.done:
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.failure != nil {
		return nil, c.failure
	}
	return c.result, nil
}

// Finished is the non-blocking Result: it reports whether the campaign is
// terminal and, when it is, the assembled result or failure.
func (c *Coordinator) Finished() (res *campaign.StudyResult, done bool, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.failure != nil {
		return nil, true, c.failure
	}
	if c.result != nil {
		return c.result, true, nil
	}
	return nil, false, nil
}

// StartDrain puts the coordinator into drain mode: new lease requests are
// refused (workers are told Draining and keep polling) while in-flight
// reports continue to be accepted, so current leaseholders can land their
// work before shutdown.
func (c *Coordinator) StartDrain() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.draining = true
}

// Idle reports whether no lease is live — after StartDrain this means every
// in-flight shard either reported its final state or lapsed, and the
// coordinator can persist and exit without stranding accepted work.
func (c *Coordinator) Idle() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	//lint:allow wallclock lease TTL is wall-clock liveness (DESIGN.md §6), not campaign identity
	c.table.sweep(time.Now())
	return len(c.table.leases) == 0
}

// PersistNow forces a durable write of the current state (a drain's final
// step). No-op without a StatePath.
func (c *Coordinator) PersistNow() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.persistLocked()
}

// Spec returns the normalized campaign spec.
func (c *Coordinator) Spec() CampaignSpec { return c.spec }

// Status summarizes campaign progress: shard statuses, deduplicated logical
// experiments, the merged telemetry of every reporting worker, and the audit
// pass summary.
func (c *Coordinator) Status() StatusReply {
	c.mu.Lock()
	defer c.mu.Unlock()
	//lint:allow wallclock lease TTL is wall-clock liveness (DESIGN.md §6), not campaign identity
	c.table.sweep(time.Now())
	counts, exps := c.table.counts()
	st := StatusReply{
		Spec:        c.spec,
		Shards:      counts,
		Expired:     c.table.expired,
		Experiments: exps,
		Completed:   c.result != nil,
		Draining:    c.draining,
	}
	if c.failure != nil {
		st.Failed = c.failure.Error()
	}
	// Merge in sorted worker order: float aggregation is not associative to
	// the last bit, so map order would leak into the merged snapshot.
	ids := make([]string, 0, len(c.workers))
	for id := range c.workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	snaps := make([]telemetry.Snapshot, 0, len(ids))
	for _, id := range ids {
		snaps = append(snaps, c.workers[id])
	}
	st.Telemetry = telemetry.Merge("coordinator", snaps...)
	// The audit summary and adaptive strata are coordinator-side state, not
	// worker-reported: attach them to the merged view directly.
	st.Telemetry.Audit = c.table.auditSnapshot()
	st.Telemetry.Strata = c.strataSnap
	return st
}

// Handler returns the coordinator's HTTP API, wrapped in the transport
// integrity layer (request size caps + body digest verification).
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/campaign", c.handleCampaign)
	mux.HandleFunc("POST /v1/lease", c.handleLease)
	mux.HandleFunc("POST /v1/report", c.handleReport)
	mux.HandleFunc("GET /v1/status", c.handleStatus)
	mux.HandleFunc("GET /v1/result", c.handleResult)
	return withIntegrity(mux)
}

func (c *Coordinator) handleCampaign(rw http.ResponseWriter, _ *http.Request) {
	writeJSON(rw, http.StatusOK, HelloReply{
		Spec:        c.spec,
		Config:      *c.cfg,
		Fingerprint: c.cfg.Fingerprint(),
	})
}

func (c *Coordinator) handleLease(rw http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.finishedLocked() {
		writeJSON(rw, http.StatusOK, LeaseReply{Done: true})
		return
	}
	if c.draining {
		writeJSON(rw, http.StatusOK, LeaseReply{Draining: true, RetryAfterMS: c.table.ttl.Milliseconds() / 4})
		return
	}
	//lint:allow wallclock lease TTL is wall-clock liveness (DESIGN.md §6), not campaign identity
	lease := c.table.acquire(req.Worker, time.Now())
	if lease == nil {
		writeJSON(rw, http.StatusOK, LeaseReply{RetryAfterMS: c.table.ttl.Milliseconds() / 4})
		return
	}
	if err := c.persistLocked(); err != nil {
		c.failLocked(err)
		http.Error(rw, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(rw, http.StatusOK, LeaseReply{Lease: lease})
}

func (c *Coordinator) handleReport(rw http.ResponseWriter, r *http.Request) {
	var req ReportRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	// Telemetry counts work executed wherever it ran, so record it even when
	// the lease turns out to be stale.
	if req.Telemetry != nil && req.Worker != "" {
		c.workers[req.Worker] = *req.Telemetry
	}
	if req.Error != "" {
		c.failLocked(fmt.Errorf("distrib: worker %s failed shard %d: %s", req.Worker, req.Shard.Index, req.Error))
	}
	if c.finishedLocked() {
		writeJSON(rw, http.StatusOK, ReportReply{Cancel: true, Done: true})
		return
	}
	prev := c.shardCheckpointLocked(req.Shard.Index)
	//lint:allow wallclock lease TTL is wall-clock liveness (DESIGN.md §6), not campaign identity
	ok := c.table.report(&req, time.Now())
	if ok {
		// A parked final report may complete the round barrier: plan the next
		// round (or finalize) before persisting, so the state file always
		// reflects the post-barrier table.
		c.advanceRoundLocked()
		advanced := prev == nil || prev.Experiments != req.Shard.Experiments || prev.Cursor != req.Shard.Cursor
		if req.Final || advanced {
			if err := c.persistLocked(); err != nil {
				c.failLocked(err)
				http.Error(rw, err.Error(), http.StatusInternalServerError)
				return
			}
		}
		c.maybeFinishLocked()
	}
	writeJSON(rw, http.StatusOK, ReportReply{OK: ok, Cancel: !ok, Done: c.finishedLocked()})
}

// shardCheckpointLocked returns shard i's last accepted checkpoint, nil when
// out of range or never reported. Callers hold c.mu.
func (c *Coordinator) shardCheckpointLocked(i int) *campaign.ShardCheckpoint {
	if i < 0 || i >= len(c.table.shards) {
		return nil
	}
	return c.table.shards[i].ckpt
}

func (c *Coordinator) handleStatus(rw http.ResponseWriter, _ *http.Request) {
	writeJSON(rw, http.StatusOK, c.Status())
}

func (c *Coordinator) handleResult(rw http.ResponseWriter, _ *http.Request) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch {
	case c.failure != nil:
		http.Error(rw, c.failure.Error(), http.StatusInternalServerError)
	case c.result == nil:
		http.Error(rw, "campaign incomplete", http.StatusNotFound)
	default:
		writeJSON(rw, http.StatusOK, c.result)
	}
}

// writeJSON sends v with a body digest header, so clients detect replies
// corrupted in transit and retry instead of decoding garbage.
func writeJSON(rw http.ResponseWriter, code int, v any) {
	blob, err := json.Marshal(v)
	if err != nil {
		http.Error(rw, err.Error(), http.StatusInternalServerError)
		return
	}
	rw.Header().Set("Content-Type", "application/json")
	rw.Header().Set(DigestHeader, digestBytes(blob))
	rw.WriteHeader(code)
	rw.Write(blob)
}

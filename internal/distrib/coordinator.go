package distrib

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"fidelity/internal/accel"
	"fidelity/internal/campaign"
	"fidelity/internal/model"
	"fidelity/internal/telemetry"
)

// DefaultLeaseTTL is the heartbeat budget when CoordinatorOptions.LeaseTTL
// is zero. Workers heartbeat at a third of the TTL, so the default tolerates
// two consecutive lost reports before a shard is re-issued.
const DefaultLeaseTTL = 30 * time.Second

// stateVersion guards the coordinator's persisted state format.
const stateVersion = 1

// CoordinatorOptions configures NewCoordinator.
type CoordinatorOptions struct {
	// Spec defines the campaign. Normalized and validated by NewCoordinator.
	Spec CampaignSpec
	// Config is the accelerator under study (nil = accel.NVDLASmall()).
	Config *accel.Config
	// LeaseTTL is the per-lease heartbeat budget (0 = DefaultLeaseTTL).
	LeaseTTL time.Duration
	// StatePath, when non-empty, is where the coordinator durably persists
	// its lease table and collected checkpoints (via the campaign engine's
	// atomic-write machinery). A coordinator restarted on the same path
	// resumes the campaign: collected shards are not re-run, live leases
	// stay valid, and the final result is identical.
	StatePath string
	// Telemetry, when non-nil, receives the coordinator's own phase
	// tracking; worker snapshots are merged into it for Status.
	Telemetry *telemetry.Collector
}

// coordinatorState is the durable form of a coordinator. The shard tallies
// ride inside a standard campaign checkpoint, so the file doubles as a valid
// campaign.Checkpoint for offline inspection.
type coordinatorState struct {
	Version int          `json:"version"`
	Spec    CampaignSpec `json:"spec"`
	// Checkpoint holds every shard's last accepted state (canonical empty
	// states for shards no worker has reported yet).
	Checkpoint *campaign.Checkpoint `json:"checkpoint"`
	// Reported lists shards with at least one accepted report; the rest
	// restore with no resume state.
	Reported []int `json:"reported,omitempty"`
	// Degraded lists shards whose final report was Exhausted.
	Degraded []int `json:"degraded,omitempty"`
	// Leases are the live leases at persist time. They survive a restart so
	// in-flight workers keep streaming without interruption.
	Leases []persistedLease `json:"leases,omitempty"`
	// Seq is the lease ID counter; Expired the lapsed-lease count.
	Seq     int `json:"seq"`
	Expired int `json:"expired,omitempty"`
}

type persistedLease struct {
	ID       string    `json:"id"`
	Shard    int       `json:"shard"`
	Worker   string    `json:"worker"`
	Deadline time.Time `json:"deadline"`
}

// Coordinator owns one campaign: it partitions the study into the engine's
// logical shards, leases them to workers, collects streamed checkpoints,
// re-issues shards whose leases lapse, and assembles the final StudyResult
// from the terminal checkpoints — the exact assembly an in-process Study
// performs, so the result is byte-identical.
type Coordinator struct {
	spec      CampaignSpec
	cfg       *accel.Config
	w         *model.Workload
	opts      campaign.StudyOptions
	statePath string
	tel       *telemetry.Collector

	mu       sync.Mutex
	table    *leaseTable
	workers  map[string]telemetry.Snapshot
	result   *campaign.StudyResult
	failure  error
	done     chan struct{}
	doneOnce sync.Once
}

// NewCoordinator builds a coordinator for o.Spec. If o.StatePath names an
// existing state file, the campaign resumes from it; the file must describe
// the same spec and accelerator config, otherwise NewCoordinator refuses
// rather than silently mixing two campaigns' shards.
func NewCoordinator(o CoordinatorOptions) (*Coordinator, error) {
	spec := o.Spec.Normalize()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	cfg := o.Config
	if cfg == nil {
		cfg = accel.NVDLASmall()
	}
	w, err := spec.BuildWorkload()
	if err != nil {
		return nil, err
	}
	ttl := o.LeaseTTL
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	c := &Coordinator{
		spec:      spec,
		cfg:       cfg,
		w:         w,
		opts:      spec.Options(),
		statePath: o.StatePath,
		tel:       o.Telemetry,
		table:     newLeaseTable(spec.Shards, ttl),
		workers:   map[string]telemetry.Snapshot{},
		done:      make(chan struct{}),
	}
	c.opts.Telemetry = o.Telemetry
	if c.statePath != "" {
		if _, err := os.Stat(c.statePath); err == nil {
			if err := c.load(); err != nil {
				return nil, err
			}
		} else if !errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("distrib: state %s: %w", c.statePath, err)
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.maybeFinishLocked()
	if c.result == nil && c.failure == nil && c.statePath != "" {
		if err := c.persistLocked(); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// load restores the lease table from the persisted state file.
func (c *Coordinator) load() error {
	blob, err := os.ReadFile(c.statePath)
	if err != nil {
		return fmt.Errorf("distrib: read state: %w", err)
	}
	var st coordinatorState
	if err := json.Unmarshal(blob, &st); err != nil {
		return fmt.Errorf("distrib: parse state %s: %w", c.statePath, err)
	}
	if st.Version != stateVersion {
		return fmt.Errorf("distrib: state %s has version %d, want %d", c.statePath, st.Version, stateVersion)
	}
	if st.Spec.Normalize() != c.spec {
		return fmt.Errorf("distrib: state %s describes a different campaign spec; refusing to resume", c.statePath)
	}
	if !st.Checkpoint.Matches(c.cfg, c.w, c.opts, c.spec.Shards) {
		return fmt.Errorf("distrib: state %s checkpoint does not match this campaign (config %s); refusing to resume",
			c.statePath, c.cfg.Fingerprint())
	}
	reported := map[int]bool{}
	for _, i := range st.Reported {
		reported[i] = true
	}
	degraded := map[int]bool{}
	for _, i := range st.Degraded {
		degraded[i] = true
	}
	for i := range c.table.shards {
		sc := st.Checkpoint.Shard[i]
		e := &c.table.shards[i]
		if reported[i] {
			scCopy := sc
			e.ckpt = &scCopy
		}
		switch {
		case degraded[i]:
			e.status = shardDegraded
		case sc.Done:
			e.status = shardDone
		default:
			e.status = shardPending
		}
	}
	for _, pl := range st.Leases {
		if pl.Shard < 0 || pl.Shard >= len(c.table.shards) {
			continue
		}
		e := &c.table.shards[pl.Shard]
		if e.status.terminal() {
			continue
		}
		e.status = shardLeased
		e.lease = pl.ID
		c.table.leases[pl.ID] = &leaseEntry{id: pl.ID, shard: pl.Shard, worker: pl.Worker, deadline: pl.Deadline}
	}
	c.table.seq = st.Seq
	c.table.expired = st.Expired
	return nil
}

// persistLocked writes the current lease table durably. Callers hold c.mu.
func (c *Coordinator) persistLocked() error {
	if c.statePath == "" {
		return nil
	}
	st := coordinatorState{
		Version: stateVersion,
		Spec:    c.spec,
		Seq:     c.table.seq,
		Expired: c.table.expired,
	}
	shards := make([]campaign.ShardCheckpoint, len(c.table.shards))
	for i := range c.table.shards {
		e := &c.table.shards[i]
		if e.ckpt != nil {
			shards[i] = *e.ckpt
			st.Reported = append(st.Reported, i)
		} else {
			shards[i] = campaign.NewShardCheckpoint(i)
		}
		if e.status == shardDegraded {
			st.Degraded = append(st.Degraded, i)
		}
	}
	st.Checkpoint = campaign.NewCheckpoint(c.cfg, c.w, c.opts, shards)
	for _, le := range c.table.leases {
		st.Leases = append(st.Leases, persistedLease{ID: le.id, Shard: le.shard, Worker: le.worker, Deadline: le.deadline})
	}
	sort.Slice(st.Leases, func(i, j int) bool { return st.Leases[i].ID < st.Leases[j].ID })
	err := campaign.RetryIO(c.tel, campaign.DefaultIORetries, campaign.DefaultIOBackoff, func() error {
		return campaign.AtomicWriteJSON(c.statePath, &st)
	})
	if err != nil {
		return fmt.Errorf("distrib: persist state: %w", err)
	}
	return nil
}

// maybeFinishLocked assembles the StudyResult once every shard is terminal.
// Callers hold c.mu.
func (c *Coordinator) maybeFinishLocked() {
	if c.result != nil || c.failure != nil || !c.table.terminal() {
		return
	}
	res, err := campaign.AssembleResult(c.cfg, c.w, c.opts, c.table.checkpoints())
	if err != nil {
		c.failLocked(err)
		return
	}
	c.result = res
	c.doneOnce.Do(func() { close(c.done) })
}

// failLocked records a terminal campaign failure. Callers hold c.mu.
func (c *Coordinator) failLocked(err error) {
	if c.failure == nil && c.result == nil {
		c.failure = err
		c.doneOnce.Do(func() { close(c.done) })
	}
}

// finished reports terminal state. Callers hold c.mu.
func (c *Coordinator) finishedLocked() bool { return c.result != nil || c.failure != nil }

// Result blocks until the campaign finishes (every shard terminal and the
// result assembled) or ctx is cancelled.
func (c *Coordinator) Result(ctx context.Context) (*campaign.StudyResult, error) {
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-c.done:
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.failure != nil {
		return nil, c.failure
	}
	return c.result, nil
}

// Spec returns the normalized campaign spec.
func (c *Coordinator) Spec() CampaignSpec { return c.spec }

// Status summarizes campaign progress: shard statuses, deduplicated logical
// experiments, and the merged telemetry of every reporting worker.
func (c *Coordinator) Status() StatusReply {
	c.mu.Lock()
	defer c.mu.Unlock()
	//lint:allow wallclock lease TTL is wall-clock liveness (DESIGN.md §6), not campaign identity
	c.table.sweep(time.Now())
	counts, exps := c.table.counts()
	st := StatusReply{
		Spec:        c.spec,
		Shards:      counts,
		Expired:     c.table.expired,
		Experiments: exps,
		Completed:   c.result != nil,
	}
	if c.failure != nil {
		st.Failed = c.failure.Error()
	}
	// Merge in sorted worker order: float aggregation is not associative to
	// the last bit, so map order would leak into the merged snapshot.
	ids := make([]string, 0, len(c.workers))
	for id := range c.workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	snaps := make([]telemetry.Snapshot, 0, len(ids))
	for _, id := range ids {
		snaps = append(snaps, c.workers[id])
	}
	st.Telemetry = telemetry.Merge("coordinator", snaps...)
	return st
}

// Handler returns the coordinator's HTTP API.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/campaign", c.handleCampaign)
	mux.HandleFunc("POST /v1/lease", c.handleLease)
	mux.HandleFunc("POST /v1/report", c.handleReport)
	mux.HandleFunc("GET /v1/status", c.handleStatus)
	mux.HandleFunc("GET /v1/result", c.handleResult)
	return mux
}

func (c *Coordinator) handleCampaign(rw http.ResponseWriter, _ *http.Request) {
	writeJSON(rw, http.StatusOK, HelloReply{
		Spec:        c.spec,
		Config:      *c.cfg,
		Fingerprint: c.cfg.Fingerprint(),
	})
}

func (c *Coordinator) handleLease(rw http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.finishedLocked() {
		writeJSON(rw, http.StatusOK, LeaseReply{Done: true})
		return
	}
	//lint:allow wallclock lease TTL is wall-clock liveness (DESIGN.md §6), not campaign identity
	lease := c.table.acquire(req.Worker, time.Now())
	if lease == nil {
		writeJSON(rw, http.StatusOK, LeaseReply{RetryAfterMS: c.table.ttl.Milliseconds() / 4})
		return
	}
	if err := c.persistLocked(); err != nil {
		c.failLocked(err)
		http.Error(rw, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(rw, http.StatusOK, LeaseReply{Lease: lease})
}

func (c *Coordinator) handleReport(rw http.ResponseWriter, r *http.Request) {
	var req ReportRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	// Telemetry counts work executed wherever it ran, so record it even when
	// the lease turns out to be stale.
	if req.Telemetry != nil && req.Worker != "" {
		c.workers[req.Worker] = *req.Telemetry
	}
	if req.Error != "" {
		c.failLocked(fmt.Errorf("distrib: worker %s failed shard %d: %s", req.Worker, req.Shard.Index, req.Error))
	}
	if c.finishedLocked() {
		writeJSON(rw, http.StatusOK, ReportReply{Cancel: true, Done: true})
		return
	}
	prev := c.shardCheckpointLocked(req.Shard.Index)
	//lint:allow wallclock lease TTL is wall-clock liveness (DESIGN.md §6), not campaign identity
	ok := c.table.report(&req, time.Now())
	if ok {
		advanced := prev == nil || prev.Experiments != req.Shard.Experiments || prev.Cursor != req.Shard.Cursor
		if req.Final || advanced {
			if err := c.persistLocked(); err != nil {
				c.failLocked(err)
				http.Error(rw, err.Error(), http.StatusInternalServerError)
				return
			}
		}
		c.maybeFinishLocked()
	}
	writeJSON(rw, http.StatusOK, ReportReply{OK: ok, Cancel: !ok, Done: c.finishedLocked()})
}

// shardCheckpointLocked returns shard i's last accepted checkpoint, nil when
// out of range or never reported. Callers hold c.mu.
func (c *Coordinator) shardCheckpointLocked(i int) *campaign.ShardCheckpoint {
	if i < 0 || i >= len(c.table.shards) {
		return nil
	}
	return c.table.shards[i].ckpt
}

func (c *Coordinator) handleStatus(rw http.ResponseWriter, _ *http.Request) {
	writeJSON(rw, http.StatusOK, c.Status())
}

func (c *Coordinator) handleResult(rw http.ResponseWriter, _ *http.Request) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch {
	case c.failure != nil:
		http.Error(rw, c.failure.Error(), http.StatusInternalServerError)
	case c.result == nil:
		http.Error(rw, "campaign incomplete", http.StatusNotFound)
	default:
		writeJSON(rw, http.StatusOK, c.result)
	}
}

func writeJSON(rw http.ResponseWriter, code int, v any) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(code)
	json.NewEncoder(rw).Encode(v)
}

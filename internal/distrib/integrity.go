package distrib

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"io"
	"net/http"
)

// DigestHeader carries the hex SHA-256 of an HTTP body. Both sides of the
// wire protocol set it on everything they send and verify it on everything
// they receive, so a body corrupted in flight — truncated, bit-flipped,
// garbled by a broken proxy — is detected instead of decoded into wrong
// campaign state. Verification failures are deliberately *transient*: the
// server answers 503 (the client's retry loop re-sends the identical
// request) and the client wraps a bad response in transientError (the same
// loop re-issues it). Requests without the header are accepted unverified,
// so pre-digest clients keep working.
const DigestHeader = "X-Fidelity-Digest"

// MaxRequestBytes bounds request and response bodies. The largest legitimate
// body is a final report carrying a full shard checkpoint; 16 MiB is orders
// of magnitude above that, so the cap only bites abuse.
const MaxRequestBytes = 16 << 20

// digestBytes returns the hex SHA-256 of b.
func digestBytes(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// digestJSON canonicalizes v (compact json.Marshal form) and digests it.
// Two values digest equal exactly when their canonical JSON is byte-equal,
// which is the same equivalence the differential suites assert.
func digestJSON(v any) (string, error) {
	blob, err := json.Marshal(v)
	if err != nil {
		return "", err
	}
	return digestBytes(blob), nil
}

// withIntegrity wraps h with the coordinator's transport-integrity policy:
// request bodies are capped at MaxRequestBytes, and when the client sent a
// DigestHeader the body is read in full and verified before h sees it. A
// mismatch answers 503 so the worker's transient-retry loop re-sends the
// (uncorrupted) request rather than treating it as a protocol error.
func withIntegrity(h http.Handler) http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if r.Body != nil {
			r.Body = http.MaxBytesReader(rw, r.Body, MaxRequestBytes)
		}
		if want := r.Header.Get(DigestHeader); want != "" && r.Body != nil {
			body, err := io.ReadAll(r.Body)
			if err != nil {
				http.Error(rw, "distrib: read request body: "+err.Error(), http.StatusServiceUnavailable)
				return
			}
			if got := digestBytes(body); got != want {
				http.Error(rw, "distrib: request body digest mismatch (corrupted in transit?); retry", http.StatusServiceUnavailable)
				return
			}
			r.Body = io.NopCloser(bytes.NewReader(body))
		}
		h.ServeHTTP(rw, r)
	})
}

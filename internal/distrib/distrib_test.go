package distrib

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fidelity/internal/accel"
	"fidelity/internal/campaign"
	"fidelity/internal/telemetry"
)

// testSpec is a small-but-real campaign: every fault model, two inputs,
// eight relocatable shards.
func testSpec() CampaignSpec {
	return CampaignSpec{
		Workload:     "mobilenet",
		Precision:    "fp16",
		WorkloadSeed: 42,
		Tolerance:    0.05,
		Samples:      48,
		Inputs:       2,
		Seed:         7,
		Shards:       8,
	}.Normalize()
}

// baselineJSON runs the campaign in-process through campaign.Study and
// returns the StudyResult's exact JSON encoding — the bytes every
// distributed configuration must reproduce.
func baselineJSON(t *testing.T, spec CampaignSpec) []byte {
	t.Helper()
	w, err := spec.BuildWorkload()
	if err != nil {
		t.Fatal(err)
	}
	res, err := campaign.Study(context.Background(), accel.NVDLASmall(), w, spec.Options())
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

func resultJSON(t *testing.T, res *campaign.StudyResult) []byte {
	t.Helper()
	blob, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// startWorkers launches n Work loops against base and returns a wait func
// that fails the test on any worker error.
func startWorkers(ctx context.Context, t *testing.T, base string, n int, prefix string) func() {
	t.Helper()
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = Work(ctx, WorkerOptions{
				BaseURL:      base,
				ID:           fmt.Sprintf("%s-%d", prefix, i),
				Poll:         10 * time.Millisecond,
				Telemetry:    telemetry.New(),
				PublishEvery: 4,
			})
		}(i)
	}
	return func() {
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Errorf("worker %s-%d: %v", prefix, i, err)
			}
		}
	}
}

// TestDistribDeterminism is the fabric's core contract: a campaign executed
// through the coordinator by 1, 2, or 4 workers assembles a StudyResult
// byte-identical to an in-process campaign.Study with the same (Seed,
// Shards).
func TestDistribDeterminism(t *testing.T) {
	spec := testSpec()
	want := baselineJSON(t, spec)

	for _, workers := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			c, err := NewCoordinator(CoordinatorOptions{Spec: spec, LeaseTTL: 2 * time.Second})
			if err != nil {
				t.Fatal(err)
			}
			srv := httptest.NewServer(c.Handler())
			defer srv.Close()

			ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
			defer cancel()
			wait := startWorkers(ctx, t, srv.URL, workers, "w")
			res, err := c.Result(ctx)
			if err != nil {
				t.Fatal(err)
			}
			wait()

			if got := resultJSON(t, res); string(got) != string(want) {
				t.Errorf("distributed result with %d workers differs from in-process baseline:\n got %s\nwant %s",
					workers, got, want)
			}
			st := c.Status()
			if !st.Completed || st.Shards.Done != spec.Shards {
				t.Errorf("terminal status = %+v", st)
			}
			if st.Telemetry.Experiments == 0 || len(st.Telemetry.Sources) != workers {
				t.Errorf("merged telemetry = %+v, want experiments from %d sources", st.Telemetry, workers)
			}

			// The HTTP result endpoint serves the same bytes (modulo the
			// encoder's trailing newline).
			resp, err := http.Get(srv.URL + "/v1/result")
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			var over *campaign.StudyResult
			if err := json.NewDecoder(resp.Body).Decode(&over); err != nil {
				t.Fatal(err)
			}
			if got := resultJSON(t, over); string(got) != string(want) {
				t.Errorf("/v1/result round-trip differs from baseline")
			}
		})
	}
}

// postJSON is a bare test client for hand-driving the wire protocol.
func postJSON(t *testing.T, url string, in, out any) {
	t.Helper()
	blob, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

// TestDistribWorkerDeath kills a worker mid-shard: it leases a shard,
// streams partial progress, and vanishes without a final report. The lease
// must expire, the shard re-issue to a healthy worker resuming from the
// streamed checkpoint, and the final result still match the in-process
// baseline byte for byte.
func TestDistribWorkerDeath(t *testing.T) {
	spec := testSpec()
	want := baselineJSON(t, spec)

	const ttl = 250 * time.Millisecond
	c, err := NewCoordinator(CoordinatorOptions{Spec: spec, LeaseTTL: ttl})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	// The victim: lease shard 0 by hand, stream exactly one progress
	// checkpoint, then die without finalizing. Deterministic regardless of
	// shard runtime — the final report is simply never sent, so the only way
	// the campaign can finish is lease expiry + re-issue.
	var reply LeaseReply
	postJSON(t, srv.URL+"/v1/lease", LeaseRequest{Worker: "victim"}, &reply)
	if reply.Lease == nil {
		t.Fatal("no lease granted to the victim at campaign start")
	}
	lease := reply.Lease
	w, err := spec.BuildWorkload()
	if err != nil {
		t.Fatal(err)
	}
	vctx, vcancel := context.WithCancel(context.Background())
	defer vcancel()
	var streamed atomic.Bool
	_, runErr := campaign.RunShard(vctx, c.cfg, w, spec.Options(), campaign.ShardRun{
		Index:        lease.Shard,
		Resume:       lease.Resume,
		Interval:     10 * time.Millisecond,
		PublishEvery: 1,
		OnProgress: func(s campaign.ShardCheckpoint) {
			// Runs on the shard's streaming goroutine: report best-effort (no
			// t.Fatal off the test goroutine) and die after the first accepted
			// checkpoint.
			if s.Experiments == 0 || streamed.Load() {
				return
			}
			blob, err := json.Marshal(ReportRequest{Worker: "victim", LeaseID: lease.ID, Shard: s})
			if err != nil {
				return
			}
			resp, err := http.Post(srv.URL+"/v1/report", "application/json", bytes.NewReader(blob))
			if err != nil {
				return
			}
			defer resp.Body.Close()
			var rep ReportReply
			if json.NewDecoder(resp.Body).Decode(&rep) == nil && rep.OK {
				streamed.Store(true)
				vcancel()
			}
		},
	})
	if !streamed.Load() {
		t.Fatal("victim never streamed a progress checkpoint")
	}
	if runErr != nil && !errors.Is(runErr, context.Canceled) {
		t.Fatalf("victim run error: %v", runErr)
	}

	// Healthy workers finish the campaign, including the victim's abandoned
	// shard once its lease lapses.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	wait := startWorkers(ctx, t, srv.URL, 2, "healthy")
	res, err := c.Result(ctx)
	if err != nil {
		t.Fatal(err)
	}
	wait()

	if got := resultJSON(t, res); string(got) != string(want) {
		t.Errorf("result after worker death differs from in-process baseline:\n got %s\nwant %s", got, want)
	}
	st := c.Status()
	if st.Expired < 1 {
		t.Errorf("expired leases = %d, want >= 1 (the victim's lease must have lapsed)", st.Expired)
	}
}

// TestDistribCoordinatorRestart stops the coordinator mid-campaign and
// brings up a replacement on the same persisted state file. The replacement
// must resume from the collected checkpoints (not from scratch), honor the
// in-flight leases, and converge to the byte-identical baseline result.
func TestDistribCoordinatorRestart(t *testing.T) {
	spec := testSpec()
	want := baselineJSON(t, spec)
	statePath := filepath.Join(t.TempDir(), "coordinator.json")

	copts := CoordinatorOptions{Spec: spec, LeaseTTL: 2 * time.Second, StatePath: statePath}
	c1, err := NewCoordinator(copts)
	if err != nil {
		t.Fatal(err)
	}

	// A stable URL whose backing handler we can swap: c1 → outage → c2.
	type hbox struct{ h http.Handler }
	var handler atomic.Value
	handler.Store(hbox{c1.Handler()})
	srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		handler.Load().(hbox).h.ServeHTTP(rw, r)
	}))
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	wait := startWorkers(ctx, t, srv.URL, 2, "w")

	// Let the campaign make real progress, then take the coordinator down.
	for deadline := time.Now().Add(30 * time.Second); ; {
		if st := c1.Status(); st.Experiments > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("campaign made no progress under c1")
		}
		time.Sleep(5 * time.Millisecond)
	}
	handler.Store(hbox{http.HandlerFunc(func(rw http.ResponseWriter, _ *http.Request) {
		http.Error(rw, "coordinator restarting", http.StatusServiceUnavailable)
	})})

	// The replacement loads the persisted lease table and checkpoints...
	c2, err := NewCoordinator(copts)
	if err != nil {
		t.Fatal(err)
	}
	if st := c2.Status(); st.Experiments == 0 {
		t.Error("restarted coordinator resumed with zero experiments; persisted checkpoints were lost")
	}
	// ...and the workers, which retried through the outage, finish against it.
	handler.Store(hbox{c2.Handler()})
	res, err := c2.Result(ctx)
	if err != nil {
		t.Fatal(err)
	}
	wait()

	if got := resultJSON(t, res); string(got) != string(want) {
		t.Errorf("result after coordinator restart differs from in-process baseline:\n got %s\nwant %s", got, want)
	}
}

// TestCampaignSpecValidate covers the spec's input rejection.
func TestCampaignSpecValidate(t *testing.T) {
	ok := testSpec()
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*CampaignSpec)
	}{
		{"no workload", func(s *CampaignSpec) { s.Workload = "" }},
		{"zero samples", func(s *CampaignSpec) { s.Samples = 0 }},
		{"negative samples", func(s *CampaignSpec) { s.Samples = -4 }},
		{"zero inputs", func(s *CampaignSpec) { s.Inputs = 0 }},
		{"negative shards", func(s *CampaignSpec) { s.Shards = -1 }},
		{"bad precision", func(s *CampaignSpec) { s.Precision = "fp12" }},
	}
	for _, tc := range cases {
		s := testSpec()
		tc.mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: spec accepted", tc.name)
		}
	}
}

// TestLeaseTableStaleReport: once a lease expires and the shard is re-issued,
// the original holder's reports are rejected so a resurrected worker cannot
// clobber the shard's new owner.
func TestLeaseTableStaleReport(t *testing.T) {
	now := time.Unix(1000, 0)
	tab := newLeaseTable(2, time.Second)

	l1 := tab.acquire("a", now)
	if l1 == nil || l1.Shard != 0 {
		t.Fatalf("first acquire = %+v", l1)
	}
	// Heartbeats extend the lease.
	sc := campaign.NewShardCheckpoint(0)
	sc.Experiments = 5
	if !tab.report(&ReportRequest{Worker: "a", LeaseID: l1.ID, Shard: sc}, now.Add(500*time.Millisecond)) {
		t.Fatal("live heartbeat rejected")
	}
	// Past the extended deadline the lease lapses and the shard re-issues,
	// resuming from the streamed checkpoint.
	l2 := tab.acquire("b", now.Add(3*time.Second))
	if l2 == nil || l2.Shard != 0 {
		t.Fatalf("re-acquire after expiry = %+v", l2)
	}
	if l2.Resume == nil || l2.Resume.Experiments != 5 {
		t.Errorf("re-issued lease resume = %+v, want the streamed checkpoint", l2.Resume)
	}
	if tab.expired != 1 {
		t.Errorf("expired = %d, want 1", tab.expired)
	}
	// The resurrected original holder is told no.
	if tab.report(&ReportRequest{Worker: "a", LeaseID: l1.ID, Shard: sc, Final: true}, now.Add(3*time.Second)) {
		t.Error("stale lease report accepted")
	}
	if tab.shards[0].status != shardLeased || tab.shards[0].lease != l2.ID {
		t.Errorf("shard 0 = %+v after stale report", tab.shards[0])
	}
}

// TestLeaseTableExpiredFinalReport: a worker whose lease expired mid-report
// is rejected even before the shard is re-issued — expiry alone invalidates
// the lease, and the shard's streamed checkpoint survives for the next
// holder.
func TestLeaseTableExpiredFinalReport(t *testing.T) {
	now := time.Unix(1000, 0)
	tab := newLeaseTable(1, time.Second)

	l := tab.acquire("a", now)
	if l == nil {
		t.Fatal("no lease granted")
	}
	sc := campaign.NewShardCheckpoint(0)
	sc.Experiments = 3
	if !tab.report(&ReportRequest{Worker: "a", LeaseID: l.ID, Shard: sc}, now.Add(100*time.Millisecond)) {
		t.Fatal("live heartbeat rejected")
	}
	// The final report arrives after the (extended) deadline: rejected, the
	// shard returns to pending with its last accepted checkpoint intact.
	late := now.Add(5 * time.Second)
	fin := sc
	fin.Done = true
	fin.Experiments = 9
	if tab.report(&ReportRequest{Worker: "a", LeaseID: l.ID, Shard: fin, Final: true}, late) {
		t.Error("final report against an expired lease accepted")
	}
	e := &tab.shards[0]
	if e.status != shardPending {
		t.Errorf("shard status = %v, want pending after expiry", e.status)
	}
	if e.ckpt == nil || e.ckpt.Experiments != 3 || e.ckpt.Done {
		t.Errorf("shard checkpoint = %+v, want the last in-lease heartbeat", e.ckpt)
	}
	if c, _ := tab.counts(); c.Done != 0 || c.Pending != 1 {
		t.Errorf("counts = %+v after rejected expired final", c)
	}
}

// TestLeaseTableDuplicateFinalReport: re-posting an already-accepted final
// report (a lost-reply retry, or a duplicated delivery) must be rejected
// without disturbing the shard's terminal accounting — the at-most-once
// contract that makes chaos transports survivable.
func TestLeaseTableDuplicateFinalReport(t *testing.T) {
	now := time.Unix(1000, 0)
	tab := newLeaseTable(1, time.Second)

	l := tab.acquire("a", now)
	if l == nil {
		t.Fatal("no lease granted")
	}
	fin := campaign.NewShardCheckpoint(0)
	fin.Done = true
	fin.Experiments = 7
	req := ReportRequest{Worker: "a", LeaseID: l.ID, Shard: fin, Final: true}
	if !tab.report(&req, now.Add(100*time.Millisecond)) {
		t.Fatal("first final report rejected")
	}
	if !tab.terminal() {
		t.Fatal("table not terminal after the final report")
	}
	sumBefore := tab.shards[0].sum

	// The duplicate — identical bytes, same lease — must bounce.
	if tab.report(&req, now.Add(200*time.Millisecond)) {
		t.Error("duplicate final report accepted")
	}
	// And a tampered duplicate must not overwrite the accepted state.
	forged := req
	forged.Shard.Experiments = 99
	if tab.report(&forged, now.Add(300*time.Millisecond)) {
		t.Error("forged duplicate final report accepted")
	}
	e := &tab.shards[0]
	if e.status != shardDone || e.ckpt.Experiments != 7 || e.sum != sumBefore {
		t.Errorf("shard accounting disturbed by duplicates: status=%v ckpt=%+v sum changed=%v",
			e.status, e.ckpt, e.sum != sumBefore)
	}
	if c, _ := tab.counts(); c.Done != 1 {
		t.Errorf("counts = %+v, want one done shard", c)
	}
	if tab.expired != 0 {
		t.Errorf("expired = %d, duplicates must not count as expiries", tab.expired)
	}
}

// TestLeaseTableAuditSelfFallback: audit leases prefer an independent
// witness, but a single-worker deployment must not deadlock — after a full
// TTL with no other taker, the primary worker may audit its own shard.
func TestLeaseTableAuditSelfFallback(t *testing.T) {
	now := time.Unix(1000, 0)
	tab := newLeaseTable(1, time.Second)
	tab.auditFor = func(int) bool { return true }

	l := tab.acquire("solo", now)
	if l == nil {
		t.Fatal("no lease granted")
	}
	fin := campaign.NewShardCheckpoint(0)
	fin.Done = true
	fin.Experiments = 7
	if !tab.report(&ReportRequest{Worker: "solo", LeaseID: l.ID, Shard: fin, Final: true}, now) {
		t.Fatal("final report rejected")
	}
	if tab.terminal() {
		t.Fatal("table terminal with an unresolved audit")
	}
	// Immediately after completion the producing worker is refused its own
	// audit...
	if al := tab.acquire("solo", now.Add(10*time.Millisecond)); al != nil {
		t.Fatalf("self-audit granted immediately: %+v", al)
	}
	// ...but another worker gets it at once...
	al := tab.acquire("other", now.Add(20*time.Millisecond))
	if al == nil || !al.Audit || al.Shard != 0 {
		t.Fatalf("independent audit lease = %+v", al)
	}
	// ...and once that lapses and a full TTL has passed, the producer may
	// self-audit rather than stall the campaign forever.
	sl := tab.acquire("solo", now.Add(3*time.Second))
	if sl == nil || !sl.Audit {
		t.Fatalf("self-audit fallback after TTL = %+v", sl)
	}
	if !tab.report(&ReportRequest{Worker: "solo", LeaseID: sl.ID, Shard: fin, Final: true}, now.Add(3*time.Second)) {
		t.Fatal("audit final report rejected")
	}
	if !tab.terminal() || tab.shards[0].audit != auditPassed {
		t.Errorf("audit state = %v, want passed and terminal", tab.shards[0].audit)
	}
}

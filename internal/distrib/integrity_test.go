package distrib

import (
	"bytes"
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"fidelity/internal/campaign"
	"fidelity/internal/telemetry"
)

// finishShards hand-drives n shards to completion over the wire as worker,
// returning the last granted lease's shard indices.
func finishShards(t *testing.T, srv *httptest.Server, c *Coordinator, spec CampaignSpec, worker string, n int) []int {
	t.Helper()
	w, err := spec.BuildWorkload()
	if err != nil {
		t.Fatal(err)
	}
	done := make([]int, 0, n)
	for i := 0; i < n; i++ {
		var reply LeaseReply
		postJSON(t, srv.URL+"/v1/lease", LeaseRequest{Worker: worker}, &reply)
		if reply.Lease == nil {
			t.Fatalf("no lease granted for shard run %d", i)
		}
		sc, err := campaign.RunShard(context.Background(), c.cfg, w, spec.Options(), campaign.ShardRun{
			Index:  reply.Lease.Shard,
			Resume: reply.Lease.Resume,
		})
		if err != nil {
			t.Fatal(err)
		}
		var rep ReportReply
		postJSON(t, srv.URL+"/v1/report", ReportRequest{Worker: worker, LeaseID: reply.Lease.ID, Shard: sc, Final: true}, &rep)
		if !rep.OK {
			t.Fatalf("final report for shard %d rejected", reply.Lease.Shard)
		}
		done = append(done, reply.Lease.Shard)
	}
	return done
}

// TestCoordinatorStateCorruptQuarantine: a persisted state file whose sealed
// payload was corrupted on disk must be *detected* at startup (checksum
// mismatch), quarantined aside for inspection, and counted in telemetry —
// and the restarted campaign must converge to the byte-identical baseline
// from scratch, never silently resume from the corrupt bytes.
func TestCoordinatorStateCorruptQuarantine(t *testing.T) {
	spec := chaosSpec()
	want := baselineJSON(t, spec)
	statePath := filepath.Join(t.TempDir(), "coordinator.json")
	copts := CoordinatorOptions{Spec: spec, LeaseTTL: 2 * time.Second, StatePath: statePath}

	c1, err := NewCoordinator(copts)
	if err != nil {
		t.Fatal(err)
	}
	srv1 := httptest.NewServer(c1.Handler())
	finishShards(t, srv1, c1, spec, "early", 2)
	srv1.Close()

	// Flip payload content without breaking the JSON: the envelope checksum
	// must catch it.
	blob, err := os.ReadFile(statePath)
	if err != nil {
		t.Fatal(err)
	}
	mutated := bytes.Replace(blob, []byte(`"seq"`), []byte(`"sEq"`), 1)
	if bytes.Equal(mutated, blob) {
		t.Fatal("corruption mutation found nothing to replace")
	}
	if err := os.WriteFile(statePath, mutated, 0o644); err != nil {
		t.Fatal(err)
	}

	tel := telemetry.New()
	copts.Telemetry = tel
	c2, err := NewCoordinator(copts)
	if err != nil {
		t.Fatalf("corrupt state must be quarantined, not fatal: %v", err)
	}
	if _, err := os.Stat(statePath + ".corrupt"); err != nil {
		t.Errorf("quarantine file missing: %v", err)
	}
	if st := c2.Status(); st.Experiments != 0 {
		t.Errorf("restarted coordinator resumed %d experiments from corrupt state, want a clean start", st.Experiments)
	}
	snap := tel.Snapshot()
	if snap.Recovery == nil || snap.Recovery.CorruptArtifacts == 0 {
		t.Errorf("corrupt artifact not counted in telemetry: %+v", snap.Recovery)
	}

	srv2 := httptest.NewServer(c2.Handler())
	defer srv2.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	wait := startWorkers(ctx, t, srv2.URL, 2, "w")
	res, err := c2.Result(ctx)
	if err != nil {
		t.Fatal(err)
	}
	wait()
	if got := resultJSON(t, res); string(got) != string(want) {
		t.Errorf("result after quarantine differs from baseline:\n got %s\nwant %s", got, want)
	}
}

// TestCoordinatorStatePerShardCorruption: in a legacy (unsealed) state file
// carrying per-shard acceptance digests, a tampered shard checkpoint must be
// detected against its recorded digest, dropped, and re-issued — while the
// intact shards resume untouched. The campaign still converges byte-identical.
func TestCoordinatorStatePerShardCorruption(t *testing.T) {
	spec := chaosSpec()
	want := baselineJSON(t, spec)
	statePath := filepath.Join(t.TempDir(), "coordinator.json")
	copts := CoordinatorOptions{Spec: spec, LeaseTTL: 2 * time.Second, StatePath: statePath}

	c1, err := NewCoordinator(copts)
	if err != nil {
		t.Fatal(err)
	}
	srv1 := httptest.NewServer(c1.Handler())
	done := finishShards(t, srv1, c1, spec, "early", 2)
	srv1.Close()

	// Rewrite the state as a legacy plain-JSON file (no envelope) with one
	// shard's tallies tampered. Only the per-shard digest can catch this.
	var st coordinatorState
	if err := campaign.ReadSealedJSON(statePath, &st); err != nil {
		t.Fatal(err)
	}
	st.Checkpoint.Shard[done[0]].Experiments += 7
	if err := campaign.AtomicWriteJSON(statePath, &st); err != nil {
		t.Fatal(err)
	}

	tel := telemetry.New()
	copts.Telemetry = tel
	c2, err := NewCoordinator(copts)
	if err != nil {
		t.Fatal(err)
	}
	stat := c2.Status()
	if stat.Shards.Done != 1 {
		t.Errorf("done shards after per-shard corruption = %d, want 1 (tampered shard dropped, intact shard kept)", stat.Shards.Done)
	}
	snap := tel.Snapshot()
	if snap.Recovery == nil || snap.Recovery.CorruptArtifacts != 1 {
		t.Errorf("corrupt artifacts counted = %+v, want exactly 1", snap.Recovery)
	}

	srv2 := httptest.NewServer(c2.Handler())
	defer srv2.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	wait := startWorkers(ctx, t, srv2.URL, 2, "w")
	res, err := c2.Result(ctx)
	if err != nil {
		t.Fatal(err)
	}
	wait()
	if got := resultJSON(t, res); string(got) != string(want) {
		t.Errorf("result after per-shard recovery differs from baseline:\n got %s\nwant %s", got, want)
	}
}

// TestCoordinatorStateLegacyCompat: a pre-integrity state file — plain JSON,
// no envelope, no per-shard digests — must still load and resume without
// being counted as corrupt.
func TestCoordinatorStateLegacyCompat(t *testing.T) {
	spec := chaosSpec()
	statePath := filepath.Join(t.TempDir(), "coordinator.json")
	copts := CoordinatorOptions{Spec: spec, LeaseTTL: 2 * time.Second, StatePath: statePath}

	c1, err := NewCoordinator(copts)
	if err != nil {
		t.Fatal(err)
	}
	srv1 := httptest.NewServer(c1.Handler())
	finishShards(t, srv1, c1, spec, "early", 2)
	srv1.Close()

	var st coordinatorState
	if err := campaign.ReadSealedJSON(statePath, &st); err != nil {
		t.Fatal(err)
	}
	st.Meta = nil
	if err := campaign.AtomicWriteJSON(statePath, &st); err != nil {
		t.Fatal(err)
	}

	tel := telemetry.New()
	copts.Telemetry = tel
	c2, err := NewCoordinator(copts)
	if err != nil {
		t.Fatalf("legacy state must load: %v", err)
	}
	if st := c2.Status(); st.Shards.Done != 2 || st.Experiments == 0 {
		t.Errorf("legacy resume status = %+v, want both shards kept", st.Shards)
	}
	if snap := tel.Snapshot(); snap.Recovery != nil && snap.Recovery.CorruptArtifacts != 0 {
		t.Errorf("legacy file miscounted as corrupt: %+v", snap.Recovery)
	}
}

package distrib

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"time"

	"fidelity/internal/accel"
	"fidelity/internal/campaign"
	"fidelity/internal/faultmodel"
	"fidelity/internal/model"
	"fidelity/internal/telemetry"
)

// DefaultPoll is the worker's lease-poll cadence and transient-error backoff
// base when WorkerOptions.Poll is zero.
const DefaultPoll = 500 * time.Millisecond

// WorkerOptions configures Work.
type WorkerOptions struct {
	// BaseURL is the coordinator, e.g. "http://host:9090".
	BaseURL string
	// ID names this worker in leases, reports and telemetry attribution.
	ID string
	// Poll is the idle lease-poll cadence and the base of the transient
	// retry backoff (0 = DefaultPoll).
	Poll time.Duration
	// HTTPClient overrides http.DefaultClient (tests, timeouts).
	HTTPClient *http.Client
	// Telemetry, when non-nil, collects this worker's execution telemetry;
	// its source is set to ID and snapshots ride along on every report.
	Telemetry *telemetry.Collector
	// PublishEvery overrides the experiment cadence between streamed shard
	// checkpoints (0 = the engine default). Lower means a re-leased shard
	// loses less work, at the cost of chattier reports.
	PublishEvery int
}

// worker is the resolved client state for one Work call.
type worker struct {
	base string
	id   string
	poll time.Duration
	hc   *http.Client
	tel  *telemetry.Collector
	pub  int
	// rng feeds the poll/backoff jitter that de-synchronizes a restarted
	// fleet. Seeded from the worker ID so each worker's cadence is distinct
	// but reproducible; only the Work goroutine draws from it (heartbeat
	// posts never jitter), so no lock is needed.
	rng *rand.Rand

	cfg  *accel.Config
	w    *model.Workload
	opts campaign.StudyOptions
	ttl  time.Duration
}

// workerSeed hashes a worker ID into a jitter stream seed.
func workerSeed(id string) int64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	return int64(h.Sum64())
}

// jitter spreads d uniformly over [d/2, 3d/2) so a fleet restarted in
// lockstep fans back out instead of thundering-herding the coordinator on a
// shared cadence.
func (wk *worker) jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	return d/2 + time.Duration(wk.rng.Int63n(int64(d)))
}

// Work runs a worker loop against the coordinator at o.BaseURL until the
// campaign finishes or ctx is cancelled: fetch the campaign spec, then
// repeatedly lease a shard, execute it via campaign.RunShard (streaming
// checkpoints back as heartbeats), and report its terminal state. A lease
// the coordinator cancels (it lapsed and was re-issued elsewhere) is
// abandoned mid-shard and the loop polls for fresh work; transient HTTP
// failures are retried with exponential backoff, so the worker survives
// coordinator restarts.
func Work(ctx context.Context, o WorkerOptions) error {
	if o.BaseURL == "" {
		return fmt.Errorf("distrib: worker needs a coordinator BaseURL")
	}
	if o.ID == "" {
		return fmt.Errorf("distrib: worker needs an ID")
	}
	wk := &worker{
		base: strings.TrimRight(o.BaseURL, "/"),
		id:   o.ID,
		poll: o.Poll,
		hc:   o.HTTPClient,
		tel:  o.Telemetry,
		pub:  o.PublishEvery,
		rng:  rand.New(faultmodel.NewStreamSource(workerSeed(o.ID))),
	}
	if wk.poll <= 0 {
		wk.poll = DefaultPoll
	}
	if wk.hc == nil {
		wk.hc = http.DefaultClient
	}
	if wk.tel != nil {
		wk.tel.SetSource(o.ID)
	}

	var hello HelloReply
	if err := wk.retry(ctx, func() error { return wk.get(ctx, "/v1/campaign", &hello) }); err != nil {
		return err
	}
	if fp := hello.Config.Fingerprint(); fp != hello.Fingerprint {
		return fmt.Errorf("distrib: campaign config decoded with fingerprint %s, coordinator has %s", fp, hello.Fingerprint)
	}
	spec := hello.Spec.Normalize()
	if err := spec.Validate(); err != nil {
		return err
	}
	w, err := spec.BuildWorkload()
	if err != nil {
		return err
	}
	wk.cfg = &hello.Config
	wk.w = w
	wk.opts = spec.Options()
	wk.opts.Telemetry = wk.tel

	for {
		var reply LeaseReply
		if err := wk.retry(ctx, func() error { return wk.post(ctx, "/v1/lease", LeaseRequest{Worker: wk.id}, &reply) }); err != nil {
			return err
		}
		switch {
		case reply.Done:
			return nil
		case reply.Lease == nil:
			delay := wk.poll
			if reply.RetryAfterMS > 0 {
				delay = time.Duration(reply.RetryAfterMS) * time.Millisecond
			}
			if err := sleep(ctx, wk.jitter(delay)); err != nil {
				return err
			}
		default:
			done, err := wk.execute(ctx, reply.Lease)
			if err != nil {
				return err
			}
			if done {
				return nil
			}
		}
	}
}

// execute runs one leased shard to a terminal report (or abandons it when
// the coordinator cancels the lease). It returns done=true once the
// coordinator reports the campaign finished.
func (wk *worker) execute(ctx context.Context, l *Lease) (done bool, err error) {
	leaseCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	wk.ttl = time.Duration(l.TTLMS) * time.Millisecond
	heartbeat := wk.ttl / 3
	if heartbeat <= 0 {
		heartbeat = wk.poll
	}
	sc, runErr := campaign.RunShard(leaseCtx, wk.cfg, wk.w, wk.opts, campaign.ShardRun{
		Index:        l.Shard,
		Resume:       l.Resume,
		Interval:     heartbeat,
		PublishEvery: wk.pub,
		OnProgress: func(s campaign.ShardCheckpoint) {
			// Heartbeat: stream the checkpoint; a Cancel or Done reply stops
			// the shard at its next experiment boundary. Send errors are
			// tolerated — the lease simply risks expiry until one gets through.
			var rep ReportReply
			req := ReportRequest{Worker: wk.id, LeaseID: l.ID, Shard: s, Telemetry: wk.snapshot()}
			if err := wk.post(leaseCtx, "/v1/report", req, &rep); err == nil && (rep.Cancel || rep.Done) {
				cancel()
			}
		},
	})

	final := ReportRequest{Worker: wk.id, LeaseID: l.ID, Shard: sc, Final: true, Telemetry: wk.snapshot()}
	switch {
	case runErr == nil || errors.Is(runErr, campaign.ErrShardExhausted):
		final.Exhausted = errors.Is(runErr, campaign.ErrShardExhausted)
	case leaseCtx.Err() != nil && ctx.Err() == nil:
		// The coordinator cancelled the lease mid-shard: the shard has moved
		// on, so there is nothing to finalize. Poll for fresh work.
		return false, nil
	case ctx.Err() != nil:
		// Worker shutdown: vanish without a final report. The lease expires
		// and the coordinator re-issues the shard from our last heartbeat.
		return false, ctx.Err()
	default:
		// Campaign failure (bad configuration, dataset error): report it so
		// the coordinator fails the campaign, then exit.
		final.Error = runErr.Error()
	}
	var rep ReportReply
	if err := wk.retry(ctx, func() error { return wk.post(ctx, "/v1/report", final, &rep) }); err != nil {
		return false, err
	}
	if final.Error != "" {
		return false, runErr
	}
	return rep.Done, nil
}

// snapshot returns the worker's current telemetry, nil when uncollected.
func (wk *worker) snapshot() *telemetry.Snapshot {
	if wk.tel == nil {
		return nil
	}
	s := wk.tel.Snapshot()
	return &s
}

func (wk *worker) get(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, wk.base+path, nil)
	if err != nil {
		return err
	}
	return wk.do(req, out)
}

func (wk *worker) post(ctx context.Context, path string, in, out any) error {
	blob, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, wk.base+path, bytes.NewReader(blob))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	// The digest lets the coordinator detect a body corrupted in transit
	// and answer 503, which the retry loop turns into a clean re-send.
	req.Header.Set(DigestHeader, digestBytes(blob))
	return wk.do(req, out)
}

// transientError marks a failure worth retrying: the coordinator being down
// or restarting, not a protocol violation.
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

func (wk *worker) do(req *http.Request, out any) error {
	resp, err := wk.hc.Do(req)
	if err != nil {
		return &transientError{err}
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return &transientError{err}
	}
	if resp.StatusCode >= 500 {
		return &transientError{fmt.Errorf("distrib: %s: %s: %s", req.URL.Path, resp.Status, bytes.TrimSpace(body))}
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("distrib: %s: %s: %s", req.URL.Path, resp.Status, bytes.TrimSpace(body))
	}
	if want := resp.Header.Get(DigestHeader); want != "" && digestBytes(body) != want {
		// The reply was corrupted in transit; retry rather than decode it.
		return &transientError{fmt.Errorf("distrib: %s: reply body digest mismatch", req.URL.Path)}
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(body, out); err != nil {
		return fmt.Errorf("distrib: %s: decode reply: %w", req.URL.Path, err)
	}
	return nil
}

// retry runs fn until it succeeds, fails permanently, or ctx is cancelled.
// Transient failures back off exponentially from Poll, capped at 16×, with
// deterministic per-worker jitter so a fleet that lost its coordinator does
// not reconverge on a synchronized retry cadence.
func (wk *worker) retry(ctx context.Context, fn func() error) error {
	backoff := wk.poll
	for {
		err := fn()
		var te *transientError
		if err == nil || !errors.As(err, &te) {
			return err
		}
		if err := sleep(ctx, wk.jitter(backoff)); err != nil {
			return err
		}
		if backoff < 16*wk.poll {
			backoff *= 2
		}
	}
}

func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

package distrib

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"
)

// The distributed adaptive-sampling suite: the coordinator is the campaign's
// planner, shards replay the round history it records in their checkpoints,
// and the assembled result must stay byte-identical to an in-process adaptive
// campaign.Study — across worker counts, lease re-issue, and coordinator
// restarts mid-round.

// adaptiveSpec is testSpec's adaptive twin: the fixed sample count replaced
// by a target half-width.
func adaptiveSpec() CampaignSpec {
	s := testSpec()
	s.Samples = 0
	s.TargetCI = 0.15
	return s.Normalize()
}

// TestDistribAdaptiveDeterminism: an adaptive campaign run through the
// coordinator by 1, 2, or 4 workers assembles a StudyResult byte-identical to
// an in-process adaptive campaign.Study with the same (Seed, Shards,
// TargetCI).
func TestDistribAdaptiveDeterminism(t *testing.T) {
	spec := adaptiveSpec()
	want := baselineJSON(t, spec)

	for _, workers := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			c, err := NewCoordinator(CoordinatorOptions{Spec: spec, LeaseTTL: 2 * time.Second})
			if err != nil {
				t.Fatal(err)
			}
			srv := httptest.NewServer(c.Handler())
			defer srv.Close()

			ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
			defer cancel()
			wait := startWorkers(ctx, t, srv.URL, workers, "aw")
			res, err := c.Result(ctx)
			if err != nil {
				t.Fatalf("%v (status %+v)", err, c.Status())
			}
			wait()

			if got := resultJSON(t, res); string(got) != string(want) {
				t.Errorf("distributed adaptive result with %d workers differs from in-process baseline:\n got %s\nwant %s",
					workers, got, want)
			}
			st := c.Status()
			if !st.Completed || st.Shards.Done != spec.Shards || st.Shards.Waiting != 0 {
				t.Errorf("terminal status = %+v", st)
			}
			if st.Telemetry.Strata == nil || st.Telemetry.Strata.Rounds < 1 {
				t.Errorf("terminal status carries no strata telemetry: %+v", st.Telemetry.Strata)
			}
		})
	}
}

// TestDistribAdaptiveCoordinatorRestart: killing the coordinator mid-campaign
// (with rounds in flight) and restarting it from its persisted v3 state must
// still assemble the byte-identical baseline — the round history rides in the
// shard checkpoints, so the new coordinator resumes planning where the old
// one stopped.
func TestDistribAdaptiveCoordinatorRestart(t *testing.T) {
	spec := adaptiveSpec()
	want := baselineJSON(t, spec)
	statePath := filepath.Join(t.TempDir(), "coordinator.state.json")

	c1, err := NewCoordinator(CoordinatorOptions{Spec: spec, LeaseTTL: 2 * time.Second, StatePath: statePath})
	if err != nil {
		t.Fatal(err)
	}
	// A stable URL whose backing handler we can swap: c1 → c2.
	type hbox struct{ h http.Handler }
	var handler atomic.Value
	handler.Store(hbox{c1.Handler()})
	srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		handler.Load().(hbox).h.ServeHTTP(rw, r)
	}))
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	wait := startWorkers(ctx, t, srv.URL, 2, "rw")

	// Wait for accepted progress, then "crash" the first coordinator by
	// swapping in its successor loaded from the state file.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if st := c1.Status(); st.Experiments > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no accepted progress before restart")
		}
		time.Sleep(5 * time.Millisecond)
	}
	c2, err := NewCoordinator(CoordinatorOptions{Spec: spec, LeaseTTL: 2 * time.Second, StatePath: statePath})
	if err != nil {
		t.Fatal(err)
	}
	handler.Store(hbox{c2.Handler()})

	res, err := c2.Result(ctx)
	if err != nil {
		t.Fatal(err)
	}
	wait()

	if got := resultJSON(t, res); string(got) != string(want) {
		t.Errorf("adaptive result after coordinator restart differs from baseline:\n got %s\nwant %s", got, want)
	}
}

// TestDistribAdaptiveAudit: with AuditFraction 1 every completed adaptive
// shard is re-executed by a second worker from an empty-tally resume state
// carrying the full round history; the replays must digest-match the
// coordinator-finalized primaries, and the campaign must not be Partial.
func TestDistribAdaptiveAudit(t *testing.T) {
	spec := adaptiveSpec()
	want := baselineJSON(t, spec)

	c, err := NewCoordinator(CoordinatorOptions{Spec: spec, LeaseTTL: 2 * time.Second, AuditFraction: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	wait := startWorkers(ctx, t, srv.URL, 3, "audw")
	res, err := c.Result(ctx)
	if err != nil {
		t.Fatal(err)
	}
	wait()

	if res.Partial {
		t.Error("fully audited adaptive campaign came back Partial")
	}
	if got := resultJSON(t, res); string(got) != string(want) {
		t.Errorf("audited adaptive result differs from baseline:\n got %s\nwant %s", got, want)
	}
	st := c.Status()
	if aud := st.Telemetry.Audit; aud == nil || aud.Passed != int64(spec.Shards) || aud.Failed != 0 {
		t.Errorf("audit summary = %+v, want %d passed", st.Telemetry.Audit, spec.Shards)
	}
}

// TestDistribAdaptiveSpecValidate: the wire-level mutual exclusion and range
// checks on TargetCI.
func TestDistribAdaptiveSpecValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*CampaignSpec)
	}{
		{"both samples and target_ci", func(s *CampaignSpec) { s.TargetCI = 0.1 }},
		{"target_ci too wide", func(s *CampaignSpec) { s.Samples = 0; s.TargetCI = 0.7 }},
		{"negative target_ci", func(s *CampaignSpec) { s.TargetCI = -0.1 }},
	}
	for _, tc := range cases {
		spec := testSpec()
		tc.mutate(&spec)
		if err := spec.Validate(); err == nil {
			t.Errorf("%s: spec %+v validated", tc.name, spec)
		}
	}
	ok := adaptiveSpec()
	if err := ok.Validate(); err != nil {
		t.Errorf("adaptive spec rejected: %v", err)
	}
}

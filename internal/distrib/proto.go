// Package distrib is the distributed campaign fabric: a coordinator daemon
// that partitions a resilience study into the campaign engine's logical
// shards and hands them to remote workers as time-bounded leases over a
// small JSON/HTTP API, and a worker client that polls for leases, executes
// them through campaign.RunShard, and streams checkpoints and telemetry
// back.
//
// Correctness rests entirely on the engine's shard determinism: a shard's
// experiment stream is a pure function of (Seed, Shards, cursor), its
// resumable state is one ShardCheckpoint, and re-running or resuming it
// anywhere reproduces the same tallies bit for bit. Leases are therefore
// safe to re-issue — a worker that vanishes mid-shard costs wall-clock
// time, never correctness — and the assembled StudyResult is byte-identical
// to an in-process campaign.Study with the same parameters, regardless of
// worker count, lease expiries, or coordinator restarts.
//
// Wire protocol (all bodies JSON):
//
//	GET  /v1/campaign -> HelloReply     the campaign spec + accelerator config
//	POST /v1/lease    -> LeaseReply     request a shard lease
//	POST /v1/report   -> ReportReply    stream a checkpoint / heartbeat / final
//	GET  /v1/status   -> StatusReply    progress, lease table, merged telemetry
//	GET  /v1/result   -> StudyResult    the assembled result (404 until done)
package distrib

import (
	"fmt"
	"time"

	"fidelity/internal/accel"
	"fidelity/internal/campaign"
	"fidelity/internal/model"
	"fidelity/internal/numerics"
	"fidelity/internal/telemetry"
)

// CampaignSpec fully determines a campaign's experiment space. Everything a
// worker needs to reproduce the coordinator's shards bit-identically is
// here; supervision knobs (timeout, budget) ride along so every worker
// quarantines identically, keeping degraded campaigns deterministic too.
type CampaignSpec struct {
	// Workload and Precision name the network (model.Names) and numeric
	// format; WorkloadSeed seeds its deterministic weights.
	Workload     string `json:"workload"`
	Precision    string `json:"precision"`
	WorkloadSeed int64  `json:"workload_seed"`
	// Campaign identity, exactly the checkpoint's: tolerance, samples,
	// inputs, sampling seed, shard count, per-layer mode.
	Tolerance float64 `json:"tolerance"`
	Samples   int     `json:"samples"`
	// TargetCI switches the campaign to adaptive stratified sampling
	// (campaign.StudyOptions.TargetCI): rounds are planned by the coordinator
	// at shard barriers, so the adaptive identity (Seed, Shards, TargetCI)
	// replaces Samples. Mutually exclusive with Samples; in (0, 0.5].
	TargetCI float64 `json:"target_ci,omitempty"`
	Inputs   int     `json:"inputs"`
	Seed     int64   `json:"seed"`
	Shards   int     `json:"shards"`
	PerLayer bool    `json:"per_layer,omitempty"`
	// Execution knobs that do not affect results.
	DisableReplay bool `json:"disable_replay,omitempty"`
	// ExperimentBatch is the shard loop's site-grouped batch window
	// (0 = engine default, 1 = unbatched); byte-identical either way.
	ExperimentBatch int `json:"experiment_batch,omitempty"`
	// Supervision knobs (these DO affect a degraded campaign's quarantine
	// list, so they are part of the spec, not per-worker choices).
	ExperimentTimeout time.Duration `json:"experiment_timeout,omitempty"`
	FailureBudget     int           `json:"failure_budget,omitempty"`
}

// Normalize resolves defaulted fields (shard count) so coordinator and
// workers agree on the concrete campaign.
func (s CampaignSpec) Normalize() CampaignSpec {
	if s.Shards <= 0 {
		s.Shards = campaign.DefaultShards
	}
	if s.Precision == "" {
		s.Precision = numerics.FP16.String()
	}
	if s.ExperimentBatch == 0 {
		// Resolve the engine default here so specs written before and after
		// the CLIs started passing an explicit batch window compare equal.
		s.ExperimentBatch = campaign.DefaultExperimentBatch
	}
	return s
}

// Validate rejects specs the campaign engine would misbehave on.
func (s CampaignSpec) Validate() error {
	if s.Workload == "" {
		return fmt.Errorf("distrib: spec names no workload")
	}
	if s.TargetCI > 0 {
		if s.Samples != 0 {
			return fmt.Errorf("distrib: samples and target_ci are mutually exclusive")
		}
		if s.TargetCI > 0.5 {
			return fmt.Errorf("distrib: target_ci must be in (0, 0.5] (got %g)", s.TargetCI)
		}
	} else if s.TargetCI < 0 {
		return fmt.Errorf("distrib: target_ci must be in (0, 0.5] (got %g)", s.TargetCI)
	} else if s.Samples <= 0 {
		return fmt.Errorf("distrib: samples must be positive (got %d)", s.Samples)
	}
	if s.Inputs <= 0 {
		return fmt.Errorf("distrib: inputs must be positive (got %d)", s.Inputs)
	}
	if s.Shards < 0 {
		return fmt.Errorf("distrib: shards must be non-negative (got %d)", s.Shards)
	}
	if _, err := numerics.ParsePrecision(s.Precision); s.Precision != "" && err != nil {
		return fmt.Errorf("distrib: %w", err)
	}
	return nil
}

// Options maps the spec onto the campaign engine's study options. Worker
// count, checkpoint paths and telemetry are deliberately absent: workers own
// their telemetry, and the coordinator owns all persistence.
func (s CampaignSpec) Options() campaign.StudyOptions {
	return campaign.StudyOptions{
		Samples:           s.Samples,
		TargetCI:          s.TargetCI,
		Inputs:            s.Inputs,
		Tolerance:         s.Tolerance,
		Seed:              s.Seed,
		Shards:            s.Shards,
		PerLayer:          s.PerLayer,
		DisableReplay:     s.DisableReplay,
		ExperimentBatch:   s.ExperimentBatch,
		ExperimentTimeout: s.ExperimentTimeout,
		FailureBudget:     s.FailureBudget,
	}
}

// BuildWorkload constructs the spec's workload. Both sides build it from the
// spec alone, so a worker's network is bit-identical to the coordinator's.
func (s CampaignSpec) BuildWorkload() (*model.Workload, error) {
	prec, err := numerics.ParsePrecision(s.Precision)
	if err != nil {
		return nil, fmt.Errorf("distrib: %w", err)
	}
	return model.Build(s.Workload, prec, s.WorkloadSeed)
}

// HelloReply answers GET /v1/campaign: the normalized spec plus the full
// accelerator description and its fingerprint, so a worker can verify the
// config decoded losslessly before running anything against it.
type HelloReply struct {
	Spec        CampaignSpec `json:"spec"`
	Config      accel.Config `json:"config"`
	Fingerprint string       `json:"fingerprint"`
}

// LeaseRequest asks the coordinator for one shard lease.
type LeaseRequest struct {
	Worker string `json:"worker"`
}

// Lease grants one logical shard to one worker until Deadline. The worker
// must report (heartbeat) before the deadline or the coordinator re-leases
// the shard to someone else — at which point this lease's reports are
// rejected and the worker is told to abandon the shard.
type Lease struct {
	ID    string `json:"id"`
	Shard int    `json:"shard"`
	// TTLMS is the heartbeat budget; every accepted report extends the
	// lease by this much.
	TTLMS int64 `json:"ttl_ms"`
	// Resume is the shard's last coordinator-accepted checkpoint (nil =
	// run from scratch). Work a lapsed worker streamed before vanishing is
	// not lost: the next lease continues from it bit-identically.
	Resume *campaign.ShardCheckpoint `json:"resume,omitempty"`
	// Audit marks a verification re-run of an already-completed shard: the
	// worker executes it exactly like a primary lease, and the coordinator
	// byte-compares the resulting checkpoint against the accepted one.
	Audit bool `json:"audit,omitempty"`
}

// LeaseReply answers POST /v1/lease.
type LeaseReply struct {
	// Lease is the granted shard, nil when none is available right now.
	Lease *Lease `json:"lease,omitempty"`
	// Done reports the campaign is finished (or failed); workers should
	// exit their poll loop.
	Done bool `json:"done,omitempty"`
	// RetryAfterMS is the suggested poll delay when no lease was granted.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
	// Draining reports the coordinator is shutting down and refusing new
	// leases; workers should keep polling (a restarted coordinator resumes
	// from persisted state) unless their own context ends first.
	Draining bool `json:"draining,omitempty"`
}

// ReportRequest streams shard state back to the coordinator. Non-final
// reports double as heartbeats; the final report marks the shard terminal
// (completed, or degraded when Exhausted).
type ReportRequest struct {
	Worker  string `json:"worker"`
	LeaseID string `json:"lease_id"`
	// Shard is a consistent published checkpoint of the leased shard.
	Shard campaign.ShardCheckpoint `json:"shard"`
	// Final marks the shard terminal under this lease.
	Final bool `json:"final,omitempty"`
	// Exhausted marks a final report of a shard that spent its failure
	// budget (campaign.ErrShardExhausted): terminal, but degraded.
	Exhausted bool `json:"exhausted,omitempty"`
	// Error reports a terminal campaign failure on the worker (bad
	// configuration, dataset error). The coordinator fails the campaign.
	Error string `json:"error,omitempty"`
	// Telemetry is the worker's current collector snapshot, merged into
	// the coordinator's progress stream (attributed by Snapshot.Source).
	Telemetry *telemetry.Snapshot `json:"telemetry,omitempty"`
}

// ReportReply answers POST /v1/report.
type ReportReply struct {
	// OK acknowledges the report was accepted against a live lease.
	OK bool `json:"ok"`
	// Cancel tells the worker its lease is no longer valid (it lapsed and
	// the shard moved on): abandon the shard and poll for a new lease.
	Cancel bool `json:"cancel,omitempty"`
	// Done reports the campaign is finished; the worker should exit.
	Done bool `json:"done,omitempty"`
}

// ShardCounts breaks the lease table down by shard status.
type ShardCounts struct {
	Pending int `json:"pending"`
	Leased  int `json:"leased"`
	Done    int `json:"done"`
	// Auditing counts completed shards whose verification re-run has not
	// resolved yet; they move to Done (or fail the audit) when it does.
	Auditing int `json:"auditing,omitempty"`
	Degraded int `json:"degraded,omitempty"`
	// Waiting counts adaptive-campaign shards parked at the round barrier:
	// every recorded round executed, held out of the lease pool until the
	// planner extends or finalizes them.
	Waiting int `json:"waiting,omitempty"`
}

// StatusReply answers GET /v1/status.
type StatusReply struct {
	Spec   CampaignSpec `json:"spec"`
	Shards ShardCounts  `json:"shards"`
	// Expired counts leases that lapsed without a final report; their
	// shards were returned to the pool for re-issue.
	Expired int `json:"expired,omitempty"`
	// Experiments sums the experiments of every coordinator-accepted shard
	// checkpoint — logical campaign progress, deduplicated.
	Experiments int `json:"experiments"`
	// Completed is true once the final StudyResult is assembled.
	Completed bool `json:"completed,omitempty"`
	// Draining reports the coordinator is refusing new leases ahead of a
	// shutdown.
	Draining bool `json:"draining,omitempty"`
	// Failed carries the campaign failure, if any.
	Failed string `json:"failed,omitempty"`
	// Telemetry is the merge of every worker's last snapshot (plus the
	// coordinator's own), attributed per source. Unlike Experiments it
	// counts work executed: a re-leased shard's duplicated experiments
	// appear here and nowhere else.
	Telemetry telemetry.Snapshot `json:"telemetry"`
}

// Package activeness implements step 1 of the FIdelity flow (Fig 3): FF
// activeness analysis. A fault injected into an inactive FF is always
// masked, so the probability that an FF of category cat is inactive during
// layer r — Prob_inactive(cat, r), Eq. 1 — scales the category's FIT
// contribution.
//
// Three mutually exclusive inactive classes are modeled (Sec. III-D):
//
//	Class 1 — component not used: e.g. the weight-decompression unit is idle
//	          whenever the workload's weights are uncompressed.
//	Class 2 — signal not used: e.g. FP-only FFs are idle for INT workloads.
//	Class 3 — temporally not used: a component is idle for part of the layer
//	          (e.g. MACs stalled on fetch), estimated by a performance model
//	          equivalent to NVDLA's open-source perf tool.
package activeness

import (
	"fmt"

	"fidelity/internal/accel"
	"fidelity/internal/numerics"
)

// Breakdown is the per-component time breakdown of one layer execution,
// produced by the performance model from scheduling/configuration
// information only (no RTL needed).
type Breakdown struct {
	// FetchCycles is the DMA time to fill the on-chip buffer.
	FetchCycles int64
	// MACCycles is the MAC-array busy time.
	MACCycles int64
	// PostCycles is the post-processing/write-back time.
	PostCycles int64
	// TotalCycles is the layer makespan given overlap between fetch and
	// compute phases.
	TotalCycles int64
}

// Model estimates execution-time breakdowns for layers on a design. It is
// the analog of the NVDLA performance tool the paper cites: it uses only the
// hardware configuration parameters and the scheduling algorithm.
type Model struct {
	cfg *accel.Config
}

// NewModel builds a performance model for cfg.
func NewModel(cfg *accel.Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Model{cfg: cfg}, nil
}

// Estimate computes the cycle breakdown of layer l.
func (m *Model) Estimate(l accel.LayerSpec) (Breakdown, error) {
	if err := l.Validate(); err != nil {
		return Breakdown{}, err
	}
	var b Breakdown
	bytes := l.InputBytes() + l.WeightBytes()
	b.FetchCycles = (bytes + int64(m.cfg.FetchBytesPerCycle) - 1) / int64(m.cfg.FetchBytesPerCycle)

	// The MAC array retires AtomicK MACs per cycle (one operand broadcast to
	// AtomicK units), plus one weight-load cycle per reduction step per
	// position block.
	macs := l.MACs()
	b.MACCycles = (macs + int64(m.cfg.AtomicK) - 1) / int64(m.cfg.AtomicK)
	red := int64(l.KH) * int64(l.KW) * int64(l.InC)
	blocks := (l.OutNeurons()/int64(l.OutC) + int64(m.cfg.WeightHoldCycles) - 1) / int64(m.cfg.WeightHoldCycles)
	groups := (int64(l.OutC) + int64(m.cfg.AtomicK) - 1) / int64(m.cfg.AtomicK)
	b.MACCycles += blocks * groups * red // weight-load cycles

	b.PostCycles = l.OutNeurons()

	// Fetch overlaps with compute after the first buffer fill: the makespan
	// is bounded below by each phase and above by their sum; we model
	// double-buffered overlap with a pipeline-fill penalty of one fetch.
	compute := b.MACCycles + b.PostCycles
	if b.FetchCycles > compute {
		b.TotalCycles = b.FetchCycles + compute/4
	} else {
		b.TotalCycles = compute + b.FetchCycles/4
	}
	if b.TotalCycles < 1 {
		b.TotalCycles = 1
	}
	return b, nil
}

// componentIdleFrac returns the Class 3 idle fraction of a component during
// the layer.
func componentIdleFrac(b Breakdown, comp accel.Component) float64 {
	var busy int64
	switch comp {
	case accel.CompFetch:
		busy = b.FetchCycles
	case accel.CompSequencer, accel.CompMAC:
		busy = b.MACCycles
	case accel.CompPost:
		busy = b.PostCycles
	case accel.CompConfig:
		// Configuration registers hold live state for the entire layer.
		busy = b.TotalCycles
	}
	if busy >= b.TotalCycles {
		return 0
	}
	return 1 - float64(busy)/float64(b.TotalCycles)
}

// Analysis holds Prob_inactive for every census category of a design for one
// layer.
type Analysis struct {
	// Layer is the analyzed layer.
	Layer accel.LayerSpec
	// Breakdown is the performance-model estimate used for Class 3.
	Breakdown Breakdown
	// ProbInactive maps each census category to Eq. 1's result.
	ProbInactive map[accel.Category]float64
}

// Analyze computes Prob_inactive(cat, r) for all census groups (Eq. 1):
//
//	Prob_inactive(cat, r) = Σ_cl FF_Perc(cat, cl) × Perc_inactive(cat, cl, r)
//
// where the class fractions come from the census sub-fractions and the
// workload's properties, and the Class 3 percentage comes from the
// performance model.
func Analyze(cfg *accel.Config, m *Model, l accel.LayerSpec) (*Analysis, error) {
	b, err := m.Estimate(l)
	if err != nil {
		return nil, err
	}
	a := &Analysis{Layer: l, Breakdown: b, ProbInactive: map[accel.Category]float64{}}
	for _, g := range cfg.Census {
		var prob float64

		// Class 1: decompression FFs idle when weights are uncompressed.
		class1 := 0.0
		if !l.WeightsCompressed {
			class1 = g.DecompressFrac
		}
		prob += class1

		// Class 2: precision-specific FFs idle for the other precision.
		class2 := 0.0
		switch l.Precision {
		case numerics.INT16, numerics.INT8:
			class2 = g.FPOnlyFrac
		case numerics.FP16, numerics.FP32:
			class2 = g.IntOnlyFrac
		}
		prob += class2

		// Class 3: remaining FFs are idle for the component's idle fraction.
		rest := 1 - class1 - class2
		if rest < 0 {
			rest = 0
		}
		prob += rest * componentIdleFrac(b, g.Component)

		if prob > 1 {
			prob = 1
		}
		a.ProbInactive[g.Cat] = prob
	}
	return a, nil
}

// Prob returns Prob_inactive for a category, failing on unknown categories.
func (a *Analysis) Prob(cat accel.Category) (float64, error) {
	p, ok := a.ProbInactive[cat]
	if !ok {
		return 0, fmt.Errorf("activeness: no analysis for category %v", cat)
	}
	return p, nil
}

package activeness

import (
	"testing"

	"fidelity/internal/accel"
	"fidelity/internal/numerics"
)

func model(t *testing.T) (*accel.Config, *Model) {
	t.Helper()
	cfg := accel.NVDLASmall()
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return cfg, m
}

func TestNewModelValidates(t *testing.T) {
	cfg := accel.NVDLASmall()
	cfg.NumFFs = 0
	if _, err := NewModel(cfg); err == nil {
		t.Error("invalid config should fail")
	}
}

func TestEstimateBreakdown(t *testing.T) {
	_, m := model(t)
	l := accel.ConvSpec("c", 1, 16, 16, 64, 3, 3, 32, 1, numerics.FP16)
	b, err := m.Estimate(l)
	if err != nil {
		t.Fatal(err)
	}
	if b.FetchCycles <= 0 || b.MACCycles <= 0 || b.PostCycles <= 0 || b.TotalCycles <= 0 {
		t.Fatalf("breakdown has non-positive phases: %+v", b)
	}
	// A 3x3x32 reduction per output is heavily compute-bound on 16 MACs.
	if b.MACCycles < b.FetchCycles {
		t.Errorf("this layer should be compute-bound: mac=%d fetch=%d", b.MACCycles, b.FetchCycles)
	}
	if b.TotalCycles < b.MACCycles {
		t.Error("makespan cannot beat the MAC busy time")
	}
}

func TestEstimateRejectsBadLayer(t *testing.T) {
	_, m := model(t)
	bad := accel.ConvSpec("c", 0, 16, 16, 64, 3, 3, 32, 1, numerics.FP16)
	if _, err := m.Estimate(bad); err == nil {
		t.Error("invalid layer should fail")
	}
}

// A memory-bound layer (1x1 kernel, few channels, huge input) must show MAC
// idleness (Class 3), while a compute-bound layer must show fetch idleness.
func TestClass3FollowsBoundedness(t *testing.T) {
	cfg, m := model(t)
	memBound := accel.FCSpec("fc", 1, 4096, 16, numerics.FP16)
	compBound := accel.ConvSpec("conv", 1, 32, 32, 128, 3, 3, 64, 1, numerics.FP16)

	am, err := Analyze(cfg, m, memBound)
	if err != nil {
		t.Fatal(err)
	}
	ac, err := Analyze(cfg, m, compBound)
	if err != nil {
		t.Fatal(err)
	}
	macCat := accel.Category{Class: accel.Datapath, Var: accel.VarOutput, Pos: accel.InsideMAC}
	fetchCat := accel.Category{Class: accel.Datapath, Var: accel.VarInput, Pos: accel.BeforeCBUF}

	pmMem, _ := am.Prob(macCat)
	pmComp, _ := ac.Prob(macCat)
	if pmMem <= pmComp {
		t.Errorf("MAC FFs should idle more on memory-bound layers: %v vs %v", pmMem, pmComp)
	}
	pfMem, _ := am.Prob(fetchCat)
	pfComp, _ := ac.Prob(fetchCat)
	if pfComp <= pfMem {
		t.Errorf("fetch FFs should idle more on compute-bound layers: %v vs %v", pfComp, pfMem)
	}
}

// Class 2: the FP-only share of MAC FFs must be inactive for INT workloads
// but active for FP16.
func TestClass2PrecisionDependence(t *testing.T) {
	cfg, m := model(t)
	cat := accel.Category{Class: accel.Datapath, Var: accel.VarWeight, Pos: accel.CBUFToMAC}
	fp := accel.ConvSpec("c", 1, 8, 8, 32, 3, 3, 16, 1, numerics.FP16)
	i8 := fp
	i8.Precision = numerics.INT8

	af, err := Analyze(cfg, m, fp)
	if err != nil {
		t.Fatal(err)
	}
	ai, err := Analyze(cfg, m, i8)
	if err != nil {
		t.Fatal(err)
	}
	pf, _ := af.Prob(cat)
	pi, _ := ai.Prob(cat)
	// The census has FPOnlyFrac=0.25 > IntOnlyFrac=0.10 for this category, so
	// INT workloads idle strictly more of it.
	if pi <= pf {
		t.Errorf("INT8 should idle more CBUF→MAC FFs than FP16: %v vs %v", pi, pf)
	}
}

// Class 1: uncompressed weights idle the decompression unit.
func TestClass1Decompression(t *testing.T) {
	cfg, m := model(t)
	cat := accel.Category{Class: accel.Datapath, Var: accel.VarWeight, Pos: accel.BeforeCBUF}
	plain := accel.ConvSpec("c", 1, 8, 8, 32, 3, 3, 16, 1, numerics.FP16)
	compressed := plain
	compressed.WeightsCompressed = true

	ap, err := Analyze(cfg, m, plain)
	if err != nil {
		t.Fatal(err)
	}
	ac, err := Analyze(cfg, m, compressed)
	if err != nil {
		t.Fatal(err)
	}
	pp, _ := ap.Prob(cat)
	pc, _ := ac.Prob(cat)
	if pp <= pc {
		t.Errorf("uncompressed weights should idle the decompression FFs: %v vs %v", pp, pc)
	}
}

// All probabilities must be valid, and config registers (global control)
// must be essentially always active.
func TestProbabilitiesInRange(t *testing.T) {
	cfg, m := model(t)
	l := accel.ConvSpec("c", 1, 8, 8, 32, 3, 3, 16, 1, numerics.INT16)
	a, err := Analyze(cfg, m, l)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.ProbInactive) != len(cfg.Census) {
		t.Fatalf("analysis covers %d categories, want %d", len(a.ProbInactive), len(cfg.Census))
	}
	for cat, p := range a.ProbInactive {
		if p < 0 || p > 1 {
			t.Errorf("%v: Prob_inactive = %v out of range", cat, p)
		}
	}
	pg, err := a.Prob(accel.Category{Class: accel.GlobalControl})
	if err != nil {
		t.Fatal(err)
	}
	if pg != 0 {
		t.Errorf("global config FFs should be always active, got inactive prob %v", pg)
	}
	if _, err := a.Prob(accel.Category{Class: accel.Datapath, Var: accel.VarBias, Pos: accel.AfterMAC}); err == nil {
		t.Error("unknown category should error")
	}
}

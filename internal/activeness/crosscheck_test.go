package activeness

import (
	"math/rand"
	"testing"

	"fidelity/internal/accel"
	"fidelity/internal/numerics"
	"fidelity/internal/rtlsim"
	"fidelity/internal/tensor"
)

// The analytical performance model (the NVDLA perf-tool analog) must track
// the cycle-level simulator's actual MAC-phase cycle counts within a modest
// factor across layer geometries — that agreement is what makes the Class 3
// activeness estimates (and exec_time(r) in Eq. 2) credible without RTL.
func TestPerfModelTracksCycleSimulator(t *testing.T) {
	cfg := accel.NVDLASmall()
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	codec := numerics.MustCodec(numerics.FP16, 0)
	rng := rand.New(rand.NewSource(51))

	cases := []struct {
		name            string
		h, w, inC, outC int
		kh, stride, pad int
	}{
		{"small", 6, 6, 2, 8, 3, 1, 1},
		{"wide", 8, 8, 4, 32, 3, 1, 1},
		{"strided", 10, 10, 3, 16, 3, 2, 1},
		{"pointwise", 7, 7, 8, 24, 1, 1, 0},
	}
	for _, c := range cases {
		x := tensor.New(1, c.h, c.w, c.inC)
		x.RandNormal(rng, 1)
		wt := tensor.New(c.kh, c.kh, c.inC, c.outC)
		wt.RandNormal(rng, 0.3)
		layer := rtlsim.ConvLayer(x, wt, nil, c.stride, c.pad, codec)
		start, end, err := rtlsim.ComputeWindow(cfg, layer)
		if err != nil {
			t.Fatal(err)
		}
		simMAC := end - start // load+MAC+WB cycles in the simulator

		outH := (c.h+2*c.pad-c.kh)/c.stride + 1
		outW := (c.w+2*c.pad-c.kh)/c.stride + 1
		spec := accel.ConvSpec(c.name, 1, outH, outW, c.outC, c.kh, c.kh, c.inC, c.stride, numerics.FP16)
		b, err := m.Estimate(spec)
		if err != nil {
			t.Fatal(err)
		}
		model := b.MACCycles + b.PostCycles
		ratio := float64(model) / float64(simMAC)
		if ratio < 0.5 || ratio > 2.0 {
			t.Errorf("%s: perf model %d vs simulator %d (ratio %.2f) outside [0.5, 2.0]",
				c.name, model, simMAC, ratio)
		}
	}
}

// Relative ordering: a layer with 4x the MACs must get a larger estimate.
func TestPerfModelMonotonicInWork(t *testing.T) {
	cfg := accel.NVDLASmall()
	m, _ := NewModel(cfg)
	small := accel.ConvSpec("s", 1, 8, 8, 16, 3, 3, 8, 1, numerics.FP16)
	big := accel.ConvSpec("b", 1, 16, 16, 16, 3, 3, 16, 1, numerics.FP16)
	bs, _ := m.Estimate(small)
	bb, _ := m.Estimate(big)
	if bb.TotalCycles <= bs.TotalCycles {
		t.Errorf("bigger layer must take longer: %d vs %d", bb.TotalCycles, bs.TotalCycles)
	}
}

// Package baseline implements the naive software fault-injection technique
// the paper compares against in Sec. VI: every hardware logic transient
// error is modeled as a single-cycle bit-flip in a single architectural
// (software-visible) state. It ignores value reuse (a flipped FF can
// corrupt up to RF neurons), control state (global-control faults almost
// always fail), and FF activeness — which is why it underestimates the
// Accelerator_FIT_rate by large factors (the paper measures up to 25×).
package baseline

import (
	"fmt"

	"fidelity/internal/accel"
	"fidelity/internal/campaign"
	"fidelity/internal/dataset"
	"fidelity/internal/faultmodel"
	"fidelity/internal/fit"
	"fidelity/internal/model"
	"fidelity/internal/nn"

	"math/rand"
)

// Options parameterizes a naive campaign.
type Options struct {
	Samples   int
	Inputs    int
	Tolerance float64
	Seed      int64
	// RawFITPerMB defaults to the paper's 600/MB.
	RawFITPerMB float64
}

// Result is the naive technique's estimate.
type Result struct {
	// Masked is the naive masking probability with CI.
	Masked campaign.Proportion
	// FIT is the naive Accelerator_FIT_rate: FIT_raw × N_ff × (1 − masked),
	// with every FF treated as a single-bit architectural flip and no
	// activeness or control modeling.
	FIT float64
	// Experiments counts the runs.
	Experiments int
}

// Run executes the naive campaign for a workload on design cfg.
func Run(cfg *accel.Config, w *model.Workload, opts Options) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if opts.Samples <= 0 || opts.Inputs <= 0 {
		return nil, fmt.Errorf("baseline: Samples and Inputs must be positive")
	}
	if opts.RawFITPerMB == 0 {
		opts.RawFITPerMB = fit.RawFFFITPerMB
	}
	rng := rand.New(faultmodel.NewStreamSource(opts.Seed))
	res := &Result{}
	for i := 0; i < opts.Inputs; i++ {
		x, err := dataset.Sample(w.Dataset, i)
		if err != nil {
			return nil, err
		}
		golden := w.Decode(w.Net.Forward(x))
		_, execs := w.Net.Trace(x)
		if len(execs) == 0 {
			return nil, fmt.Errorf("baseline: workload %s has no compute sites", w.Net.Name())
		}
		// Architectural state = the layer output values; sample elements
		// uniformly across the total state.
		total := 0
		for _, e := range execs {
			total += e.OutSize
		}
		per := opts.Samples / opts.Inputs
		if i < opts.Samples%opts.Inputs {
			per++
		}
		for s := 0; s < per; s++ {
			pick := rng.Intn(total)
			var target nn.SiteExecution
			for _, e := range execs {
				if pick < e.OutSize {
					target = e
					break
				}
				pick -= e.OutSize
			}
			elem := pick
			bit := rng.Intn(w.Net.Codec.Bits())
			out := w.Net.ForwardWithHook(x, func(site nn.Layer, visit int, op *nn.Operands) {
				s, ok := site.(nn.Site)
				if !ok || s != target.Site || visit != target.Visit {
					return
				}
				d := op.Out.Data()
				d[elem] = w.Net.Codec.FlipBit(d[elem], bit)
			})
			faulty := w.Decode(out)
			res.Masked.Add(w.Correct(golden, faulty, opts.Tolerance))
			res.Experiments++
		}
	}
	raw := fit.RawFITPerFF(opts.RawFITPerMB)
	res.FIT = raw * float64(cfg.NumFFs) * (1 - res.Masked.Mean())
	return res, nil
}

// Underestimate returns the factor by which the naive FIT underestimates a
// FIdelity FIT result.
func Underestimate(fidelityFIT float64, naive *Result) float64 {
	if naive.FIT <= 0 {
		return 0
	}
	return fidelityFIT / naive.FIT
}

// UnderestimateBound returns a statistically conservative lower bound on the
// underestimate factor: when the naive campaign observes zero failures, its
// point-estimate FIT is 0 and the plain ratio diverges, so the bound uses
// the Wilson 95% lower limit of the masking probability (i.e. the largest
// failure rate consistent with the sample) to cap the naive FIT from above.
func UnderestimateBound(cfg *accel.Config, fidelityFIT float64, naive *Result, rawPerMB float64) float64 {
	if rawPerMB == 0 {
		rawPerMB = fit.RawFFFITPerMB
	}
	lo, _ := naive.Masked.Wilson(1.96)
	upper := fit.RawFITPerFF(rawPerMB) * float64(cfg.NumFFs) * (1 - lo)
	if upper <= 0 {
		return 0
	}
	return fidelityFIT / upper
}

package baseline

import (
	"context"
	"testing"

	"fidelity/internal/accel"
	"fidelity/internal/campaign"
	"fidelity/internal/model"
	"fidelity/internal/numerics"
)

func TestRunValidation(t *testing.T) {
	w, _ := model.Build("resnet", numerics.FP16, 1)
	if _, err := Run(accel.NVDLASmall(), w, Options{Samples: 0, Inputs: 1}); err == nil {
		t.Error("zero samples should fail")
	}
	bad := accel.NVDLASmall()
	bad.NumFFs = 0
	if _, err := Run(bad, w, Options{Samples: 1, Inputs: 1}); err == nil {
		t.Error("invalid config should fail")
	}
}

func TestNaiveCampaign(t *testing.T) {
	w, err := model.Build("resnet", numerics.FP16, 42)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(accel.NVDLASmall(), w, Options{Samples: 60, Inputs: 2, Tolerance: 0.1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Experiments != 60 {
		t.Errorf("experiments = %d", res.Experiments)
	}
	m := res.Masked.Mean()
	if m <= 0.3 {
		t.Errorf("naive single-bit flips should be mostly masked in a CNN, got %v", m)
	}
	if res.FIT <= 0 {
		t.Error("naive FIT must be positive")
	}
}

// Sec. VI shape: the naive technique underestimates the FIdelity FIT
// substantially (the paper reports up to 25×), because it ignores reuse and
// control effects.
func TestNaiveUnderestimatesFIdelity(t *testing.T) {
	w, err := model.Build("resnet", numerics.FP16, 42)
	if err != nil {
		t.Fatal(err)
	}
	cfg := accel.NVDLASmall()
	naive, err := Run(cfg, w, Options{Samples: 50, Inputs: 2, Tolerance: 0.1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	study, err := campaign.Study(context.Background(), cfg, w, campaign.StudyOptions{
		Samples: 25, Inputs: 2, Tolerance: 0.1, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	factor := Underestimate(study.FIT.Total, naive)
	if factor <= 1.5 {
		t.Errorf("naive technique should underestimate FIT by well over 1.5x, got %.2fx", factor)
	}
	t.Logf("naive FIT=%.3f, FIdelity FIT=%.3f, underestimate=%.1fx",
		naive.FIT, study.FIT.Total, factor)
}

func TestUnderestimateZero(t *testing.T) {
	if Underestimate(1, &Result{}) != 0 {
		t.Error("zero naive FIT should return 0")
	}
}

// Package systolic is a second cycle-level golden reference, independent of
// the NVDLA-like engine in rtlsim: an output-stationary k×k systolic matmul
// array of the Fig 2(b) design class. It exists to demonstrate the paper's
// claim that Reuse Factor Analysis applies across accelerator dataflows —
// the same Algorithm 1 reasoning predicts this design's fault behaviour,
// and the tests validate the predictions against cycle simulation.
//
// Dataflow (classic output-stationary schedule): PE(i,j) accumulates
// C[i,j] = Σ_p A[i,p]·B[p,j]. A values stream rightward through row i (one
// PE per cycle, so one A register value is reused by up to k PEs — k
// neurons of one output row); B values stream downward through column j
// (reused by up to k neurons of one output column); partial sums never
// move (RF = 1). Inputs are skewed so that A[i,p] meets B[p,j] at PE(i,j)
// at cycle p + i + j.
package systolic

import (
	"fmt"

	"fidelity/internal/numerics"
	"fidelity/internal/tensor"
)

// FF names the fault-injection targets of the array.
type FF string

const (
	// FFARow is the A-stream register of PE(Row, Col): a fault corrupts the
	// value as it continues rightward (suffix of row Row's neurons).
	FFARow FF = "pe.a"
	// FFBCol is the B-stream register of PE(Row, Col): a fault corrupts the
	// value as it continues downward (suffix of column Col's neurons).
	FFBCol FF = "pe.b"
	// FFAcc is PE(Row, Col)'s stationary accumulator: RF = 1.
	FFAcc FF = "pe.acc"
)

// Fault is a single-cycle bit flip in one PE register.
type Fault struct {
	FF       FF
	Row, Col int
	Bit      int
	Cycle    int64
}

// Outcome is one simulation result.
type Outcome struct {
	Out *tensor.Tensor
	// Cycles is the makespan of the skewed schedule.
	Cycles int64
	// FaultApplied reports whether the fault hit a live register.
	FaultApplied bool
}

// Engine simulates C = A·B on a k×k output-stationary array. Matrices
// larger than k×k are processed in k×k output tiles with the same schedule
// per tile.
type Engine struct {
	k     int
	codec numerics.Codec

	a, b *tensor.Tensor
	m    int
	kk   int // inner dimension
	n    int

	// aReg[i][j], bReg[i][j]: the streaming registers of PE(i,j).
	aReg, bReg [][]float32
	acc        [][]float32

	out   *tensor.Tensor
	cycle int64
	fault *Fault
	fired bool
}

// NewEngine prepares a simulation of A(m×kk)·B(kk×n) on a k×k array.
func NewEngine(k int, a, b *tensor.Tensor, codec numerics.Codec, fault *Fault) (*Engine, error) {
	if k <= 0 {
		return nil, fmt.Errorf("systolic: array dimension must be positive, got %d", k)
	}
	if a.Rank() != 2 || b.Rank() != 2 {
		return nil, fmt.Errorf("systolic: rank-2 operands required, got %v and %v", a.Shape(), b.Shape())
	}
	if a.Dim(1) != b.Dim(0) {
		return nil, fmt.Errorf("systolic: inner dims %d vs %d", a.Dim(1), b.Dim(0))
	}
	e := &Engine{
		k: k, codec: codec, a: a, b: b,
		m: a.Dim(0), kk: a.Dim(1), n: b.Dim(1),
		out:   tensor.New(a.Dim(0), b.Dim(1)),
		fault: fault,
	}
	e.aReg = make([][]float32, k)
	e.bReg = make([][]float32, k)
	e.acc = make([][]float32, k)
	for i := 0; i < k; i++ {
		e.aReg[i] = make([]float32, k)
		e.bReg[i] = make([]float32, k)
		e.acc[i] = make([]float32, k)
	}
	if fault != nil {
		if fault.Row < 0 || fault.Row >= k || fault.Col < 0 || fault.Col >= k {
			return nil, fmt.Errorf("systolic: fault PE (%d,%d) outside %dx%d array", fault.Row, fault.Col, k, k)
		}
	}
	return e, nil
}

// tileCycles is the makespan of one output tile: the last operand pair
// (p = kk-1) meets PE(k-1, k-1) at cycle (kk-1) + (k-1) + (k-1).
func (e *Engine) tileCycles() int64 {
	return int64(e.kk) + 2*int64(e.k) - 1
}

// Run simulates all output tiles and returns the outcome.
func (e *Engine) Run() (*Outcome, error) {
	tilesM := (e.m + e.k - 1) / e.k
	tilesN := (e.n + e.k - 1) / e.k
	for tm := 0; tm < tilesM; tm++ {
		for tn := 0; tn < tilesN; tn++ {
			e.runTile(tm, tn)
		}
	}
	return &Outcome{Out: e.out, Cycles: e.cycle, FaultApplied: e.fired}, nil
}

// runTile executes the skewed schedule for output tile (tm, tn).
func (e *Engine) runTile(tm, tn int) {
	for i := range e.acc {
		for j := range e.acc[i] {
			e.acc[i][j] = 0
			e.aReg[i][j] = 0
			e.bReg[i][j] = 0
		}
	}
	span := e.tileCycles()
	rowBase := tm * e.k
	colBase := tn * e.k
	for t := int64(0); t < span; t++ {
		// Propagate right/down: higher-index PEs first so values shift one
		// step per cycle.
		for i := 0; i < e.k; i++ {
			for j := e.k - 1; j > 0; j-- {
				e.aReg[i][j] = e.aReg[i][j-1]
			}
			// Row i's stream is delayed i cycles (input skew): at cycle t it
			// receives A[rowBase+i, t-i].
			p := int(t) - i
			if p >= 0 && p < e.kk && rowBase+i < e.m {
				e.aReg[i][0] = e.codec.Round(e.a.At(rowBase+i, p))
			} else {
				e.aReg[i][0] = 0
			}
		}
		for j := 0; j < e.k; j++ {
			for i := e.k - 1; i > 0; i-- {
				e.bReg[i][j] = e.bReg[i-1][j]
			}
			p := int(t) - j
			if p >= 0 && p < e.kk && colBase+j < e.n {
				e.bReg[0][j] = e.codec.Round(e.b.At(p, colBase+j))
			} else {
				e.bReg[0][j] = 0
			}
		}
		// Single-cycle register faults strike after the shift, before use.
		if f := e.fault; f != nil && f.Cycle == e.cycle {
			switch f.FF {
			case FFARow:
				e.aReg[f.Row][f.Col] = e.codec.FlipBit(e.aReg[f.Row][f.Col], f.Bit)
				e.fired = true
			case FFBCol:
				e.bReg[f.Row][f.Col] = e.codec.FlipBit(e.bReg[f.Row][f.Col], f.Bit)
				e.fired = true
			case FFAcc:
				e.acc[f.Row][f.Col] = e.codec.FlipBit(e.acc[f.Row][f.Col], f.Bit)
				e.fired = true
			}
		}
		// MAC: PE(i,j) multiplies when the wavefront p = t-i-j is valid. The
		// operand registers hold exactly A[rowBase+i, p] and B[p, colBase+j]
		// at that cycle by construction of the skew.
		for i := 0; i < e.k; i++ {
			for j := 0; j < e.k; j++ {
				p := int(t) - i - j
				if p < 0 || p >= e.kk {
					continue
				}
				e.acc[i][j] += e.codec.MulPre(e.aReg[i][j], e.bReg[i][j])
			}
		}
		e.cycle++
	}
	// Drain: write back the tile.
	for i := 0; i < e.k && rowBase+i < e.m; i++ {
		for j := 0; j < e.k && colBase+j < e.n; j++ {
			e.out.Set(e.codec.Saturate(e.acc[i][j]), rowBase+i, colBase+j)
		}
	}
}

// Run is the package-level convenience.
func Run(k int, a, b *tensor.Tensor, codec numerics.Codec, f *Fault) (*Outcome, error) {
	e, err := NewEngine(k, a, b, codec, f)
	if err != nil {
		return nil, err
	}
	return e.Run()
}

// TileCycles exposes the per-tile makespan for fault-cycle sampling.
func TileCycles(k, inner int) int64 {
	return int64(inner) + 2*int64(k) - 1
}

package systolic

import (
	"math/rand"
	"testing"

	"fidelity/internal/numerics"
	"fidelity/internal/reuse"
	"fidelity/internal/tensor"
)

func fp16() numerics.Codec { return numerics.MustCodec(numerics.FP16, 0) }

func randMats(seed int64, m, k, n int) (*tensor.Tensor, *tensor.Tensor) {
	rng := rand.New(rand.NewSource(seed))
	a, b := tensor.New(m, k), tensor.New(k, n)
	a.RandNormal(rng, 1)
	b.RandNormal(rng, 1)
	return a, b
}

// reference computes the matmul with the same codec arithmetic and
// accumulation order (p ascending) as the array.
func reference(a, b *tensor.Tensor, codec numerics.Codec) *tensor.Tensor {
	m, k, n := a.Dim(0), a.Dim(1), b.Dim(1)
	out := tensor.New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var acc float32
			for p := 0; p < k; p++ {
				acc += codec.Mul(a.At(i, p), b.At(p, j))
			}
			out.Set(codec.Saturate(acc), i, j)
		}
	}
	return out
}

func TestGoldenMatchesReference(t *testing.T) {
	for _, prec := range []numerics.Precision{numerics.FP32, numerics.FP16, numerics.INT8} {
		codec := numerics.MustCodec(prec, 8)
		a, b := randMats(1, 9, 13, 11) // non-multiples of k: tiling edge cases
		o, err := Run(4, a, b, codec, nil)
		if err != nil {
			t.Fatalf("%v: %v", prec, err)
		}
		ref := reference(a, b, codec)
		if diffs := ref.DiffIndices(o.Out, 0); len(diffs) != 0 {
			t.Errorf("%v: systolic golden differs from reference at %d/%d", prec, len(diffs), ref.Size())
		}
	}
}

func TestEngineValidation(t *testing.T) {
	codec := fp16()
	a, b := randMats(2, 4, 4, 4)
	if _, err := Run(0, a, b, codec, nil); err == nil {
		t.Error("zero array dim should fail")
	}
	if _, err := Run(4, tensor.New(3, 4), tensor.New(5, 3), codec, nil); err == nil {
		t.Error("inner mismatch should fail")
	}
	if _, err := Run(4, a, b, codec, &Fault{FF: FFAcc, Row: 9, Col: 0}); err == nil {
		t.Error("fault outside array should fail")
	}
}

// An A-stream register fault corrupts a suffix of one output row — the
// systolic analog of the Fig 2(b) linear reuse pattern, RF <= k.
func TestFaultAStreamRowPattern(t *testing.T) {
	codec := fp16()
	const k = 4
	a, b := randMats(3, k, 6, k)
	golden, _ := Run(k, a, b, codec, nil)
	rng := rand.New(rand.NewSource(3))
	span := TileCycles(k, 6)
	hits, sizes := 0, map[int]bool{}
	for trial := 0; trial < 60; trial++ {
		f := &Fault{FF: FFARow, Row: rng.Intn(k), Col: rng.Intn(k), Bit: 14, Cycle: rng.Int63n(span)}
		faulty, err := Run(k, a, b, codec, f)
		if err != nil {
			t.Fatal(err)
		}
		diffs := golden.Out.DiffIndices(faulty.Out, 0)
		if !faulty.FaultApplied || len(diffs) == 0 {
			continue
		}
		hits++
		if len(diffs) > k {
			t.Fatalf("A-stream fault corrupted %d neurons, want <= %d", len(diffs), k)
		}
		sizes[len(diffs)] = true
		row := golden.Out.Unflatten(diffs[0])[0]
		var cols []int
		for _, off := range diffs {
			idx := golden.Out.Unflatten(off)
			if idx[0] != row {
				t.Fatalf("A-stream fault crossed rows: %v", idx)
			}
			cols = append(cols, idx[1])
		}
		// Corrupted columns are consecutive (the value keeps streaming).
		for i := 1; i < len(cols); i++ {
			if cols[i] != cols[i-1]+1 {
				t.Fatalf("A-stream corruption not consecutive: %v", cols)
			}
		}
	}
	if hits < 10 {
		t.Fatalf("only %d live A-stream faults", hits)
	}
	if len(sizes) < 2 {
		t.Errorf("suffix sizes should vary with the struck column, got %v", sizes)
	}
}

// A B-stream register fault corrupts a suffix of one output column.
func TestFaultBStreamColPattern(t *testing.T) {
	codec := fp16()
	const k = 4
	a, b := randMats(4, k, 5, k)
	golden, _ := Run(k, a, b, codec, nil)
	rng := rand.New(rand.NewSource(4))
	span := TileCycles(k, 5)
	hits := 0
	for trial := 0; trial < 60; trial++ {
		f := &Fault{FF: FFBCol, Row: rng.Intn(k), Col: rng.Intn(k), Bit: 14, Cycle: rng.Int63n(span)}
		faulty, err := Run(k, a, b, codec, f)
		if err != nil {
			t.Fatal(err)
		}
		diffs := golden.Out.DiffIndices(faulty.Out, 0)
		if !faulty.FaultApplied || len(diffs) == 0 {
			continue
		}
		hits++
		if len(diffs) > k {
			t.Fatalf("B-stream fault corrupted %d neurons, want <= %d", len(diffs), k)
		}
		col := golden.Out.Unflatten(diffs[0])[1]
		for _, off := range diffs {
			if golden.Out.Unflatten(off)[1] != col {
				t.Fatal("B-stream fault crossed columns")
			}
		}
	}
	if hits < 10 {
		t.Fatalf("only %d live B-stream faults", hits)
	}
}

// Accumulator faults are stationary: RF = 1.
func TestFaultAccRF1(t *testing.T) {
	codec := fp16()
	const k = 4
	a, b := randMats(5, k, 8, k)
	golden, _ := Run(k, a, b, codec, nil)
	rng := rand.New(rand.NewSource(5))
	span := TileCycles(k, 8)
	hits := 0
	for trial := 0; trial < 40; trial++ {
		f := &Fault{FF: FFAcc, Row: rng.Intn(k), Col: rng.Intn(k), Bit: 20, Cycle: rng.Int63n(span)}
		faulty, err := Run(k, a, b, codec, f)
		if err != nil {
			t.Fatal(err)
		}
		diffs := golden.Out.DiffIndices(faulty.Out, 0)
		if !faulty.FaultApplied || len(diffs) == 0 {
			continue
		}
		hits++
		if len(diffs) != 1 {
			t.Fatalf("accumulator fault corrupted %d neurons, want 1", len(diffs))
		}
		idx := golden.Out.Unflatten(diffs[0])
		if idx[0] != f.Row || idx[1] != f.Col {
			t.Fatalf("accumulator fault at PE(%d,%d) corrupted neuron %v", f.Row, f.Col, idx)
		}
	}
	if hits < 5 {
		t.Fatalf("only %d live accumulator faults", hits)
	}
}

// Algorithm 1, fed with this design's scheduling description, predicts the
// same reuse factors the cycle simulation exhibits: RF = k for the streaming
// registers, RF = 1 for accumulators — the paper's broad-applicability claim
// checked on a second dataflow.
func TestAlgorithm1PredictsSystolicRF(t *testing.T) {
	const k = 4
	units := make([]reuse.UnitID, k)
	for i := range units {
		units[i] = reuse.UnitID(i)
	}
	aStream := reuse.Input{
		FFValueCycles:  1,
		Units:          func(l int) []reuse.UnitID { return units }, // reaches k PEs as it streams
		InEffectCycles: func(m reuse.UnitID, l int) int { return 1 },
		Neurons: func(m reuse.UnitID, y, l int) []reuse.Neuron {
			return []reuse.Neuron{{W: int(m)}} // consecutive columns of one row
		},
	}
	r, err := reuse.Analyze(aStream)
	if err != nil {
		t.Fatal(err)
	}
	if r.RF != k {
		t.Errorf("Algorithm 1 predicts RF=%d for the A stream, want %d", r.RF, k)
	}
	accIn := reuse.Input{
		FFValueCycles:  1,
		Units:          func(l int) []reuse.UnitID { return units[:1] },
		InEffectCycles: func(m reuse.UnitID, l int) int { return 1 },
		Neurons: func(m reuse.UnitID, y, l int) []reuse.Neuron {
			return []reuse.Neuron{{}}
		},
	}
	r, err = reuse.Analyze(accIn)
	if err != nil {
		t.Fatal(err)
	}
	if r.RF != 1 {
		t.Errorf("Algorithm 1 predicts RF=%d for accumulators, want 1", r.RF)
	}
}

// Faults aimed at idle cycles or drained registers are masked.
func TestInactiveCyclesMasked(t *testing.T) {
	codec := fp16()
	a, b := randMats(6, 4, 4, 4)
	f := &Fault{FF: FFARow, Row: 0, Col: 0, Bit: 14, Cycle: 1 << 40}
	faulty, err := Run(4, a, b, codec, f)
	if err != nil {
		t.Fatal(err)
	}
	if faulty.FaultApplied {
		t.Error("far-future fault should not fire")
	}
	golden, _ := Run(4, a, b, codec, nil)
	if len(golden.Out.DiffIndices(faulty.Out, 0)) != 0 {
		t.Error("inactive fault must be masked")
	}
}

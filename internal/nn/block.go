package nn

import (
	"fmt"
	"math"
	"math/rand"

	"fidelity/internal/numerics"
	"fidelity/internal/tensor"
)

// Residual computes Body(x) + Shortcut(x) (identity shortcut when Shortcut is
// nil), the ResNet building block.
type Residual struct {
	name     string
	Body     Layer
	Shortcut Layer // nil means identity
	codec    numerics.Codec
}

// NewResidual builds a residual block.
func NewResidual(name string, body, shortcut Layer, codec numerics.Codec) *Residual {
	return &Residual{name: name, Body: body, Shortcut: shortcut, codec: codec}
}

// Name implements Layer.
func (l *Residual) Name() string { return l.name }

// children implements container.
func (l *Residual) children() []Layer { return []Layer{l.Body, l.Shortcut} }

// Forward implements Layer.
func (l *Residual) Forward(x *tensor.Tensor, ctx *Context) *tensor.Tensor {
	b := l.Body.Forward(x, ctx)
	s := x
	if l.Shortcut != nil {
		s = l.Shortcut.Forward(x, ctx)
	}
	return ctx.glue(l, func() *tensor.Tensor {
		out := ctx.newTensor(b.Shape()...)
		od, bd, sd := out.Data(), b.Data(), s.Data()
		for i := range od {
			od[i] = l.codec.Round(bd[i] + sd[i])
		}
		return out
	}, b, s)
}

// Branches runs several paths on the same input and concatenates their
// outputs along the channel axis — the Inception module topology.
type Branches struct {
	name  string
	Paths []Layer
	Axis  int
}

// NewBranches builds a branch-and-concat block (axis 3 = NHWC channels).
func NewBranches(name string, axis int, paths ...Layer) *Branches {
	if len(paths) == 0 {
		panic("nn: Branches requires at least one path")
	}
	return &Branches{name: name, Paths: paths, Axis: axis}
}

// Name implements Layer.
func (l *Branches) Name() string { return l.name }

// children implements container.
func (l *Branches) children() []Layer { return l.Paths }

// Forward implements Layer.
func (l *Branches) Forward(x *tensor.Tensor, ctx *Context) *tensor.Tensor {
	outs := make([]*tensor.Tensor, len(l.Paths))
	for i, p := range l.Paths {
		outs[i] = p.Forward(x, ctx)
	}
	return ctx.glue(l, func() *tensor.Tensor {
		return tensor.Concat(l.Axis, outs...)
	}, outs...)
}

// BatchNorm applies a folded batch normalization: per-channel scale and
// shift (inference-time form). Operates on the last dimension.
type BatchNorm struct {
	name         string
	Scale, Shift *tensor.Tensor
	codec        numerics.Codec
}

// NewBatchNorm builds a folded batch-norm over c channels, initialized to
// identity.
func NewBatchNorm(name string, c int, codec numerics.Codec) *BatchNorm {
	l := &BatchNorm{name: name, Scale: tensor.New(c), Shift: tensor.New(c), codec: codec}
	l.Scale.Fill(1)
	return l
}

// InitRandom perturbs scale and shift to mimic trained statistics.
func (l *BatchNorm) InitRandom(rng *rand.Rand) *BatchNorm {
	for i := 0; i < l.Scale.Size(); i++ {
		l.Scale.Set(0.8+0.4*rng.Float32(), i)
		l.Shift.Set(0.2*float32(rng.NormFloat64()), i)
	}
	return l
}

// Name implements Layer.
func (l *BatchNorm) Name() string { return l.name }

// Forward implements Layer.
func (l *BatchNorm) Forward(x *tensor.Tensor, ctx *Context) *tensor.Tensor {
	c := x.Dim(x.Rank() - 1)
	if c != l.Scale.Size() {
		panic(fmt.Sprintf("nn: %s expects %d channels, got %v", l.name, l.Scale.Size(), x.Shape()))
	}
	return ctx.exec(l, func() *tensor.Tensor {
		out := ctx.newTensor(x.Shape()...)
		od, xd := out.Data(), x.Data()
		// Row-sliced with hoisted scale/shift buffers: no per-element modulo
		// or bounds checks; same formula per element as the naive loop.
		sc := l.Scale.Data()[:c]
		sh := l.Shift.Data()[:c]
		for base := 0; base+c <= len(xd); base += c {
			xrow, orow := xd[base:base+c], od[base:base+c]
			for i, v := range xrow {
				orow[i] = l.codec.Round(v*sc[i] + sh[i])
			}
		}
		return out
	}, nil, x)
}

// LayerNorm normalizes over the last dimension with learned scale/shift —
// the Transformer normalization.
type LayerNorm struct {
	name         string
	Scale, Shift *tensor.Tensor
	Eps          float32
}

// NewLayerNorm builds a layer norm over dim features, initialized to
// identity.
func NewLayerNorm(name string, dim int) *LayerNorm {
	l := &LayerNorm{name: name, Scale: tensor.New(dim), Shift: tensor.New(dim), Eps: 1e-5}
	l.Scale.Fill(1)
	return l
}

// Name implements Layer.
func (l *LayerNorm) Name() string { return l.name }

// Forward implements Layer.
func (l *LayerNorm) Forward(x *tensor.Tensor, ctx *Context) *tensor.Tensor {
	d := x.Dim(x.Rank() - 1)
	if d != l.Scale.Size() {
		panic(fmt.Sprintf("nn: %s expects %d features, got %v", l.name, l.Scale.Size(), x.Shape()))
	}
	rows := x.Size() / d
	return ctx.exec(l, func() *tensor.Tensor {
		out := ctx.newTensor(x.Shape()...)
		data := out.Data()
		copy(data, x.Data())
		l.normalize(data, rows, d)
		return out
	}, nil, x)
}

func (l *LayerNorm) normalize(data []float32, rows, d int) {
	for r := 0; r < rows; r++ {
		row := data[r*d : (r+1)*d]
		var mean float64
		for _, v := range row {
			mean += float64(v)
		}
		mean /= float64(d)
		var varsum float64
		for _, v := range row {
			dv := float64(v) - mean
			varsum += dv * dv
		}
		inv := 1 / float32(math.Sqrt(varsum/float64(d)+float64(l.Eps)))
		for i, v := range row {
			row[i] = (v-float32(mean))*inv*l.Scale.At(i) + l.Shift.At(i)
		}
	}
}

// ZeroPad pads an NHWC tensor spatially by P on each side.
type ZeroPad struct {
	name string
	P    int
}

// NewZeroPad builds a spatial zero-padding layer.
func NewZeroPad(name string, p int) *ZeroPad { return &ZeroPad{name: name, P: p} }

// Name implements Layer.
func (l *ZeroPad) Name() string { return l.name }

// Forward implements Layer.
func (l *ZeroPad) Forward(x *tensor.Tensor, ctx *Context) *tensor.Tensor {
	return ctx.exec(l, func() *tensor.Tensor {
		return tensor.Pad2D(x, l.P)
	}, nil, x)
}

// Flatten reshapes (N, ...) to (N, features).
type Flatten struct {
	name string
}

// NewFlatten builds a flatten layer.
func NewFlatten(name string) *Flatten { return &Flatten{name: name} }

// Name implements Layer.
func (l *Flatten) Name() string { return l.name }

// Forward implements Layer. The reshape is a view over x's data, so it must
// still go through exec: the view object's identity is what downstream dirty
// tests see, and only recorded views count as golden.
func (l *Flatten) Forward(x *tensor.Tensor, ctx *Context) *tensor.Tensor {
	n := x.Dim(0)
	return ctx.exec(l, func() *tensor.Tensor {
		return x.Reshape(n, x.Size()/n)
	}, nil, x)
}

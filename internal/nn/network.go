package nn

import (
	"fmt"

	"fidelity/internal/numerics"
	"fidelity/internal/tensor"
)

// Network pairs a layer graph with the datapath precision it executes at and
// gives the fault-injection engine a stable view of its injection sites.
type Network struct {
	// NetName identifies the network (e.g. "inception-lite").
	NetName string
	// Root is the layer graph.
	Root Layer
	// Precision is the datapath number format the network runs at.
	Precision numerics.Precision
	// Codec is the calibrated codec shared by all compute layers.
	Codec numerics.Codec

	sites []Site

	// clamps holds the installed range-restriction envelopes (see clamp.go).
	// Written only by SetClamp/ClearClamps during hardening setup; read-only
	// once forward passes start, so concurrent workers may share the network.
	clamps map[Layer]Bound
}

// NewNetwork wraps a layer graph.
func NewNetwork(name string, root Layer, codec numerics.Codec) *Network {
	return &Network{
		NetName:   name,
		Root:      root,
		Precision: codec.Precision(),
		Codec:     codec,
		sites:     Sites(root),
	}
}

// Name returns the network name.
func (n *Network) Name() string { return n.NetName }

// Sites returns the injection sites in graph order.
func (n *Network) Sites() []Site { return n.sites }

// SiteByName returns the site with the given name.
func (n *Network) SiteByName(name string) (Site, error) {
	for _, s := range n.sites {
		if s.Name() == name {
			return s, nil
		}
	}
	return nil, fmt.Errorf("nn: network %s has no site %q", n.NetName, name)
}

// SetClamp installs a range-restriction envelope on one compute site. Call
// only during hardening setup, before any forward pass runs; envelopes are
// read-only afterwards so concurrent workers can share the network.
func (n *Network) SetClamp(s Site, b Bound) {
	if n.clamps == nil {
		n.clamps = map[Layer]Bound{}
	}
	n.clamps[s] = b
}

// ClearClamps removes every installed envelope.
func (n *Network) ClearClamps() { n.clamps = nil }

// Hardened reports whether any range-restriction envelope is installed.
func (n *Network) Hardened() bool { return len(n.clamps) > 0 }

// instrument threads the installed clamp set into ctx so every execution
// path (plain, record, replay) applies the envelopes. An unhardened network
// passes ctx through untouched; a hardened one materializes a context even
// for plain forward passes.
func (n *Network) instrument(ctx *Context) *Context {
	if len(n.clamps) == 0 {
		return ctx
	}
	if ctx == nil {
		ctx = NewContext(nil)
	}
	ctx.clamps = n.clamps
	return ctx
}

// Forward runs a clean inference.
func (n *Network) Forward(x *tensor.Tensor) *tensor.Tensor {
	return n.Root.Forward(x, n.instrument(nil))
}

// ForwardWithHook runs an inference with an injection hook installed at all
// compute sites.
func (n *Network) ForwardWithHook(x *tensor.Tensor, hook Hook) *tensor.Tensor {
	return n.Root.Forward(x, n.instrument(NewContext(hook)))
}

// ForwardWithContext runs an inference through an explicit context — used by
// the replay engine, which reuses record/replay contexts across passes.
func (n *Network) ForwardWithContext(x *tensor.Tensor, ctx *Context) *tensor.Tensor {
	return n.Root.Forward(x, n.instrument(ctx))
}

// SiteExecution captures one execution of a site during a forward pass:
// operand shapes plus the output, for fault-site sampling.
type SiteExecution struct {
	Site     Site
	Visit    int
	InShape  []int
	WShape   []int
	BSize    int
	OutSize  int
	OutShape []int
	// Golden is the recorded golden output of this execution, populated by
	// TraceWithActivations (nil for plain Trace).
	Golden *tensor.Tensor
}

// Trace runs a clean forward pass and records every site execution, so a
// campaign can sample fault sites proportionally to the work each site
// performs.
func (n *Network) Trace(x *tensor.Tensor) (*tensor.Tensor, []SiteExecution) {
	var execs []SiteExecution
	out := n.ForwardWithHook(x, func(site Layer, visit int, op *Operands) {
		e := SiteExecution{Visit: visit, OutSize: op.Out.Size(), OutShape: append([]int(nil), op.Out.Shape()...)}
		if s, ok := site.(Site); ok {
			e.Site = s
		}
		if op.In != nil {
			e.InShape = append([]int(nil), op.In.Shape()...)
		}
		if op.W != nil {
			e.WShape = append([]int(nil), op.W.Shape()...)
		}
		if op.B != nil {
			e.BSize = op.B.Size()
		}
		execs = append(execs, e)
	})
	return out, execs
}

// TraceWithActivations runs a clean forward pass in record mode: like Trace,
// but every layer execution's golden output tensor is captured into the
// returned GoldenTrace (and each SiteExecution carries its golden output), so
// subsequent injections can replay incrementally instead of recomputing the
// full network.
func (n *Network) TraceWithActivations(x *tensor.Tensor) (*tensor.Tensor, []SiteExecution, *GoldenTrace) {
	var execs []SiteExecution
	ctx, trace := NewRecordContext(func(site Layer, visit int, op *Operands) {
		e := SiteExecution{Visit: visit, OutSize: op.Out.Size(), OutShape: append([]int(nil), op.Out.Shape()...)}
		if s, ok := site.(Site); ok {
			e.Site = s
		}
		if op.In != nil {
			e.InShape = append([]int(nil), op.In.Shape()...)
		}
		if op.W != nil {
			e.WShape = append([]int(nil), op.W.Shape()...)
		}
		if op.B != nil {
			e.BSize = op.B.Size()
		}
		e.Golden = op.Out
		execs = append(execs, e)
	})
	trace.MarkGolden(x)
	out := n.Root.Forward(x, n.instrument(ctx))
	return out, execs, trace
}

package nn

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"fidelity/internal/numerics"
	"fidelity/internal/tensor"
)

// Conv2D is a 2-D convolution over NHWC input with weights laid out
// (KH, KW, InC, OutC). It is the primary fault-injection site for CNN
// workloads: in NVDLA the convolution pipeline (CDMA→CBUF→CMAC→CACC)
// executes exactly this operation.
type Conv2D struct {
	name      string
	KH, KW    int
	InC, OutC int
	Stride    int
	Pad       int
	Depthwise bool // when true, OutC == InC and weights are (KH, KW, InC, 1)

	W *tensor.Tensor
	B *tensor.Tensor // length OutC, may be nil

	codec numerics.Codec
	// wcache holds RoundSlice(W) so repeated forwards (and ComputeNeuron)
	// skip re-rounding the full weight tensor. atomic: a Network is shared
	// read-only across campaign shards; the recompute is idempotent.
	wcache atomic.Pointer[[]float32]
}

// roundedW returns the cached pre-rounded weight buffer, computing it once.
func (l *Conv2D) roundedW() []float32 {
	if p := l.wcache.Load(); p != nil {
		return *p
	}
	rw := l.codec.RoundSlice(l.W.Data())
	l.wcache.Store(&rw)
	return rw
}

// InvalidateWeights drops the rounded-weight cache. Call after mutating W.
func (l *Conv2D) InvalidateWeights() { l.wcache.Store(nil) }

// NewConv2D builds a convolution layer with zero weights; use InitRandom or
// assign W/B to populate parameters.
func NewConv2D(name string, kh, kw, inC, outC, stride, pad int, codec numerics.Codec) *Conv2D {
	if kh <= 0 || kw <= 0 || inC <= 0 || outC <= 0 || stride <= 0 || pad < 0 {
		panic(fmt.Sprintf("nn: invalid Conv2D geometry k=%dx%d c=%d->%d s=%d p=%d", kh, kw, inC, outC, stride, pad))
	}
	return &Conv2D{
		name: name, KH: kh, KW: kw, InC: inC, OutC: outC, Stride: stride, Pad: pad,
		W:     tensor.New(kh, kw, inC, outC),
		B:     tensor.New(outC),
		codec: codec,
	}
}

// NewDepthwiseConv2D builds a depthwise convolution (one filter per channel),
// the building block of MobileNet.
func NewDepthwiseConv2D(name string, kh, kw, c, stride, pad int, codec numerics.Codec) *Conv2D {
	l := NewConv2D(name, kh, kw, c, c, stride, pad, codec)
	l.Depthwise = true
	l.W = tensor.New(kh, kw, c, 1)
	return l
}

// InitRandom fills weights with N(0, stddev²) and biases with small values.
func (l *Conv2D) InitRandom(rng *rand.Rand, stddev float32) *Conv2D {
	l.W.RandNormal(rng, stddev)
	if l.B != nil {
		l.B.RandNormal(rng, stddev/4)
	}
	l.InvalidateWeights()
	return l
}

// Name implements Layer.
func (l *Conv2D) Name() string { return l.name }

// Kind implements Site.
func (l *Conv2D) Kind() Kind { return KindConv }

// Codec implements Site.
func (l *Conv2D) Codec() numerics.Codec { return l.codec }

// OutputShape returns the NHWC output shape for an NHWC input shape.
func (l *Conv2D) OutputShape(in []int) []int {
	n, h, w := in[0], in[1], in[2]
	oh := (h+2*l.Pad-l.KH)/l.Stride + 1
	ow := (w+2*l.Pad-l.KW)/l.Stride + 1
	return []int{n, oh, ow, l.OutC}
}

// Forward implements Layer. The fast path below pre-rounds both operand
// buffers once and accumulates with MulPre; it is bit-identical to calling
// ComputeNeuron per output neuron (the per-channel accumulation order is the
// same, and MulPre(Round(a), Round(b)) == Mul(a, b)).
func (l *Conv2D) Forward(x *tensor.Tensor, ctx *Context) *tensor.Tensor {
	if x.Rank() != 4 || x.Dim(3) != l.InC {
		panic(fmt.Sprintf("nn: %s expects NHWC input with %d channels, got %v", l.name, l.InC, x.Shape()))
	}
	return ctx.exec(l, func() *tensor.Tensor {
		os := l.OutputShape(x.Shape())
		out := ctx.newTensor(os...)
		op := &Operands{In: x, W: l.W, B: l.B, Out: out}

		rin := l.codec.RoundSlice(x.Data())
		rw := l.roundedW()
		if UseReferenceKernels() {
			convForwardRef(l, x, out, rin, rw)
		} else {
			convForward(l.kernelArgs(x, out, rin, 0))
		}
		ctx.fire(l, op)
		return out
	}, func(out *tensor.Tensor) *Operands {
		return &Operands{In: x, W: l.W, B: l.B, Out: out}
	}, x)
}

// kernelArgs assembles the tiled-kernel argument block for one forward pass
// over input x into out. rin is the pre-rounded input buffer (a row window
// when rinOff is non-zero; see convArgs.rinOff).
func (l *Conv2D) kernelArgs(x, out *tensor.Tensor, rin []float32, rinOff int) *convArgs {
	os := out.Shape()
	var bias []float32
	if l.B != nil {
		bias = l.B.Data()
	}
	return &convArgs{
		rin: rin, rw: l.roundedW(), bias: bias, out: out.Data(), rinOff: rinOff,
		n: x.Dim(0), h: x.Dim(1), w: x.Dim(2), inC: l.InC,
		oh: os[1], ow: os[2], outC: os[3],
		kh: l.KH, kw: l.KW, stride: l.Stride, pd: l.Pad,
		depthwise: l.Depthwise, fp16: l.codec.Precision() == numerics.FP16,
		codec: l.codec,
	}
}

// ComputeNeuron implements Site. The accumulation order is (kh, kw, ic)
// row-major, matching both the software convolution and the rtlsim MAC
// sequencing so that faulty values agree bit-for-bit.
func (l *Conv2D) ComputeNeuron(op *Operands, idx []int, ov *Override) float32 {
	b, oy, ox, oc := idx[0], idx[1], idx[2], idx[3]
	in := op.In
	w := op.W
	h, wd := in.Dim(1), in.Dim(2)
	// Flat row-major indexing throughout: this runs once per affected neuron
	// per datapath fault, and the variadic At/Offset accessors allocate their
	// index slice per call — a quarter of campaign wall clock before this.
	ind, wdat := in.Data(), w.Data()
	wc, woc := w.Dim(2), w.Dim(3)
	// Flat override targets; -1 (matching no offset) when the override does
	// not touch that operand, so the hot loop tests one integer per value.
	inFlat, wFlat := -1, -1
	if ov != nil {
		switch ov.Kind {
		case OperandInput:
			inFlat = ov.Flat
		case OperandWeight:
			wFlat = ov.Flat
		}
	}
	// Reuse the pre-rounded weight cache when recomputing against the layer's
	// own weights: MulPre(Round(a), Round(b)) == Mul(a, b) for every codec,
	// so the result is bit-identical.
	var rw []float32
	if w == l.W {
		rw = l.roundedW()
	}
	var acc float32
	for ky := 0; ky < l.KH; ky++ {
		iy := oy*l.Stride + ky - l.Pad
		if iy < 0 || iy >= h {
			continue
		}
		for kx := 0; kx < l.KW; kx++ {
			ix := ox*l.Stride + kx - l.Pad
			if ix < 0 || ix >= wd {
				continue
			}
			base := ((b*h+iy)*wd + ix) * l.InC
			if l.Depthwise {
				ioff := base + oc
				av := ind[ioff]
				if ioff == inFlat {
					av = ov.Value
				}
				woff := ((ky*l.KW+kx)*wc + oc) * woc
				switch {
				case woff == wFlat:
					acc += l.codec.Mul(av, ov.Value)
				case rw != nil:
					acc += l.codec.MulPre(l.codec.Round(av), rw[woff])
				default:
					acc += l.codec.Mul(av, wdat[woff])
				}
				continue
			}
			wbase := (ky*l.KW + kx) * wc * woc
			for ic := 0; ic < l.InC; ic++ {
				av := ind[base+ic]
				if base+ic == inFlat {
					av = ov.Value
				}
				woff := wbase + ic*woc + oc
				switch {
				case woff == wFlat:
					acc += l.codec.Mul(av, ov.Value)
				case rw != nil:
					acc += l.codec.MulPre(l.codec.Round(av), rw[woff])
				default:
					acc += l.codec.Mul(av, wdat[woff])
				}
			}
		}
	}
	if op.B != nil {
		bv := op.B.At(oc)
		if ov != nil && ov.Kind == OperandBias && oc == ov.Flat {
			bv = ov.Value
		}
		acc += bv
	}
	return l.codec.Saturate(acc)
}

// NeuronsUsingOperand implements Site.
func (l *Conv2D) NeuronsUsingOperand(op *Operands, kind OperandKind, flat int) [][]int {
	os := l.OutputShape(op.In.Shape())
	n, oh, ow := os[0], os[1], os[2]
	var out [][]int
	switch kind {
	case OperandInput:
		ii := op.In.Unflatten(flat)
		b, iy, ix := ii[0], ii[1], ii[2]
		ic := ii[3]
		// Output rows oy with oy*Stride + ky - Pad == iy for some ky in [0,KH).
		for oy := 0; oy < oh; oy++ {
			ky := iy - oy*l.Stride + l.Pad
			if ky < 0 || ky >= l.KH {
				continue
			}
			for ox := 0; ox < ow; ox++ {
				kx := ix - ox*l.Stride + l.Pad
				if kx < 0 || kx >= l.KW {
					continue
				}
				if l.Depthwise {
					out = append(out, []int{b, oy, ox, ic})
					continue
				}
				for oc := 0; oc < l.OutC; oc++ {
					out = append(out, []int{b, oy, ox, oc})
				}
			}
		}
	case OperandWeight:
		wi := l.W.Unflatten(flat)
		if l.Depthwise {
			c := wi[2]
			for b := 0; b < n; b++ {
				for oy := 0; oy < oh; oy++ {
					for ox := 0; ox < ow; ox++ {
						out = append(out, []int{b, oy, ox, c})
					}
				}
			}
			break
		}
		oc := wi[3]
		// Every spatial position of output channel oc, all batches.
		for b := 0; b < n; b++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					out = append(out, []int{b, oy, ox, oc})
				}
			}
		}
	case OperandBias:
		oc := flat
		for b := 0; b < n; b++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					out = append(out, []int{b, oy, ox, oc})
				}
			}
		}
	case OperandOutput:
		out = append(out, op.Out.Unflatten(flat))
	}
	return out
}

package nn

// region.go extends the replay engine with dirty-region tracking: when a
// recomputed layer differs from golden, the replay context records a
// conservative bound (a span) on *which elements* differ, and downstream
// layers that support it recompute only the output region those elements can
// reach, copying everything else from their golden output. For a single-site
// fault in a deep CNN the dirty region is a few rows tall, so a suffix layer
// costs O(region) instead of O(layer).
//
// Bit-exactness argument: a region-capable layer computes each output neuron
// with the same tiled kernel (same accumulation order, same rounding) as the
// full forward pass, and every neuron it does not compute is copied from the
// golden output. Neurons outside the mapped output region read only input
// elements outside the recorded input span, which are bit-equal to golden by
// the span invariant — so recomputing them would reproduce the golden value
// exactly, and the copy is indistinguishable from recomputation. The span
// invariant itself is maintained by scanning: every recomputed output is
// diffed against golden (the scan replay already paid for convergence
// detection), and the recorded span covers all differing elements.

import (
	"math"

	"fidelity/internal/numerics"
	"fidelity/internal/tensor"
)

// span is a conservative bound on the elements of a tensor that may differ
// from its golden value: a flat element range [lo, hi), plus a spatial box
// over the H and W dimensions (all batches, all channels) when the tensor is
// rank-4 NHWC.
type span struct {
	lo, hi         int
	y0, y1, x0, x1 int
	boxed          bool
}

// boxIn resolves the span to a spatial box for a rank-4 tensor of height h
// and width w with rowStride = w*c elements per row and imgStride = h*w*c
// per batch image. Unboxed spans that stay within one batch image resolve to
// their row range at full width; spans crossing batch images resolve to the
// full spatial extent.
func (s span) boxIn(h, w, rowStride, imgStride int) (y0, y1, x0, x1 int) {
	if s.boxed {
		return s.y0, s.y1, s.x0, s.x1
	}
	if s.lo/imgStride == (s.hi-1)/imgStride {
		return (s.lo / rowStride) % h, ((s.hi-1)/rowStride)%h + 1, 0, w
	}
	return 0, h, 0, w
}

// neq reports whether a and b differ as tensor elements (NaN equals NaN, as
// in tensor.Equal).
func neq(a, b float32) bool {
	return a != b && !(math.IsNaN(float64(a)) && math.IsNaN(float64(b)))
}

// diffSpanFull scans out against golden and returns the span of differing
// elements. equal is true (and the span meaningless) when none differ.
func diffSpanFull(out, golden *tensor.Tensor) (sp span, equal bool) {
	od, gd := out.Data(), golden.Data()
	lo := 0
	for ; lo < len(od); lo++ {
		if neq(od[lo], gd[lo]) {
			break
		}
	}
	if lo == len(od) {
		return span{}, true
	}
	hi := len(od) - 1
	for ; hi > lo; hi-- {
		if neq(od[hi], gd[hi]) {
			break
		}
	}
	sp = span{lo: lo, hi: hi + 1}
	if out.Rank() == 4 {
		h, w, c := out.Dim(1), out.Dim(2), out.Dim(3)
		sp = boxify(od, gd, sp, out.Dim(0), h, w, c)
	}
	return sp, false
}

// boxify tightens a flat span over a rank-4 NHWC buffer into a spatial box by
// scanning the flat range and tracking the row/column extent of differences.
func boxify(od, gd []float32, sp span, n, h, w, c int) span {
	rowStride, imgStride := w*c, h*w*c
	y0, y1, x0, x1 := h, 0, w, 0
	for i := sp.lo; i < sp.hi; i++ {
		if !neq(od[i], gd[i]) {
			continue
		}
		y := (i % imgStride) / rowStride
		x := (i % rowStride) / c
		if y < y0 {
			y0 = y
		}
		if y >= y1 {
			y1 = y + 1
		}
		if x < x0 {
			x0 = x
		}
		if x >= x1 {
			x1 = x + 1
		}
	}
	sp.y0, sp.y1, sp.x0, sp.x1 = y0, y1, x0, x1
	sp.boxed = true
	return sp
}

// diffSpanBox scans only the given spatial box of a rank-4 tensor (the region
// a sweep recomputed; everything outside is a golden copy by construction)
// and returns the tightened span of differing elements.
func diffSpanBox(out, golden *tensor.Tensor, y0, y1, x0, x1 int) (sp span, equal bool) {
	od, gd := out.Data(), golden.Data()
	n, h, w, c := out.Dim(0), out.Dim(1), out.Dim(2), out.Dim(3)
	rowStride, imgStride := w*c, h*w*c
	ry0, ry1, rx0, rx1 := h, 0, w, 0
	lo, hi := len(od), 0
	for b := 0; b < n; b++ {
		for y := y0; y < y1; y++ {
			base := b*imgStride + y*rowStride + x0*c
			row := od[base : base+(x1-x0)*c]
			grow := gd[base : base+(x1-x0)*c]
			for i, v := range row {
				if !neq(v, grow[i]) {
					continue
				}
				x := x0 + i/c
				if y < ry0 {
					ry0 = y
				}
				if y >= ry1 {
					ry1 = y + 1
				}
				if x < rx0 {
					rx0 = x
				}
				if x >= rx1 {
					rx1 = x + 1
				}
				if base+i < lo {
					lo = base + i
				}
				if base+i >= hi {
					hi = base + i + 1
				}
			}
		}
	}
	if hi == 0 {
		return span{}, true
	}
	return span{lo: lo, hi: hi, y0: ry0, y1: ry1, x0: rx0, x1: rx1, boxed: true}, false
}

// regionSite is implemented by layers that can recompute just the output
// region reached by a dirty input span. forwardRegion returns the output
// tensor (seeded from golden outside the region) plus the output box it
// recomputed; ok is false when the dirty span maps to no output element
// (e.g. it falls off a stride lattice), meaning the golden output stands.
type regionSite interface {
	forwardRegion(c *Context, x, golden *tensor.Tensor, sp span) (out *tensor.Tensor, oy0, oy1, ox0, ox1 int, ok bool)
}

// windowRange maps a dirty input row range [i0,i1) to the output rows whose
// kernel windows overlap it, for kernel size k, stride s, padding p, clamped
// to [0, on).
func windowRange(i0, i1, k, s, p, on int) (o0, o1 int) {
	num := i0 + p - k + 1
	if num > 0 {
		o0 = (num + s - 1) / s
	}
	o1 = (i1-1+p)/s + 1
	if o1 > on {
		o1 = on
	}
	return o0, o1
}

// goldenCopy returns an arena-backed copy of golden.
func (c *Context) goldenCopy(golden *tensor.Tensor) *tensor.Tensor {
	out := c.arena.get(golden.Shape()...)
	copy(out.Data(), golden.Data())
	return out
}

// forwardRegion implements regionSite for Conv2D: it maps the dirty input box
// through the kernel window geometry, rounds only the input rows the output
// box reads, and runs the tiled kernel over that box.
func (l *Conv2D) forwardRegion(c *Context, x, golden *tensor.Tensor, sp span) (*tensor.Tensor, int, int, int, int, bool) {
	n, h, w := x.Dim(0), x.Dim(1), x.Dim(2)
	os := golden.Shape()
	oh, ow := os[1], os[2]
	iy0, iy1, ix0, ix1 := sp.boxIn(h, w, w*l.InC, h*w*l.InC)
	oy0, oy1 := windowRange(iy0, iy1, l.KH, l.Stride, l.Pad, oh)
	ox0, ox1 := windowRange(ix0, ix1, l.KW, l.Stride, l.Pad, ow)
	if oy0 >= oy1 || ox0 >= ox1 {
		return nil, 0, 0, 0, 0, false
	}
	out := c.goldenCopy(golden)

	// Round only the input rows the output box reads. For FP32 rounding is
	// the identity, so the input buffer is used directly; multi-batch inputs
	// fall back to rounding the full tensor (row windows are per-image).
	var rin []float32
	rinOff := 0
	var scratch *tensor.Tensor
	switch {
	case l.codec.Precision() == numerics.FP32:
		rin = x.Data()
	case n == 1:
		wy0 := oy0*l.Stride - l.Pad
		if wy0 < 0 {
			wy0 = 0
		}
		wy1 := (oy1-1)*l.Stride + l.KH - l.Pad
		if wy1 > h {
			wy1 = h
		}
		rowStride := w * l.InC
		scratch = c.arena.get((wy1 - wy0) * rowStride)
		rin = scratch.Data()
		src := x.Data()[wy0*rowStride : wy1*rowStride]
		for i, v := range src {
			rin[i] = l.codec.Round(v)
		}
		rinOff = wy0 * rowStride
	default:
		rin = l.codec.RoundSlice(x.Data())
	}

	args := l.kernelArgs(x, out, rin, rinOff)
	accs := make([]float32, args.outC)
	for bi := 0; bi < n; bi++ {
		convTile(args, bi, oy0, oy1, ox0, ox1, accs)
	}
	if scratch != nil {
		c.arena.release(scratch)
	}
	return out, oy0, oy1, ox0, ox1, true
}

// forwardRegion implements regionSite for MaxPool.
func (l *MaxPool) forwardRegion(c *Context, x, golden *tensor.Tensor, sp span) (*tensor.Tensor, int, int, int, int, bool) {
	h, w, ch := x.Dim(1), x.Dim(2), x.Dim(3)
	oh, ow := golden.Dim(1), golden.Dim(2)
	iy0, iy1, ix0, ix1 := sp.boxIn(h, w, w*ch, h*w*ch)
	oy0, oy1 := windowRange(iy0, iy1, l.Size, l.Stride, 0, oh)
	ox0, ox1 := windowRange(ix0, ix1, l.Size, l.Stride, 0, ow)
	if oy0 >= oy1 || ox0 >= ox1 {
		return nil, 0, 0, 0, 0, false
	}
	out := c.goldenCopy(golden)
	maxPoolRegion(x, out, l.Size, l.Stride, oy0, oy1, ox0, ox1)
	return out, oy0, oy1, ox0, ox1, true
}

// forwardRegion implements regionSite for AvgPool.
func (l *AvgPool) forwardRegion(c *Context, x, golden *tensor.Tensor, sp span) (*tensor.Tensor, int, int, int, int, bool) {
	h, w, ch := x.Dim(1), x.Dim(2), x.Dim(3)
	oh, ow := golden.Dim(1), golden.Dim(2)
	iy0, iy1, ix0, ix1 := sp.boxIn(h, w, w*ch, h*w*ch)
	oy0, oy1 := windowRange(iy0, iy1, l.Size, l.Stride, 0, oh)
	ox0, ox1 := windowRange(ix0, ix1, l.Size, l.Stride, 0, ow)
	if oy0 >= oy1 || ox0 >= ox1 {
		return nil, 0, 0, 0, 0, false
	}
	out := c.goldenCopy(golden)
	avgPoolRegion(x, out, l.Size, l.Stride, l.codec, oy0, oy1, ox0, ox1)
	return out, oy0, oy1, ox0, ox1, true
}

// forwardRegion implements regionSite for Activation (elementwise: the output
// region is the input span itself).
func (l *Activation) forwardRegion(c *Context, x, golden *tensor.Tensor, sp span) (*tensor.Tensor, int, int, int, int, bool) {
	out := c.goldenCopy(golden)
	od, xd := out.Data(), x.Data()
	for i := sp.lo; i < sp.hi; i++ {
		od[i] = l.codec.Round(l.f(xd[i]))
	}
	return elementwiseBox(out, sp)
}

// forwardRegion implements regionSite for BatchNorm. The span is widened to
// channel-row boundaries so the per-channel scale/shift lookup stays a simple
// index.
func (l *BatchNorm) forwardRegion(c *Context, x, golden *tensor.Tensor, sp span) (*tensor.Tensor, int, int, int, int, bool) {
	ch := x.Dim(x.Rank() - 1)
	out := c.goldenCopy(golden)
	od, xd := out.Data(), x.Data()
	sc := l.Scale.Data()[:ch]
	sh := l.Shift.Data()[:ch]
	lo := sp.lo - sp.lo%ch
	hi := sp.hi + (ch-sp.hi%ch)%ch
	if hi > len(xd) {
		hi = len(xd)
	}
	for base := lo; base+ch <= hi; base += ch {
		xrow, orow := xd[base:base+ch], od[base:base+ch]
		for i, v := range xrow {
			orow[i] = l.codec.Round(v*sc[i] + sh[i])
		}
	}
	return elementwiseBox(out, sp)
}

// elementwiseBox converts an elementwise layer's recomputed input span into
// the forwardRegion return convention: the scan box is the span's own box for
// rank-4 outputs, or the full spatial extent (flat scan) otherwise.
func elementwiseBox(out *tensor.Tensor, sp span) (*tensor.Tensor, int, int, int, int, bool) {
	if out.Rank() != 4 {
		// Rank-2 and other outputs are scanned fully; exec treats a zero box
		// as "scan everything".
		return out, 0, 0, 0, 0, true
	}
	h, w, c := out.Dim(1), out.Dim(2), out.Dim(3)
	y0, y1, x0, x1 := sp.boxIn(h, w, w*c, h*w*c)
	return out, y0, y1, x0, x1, true
}

package nn

import (
	"math/rand"
	"testing"

	"fidelity/internal/tensor"
)

func TestEmbeddingLookup(t *testing.T) {
	e := NewEmbedding("emb", 4, 3)
	for v := 0; v < 4; v++ {
		for d := 0; d < 3; d++ {
			e.Table.Set(float32(v*10+d), v, d)
		}
	}
	x := tensor.FromSlice([]float32{2, 0, 3}, 3, 1)
	y := e.Forward(x, nil)
	if y.Dim(0) != 3 || y.Dim(1) != 3 {
		t.Fatalf("shape = %v", y.Shape())
	}
	if y.At(0, 1) != 21 || y.At(1, 0) != 0 || y.At(2, 2) != 32 {
		t.Errorf("lookup values wrong: %v", y.Data())
	}
}

func TestEmbeddingClampsTokens(t *testing.T) {
	e := NewEmbedding("emb", 4, 2)
	e.Table.Fill(1)
	e.Table.Set(7, 3, 0)
	e.Table.Set(9, 0, 0)
	x := tensor.FromSlice([]float32{99, -5}, 2, 1)
	y := e.Forward(x, nil)
	if y.At(0, 0) != 7 {
		t.Errorf("over-vocab token should clamp to last row, got %v", y.At(0, 0))
	}
	if y.At(1, 0) != 9 {
		t.Errorf("negative token should clamp to row 0, got %v", y.At(1, 0))
	}
}

func TestEmbeddingValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero vocab should panic")
		}
	}()
	NewEmbedding("emb", 0, 2)
}

func TestEmbeddingRejectsWrongRank(t *testing.T) {
	e := NewEmbedding("emb", 4, 2)
	defer func() {
		if recover() == nil {
			t.Error("non (seq,1) input should panic")
		}
	}()
	e.Forward(tensor.New(3, 2), nil)
}

func TestEmbeddingInitRandom(t *testing.T) {
	e := NewEmbedding("emb", 8, 4).InitRandom(rand.New(rand.NewSource(1)), 0.5)
	if e.Table.MaxAbs() == 0 {
		t.Error("table not initialized")
	}
	if e.Name() != "emb" {
		t.Error("name")
	}
}

func TestZeroPadLayer(t *testing.T) {
	p := NewZeroPad("pad", 2)
	x := tensor.New(1, 3, 3, 2)
	x.Fill(5)
	y := p.Forward(x, nil)
	if y.Dim(1) != 7 || y.Dim(2) != 7 {
		t.Fatalf("shape = %v", y.Shape())
	}
	if y.At(0, 0, 0, 0) != 0 || y.At(0, 3, 3, 1) != 5 {
		t.Error("padding content wrong")
	}
	if p.Name() != "pad" {
		t.Error("name")
	}
}

// A Sequential network containing every composite must enumerate its sites
// through arbitrary nesting.
func TestDeepSiteEnumeration(t *testing.T) {
	c := fp32Codec()
	rng := rand.New(rand.NewSource(2))
	inner := NewConv2D("inner", 1, 1, 2, 2, 1, 0, c).InitRandom(rng, 1)
	res := NewResidual("res", NewSequential("body", inner), nil, c)
	br := NewBranches("br", 3, res, NewConv2D("side", 1, 1, 2, 2, 1, 0, c))
	top := NewSequential("top", br, NewFlatten("f"),
		NewDense("head", 16, 4, c))
	sites := Sites(top)
	if len(sites) != 3 {
		t.Fatalf("sites = %d, want 3", len(sites))
	}
	names := map[string]bool{}
	for _, s := range sites {
		names[s.Name()] = true
	}
	for _, want := range []string{"inner", "side", "head"} {
		if !names[want] {
			t.Errorf("missing site %s", want)
		}
	}
}

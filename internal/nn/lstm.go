package nn

import (
	"fmt"
	"math"
	"math/rand"

	"fidelity/internal/numerics"
	"fidelity/internal/tensor"
)

// LSTM runs a single-layer LSTM over a (seq, features) input and returns the
// final hidden state as (1, hidden). The four gates are computed by one
// fused Dense site over [x_t ; h_{t-1}], which is how the paper's RNN
// workload ("a FC layer in LSTM", Table III) maps onto the NVDLA FC pipeline.
// The gate Dense executes once per timestep, so one LSTM forward fires the
// injection hook seq times with distinct visit numbers.
type LSTM struct {
	name   string
	In     int
	Hidden int
	Gates  *Dense // (In+Hidden) -> 4*Hidden, order: i, f, g, o
	codec  numerics.Codec
}

// NewLSTM builds an LSTM layer.
func NewLSTM(name string, in, hidden int, codec numerics.Codec) *LSTM {
	if in <= 0 || hidden <= 0 {
		panic(fmt.Sprintf("nn: invalid LSTM geometry in=%d hidden=%d", in, hidden))
	}
	return &LSTM{
		name: name, In: in, Hidden: hidden,
		Gates: NewDense(name+"/gates", in+hidden, 4*hidden, codec),
		codec: codec,
	}
}

// InitRandom fills the gate weights.
func (l *LSTM) InitRandom(rng *rand.Rand, stddev float32) *LSTM {
	l.Gates.InitRandom(rng, stddev)
	// Positive forget-gate bias, the standard initialization, keeps cell
	// state dynamics stable for random weights.
	for h := 0; h < l.Hidden; h++ {
		l.Gates.B.Set(1, l.Hidden+h)
	}
	return l
}

// children implements container.
func (l *LSTM) children() []Layer { return []Layer{l.Gates} }

// Name implements Layer.
func (l *LSTM) Name() string { return l.name }

// Forward implements Layer. x is (seq, In); the result is (1, Hidden).
func (l *LSTM) Forward(x *tensor.Tensor, ctx *Context) *tensor.Tensor {
	if x.Rank() != 2 || x.Dim(1) != l.In {
		panic(fmt.Sprintf("nn: %s expects (seq,%d), got %v", l.name, l.In, x.Shape()))
	}
	seq := x.Dim(0)
	h := tensor.New(1, l.Hidden)
	c := make([]float32, l.Hidden)
	concat := tensor.New(1, l.In+l.Hidden)
	for t := 0; t < seq; t++ {
		for i := 0; i < l.In; i++ {
			concat.Set(x.At(t, i), 0, i)
		}
		for i := 0; i < l.Hidden; i++ {
			concat.Set(h.At(0, i), 0, l.In+i)
		}
		gates := l.Gates.Forward(concat, ctx) // (1, 4*Hidden)
		for i := 0; i < l.Hidden; i++ {
			ig := sigmoid(gates.At(0, i))
			fg := sigmoid(gates.At(0, l.Hidden+i))
			gg := float32(math.Tanh(float64(gates.At(0, 2*l.Hidden+i))))
			og := sigmoid(gates.At(0, 3*l.Hidden+i))
			c[i] = l.codec.Round(fg*c[i] + ig*gg)
			h.Set(l.codec.Round(og*float32(math.Tanh(float64(c[i])))), 0, i)
		}
	}
	return h
}

package nn

import (
	"math"
	"math/rand"
	"testing"

	"fidelity/internal/numerics"
	"fidelity/internal/tensor"
)

func TestDenseKnownValues(t *testing.T) {
	l := NewDense("d", 2, 3, fp32Codec())
	// W = [[1,2,3],[4,5,6]], B = [0.5, 0, -0.5], x = [1, 1]
	for i, v := range []float32{1, 2, 3, 4, 5, 6} {
		l.W.Data()[i] = v
	}
	l.B.Data()[0], l.B.Data()[2] = 0.5, -0.5
	x := tensor.FromSlice([]float32{1, 1}, 1, 2)
	y := l.Forward(x, nil)
	want := []float32{5.5, 7, 8.5}
	for i, w := range want {
		if y.At(0, i) != w {
			t.Errorf("dense[%d] = %v, want %v", i, y.At(0, i), w)
		}
	}
}

func TestDenseFlattensHighRankInput(t *testing.T) {
	l := NewDense("d", 8, 2, fp32Codec())
	rng := rand.New(rand.NewSource(1))
	l.InitRandom(rng, 1)
	x := tensor.New(2, 2, 2, 2) // batch 2, 8 features
	x.RandNormal(rng, 1)
	y := l.Forward(x, nil)
	if y.Dim(0) != 2 || y.Dim(1) != 2 {
		t.Fatalf("shape = %v", y.Shape())
	}
}

func TestDenseMatchesMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := NewDense("d", 5, 4, fp32Codec()).InitRandom(rng, 1)
	l.B.Fill(0)
	x := tensor.New(3, 5)
	x.RandNormal(rng, 1)
	y := l.Forward(x, nil)
	ref := tensor.MatMul(x, l.W)
	if diffs := y.DiffIndices(ref, 1e-4); len(diffs) != 0 {
		t.Fatalf("dense disagrees with matmul at %d positions", len(diffs))
	}
}

func TestDenseComputeNeuronOverride(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	l := NewDense("d", 6, 5, fp32Codec()).InitRandom(rng, 1)
	x := tensor.New(2, 6)
	x.RandNormal(rng, 1)
	op := &Operands{In: x, W: l.W, B: l.B, Out: tensor.New(2, 5)}

	// Weight override: Table II says neuron o in every batch is affected.
	flat := l.W.Offset(3, 2)
	ov := &Override{Kind: OperandWeight, Flat: flat, Value: -7}
	w2 := l.W.Clone()
	w2.Data()[flat] = -7
	l2 := NewDense("d", 6, 5, fp32Codec())
	l2.W, l2.B = w2, l.B
	ref := l2.Forward(x, nil)

	affected := l.NeuronsUsingOperand(op, OperandWeight, flat)
	if len(affected) != 2 { // one per batch
		t.Fatalf("weight reuse set = %d, want 2", len(affected))
	}
	for _, idx := range affected {
		if idx[1] != 2 {
			t.Fatalf("weight W[3,2] should affect output neuron 2, got %v", idx)
		}
		got := l.ComputeNeuron(op, idx, ov)
		if math.Abs(float64(got-ref.At(idx...))) > 1e-4 {
			t.Fatalf("override mismatch at %v: %v vs %v", idx, got, ref.At(idx...))
		}
	}

	// Input override: all output neurons of that batch are affected.
	inFlat := x.Offset(1, 4)
	inSet := l.NeuronsUsingOperand(op, OperandInput, inFlat)
	if len(inSet) != 5 {
		t.Fatalf("input reuse set = %d, want 5", len(inSet))
	}
	for _, idx := range inSet {
		if idx[0] != 1 {
			t.Fatalf("input of batch 1 should only affect batch 1, got %v", idx)
		}
	}

	// Bias override affects neuron `flat` in every batch.
	bSet := l.NeuronsUsingOperand(op, OperandBias, 3)
	if len(bSet) != 2 || bSet[0][1] != 3 {
		t.Fatalf("bias reuse set = %v", bSet)
	}

	// Output override is the neuron itself.
	oSet := l.NeuronsUsingOperand(op, OperandOutput, 7)
	if len(oSet) != 1 {
		t.Fatalf("output reuse set = %v", oSet)
	}
}

func TestDenseQuantizedPath(t *testing.T) {
	codec := numerics.MustCodec(numerics.INT8, 8)
	l := NewDense("d", 4, 2, codec)
	rng := rand.New(rand.NewSource(4))
	l.InitRandom(rng, 0.5)
	x := tensor.New(1, 4)
	x.RandNormal(rng, 1)
	y := l.Forward(x, nil)
	// Outputs must be representable in the codec.
	for _, v := range y.Data() {
		if codec.Round(v) != v {
			t.Errorf("quantized output %v is not representable", v)
		}
	}
}

func TestDenseValidation(t *testing.T) {
	l := NewDense("d", 4, 2, fp32Codec())
	defer func() {
		if recover() == nil {
			t.Error("wrong feature count should panic")
		}
	}()
	l.Forward(tensor.New(1, 5), nil)
}

func TestMatMulSiteKnown(t *testing.T) {
	m := NewMatMulSite("mm", false, 0, fp32Codec())
	a := tensor.FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := tensor.FromSlice([]float32{5, 6, 7, 8}, 2, 2)
	y := m.Run(a, b, nil)
	want := []float32{19, 22, 43, 50}
	for i, w := range want {
		if y.Data()[i] != w {
			t.Errorf("matmul[%d] = %v, want %v", i, y.Data()[i], w)
		}
	}
}

func TestMatMulSiteTransposeAndScale(t *testing.T) {
	m := NewMatMulSite("mm", true, 0.5, fp32Codec())
	a := tensor.FromSlice([]float32{1, 2}, 1, 2)
	b := tensor.FromSlice([]float32{3, 4, 5, 6}, 2, 2) // interpreted as (n=2, k=2)
	y := m.Run(a, b, nil)
	// Row 0 of b = [3,4]: dot = 11; row 1 = [5,6]: dot = 17. Scaled by 0.5.
	if y.At(0, 0) != 5.5 || y.At(0, 1) != 8.5 {
		t.Errorf("transposed matmul = %v", y.Data())
	}
}

func TestMatMulSiteReuseSets(t *testing.T) {
	m := NewMatMulSite("mm", false, 0, fp32Codec())
	a := tensor.New(3, 4)
	b := tensor.New(4, 5)
	out := tensor.New(3, 5)
	op := &Operands{In: a, W: b, Out: out}
	// A[1,2] affects the whole output row 1.
	set := m.NeuronsUsingOperand(op, OperandInput, a.Offset(1, 2))
	if len(set) != 5 {
		t.Fatalf("input reuse = %d, want 5", len(set))
	}
	for _, idx := range set {
		if idx[0] != 1 {
			t.Fatalf("input reuse should stay in row 1: %v", idx)
		}
	}
	// B[2,3] affects the whole output column 3.
	set = m.NeuronsUsingOperand(op, OperandWeight, b.Offset(2, 3))
	if len(set) != 3 {
		t.Fatalf("weight reuse = %d, want 3", len(set))
	}
	for _, idx := range set {
		if idx[1] != 3 {
			t.Fatalf("weight reuse should stay in column 3: %v", idx)
		}
	}
}

func TestMatMulSiteForwardPanics(t *testing.T) {
	m := NewMatMulSite("mm", false, 0, fp32Codec())
	defer func() {
		if recover() == nil {
			t.Error("Forward on MatMulSite should panic")
		}
	}()
	m.Forward(tensor.New(1, 1), nil)
}

func TestMatMulSiteOverride(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := NewMatMulSite("mm", false, 0, fp32Codec())
	a, b := tensor.New(3, 4), tensor.New(4, 3)
	a.RandNormal(rng, 1)
	b.RandNormal(rng, 1)
	out := m.Run(a, b, nil)
	op := &Operands{In: a, W: b, Out: out}
	flat := b.Offset(2, 1)
	b2 := b.Clone()
	b2.Data()[flat] = 9
	ref := m.Run(a, b2, nil)
	ov := &Override{Kind: OperandWeight, Flat: flat, Value: 9}
	for _, idx := range m.NeuronsUsingOperand(op, OperandWeight, flat) {
		got := m.ComputeNeuron(op, idx, ov)
		if math.Abs(float64(got-ref.At(idx...))) > 1e-4 {
			t.Fatalf("override mismatch at %v", idx)
		}
	}
}

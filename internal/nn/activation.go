package nn

import (
	"fmt"
	"math"

	"fidelity/internal/numerics"
	"fidelity/internal/tensor"
)

// Activation applies an elementwise function and rounds the result through
// the datapath codec (activations pass through SDP registers in NVDLA).
type Activation struct {
	name  string
	f     func(float32) float32
	codec numerics.Codec
}

// Name implements Layer.
func (l *Activation) Name() string { return l.name }

// Forward implements Layer.
func (l *Activation) Forward(x *tensor.Tensor, ctx *Context) *tensor.Tensor {
	return ctx.exec(l, func() *tensor.Tensor {
		out := ctx.newTensor(x.Shape()...)
		od, xd := out.Data(), x.Data()
		for i, v := range xd {
			od[i] = l.codec.Round(l.f(v))
		}
		return out
	}, nil, x)
}

// NewReLU builds a rectified linear activation. ReLU is the dominant masking
// mechanism for negative-going faulty neurons in CNNs.
func NewReLU(name string, codec numerics.Codec) *Activation {
	return &Activation{name: name, codec: codec, f: func(v float32) float32 {
		if v > 0 {
			return v
		}
		return 0
	}}
}

// NewLeakyReLU builds a leaky rectifier (used in Yolo backbones).
func NewLeakyReLU(name string, alpha float32, codec numerics.Codec) *Activation {
	return &Activation{name: name, codec: codec, f: func(v float32) float32 {
		if v > 0 {
			return v
		}
		return alpha * v
	}}
}

// NewSigmoid builds a logistic activation (Yolo heads, LSTM gates).
func NewSigmoid(name string, codec numerics.Codec) *Activation {
	return &Activation{name: name, codec: codec, f: sigmoid}
}

// NewTanh builds a hyperbolic-tangent activation (LSTM cells).
func NewTanh(name string, codec numerics.Codec) *Activation {
	return &Activation{name: name, codec: codec, f: func(v float32) float32 {
		return float32(math.Tanh(float64(v)))
	}}
}

// NewRelu6 builds the clipped rectifier used by MobileNet.
func NewRelu6(name string, codec numerics.Codec) *Activation {
	return &Activation{name: name, codec: codec, f: func(v float32) float32 {
		switch {
		case v < 0:
			return 0
		case v > 6:
			return 6
		default:
			return v
		}
	}}
}

// NewClamp builds a symmetric value-bounding activation: outputs are clamped
// to [-bound, bound]. This is the hardware-software co-design mitigation the
// paper's Architectural Insights propose from Key Result 5: large faulty-
// neuron perturbations dominate application failures, so bounding neuron
// values (cheaply, in the write-back path) suppresses exactly the dangerous
// faults while leaving in-range activations untouched.
func NewClamp(name string, bound float32, codec numerics.Codec) *Activation {
	if bound <= 0 {
		panic(fmt.Sprintf("nn: clamp bound must be positive, got %v", bound))
	}
	return &Activation{name: name, codec: codec, f: func(v float32) float32 {
		switch {
		case v > bound:
			return bound
		case v < -bound:
			return -bound
		default:
			return v
		}
	}}
}

func sigmoid(v float32) float32 {
	return float32(1 / (1 + math.Exp(-float64(v))))
}

// SoftmaxLayer applies a softmax along the last dimension.
type SoftmaxLayer struct {
	name string
}

// NewSoftmax builds a softmax layer.
func NewSoftmax(name string) *SoftmaxLayer { return &SoftmaxLayer{name: name} }

// Name implements Layer.
func (l *SoftmaxLayer) Name() string { return l.name }

// Forward implements Layer.
func (l *SoftmaxLayer) Forward(x *tensor.Tensor, ctx *Context) *tensor.Tensor {
	return ctx.exec(l, func() *tensor.Tensor {
		return tensor.Softmax(x)
	}, nil, x)
}

package nn

import (
	"math"
	"math/rand"
	"testing"

	"fidelity/internal/numerics"
	"fidelity/internal/tensor"
)

func fp32Codec() numerics.Codec { return numerics.MustCodec(numerics.FP32, 0) }

func TestConv2DIdentityKernel(t *testing.T) {
	l := NewConv2D("c", 1, 1, 1, 1, 1, 0, fp32Codec())
	l.W.Set(1, 0, 0, 0, 0)
	x := tensor.FromSlice([]float32{1, 2, 3, 4}, 1, 2, 2, 1)
	y := l.Forward(x, nil)
	if !y.Equal(x) {
		t.Errorf("1x1 identity conv changed input: %v", y)
	}
}

func TestConv2DKnownValues(t *testing.T) {
	// 3x3 box filter over a 3x3 all-ones image, no padding: single output = 9.
	l := NewConv2D("c", 3, 3, 1, 1, 1, 0, fp32Codec())
	l.W.Fill(1)
	x := tensor.New(1, 3, 3, 1)
	x.Fill(1)
	y := l.Forward(x, nil)
	if y.Size() != 1 || y.At(0, 0, 0, 0) != 9 {
		t.Errorf("box filter = %v", y)
	}
}

func TestConv2DPaddingAndStride(t *testing.T) {
	l := NewConv2D("c", 3, 3, 1, 2, 2, 1, fp32Codec())
	x := tensor.New(1, 5, 5, 1)
	os := l.OutputShape(x.Shape())
	want := []int{1, 3, 3, 2}
	for i := range want {
		if os[i] != want[i] {
			t.Fatalf("OutputShape = %v, want %v", os, want)
		}
	}
	rng := rand.New(rand.NewSource(1))
	l.InitRandom(rng, 1)
	x.RandNormal(rng, 1)
	y := l.Forward(x, nil)
	for i, d := range want {
		if y.Dim(i) != d {
			t.Fatalf("forward shape %v, want %v", y.Shape(), want)
		}
	}
}

func TestConv2DBias(t *testing.T) {
	l := NewConv2D("c", 1, 1, 1, 1, 1, 0, fp32Codec())
	l.W.Set(0, 0, 0, 0, 0)
	l.B.Set(5, 0)
	x := tensor.New(1, 2, 2, 1)
	y := l.Forward(x, nil)
	for _, v := range y.Data() {
		if v != 5 {
			t.Errorf("bias-only conv = %v, want 5", v)
		}
	}
}

// Cross-check conv against a brute-force reference over random geometries.
func TestConv2DMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		kh, kw := 1+rng.Intn(3), 1+rng.Intn(3)
		inC, outC := 1+rng.Intn(3), 1+rng.Intn(3)
		stride, pad := 1+rng.Intn(2), rng.Intn(2)
		h := kh + rng.Intn(4)
		w := kw + rng.Intn(4)
		l := NewConv2D("c", kh, kw, inC, outC, stride, pad, fp32Codec()).InitRandom(rng, 1)
		x := tensor.New(1, h, w, inC)
		x.RandNormal(rng, 1)
		y := l.Forward(x, nil)
		ref := referenceConv(x, l)
		if diffs := y.DiffIndices(ref, 1e-4); len(diffs) != 0 {
			t.Fatalf("trial %d: conv disagrees with reference at %d positions", trial, len(diffs))
		}
	}
}

// referenceConv computes convolution via explicit padding.
func referenceConv(x *tensor.Tensor, l *Conv2D) *tensor.Tensor {
	p := tensor.Pad2D(x, l.Pad)
	os := l.OutputShape(x.Shape())
	out := tensor.New(os...)
	for b := 0; b < os[0]; b++ {
		for oy := 0; oy < os[1]; oy++ {
			for ox := 0; ox < os[2]; ox++ {
				for oc := 0; oc < os[3]; oc++ {
					var acc float32
					for ky := 0; ky < l.KH; ky++ {
						for kx := 0; kx < l.KW; kx++ {
							for ic := 0; ic < l.InC; ic++ {
								acc += p.At(b, oy*l.Stride+ky, ox*l.Stride+kx, ic) * l.W.At(ky, kx, ic, oc)
							}
						}
					}
					out.Set(acc+l.B.At(oc), b, oy, ox, oc)
				}
			}
		}
	}
	return out
}

func TestDepthwiseConv(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	l := NewDepthwiseConv2D("dw", 3, 3, 4, 1, 1, fp32Codec()).InitRandom(rng, 1)
	x := tensor.New(1, 5, 5, 4)
	x.RandNormal(rng, 1)
	y := l.Forward(x, nil)
	if y.Dim(3) != 4 {
		t.Fatalf("depthwise channels = %d", y.Dim(3))
	}
	// Channel independence: zeroing channel 0 of the input must only change
	// channel 0 of the output.
	x2 := x.Clone()
	for yy := 0; yy < 5; yy++ {
		for xx := 0; xx < 5; xx++ {
			x2.Set(0, 0, yy, xx, 0)
		}
	}
	y2 := l.Forward(x2, nil)
	for _, off := range y.DiffIndices(y2, 0) {
		if idx := y.Unflatten(off); idx[3] != 0 {
			t.Fatalf("depthwise leaked across channels at %v", idx)
		}
	}
}

// ComputeNeuron with an override must equal a forward pass over a mutated
// operand tensor — the core guarantee the injection engine relies on.
func TestConvComputeNeuronOverride(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	l := NewConv2D("c", 3, 3, 2, 3, 1, 1, fp32Codec()).InitRandom(rng, 1)
	x := tensor.New(1, 4, 4, 2)
	x.RandNormal(rng, 1)
	op := &Operands{In: x, W: l.W, B: l.B}

	for _, kind := range []OperandKind{OperandInput, OperandWeight, OperandBias} {
		var target *tensor.Tensor
		switch kind {
		case OperandInput:
			target = x
		case OperandWeight:
			target = l.W
		case OperandBias:
			target = l.B
		}
		flat := rng.Intn(target.Size())
		faulty := float32(42.5)
		ov := &Override{Kind: kind, Flat: flat, Value: faulty}

		// Mutate a copy and run a full forward as reference.
		mutIn, mutL := x, l
		switch kind {
		case OperandInput:
			mutIn = x.Clone()
			mutIn.Data()[flat] = faulty
		case OperandWeight:
			mutL = NewConv2D("c", 3, 3, 2, 3, 1, 1, fp32Codec())
			mutL.W = l.W.Clone()
			mutL.W.Data()[flat] = faulty
			mutL.B = l.B
		case OperandBias:
			mutL = NewConv2D("c", 3, 3, 2, 3, 1, 1, fp32Codec())
			mutL.W = l.W
			mutL.B = l.B.Clone()
			mutL.B.Data()[flat] = faulty
		}
		ref := mutL.Forward(mutIn, nil)
		affected := l.NeuronsUsingOperand(op, kind, flat)
		if len(affected) == 0 {
			t.Fatalf("%v: no affected neurons for flat %d", kind, flat)
		}
		for _, idx := range affected {
			got := l.ComputeNeuron(op, idx, ov)
			want := ref.At(idx...)
			if math.Abs(float64(got-want)) > 1e-4 {
				t.Fatalf("%v: ComputeNeuron(%v) = %v, want %v", kind, idx, got, want)
			}
		}
	}
}

// NeuronsUsingOperand must be exactly the set of outputs that change when
// the operand element changes.
func TestConvNeuronsUsingOperandComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	l := NewConv2D("c", 3, 3, 2, 2, 2, 1, fp32Codec()).InitRandom(rng, 1)
	x := tensor.New(1, 6, 6, 2)
	x.RandNormal(rng, 1)
	golden := l.Forward(x, nil)
	op := &Operands{In: x, W: l.W, B: l.B}

	for trial := 0; trial < 20; trial++ {
		flat := rng.Intn(x.Size())
		x2 := x.Clone()
		x2.Data()[flat] += 10 // guaranteed-visible perturbation
		faulty := l.Forward(x2, nil)
		changed := map[string]bool{}
		for _, off := range golden.DiffIndices(faulty, 1e-6) {
			changed[idxKey(golden.Unflatten(off))] = true
		}
		predicted := map[string]bool{}
		for _, idx := range l.NeuronsUsingOperand(op, OperandInput, flat) {
			predicted[idxKey(idx)] = true
		}
		// Every changed neuron must be predicted (completeness).
		for k := range changed {
			if !predicted[k] {
				t.Fatalf("input %d: neuron %s changed but was not predicted", flat, k)
			}
		}
	}
}

func idxKey(idx []int) string {
	s := ""
	for _, v := range idx {
		s += string(rune('0'+v)) + ","
	}
	return s
}

func TestConvInputValidation(t *testing.T) {
	l := NewConv2D("c", 3, 3, 2, 2, 1, 0, fp32Codec())
	defer func() {
		if recover() == nil {
			t.Error("wrong channel count should panic")
		}
	}()
	l.Forward(tensor.New(1, 4, 4, 3), nil)
}

func TestConvGeometryValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad geometry should panic")
		}
	}()
	NewConv2D("c", 0, 3, 1, 1, 1, 0, fp32Codec())
}

// TestInvalidateWeightsMidCampaign guards the rounded-weight cache against
// stale reads when a campaign mutates weights between experiments (the
// sensitivity sweep perturbs FF-count estimates by rescaling W in place).
// After mutate + InvalidateWeights, Forward and ComputeNeuron must both see
// the new weights and still satisfy the MulPre(Round(a), Round(b)) == Mul(a, b)
// invariant — i.e. match a pristine layer built directly from the mutated
// weights, at a lossy precision where rounding actually bites.
func TestInvalidateWeightsMidCampaign(t *testing.T) {
	codec := numerics.MustCodec(numerics.FP16, 0)
	rng := rand.New(rand.NewSource(11))
	l := NewConv2D("c", 3, 3, 2, 3, 1, 1, codec).InitRandom(rng, 1)
	x := tensor.New(1, 5, 5, 2)
	x.RandNormal(rng, 1)

	// Populate the cache, then mutate every weight in place.
	before := l.Forward(x, nil)
	for i, v := range l.W.Data() {
		l.W.Data()[i] = v*1.25 + 0.01
	}
	l.InvalidateWeights()

	fresh := NewConv2D("c", 3, 3, 2, 3, 1, 1, codec)
	fresh.W = l.W.Clone()
	fresh.B = l.B.Clone()
	want := fresh.Forward(x, nil)
	got := l.Forward(x, nil)
	if !got.Equal(want) {
		t.Fatal("Forward after InvalidateWeights does not match a fresh layer over the mutated weights")
	}
	if got.Equal(before) {
		t.Fatal("Forward after weight mutation returned the pre-mutation output (stale cache)")
	}
	op := &Operands{In: x, W: l.W, B: l.B}
	for off := 0; off < want.Size(); off += 7 {
		idx := want.Unflatten(off)
		if cn := l.ComputeNeuron(op, idx, nil); cn != want.At(idx...) {
			t.Fatalf("ComputeNeuron(%v) = %v after InvalidateWeights, Forward says %v", idx, cn, want.At(idx...))
		}
	}

	// Same contract for Dense, which shares the cache design.
	d := NewDense("d", 8, 4, codec).InitRandom(rng, 1)
	xv := tensor.New(1, 8)
	xv.RandNormal(rng, 1)
	d.Forward(xv, nil)
	for i, v := range d.W.Data() {
		d.W.Data()[i] = v*0.75 - 0.02
	}
	d.InvalidateWeights()
	fd := NewDense("d", 8, 4, codec)
	fd.W = d.W.Clone()
	fd.B = d.B.Clone()
	dwant := fd.Forward(xv, nil)
	if !d.Forward(xv, nil).Equal(dwant) {
		t.Fatal("Dense Forward after InvalidateWeights does not match a fresh layer")
	}
	dop := &Operands{In: xv, W: d.W, B: d.B}
	for off := 0; off < dwant.Size(); off++ {
		idx := dwant.Unflatten(off)
		if cn := d.ComputeNeuron(dop, idx, nil); cn != dwant.At(idx...) {
			t.Fatalf("Dense ComputeNeuron(%v) = %v, Forward says %v", idx, cn, dwant.At(idx...))
		}
	}
}

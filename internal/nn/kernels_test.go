package nn

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"fidelity/internal/numerics"
	"fidelity/internal/tensor"
)

// kernelCodecs covers every datapath precision the zoo instantiates: both
// float widths (FP16 exercises the RoundHalf product-rounding path) and both
// quantized widths (which exercise Saturate clamping).
func kernelCodecs() []numerics.Codec {
	return []numerics.Codec{
		numerics.MustCodec(numerics.FP32, 0),
		numerics.MustCodec(numerics.FP16, 0),
		numerics.MustCodec(numerics.INT16, 8),
		numerics.MustCodec(numerics.INT8, 8),
	}
}

// runKernelModes evaluates f once per kernel configuration — reference
// loops, tiled single-threaded, and tiled with forced goroutine bands (the
// parallel path is unreachable on a single-CPU machine without the force) —
// and requires every output to be bit-identical to the reference.
func runKernelModes(t *testing.T, label string, f func() *tensor.Tensor) {
	t.Helper()
	modes := []struct {
		name    string
		ref     bool
		workers int32
	}{
		{"reference", true, 0},
		{"tiled-serial", false, 1},
		{"tiled-4-bands", false, 4},
		{"tiled-7-bands", false, 7}, // ragged band split
	}
	var want *tensor.Tensor
	for _, m := range modes {
		SetReferenceKernels(m.ref)
		forceKernelWorkers.Store(m.workers)
		got := f()
		SetReferenceKernels(false)
		forceKernelWorkers.Store(0)
		if want == nil {
			want = got
			continue
		}
		if !want.SameShape(got) {
			t.Fatalf("%s/%s: shape %v, reference %v", label, m.name, got.Shape(), want.Shape())
		}
		for i, v := range got.Data() {
			if math.Float32bits(v) != math.Float32bits(want.Data()[i]) {
				t.Fatalf("%s/%s: output[%d] = %v, reference %v", label, m.name, i, v, want.Data()[i])
			}
		}
	}
}

// TestConvKernelEquivalence sweeps convolution geometries — padded, strided,
// 1×1, depthwise, and one large enough to clear parallelMACThreshold so the
// forced goroutine bands actually engage — across every codec.
func TestConvKernelEquivalence(t *testing.T) {
	geoms := []struct {
		name                         string
		kh, kw, inC, outC, stride, p int
		h, w                         int
		depthwise                    bool
	}{
		{"3x3-pad", 3, 3, 4, 6, 1, 1, 9, 9, false},
		{"5x3-stride2", 5, 3, 3, 5, 2, 2, 11, 13, false},
		{"1x1", 1, 1, 8, 8, 1, 0, 6, 6, false},
		{"depthwise", 3, 3, 8, 8, 1, 1, 10, 10, true},
		{"large-banded", 3, 3, 16, 32, 1, 1, 24, 24, false},
		{"depthwise-banded", 3, 3, 48, 48, 1, 1, 32, 32, true},
	}
	for _, g := range geoms {
		for _, codec := range kernelCodecs() {
			label := fmt.Sprintf("conv/%s/%s", g.name, codec.Precision())
			rng := rand.New(rand.NewSource(21))
			var l *Conv2D
			if g.depthwise {
				l = NewDepthwiseConv2D("c", g.kh, g.kw, g.inC, g.stride, g.p, codec)
				l.W.RandNormal(rng, 1)
				l.B.RandNormal(rng, 0.25)
				l.InvalidateWeights()
			} else {
				l = NewConv2D("c", g.kh, g.kw, g.inC, g.outC, g.stride, g.p, codec).InitRandom(rng, 1)
			}
			x := tensor.New(2, g.h, g.w, g.inC)
			x.RandNormal(rng, 1)
			runKernelModes(t, label, func() *tensor.Tensor { return l.Forward(x, nil) })
		}
	}
}

// TestDenseKernelEquivalence covers small and band-splitting dense layers
// across every codec, including a no-bias variant.
func TestDenseKernelEquivalence(t *testing.T) {
	geoms := []struct {
		name    string
		in, out int
		batch   int
		bias    bool
	}{
		{"small", 7, 5, 1, true},
		{"no-bias", 16, 9, 3, false},
		{"large-banded", 512, 300, 1, true},
	}
	for _, g := range geoms {
		for _, codec := range kernelCodecs() {
			label := fmt.Sprintf("dense/%s/%s", g.name, codec.Precision())
			rng := rand.New(rand.NewSource(22))
			l := NewDense("d", g.in, g.out, codec).InitRandom(rng, 1)
			if !g.bias {
				l.B = nil
			}
			x := tensor.New(g.batch, g.in)
			x.RandNormal(rng, 1)
			runKernelModes(t, label, func() *tensor.Tensor { return l.Forward(x, nil) })
		}
	}
}

// TestMatMulKernelEquivalence covers plain and transposed-B matmuls with and
// without output scaling, including a product large enough to band.
func TestMatMulKernelEquivalence(t *testing.T) {
	geoms := []struct {
		name       string
		m, k, n    int
		transposeB bool
		scale      float32
	}{
		{"plain", 5, 7, 6, false, 0},
		{"transposed-scaled", 6, 8, 5, true, 0.125},
		{"large-banded", 64, 64, 64, false, 0},
		{"large-banded-T", 64, 64, 64, true, 0.5},
	}
	for _, g := range geoms {
		for _, codec := range kernelCodecs() {
			label := fmt.Sprintf("matmul/%s/%s", g.name, codec.Precision())
			rng := rand.New(rand.NewSource(23))
			site := NewMatMulSite("mm", g.transposeB, g.scale, codec)
			a := tensor.New(g.m, g.k)
			a.RandNormal(rng, 1)
			bd0, bd1 := g.k, g.n
			if g.transposeB {
				bd0, bd1 = g.n, g.k
			}
			b := tensor.New(bd0, bd1)
			b.RandNormal(rng, 1)
			runKernelModes(t, label, func() *tensor.Tensor { return site.Run(a, b, nil) })
		}
	}
}

// TestKernelTileCounting checks that every forward accounts at least one tile
// and that forced bands multiply the count — the counter feeding the
// telemetry Kernels block.
func TestKernelTileCounting(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	l := NewConv2D("c", 3, 3, 16, 32, 1, 1, numerics.MustCodec(numerics.FP16, 0)).InitRandom(rng, 1)
	x := tensor.New(1, 24, 24, 16)
	x.RandNormal(rng, 1)

	base := TileCount()
	l.Forward(x, nil)
	serial := TileCount() - base
	if serial < 1 {
		t.Fatalf("serial forward executed %d tiles, want >= 1", serial)
	}
	forceKernelWorkers.Store(4)
	defer forceKernelWorkers.Store(0)
	base = TileCount()
	l.Forward(x, nil)
	if banded := TileCount() - base; banded < 4 {
		t.Errorf("4-band forward executed %d tiles, want >= 4", banded)
	}
}

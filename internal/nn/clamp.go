package nn

import (
	"fidelity/internal/tensor"
)

// This file implements range-restriction hardening (Ranger-style activation
// clamping) inside the replay-aware forward path. A Bound installed on a
// compute site saturates every output value of that site to the profiled
// golden envelope [Lo, Hi] immediately after the site executes (and after
// any injection hook has patched the output), so a faulty value that
// escapes the envelope is bounded before it propagates downstream.
//
// Bit-exactness with the unhardened golden pass is preserved by a fixed-point
// argument: bounds are derived from golden-trace min/max profiles, so every
// golden activation already satisfies Lo <= v <= Hi and the clamp is the
// identity on clean data (golden traces never contain NaN). Only
// fault-perturbed values can saturate. The clamp is applied at
// value-equivalent points of every execution path — plain, record, replay
// skip/seed/recompute, and the dirty-region sweep — so replay on/off stays
// bit-identical for the hardened network too (DESIGN.md §11).

// Bound is a closed activation envelope for one compute site. Values below
// Lo (including NaN, which only faults can produce) saturate to Lo; values
// above Hi saturate to Hi.
type Bound struct {
	Lo, Hi float32
}

// HardenStats counts what range-restriction clamping did during forward
// passes through one Context.
type HardenStats struct {
	// ClampApplications counts site executions whose output was
	// bounds-checked.
	ClampApplications int64
	// Saturated counts individual output values forced back into the
	// envelope (zero on clean data, by the fixed-point property).
	Saturated int64
}

// clampSite saturates out to l's installed envelope, if any. It must run
// after the injection hook has patched the output and before the tensor is
// recorded, canonicalized, or diff-scanned, so every execution mode sees the
// same post-clamp values. NaN (fault-produced only: golden traces are
// NaN-free) maps deterministically to Lo.
func (c *Context) clampSite(l Layer, out *tensor.Tensor) {
	if c == nil || len(c.clamps) == 0 || out == nil {
		return
	}
	b, ok := c.clamps[l]
	if !ok {
		return
	}
	c.hstats.ClampApplications++
	data := out.Data()
	for i, v := range data {
		switch {
		case v != v:
			data[i] = b.Lo
			c.hstats.Saturated++
		case v < b.Lo:
			data[i] = b.Lo
			c.hstats.Saturated++
		case v > b.Hi:
			data[i] = b.Hi
			c.hstats.Saturated++
		}
	}
}

// HardenStats returns the clamp counters accumulated since the context was
// built (or, for a replay context, since the last SetTarget).
func (c *Context) HardenStats() HardenStats { return c.hstats }

package nn

import (
	"fmt"

	"fidelity/internal/numerics"
	"fidelity/internal/tensor"
)

// MatMulSite is a binary matrix-multiplication injection site used inside
// attention blocks: Out = A·B (or A·Bᵀ when TransposeB is set). On NVDLA a
// matmul executes on the convolution pipeline with B streamed through the
// weight port, so A maps to the "input" variable type and B to "weight" in
// the Table II MatMul fault models.
//
// MatMulSite does not implement Layer directly (it has two operands); the
// owning composite layer calls Run.
type MatMulSite struct {
	name       string
	TransposeB bool
	ScaleOut   float32 // applied to every output (e.g. 1/√d); 0 means 1
	codec      numerics.Codec
}

// NewMatMulSite builds a matmul site.
func NewMatMulSite(name string, transposeB bool, scale float32, codec numerics.Codec) *MatMulSite {
	return &MatMulSite{name: name, TransposeB: transposeB, ScaleOut: scale, codec: codec}
}

// Name implements Layer naming for site enumeration.
func (l *MatMulSite) Name() string { return l.name }

// Kind implements Site.
func (l *MatMulSite) Kind() Kind { return KindMatMul }

// Codec implements Site.
func (l *MatMulSite) Codec() numerics.Codec { return l.codec }

// Forward implements Layer so MatMulSite satisfies the Site interface, but a
// matmul needs two operands; use Run instead.
func (l *MatMulSite) Forward(x *tensor.Tensor, ctx *Context) *tensor.Tensor {
	panic("nn: MatMulSite must be executed via Run, not Forward")
}

// Run computes A·B (A: m×k; B: k×n, or n×k with TransposeB) and fires the
// injection hook with A as the input operand and B as the weight operand.
func (l *MatMulSite) Run(a, b *tensor.Tensor, ctx *Context) *tensor.Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("nn: %s requires rank-2 operands, got %v×%v", l.name, a.Shape(), b.Shape()))
	}
	m, k := a.Dim(0), a.Dim(1)
	n := b.Dim(1)
	bk := b.Dim(0)
	if l.TransposeB {
		n, bk = b.Dim(0), b.Dim(1)
	}
	if bk != k {
		panic(fmt.Sprintf("nn: %s inner dims %d vs %d", l.name, k, bk))
	}
	return ctx.exec(l, func() *tensor.Tensor {
		out := ctx.newTensor(m, n)
		op := &Operands{In: a, W: b, Out: out}

		// Fast path (bit-identical to per-neuron ComputeNeuron; see
		// Conv2D.Forward). No rounded-weight cache here: operand B is an
		// activation that changes every pass.
		ra := l.codec.RoundSlice(a.Data())
		rb := l.codec.RoundSlice(b.Data())
		if UseReferenceKernels() {
			matmulForwardRef(l, out, ra, rb, m, k, n)
		} else {
			matmulForward(&matmulArgs{
				ra: ra, rb: rb, out: out.Data(),
				m: m, k: k, n: n,
				transposeB: l.TransposeB, scaleOut: l.ScaleOut,
				fp16:  l.codec.Precision() == numerics.FP16,
				codec: l.codec,
			})
		}
		ctx.fire(l, op)
		return out
	}, func(out *tensor.Tensor) *Operands {
		return &Operands{In: a, W: b, Out: out}
	}, a, b)
}

// ComputeNeuron implements Site.
func (l *MatMulSite) ComputeNeuron(op *Operands, idx []int, ov *Override) float32 {
	i, j := idx[0], idx[1]
	a, b := op.In, op.W
	k := a.Dim(1)
	// Flat row-major indexing: the variadic accessors allocate per call and
	// this is the per-fault hot loop (see Conv2D.ComputeNeuron).
	ad, bd := a.Data(), b.Data()
	bcols := b.Dim(1)
	inFlat, wFlat := -1, -1
	if ov != nil {
		switch ov.Kind {
		case OperandInput:
			inFlat = ov.Flat
		case OperandWeight:
			wFlat = ov.Flat
		}
	}
	abase := i * k
	var acc float32
	for p := 0; p < k; p++ {
		av := ad[abase+p]
		if abase+p == inFlat {
			av = ov.Value
		}
		var woff int
		if l.TransposeB {
			woff = j*bcols + p
		} else {
			woff = p*bcols + j
		}
		wv := bd[woff]
		if woff == wFlat {
			wv = ov.Value
		}
		acc += l.codec.Mul(av, wv)
	}
	if l.ScaleOut != 0 {
		acc *= l.ScaleOut
	}
	return l.codec.Saturate(acc)
}

// NeuronsUsingOperand implements Site. Per Table II: a faulty A element
// affects all neurons in its output row; a faulty B element affects all
// neurons in its output column.
func (l *MatMulSite) NeuronsUsingOperand(op *Operands, kind OperandKind, flat int) [][]int {
	m := op.In.Dim(0)
	var n int
	if l.TransposeB {
		n = op.W.Dim(0)
	} else {
		n = op.W.Dim(1)
	}
	var out [][]int
	switch kind {
	case OperandInput:
		ai := op.In.Unflatten(flat)
		i := ai[0]
		for j := 0; j < n; j++ {
			out = append(out, []int{i, j})
		}
	case OperandWeight:
		wi := op.W.Unflatten(flat)
		j := wi[0] // column of the product
		if !l.TransposeB {
			j = wi[1]
		}
		for i := 0; i < m; i++ {
			out = append(out, []int{i, j})
		}
	case OperandOutput:
		out = append(out, op.Out.Unflatten(flat))
	}
	return out
}

package nn

// kernels.go implements the tiled compute kernels behind Conv2D, Dense and
// MatMulSite. Each kernel computes an arbitrary rectangular tile of the
// output tensor with hoisted slice bounds and flattened index math (verified
// bounds-check-free with `go build -gcflags=-d=ssa/check_bce`), so the same
// code serves three callers:
//
//   - the full forward pass (the whole output is one tile, optionally split
//     into row bands across goroutines when GOMAXPROCS allows);
//   - the replay engine's region sweep, which recomputes only the output box
//     reached by a fault's dirty input region (region.go);
//   - the kernel equivalence tests, which sweep random tiles against the
//     reference implementations below.
//
// Bit-exactness contract: for every output neuron the accumulation order over
// (ky, kx, ic) — or p for matmul, i for dense — is identical to the reference
// kernels and to Site.ComputeNeuron, and FP16 products are rounded through
// numerics.RoundHalf exactly where the reference rounds them. Tiling only
// changes which outputs are computed, never how one output is computed, so
// any tile decomposition produces bit-identical results.
//
// The reference kernels are the pre-tiling layer loops (including the
// reference FP16 rounding path). They are kept both as the oracle for the
// equivalence tests and as the honest "replay engine as of PR 4" baseline for
// BENCH_campaign.json.

import (
	"runtime"
	"sync"
	"sync/atomic"

	"fidelity/internal/numerics"
)

// referenceKernels routes layer forwards through the pre-tiling reference
// loops when set. Campaign differential tests and the benchmark baseline
// flip it; production always runs the tiled kernels.
var referenceKernels atomic.Bool

// SetReferenceKernels selects the reference (pre-tiling) layer kernels when
// on is true. Intended for differential tests and baseline benchmarks.
func SetReferenceKernels(on bool) { referenceKernels.Store(on) }

// UseReferenceKernels reports whether the reference kernels are active.
func UseReferenceKernels() bool { return referenceKernels.Load() }

// tileCount counts kernel tile executions process-wide (one full forward is
// at least one tile; goroutine bands and region sweeps add more). Telemetry
// reads it to report tiling activity.
var tileCount atomic.Int64

// TileCount returns the cumulative number of kernel tiles executed.
func TileCount() int64 { return tileCount.Load() }

// forceKernelWorkers overrides the goroutine-tiling worker count in tests, so
// the parallel band path is exercised even on single-CPU machines.
var forceKernelWorkers atomic.Int32

// kernelWorkers returns how many goroutines a kernel may fan out to.
func kernelWorkers() int {
	if w := int(forceKernelWorkers.Load()); w > 0 {
		return w
	}
	return runtime.GOMAXPROCS(0)
}

// parallelMACThreshold is the minimum per-forward MAC estimate before a
// kernel fans out to goroutine row bands; below it the spawn overhead wins.
const parallelMACThreshold = 1 << 17

// convArgs bundles the resolved geometry and pre-rounded operand buffers of
// one Conv2D forward pass. rinOff is subtracted from every flattened input
// index, letting rin be a row window rather than the full tensor (the region
// sweep rounds only the rows a tile reads).
type convArgs struct {
	rin, rw, bias, out []float32
	rinOff             int
	n, h, w, inC       int
	oh, ow, outC       int
	kh, kw, stride, pd int
	depthwise, fp16    bool
	codec              numerics.Codec
}

// convTile computes output rows [oy0,oy1) × columns [ox0,ox1) of batch bi,
// all output channels, accumulating each neuron in (ky, kx, ic) order. accs
// must hold at least outC elements and is scratch owned by the caller (one
// per goroutine band).
func convTile(a *convArgs, bi, oy0, oy1, ox0, ox1 int, accs []float32) {
	tileCount.Add(1)
	rin, rw, out := a.rin, a.rw, a.out
	inC, outC := a.inC, a.outC
	kh, kw, stride, pd := a.kh, a.kw, a.stride, a.pd
	h, w := a.h, a.w
	accs = accs[:outC]
	var bias []float32
	if a.bias != nil {
		bias = a.bias[:outC]
	}
	for oy := oy0; oy < oy1; oy++ {
		// Clip the kernel row range so iy = oy*stride + ky - pd stays inside
		// [0, h); the reference kernel skips the same iterations one by one.
		kyLo, kyHi := 0, kh
		if iy := oy*stride - pd; iy < 0 {
			kyLo = -iy
		}
		if over := oy*stride - pd + kh - h; over > 0 {
			kyHi = kh - over
		}
		for ox := ox0; ox < ox1; ox++ {
			kxLo, kxHi := 0, kw
			if ix := ox*stride - pd; ix < 0 {
				kxLo = -ix
			}
			if over := ox*stride - pd + kw - w; over > 0 {
				kxHi = kw - over
			}
			for c := range accs {
				accs[c] = 0
			}
			for ky := kyLo; ky < kyHi; ky++ {
				iy := oy*stride + ky - pd
				rowBase := ((bi*h+iy)*w)*inC - a.rinOff
				if a.depthwise {
					for kx := kxLo; kx < kxHi; kx++ {
						ix := ox*stride + kx - pd
						inBase := rowBase + ix*inC
						wBase := (ky*kw + kx) * inC
						wrow := rw[wBase : wBase+inC]
						// Pin irow/ac to wrow's length so the inner loop is
						// bounds-check free (outC == inC for depthwise).
						irow := rin[inBase : inBase+inC][:len(wrow)]
						ac := accs[:len(wrow)]
						if a.fp16 {
							for c, wv := range wrow {
								ac[c] += numerics.RoundHalf(irow[c] * wv)
							}
						} else {
							for c, wv := range wrow {
								ac[c] += irow[c] * wv
							}
						}
					}
					continue
				}
				for kx := kxLo; kx < kxHi; kx++ {
					ix := ox*stride + kx - pd
					inBase := rowBase + ix*inC
					irow := rin[inBase : inBase+inC]
					wBase := (ky*kw + kx) * inC * outC
					if a.fp16 {
						for ic, av := range irow {
							wo := wBase + ic*outC
							wrow := rw[wo : wo+outC]
							for c, wv := range wrow {
								accs[c] += numerics.RoundHalf(av * wv)
							}
						}
					} else {
						for ic, av := range irow {
							wo := wBase + ic*outC
							wrow := rw[wo : wo+outC]
							for c, wv := range wrow {
								accs[c] += av * wv
							}
						}
					}
				}
			}
			outBase := ((bi*a.oh+oy)*a.ow + ox) * outC
			orow := out[outBase : outBase+outC]
			if bias != nil {
				for c := range orow {
					orow[c] = a.codec.Saturate(accs[c] + bias[c])
				}
			} else {
				for c := range orow {
					orow[c] = a.codec.Saturate(accs[c])
				}
			}
		}
	}
}

// convForward runs the tiled convolution over the whole output, splitting the
// output rows of each batch image into goroutine bands when the machine and
// the layer are big enough. Bands write disjoint output rows and accumulate
// independently, so the split cannot change any output bit.
func convForward(a *convArgs) {
	workers := kernelWorkers()
	macs := a.oh * a.ow * a.outC * a.kh * a.kw
	if !a.depthwise {
		macs *= a.inC
	}
	if workers > a.oh {
		workers = a.oh
	}
	if workers <= 1 || macs < parallelMACThreshold {
		accs := make([]float32, a.outC)
		for bi := 0; bi < a.n; bi++ {
			convTile(a, bi, 0, a.oh, 0, a.ow, accs)
		}
		return
	}
	var wg sync.WaitGroup
	band := (a.oh + workers - 1) / workers
	for g := 0; g < workers; g++ {
		oy0 := g * band
		oy1 := oy0 + band
		if oy1 > a.oh {
			oy1 = a.oh
		}
		if oy0 >= oy1 {
			break
		}
		wg.Add(1)
		go func(oy0, oy1 int) {
			defer wg.Done()
			accs := make([]float32, a.outC)
			for bi := 0; bi < a.n; bi++ {
				convTile(a, bi, oy0, oy1, 0, a.ow, accs)
			}
		}(oy0, oy1)
	}
	wg.Wait()
}

// denseArgs bundles one Dense forward pass for the tiled kernel.
type denseArgs struct {
	rin, rw, bias, out []float32
	batch, in, outN    int
	fp16               bool
	codec              numerics.Codec
}

// denseTile computes output rows [b0,b1) × columns [o0,o1), accumulating each
// neuron over the input features in ascending order. The out buffer must be
// zeroed over the tile (accumulation happens in place, as in the reference).
func denseTile(a *denseArgs, b0, b1, o0, o1 int) {
	tileCount.Add(1)
	rin, rw, out := a.rin, a.rw, a.out
	in, outN := a.in, a.outN
	for b := b0; b < b1; b++ {
		orow := out[b*outN+o0 : b*outN+o1]
		irow := rin[b*in : (b+1)*in]
		if a.fp16 {
			for i, av := range irow {
				wrow := rw[i*outN+o0 : i*outN+o1][:len(orow)]
				for o, wv := range wrow {
					orow[o] += numerics.RoundHalf(av * wv)
				}
			}
		} else {
			for i, av := range irow {
				wrow := rw[i*outN+o0 : i*outN+o1][:len(orow)]
				for o, wv := range wrow {
					orow[o] += av * wv
				}
			}
		}
		if a.bias != nil {
			bias := a.bias[o0:o1]
			for o := range orow {
				orow[o] = a.codec.Saturate(orow[o] + bias[o])
			}
		} else {
			for o := range orow {
				orow[o] = a.codec.Saturate(orow[o])
			}
		}
	}
}

// denseForward runs the tiled dense kernel, splitting output columns across
// goroutines for large layers (columns, not rows: inference batch is 1).
func denseForward(a *denseArgs) {
	workers := kernelWorkers()
	if workers > a.outN {
		workers = a.outN
	}
	if workers <= 1 || a.batch*a.in*a.outN < parallelMACThreshold {
		denseTile(a, 0, a.batch, 0, a.outN)
		return
	}
	var wg sync.WaitGroup
	band := (a.outN + workers - 1) / workers
	for g := 0; g < workers; g++ {
		o0 := g * band
		o1 := o0 + band
		if o1 > a.outN {
			o1 = a.outN
		}
		if o0 >= o1 {
			break
		}
		wg.Add(1)
		go func(o0, o1 int) {
			defer wg.Done()
			denseTile(a, 0, a.batch, o0, o1)
		}(o0, o1)
	}
	wg.Wait()
}

// matmulArgs bundles one MatMulSite execution for the tiled kernel.
type matmulArgs struct {
	ra, rb, out []float32
	m, k, n     int
	transposeB  bool
	scaleOut    float32
	fp16        bool
	codec       numerics.Codec
}

// matmulTile computes output rows [i0,i1) × columns [j0,j1), accumulating
// each neuron over p in ascending order. With TransposeB both operand rows
// are contiguous, so the kernel runs j outer / p inner as a dot product —
// same per-output order, far better locality than the reference's strided
// column walk. The out buffer must be zeroed over the tile.
func matmulTile(a *matmulArgs, i0, i1, j0, j1 int) {
	tileCount.Add(1)
	ra, rb, out := a.ra, a.rb, a.out
	k, n := a.k, a.n
	for i := i0; i < i1; i++ {
		arow := ra[i*k : (i+1)*k]
		orow := out[i*n+j0 : i*n+j1]
		if a.transposeB {
			for j := range orow {
				brow := rb[(j0+j)*k : (j0+j+1)*k][:len(arow)]
				acc := orow[j]
				if a.fp16 {
					for p, av := range arow {
						acc += numerics.RoundHalf(av * brow[p])
					}
				} else {
					for p, av := range arow {
						acc += av * brow[p]
					}
				}
				orow[j] = acc
			}
		} else {
			if a.fp16 {
				for p, av := range arow {
					brow := rb[p*n+j0 : p*n+j1][:len(orow)]
					for j, wv := range brow {
						orow[j] += numerics.RoundHalf(av * wv)
					}
				}
			} else {
				for p, av := range arow {
					brow := rb[p*n+j0 : p*n+j1][:len(orow)]
					for j, wv := range brow {
						orow[j] += av * wv
					}
				}
			}
		}
		for j := range orow {
			acc := orow[j]
			if a.scaleOut != 0 {
				acc *= a.scaleOut
			}
			orow[j] = a.codec.Saturate(acc)
		}
	}
}

// matmulForward runs the tiled matmul kernel, splitting output rows across
// goroutines for large products.
func matmulForward(a *matmulArgs) {
	workers := kernelWorkers()
	if workers > a.m {
		workers = a.m
	}
	if workers <= 1 || a.m*a.k*a.n < parallelMACThreshold {
		matmulTile(a, 0, a.m, 0, a.n)
		return
	}
	var wg sync.WaitGroup
	band := (a.m + workers - 1) / workers
	for g := 0; g < workers; g++ {
		i0 := g * band
		i1 := i0 + band
		if i1 > a.m {
			i1 = a.m
		}
		if i0 >= i1 {
			break
		}
		wg.Add(1)
		go func(i0, i1 int) {
			defer wg.Done()
			matmulTile(a, i0, i1, 0, a.n)
		}(i0, i1)
	}
	wg.Wait()
}

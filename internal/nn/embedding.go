package nn

import (
	"fmt"
	"math/rand"

	"fidelity/internal/tensor"
)

// Embedding maps a (seq, 1) tensor of token IDs to (seq, dim) vectors by
// table lookup. It is not an injection site: in NVDLA-class accelerators
// embedding lookups execute as memory gathers, not MAC-pipeline work.
type Embedding struct {
	name  string
	Vocab int
	Dim   int
	Table *tensor.Tensor // (Vocab, Dim)
}

// NewEmbedding builds a zero-initialized embedding table.
func NewEmbedding(name string, vocab, dim int) *Embedding {
	if vocab <= 0 || dim <= 0 {
		panic(fmt.Sprintf("nn: invalid embedding %dx%d", vocab, dim))
	}
	return &Embedding{name: name, Vocab: vocab, Dim: dim, Table: tensor.New(vocab, dim)}
}

// InitRandom fills the table with N(0, stddev²).
func (l *Embedding) InitRandom(rng *rand.Rand, stddev float32) *Embedding {
	l.Table.RandNormal(rng, stddev)
	return l
}

// Name implements Layer.
func (l *Embedding) Name() string { return l.name }

// Forward implements Layer. Token IDs are clamped into the vocabulary.
func (l *Embedding) Forward(x *tensor.Tensor, ctx *Context) *tensor.Tensor {
	if x.Rank() != 2 || x.Dim(1) != 1 {
		panic(fmt.Sprintf("nn: %s expects (seq,1) token IDs, got %v", l.name, x.Shape()))
	}
	seq := x.Dim(0)
	return ctx.exec(l, func() *tensor.Tensor {
		out := ctx.newTensor(seq, l.Dim)
		for s := 0; s < seq; s++ {
			tok := int(x.At(s, 0))
			if tok < 0 {
				tok = 0
			}
			if tok >= l.Vocab {
				tok = l.Vocab - 1
			}
			for d := 0; d < l.Dim; d++ {
				out.Set(l.Table.At(tok, d), s, d)
			}
		}
		return out
	}, nil, x)
}

package nn

import (
	"math"
	"math/rand"
	"testing"

	"fidelity/internal/numerics"
	"fidelity/internal/tensor"
)

func TestActivations(t *testing.T) {
	c := fp32Codec()
	x := tensor.FromSlice([]float32{-2, -0.5, 0, 0.5, 2, 8}, 6)

	relu := NewReLU("r", c).Forward(x, nil)
	wantRelu := []float32{0, 0, 0, 0.5, 2, 8}
	for i, w := range wantRelu {
		if relu.At(i) != w {
			t.Errorf("relu[%d] = %v, want %v", i, relu.At(i), w)
		}
	}

	leaky := NewLeakyReLU("l", 0.1, c).Forward(x, nil)
	if leaky.At(0) != -0.2 || leaky.At(4) != 2 {
		t.Errorf("leaky = %v", leaky.Data())
	}

	r6 := NewRelu6("r6", c).Forward(x, nil)
	if r6.At(5) != 6 || r6.At(0) != 0 || r6.At(4) != 2 {
		t.Errorf("relu6 = %v", r6.Data())
	}

	sig := NewSigmoid("s", c).Forward(x, nil)
	if math.Abs(float64(sig.At(2)-0.5)) > 1e-6 {
		t.Errorf("sigmoid(0) = %v", sig.At(2))
	}
	if sig.At(0) >= sig.At(4) {
		t.Error("sigmoid not monotone")
	}

	tanh := NewTanh("t", c).Forward(x, nil)
	if tanh.At(2) != 0 || tanh.At(4) <= 0 || tanh.At(0) >= 0 {
		t.Errorf("tanh = %v", tanh.Data())
	}
}

func TestSoftmaxLayer(t *testing.T) {
	s := NewSoftmax("sm")
	y := s.Forward(tensor.FromSlice([]float32{0, 1, 2}, 1, 3), nil)
	var sum float32
	for _, v := range y.Data() {
		sum += v
	}
	if math.Abs(float64(sum-1)) > 1e-5 {
		t.Errorf("softmax sums to %v", sum)
	}
}

func TestMaxPool(t *testing.T) {
	x := tensor.FromSlice([]float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 4, 4, 1)
	y := NewMaxPool("p", 2, 2).Forward(x, nil)
	want := []float32{6, 8, 14, 16}
	for i, w := range want {
		if y.Data()[i] != w {
			t.Errorf("maxpool[%d] = %v, want %v", i, y.Data()[i], w)
		}
	}
}

// Max pooling masks non-maximal perturbations — the masking property the
// paper's outcome statistics depend on.
func TestMaxPoolMasksSmallFaults(t *testing.T) {
	x := tensor.New(1, 2, 2, 1)
	x.Set(10, 0, 0, 0, 0)
	x.Set(1, 0, 0, 1, 0)
	p := NewMaxPool("p", 2, 2)
	golden := p.Forward(x, nil)
	x.Set(5, 0, 0, 1, 0) // fault below the max: masked
	if !p.Forward(x, nil).Equal(golden) {
		t.Error("sub-max fault should be masked by max pooling")
	}
	x.Set(50, 0, 0, 1, 0) // fault above the max: propagates
	if p.Forward(x, nil).Equal(golden) {
		t.Error("super-max fault should propagate")
	}
}

func TestAvgPoolAndGlobal(t *testing.T) {
	c := fp32Codec()
	x := tensor.FromSlice([]float32{1, 2, 3, 4}, 1, 2, 2, 1)
	y := NewAvgPool("a", 2, 2, c).Forward(x, nil)
	if y.At(0, 0, 0, 0) != 2.5 {
		t.Errorf("avgpool = %v", y.Data())
	}
	g := NewGlobalAvgPool("g", c).Forward(x, nil)
	if g.At(0, 0) != 2.5 {
		t.Errorf("global avgpool = %v", g.Data())
	}
}

func TestResidualIdentity(t *testing.T) {
	c := fp32Codec()
	l := NewConv2D("c", 1, 1, 1, 1, 1, 0, c)
	l.W.Set(2, 0, 0, 0, 0) // doubles input
	r := NewResidual("res", l, nil, c)
	x := tensor.FromSlice([]float32{1, 3}, 1, 1, 2, 1)
	y := r.Forward(x, nil)
	if y.At(0, 0, 0, 0) != 3 || y.At(0, 0, 1, 0) != 9 {
		t.Errorf("residual = %v", y.Data())
	}
}

func TestResidualProjectionShortcut(t *testing.T) {
	c := fp32Codec()
	rng := rand.New(rand.NewSource(1))
	body := NewConv2D("b", 1, 1, 2, 4, 1, 0, c).InitRandom(rng, 1)
	short := NewConv2D("s", 1, 1, 2, 4, 1, 0, c).InitRandom(rng, 1)
	r := NewResidual("res", body, short, c)
	x := tensor.New(1, 2, 2, 2)
	x.RandNormal(rng, 1)
	y := r.Forward(x, nil)
	ref := tensor.Add(body.Forward(x, nil), short.Forward(x, nil))
	if diffs := y.DiffIndices(ref, 1e-5); len(diffs) != 0 {
		t.Error("projection residual mismatch")
	}
}

func TestBranchesConcat(t *testing.T) {
	c := fp32Codec()
	rng := rand.New(rand.NewSource(2))
	p1 := NewConv2D("p1", 1, 1, 2, 3, 1, 0, c).InitRandom(rng, 1)
	p2 := NewConv2D("p2", 1, 1, 2, 5, 1, 0, c).InitRandom(rng, 1)
	br := NewBranches("inc", 3, p1, p2)
	x := tensor.New(1, 2, 2, 2)
	x.RandNormal(rng, 1)
	y := br.Forward(x, nil)
	if y.Dim(3) != 8 {
		t.Fatalf("concat channels = %d, want 8", y.Dim(3))
	}
}

func TestBatchNorm(t *testing.T) {
	c := fp32Codec()
	bn := NewBatchNorm("bn", 2, c)
	bn.Scale.Set(2, 0)
	bn.Shift.Set(1, 1)
	x := tensor.FromSlice([]float32{3, 4}, 1, 1, 1, 2)
	y := bn.Forward(x, nil)
	if y.At(0, 0, 0, 0) != 6 || y.At(0, 0, 0, 1) != 5 {
		t.Errorf("batchnorm = %v", y.Data())
	}
}

func TestLayerNorm(t *testing.T) {
	ln := NewLayerNorm("ln", 4)
	x := tensor.FromSlice([]float32{1, 2, 3, 4}, 1, 4)
	y := ln.Forward(x, nil)
	var mean, variance float64
	for _, v := range y.Data() {
		mean += float64(v)
	}
	mean /= 4
	for _, v := range y.Data() {
		variance += (float64(v) - mean) * (float64(v) - mean)
	}
	variance /= 4
	if math.Abs(mean) > 1e-4 || math.Abs(variance-1) > 1e-2 {
		t.Errorf("layernorm mean=%v var=%v", mean, variance)
	}
}

func TestFlatten(t *testing.T) {
	f := NewFlatten("f")
	y := f.Forward(tensor.New(2, 3, 4), nil)
	if y.Dim(0) != 2 || y.Dim(1) != 12 {
		t.Errorf("flatten = %v", y.Shape())
	}
}

func TestSequentialComposition(t *testing.T) {
	c := fp32Codec()
	rng := rand.New(rand.NewSource(3))
	conv := NewConv2D("c", 3, 3, 1, 2, 1, 1, c).InitRandom(rng, 1)
	seq := NewSequential("net", conv, NewReLU("r", c), NewMaxPool("p", 2, 2))
	x := tensor.New(1, 4, 4, 1)
	x.RandNormal(rng, 1)
	y := seq.Forward(x, nil)
	if y.Dim(1) != 2 || y.Dim(2) != 2 || y.Dim(3) != 2 {
		t.Fatalf("sequential shape = %v", y.Shape())
	}
	for _, v := range y.Data() {
		if v < 0 {
			t.Error("relu output must be non-negative")
		}
	}
}

func TestMultiHeadAttention(t *testing.T) {
	c := fp32Codec()
	rng := rand.New(rand.NewSource(4))
	mha := NewMultiHeadAttention("attn", 8, 2, c).InitRandom(rng, 0.3)
	x := tensor.New(5, 8)
	x.RandNormal(rng, 1)
	y := mha.Forward(x, nil)
	if y.Dim(0) != 5 || y.Dim(1) != 8 {
		t.Fatalf("attention shape = %v", y.Shape())
	}
	// Deterministic.
	if !mha.Forward(x, nil).Equal(y) {
		t.Error("attention must be deterministic")
	}
}

func TestAttentionSiteEnumeration(t *testing.T) {
	c := fp32Codec()
	mha := NewMultiHeadAttention("attn", 8, 2, c)
	sites := Sites(mha)
	// 4 Dense + 2 MatMul sites.
	if len(sites) != 6 {
		t.Fatalf("attention sites = %d, want 6", len(sites))
	}
	kinds := map[Kind]int{}
	for _, s := range sites {
		kinds[s.Kind()]++
	}
	if kinds[KindFC] != 4 || kinds[KindMatMul] != 2 {
		t.Errorf("site kinds = %v", kinds)
	}
}

func TestLSTMForward(t *testing.T) {
	c := fp32Codec()
	rng := rand.New(rand.NewSource(5))
	l := NewLSTM("lstm", 3, 4, c).InitRandom(rng, 0.5)
	x := tensor.New(6, 3)
	x.RandNormal(rng, 1)
	y := l.Forward(x, nil)
	if y.Dim(0) != 1 || y.Dim(1) != 4 {
		t.Fatalf("lstm shape = %v", y.Shape())
	}
	for _, v := range y.Data() {
		if v < -1 || v > 1 {
			t.Errorf("lstm hidden %v outside tanh range", v)
		}
	}
	// The gate Dense fires once per timestep.
	count := 0
	l.Forward(x, NewContext(func(site Layer, visit int, op *Operands) {
		if visit != count {
			t.Errorf("visit = %d, want %d", visit, count)
		}
		count++
	}))
	if count != 6 {
		t.Errorf("gate executions = %d, want 6", count)
	}
}

func TestHookFiresWithOperands(t *testing.T) {
	c := fp32Codec()
	rng := rand.New(rand.NewSource(6))
	conv := NewConv2D("c", 3, 3, 1, 2, 1, 1, c).InitRandom(rng, 1)
	x := tensor.New(1, 4, 4, 1)
	x.RandNormal(rng, 1)
	fired := false
	conv.Forward(x, NewContext(func(site Layer, visit int, op *Operands) {
		fired = true
		if site != Layer(conv) {
			t.Error("hook site mismatch")
		}
		if op.In != x || op.W != conv.W || op.Out == nil {
			t.Error("hook operands incomplete")
		}
		// Patch the output; the caller must observe the patch.
		op.Out.Data()[0] = 12345
	}))
	if !fired {
		t.Fatal("hook did not fire")
	}
	y := conv.Forward(x, NewContext(func(site Layer, visit int, op *Operands) {
		op.Out.Data()[0] = 12345
	}))
	if y.Data()[0] != 12345 {
		t.Error("output patch not visible to caller")
	}
}

func TestNetworkTraceAndSites(t *testing.T) {
	c := fp32Codec()
	rng := rand.New(rand.NewSource(7))
	conv := NewConv2D("conv1", 3, 3, 1, 4, 1, 1, c).InitRandom(rng, 0.5)
	fcl := NewDense("fc1", 4*4*4, 10, c).InitRandom(rng, 0.2)
	net := NewNetwork("tiny", NewSequential("tiny",
		conv, NewReLU("r1", c), NewFlatten("f"), fcl,
	), c)
	if len(net.Sites()) != 2 {
		t.Fatalf("sites = %d, want 2", len(net.Sites()))
	}
	if _, err := net.SiteByName("conv1"); err != nil {
		t.Error(err)
	}
	if _, err := net.SiteByName("nope"); err == nil {
		t.Error("missing site should error")
	}
	x := tensor.New(1, 4, 4, 1)
	x.RandNormal(rng, 1)
	out, execs := net.Trace(x)
	if out.Dim(1) != 10 {
		t.Fatalf("trace output shape = %v", out.Shape())
	}
	if len(execs) != 2 {
		t.Fatalf("trace execs = %d, want 2", len(execs))
	}
	if execs[0].Site.Name() != "conv1" || execs[1].Site.Name() != "fc1" {
		t.Errorf("exec order: %s, %s", execs[0].Site.Name(), execs[1].Site.Name())
	}
	if execs[0].OutSize != 4*4*4 || execs[1].OutSize != 10 {
		t.Errorf("exec sizes: %d, %d", execs[0].OutSize, execs[1].OutSize)
	}
}

func TestQuantizedNetworkOutputsRepresentable(t *testing.T) {
	codec := numerics.MustCodec(numerics.INT16, 16)
	rng := rand.New(rand.NewSource(8))
	conv := NewConv2D("c", 3, 3, 1, 2, 1, 1, codec).InitRandom(rng, 0.3)
	x := tensor.New(1, 4, 4, 1)
	x.RandNormal(rng, 1)
	y := conv.Forward(x, nil)
	for _, v := range y.Data() {
		if codec.Round(v) != v {
			t.Fatalf("INT16 conv output %v not representable", v)
		}
	}
}

func TestKindAndOperandStrings(t *testing.T) {
	if KindConv.String() != "Conv" || KindFC.String() != "FC" || KindMatMul.String() != "MatMul" || KindOther.String() != "Other" {
		t.Error("Kind strings wrong")
	}
	if OperandInput.String() != "input" || OperandWeight.String() != "weight" ||
		OperandBias.String() != "bias" || OperandOutput.String() != "output" {
		t.Error("OperandKind strings wrong")
	}
	if OperandKind(9).String() == "" {
		t.Error("unknown operand string empty")
	}
}

func TestClampActivation(t *testing.T) {
	c := fp32Codec()
	cl := NewClamp("cl", 5, c)
	y := cl.Forward(tensor.FromSlice([]float32{-100, -2, 0, 3, 1000}, 5), nil)
	want := []float32{-5, -2, 0, 3, 5}
	for i, w := range want {
		if y.At(i) != w {
			t.Errorf("clamp[%d] = %v, want %v", i, y.At(i), w)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("non-positive bound should panic")
		}
	}()
	NewClamp("bad", 0, c)
}

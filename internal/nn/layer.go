// Package nn implements the DNN inference substrate that plays the role of
// the (modified) TensorFlow runtime in the paper: layers whose operands —
// inputs, weights, bias values, partial sums and outputs — are visible and
// individually overridable, so that FIdelity's software fault models can be
// applied during a forward pass.
//
// Compute layers (Conv2D, Dense, matmul sites) expose:
//
//   - an injection hook invoked with their full operand set after the layer
//     computes its output, so a fault model can patch output neurons in place;
//   - ComputeNeuron, which recomputes a single output neuron with one operand
//     element overridden — exactly the capability needed to realize the
//     "recompute all neurons that use the faulty value" semantics of the
//     paper's Table II;
//   - NeuronsUsingOperand, which enumerates the output neurons consuming a
//     given operand element (the reuse set of a value stored before the
//     on-chip buffer).
//
// All arithmetic is routed through a numerics.Codec so FP16/INT16/INT8
// datapaths behave bit-accurately.
package nn

import (
	"fmt"

	"fidelity/internal/numerics"
	"fidelity/internal/tensor"
)

// Kind identifies the layer types that have distinct software fault models in
// the paper's Table II.
type Kind int

const (
	// KindOther marks layers that are not fault-injection sites.
	KindOther Kind = iota
	// KindConv marks convolution layers.
	KindConv
	// KindFC marks fully connected (dense) layers.
	KindFC
	// KindMatMul marks matrix-multiplication sites (e.g. inside attention).
	KindMatMul
)

// String returns the Table II name of the kind.
func (k Kind) String() string {
	switch k {
	case KindConv:
		return "Conv"
	case KindFC:
		return "FC"
	case KindMatMul:
		return "MatMul"
	default:
		return "Other"
	}
}

// OperandKind names the variable type of a datapath value, mirroring the
// paper's datapath FF variable categories.
type OperandKind int

const (
	// OperandInput is an activation/input value.
	OperandInput OperandKind = iota
	// OperandWeight is a weight value (or the second matrix of a matmul).
	OperandWeight
	// OperandBias is a bias value.
	OperandBias
	// OperandOutput is an output neuron or partial-sum value.
	OperandOutput
)

// String returns the variable-type name.
func (k OperandKind) String() string {
	switch k {
	case OperandInput:
		return "input"
	case OperandWeight:
		return "weight"
	case OperandBias:
		return "bias"
	case OperandOutput:
		return "output"
	default:
		return fmt.Sprintf("OperandKind(%d)", int(k))
	}
}

// Override replaces one operand element during a neuron recomputation.
type Override struct {
	Kind OperandKind
	// Flat is the row-major index into the operand tensor.
	Flat int
	// Value is the faulty value observed in place of the stored one.
	Value float32
}

// Operands is the full operand view of a compute layer execution handed to
// the injection hook. Out may be patched in place.
type Operands struct {
	// In is the layer input (operand A of a matmul site).
	In *tensor.Tensor
	// W is the weight tensor (operand B of a matmul site). Nil for layers
	// without weights.
	W *tensor.Tensor
	// B is the bias vector, or nil.
	B *tensor.Tensor
	// Out is the computed output; hooks may modify it in place.
	Out *tensor.Tensor
}

// Hook is invoked by a compute layer after it produces its output. site is
// the executing layer and visit counts its executions within one forward pass
// (0-based), which disambiguates layers that run multiple times (LSTM steps,
// shared attention blocks).
type Hook func(site Layer, visit int, op *Operands)

// Context threads the injection hook through a forward pass. A nil *Context
// is valid and means "no instrumentation". A Context additionally carries the
// replay machinery (see replay.go): in record mode it captures golden outputs,
// in replay mode it memoizes against them and fires the hook only at the
// armed target execution.
type Context struct {
	hook   Hook
	visits map[Layer]int

	mode       ctxMode
	execVisits map[Layer]int
	glueVisits map[Layer]int
	trace      *GoldenTrace
	arena      *Arena

	target      Layer
	targetVisit int
	injected    bool
	// pendingFire/pendingVisit gate the replay-mode hook dispatch: fire only
	// passes the hook through when exec has armed it for the target visit,
	// and reports the recorded visit number rather than the (skip-distorted)
	// replay-side counter.
	pendingFire  bool
	pendingVisit int
	stats        ReplayStats

	// spans tracks, for every dirty (non-golden) tensor produced during a
	// replayed pass, the flat index span (and spatial box, for rank-4) that
	// bounds its differences from the golden output. Region-capable layers use
	// it to recompute only the output region the fault can reach. noRegion
	// disables the sweep (see SetRegionSweep).
	spans    map[*tensor.Tensor]span
	noRegion bool

	// clamps holds the per-site range-restriction envelopes of a hardened
	// network (see clamp.go). Installed by Network.instrument; read-only
	// during a pass. hstats counts what clamping did.
	clamps map[Layer]Bound
	hstats HardenStats
}

// NewContext builds a context that invokes hook at every compute site.
func NewContext(hook Hook) *Context {
	return &Context{hook: hook, visits: make(map[Layer]int)}
}

// fire dispatches the hook for one execution of site.
func (c *Context) fire(site Layer, op *Operands) {
	if c == nil || c.hook == nil {
		return
	}
	if c.mode == ctxReplay {
		if !c.pendingFire {
			return
		}
		c.pendingFire = false
		c.hook(site, c.pendingVisit, op)
		return
	}
	v := c.visits[site]
	c.visits[site] = v + 1
	c.hook(site, v, op)
}

// Layer is one node of a network. Forward must be safe to call repeatedly;
// layers hold no per-call state beyond the Context visit counters.
type Layer interface {
	// Name returns a human-readable unique-ish identifier.
	Name() string
	// Forward computes the layer output for x, firing ctx hooks at every
	// compute site (ctx may be nil).
	Forward(x *tensor.Tensor, ctx *Context) *tensor.Tensor
}

// Site is a compute layer that can serve as a fault-injection target.
type Site interface {
	Layer
	// Kind returns the Table II layer type.
	Kind() Kind
	// Codec returns the datapath number format of the site.
	Codec() numerics.Codec
	// ComputeNeuron recomputes the single output neuron at multi-index idx
	// from the operand set, applying ov if non-nil.
	ComputeNeuron(op *Operands, idx []int, ov *Override) float32
	// NeuronsUsingOperand returns the multi-indices of all output neurons
	// whose computation consumes operand element (kind, flat), given the
	// operand shapes in op. This is the full reuse set of the value.
	NeuronsUsingOperand(op *Operands, kind OperandKind, flat int) [][]int
}

// Sequential chains layers.
type Sequential struct {
	name   string
	Layers []Layer
}

// NewSequential builds a named layer chain.
func NewSequential(name string, layers ...Layer) *Sequential {
	return &Sequential{name: name, Layers: layers}
}

// Name implements Layer.
func (s *Sequential) Name() string { return s.name }

// Forward implements Layer.
func (s *Sequential) Forward(x *tensor.Tensor, ctx *Context) *tensor.Tensor {
	for _, l := range s.Layers {
		x = l.Forward(x, ctx)
	}
	return x
}

// Sites returns all injection sites reachable from l, in execution order for
// the layer graph structure (not accounting for repeated execution).
func Sites(l Layer) []Site {
	var out []Site
	collectSites(l, &out)
	return out
}

// container is implemented by composite layers so site enumeration can
// traverse the layer graph.
type container interface {
	children() []Layer
}

func collectSites(l Layer, out *[]Site) {
	if s, ok := l.(Site); ok {
		*out = append(*out, s)
	}
	if c, ok := l.(container); ok {
		for _, child := range c.children() {
			if child != nil {
				collectSites(child, out)
			}
		}
	}
}

// children implements container.
func (s *Sequential) children() []Layer { return s.Layers }

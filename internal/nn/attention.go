package nn

import (
	"fmt"
	"math"
	"math/rand"

	"fidelity/internal/numerics"
	"fidelity/internal/tensor"
)

// MultiHeadAttention implements scaled dot-product self-attention over a
// (seq, dModel) input. The QKᵀ and attention·V products execute as MatMul
// sites — the paper's "MatMul layer in attention" validation workload
// (Table III) — while the Q/K/V/output projections are Dense (FC) sites.
type MultiHeadAttention struct {
	name   string
	Heads  int
	DModel int

	WQ, WK, WV, WO *Dense
	QK, AV         *MatMulSite
	codec          numerics.Codec
}

// NewMultiHeadAttention builds an attention block. dModel must be divisible
// by heads.
func NewMultiHeadAttention(name string, dModel, heads int, codec numerics.Codec) *MultiHeadAttention {
	if heads <= 0 || dModel%heads != 0 {
		panic(fmt.Sprintf("nn: dModel %d not divisible by heads %d", dModel, heads))
	}
	dHead := dModel / heads
	return &MultiHeadAttention{
		name: name, Heads: heads, DModel: dModel,
		WQ:    NewDense(name+"/wq", dModel, dModel, codec),
		WK:    NewDense(name+"/wk", dModel, dModel, codec),
		WV:    NewDense(name+"/wv", dModel, dModel, codec),
		WO:    NewDense(name+"/wo", dModel, dModel, codec),
		QK:    NewMatMulSite(name+"/qk", true, 1/float32(math.Sqrt(float64(dHead))), codec),
		AV:    NewMatMulSite(name+"/av", false, 0, codec),
		codec: codec,
	}
}

// InitRandom fills all projection weights.
func (l *MultiHeadAttention) InitRandom(rng *rand.Rand, stddev float32) *MultiHeadAttention {
	l.WQ.InitRandom(rng, stddev)
	l.WK.InitRandom(rng, stddev)
	l.WV.InitRandom(rng, stddev)
	l.WO.InitRandom(rng, stddev)
	return l
}

// children lists sub-layers for site enumeration.
func (l *MultiHeadAttention) children() []Layer {
	return []Layer{l.WQ, l.WK, l.WV, l.QK, l.AV, l.WO}
}

// Name implements Layer.
func (l *MultiHeadAttention) Name() string { return l.name }

// Forward implements Layer over a (seq, dModel) input.
func (l *MultiHeadAttention) Forward(x *tensor.Tensor, ctx *Context) *tensor.Tensor {
	if x.Rank() != 2 || x.Dim(1) != l.DModel {
		panic(fmt.Sprintf("nn: %s expects (seq,%d), got %v", l.name, l.DModel, x.Shape()))
	}
	seq := x.Dim(0)
	q := l.WQ.Forward(x, ctx)
	k := l.WK.Forward(x, ctx)
	v := l.WV.Forward(x, ctx)

	dHead := l.DModel / l.Heads
	headsOut := make([]*tensor.Tensor, l.Heads)
	for h := 0; h < l.Heads; h++ {
		qh := ctx.glue(l, func() *tensor.Tensor { return sliceCols(ctx, q, h*dHead, dHead) }, q)
		kh := ctx.glue(l, func() *tensor.Tensor { return sliceCols(ctx, k, h*dHead, dHead) }, k)
		vh := ctx.glue(l, func() *tensor.Tensor { return sliceCols(ctx, v, h*dHead, dHead) }, v)
		scores := l.QK.Run(qh, kh, ctx) // (seq, seq), scaled by 1/√dHead
		attn := ctx.glue(l, func() *tensor.Tensor { return tensor.Softmax(scores) }, scores)
		headsOut[h] = l.AV.Run(attn, vh, ctx) // (seq, dHead)
	}
	concat := ctx.glue(l, func() *tensor.Tensor { return tensor.Concat(1, headsOut...) }, headsOut...)
	out := l.WO.Forward(concat, ctx)
	_ = seq
	return out
}

// sliceCols copies columns [start, start+n) of a rank-2 tensor.
func sliceCols(ctx *Context, t *tensor.Tensor, start, n int) *tensor.Tensor {
	rows := t.Dim(0)
	out := ctx.newTensor(rows, n)
	for r := 0; r < rows; r++ {
		for c := 0; c < n; c++ {
			out.Set(t.At(r, start+c), r, c)
		}
	}
	return out
}

// FeedForward is the Transformer position-wise feed-forward block:
// Dense→ReLU→Dense with a residual add and layer norm handled by the caller.
type FeedForward struct {
	name   string
	Inner  *Dense
	Outer  *Dense
	Act    *Activation
	DModel int
}

// NewFeedForward builds a position-wise FFN with hidden width dff.
func NewFeedForward(name string, dModel, dff int, codec numerics.Codec) *FeedForward {
	return &FeedForward{
		name:   name,
		Inner:  NewDense(name+"/ff1", dModel, dff, codec),
		Outer:  NewDense(name+"/ff2", dff, dModel, codec),
		Act:    NewReLU(name+"/relu", codec),
		DModel: dModel,
	}
}

// InitRandom fills both projections.
func (l *FeedForward) InitRandom(rng *rand.Rand, stddev float32) *FeedForward {
	l.Inner.InitRandom(rng, stddev)
	l.Outer.InitRandom(rng, stddev)
	return l
}

// children implements container.
func (l *FeedForward) children() []Layer { return []Layer{l.Inner, l.Act, l.Outer} }

// Name implements Layer.
func (l *FeedForward) Name() string { return l.name }

// Forward implements Layer.
func (l *FeedForward) Forward(x *tensor.Tensor, ctx *Context) *tensor.Tensor {
	h := l.Inner.Forward(x, ctx)
	h = l.Act.Forward(h, ctx)
	return l.Outer.Forward(h, ctx)
}

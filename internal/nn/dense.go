package nn

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"fidelity/internal/numerics"
	"fidelity/internal/tensor"
)

// Dense is a fully connected layer: out[b, o] = Σ_i in[b, i]·W[i, o] + B[o].
// Inputs of higher rank are flattened per batch. In NVDLA, FC layers run on
// the same convolution pipeline (a 1×1 convolution over a 1×1 feature map),
// so Dense shares the Conv fault-model categories with FC-specific neuron
// patterns (paper Table II, "FC" rows).
type Dense struct {
	name    string
	In, Out int

	W *tensor.Tensor // (In, Out)
	B *tensor.Tensor // (Out), may be nil

	codec numerics.Codec
	// wcache holds RoundSlice(W); see Conv2D.wcache.
	wcache atomic.Pointer[[]float32]
}

// roundedW returns the cached pre-rounded weight buffer, computing it once.
func (l *Dense) roundedW() []float32 {
	if p := l.wcache.Load(); p != nil {
		return *p
	}
	rw := l.codec.RoundSlice(l.W.Data())
	l.wcache.Store(&rw)
	return rw
}

// InvalidateWeights drops the rounded-weight cache. Call after mutating W.
func (l *Dense) InvalidateWeights() { l.wcache.Store(nil) }

// NewDense builds a fully connected layer with zero parameters.
func NewDense(name string, in, out int, codec numerics.Codec) *Dense {
	if in <= 0 || out <= 0 {
		panic(fmt.Sprintf("nn: invalid Dense geometry %d->%d", in, out))
	}
	return &Dense{
		name: name, In: in, Out: out,
		W:     tensor.New(in, out),
		B:     tensor.New(out),
		codec: codec,
	}
}

// InitRandom fills weights with N(0, stddev²).
func (l *Dense) InitRandom(rng *rand.Rand, stddev float32) *Dense {
	l.W.RandNormal(rng, stddev)
	if l.B != nil {
		l.B.RandNormal(rng, stddev/4)
	}
	l.InvalidateWeights()
	return l
}

// Name implements Layer.
func (l *Dense) Name() string { return l.name }

// Kind implements Site.
func (l *Dense) Kind() Kind { return KindFC }

// Codec implements Site.
func (l *Dense) Codec() numerics.Codec { return l.codec }

// Forward implements Layer.
func (l *Dense) Forward(x *tensor.Tensor, ctx *Context) *tensor.Tensor {
	batch := x.Dim(0)
	if x.Size()/batch != l.In {
		panic(fmt.Sprintf("nn: %s expects %d features, got shape %v", l.name, l.In, x.Shape()))
	}
	return ctx.exec(l, func() *tensor.Tensor {
		flat := x.Reshape(batch, l.In)
		out := ctx.newTensor(batch, l.Out)
		op := &Operands{In: flat, W: l.W, B: l.B, Out: out}

		// Fast path: pre-rounded operands, per-output-neuron accumulation in
		// the same order as ComputeNeuron (bit-identical; see Conv2D.Forward).
		rin := l.codec.RoundSlice(flat.Data())
		rw := l.roundedW()
		if UseReferenceKernels() {
			denseForwardRef(l, out, rin, rw, batch)
		} else {
			var bias []float32
			if l.B != nil {
				bias = l.B.Data()
			}
			denseForward(&denseArgs{
				rin: rin, rw: rw, bias: bias, out: out.Data(),
				batch: batch, in: l.In, outN: l.Out,
				fp16:  l.codec.Precision() == numerics.FP16,
				codec: l.codec,
			})
		}
		ctx.fire(l, op)
		return out
	}, func(out *tensor.Tensor) *Operands {
		return &Operands{In: x.Reshape(batch, l.In), W: l.W, B: l.B, Out: out}
	}, x)
}

// ComputeNeuron implements Site.
func (l *Dense) ComputeNeuron(op *Operands, idx []int, ov *Override) float32 {
	b, o := idx[0], idx[1]
	in := op.In
	// Reuse the pre-rounded weight cache; bit-identical via the MulPre
	// invariant (see Conv2D.ComputeNeuron).
	var rw []float32
	if op.W == l.W {
		rw = l.roundedW()
	}
	// Flat row-major indexing: the variadic accessors allocate per call and
	// this is the per-fault hot loop (see Conv2D.ComputeNeuron).
	ind, wdat := in.Data(), op.W.Data()
	wo := op.W.Dim(1)
	inFlat, wFlat := -1, -1
	if ov != nil {
		switch ov.Kind {
		case OperandInput:
			inFlat = ov.Flat
		case OperandWeight:
			wFlat = ov.Flat
		}
	}
	base := b * l.In
	var acc float32
	for i := 0; i < l.In; i++ {
		av := ind[base+i]
		if base+i == inFlat {
			av = ov.Value
		}
		woff := i*wo + o
		switch {
		case woff == wFlat:
			acc += l.codec.Mul(av, ov.Value)
		case rw != nil:
			acc += l.codec.MulPre(l.codec.Round(av), rw[woff])
		default:
			acc += l.codec.Mul(av, wdat[woff])
		}
	}
	if op.B != nil {
		bv := op.B.At(o)
		if ov != nil && ov.Kind == OperandBias && o == ov.Flat {
			bv = ov.Value
		}
		acc += bv
	}
	return l.codec.Saturate(acc)
}

// NeuronsUsingOperand implements Site. Per Table II: a faulty input value
// affects all neurons of its batch row; a faulty weight value W[i,o] affects
// neuron o in every batch.
func (l *Dense) NeuronsUsingOperand(op *Operands, kind OperandKind, flat int) [][]int {
	batch := op.In.Dim(0)
	var out [][]int
	switch kind {
	case OperandInput:
		ii := op.In.Unflatten(flat)
		b := ii[0]
		for o := 0; o < l.Out; o++ {
			out = append(out, []int{b, o})
		}
	case OperandWeight:
		wi := l.W.Unflatten(flat)
		o := wi[1]
		for b := 0; b < batch; b++ {
			out = append(out, []int{b, o})
		}
	case OperandBias:
		for b := 0; b < batch; b++ {
			out = append(out, []int{b, flat})
		}
	case OperandOutput:
		out = append(out, op.Out.Unflatten(flat))
	}
	return out
}

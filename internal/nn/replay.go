package nn

import (
	"fidelity/internal/tensor"
)

// This file implements the incremental golden-replay execution engine.
//
// A fault-injection campaign runs millions of forward passes that are all
// tiny perturbations of one golden inference: every layer executed before
// the injected site is bit-identical to the golden trace, and after the
// injection only the fault's downstream cone can differ. The replay engine
// exploits this: a record-mode Context captures the golden output tensor of
// every layer execution, and a replay-mode Context then
//
//   - short-circuits every execution before the target visit by returning
//     its cached golden tensor in O(1);
//   - seeds the target execution from its golden output and fires the
//     injection hook without recomputing the layer (the fault models patch
//     outputs via ComputeNeuron, which only needs the operand tensors);
//   - after the injection, recomputes an execution only if one of its input
//     tensors is dirty, so off-path branches in DAG topologies (inception
//     branches, attention heads, residual shortcuts) skip too;
//   - canonicalizes recomputed outputs that converged back to their golden
//     values (ReLU, pooling and rounding mask faults constantly) onto the
//     golden tensor pointer, so skipping resumes downstream of the
//     convergence point.
//
// Cleanliness is tracked by pointer identity: a tensor is clean iff it is
// one of the recorded golden tensors. That makes the dirty test O(inputs)
// and exact — no epsilon comparisons, no false sharing. Bit-exactness with
// the full forward pass follows because skipped layers return the very
// values the full pass would recompute (the forward pass is deterministic)
// and recomputed layers run the identical code on identical inputs.

// ctxMode selects how a Context executes the layer graph.
type ctxMode int

const (
	// ctxPlain is the legacy mode: every layer computes.
	ctxPlain ctxMode = iota
	// ctxRecord computes every layer and records its output as golden.
	ctxRecord
	// ctxReplay memoizes against a recorded golden trace.
	ctxReplay
)

// execKey addresses one execution of one layer within a forward pass. glue
// distinguishes a composite layer's own work (residual add, branch concat,
// attention softmax) from leaf executions, which use separate visit
// counters.
type execKey struct {
	layer Layer
	visit int
	glue  bool
}

// GoldenTrace holds the recorded golden output of every layer execution of
// one forward pass, plus the pointer-identity set of clean tensors.
type GoldenTrace struct {
	outputs map[execKey]*tensor.Tensor
	golden  map[*tensor.Tensor]bool
	work    map[execKey]float64
}

// newGoldenTrace builds an empty trace.
func newGoldenTrace() *GoldenTrace {
	return &GoldenTrace{
		outputs: map[execKey]*tensor.Tensor{},
		golden:  map[*tensor.Tensor]bool{},
		work:    map[execKey]float64{},
	}
}

// put records the golden output of one execution.
func (g *GoldenTrace) put(key execKey, out *tensor.Tensor) {
	g.outputs[key] = out
	g.golden[out] = true
}

// MarkGolden adds t to the clean set. The network input must be marked so
// layers reading it directly (stems, branch roots) can prove their inputs
// clean.
func (g *GoldenTrace) MarkGolden(t *tensor.Tensor) { g.golden[t] = true }

// SetWork attaches a MAC-work estimate to a site execution, so replay can
// report how much compute each skip avoided.
func (g *GoldenTrace) SetWork(site Layer, visit int, work float64) {
	g.work[execKey{layer: site, visit: visit}] = work
}

// Arena recycles output buffers across replayed experiments. Buffers are
// keyed by element count and handed back wholesale by Reset at experiment
// boundaries, so a steady-state experiment allocates nothing. The arena is
// single-goroutine (one per injector); it is never used in record mode, so
// golden tensors are never arena-owned.
type Arena struct {
	free   map[int][][]float32
	lent   map[*tensor.Tensor][]float32
	reuses int64
}

// NewArena builds an empty arena.
func NewArena() *Arena {
	return &Arena{free: map[int][][]float32{}, lent: map[*tensor.Tensor][]float32{}}
}

// get returns a tensor backed by a recycled (not zeroed) buffer.
func (a *Arena) get(shape ...int) *tensor.Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	var buf []float32
	if bufs := a.free[n]; len(bufs) > 0 {
		buf = bufs[len(bufs)-1]
		a.free[n] = bufs[:len(bufs)-1]
		a.reuses++
	} else {
		buf = make([]float32, n)
	}
	t := tensor.FromSlice(buf, shape...)
	a.lent[t] = buf
	return t
}

// release returns t's buffer to the free list if the arena owns it; foreign
// tensors (views, golden outputs, ad-hoc allocations) are ignored.
func (a *Arena) release(t *tensor.Tensor) {
	buf, ok := a.lent[t]
	if !ok {
		return
	}
	delete(a.lent, t)
	a.free[len(buf)] = append(a.free[len(buf)], buf)
}

// Reset reclaims every buffer lent out since the last Reset. Call at an
// experiment boundary, when no tensor from the previous experiment is
// referenced anymore.
func (a *Arena) Reset() {
	// The free list hands out interchangeable buffers that every consumer
	// fully overwrites before reading, so reclaim order never reaches
	// results — and lent is keyed by pointer, so there is no stable sort key.
	//lint:allow maporder free-list reclaim order is unobservable: buffers are fully overwritten before any read
	for t, buf := range a.lent {
		a.free[len(buf)] = append(a.free[len(buf)], buf)
		delete(a.lent, t)
	}
}

// Reuses returns the cumulative count of buffer recycles.
func (a *Arena) Reuses() int64 { return a.reuses }

// ReplayStats counts what one replayed forward pass did and avoided.
type ReplayStats struct {
	// Skipped counts executions served from the golden trace.
	Skipped int
	// Recomputed counts executions that ran because an input was dirty.
	Recomputed int
	// Converged counts recomputed executions whose output matched golden
	// again (the fault was masked by then), re-enabling downstream skips.
	Converged int
	// RegionSwept counts the subset of Recomputed executions served by a
	// dirty-region sweep (only the output box reached by the fault was
	// recomputed; the rest was copied from golden).
	RegionSwept int
	// MACsAvoided estimates the MAC work of the skipped site executions.
	MACsAvoided float64
}

// NewRecordContext builds a context that computes every layer, fires hook at
// every site, and records each execution's output into the returned trace.
func NewRecordContext(hook Hook) (*Context, *GoldenTrace) {
	c := NewContext(hook)
	c.mode = ctxRecord
	c.execVisits = map[Layer]int{}
	c.glueVisits = map[Layer]int{}
	c.trace = newGoldenTrace()
	return c, c.trace
}

// NewReplayContext builds a reusable replay context over a recorded trace.
// Call SetTarget before each forward pass.
func NewReplayContext(trace *GoldenTrace, arena *Arena) *Context {
	c := &Context{
		mode:       ctxReplay,
		visits:     map[Layer]int{},
		execVisits: map[Layer]int{},
		glueVisits: map[Layer]int{},
		trace:      trace,
		arena:      arena,
		spans:      map[*tensor.Tensor]span{},
	}
	return c
}

// SetRegionSweep toggles the dirty-region sweep (on by default). With it off,
// a dirty input recomputes the whole layer as in the original replay engine;
// the differential suite uses this to prove region sweeps bit-neutral.
func (c *Context) SetRegionSweep(on bool) { c.noRegion = !on }

// SetTarget arms the replay context for one experiment: hook fires exactly
// once, at the visit-th execution of site, with operands seeded from the
// golden trace. All per-pass state is reset.
func (c *Context) SetTarget(site Layer, visit int, hook Hook) {
	c.hook = hook
	c.target = site
	c.targetVisit = visit
	c.injected = false
	c.pendingFire = false
	clear(c.visits)
	clear(c.execVisits)
	clear(c.glueVisits)
	clear(c.spans)
	c.stats = ReplayStats{}
	c.hstats = HardenStats{}
}

// Stats returns the counters of the last replayed pass.
func (c *Context) Stats() ReplayStats { return c.stats }

// Detach disables the hook for the remainder of the pass. The injector calls
// this once its plan is applied, so the traversal stops paying for hook
// dispatch on every later visit.
func (c *Context) Detach() {
	if c != nil {
		c.hook = nil
	}
}

// newTensor allocates a layer output buffer: from the arena during replay,
// freshly otherwise (recorded golden tensors must outlive every experiment).
// The buffer is zeroed either way, since accumulating layers rely on it.
func (c *Context) newTensor(shape ...int) *tensor.Tensor {
	if c == nil || c.mode != ctxReplay || c.arena == nil {
		return tensor.New(shape...)
	}
	t := c.arena.get(shape...)
	clear(t.Data())
	return t
}

// seedFn builds the hook operand set around a golden-seeded output tensor,
// exactly as the layer's own compute path would.
type seedFn func(out *tensor.Tensor) *Operands

// exec wraps one leaf-layer execution. compute runs the layer for real (and
// fires the hook from inside, via Context.fire); seed, non-nil for sites,
// builds the operand set without computing. in lists the input tensors the
// execution reads, for the dirty test.
func (c *Context) exec(l Layer, compute func() *tensor.Tensor, seed seedFn, in ...*tensor.Tensor) *tensor.Tensor {
	if c == nil {
		return compute()
	}
	if c.mode == ctxPlain {
		out := compute()
		c.clampSite(l, out)
		return out
	}
	v := c.execVisits[l]
	c.execVisits[l] = v + 1
	key := execKey{layer: l, visit: v}
	if c.mode == ctxRecord {
		out := compute()
		c.clampSite(l, out)
		c.trace.put(key, out)
		return out
	}
	golden, ok := c.trace.outputs[key]
	if !ok {
		// Unrecorded execution (shouldn't happen for a trace of the same
		// input): fall back to computing it.
		out := compute()
		c.clampSite(l, out)
		return out
	}
	if !c.injected {
		if l == c.target && v == c.targetVisit {
			c.injected = true
			c.stats.MACsAvoided += c.trace.work[key]
			if seed != nil {
				// Seed the output from golden instead of recomputing: the
				// hook's fault models only read the operand tensors and
				// patch Out via ComputeNeuron.
				out := c.arena.get(golden.Shape()...)
				copy(out.Data(), golden.Data())
				op := seed(out)
				c.pendingVisit = v
				c.pendingFire = true
				c.fire(l, op)
				c.pendingFire = false
				c.clampSite(l, out)
				return c.canonicalize(out, golden)
			}
			c.pendingVisit = v
			c.pendingFire = true
			out := compute()
			c.pendingFire = false
			c.clampSite(l, out)
			return c.canonicalize(out, golden)
		}
		// Before the target everything is golden by construction.
		c.stats.Skipped++
		c.stats.MACsAvoided += c.trace.work[key]
		return golden
	}
	if c.allGolden(in) {
		// Off the fault's downstream cone: clean inputs, golden output.
		c.stats.Skipped++
		c.stats.MACsAvoided += c.trace.work[key]
		return golden
	}
	if out, handled := c.regionExec(l, key, golden, in); handled {
		return out
	}
	out := compute()
	c.stats.Recomputed++
	c.clampSite(l, out)
	return c.canonicalize(out, golden)
}

// regionExec attempts the dirty-region sweep for one execution with dirty
// inputs: if the layer supports it and the dirty input's span is known, only
// the output box the span reaches is recomputed. Returns handled=false to
// fall back to a full recompute.
func (c *Context) regionExec(l Layer, key execKey, golden *tensor.Tensor, in []*tensor.Tensor) (*tensor.Tensor, bool) {
	if c.noRegion || c.arena == nil || len(in) != 1 || in[0] == nil {
		return nil, false
	}
	rs, ok := l.(regionSite)
	if !ok {
		return nil, false
	}
	sp, ok := c.spans[in[0]]
	if !ok {
		return nil, false
	}
	out, oy0, oy1, ox0, ox1, ok := rs.forwardRegion(c, in[0], golden, sp)
	if !ok {
		// The dirty input reaches no output element (it fell off the stride
		// lattice or the padding crop): the golden output stands.
		c.stats.Skipped++
		c.stats.MACsAvoided += c.trace.work[key]
		return golden, true
	}
	c.stats.Recomputed++
	c.stats.RegionSwept++
	// Clamp before the diff scan: saturation can restore golden equality
	// (converging the pass early), and the recorded span must bound the
	// final, post-clamp tensor. Outside the recomputed box the data is a
	// golden copy, on which the clamp is the identity.
	c.clampSite(l, out)
	var nsp span
	var equal bool
	if out.Rank() == 4 && oy1 > oy0 {
		nsp, equal = diffSpanBox(out, golden, oy0, oy1, ox0, ox1)
	} else {
		nsp, equal = diffSpanFull(out, golden)
	}
	if equal {
		c.stats.Converged++
		c.arena.release(out)
		return golden, true
	}
	c.spans[out] = nsp
	return out, true
}

// glue wraps a composite layer's own work (residual add, branch concat,
// attention slicing/softmax). Glue steps are never injection targets; they
// memoize on a separate visit counter so leaf and composite numbering cannot
// collide.
func (c *Context) glue(l Layer, compute func() *tensor.Tensor, in ...*tensor.Tensor) *tensor.Tensor {
	if c == nil || c.mode == ctxPlain {
		return compute()
	}
	v := c.glueVisits[l]
	c.glueVisits[l] = v + 1
	key := execKey{layer: l, visit: v, glue: true}
	if c.mode == ctxRecord {
		out := compute()
		c.trace.put(key, out)
		return out
	}
	golden, ok := c.trace.outputs[key]
	if !ok {
		return compute()
	}
	if !c.injected || c.allGolden(in) {
		c.stats.Skipped++
		return golden
	}
	out := compute()
	c.stats.Recomputed++
	return c.canonicalize(out, golden)
}

// canonicalize maps a recomputed output that equals its golden value back
// onto the golden tensor pointer, so downstream dirty tests see it as clean
// again. The recomputed buffer goes back to the arena. The convergence scan
// doubles as the span scan: when the output differs, the diff span is
// recorded so a downstream region-capable layer can sweep only the dirty
// region. This replaces the Equal scan the engine already paid, so span
// maintenance is free.
func (c *Context) canonicalize(out, golden *tensor.Tensor) *tensor.Tensor {
	if out == golden {
		return out
	}
	sp, equal := diffSpanFull(out, golden)
	if equal {
		c.stats.Converged++
		c.arena.release(out)
		return golden
	}
	if c.spans != nil {
		c.spans[out] = sp
	}
	return out
}

// allGolden reports whether every input is a recorded golden tensor.
func (c *Context) allGolden(in []*tensor.Tensor) bool {
	for _, t := range in {
		if t != nil && !c.trace.golden[t] {
			return false
		}
	}
	return true
}

package nn

import (
	"fmt"
	"math"

	"fidelity/internal/numerics"
	"fidelity/internal/tensor"
)

// MaxPool is a 2-D max pooling layer over NHWC input. Max pooling masks
// faulty neurons that are not the window maximum — one of the error-masking
// mechanisms FIdelity's outcome statistics capture.
type MaxPool struct {
	name         string
	Size, Stride int
}

// NewMaxPool builds a max-pooling layer.
func NewMaxPool(name string, size, stride int) *MaxPool {
	if size <= 0 || stride <= 0 {
		panic(fmt.Sprintf("nn: invalid MaxPool size=%d stride=%d", size, stride))
	}
	return &MaxPool{name: name, Size: size, Stride: stride}
}

// Name implements Layer.
func (l *MaxPool) Name() string { return l.name }

// Forward implements Layer.
func (l *MaxPool) Forward(x *tensor.Tensor, ctx *Context) *tensor.Tensor {
	n, h, w, c := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh := (h-l.Size)/l.Stride + 1
	ow := (w-l.Size)/l.Stride + 1
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("nn: %s input %v too small for pool %d/%d", l.name, x.Shape(), l.Size, l.Stride))
	}
	return ctx.exec(l, func() *tensor.Tensor {
		out := ctx.newTensor(n, oh, ow, c)
		for b := 0; b < n; b++ {
			for y := 0; y < oh; y++ {
				for xx := 0; xx < ow; xx++ {
					for ch := 0; ch < c; ch++ {
						m := float32(math.Inf(-1))
						for py := 0; py < l.Size; py++ {
							for px := 0; px < l.Size; px++ {
								v := x.At(b, y*l.Stride+py, xx*l.Stride+px, ch)
								if v > m {
									m = v
								}
							}
						}
						out.Set(m, b, y, xx, ch)
					}
				}
			}
		}
		return out
	}, nil, x)
}

// AvgPool is a 2-D average pooling layer.
type AvgPool struct {
	name         string
	Size, Stride int
	codec        numerics.Codec
}

// NewAvgPool builds an average-pooling layer.
func NewAvgPool(name string, size, stride int, codec numerics.Codec) *AvgPool {
	if size <= 0 || stride <= 0 {
		panic(fmt.Sprintf("nn: invalid AvgPool size=%d stride=%d", size, stride))
	}
	return &AvgPool{name: name, Size: size, Stride: stride, codec: codec}
}

// Name implements Layer.
func (l *AvgPool) Name() string { return l.name }

// Forward implements Layer.
func (l *AvgPool) Forward(x *tensor.Tensor, ctx *Context) *tensor.Tensor {
	n, h, w, c := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh := (h-l.Size)/l.Stride + 1
	ow := (w-l.Size)/l.Stride + 1
	return ctx.exec(l, func() *tensor.Tensor {
		out := ctx.newTensor(n, oh, ow, c)
		inv := 1 / float32(l.Size*l.Size)
		for b := 0; b < n; b++ {
			for y := 0; y < oh; y++ {
				for xx := 0; xx < ow; xx++ {
					for ch := 0; ch < c; ch++ {
						var s float32
						for py := 0; py < l.Size; py++ {
							for px := 0; px < l.Size; px++ {
								s += x.At(b, y*l.Stride+py, xx*l.Stride+px, ch)
							}
						}
						out.Set(l.codec.Round(s*inv), b, y, xx, ch)
					}
				}
			}
		}
		return out
	}, nil, x)
}

// GlobalAvgPool averages each channel over all spatial positions, producing
// (N, C). Used ahead of the classifier head in the CNN models.
type GlobalAvgPool struct {
	name  string
	codec numerics.Codec
}

// NewGlobalAvgPool builds a global average pooling layer.
func NewGlobalAvgPool(name string, codec numerics.Codec) *GlobalAvgPool {
	return &GlobalAvgPool{name: name, codec: codec}
}

// Name implements Layer.
func (l *GlobalAvgPool) Name() string { return l.name }

// Forward implements Layer.
func (l *GlobalAvgPool) Forward(x *tensor.Tensor, ctx *Context) *tensor.Tensor {
	n, h, w, c := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	return ctx.exec(l, func() *tensor.Tensor {
		out := ctx.newTensor(n, c)
		inv := 1 / float32(h*w)
		for b := 0; b < n; b++ {
			for ch := 0; ch < c; ch++ {
				var s float64
				for y := 0; y < h; y++ {
					for xx := 0; xx < w; xx++ {
						s += float64(x.At(b, y, xx, ch))
					}
				}
				out.Set(l.codec.Round(float32(s)*inv), b, ch)
			}
		}
		return out
	}, nil, x)
}

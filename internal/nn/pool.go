package nn

import (
	"fmt"
	"math"

	"fidelity/internal/numerics"
	"fidelity/internal/tensor"
)

// MaxPool is a 2-D max pooling layer over NHWC input. Max pooling masks
// faulty neurons that are not the window maximum — one of the error-masking
// mechanisms FIdelity's outcome statistics capture.
type MaxPool struct {
	name         string
	Size, Stride int
}

// NewMaxPool builds a max-pooling layer.
func NewMaxPool(name string, size, stride int) *MaxPool {
	if size <= 0 || stride <= 0 {
		panic(fmt.Sprintf("nn: invalid MaxPool size=%d stride=%d", size, stride))
	}
	return &MaxPool{name: name, Size: size, Stride: stride}
}

// Name implements Layer.
func (l *MaxPool) Name() string { return l.name }

// Forward implements Layer.
func (l *MaxPool) Forward(x *tensor.Tensor, ctx *Context) *tensor.Tensor {
	n, h, w, c := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh := (h-l.Size)/l.Stride + 1
	ow := (w-l.Size)/l.Stride + 1
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("nn: %s input %v too small for pool %d/%d", l.name, x.Shape(), l.Size, l.Stride))
	}
	return ctx.exec(l, func() *tensor.Tensor {
		out := ctx.newTensor(n, oh, ow, c)
		maxPoolRegion(x, out, l.Size, l.Stride, 0, oh, 0, ow)
		return out
	}, nil, x)
}

// maxPoolRegion computes max-pool output rows [y0,y1) × cols [x0,x1) with
// flattened indexing. Window visit order is (py, px) ascending per channel,
// matching the naive loop (max is order-independent, but we keep the order
// anyway so NaN tie behavior cannot drift).
func maxPoolRegion(x, out *tensor.Tensor, size, stride, y0, y1, x0, x1 int) {
	n, h, w, c := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	ow := out.Dim(2)
	xd, od := x.Data(), out.Data()
	maxs := make([]float32, c)
	for b := 0; b < n; b++ {
		for y := y0; y < y1; y++ {
			for xx := x0; xx < x1; xx++ {
				for ch := range maxs {
					maxs[ch] = float32(math.Inf(-1))
				}
				for py := 0; py < size; py++ {
					rowBase := ((b*h+y*stride+py)*w + xx*stride) * c
					win := xd[rowBase : rowBase+size*c]
					for px := 0; px < size; px++ {
						cell := win[px*c : px*c+c]
						for ch, v := range cell {
							if v > maxs[ch] {
								maxs[ch] = v
							}
						}
					}
				}
				outBase := ((b*out.Dim(1)+y)*ow + xx) * c
				copy(od[outBase:outBase+c], maxs)
			}
		}
	}
}

// AvgPool is a 2-D average pooling layer.
type AvgPool struct {
	name         string
	Size, Stride int
	codec        numerics.Codec
}

// NewAvgPool builds an average-pooling layer.
func NewAvgPool(name string, size, stride int, codec numerics.Codec) *AvgPool {
	if size <= 0 || stride <= 0 {
		panic(fmt.Sprintf("nn: invalid AvgPool size=%d stride=%d", size, stride))
	}
	return &AvgPool{name: name, Size: size, Stride: stride, codec: codec}
}

// Name implements Layer.
func (l *AvgPool) Name() string { return l.name }

// Forward implements Layer.
func (l *AvgPool) Forward(x *tensor.Tensor, ctx *Context) *tensor.Tensor {
	n, h, w, c := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh := (h-l.Size)/l.Stride + 1
	ow := (w-l.Size)/l.Stride + 1
	return ctx.exec(l, func() *tensor.Tensor {
		out := ctx.newTensor(n, oh, ow, c)
		avgPoolRegion(x, out, l.Size, l.Stride, l.codec, 0, oh, 0, ow)
		return out
	}, nil, x)
}

// avgPoolRegion computes avg-pool output rows [y0,y1) × cols [x0,x1) with
// flattened indexing. Each channel's sum accumulates window cells in
// (py, px) ascending order — the same float addition sequence as the naive
// loop, so results are bit-identical.
func avgPoolRegion(x, out *tensor.Tensor, size, stride int, codec numerics.Codec, y0, y1, x0, x1 int) {
	n, h, w, c := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh, ow := out.Dim(1), out.Dim(2)
	xd, od := x.Data(), out.Data()
	inv := 1 / float32(size*size)
	sums := make([]float32, c)
	for b := 0; b < n; b++ {
		for y := y0; y < y1; y++ {
			for xx := x0; xx < x1; xx++ {
				for ch := range sums {
					sums[ch] = 0
				}
				for py := 0; py < size; py++ {
					rowBase := ((b*h+y*stride+py)*w + xx*stride) * c
					win := xd[rowBase : rowBase+size*c]
					for px := 0; px < size; px++ {
						cell := win[px*c : px*c+c]
						for ch, v := range cell {
							sums[ch] += v
						}
					}
				}
				outBase := ((b*oh+y)*ow + xx) * c
				orow := od[outBase : outBase+c]
				for ch := range orow {
					orow[ch] = codec.Round(sums[ch] * inv)
				}
			}
		}
	}
}

// GlobalAvgPool averages each channel over all spatial positions, producing
// (N, C). Used ahead of the classifier head in the CNN models.
type GlobalAvgPool struct {
	name  string
	codec numerics.Codec
}

// NewGlobalAvgPool builds a global average pooling layer.
func NewGlobalAvgPool(name string, codec numerics.Codec) *GlobalAvgPool {
	return &GlobalAvgPool{name: name, codec: codec}
}

// Name implements Layer.
func (l *GlobalAvgPool) Name() string { return l.name }

// Forward implements Layer.
func (l *GlobalAvgPool) Forward(x *tensor.Tensor, ctx *Context) *tensor.Tensor {
	n, h, w, c := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	return ctx.exec(l, func() *tensor.Tensor {
		out := ctx.newTensor(n, c)
		inv := 1 / float32(h*w)
		xd, od := x.Data(), out.Data()
		sums := make([]float64, c)
		// Flattened single pass; each channel's float64 sum still accumulates
		// spatial positions in (y, x) ascending order, so the result is
		// bit-identical to the naive per-channel walk.
		for b := 0; b < n; b++ {
			for ch := range sums {
				sums[ch] = 0
			}
			img := xd[b*h*w*c : (b+1)*h*w*c]
			for base := 0; base+c <= len(img); base += c {
				cell := img[base : base+c]
				for ch, v := range cell {
					sums[ch] += float64(v)
				}
			}
			orow := od[b*c : (b+1)*c]
			for ch := range orow {
				orow[ch] = l.codec.Round(float32(sums[ch]) * inv)
			}
		}
		return out
	}, nil, x)
}

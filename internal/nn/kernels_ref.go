package nn

// kernels_ref.go preserves the pre-tiling layer loops exactly as they shipped
// with the replay engine (PR 4), including the reference FP16 rounding path.
// They are the oracle for the kernel equivalence tests and the baseline side
// of BENCH_campaign.json; production forwards run the tiled kernels in
// kernels.go. Do not "optimize" these: their value is being the slow, known-
// good implementation.

import (
	"fidelity/internal/numerics"
	"fidelity/internal/tensor"
)

// convForwardRef is the reference Conv2D forward loop.
func convForwardRef(l *Conv2D, x, out *tensor.Tensor, rin, rw []float32) {
	os := out.Shape()
	fp16 := l.codec.Precision() == numerics.FP16
	od := out.Data()
	n, oh, ow, outC := os[0], os[1], os[2], os[3]
	h, wd, inC := x.Dim(1), x.Dim(2), l.InC
	accs := make([]float32, outC)
	var bias []float32
	if l.B != nil {
		bias = l.B.Data()
	}

	for b := 0; b < n; b++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				for c := range accs {
					accs[c] = 0
				}
				for ky := 0; ky < l.KH; ky++ {
					iy := oy*l.Stride + ky - l.Pad
					if iy < 0 || iy >= h {
						continue
					}
					for kx := 0; kx < l.KW; kx++ {
						ix := ox*l.Stride + kx - l.Pad
						if ix < 0 || ix >= wd {
							continue
						}
						inBase := ((b*h+iy)*wd + ix) * inC
						if l.Depthwise {
							wBase := (ky*l.KW + kx) * inC
							for c := 0; c < outC; c++ {
								p := rin[inBase+c] * rw[wBase+c]
								if fp16 {
									p = numerics.RoundHalfRef(p)
								}
								accs[c] += p
							}
							continue
						}
						for ic := 0; ic < inC; ic++ {
							av := rin[inBase+ic]
							wBase := ((ky*l.KW+kx)*inC + ic) * outC
							wrow := rw[wBase : wBase+outC]
							if fp16 {
								for c, wv := range wrow {
									accs[c] += numerics.RoundHalfRef(av * wv)
								}
							} else {
								for c, wv := range wrow {
									accs[c] += av * wv
								}
							}
						}
					}
				}
				outBase := ((b*oh+oy)*ow + ox) * outC
				for c := 0; c < outC; c++ {
					acc := accs[c]
					if bias != nil {
						acc += bias[c]
					}
					od[outBase+c] = l.codec.Saturate(acc)
				}
			}
		}
	}
}

// denseForwardRef is the reference Dense forward loop.
func denseForwardRef(l *Dense, out *tensor.Tensor, rin, rw []float32, batch int) {
	fp16 := l.codec.Precision() == numerics.FP16
	od := out.Data()
	var bias []float32
	if l.B != nil {
		bias = l.B.Data()
	}
	for b := 0; b < batch; b++ {
		orow := od[b*l.Out : (b+1)*l.Out]
		for i := 0; i < l.In; i++ {
			av := rin[b*l.In+i]
			wrow := rw[i*l.Out : (i+1)*l.Out]
			if fp16 {
				for o, wv := range wrow {
					orow[o] += numerics.RoundHalfRef(av * wv)
				}
			} else {
				for o, wv := range wrow {
					orow[o] += av * wv
				}
			}
		}
		for o := 0; o < l.Out; o++ {
			acc := orow[o]
			if bias != nil {
				acc += bias[o]
			}
			orow[o] = l.codec.Saturate(acc)
		}
	}
}

// matmulForwardRef is the reference MatMulSite loop.
func matmulForwardRef(l *MatMulSite, out *tensor.Tensor, ra, rb []float32, m, k, n int) {
	fp16 := l.codec.Precision() == numerics.FP16
	od := out.Data()
	for i := 0; i < m; i++ {
		arow := ra[i*k : (i+1)*k]
		orow := od[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := arow[p]
			if l.TransposeB {
				// B row j holds (j, p): stride k per output column.
				if fp16 {
					for j := 0; j < n; j++ {
						orow[j] += numerics.RoundHalfRef(av * rb[j*k+p])
					}
				} else {
					for j := 0; j < n; j++ {
						orow[j] += av * rb[j*k+p]
					}
				}
				continue
			}
			brow := rb[p*n : (p+1)*n]
			if fp16 {
				for j, wv := range brow {
					orow[j] += numerics.RoundHalfRef(av * wv)
				}
			} else {
				for j, wv := range brow {
					orow[j] += av * wv
				}
			}
		}
		for j := 0; j < n; j++ {
			acc := orow[j]
			if l.ScaleOut != 0 {
				acc *= l.ScaleOut
			}
			orow[j] = l.codec.Saturate(acc)
		}
	}
}

package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"testing"

	"fidelity/internal/accel"
	"fidelity/internal/faultmodel"
	"fidelity/internal/inject"
	"fidelity/internal/telemetry"
)

// The adaptive-sampling differential suite. The adaptive engine's determinism
// contract mirrors the fixed-count engine's: StudyResult JSON is a pure
// function of (Seed, Shards, TargetCI) — never of Workers, the batch window,
// or where an interrupt landed.

// TestAdaptiveWorkerDeterminism: the round-barrier design must make adaptive
// results byte-identical across worker counts, and independent of the
// experiment batch window.
func TestAdaptiveWorkerDeterminism(t *testing.T) {
	w := engineWorkload(t)
	base := StudyOptions{TargetCI: 0.15, Inputs: 2, Tolerance: 0.1, Seed: 9, Shards: 8}

	var want []byte
	for _, workers := range []int{1, 2, 4} {
		opts := base
		opts.Workers = workers
		got := studyJSON(t, w, opts)
		if want == nil {
			want = got
			continue
		}
		if !bytes.Equal(want, got) {
			t.Errorf("adaptive StudyResult JSON differs at Workers=%d:\nworkers=1: %s\nworkers=%d: %s",
				workers, want, workers, got)
		}
	}
	// The batch window is an execution-order optimization in adaptive rounds
	// too: unbatched must match exactly.
	opts := base
	opts.Workers = 4
	opts.ExperimentBatch = 1
	if got := studyJSON(t, w, opts); !bytes.Equal(want, got) {
		t.Errorf("adaptive StudyResult JSON differs unbatched:\nbatched:   %s\nunbatched: %s", want, got)
	}
}

// TestAdaptiveInterruptResume: an adaptive campaign interrupted at an
// arbitrary experiment boundary must resume from its checkpoint (format v3,
// carrying the round history) to the byte-identical result of an
// uninterrupted run — including when the interrupt lands at a round barrier.
func TestAdaptiveInterruptResume(t *testing.T) {
	w := engineWorkload(t)
	cfg := accel.NVDLASmall()
	base := StudyOptions{TargetCI: 0.15, Inputs: 2, Tolerance: 0.1, Seed: 9, Shards: 8}

	baseline, err := Study(context.Background(), cfg, w, base)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(baseline)
	if err != nil {
		t.Fatal(err)
	}

	for _, stopAt := range []int{25, 150} {
		ctx, cancel := context.WithCancel(context.Background())
		opts := base
		opts.Workers = 1
		count := 0
		opts.observe = func(int, Cursor, faultmodel.ID, inject.Result) {
			if count++; count == stopAt {
				cancel()
			}
		}
		_, err := Study(ctx, cfg, w, opts)
		cancel()
		var intr *Interrupted
		if !errors.As(err, &intr) {
			t.Fatalf("stopAt=%d: interrupted adaptive study returned %v, want *Interrupted", stopAt, err)
		}

		resume := base
		resume.Workers = 3
		resume.Resume = intr.Checkpoint
		res, err := Study(context.Background(), cfg, w, resume)
		if err != nil {
			t.Fatalf("stopAt=%d: resume: %v", stopAt, err)
		}
		gotJSON, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wantJSON, gotJSON) {
			t.Errorf("stopAt=%d: resumed adaptive result differs:\nbaseline: %s\nresumed:  %s",
				stopAt, wantJSON, gotJSON)
		}
	}
}

// TestAdaptivePerLayerDeterminism: per-layer strata (the mode the paper's
// Eq. 2 needs) keep the same worker-count independence.
func TestAdaptivePerLayerDeterminism(t *testing.T) {
	w := engineWorkload(t)
	base := StudyOptions{TargetCI: 0.3, Inputs: 1, Tolerance: 0.1, Seed: 11, Shards: 4, PerLayer: true}

	var want []byte
	for _, workers := range []int{1, 3} {
		opts := base
		opts.Workers = workers
		got := studyJSON(t, w, opts)
		if want == nil {
			want = got
			continue
		}
		if !bytes.Equal(want, got) {
			t.Errorf("per-layer adaptive StudyResult JSON differs at Workers=%d", workers)
		}
	}
}

// TestAdaptiveReachesTarget: when the campaign converges, every stratum has
// either met the target half-width or spent the worst-case bound — the
// stopping rule's correctness, read back through the telemetry strata block.
func TestAdaptiveReachesTarget(t *testing.T) {
	w := engineWorkload(t)
	const target = 0.15
	tel := telemetry.New()
	opts := StudyOptions{TargetCI: target, Inputs: 1, Tolerance: 0.1, Seed: 5, Shards: 8, Workers: 4, Telemetry: tel}
	res, err := Study(context.Background(), accel.NVDLASmall(), w, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Experiments <= 0 {
		t.Fatal("adaptive study ran no experiments")
	}
	st := tel.Snapshot().Strata
	if st == nil {
		t.Fatal("adaptive study produced no telemetry Strata block")
	}
	if st.Rounds < 1 || st.TargetCI != target {
		t.Errorf("strata snapshot header = %d rounds, target %v; want >=1 rounds, target %v",
			st.Rounds, st.TargetCI, target)
	}
	bound := SamplesFor(target)
	for _, s := range st.Strata {
		if !s.Stopped {
			t.Errorf("stratum %s/exec=%d still active after convergence", s.Model, s.Exec)
		}
		if s.HalfWidth > target && s.N < bound {
			t.Errorf("stratum %s/exec=%d stopped at half-width %.4f (n=%d) above target %v with budget left (bound %d)",
				s.Model, s.Exec, s.HalfWidth, s.N, target, bound)
		}
	}
}

// TestAdaptiveValidation: the option-level mutual exclusion and range checks.
func TestAdaptiveValidation(t *testing.T) {
	w := engineWorkload(t)
	cfg := accel.NVDLASmall()
	cases := []struct {
		name string
		opts StudyOptions
	}{
		{"both modes", StudyOptions{Samples: 10, TargetCI: 0.1, Inputs: 1, Tolerance: 0.1}},
		{"target too wide", StudyOptions{TargetCI: 0.6, Inputs: 1, Tolerance: 0.1}},
		{"negative target", StudyOptions{Samples: 10, TargetCI: -0.1, Inputs: 1, Tolerance: 0.1}},
		{"adaptive without inputs", StudyOptions{TargetCI: 0.1, Tolerance: 0.1}},
	}
	for _, tc := range cases {
		if _, err := Study(context.Background(), cfg, w, tc.opts); err == nil {
			t.Errorf("%s: Study accepted invalid options %+v", tc.name, tc.opts)
		}
	}
}

// TestAdaptiveOffUnchanged: with TargetCI zero the engine must take the
// legacy fixed-count path bit-for-bit — the refactor (run dispatch, stepBatch
// stride, extracted dispatchShards) is invisible to existing campaigns.
func TestAdaptiveOffUnchanged(t *testing.T) {
	w := engineWorkload(t)
	base := StudyOptions{Samples: 24, Inputs: 2, Tolerance: 0.1, Seed: 7, Shards: 8}

	var want []byte
	for _, workers := range []int{1, 4} {
		opts := base
		opts.Workers = workers
		got := studyJSON(t, w, opts)
		if want == nil {
			want = got
			continue
		}
		if !bytes.Equal(want, got) {
			t.Errorf("fixed-count StudyResult JSON differs at Workers=%d", workers)
		}
	}
}

package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"testing"

	"fidelity/internal/accel"
	"fidelity/internal/faultmodel"
	"fidelity/internal/inject"
	"fidelity/internal/model"
	"fidelity/internal/numerics"
	"fidelity/internal/telemetry"
)

// The differential equivalence suite for the incremental golden-replay
// engine. Replay must be a pure performance optimization: every StudyResult
// and checkpoint it produces must be byte-identical to the full-forward
// path's, for every zoo topology (sequential CNNs, inception branches,
// residual shortcuts, attention DAGs, LSTM revisits) at every datapath
// precision.

var replayPrecisions = []numerics.Precision{numerics.FP16, numerics.INT16, numerics.INT8}

// TestReplayDifferentialZoo runs the same small study with replay on and off
// for every zoo network × precision and requires byte-identical StudyResult
// JSON (tallies, CIs, FIT bounds, perturbation stats — everything).
func TestReplayDifferentialZoo(t *testing.T) {
	cfg := accel.NVDLASmall()
	for _, name := range model.Names() {
		for _, prec := range replayPrecisions {
			t.Run(name+"/"+prec.String(), func(t *testing.T) {
				w, err := model.Build(name, prec, 42)
				if err != nil {
					t.Fatal(err)
				}
				opts := StudyOptions{Samples: 5, Inputs: 1, Tolerance: 0.1, Seed: 7, Workers: 4}
				on, err := Study(context.Background(), cfg, w, opts)
				if err != nil {
					t.Fatal(err)
				}
				opts.DisableReplay = true
				off, err := Study(context.Background(), cfg, w, opts)
				if err != nil {
					t.Fatal(err)
				}
				requireEqualResults(t, "replay on vs off", on, off)
				bon, err := json.Marshal(on)
				if err != nil {
					t.Fatal(err)
				}
				boff, err := json.Marshal(off)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(bon, boff) {
					t.Errorf("StudyResult JSON differs between replay on and off:\non:  %s\noff: %s", bon, boff)
				}
			})
		}
	}
}

// TestReplayCheckpointIdentity interrupts the same campaign deterministically
// with replay on and with replay off, requires the two checkpoints to be
// byte-identical, and then cross-resumes each checkpoint under the opposite
// replay mode — both must reproduce the uninterrupted result exactly.
func TestReplayCheckpointIdentity(t *testing.T) {
	w := engineWorkload(t)
	cfg := accel.NVDLASmall()
	base := StudyOptions{Samples: 160, Inputs: 2, Tolerance: 0.1, Seed: 13, Workers: 1}

	baseline, err := Study(context.Background(), cfg, w, base)
	if err != nil {
		t.Fatal(err)
	}

	// Workers=1 plus a synchronous per-experiment observer makes the
	// interruption point exact: both modes stop after the same experiments.
	interrupt := func(disable bool) *Checkpoint {
		t.Helper()
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		opts := base
		opts.DisableReplay = disable
		count := 0
		opts.observe = func(int, Cursor, faultmodel.ID, inject.Result) {
			if count++; count == 100 {
				cancel()
			}
		}
		_, err := Study(ctx, cfg, w, opts)
		var intr *Interrupted
		if !errors.As(err, &intr) {
			t.Fatalf("disable=%v: interrupted study returned %v, want *Interrupted", disable, err)
		}
		return intr.Checkpoint
	}
	cpOn := interrupt(false)
	cpOff := interrupt(true)
	bOn, err := json.Marshal(cpOn)
	if err != nil {
		t.Fatal(err)
	}
	bOff, err := json.Marshal(cpOff)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bOn, bOff) {
		t.Errorf("checkpoints differ between replay modes:\non:  %s\noff: %s", bOn, bOff)
	}

	// DisableReplay is deliberately not part of the checkpoint identity:
	// resuming under the opposite mode must finish to the same result.
	resume := func(label string, cp *Checkpoint, disable bool) {
		t.Helper()
		opts := base
		opts.DisableReplay = disable
		opts.Resume = cp
		res, err := Study(context.Background(), cfg, w, opts)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		requireEqualResults(t, label, baseline, res)
	}
	resume("replay-on checkpoint resumed with replay off", cpOn, true)
	resume("replay-off checkpoint resumed with replay on", cpOff, false)
}

// TestReplayTelemetryPresence checks the nil-when-disabled contract of the
// telemetry Replay block: present (with sane ratios) when the replay engine
// ran, absent entirely when it was disabled.
func TestReplayTelemetryPresence(t *testing.T) {
	w := engineWorkload(t)
	cfg := accel.NVDLASmall()
	base := StudyOptions{Samples: 12, Inputs: 1, Tolerance: 0.1, Seed: 3}

	tel := telemetry.New()
	opts := base
	opts.Telemetry = tel
	if _, err := Study(context.Background(), cfg, w, opts); err != nil {
		t.Fatal(err)
	}
	rep := tel.Snapshot().Replay
	if rep == nil {
		t.Fatal("replay-enabled study produced no telemetry Replay block")
	}
	if rep.LayersSkipped <= 0 {
		t.Errorf("LayersSkipped = %d, want > 0", rep.LayersSkipped)
	}
	if rep.CacheHitRatio <= 0 || rep.CacheHitRatio > 1 {
		t.Errorf("CacheHitRatio = %v, want in (0, 1]", rep.CacheHitRatio)
	}
	if rep.ArenaReuses <= 0 {
		t.Errorf("ArenaReuses = %d, want > 0", rep.ArenaReuses)
	}
	if rep.MACsAvoidedEst <= 0 {
		t.Errorf("MACsAvoidedEst = %v, want > 0", rep.MACsAvoidedEst)
	}

	tel = telemetry.New()
	opts = base
	opts.Telemetry = tel
	opts.DisableReplay = true
	if _, err := Study(context.Background(), cfg, w, opts); err != nil {
		t.Fatal(err)
	}
	if got := tel.Snapshot().Replay; got != nil {
		t.Errorf("replay-disabled study produced a telemetry Replay block: %+v", got)
	}
}

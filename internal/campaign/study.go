package campaign

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"fidelity/internal/accel"
	"fidelity/internal/activeness"
	"fidelity/internal/dataset"
	"fidelity/internal/faultmodel"
	"fidelity/internal/fit"
	"fidelity/internal/inject"
	"fidelity/internal/model"
	"fidelity/internal/nn"
	"fidelity/internal/telemetry"
)

// DefaultShards is the number of logical sampling shards a study splits its
// experiment space into when StudyOptions.Shards is zero. Shards — not
// workers — own the deterministic random streams, so results depend only on
// (Seed, Shards), never on the worker count.
const DefaultShards = 16

// StudyOptions parameterizes a Sec. V resilience study for one workload.
type StudyOptions struct {
	// Samples is the number of fault-injection experiments per software
	// fault model (the paper uses statistically significant counts; the
	// Wilson half-width of the masking estimates is reported).
	Samples int
	// Inputs is the number of distinct dataset inputs to rotate through.
	Inputs int
	// Tolerance is the score tolerance for BLEU/detection metrics (0.1 or
	// 0.2 per Table IV; ignored for Top-1).
	Tolerance float64
	// Seed drives all sampling.
	Seed int64
	// RawFITPerMB is the raw FF FIT rate; 0 selects the paper's 600/MB.
	RawFITPerMB float64
	// Workers runs the injection experiments on this many goroutines
	// (0/1 = sequential). Workload networks are read-only during injection,
	// so sharding is safe. The worker count affects only wall-clock time:
	// experiments are partitioned into Shards deterministic streams, so any
	// Workers value produces identical tallies for a fixed Seed.
	Workers int
	// Shards is the number of independent deterministic sampling streams
	// (0 = DefaultShards). It is part of a study's identity: changing it
	// changes which experiments are drawn, like changing Seed.
	Shards int
	// PerLayer estimates Prob_SWmask(cat, r) separately for every layer r
	// (the exact Eq. 2 form) instead of one network-wide aggregate. The
	// experiment count multiplies by the number of layer executions.
	PerLayer bool
	// CheckpointPath, when non-empty, is where the engine saves a resumable
	// JSON checkpoint: always on cancellation, and periodically every
	// CheckpointInterval while running (0 disables periodic saves).
	CheckpointPath     string
	CheckpointInterval time.Duration
	// Resume continues a previously interrupted study. A checkpoint whose
	// identity (workload, precision, tolerance, samples, inputs, seed,
	// shards, per-layer) does not match this study is ignored and the study
	// runs from scratch — so one checkpoint file can safely be offered to
	// every cell of a multi-workload figure.
	Resume *Checkpoint
	// Telemetry, when non-nil, receives per-experiment outcome counts and
	// per-phase wall-clock timings.
	Telemetry *telemetry.Collector
}

// shards returns the resolved shard count.
func (o StudyOptions) shards() int {
	if o.Shards > 0 {
		return o.Shards
	}
	return DefaultShards
}

// shardSeed derives the independent stream seed of one logical shard.
func shardSeed(seed int64, shard int) int64 { return seed*1_000_003 + int64(shard) }

// PerturbationStats is the Key Result 5 measurement over experiments that
// corrupt exactly one output neuron: application-error probability split by
// perturbation magnitude.
type PerturbationStats struct {
	// SmallFail is P(output error | single faulty neuron, |Δ| <= 100).
	SmallFail Proportion
	// LargeFail is P(output error | single faulty neuron, |Δ| > 100).
	LargeFail Proportion
}

// StudyResult is the full study output for one (workload, precision,
// tolerance) cell of Figs 4/5.
type StudyResult struct {
	Workload  string
	Precision string
	Tolerance float64
	// Masked holds Prob_SWmask per software fault model with its CI.
	Masked map[faultmodel.ID]*Proportion
	// FIT is the Eq. 2 result; FITProtected assumes global control FFs are
	// protected (Fig 6).
	FIT, FITProtected *fit.Result
	// Perturb is the Key Result 5 statistic.
	Perturb PerturbationStats
	// Experiments counts all injection runs performed (including any
	// restored from a resumed checkpoint).
	Experiments int
	// Layers retains the Eq. 2 per-layer inputs so FIT can be recomputed
	// under perturbed assumptions (sensitivity analysis) without re-running
	// the injection campaign.
	Layers []fit.LayerStats
	// RawPerFF is the per-FF raw FIT rate used.
	RawPerFF float64
}

// specsFromTrace derives the accelerator-level layer descriptions of a
// network from one traced inference — the workload input of Fig 3.
func specsFromTrace(w *model.Workload, execs []nn.SiteExecution) ([]accel.LayerSpec, error) {
	var specs []accel.LayerSpec
	for i, e := range execs {
		name := fmt.Sprintf("%s#%d", e.Site.Name(), e.Visit)
		switch s := e.Site.(type) {
		case *nn.Conv2D:
			os := e.OutShape
			inC := s.InC
			if s.Depthwise {
				inC = 1 // one filter per channel: reduction is the kernel window
			}
			specs = append(specs, accel.ConvSpec(name, os[0], os[1], os[2], os[3],
				s.KH, s.KW, inC, s.Stride, w.Net.Precision))
		case *nn.Dense:
			specs = append(specs, accel.FCSpec(name, e.InShape[0], s.In, s.Out, w.Net.Precision))
		case *nn.MatMulSite:
			m, k := e.InShape[0], e.InShape[1]
			n := e.OutShape[1]
			specs = append(specs, accel.MatMulSpec(name, m, k, n, w.Net.Precision))
		default:
			return nil, fmt.Errorf("campaign: execution %d has unsupported site type %T", i, e.Site)
		}
	}
	return specs, nil
}

// shardState is the runtime state of one logical shard. The running worker
// owns the tally fields exclusively; concurrent observers (the periodic
// checkpoint saver) read only the published snapshot under mu.
type shardState struct {
	index        int
	samplerState faultmodel.SamplerState

	// Owned by the worker executing the shard.
	sampler     *faultmodel.Sampler
	masked      map[faultmodel.ID]*Proportion
	perLayer    []map[faultmodel.ID]*Proportion
	perturb     PerturbationStats
	experiments int
	cursor      Cursor
	done        bool
	err         error

	mu        sync.Mutex
	published ShardCheckpoint
}

func newShardState(index int, seed int64) *shardState {
	sh := &shardState{
		index:        index,
		samplerState: faultmodel.SamplerState{Seed: seed},
		masked:       map[faultmodel.ID]*Proportion{},
	}
	for _, id := range faultmodel.AllIDs() {
		sh.masked[id] = &Proportion{}
	}
	sh.publish(Cursor{})
	return sh
}

// restore loads a shard checkpoint into the live state. The sampler itself
// is rebuilt lazily when the shard runs.
func (sh *shardState) restore(sc ShardCheckpoint) {
	sh.samplerState = sc.Sampler
	sh.cursor = sc.Cursor
	sh.done = sc.Done
	sh.experiments = sc.Experiments
	sh.perturb = sc.Perturb
	for id, p := range sc.Masked {
		cp := p
		sh.masked[id] = &cp
	}
	if sc.PerLayer != nil {
		sh.perLayer = make([]map[faultmodel.ID]*Proportion, len(sc.PerLayer))
		for e, m := range sc.PerLayer {
			sh.perLayer[e] = map[faultmodel.ID]*Proportion{}
			for _, id := range faultmodel.AllIDs() {
				cp := m[id]
				sh.perLayer[e][id] = &cp
			}
		}
	}
	sh.publish(sh.cursor)
}

// publish snapshots the live state as a consistent ShardCheckpoint whose
// cursor names the next experiment to run. Called by the owning worker at
// experiment boundaries only, so tallies, sampler position and cursor always
// agree.
func (sh *shardState) publish(cur Cursor) {
	sc := ShardCheckpoint{
		Index:       sh.index,
		Done:        sh.done,
		Sampler:     sh.samplerState,
		Cursor:      cur,
		Experiments: sh.experiments,
		Perturb:     sh.perturb,
		Masked:      make(map[faultmodel.ID]Proportion, len(sh.masked)),
	}
	if sh.sampler != nil {
		sc.Sampler = sh.sampler.State()
	}
	for id, p := range sh.masked {
		sc.Masked[id] = *p
	}
	if sh.perLayer != nil {
		sc.PerLayer = make([]map[faultmodel.ID]Proportion, len(sh.perLayer))
		for e, m := range sh.perLayer {
			sc.PerLayer[e] = make(map[faultmodel.ID]Proportion, len(m))
			for id, p := range m {
				sc.PerLayer[e][id] = *p
			}
		}
	}
	sh.mu.Lock()
	sh.published = sc
	sh.mu.Unlock()
}

// snapshot returns the last published consistent state.
func (sh *shardState) snapshot() ShardCheckpoint {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.published
}

// publishEvery is the experiment cadence at which a running shard refreshes
// its published snapshot for the periodic checkpoint saver.
const publishEvery = 64

// run executes the shard's slice of the experiment space from its cursor.
// On context cancellation it publishes a consistent snapshot and returns the
// context's error; any other error is a campaign failure.
func (sh *shardState) run(ctx context.Context, w *model.Workload, models []faultmodel.Model, opts StudyOptions) error {
	shards := opts.shards()
	tel := opts.Telemetry
	sampler, err := faultmodel.NewSamplerAt(models, sh.samplerState)
	if err != nil {
		return err
	}
	sh.sampler = sampler
	inj := inject.New(w, sampler)
	ids := faultmodel.AllIDs()
	cur := sh.cursor
	sincePublish := 0

	// checkpointable pauses at an experiment boundary: ctx is checked and the
	// published snapshot refreshed before the cursor's experiment runs.
	checkpointable := func(cur Cursor) error {
		if err := ctx.Err(); err != nil {
			sh.cursor = cur
			sh.publish(cur)
			return err
		}
		if sincePublish++; sincePublish >= publishEvery {
			sincePublish = 0
			sh.publish(cur)
		}
		return nil
	}
	record := func(layer int, id faultmodel.ID, r inject.Result) {
		sh.experiments++
		masked := r.Outcome == inject.Masked
		sh.masked[id].Add(masked)
		if layer >= 0 && sh.perLayer != nil {
			sh.perLayer[layer][id].Add(masked)
		}
		if r.FaultyNeurons == 1 {
			failed := !masked
			if r.MaxPerturbation <= 100 {
				sh.perturb.SmallFail.Add(failed)
			} else {
				sh.perturb.LargeFail.Add(failed)
			}
		}
		if tel != nil {
			tel.RecordExperiment(id.String(), r.Outcome.String())
		}
	}

	for ; cur.Input < opts.Inputs; cur.Input, cur.Model = cur.Input+1, 0 {
		x, err := dataset.Sample(w.Dataset, cur.Input)
		if err != nil {
			return err
		}
		if err := inj.Prepare(x); err != nil {
			return err
		}
		// This shard's share of the per-(input, model) sample count.
		per := opts.Samples / opts.Inputs
		if cur.Input < opts.Samples%opts.Inputs {
			per++
		}
		mine := per / shards
		if sh.index < per%shards {
			mine++
		}
		if opts.PerLayer && sh.perLayer == nil {
			sh.perLayer = make([]map[faultmodel.ID]*Proportion, inj.Executions())
			for e := range sh.perLayer {
				sh.perLayer[e] = map[faultmodel.ID]*Proportion{}
				for _, id := range faultmodel.AllIDs() {
					sh.perLayer[e][id] = &Proportion{}
				}
			}
		}
		for ; cur.Model < len(ids); cur.Model, cur.Exec, cur.Sample = cur.Model+1, 0, 0 {
			id := ids[cur.Model]
			if id == faultmodel.GlobalControl {
				// Modeled as always failing: Prob_SWmask = 0.
				for ; cur.Sample < mine; cur.Sample++ {
					if err := checkpointable(cur); err != nil {
						return err
					}
					sh.experiments++
					sh.masked[id].Add(false)
					if tel != nil {
						tel.RecordExperiment(id.String(), inject.SystemAnomaly.String())
					}
				}
				continue
			}
			if opts.PerLayer {
				for ; cur.Exec < inj.Executions(); cur.Exec, cur.Sample = cur.Exec+1, 0 {
					for ; cur.Sample < mine; cur.Sample++ {
						if err := checkpointable(cur); err != nil {
							return err
						}
						r, err := inj.RunAt(ctx, cur.Exec, id, opts.Tolerance)
						if err != nil {
							return err
						}
						record(cur.Exec, id, r)
					}
				}
				continue
			}
			for ; cur.Sample < mine; cur.Sample++ {
				if err := checkpointable(cur); err != nil {
					return err
				}
				r, err := inj.Run(ctx, id, opts.Tolerance)
				if err != nil {
					return err
				}
				record(-1, id, r)
			}
		}
	}
	sh.done = true
	sh.cursor = Cursor{Input: opts.Inputs}
	sh.publish(sh.cursor)
	return nil
}

// assembleCheckpoint collects every shard's last published snapshot into one
// resumable campaign checkpoint.
func assembleCheckpoint(w *model.Workload, opts StudyOptions, states []*shardState) *Checkpoint {
	cp := &Checkpoint{
		Version:   checkpointVersion,
		Workload:  w.Net.Name(),
		Precision: w.Net.Precision.String(),
		Tolerance: opts.Tolerance,
		Samples:   opts.Samples,
		Inputs:    opts.Inputs,
		Seed:      opts.Seed,
		Shards:    opts.shards(),
		PerLayer:  opts.PerLayer,
	}
	for _, sh := range states {
		sc := sh.snapshot()
		cp.Experiments += sc.Experiments
		cp.Shard = append(cp.Shard, sc)
	}
	return cp
}

func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

func phaseStart(tel *telemetry.Collector, name string) {
	if tel != nil {
		tel.StartPhase(name)
	}
}

func phaseEnd(tel *telemetry.Collector, name string) {
	if tel != nil {
		tel.EndPhase(name)
	}
}

// Study runs the fault-injection study for one workload on design cfg and
// computes its Accelerator_FIT_rate.
//
// The campaign is cancellable, resumable and observable: cancelling ctx
// stops every worker at an experiment boundary and returns *Interrupted
// carrying a checkpoint (also saved to opts.CheckpointPath when set) from
// which opts.Resume continues the study to the identical StudyResult an
// uninterrupted run would have produced.
func Study(ctx context.Context, cfg *accel.Config, w *model.Workload, opts StudyOptions) (*StudyResult, error) {
	if opts.Samples <= 0 || opts.Inputs <= 0 {
		return nil, fmt.Errorf("campaign: Samples and Inputs must be positive")
	}
	if opts.RawFITPerMB == 0 {
		opts.RawFITPerMB = fit.RawFFFITPerMB
	}
	tel := opts.Telemetry
	models, err := faultmodel.Derive(cfg)
	if err != nil {
		return nil, err
	}
	res := &StudyResult{
		Workload:  w.Net.Name(),
		Precision: w.Net.Precision.String(),
		Tolerance: opts.Tolerance,
		Masked:    map[faultmodel.ID]*Proportion{},
	}
	for _, id := range faultmodel.AllIDs() {
		res.Masked[id] = &Proportion{}
	}

	// Trace once for the Eq. 2 layer specs.
	phaseStart(tel, "trace")
	x0, err := dataset.Sample(w.Dataset, 0)
	if err != nil {
		phaseEnd(tel, "trace")
		return nil, err
	}
	_, execs := w.Net.Trace(x0)
	phaseEnd(tel, "trace")

	// Build the logical shards, restoring from a matching checkpoint.
	shards := opts.shards()
	states := make([]*shardState, shards)
	resume := opts.Resume
	if resume != nil && !resume.Matches(w, opts, shards) {
		resume = nil
	}
	for s := range states {
		states[s] = newShardState(s, shardSeed(opts.Seed, s))
		if resume != nil {
			states[s].restore(resume.Shard[s])
		}
	}

	// Periodic checkpoint saver: assembles the shards' published snapshots.
	stopSaver := func() {}
	if opts.CheckpointPath != "" && opts.CheckpointInterval > 0 {
		stop := make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			t := time.NewTicker(opts.CheckpointInterval)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					// Best-effort: a failed periodic save must not kill the
					// campaign; the on-cancel save reports errors.
					_ = assembleCheckpoint(w, opts, states).Save(opts.CheckpointPath)
				case <-stop:
					return
				}
			}
		}()
		stopSaver = func() { close(stop); <-done }
	}

	// Worker pool: workers pull whole logical shards, so the partition of
	// experiments onto random streams never depends on the worker count.
	workers := opts.Workers
	if workers <= 1 {
		workers = 1
	}
	if workers > shards {
		workers = shards
	}
	phaseStart(tel, "inject")
	jobs := make(chan *shardState)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for sh := range jobs {
				if sh.done {
					continue
				}
				sh.err = sh.run(ctx, w, models, opts)
			}
		}()
	}
	// Stop feeding on cancellation: shards still queued keep their initial
	// (resumable) published state.
feed:
	for _, sh := range states {
		select {
		case jobs <- sh:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	phaseEnd(tel, "inject")
	stopSaver()

	interrupted := false
	for _, sh := range states {
		switch {
		case sh.err == nil && !sh.done:
			interrupted = true // never started before cancellation
		case sh.err != nil && isCancellation(sh.err):
			interrupted = true
		case sh.err != nil:
			return nil, sh.err
		}
	}
	if interrupted {
		cp := assembleCheckpoint(w, opts, states)
		path := ""
		if opts.CheckpointPath != "" {
			if err := cp.Save(opts.CheckpointPath); err != nil {
				return nil, fmt.Errorf("campaign: interrupted, and saving the checkpoint failed: %w", err)
			}
			path = opts.CheckpointPath
		}
		return nil, &Interrupted{Checkpoint: cp, Path: path, Cause: context.Cause(ctx)}
	}

	// Aggregate the shard tallies. Integer sums commute, so the aggregate is
	// independent of both worker scheduling and shard order.
	var perLayer []map[faultmodel.ID]*Proportion
	if opts.PerLayer {
		perLayer = make([]map[faultmodel.ID]*Proportion, len(execs))
		for e := range perLayer {
			perLayer[e] = map[faultmodel.ID]*Proportion{}
			for _, id := range faultmodel.AllIDs() {
				perLayer[e][id] = &Proportion{}
			}
		}
	}
	for _, sh := range states {
		for id, p := range sh.masked {
			res.Masked[id].Successes += p.Successes
			res.Masked[id].Trials += p.Trials
		}
		for e := range sh.perLayer {
			for id, p := range sh.perLayer[e] {
				perLayer[e][id].Successes += p.Successes
				perLayer[e][id].Trials += p.Trials
			}
		}
		res.Perturb.SmallFail.Successes += sh.perturb.SmallFail.Successes
		res.Perturb.SmallFail.Trials += sh.perturb.SmallFail.Trials
		res.Perturb.LargeFail.Successes += sh.perturb.LargeFail.Successes
		res.Perturb.LargeFail.Trials += sh.perturb.LargeFail.Trials
		res.Experiments += sh.experiments
	}

	// Assemble Eq. 2 inputs: per-layer activeness and exec time from the
	// performance model, masking probabilities from the campaign aggregate.
	phaseStart(tel, "fit")
	defer phaseEnd(tel, "fit")
	specs, err := specsFromTrace(w, execs)
	if err != nil {
		return nil, err
	}
	perf, err := activeness.NewModel(cfg)
	if err != nil {
		return nil, err
	}
	var layers []fit.LayerStats
	for li, spec := range specs {
		an, err := activeness.Analyze(cfg, perf, spec)
		if err != nil {
			return nil, err
		}
		ls := fit.LayerStats{
			Layer:        spec.Name,
			ExecTime:     float64(an.Breakdown.TotalCycles),
			ProbInactive: an.ProbInactive,
			ProbMasked:   map[accel.Category]float64{},
		}
		for _, m := range models {
			p := res.Masked[m.ID]
			if perLayer != nil && m.ID != faultmodel.GlobalControl {
				if lp := perLayer[li][m.ID]; lp.Trials > 0 {
					p = lp
				}
			}
			ls.ProbMasked[m.Cat] = p.Mean()
		}
		layers = append(layers, ls)
	}
	raw := fit.RawFITPerFF(opts.RawFITPerMB)
	res.Layers = layers
	res.RawPerFF = raw
	res.FIT, err = fit.Compute(cfg, raw, layers)
	if err != nil {
		return nil, err
	}
	res.FITProtected, err = fit.ComputeProtected(cfg, raw, layers)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// SensitivityBounds recomputes the FIT rate under perturbed estimates: the
// FF count scaled by ±ffDelta and every Prob_inactive scaled by ±actDelta
// (clamped to [0, 1]). This is the paper's sensitivity-analysis mode for
// early design phases, where the microarchitectural inputs are estimates:
// the bounds bracket the FIT rate without re-running any injections.
func SensitivityBounds(ctx context.Context, cfg *accel.Config, res *StudyResult, ffDelta, actDelta float64) (lo, hi float64, err error) {
	if res.Layers == nil {
		return 0, 0, fmt.Errorf("campaign: study result carries no layer stats")
	}
	if ffDelta < 0 || ffDelta >= 1 || actDelta < 0 || actDelta > 1 {
		return 0, 0, fmt.Errorf("campaign: deltas out of range (ff=%v, act=%v)", ffDelta, actDelta)
	}
	eval := func(ffScale, actScale float64) (float64, error) {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		c := *cfg
		c.NumFFs = int(float64(cfg.NumFFs) * ffScale)
		if c.NumFFs < 1 {
			c.NumFFs = 1
		}
		layers := make([]fit.LayerStats, len(res.Layers))
		for i, l := range res.Layers {
			m := fit.LayerStats{
				Layer: l.Layer, ExecTime: l.ExecTime,
				ProbInactive: map[accel.Category]float64{},
				ProbMasked:   l.ProbMasked,
			}
			for cat, p := range l.ProbInactive {
				p *= actScale
				if p > 1 {
					p = 1
				}
				m.ProbInactive[cat] = p
			}
			layers[i] = m
		}
		r, err := fit.Compute(&c, res.RawPerFF, layers)
		if err != nil {
			return 0, err
		}
		return r.Total, nil
	}
	// Worst case: more FFs, less inactivity. Best case: the opposite.
	hi, err = eval(1+ffDelta, 1-actDelta)
	if err != nil {
		return 0, 0, err
	}
	lo, err = eval(1-ffDelta, 1+actDelta)
	if err != nil {
		return 0, 0, err
	}
	return lo, hi, nil
}

package campaign

import (
	"fmt"
	"sync"

	"fidelity/internal/accel"
	"fidelity/internal/activeness"
	"fidelity/internal/dataset"
	"fidelity/internal/faultmodel"
	"fidelity/internal/fit"
	"fidelity/internal/inject"
	"fidelity/internal/model"
	"fidelity/internal/nn"
)

// StudyOptions parameterizes a Sec. V resilience study for one workload.
type StudyOptions struct {
	// Samples is the number of fault-injection experiments per software
	// fault model (the paper uses statistically significant counts; the
	// Wilson half-width of the masking estimates is reported).
	Samples int
	// Inputs is the number of distinct dataset inputs to rotate through.
	Inputs int
	// Tolerance is the score tolerance for BLEU/detection metrics (0.1 or
	// 0.2 per Table IV; ignored for Top-1).
	Tolerance float64
	// Seed drives all sampling.
	Seed int64
	// RawFITPerMB is the raw FF FIT rate; 0 selects the paper's 600/MB.
	RawFITPerMB float64
	// Workers runs the injection experiments on this many goroutines with
	// independent deterministic samplers (0/1 = sequential). Workload
	// networks are read-only during injection, so sharding is safe.
	Workers int
	// PerLayer estimates Prob_SWmask(cat, r) separately for every layer r
	// (the exact Eq. 2 form) instead of one network-wide aggregate. The
	// experiment count multiplies by the number of layer executions.
	PerLayer bool
}

// PerturbationStats is the Key Result 5 measurement over experiments that
// corrupt exactly one output neuron: application-error probability split by
// perturbation magnitude.
type PerturbationStats struct {
	// SmallFail is P(output error | single faulty neuron, |Δ| <= 100).
	SmallFail Proportion
	// LargeFail is P(output error | single faulty neuron, |Δ| > 100).
	LargeFail Proportion
}

// StudyResult is the full study output for one (workload, precision,
// tolerance) cell of Figs 4/5.
type StudyResult struct {
	Workload  string
	Precision string
	Tolerance float64
	// Masked holds Prob_SWmask per software fault model with its CI.
	Masked map[faultmodel.ID]*Proportion
	// FIT is the Eq. 2 result; FITProtected assumes global control FFs are
	// protected (Fig 6).
	FIT, FITProtected *fit.Result
	// Perturb is the Key Result 5 statistic.
	Perturb PerturbationStats
	// Experiments counts all injection runs performed.
	Experiments int
	// Layers retains the Eq. 2 per-layer inputs so FIT can be recomputed
	// under perturbed assumptions (sensitivity analysis) without re-running
	// the injection campaign.
	Layers []fit.LayerStats
	// RawPerFF is the per-FF raw FIT rate used.
	RawPerFF float64
}

// specsFromTrace derives the accelerator-level layer descriptions of a
// network from one traced inference — the workload input of Fig 3.
func specsFromTrace(w *model.Workload, execs []nn.SiteExecution) ([]accel.LayerSpec, error) {
	var specs []accel.LayerSpec
	for i, e := range execs {
		name := fmt.Sprintf("%s#%d", e.Site.Name(), e.Visit)
		switch s := e.Site.(type) {
		case *nn.Conv2D:
			os := e.OutShape
			inC := s.InC
			if s.Depthwise {
				inC = 1 // one filter per channel: reduction is the kernel window
			}
			specs = append(specs, accel.ConvSpec(name, os[0], os[1], os[2], os[3],
				s.KH, s.KW, inC, s.Stride, w.Net.Precision))
		case *nn.Dense:
			specs = append(specs, accel.FCSpec(name, e.InShape[0], s.In, s.Out, w.Net.Precision))
		case *nn.MatMulSite:
			m, k := e.InShape[0], e.InShape[1]
			n := e.OutShape[1]
			specs = append(specs, accel.MatMulSpec(name, m, k, n, w.Net.Precision))
		default:
			return nil, fmt.Errorf("campaign: execution %d has unsupported site type %T", i, e.Site)
		}
	}
	return specs, nil
}

// Study runs the fault-injection study for one workload on design cfg and
// computes its Accelerator_FIT_rate.
func Study(cfg *accel.Config, w *model.Workload, opts StudyOptions) (*StudyResult, error) {
	if opts.Samples <= 0 || opts.Inputs <= 0 {
		return nil, fmt.Errorf("campaign: Samples and Inputs must be positive")
	}
	if opts.RawFITPerMB == 0 {
		opts.RawFITPerMB = fit.RawFFFITPerMB
	}
	models, err := faultmodel.Derive(cfg)
	if err != nil {
		return nil, err
	}
	res := &StudyResult{
		Workload:  w.Net.Name(),
		Precision: w.Net.Precision.String(),
		Tolerance: opts.Tolerance,
		Masked:    map[faultmodel.ID]*Proportion{},
	}
	for _, id := range faultmodel.AllIDs() {
		res.Masked[id] = &Proportion{}
	}

	// Trace once for the Eq. 2 layer specs.
	x0, err := dataset.Sample(w.Dataset, 0)
	if err != nil {
		return nil, err
	}
	_, execs := w.Net.Trace(x0)

	workers := opts.Workers
	if workers <= 1 {
		workers = 1
	}
	type shard struct {
		masked      map[faultmodel.ID]*Proportion
		perLayer    []map[faultmodel.ID]*Proportion
		perturb     PerturbationStats
		experiments int
		err         error
	}
	shards := make([]shard, workers)
	var wg sync.WaitGroup
	for wid := 0; wid < workers; wid++ {
		wg.Add(1)
		go func(wid int) {
			defer wg.Done()
			sh := &shards[wid]
			sh.masked = map[faultmodel.ID]*Proportion{}
			for _, id := range faultmodel.AllIDs() {
				sh.masked[id] = &Proportion{}
			}
			sampler, err := faultmodel.NewSampler(models, opts.Seed*1_000_003+int64(wid))
			if err != nil {
				sh.err = err
				return
			}
			inj := inject.New(w, sampler)
			// This worker's share of the per-(input, model) sample count.
			for i := 0; i < opts.Inputs; i++ {
				x, err := dataset.Sample(w.Dataset, i)
				if err != nil {
					sh.err = err
					return
				}
				if err := inj.Prepare(x); err != nil {
					sh.err = err
					return
				}
				per := opts.Samples / opts.Inputs
				if i < opts.Samples%opts.Inputs {
					per++
				}
				mine := per / workers
				if wid < per%workers {
					mine++
				}
				if opts.PerLayer && sh.perLayer == nil {
					sh.perLayer = make([]map[faultmodel.ID]*Proportion, inj.Executions())
					for e := range sh.perLayer {
						sh.perLayer[e] = map[faultmodel.ID]*Proportion{}
						for _, id := range faultmodel.AllIDs() {
							sh.perLayer[e][id] = &Proportion{}
						}
					}
				}
				record := func(layer int, id faultmodel.ID, r inject.Result) {
					sh.experiments++
					masked := r.Outcome == inject.Masked
					sh.masked[id].Add(masked)
					if layer >= 0 && sh.perLayer != nil {
						sh.perLayer[layer][id].Add(masked)
					}
					if r.FaultyNeurons == 1 {
						failed := !masked
						if r.MaxPerturbation <= 100 {
							sh.perturb.SmallFail.Add(failed)
						} else {
							sh.perturb.LargeFail.Add(failed)
						}
					}
				}
				for _, id := range faultmodel.AllIDs() {
					if id == faultmodel.GlobalControl {
						// Modeled as always failing: Prob_SWmask = 0.
						for s := 0; s < mine; s++ {
							sh.masked[id].Add(false)
						}
						sh.experiments += mine
						continue
					}
					if opts.PerLayer {
						for e := 0; e < inj.Executions(); e++ {
							for s := 0; s < mine; s++ {
								r, err := inj.RunAt(e, id, opts.Tolerance)
								if err != nil {
									sh.err = err
									return
								}
								record(e, id, r)
							}
						}
						continue
					}
					for s := 0; s < mine; s++ {
						r, err := inj.Run(id, opts.Tolerance)
						if err != nil {
							sh.err = err
							return
						}
						record(-1, id, r)
					}
				}
			}
		}(wid)
	}
	wg.Wait()
	var perLayer []map[faultmodel.ID]*Proportion
	if opts.PerLayer {
		perLayer = make([]map[faultmodel.ID]*Proportion, len(execs))
		for e := range perLayer {
			perLayer[e] = map[faultmodel.ID]*Proportion{}
			for _, id := range faultmodel.AllIDs() {
				perLayer[e][id] = &Proportion{}
			}
		}
	}
	for i := range shards {
		sh := &shards[i]
		if sh.err != nil {
			return nil, sh.err
		}
		for id, p := range sh.masked {
			res.Masked[id].Successes += p.Successes
			res.Masked[id].Trials += p.Trials
		}
		for e := range sh.perLayer {
			for id, p := range sh.perLayer[e] {
				perLayer[e][id].Successes += p.Successes
				perLayer[e][id].Trials += p.Trials
			}
		}
		res.Perturb.SmallFail.Successes += sh.perturb.SmallFail.Successes
		res.Perturb.SmallFail.Trials += sh.perturb.SmallFail.Trials
		res.Perturb.LargeFail.Successes += sh.perturb.LargeFail.Successes
		res.Perturb.LargeFail.Trials += sh.perturb.LargeFail.Trials
		res.Experiments += sh.experiments
	}

	// Assemble Eq. 2 inputs: per-layer activeness and exec time from the
	// performance model, masking probabilities from the campaign aggregate.
	specs, err := specsFromTrace(w, execs)
	if err != nil {
		return nil, err
	}
	perf, err := activeness.NewModel(cfg)
	if err != nil {
		return nil, err
	}
	var layers []fit.LayerStats
	for li, spec := range specs {
		an, err := activeness.Analyze(cfg, perf, spec)
		if err != nil {
			return nil, err
		}
		ls := fit.LayerStats{
			Layer:        spec.Name,
			ExecTime:     float64(an.Breakdown.TotalCycles),
			ProbInactive: an.ProbInactive,
			ProbMasked:   map[accel.Category]float64{},
		}
		for _, m := range models {
			p := res.Masked[m.ID]
			if perLayer != nil && m.ID != faultmodel.GlobalControl {
				if lp := perLayer[li][m.ID]; lp.Trials > 0 {
					p = lp
				}
			}
			ls.ProbMasked[m.Cat] = p.Mean()
		}
		layers = append(layers, ls)
	}
	raw := fit.RawFITPerFF(opts.RawFITPerMB)
	res.Layers = layers
	res.RawPerFF = raw
	res.FIT, err = fit.Compute(cfg, raw, layers)
	if err != nil {
		return nil, err
	}
	res.FITProtected, err = fit.ComputeProtected(cfg, raw, layers)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// SensitivityBounds recomputes the FIT rate under perturbed estimates: the
// FF count scaled by ±ffDelta and every Prob_inactive scaled by ±actDelta
// (clamped to [0, 1]). This is the paper's sensitivity-analysis mode for
// early design phases, where the microarchitectural inputs are estimates:
// the bounds bracket the FIT rate without re-running any injections.
func SensitivityBounds(cfg *accel.Config, res *StudyResult, ffDelta, actDelta float64) (lo, hi float64, err error) {
	if res.Layers == nil {
		return 0, 0, fmt.Errorf("campaign: study result carries no layer stats")
	}
	if ffDelta < 0 || ffDelta >= 1 || actDelta < 0 || actDelta > 1 {
		return 0, 0, fmt.Errorf("campaign: deltas out of range (ff=%v, act=%v)", ffDelta, actDelta)
	}
	eval := func(ffScale, actScale float64) (float64, error) {
		c := *cfg
		c.NumFFs = int(float64(cfg.NumFFs) * ffScale)
		if c.NumFFs < 1 {
			c.NumFFs = 1
		}
		layers := make([]fit.LayerStats, len(res.Layers))
		for i, l := range res.Layers {
			m := fit.LayerStats{
				Layer: l.Layer, ExecTime: l.ExecTime,
				ProbInactive: map[accel.Category]float64{},
				ProbMasked:   l.ProbMasked,
			}
			for cat, p := range l.ProbInactive {
				p *= actScale
				if p > 1 {
					p = 1
				}
				m.ProbInactive[cat] = p
			}
			layers[i] = m
		}
		r, err := fit.Compute(&c, res.RawPerFF, layers)
		if err != nil {
			return 0, err
		}
		return r.Total, nil
	}
	// Worst case: more FFs, less inactivity. Best case: the opposite.
	hi, err = eval(1+ffDelta, 1-actDelta)
	if err != nil {
		return 0, 0, err
	}
	lo, err = eval(1-ffDelta, 1+actDelta)
	if err != nil {
		return 0, 0, err
	}
	return lo, hi, nil
}

package campaign

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"fidelity/internal/accel"
	"fidelity/internal/dataset"
	"fidelity/internal/faultmodel"
	"fidelity/internal/fit"
	"fidelity/internal/inject"
	"fidelity/internal/model"
	"fidelity/internal/nn"
	"fidelity/internal/telemetry"
	"fidelity/internal/tensor"
)

// DefaultShards is the number of logical sampling shards a study splits its
// experiment space into when StudyOptions.Shards is zero. Shards — not
// workers — own the deterministic random streams, so results depend only on
// (Seed, Shards), never on the worker count.
const DefaultShards = 16

// DefaultExperimentBatch is the shard loop's experiment batch window when
// StudyOptions.ExperimentBatch is zero: consecutive flat-mode experiments are
// pre-drawn, grouped by their target site execution, and run group by group
// so same-site experiments amortize one golden prefix and one arena working
// set. Batching changes execution order only — every experiment draws its
// whole stream from a cursor-derived seed and tallies commit in cursor order
// at batch boundaries, so results and checkpoints are byte-identical to an
// unbatched run.
const DefaultExperimentBatch = 64

// StudyOptions parameterizes a Sec. V resilience study for one workload.
type StudyOptions struct {
	// Samples is the number of fault-injection experiments per software
	// fault model (the paper uses statistically significant counts; the
	// Wilson half-width of the masking estimates is reported).
	Samples int
	// TargetCI switches the campaign to adaptive stratified sampling:
	// instead of a fixed Samples per fault model, every (layer, fault-model)
	// stratum runs until its masking estimate's 95% Wilson half-width is at
	// most TargetCI (or the worst-case bound SamplesFor(TargetCI) is spent).
	// Mutually exclusive with Samples; must be in (0, 0.5]. Experiments run
	// in rounds planned only at shard barriers from merged tallies in
	// canonical stratum order, so results stay a pure function of (Seed,
	// Shards, TargetCI) — never of Workers. Part of the campaign's
	// checkpoint identity (format v3).
	TargetCI float64
	// Inputs is the number of distinct dataset inputs to rotate through.
	Inputs int
	// Tolerance is the score tolerance for BLEU/detection metrics (0.1 or
	// 0.2 per Table IV; ignored for Top-1).
	Tolerance float64
	// Seed drives all sampling.
	Seed int64
	// RawFITPerMB is the raw FF FIT rate; 0 selects the paper's 600/MB.
	RawFITPerMB float64
	// Workers runs the injection experiments on this many goroutines
	// (0/1 = sequential). Workload networks are read-only during injection,
	// so sharding is safe. The worker count affects only wall-clock time:
	// experiments are partitioned into Shards deterministic streams, so any
	// Workers value produces identical tallies for a fixed Seed.
	Workers int
	// Shards is the number of independent deterministic sampling streams
	// (0 = DefaultShards). It is part of a study's identity: changing it
	// changes which experiments are drawn, like changing Seed.
	Shards int
	// PerLayer estimates Prob_SWmask(cat, r) separately for every layer r
	// (the exact Eq. 2 form) instead of one network-wide aggregate. The
	// experiment count multiplies by the number of layer executions.
	PerLayer bool

	// Hardening fingerprints the mitigation config installed on the
	// workload's network (harden.Config.Fingerprint; empty for unhardened
	// campaigns). It joins the checkpoint identity: clamps change every
	// experiment's forward pass, so a hardened campaign must never resume
	// from — or be resumed by — an unhardened one's checkpoint. It does not
	// otherwise affect execution; installing the clamps on the network is
	// the caller's job.
	Hardening string
	// CheckpointPath, when non-empty, is where the engine saves a resumable
	// JSON checkpoint: always on cancellation, and periodically every
	// CheckpointInterval while running (0 disables periodic saves).
	CheckpointPath     string
	CheckpointInterval time.Duration
	// Resume continues a previously interrupted study. A checkpoint whose
	// identity (workload, precision, tolerance, samples, inputs, seed,
	// shards, per-layer) does not match this study is ignored and the study
	// runs from scratch — so one checkpoint file can safely be offered to
	// every cell of a multi-workload figure.
	Resume *Checkpoint
	// Telemetry, when non-nil, receives per-experiment outcome counts,
	// per-phase wall-clock timings, and the supervisor's recovery counters.
	Telemetry *telemetry.Collector
	// ExperimentTimeout bounds one injection experiment's wall-clock time.
	// A positive value runs every experiment under a per-shard watchdog: an
	// experiment that exceeds the deadline is abandoned on its goroutine,
	// quarantined, and the shard continues on a fresh injector. 0 disables
	// the watchdog and runs experiments inline.
	ExperimentTimeout time.Duration
	// FailureBudget caps, per shard and per run, how many experiments the
	// supervisor may quarantine (recovered panics plus timeouts) before the
	// shard stops contributing and the study degrades into a partial result
	// (StudyResult.Partial). 0 selects DefaultFailureBudget; negative means
	// unlimited.
	FailureBudget int
	// IORetries and IOBackoff bound the retry-with-exponential-backoff loop
	// around checkpoint saves, for transient I/O failures. Zero values
	// select DefaultIORetries and DefaultIOBackoff.
	IORetries int
	IOBackoff time.Duration
	// DisableReplay forces every experiment through the legacy full forward
	// pass instead of the incremental golden-replay engine. Results are
	// bit-identical either way (the replay engine's correctness bar), so the
	// flag is NOT part of a study's checkpoint identity: a checkpoint taken
	// with replay on may be resumed with replay off and vice versa.
	DisableReplay bool
	// DisableRegionSweep makes replayed recomputes cover whole layers instead
	// of only the dirty output region. Bit-identical either way; like
	// DisableReplay it is an escape hatch and differential-testing switch, and
	// NOT part of the checkpoint identity.
	DisableRegionSweep bool
	// ExperimentBatch sets the shard loop's experiment batch window: 0 selects
	// DefaultExperimentBatch, 1 (or negative) disables batching. Batching
	// groups consecutive flat-mode experiments by their predicted target site
	// and is a pure execution-order optimization — results and checkpoints are
	// byte-identical for every value, so it is NOT part of the checkpoint
	// identity.
	ExperimentBatch int
	// DisableGoldenShare makes every shard record its own golden trace per
	// input instead of sharing one recording across the run — the historical
	// per-shard behavior. The recordings are identical, so this is purely a
	// wall-clock switch (differential testing, benchmarking the old cost) and
	// NOT part of the checkpoint identity.
	DisableGoldenShare bool

	// chaos is the test-only failure injector of the chaos self-test
	// harness; always nil in production.
	chaos *chaosPolicy
	// observe is a test-only per-experiment observer, called for every
	// completed (non-quarantined) experiment.
	observe func(shard int, cur Cursor, id faultmodel.ID, r inject.Result)
	// golden shares one recorded golden trace per input across every shard
	// of a run (the trace is immutable during replay, so sharing is safe);
	// set by Study and RunShard before the shard states copy the options.
	// nil (e.g. options built by tests calling shard internals directly)
	// falls back to per-shard golden tracing.
	golden *goldenCache
}

// goldenCache memoizes the per-input golden state (sampled input tensor,
// clean inference, replay trace, sampling weights) so a run's shards record
// it once instead of once per shard. Keyed by input index: the workload and
// replay mode are fixed for the run the cache belongs to.
type goldenCache struct {
	mu      sync.Mutex
	entries map[int]*inject.Golden
}

func (c *goldenCache) get(w *model.Workload, input int, withReplay bool) (*inject.Golden, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if g, ok := c.entries[input]; ok {
		return g, nil
	}
	x, err := dataset.Sample(w.Dataset, input)
	if err != nil {
		return nil, err
	}
	g, err := inject.TraceGolden(w, x, withReplay)
	if err != nil {
		return nil, err
	}
	if c.entries == nil {
		c.entries = map[int]*inject.Golden{}
	}
	c.entries[input] = g
	return g, nil
}

// shards returns the resolved shard count.
func (o StudyOptions) shards() int {
	if o.Shards > 0 {
		return o.Shards
	}
	return DefaultShards
}

// validate rejects inconsistent sampling options: exactly one of Samples
// (fixed-count) and TargetCI (adaptive) must drive the campaign.
func (o StudyOptions) validate() error {
	if o.TargetCI > 0 {
		if o.Samples != 0 {
			return fmt.Errorf("campaign: Samples and TargetCI are mutually exclusive")
		}
		if o.TargetCI > 0.5 {
			return fmt.Errorf("campaign: TargetCI must be in (0, 0.5], got %v", o.TargetCI)
		}
		if o.Inputs <= 0 {
			return fmt.Errorf("campaign: Inputs must be positive")
		}
		return nil
	}
	if o.TargetCI < 0 {
		return fmt.Errorf("campaign: TargetCI must be in (0, 0.5], got %v", o.TargetCI)
	}
	if o.Samples <= 0 || o.Inputs <= 0 {
		return fmt.Errorf("campaign: Samples and Inputs must be positive")
	}
	return nil
}

// experimentBatch returns the resolved batch window (1 = unbatched).
func (o StudyOptions) experimentBatch() int {
	switch {
	case o.ExperimentBatch > 0:
		return o.ExperimentBatch
	case o.ExperimentBatch < 0:
		return 1
	default:
		return DefaultExperimentBatch
	}
}

// shardSeed derives the independent stream seed of one logical shard.
func shardSeed(seed int64, shard int) int64 { return seed*1_000_003 + int64(shard) }

// PerturbationStats is the Key Result 5 measurement over experiments that
// corrupt exactly one output neuron: application-error probability split by
// perturbation magnitude.
type PerturbationStats struct {
	// SmallFail is P(output error | single faulty neuron, |Δ| <= 100).
	SmallFail Proportion
	// LargeFail is P(output error | single faulty neuron, |Δ| > 100).
	LargeFail Proportion
}

// StudyResult is the full study output for one (workload, precision,
// tolerance) cell of Figs 4/5.
type StudyResult struct {
	Workload  string
	Precision string
	Tolerance float64
	// Masked holds Prob_SWmask per software fault model with its CI.
	Masked map[faultmodel.ID]*Proportion
	// FIT is the Eq. 2 result; FITProtected assumes global control FFs are
	// protected (Fig 6).
	FIT, FITProtected *fit.Result
	// Perturb is the Key Result 5 statistic.
	Perturb PerturbationStats
	// Experiments counts all injection runs performed (including any
	// restored from a resumed checkpoint).
	Experiments int
	// Layers retains the Eq. 2 per-layer inputs so FIT can be recomputed
	// under perturbed assumptions (sensitivity analysis) without re-running
	// the injection campaign.
	Layers []fit.LayerStats
	// RawPerFF is the per-FF raw FIT rate used.
	RawPerFF float64
	// Quarantined lists the experiments the supervision layer removed from
	// the campaign after framework failures (recovered panics, watchdog
	// timeouts), sorted by (shard, cursor). Their outcomes are excluded
	// from every statistic above.
	Quarantined []QuarantinedExperiment
	// Partial marks a degraded campaign: at least one shard stopped early
	// after exhausting its failure budget. The tallies cover only the
	// experiments that ran; resume from the saved checkpoint to complete
	// the study.
	Partial bool
}

// specsFromTrace derives the accelerator-level layer descriptions of a
// network from one traced inference — the workload input of Fig 3.
func specsFromTrace(w *model.Workload, execs []nn.SiteExecution) ([]accel.LayerSpec, error) {
	var specs []accel.LayerSpec
	for i, e := range execs {
		name := fmt.Sprintf("%s#%d", e.Site.Name(), e.Visit)
		switch s := e.Site.(type) {
		case *nn.Conv2D:
			os := e.OutShape
			inC := s.InC
			if s.Depthwise {
				inC = 1 // one filter per channel: reduction is the kernel window
			}
			specs = append(specs, accel.ConvSpec(name, os[0], os[1], os[2], os[3],
				s.KH, s.KW, inC, s.Stride, w.Net.Precision))
		case *nn.Dense:
			specs = append(specs, accel.FCSpec(name, e.InShape[0], s.In, s.Out, w.Net.Precision))
		case *nn.MatMulSite:
			m, k := e.InShape[0], e.InShape[1]
			n := e.OutShape[1]
			specs = append(specs, accel.MatMulSpec(name, m, k, n, w.Net.Precision))
		default:
			return nil, fmt.Errorf("campaign: execution %d has unsupported site type %T", i, e.Site)
		}
	}
	return specs, nil
}

// shardState is the runtime state of one logical shard. The running worker
// owns the tally fields exclusively; concurrent observers (the periodic
// checkpoint saver) read only the published snapshot under mu.
type shardState struct {
	index int
	seed  int64

	// Campaign bindings, set once before the workers start.
	w      *model.Workload
	models []faultmodel.Model
	opts   StudyOptions

	// Owned by the worker executing the shard. sampler and inj are replaced
	// wholesale after a watchdog kill: the abandoned experiment goroutine
	// may still be touching the old pair, so they are never reused.
	sampler  *faultmodel.Sampler
	inj      *inject.Injector
	input    *tensor.Tensor
	inputIdx int

	masked       map[faultmodel.ID]*Proportion
	perLayer     []map[faultmodel.ID]*Proportion
	perturb      PerturbationStats
	experiments  int
	cursor       Cursor
	adaptive     *AdaptiveShardState // round state; nil in fixed-count campaigns
	quarantine   []QuarantinedExperiment
	quarantined  map[Cursor]bool
	failures     int // quarantines charged to this run's failure budget
	sincePublish int
	publishEvery int // experiment cadence between published snapshots
	done         bool
	err          error

	mu        sync.Mutex
	published ShardCheckpoint
}

// ErrShardExhausted aborts a shard's run after its failure budget is spent:
// the shard's published checkpoint stays consistent and resumable, and a
// study containing such a shard degrades to a partial result instead of
// failing. RunShard surfaces it so distributed workers can report a degraded
// (rather than completed or failed) shard to their coordinator.
var ErrShardExhausted = errors.New("campaign: shard failure budget exhausted")

func newShardState(index int, seed int64, w *model.Workload, models []faultmodel.Model, opts StudyOptions) *shardState {
	sh := &shardState{
		index:        index,
		seed:         seed,
		w:            w,
		models:       models,
		opts:         opts,
		masked:       map[faultmodel.ID]*Proportion{},
		publishEvery: defaultPublishEvery,
	}
	for _, id := range faultmodel.AllIDs() {
		sh.masked[id] = &Proportion{}
	}
	sh.publish(Cursor{})
	return sh
}

// restore loads a shard checkpoint into the live state.
func (sh *shardState) restore(sc ShardCheckpoint) {
	sh.cursor = sc.Cursor
	sh.done = sc.Done
	sh.experiments = sc.Experiments
	sh.perturb = sc.Perturb
	for id, p := range sc.Masked {
		cp := p
		sh.masked[id] = &cp
	}
	if sc.PerLayer != nil {
		sh.perLayer = make([]map[faultmodel.ID]*Proportion, len(sc.PerLayer))
		for e, m := range sc.PerLayer {
			sh.perLayer[e] = map[faultmodel.ID]*Proportion{}
			for _, id := range faultmodel.AllIDs() {
				cp := m[id]
				sh.perLayer[e][id] = &cp
			}
		}
	}
	sh.adaptive = sc.Adaptive.clone()
	sh.quarantine = append([]QuarantinedExperiment(nil), sc.Quarantine...)
	if len(sh.quarantine) > 0 {
		sh.quarantined = make(map[Cursor]bool, len(sh.quarantine))
		for _, q := range sh.quarantine {
			sh.quarantined[q.Cursor] = true
		}
	}
	sh.publish(sh.cursor)
}

// publish snapshots the live state as a consistent ShardCheckpoint whose
// cursor names the next experiment to run. Called by the owning worker at
// experiment boundaries only, so tallies, quarantine and cursor always
// agree.
func (sh *shardState) publish(cur Cursor) {
	sc := ShardCheckpoint{
		Index:       sh.index,
		Done:        sh.done,
		Cursor:      cur,
		Experiments: sh.experiments,
		Perturb:     sh.perturb,
		Masked:      make(map[faultmodel.ID]Proportion, len(sh.masked)),
		Quarantine:  append([]QuarantinedExperiment(nil), sh.quarantine...),
		Adaptive:    sh.adaptive.clone(),
	}
	for id, p := range sh.masked {
		sc.Masked[id] = *p
	}
	if sh.perLayer != nil {
		sc.PerLayer = make([]map[faultmodel.ID]Proportion, len(sh.perLayer))
		for e, m := range sh.perLayer {
			sc.PerLayer[e] = make(map[faultmodel.ID]Proportion, len(m))
			for id, p := range m {
				sc.PerLayer[e][id] = *p
			}
		}
	}
	sh.mu.Lock()
	sh.published = sc
	sh.mu.Unlock()
}

// snapshot returns the last published consistent state.
func (sh *shardState) snapshot() ShardCheckpoint {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.published
}

// defaultPublishEvery is the experiment cadence at which a running shard
// refreshes its published snapshot for the periodic checkpoint saver.
// ShardRun.PublishEvery overrides it for distributed workers that stream
// finer-grained checkpoints to their coordinator.
const defaultPublishEvery = 64

// boundary pauses at an experiment boundary: ctx is checked and the
// published snapshot refreshed before the cursor's experiment runs.
func (sh *shardState) boundary(ctx context.Context, cur Cursor) error {
	if err := ctx.Err(); err != nil {
		sh.cursor = cur
		sh.publish(cur)
		return err
	}
	if sh.sincePublish++; sh.sincePublish >= sh.publishEvery {
		sh.sincePublish = 0
		sh.publish(cur)
	}
	return nil
}

// record tallies one completed experiment.
func (sh *shardState) record(layer int, id faultmodel.ID, r inject.Result) {
	sh.experiments++
	masked := r.Outcome == inject.Masked
	sh.masked[id].Add(masked)
	if layer >= 0 && sh.perLayer != nil {
		sh.perLayer[layer][id].Add(masked)
	}
	if r.FaultyNeurons == 1 {
		failed := !masked
		if r.MaxPerturbation <= 100 {
			sh.perturb.SmallFail.Add(failed)
		} else {
			sh.perturb.LargeFail.Add(failed)
		}
	}
	if tel := sh.opts.Telemetry; tel != nil {
		tel.RecordExperiment(id.String(), r.Outcome.String())
		if r.Replay != nil {
			tel.RecordReplay(r.Replay.Skipped, r.Replay.Recomputed, r.Replay.RegionSwept,
				r.Replay.ArenaReuses, r.Replay.MACsAvoided)
		}
		if r.Harden != nil {
			tel.RecordHarden(r.Harden.ClampApplications, r.Harden.Saturated)
		}
	}
}

// setInput samples input idx (or fetches it from the run's shared golden
// cache) and prepares the live injector for it.
func (sh *shardState) setInput(idx int) error {
	sh.inputIdx = idx
	if sh.opts.golden == nil {
		x, err := dataset.Sample(sh.w.Dataset, idx)
		if err != nil {
			return err
		}
		sh.input = x
	}
	if sh.inj == nil {
		return sh.ensureInjector()
	}
	return sh.prepare(sh.inj)
}

// prepare initializes inj for the shard's current input, going through the
// run's shared golden cache when the campaign provides one so all shards
// reuse one sampled input and one recorded trace per input instead of
// re-running the golden inference sixteen times.
func (sh *shardState) prepare(inj *inject.Injector) error {
	if sh.opts.golden == nil {
		return inj.Prepare(sh.input)
	}
	g, err := sh.opts.golden.get(sh.w, sh.inputIdx, !sh.opts.DisableReplay)
	if err != nil {
		return err
	}
	sh.input = g.Input()
	return inj.PrepareGolden(g)
}

// ensureInjector (re)builds the shard's sampler and injector — lazily after
// a watchdog kill abandoned the previous pair to a wedged goroutine.
func (sh *shardState) ensureInjector() error {
	if sh.sampler == nil {
		s, err := faultmodel.NewSampler(sh.models, sh.seed)
		if err != nil {
			return err
		}
		sh.sampler = s
	}
	if sh.inj == nil {
		inj := inject.New(sh.w, sh.sampler)
		inj.DisableReplay = sh.opts.DisableReplay
		inj.DisableRegionSweep = sh.opts.DisableRegionSweep
		if err := sh.prepare(inj); err != nil {
			return err
		}
		sh.inj = inj
	}
	return nil
}

// quarantineExperiment removes the experiment at cur from the campaign after
// a framework failure, recording it for the checkpoint and telemetry.
func (sh *shardState) quarantineExperiment(cur Cursor, id faultmodel.ID, ff *frameworkFault) {
	sh.quarantine = append(sh.quarantine, QuarantinedExperiment{
		Shard: sh.index, Cursor: cur, Model: id.String(),
		Reason: ff.reason, Detail: ff.detail,
	})
	if sh.quarantined == nil {
		sh.quarantined = map[Cursor]bool{}
	}
	sh.quarantined[cur] = true
	sh.failures++
	if tel := sh.opts.Telemetry; tel != nil {
		tel.RecordExperiment(id.String(), inject.FrameworkFault.String())
		tel.RecordQuarantine(sh.index, ff.reason)
		tel.SetShardBudget(sh.index, sh.failures, sh.opts.failureBudget(), false)
	}
}

// attempt executes the experiment at cur inside the recovery boundary,
// under the watchdog when a deadline is configured. A non-nil frameworkFault
// means the experiment must be quarantined; err is reserved for campaign
// failures (cancellation, invalid configuration).
func (sh *shardState) attempt(ctx context.Context, cur Cursor, id faultmodel.ID, execIdx int) (inject.Result, *frameworkFault, error) {
	if err := sh.ensureInjector(); err != nil {
		return inject.Result{}, nil, err
	}
	sh.sampler.Reseed(experimentSeed(sh.seed, cur))
	// Everything the experiment needs is captured by value or owned by it
	// exclusively: on a watchdog kill the shard abandons inj and sampler to
	// the zombie goroutine and continues on fresh ones, so they never race.
	inj := sh.inj
	shard, opts := sh.index, sh.opts
	run := func() (r inject.Result, ff *frameworkFault, err error) {
		defer func() {
			if p := recover(); p != nil {
				r, err = inject.Result{}, nil
				ff = &frameworkFault{reason: ReasonPanic, detail: fmt.Sprint(p)}
			}
		}()
		if c := opts.chaos; c != nil && c.experiment != nil {
			c.experiment(shard, cur)
		}
		if execIdx >= 0 {
			r, err = inj.RunAt(ctx, execIdx, id, opts.Tolerance)
		} else {
			r, err = inj.Run(ctx, id, opts.Tolerance)
		}
		return r, nil, err
	}
	if opts.ExperimentTimeout <= 0 {
		return run()
	}
	type outcome struct {
		r   inject.Result
		ff  *frameworkFault
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		r, ff, err := run()
		ch <- outcome{r, ff, err}
	}()
	timer := time.NewTimer(opts.ExperimentTimeout)
	defer timer.Stop()
	select {
	case o := <-ch:
		return o.r, o.ff, o.err
	case <-timer.C:
		// The experiment goroutine may be wedged, and Go cannot kill it:
		// abandon its injector and sampler so the shard continues on fresh
		// ones without racing the zombie, and let it exit into the buffered
		// channel whenever (if ever) it completes.
		sh.inj, sh.sampler = nil, nil
		return inject.Result{}, &frameworkFault{
			reason: ReasonTimeout,
			detail: fmt.Sprintf("exceeded %v", opts.ExperimentTimeout),
		}, nil
	}
}

// step supervises the single experiment at cur: checkpoint boundary,
// quarantine skip, recovery boundary, failure-budget accounting.
func (sh *shardState) step(ctx context.Context, cur Cursor, id faultmodel.ID, execIdx int) error {
	if err := sh.boundary(ctx, cur); err != nil {
		return err
	}
	if sh.quarantined[cur] {
		// Quarantined on a previous run: skip bit-identically. Experiment
		// streams are cursor-derived, so no draws need replaying.
		return nil
	}
	r, fault, err := sh.attempt(ctx, cur, id, execIdx)
	if err != nil {
		return err
	}
	if fault == nil {
		if sh.opts.observe != nil {
			sh.opts.observe(sh.index, cur, id, r)
		}
		sh.record(execIdx, id, r)
		return nil
	}
	sh.quarantineExperiment(cur, id, fault)
	if b := sh.opts.failureBudget(); b >= 0 && sh.failures > b {
		sh.cursor = cur
		sh.publish(cur)
		if tel := sh.opts.Telemetry; tel != nil {
			tel.SetShardBudget(sh.index, sh.failures, b, true)
		}
		return ErrShardExhausted
	}
	return nil
}

// batchEntry is one experiment of a site-grouped batch window.
type batchEntry struct {
	cur   Cursor
	exec  int  // predicted target execution: the grouping key
	skip  bool // quarantined on a previous run: no attempt, no commit
	r     inject.Result
	fault *frameworkFault
}

// stepBatch supervises a window of n consecutive flat-mode experiments
// starting at *cur, whose sample indices step by stride (1 in fixed-count
// campaigns; adaptive campaigns batch one input lane at a time, whose
// samples are Inputs apart). The window's experiments are pre-drawn (each
// target is predicted from its cursor-derived stream without touching the
// live sampler), stable-sorted by target execution so same-site experiments
// run back to back against one golden prefix and a warm arena working set,
// and executed in that grouped order. Shard state mutates only in the commit
// phase, in cursor order — so tallies, quarantine lists, failure-budget
// accounting and published checkpoints evolve exactly as n sequential steps
// would, and a cancellation mid-execution discards the partial batch and
// publishes the batch-start boundary. On success *cur advances past the
// window.
func (sh *shardState) stepBatch(ctx context.Context, cur *Cursor, id faultmodel.ID, n, stride int) error {
	start := *cur
	if err := ctx.Err(); err != nil {
		sh.cursor = start
		sh.publish(start)
		return err
	}
	if err := sh.ensureInjector(); err != nil {
		return err
	}

	// Pre-draw: predict each cursor's target execution. Prediction replays
	// the first draw of the experiment's own cursor-derived stream, so
	// grouping cannot change any value the experiment will draw.
	entries := make([]batchEntry, n)
	order := make([]*batchEntry, 0, n)
	for i := range entries {
		c := start
		c.Sample += i * stride
		entries[i].cur = c
		if sh.quarantined[c] {
			entries[i].skip = true
			continue
		}
		entries[i].exec = sh.inj.PredictTarget(experimentSeed(sh.seed, c))
		order = append(order, &entries[i])
	}
	sort.SliceStable(order, func(i, j int) bool { return order[i].exec < order[j].exec })

	// Execution phase, site-grouped order: results are buffered, nothing is
	// committed yet.
	groups := 0
	for i, e := range order {
		if i == 0 || e.exec != order[i-1].exec {
			groups++
		}
		if err := ctx.Err(); err != nil {
			sh.cursor = start
			sh.publish(start)
			return err
		}
		r, fault, err := sh.attempt(ctx, e.cur, id, -1)
		if err != nil {
			if isCancellation(err) {
				sh.cursor = start
				sh.publish(start)
			}
			return err
		}
		e.r, e.fault = r, fault
	}
	if tel := sh.opts.Telemetry; tel != nil && len(order) > 0 {
		tel.RecordBatch(groups, len(order))
	}

	// Commit phase, cursor order: the identical state evolution n sequential
	// step calls would produce, including the publish cadence and the
	// failure-budget stop point (results past an exhausting cursor are
	// discarded, exactly as a sequential shard would never have run them).
	for i := range entries {
		e := &entries[i]
		if err := sh.boundary(ctx, e.cur); err != nil {
			return err
		}
		if e.skip {
			continue
		}
		if e.fault == nil {
			if sh.opts.observe != nil {
				sh.opts.observe(sh.index, e.cur, id, e.r)
			}
			sh.record(-1, id, e.r)
			continue
		}
		sh.quarantineExperiment(e.cur, id, e.fault)
		if b := sh.opts.failureBudget(); b >= 0 && sh.failures > b {
			sh.cursor = e.cur
			sh.publish(e.cur)
			if tel := sh.opts.Telemetry; tel != nil {
				tel.SetShardBudget(sh.index, sh.failures, b, true)
			}
			return ErrShardExhausted
		}
	}
	cur.Sample += n * stride
	return nil
}

// run executes the shard's slice of the experiment space from its cursor.
// On context cancellation it publishes a consistent snapshot and returns the
// context's error; ErrShardExhausted degrades the shard; any other error is
// a campaign failure. Adaptive campaigns may also return nil with the shard
// not done: parked at a round barrier, waiting for the planner.
func (sh *shardState) run(ctx context.Context) error {
	if sh.opts.TargetCI > 0 {
		return sh.runAdaptive(ctx)
	}
	return sh.runFixed(ctx)
}

// runFixed is the fixed-count (Samples) campaign loop.
func (sh *shardState) runFixed(ctx context.Context) error {
	opts := sh.opts
	shards := opts.shards()
	ids := faultmodel.AllIDs()
	cur := sh.cursor

	for ; cur.Input < opts.Inputs; cur.Input, cur.Model = cur.Input+1, 0 {
		if err := sh.setInput(cur.Input); err != nil {
			return err
		}
		// The execution count is a function of the input alone, so it stays
		// valid across watchdog-forced injector rebuilds.
		nexec := sh.inj.Executions()
		// This shard's share of the per-(input, model) sample count.
		per := opts.Samples / opts.Inputs
		if cur.Input < opts.Samples%opts.Inputs {
			per++
		}
		mine := per / shards
		if sh.index < per%shards {
			mine++
		}
		if opts.PerLayer && sh.perLayer == nil {
			sh.perLayer = make([]map[faultmodel.ID]*Proportion, nexec)
			for e := range sh.perLayer {
				sh.perLayer[e] = map[faultmodel.ID]*Proportion{}
				for _, id := range faultmodel.AllIDs() {
					sh.perLayer[e][id] = &Proportion{}
				}
			}
		}
		for ; cur.Model < len(ids); cur.Model, cur.Exec, cur.Sample = cur.Model+1, 0, 0 {
			id := ids[cur.Model]
			// Global-control faults are modeled as always failing and never
			// pinned to a layer, so they take the flat loop in both modes.
			if opts.PerLayer && id != faultmodel.GlobalControl {
				for ; cur.Exec < nexec; cur.Exec, cur.Sample = cur.Exec+1, 0 {
					for ; cur.Sample < mine; cur.Sample++ {
						if err := sh.step(ctx, cur, id, cur.Exec); err != nil {
							return err
						}
					}
				}
				continue
			}
			// Flat mode: batch the sample loop. Global-control experiments
			// never draw a target (they classify without a forward pass), so
			// site grouping has nothing to amortize — they stay sequential.
			batch := opts.experimentBatch()
			if batch <= 1 || id == faultmodel.GlobalControl {
				for ; cur.Sample < mine; cur.Sample++ {
					if err := sh.step(ctx, cur, id, -1); err != nil {
						return err
					}
				}
				continue
			}
			for cur.Sample < mine {
				n := batch
				if rem := mine - cur.Sample; n > rem {
					n = rem
				}
				if err := sh.stepBatch(ctx, &cur, id, n, 1); err != nil {
					return err
				}
			}
		}
	}
	sh.done = true
	sh.cursor = Cursor{Input: opts.Inputs}
	sh.publish(sh.cursor)
	return nil
}

// dispatchShards runs every not-yet-done shard state through a pool of
// workers. Workers pull whole logical shards, so the partition of
// experiments onto random streams never depends on the worker count. On
// cancellation, shards still queued keep their initial (resumable)
// published state.
func dispatchShards(ctx context.Context, states []*shardState, workers int) {
	jobs := make(chan *shardState)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for sh := range jobs {
				if sh.done {
					continue
				}
				sh.err = sh.run(ctx)
			}
		}()
	}
feed:
	for _, sh := range states {
		select {
		case jobs <- sh:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
}

// assembleCheckpoint collects every shard's last published snapshot into one
// resumable campaign checkpoint.
func assembleCheckpoint(cfg *accel.Config, w *model.Workload, opts StudyOptions, states []*shardState) *Checkpoint {
	finals := make([]ShardCheckpoint, len(states))
	for i, sh := range states {
		finals[i] = sh.snapshot()
	}
	return NewCheckpoint(cfg, w, opts, finals)
}

func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

func phaseStart(tel *telemetry.Collector, name string) {
	if tel != nil {
		tel.StartPhase(name)
	}
}

func phaseEnd(tel *telemetry.Collector, name string) {
	if tel != nil {
		tel.EndPhase(name)
	}
}

// Study runs the fault-injection study for one workload on design cfg and
// computes its Accelerator_FIT_rate.
//
// The campaign is cancellable, resumable and observable: cancelling ctx
// stops every worker at an experiment boundary and returns *Interrupted
// carrying a checkpoint (also saved to opts.CheckpointPath when set) from
// which opts.Resume continues the study to the identical StudyResult an
// uninterrupted run would have produced.
func Study(ctx context.Context, cfg *accel.Config, w *model.Workload, opts StudyOptions) (*StudyResult, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	tel := opts.Telemetry
	models, err := faultmodel.Derive(cfg)
	if err != nil {
		return nil, err
	}

	// Trace once for the Eq. 2 layer specs.
	phaseStart(tel, "trace")
	x0, err := dataset.Sample(w.Dataset, 0)
	if err != nil {
		phaseEnd(tel, "trace")
		return nil, err
	}
	_, execs := w.Net.Trace(x0)
	phaseEnd(tel, "trace")

	// Build the logical shards, restoring from a matching checkpoint. All
	// shards of this run share one golden trace per input.
	if !opts.DisableGoldenShare {
		opts.golden = &goldenCache{}
	}
	shards := opts.shards()
	states := make([]*shardState, shards)
	resume := opts.Resume
	if resume != nil && !resume.Matches(cfg, w, opts, shards) {
		resume = nil
	}
	for s := range states {
		states[s] = newShardState(s, shardSeed(opts.Seed, s), w, models, opts)
		if resume != nil {
			states[s].restore(resume.Shard[s])
		}
	}

	// Periodic checkpoint saver: assembles the shards' published snapshots.
	stopSaver := func() {}
	if opts.CheckpointPath != "" && opts.CheckpointInterval > 0 {
		stop := make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			t := time.NewTicker(opts.CheckpointInterval)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					// Best-effort: a failed periodic save must not kill the
					// campaign; the on-cancel save reports errors.
					_ = saveCheckpoint(assembleCheckpoint(cfg, w, opts, states), opts.CheckpointPath, opts)
				case <-stop:
					return
				}
			}
		}()
		stopSaver = func() { close(stop); <-done }
	}

	// Worker pool: workers pull whole logical shards, so the partition of
	// experiments onto random streams never depends on the worker count.
	workers := opts.Workers
	if workers <= 1 {
		workers = 1
	}
	if workers > shards {
		workers = shards
	}
	phaseStart(tel, "inject")
	tilesBase := nn.TileCount()
	if opts.TargetCI > 0 {
		runAdaptiveCampaign(ctx, states, workers, StrataFor(opts.PerLayer, len(execs)), opts)
	} else {
		dispatchShards(ctx, states, workers)
	}
	phaseEnd(tel, "inject")
	if tel != nil {
		// Tile counts are process-wide; the delta attributes this study's
		// inject phase (approximate when studies run concurrently).
		tel.AddKernelTiles(nn.TileCount() - tilesBase)
	}
	stopSaver()

	interrupted, partial := false, false
	for _, sh := range states {
		switch {
		case errors.Is(sh.err, ErrShardExhausted):
			partial = true // the shard degraded but its published state is consistent
		case sh.err == nil && !sh.done:
			interrupted = true // never started before cancellation
		case sh.err != nil && isCancellation(sh.err):
			interrupted = true
		case sh.err != nil:
			return nil, sh.err
		}
	}
	if interrupted {
		cp := assembleCheckpoint(cfg, w, opts, states)
		path := ""
		if opts.CheckpointPath != "" {
			if err := saveCheckpoint(cp, opts.CheckpointPath, opts); err != nil {
				return nil, fmt.Errorf("campaign: interrupted, and saving the checkpoint failed: %w", err)
			}
			path = opts.CheckpointPath
		}
		return nil, &Interrupted{Checkpoint: cp, Path: path, Cause: context.Cause(ctx)}
	}
	if partial && opts.CheckpointPath != "" {
		// Best-effort: the partial result is flagged either way, and the
		// checkpoint lets a later run (with the failure fixed) complete it.
		_ = saveCheckpoint(assembleCheckpoint(cfg, w, opts, states), opts.CheckpointPath, opts)
	}
	// Assemble the result from the shards' final published snapshots — the
	// identical code path a distributed coordinator runs on the checkpoints
	// it collected from remote workers, so an in-process study and a fabric
	// run with the same (Seed, Shards) produce byte-identical StudyResult
	// JSON. The snapshots are exact here: every terminal shard (done or
	// budget-exhausted) published its final state before returning, and
	// assembleResult re-derives Partial from the non-done shards.
	finals := make([]ShardCheckpoint, len(states))
	for i, sh := range states {
		finals[i] = sh.snapshot()
	}
	return assembleResult(cfg, w, opts, finals, execs, models)
}

// SensitivityBounds recomputes the FIT rate under perturbed estimates: the
// FF count scaled by ±ffDelta and every Prob_inactive scaled by ±actDelta
// (clamped to [0, 1]). This is the paper's sensitivity-analysis mode for
// early design phases, where the microarchitectural inputs are estimates:
// the bounds bracket the FIT rate without re-running any injections.
func SensitivityBounds(ctx context.Context, cfg *accel.Config, res *StudyResult, ffDelta, actDelta float64) (lo, hi float64, err error) {
	if res.Layers == nil {
		return 0, 0, fmt.Errorf("campaign: study result carries no layer stats")
	}
	if ffDelta < 0 || ffDelta >= 1 || actDelta < 0 || actDelta > 1 {
		return 0, 0, fmt.Errorf("campaign: deltas out of range (ff=%v, act=%v)", ffDelta, actDelta)
	}
	eval := func(ffScale, actScale float64) (float64, error) {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		c := *cfg
		c.NumFFs = int(float64(cfg.NumFFs) * ffScale)
		if c.NumFFs < 1 {
			c.NumFFs = 1
		}
		layers := make([]fit.LayerStats, len(res.Layers))
		for i, l := range res.Layers {
			m := fit.LayerStats{
				Layer: l.Layer, ExecTime: l.ExecTime,
				ProbInactive: map[accel.Category]float64{},
				ProbMasked:   l.ProbMasked,
			}
			for cat, p := range l.ProbInactive {
				p *= actScale
				if p > 1 {
					p = 1
				}
				m.ProbInactive[cat] = p
			}
			layers[i] = m
		}
		r, err := fit.Compute(&c, res.RawPerFF, layers)
		if err != nil {
			return 0, err
		}
		return r.Total, nil
	}
	// Worst case: more FFs, less inactivity. Best case: the opposite.
	hi, err = eval(1+ffDelta, 1-actDelta)
	if err != nil {
		return 0, 0, err
	}
	lo, err = eval(1-ffDelta, 1+actDelta)
	if err != nil {
		return 0, 0, err
	}
	return lo, hi, nil
}

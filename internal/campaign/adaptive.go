package campaign

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"fidelity/internal/dataset"
	"fidelity/internal/faultmodel"
	"fidelity/internal/model"
	"fidelity/internal/telemetry"
)

// Adaptive stratified sampling (StudyOptions.TargetCI): instead of a fixed
// Samples per fault model, the campaign runs rounds of experiments and stops
// each (layer, fault-model) stratum once its masking estimate's 95% Wilson
// half-width reaches the target. Between rounds the remaining budget is
// re-allocated to the high-variance strata (Neyman allocation).
//
// The determinism design: all stopping and allocation decisions happen only
// at shard barriers — points where every shard has either finished its
// current round, completed, or degraded. The planner (PlanRound) is a pure
// function of the merged shard tallies in canonical stratum order, and its
// decisions are recorded as the per-round allocation History in every
// shard's checkpoint. Shards never plan; they replay the recorded rounds.
// Results are therefore a byte-identical function of (Seed, Shards,
// TargetCI) across any worker count, through interrupt/resume, and through
// the distributed lease protocol.

// adaptiveInitialSamples is round 0's per-stratum allocation (capped at the
// worst-case bound SamplesFor(TargetCI)): enough trials for the Neyman
// weights to see real variance before the budget starts chasing it.
const adaptiveInitialSamples = 32

// Stratum identifies one adaptive sampling stratum: a fault model (index
// into faultmodel.AllIDs) and, in per-layer campaigns, the target layer
// execution. Exec is -1 for network-wide (flat) strata.
type Stratum struct {
	Model int
	Exec  int
}

// AdaptiveShardState is the round state an adaptive campaign records in
// every shard checkpoint.
type AdaptiveShardState struct {
	// Round counts the rounds this shard has fully executed. Round equal to
	// len(History) with a zero cursor means the shard is parked at the round
	// barrier, waiting for the planner.
	Round int `json:"round"`
	// History[r] is round r's campaign-global per-stratum allocation, in
	// canonical stratum order. Every shard carries the full history, so a
	// single shard checkpoint is self-contained for re-lease and audit.
	History [][]int `json:"history,omitempty"`
	// Final marks a converged campaign: once every recorded round has been
	// executed the shard completes instead of parking for another round.
	Final bool `json:"final,omitempty"`
}

func (a *AdaptiveShardState) clone() *AdaptiveShardState {
	if a == nil {
		return nil
	}
	return &AdaptiveShardState{Round: a.Round, History: CloneHistory(a.History), Final: a.Final}
}

// CloneHistory deep-copies a per-round allocation history, preserving nil.
func CloneHistory(h [][]int) [][]int {
	if h == nil {
		return nil
	}
	out := make([][]int, len(h))
	for i, row := range h {
		out[i] = append([]int(nil), row...)
	}
	return out
}

// StrataFor returns the canonical stratum order of a campaign: fault models
// in faultmodel.AllIDs order, and within each model (per-layer mode) the
// layer executions in ascending order. Global-control faults are never
// pinned to a layer, so they keep a single flat stratum in both modes.
func StrataFor(perLayer bool, nexec int) []Stratum {
	ids := faultmodel.AllIDs()
	var strata []Stratum
	for m, id := range ids {
		if perLayer && id != faultmodel.GlobalControl {
			for e := 0; e < nexec; e++ {
				strata = append(strata, Stratum{Model: m, Exec: e})
			}
			continue
		}
		strata = append(strata, Stratum{Model: m, Exec: -1})
	}
	return strata
}

// CampaignStrata derives the stratum list of (w, opts), tracing one clean
// inference for the layer-execution count in per-layer mode — the same trace
// Study and AssembleResult use, so the planner and the shards always agree.
func CampaignStrata(w *model.Workload, opts StudyOptions) ([]Stratum, error) {
	if !opts.PerLayer {
		return StrataFor(false, 0), nil
	}
	x0, err := dataset.Sample(w.Dataset, 0)
	if err != nil {
		return nil, err
	}
	_, execs := w.Net.Trace(x0)
	return StrataFor(true, len(execs)), nil
}

// StrataTallies merges the shard checkpoints' Proportion accumulators into
// one tally per stratum, in canonical stratum order. Map lookups are by
// fixed key, so the result is independent of map iteration order.
func StrataTallies(strata []Stratum, shards []ShardCheckpoint) []Proportion {
	ids := faultmodel.AllIDs()
	out := make([]Proportion, len(strata))
	for si, st := range strata {
		id := ids[st.Model]
		for _, sc := range shards {
			var p Proportion
			if st.Exec < 0 {
				p = sc.Masked[id]
			} else if st.Exec < len(sc.PerLayer) && sc.PerLayer[st.Exec] != nil {
				p = sc.PerLayer[st.Exec][id]
			}
			out[si].Successes += p.Successes
			out[si].Trials += p.Trials
		}
	}
	return out
}

// allocatedTotals sums the history's per-stratum allocations.
func allocatedTotals(nstrata int, history [][]int) []int {
	allocated := make([]int, nstrata)
	for _, row := range history {
		for s := 0; s < nstrata && s < len(row); s++ {
			allocated[s] += row[s]
		}
	}
	return allocated
}

// strataActive marks the strata that still need experiments: the observed
// half-width misses the target and the worst-case bound is not yet spent.
// Termination is guaranteed by the *allocated* count (monotone across
// rounds), not the executed count — a degraded shard that never runs its
// allocation must not keep the campaign planning forever.
func strataActive(tallies []Proportion, allocated []int, bound int, targetCI float64) []bool {
	active := make([]bool, len(tallies))
	for s := range tallies {
		if allocated[s] >= bound {
			continue
		}
		if allocated[s] > 0 && tallies[s].HalfWidth() <= targetCI {
			continue
		}
		active[s] = true
	}
	return active
}

// PlanRound computes the next round's per-stratum allocation from the merged
// tallies, or reports convergence. It is a pure function of its arguments —
// evaluated only by the planner (the in-process barrier loop or the
// distributed coordinator), never by shards, so float arithmetic happens at
// exactly one place per campaign.
//
// Round 0 seeds every stratum with adaptiveInitialSamples. Later rounds
// double the active strata's spent budget and split it by Neyman weights
// sqrt(p̃(1−p̃)) with the Agresti-Coull smoothed estimate p̃ = (s+2)/(n+4),
// rounded by largest remainder (ties to the lower stratum index), with at
// least one experiment per active stratum and a clamp to the worst-case
// per-stratum bound SamplesFor(targetCI).
func PlanRound(strata []Stratum, history [][]int, tallies []Proportion, targetCI float64) (next []int, converged bool) {
	bound := SamplesFor(targetCI)
	allocated := allocatedTotals(len(strata), history)
	active := strataActive(tallies, allocated, bound, targetCI)
	nactive := 0
	for _, a := range active {
		if a {
			nactive++
		}
	}
	if nactive == 0 {
		return nil, true
	}
	next = make([]int, len(strata))
	if len(history) == 0 {
		for s := range strata {
			next[s] = adaptiveInitialSamples
			if next[s] > bound {
				next[s] = bound
			}
		}
		return next, false
	}

	budget := 0
	for s := range strata {
		if active[s] {
			budget += allocated[s]
		}
	}
	if budget < nactive {
		budget = nactive
	}
	weights := make([]float64, len(strata))
	var sumW float64
	for s := range strata {
		if !active[s] {
			continue
		}
		pt := (float64(tallies[s].Successes) + 2) / (float64(tallies[s].Trials) + 4)
		weights[s] = math.Sqrt(pt * (1 - pt)) // strictly positive: pt ∈ (0, 1)
		sumW += weights[s]
	}
	rem := make([]float64, len(strata))
	floors := 0
	var order []int
	for s := range strata {
		if !active[s] {
			continue
		}
		share := float64(budget) * weights[s] / sumW
		f := math.Floor(share)
		next[s] = int(f)
		rem[s] = share - f
		floors += next[s]
		order = append(order, s)
	}
	// Largest-remainder rounding; SliceStable keeps equal remainders in
	// ascending stratum order.
	sort.SliceStable(order, func(i, j int) bool { return rem[order[i]] > rem[order[j]] })
	for j := 0; j < budget-floors && j < len(order); j++ {
		next[order[j]]++
	}
	for s := range strata {
		if !active[s] {
			next[s] = 0
			continue
		}
		if next[s] < 1 {
			next[s] = 1
		}
		if room := bound - allocated[s]; next[s] > room {
			next[s] = room
		}
	}
	return next, false
}

// AdaptiveHistory returns the campaign's allocation history from a set of
// shard checkpoints: the longest recorded history. Shards advance in
// lockstep, so any shorter history (a degraded shard frozen mid-campaign, or
// a periodic checkpoint that caught a barrier append halfway) is a prefix of
// the longest one.
func AdaptiveHistory(shards []ShardCheckpoint) [][]int {
	var history [][]int
	for _, sc := range shards {
		if sc.Adaptive != nil && len(sc.Adaptive.History) > len(history) {
			history = sc.Adaptive.History
		}
	}
	return history
}

// AdaptiveParked reports whether sc is parked at a round barrier: every
// recorded round executed, not yet told whether the campaign converged. The
// distributed coordinator holds such shards out of the lease pool until the
// planner extends or finalizes them.
func AdaptiveParked(sc ShardCheckpoint) bool {
	a := sc.Adaptive
	return a != nil && !sc.Done && !a.Final && sc.Cursor == (Cursor{}) && a.Round == len(a.History)
}

// FinalizeAdaptiveShard mutates a parked shard checkpoint into the canonical
// completed form — the exact bytes the shard itself would publish had it
// known the campaign was converged. The planner (in-process or coordinator)
// applies it to every parked shard at the converged barrier.
func FinalizeAdaptiveShard(sc *ShardCheckpoint, inputs int) {
	sc.Done = true
	sc.Cursor = Cursor{Input: inputs}
	sc.Adaptive.Final = true
}

// AdaptiveAuditResume builds the resume state an audit re-run of shard index
// starts from: empty tallies plus the converged campaign's full round
// history with Final set, so the auditor deterministically replays every
// round and must land on a checkpoint byte-identical to the primary's.
func AdaptiveAuditResume(index int, history [][]int) *ShardCheckpoint {
	sc := NewShardCheckpoint(index)
	sc.Adaptive = &AdaptiveShardState{History: CloneHistory(history), Final: true}
	return &sc
}

// ceilDiv is ceil(a/n) for n > 0, clamped at zero for non-positive a.
func ceilDiv(a, n int) int {
	if a <= 0 {
		return 0
	}
	return (a + n - 1) / n
}

// encExec maps a stratum's execution to its Cursor.Exec encoding: flat
// strata use 0, the cursor zero value (per-layer strata of the same model
// never collide with it because global control — the only flat stratum in
// per-layer mode — has no per-layer strata).
func encExec(st Stratum) int {
	if st.Exec < 0 {
		return 0
	}
	return st.Exec
}

// stratumForCursor inverts encExec: the index of the stratum a published
// cursor points into, or -1.
func stratumForCursor(strata []Stratum, cur Cursor) int {
	for si, st := range strata {
		if st.Model == cur.Model && encExec(st) == cur.Exec {
			return si
		}
	}
	return -1
}

// markAdaptiveDone completes the shard in the canonical done form shared by
// the in-process planner, the coordinator (FinalizeAdaptiveShard), and this
// shard-side path — all three must publish identical bytes.
func (sh *shardState) markAdaptiveDone() {
	sh.done = true
	sh.cursor = Cursor{Input: sh.opts.Inputs}
	sh.publish(sh.cursor)
}

// runAdaptive executes the shard's slice of every recorded adaptive round
// from its cursor, then either completes (Final) or parks at the round
// barrier for the planner. Stratum experiments are dealt round-robin across
// shards: campaign-global experiment g of a stratum runs on shard g mod
// Shards as its per-shard index k = g div Shards, with cursor
// {Input: k mod Inputs, Model, Exec, Sample: k} — unique per shard, so the
// cursor-derived experiment streams never collide and any shard count
// partitions the identical experiment set.
func (sh *shardState) runAdaptive(ctx context.Context) error {
	opts := sh.opts
	shards := opts.shards()
	ids := faultmodel.AllIDs()
	if sh.adaptive == nil {
		sh.adaptive = &AdaptiveShardState{}
	}
	a := sh.adaptive

	nexec := 0
	activeInput := -1
	if opts.PerLayer {
		// The execution count is a function of input 0 alone — the same
		// trace the planner's CampaignStrata uses.
		if err := sh.setInput(0); err != nil {
			return err
		}
		activeInput = 0
		nexec = sh.inj.Executions()
		if sh.perLayer == nil {
			sh.perLayer = make([]map[faultmodel.ID]*Proportion, nexec)
			for e := range sh.perLayer {
				sh.perLayer[e] = map[faultmodel.ID]*Proportion{}
				for _, id := range ids {
					sh.perLayer[e][id] = &Proportion{}
				}
			}
		}
	}
	strata := StrataFor(opts.PerLayer, nexec)
	setIn := func(i int) error {
		if activeInput == i {
			return nil
		}
		if err := sh.setInput(i); err != nil {
			return err
		}
		activeInput = i
		return nil
	}

	for a.Round < len(a.History) {
		alloc := a.History[a.Round]
		// The in-round resume position: published cursors name the next
		// experiment in (stratum, input, sample) order, and the zero cursor
		// (a fresh round) precedes everything.
		pos := sh.cursor
		posSi := stratumForCursor(strata, pos)
		if posSi < 0 {
			return fmt.Errorf("campaign: shard %d cursor %+v names no stratum of round %d", sh.index, pos, a.Round)
		}
		for si, st := range strata {
			if si < posSi || si >= len(alloc) {
				continue
			}
			base := 0
			for r := 0; r < a.Round; r++ {
				base += a.History[r][si]
			}
			kLo := ceilDiv(base-sh.index, shards)
			kHi := ceilDiv(base+alloc[si]-sh.index, shards)
			if kHi <= kLo {
				continue
			}
			id := ids[st.Model]
			for i := 0; i < opts.Inputs; i++ {
				if si == posSi && i < pos.Input {
					continue
				}
				// First per-shard index of this input's lane (k ≡ i mod Inputs).
				k := kLo + ((i-kLo)%opts.Inputs+opts.Inputs)%opts.Inputs
				if si == posSi && i == pos.Input && pos.Sample > k {
					k = pos.Sample
				}
				if k >= kHi {
					continue
				}
				if err := setIn(i); err != nil {
					return err
				}
				cur := Cursor{Input: i, Model: st.Model, Exec: encExec(st), Sample: k}
				// Flat strata batch by predicted target site exactly like the
				// fixed-count loop; per-layer strata pin the site already and
				// global control never draws one.
				batch := opts.experimentBatch()
				if st.Exec < 0 && id != faultmodel.GlobalControl && batch > 1 {
					for cur.Sample < kHi {
						n := ceilDiv(kHi-cur.Sample, opts.Inputs)
						if n > batch {
							n = batch
						}
						if err := sh.stepBatch(ctx, &cur, id, n, opts.Inputs); err != nil {
							return err
						}
					}
					continue
				}
				for ; cur.Sample < kHi; cur.Sample += opts.Inputs {
					if err := sh.step(ctx, cur, id, st.Exec); err != nil {
						return err
					}
				}
			}
		}
		a.Round++
		sh.cursor = Cursor{}
		sh.publish(sh.cursor)
	}
	if !a.Final {
		// Parked at the round barrier: the planner either appends the next
		// round's allocation or finalizes the shard. Publish the parked state
		// explicitly — a shard leased before any round is planned (empty
		// history) skips the round loop entirely, and its final report must
		// still carry the parked form, not a never-published zero checkpoint.
		sh.publish(sh.cursor)
		return nil
	}
	sh.markAdaptiveDone()
	return nil
}

// runAdaptiveCampaign is Study's round-barrier loop: dispatch every runnable
// shard, wait for the barrier, merge tallies in stratum order, and either
// record the next Neyman allocation in every parked shard or finalize them.
// It leaves classification (interrupt, partial, campaign failure) to the
// caller's inspection of the shard states, exactly like the fixed-count
// dispatch.
func runAdaptiveCampaign(ctx context.Context, states []*shardState, workers int, strata []Stratum, opts StudyOptions) {
	history := make([][]int, 0)
	for _, sh := range states {
		if sh.adaptive != nil && len(sh.adaptive.History) > len(history) {
			history = sh.adaptive.History
		}
	}
	for {
		// Runnable shards: not completed, not degraded. Heal short histories
		// first (a periodic checkpoint can catch the barrier append halfway
		// through the shard list): any shorter history is a prefix of the
		// campaign's, so extending it replays exactly the recorded rounds.
		var runnable []*shardState
		for _, sh := range states {
			if sh.done || sh.err != nil {
				continue
			}
			if sh.adaptive != nil && len(sh.adaptive.History) < len(history) {
				sh.adaptive.History = CloneHistory(history)
			}
			runnable = append(runnable, sh)
		}
		dispatchShards(ctx, runnable, workers)
		for _, sh := range states {
			if sh.err != nil && !errors.Is(sh.err, ErrShardExhausted) {
				return // campaign failure or cancellation: the caller classifies
			}
		}
		if ctx.Err() != nil {
			return // parked and unstarted shards keep resumable published state
		}

		// Round barrier: every shard is parked, done, or degraded. The merge
		// walks shards and strata in index order — no map iteration — so the
		// plan is a deterministic function of the tallies.
		finals := make([]ShardCheckpoint, len(states))
		for i, sh := range states {
			finals[i] = sh.snapshot()
		}
		tallies := StrataTallies(strata, finals)
		next, converged := PlanRound(strata, history, tallies, opts.TargetCI)
		publishStrataTelemetry(opts.Telemetry, strata, tallies, history, opts.TargetCI)
		if converged {
			for _, sh := range states {
				if !sh.done && sh.err == nil {
					sh.adaptive.Final = true
					sh.markAdaptiveDone()
				}
			}
			return
		}
		history = append(CloneHistory(history), next)
		for _, sh := range states {
			if sh.done || sh.err != nil {
				continue
			}
			sh.adaptive.History = CloneHistory(history)
			sh.publish(sh.cursor)
		}
	}
}

// StrataTelemetry builds the telemetry snapshot block of a round barrier:
// every stratum's merged tally, interval, and stopped flag, in canonical
// order. Both planners (the in-process barrier loop and the distributed
// coordinator) publish it so progress streams show per-stratum convergence.
func StrataTelemetry(strata []Stratum, tallies []Proportion, history [][]int, targetCI float64) telemetry.StrataSnapshot {
	bound := SamplesFor(targetCI)
	allocated := allocatedTotals(len(strata), history)
	active := strataActive(tallies, allocated, bound, targetCI)
	ids := faultmodel.AllIDs()
	states := make([]telemetry.StratumState, len(strata))
	for s, st := range strata {
		states[s] = telemetry.StratumState{
			Model:     ids[st.Model].String(),
			Exec:      st.Exec,
			N:         tallies[s].Trials,
			Mean:      tallies[s].Mean(),
			HalfWidth: tallies[s].HalfWidth(),
			Stopped:   !active[s],
		}
	}
	return telemetry.StrataSnapshot{
		Rounds:   len(history),
		TargetCI: targetCI,
		Strata:   states,
	}
}

// publishStrataTelemetry refreshes the collector's per-stratum snapshot
// block at a round barrier.
func publishStrataTelemetry(tel *telemetry.Collector, strata []Stratum, tallies []Proportion, history [][]int, targetCI float64) {
	if tel == nil {
		return
	}
	tel.SetStrata(StrataTelemetry(strata, tallies, history, targetCI))
}

package campaign

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fidelity/internal/accel"
	"fidelity/internal/model"
	"fidelity/internal/numerics"
)

// checkpointFixture builds a small campaign identity and a checkpoint that
// matches it exactly.
func checkpointFixture(t *testing.T) (*accel.Config, *model.Workload, StudyOptions, *Checkpoint) {
	t.Helper()
	cfg := accel.NVDLASmall()
	w, err := model.Build("mobilenet", numerics.FP16, 42)
	if err != nil {
		t.Fatal(err)
	}
	opts := StudyOptions{Samples: 8, Inputs: 1, Tolerance: 0.1, Seed: 5, Shards: 4}
	shards := make([]ShardCheckpoint, opts.shards())
	for i := range shards {
		shards[i] = NewShardCheckpoint(i)
	}
	cp := NewCheckpoint(cfg, w, opts, shards)
	if !cp.Matches(cfg, w, opts, opts.shards()) {
		t.Fatal("freshly assembled checkpoint does not match its own campaign")
	}
	return cfg, w, opts, cp
}

// TestCheckpointMatchesFingerprint: a checkpoint taken under one accelerator
// config must refuse to resume under a config with a different fingerprint —
// the campaign's results are a function of the config.
func TestCheckpointMatchesFingerprint(t *testing.T) {
	cfg, w, opts, cp := checkpointFixture(t)

	other := *cfg
	other.AtomicK *= 2
	if other.Fingerprint() == cfg.Fingerprint() {
		t.Fatal("perturbed config kept the same fingerprint; fixture is broken")
	}
	if cp.Matches(&other, w, opts, opts.shards()) {
		t.Errorf("checkpoint with config fingerprint %s matched a campaign under fingerprint %s",
			cp.Config, other.Fingerprint())
	}

	// Same structural config but a corrupted recorded fingerprint: also no.
	corrupt := *cp
	corrupt.Config = "not-a-fingerprint"
	if corrupt.Matches(cfg, w, opts, opts.shards()) {
		t.Error("checkpoint with a corrupted config fingerprint still matched")
	}
}

// TestCheckpointMatchesShardCount: the shard count is part of the campaign
// identity (it determines every shard's experiment stream), so a checkpoint
// must only match the shard count it was taken with — whether the mismatch
// is in the options or in a truncated shard list.
func TestCheckpointMatchesShardCount(t *testing.T) {
	cfg, w, opts, cp := checkpointFixture(t)

	moreShards := opts
	moreShards.Shards = opts.shards() * 2
	if cp.Matches(cfg, w, moreShards, moreShards.shards()) {
		t.Errorf("checkpoint taken with %d shards matched a campaign with %d", cp.Shards, moreShards.Shards)
	}

	// A checkpoint whose recorded count is right but whose shard list was
	// truncated (e.g. hand-edited or corrupted) must not match either: every
	// logical shard needs a resume state.
	truncated := *cp
	truncated.Shard = truncated.Shard[:len(truncated.Shard)-1]
	if truncated.Matches(cfg, w, opts, opts.shards()) {
		t.Errorf("checkpoint carrying %d of %d shard states still matched", len(truncated.Shard), cp.Shards)
	}
}

// TestCheckpointMatchesVersion: checkpoints from other format versions never
// match, so stale files degrade to a fresh campaign rather than a corrupt
// resume.
func TestCheckpointMatchesVersion(t *testing.T) {
	cfg, w, opts, cp := checkpointFixture(t)
	old := *cp
	old.Version = checkpointVersion - 1
	if old.Matches(cfg, w, opts, opts.shards()) {
		t.Errorf("version-%d checkpoint matched a version-%d campaign", old.Version, checkpointVersion)
	}
	// And a nil checkpoint matches nothing.
	var nilCP *Checkpoint
	if nilCP.Matches(cfg, w, opts, opts.shards()) {
		t.Error("nil checkpoint matched")
	}
}

// TestLoadCheckpointVersionRejection: loading an incompatible on-disk version
// fails with an error that names both versions and tells the operator what to
// do, instead of silently resuming garbage. v2 in particular must be refused:
// under v3's round-structured adaptive sampling a v2 cursor names a different
// experiment, so resuming one would silently produce wrong results.
func TestLoadCheckpointVersionRejection(t *testing.T) {
	_, _, _, cp := checkpointFixture(t)
	for _, version := range []int{1, 2} {
		cp.Version = version
		path := filepath.Join(t.TempDir(), "old.checkpoint.json")
		if err := cp.Save(path); err != nil {
			t.Fatal(err)
		}
		_, err := LoadCheckpoint(path)
		if err == nil {
			t.Fatalf("v%d checkpoint loaded without error", version)
		}
		msg := err.Error()
		for _, want := range []string{fmt.Sprintf("version %d", version), "want 3", "rerun the campaign"} {
			if !strings.Contains(msg, want) {
				t.Errorf("version-rejection error %q does not mention %q", msg, want)
			}
		}
	}
}

// TestLoadCheckpointCorrupt: unreadable and unparseable files surface as
// errors naming the problem, never as a zero-valued checkpoint.
func TestLoadCheckpointCorrupt(t *testing.T) {
	if _, err := LoadCheckpoint(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing checkpoint file loaded without error")
	}
	path := filepath.Join(t.TempDir(), "garbage.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := LoadCheckpoint(path)
	if err == nil {
		t.Fatal("garbage checkpoint parsed without error")
	}
	if !strings.Contains(err.Error(), "parse checkpoint") {
		t.Errorf("corrupt-file error %q does not say it failed to parse", err)
	}
}

// TestSealedJSONRoundTrip: the content-checksum envelope must round-trip a
// value exactly and be transparent to the reader.
func TestSealedJSONRoundTrip(t *testing.T) {
	_, _, _, cp := checkpointFixture(t)
	path := filepath.Join(t.TempDir(), "sealed.json")
	if err := AtomicWriteSealedJSON(path, cp); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), `"sealed"`) {
		t.Error("sealed file carries no envelope")
	}
	var back Checkpoint
	if err := ReadSealedJSON(path, &back); err != nil {
		t.Fatal(err)
	}
	wantSum, err := SumJSON(cp)
	if err != nil {
		t.Fatal(err)
	}
	gotSum, err := SumJSON(&back)
	if err != nil {
		t.Fatal(err)
	}
	if gotSum != wantSum {
		t.Error("sealed round-trip changed the payload")
	}
}

// TestSealedJSONDetectsTamper: any byte flipped inside the payload must fail
// the checksum with ErrCorruptArtifact — the detection the whole integrity
// model hangs on.
func TestSealedJSONDetectsTamper(t *testing.T) {
	_, _, _, cp := checkpointFixture(t)
	path := filepath.Join(t.TempDir(), "sealed.json")
	if err := AtomicWriteSealedJSON(path, cp); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Mutate payload content while keeping the JSON well-formed.
	mutated := strings.Replace(string(blob), `"shard"`, `"sHard"`, 1)
	if mutated == string(blob) {
		t.Fatal("tamper mutation found nothing to replace")
	}
	if err := os.WriteFile(path, []byte(mutated), 0o644); err != nil {
		t.Fatal(err)
	}
	var back Checkpoint
	err = ReadSealedJSON(path, &back)
	if !errors.Is(err, ErrCorruptArtifact) {
		t.Fatalf("tampered payload read error = %v, want ErrCorruptArtifact", err)
	}
}

// TestSealedJSONLegacyFallback: files written before the envelope existed —
// plain JSON, no "sealed" key — must still load (unverified), so old
// checkpoints and coordinator state stay usable.
func TestSealedJSONLegacyFallback(t *testing.T) {
	_, _, _, cp := checkpointFixture(t)
	path := filepath.Join(t.TempDir(), "legacy.json")
	if err := AtomicWriteJSON(path, cp); err != nil {
		t.Fatal(err)
	}
	var back Checkpoint
	if err := ReadSealedJSON(path, &back); err != nil {
		t.Fatalf("legacy plain-JSON file rejected: %v", err)
	}
	if back.Version != cp.Version || len(back.Shard) != len(cp.Shard) {
		t.Errorf("legacy load mangled the checkpoint: %+v", back)
	}
}

// TestCheckpointSaveSealedLoad: Checkpoint.Save now seals, and LoadCheckpoint
// verifies — a flipped byte in a saved campaign checkpoint is detected
// instead of resumed.
func TestCheckpointSaveSealedLoad(t *testing.T) {
	_, _, _, cp := checkpointFixture(t)
	path := filepath.Join(t.TempDir(), "campaign.checkpoint.json")
	if err := cp.Save(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path); err != nil {
		t.Fatalf("sealed checkpoint failed to load: %v", err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mutated := strings.Replace(string(blob), `"config"`, `"cOnfig"`, 1)
	if mutated == string(blob) {
		t.Fatal("tamper mutation found nothing to replace")
	}
	if err := os.WriteFile(path, []byte(mutated), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path); !errors.Is(err, ErrCorruptArtifact) {
		t.Fatalf("tampered checkpoint load error = %v, want ErrCorruptArtifact", err)
	}
}

package campaign

import (
	"context"
	"errors"
	"path/filepath"
	"testing"
	"time"

	"fidelity/internal/accel"
	"fidelity/internal/faultmodel"
	"fidelity/internal/model"
	"fidelity/internal/numerics"
	"fidelity/internal/telemetry"
)

// engineWorkload builds the cheapest workload for engine-behavior tests.
func engineWorkload(t *testing.T) *model.Workload {
	t.Helper()
	w, err := model.Build("mobilenet", numerics.FP16, 42)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// requireEqualResults asserts two study results carry identical tallies and
// FIT rates — the determinism contract of the campaign engine.
func requireEqualResults(t *testing.T, label string, a, b *StudyResult) {
	t.Helper()
	if a.Experiments != b.Experiments {
		t.Errorf("%s: experiments %d != %d", label, a.Experiments, b.Experiments)
	}
	for _, id := range faultmodel.AllIDs() {
		pa, pb := a.Masked[id], b.Masked[id]
		if pa.Successes != pb.Successes || pa.Trials != pb.Trials {
			t.Errorf("%s: %v tally %d/%d != %d/%d",
				label, id, pa.Successes, pa.Trials, pb.Successes, pb.Trials)
		}
	}
	if a.Perturb != b.Perturb {
		t.Errorf("%s: perturbation stats %+v != %+v", label, a.Perturb, b.Perturb)
	}
	if a.FIT.Total != b.FIT.Total {
		t.Errorf("%s: FIT %v != %v", label, a.FIT.Total, b.FIT.Total)
	}
	if a.FITProtected.Total != b.FITProtected.Total {
		t.Errorf("%s: protected FIT %v != %v", label, a.FITProtected.Total, b.FITProtected.Total)
	}
}

// TestStudyWorkerDeterminism is the engine's central invariant: experiments
// are partitioned onto logical shards, not workers, so the worker count only
// changes wall-clock time — never the tallies. Run with -race to also catch
// data races between the shard workers.
func TestStudyWorkerDeterminism(t *testing.T) {
	w := engineWorkload(t)
	cfg := accel.NVDLASmall()
	base := StudyOptions{Samples: 120, Inputs: 2, Tolerance: 0.1, Seed: 9}

	run := func(workers int) *StudyResult {
		opts := base
		opts.Workers = workers
		res, err := Study(context.Background(), cfg, w, opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res
	}
	serial := run(1)
	for _, workers := range []int{4, 16} {
		requireEqualResults(t, "workers=1 vs workers=4+", serial, run(workers))
	}
}

// TestStudyInterruptResume interrupts a campaign mid-flight, then resumes it —
// from the in-memory checkpoint, from the auto-saved checkpoint file, and from
// an explicit Save/LoadCheckpoint round trip — and requires every resumed run
// to reproduce the uninterrupted StudyResult exactly.
func TestStudyInterruptResume(t *testing.T) {
	w := engineWorkload(t)
	cfg := accel.NVDLASmall()
	base := StudyOptions{Samples: 240, Inputs: 2, Tolerance: 0.1, Seed: 11, Workers: 4}

	baseline, err := Study(context.Background(), cfg, w, base)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupt once the campaign is demonstrably mid-flight.
	ckptPath := filepath.Join(t.TempDir(), "study.checkpoint.json")
	tel := telemetry.New()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stop := make(chan struct{})
	go func() {
		defer cancel()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if tel.Experiments() >= 200 {
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	opts := base
	opts.Telemetry = tel
	opts.CheckpointPath = ckptPath
	_, err = Study(ctx, cfg, w, opts)
	close(stop)
	var intr *Interrupted
	if !errors.As(err, &intr) {
		t.Fatalf("interrupted study returned %v, want *Interrupted", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("Interrupted must unwrap to context.Canceled, got %v", err)
	}
	cp := intr.Checkpoint
	if cp.Experiments <= 0 || cp.Experiments >= baseline.Experiments {
		t.Fatalf("checkpoint holds %d experiments, want mid-campaign (0, %d)",
			cp.Experiments, baseline.Experiments)
	}
	if intr.Path != ckptPath {
		t.Errorf("Interrupted.Path = %q, want %q", intr.Path, ckptPath)
	}

	// Resume from the in-memory checkpoint.
	resume := base
	resume.Resume = cp
	res, err := Study(context.Background(), cfg, w, resume)
	if err != nil {
		t.Fatal(err)
	}
	requireEqualResults(t, "in-memory resume", baseline, res)

	// Resume from the checkpoint file Study saved on cancellation.
	saved, err := LoadCheckpoint(ckptPath)
	if err != nil {
		t.Fatal(err)
	}
	resume.Resume = saved
	res, err = Study(context.Background(), cfg, w, resume)
	if err != nil {
		t.Fatal(err)
	}
	requireEqualResults(t, "auto-saved file resume", baseline, res)

	// Explicit Save → LoadCheckpoint round trip.
	rtPath := filepath.Join(t.TempDir(), "roundtrip.json")
	if err := cp.Save(rtPath); err != nil {
		t.Fatal(err)
	}
	rt, err := LoadCheckpoint(rtPath)
	if err != nil {
		t.Fatal(err)
	}
	resume.Resume = rt
	res, err = Study(context.Background(), cfg, w, resume)
	if err != nil {
		t.Fatal(err)
	}
	requireEqualResults(t, "save/load round trip resume", baseline, res)
}

// TestStudyCancelBeforeStart: a context cancelled before the first experiment
// yields an empty (but well-formed, resumable) checkpoint.
func TestStudyCancelBeforeStart(t *testing.T) {
	w := engineWorkload(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	base := StudyOptions{Samples: 40, Inputs: 2, Tolerance: 0.1, Seed: 3}
	_, err := Study(ctx, accel.NVDLASmall(), w, base)
	var intr *Interrupted
	if !errors.As(err, &intr) {
		t.Fatalf("got %v, want *Interrupted", err)
	}
	if intr.Checkpoint.Experiments != 0 {
		t.Errorf("pre-cancelled study ran %d experiments", intr.Checkpoint.Experiments)
	}
	resume := base
	resume.Resume = intr.Checkpoint
	res, err := Study(context.Background(), accel.NVDLASmall(), w, resume)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := Study(context.Background(), accel.NVDLASmall(), w, base)
	if err != nil {
		t.Fatal(err)
	}
	requireEqualResults(t, "empty-checkpoint resume vs fresh", fresh, res)
}

// TestStudyMismatchedResumeIgnored: a checkpoint from a different campaign
// must not contaminate the study — it is ignored and the run starts fresh.
func TestStudyMismatchedResumeIgnored(t *testing.T) {
	w := engineWorkload(t)
	cfg := accel.NVDLASmall()
	base := StudyOptions{Samples: 40, Inputs: 2, Tolerance: 0.1, Seed: 3}

	fresh, err := Study(context.Background(), cfg, w, base)
	if err != nil {
		t.Fatal(err)
	}

	// Fabricate a mid-flight checkpoint of a *different* campaign (other
	// seed and sample count) by cancelling it immediately.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	other := base
	other.Seed, other.Samples = 99, 80
	_, err = Study(ctx, cfg, w, other)
	var intr *Interrupted
	if !errors.As(err, &intr) {
		t.Fatalf("got %v, want *Interrupted", err)
	}

	resume := base
	resume.Resume = intr.Checkpoint
	res, err := Study(context.Background(), cfg, w, resume)
	if err != nil {
		t.Fatal(err)
	}
	requireEqualResults(t, "mismatched checkpoint ignored", fresh, res)
}

// TestCheckpointConfigFingerprint: a checkpoint pins the accelerator config
// by fingerprint — resuming the same campaign options under a different
// design must not reuse it, since the results are a function of the config.
func TestCheckpointConfigFingerprint(t *testing.T) {
	w := engineWorkload(t)
	cfgA := accel.NVDLASmall()
	base := StudyOptions{Samples: 40, Inputs: 2, Tolerance: 0.1, Seed: 3}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Study(ctx, cfgA, w, base)
	var intr *Interrupted
	if !errors.As(err, &intr) {
		t.Fatalf("got %v, want *Interrupted", err)
	}
	cp := intr.Checkpoint
	if cp.Config != cfgA.Fingerprint() {
		t.Errorf("checkpoint config %q, want fingerprint %q", cp.Config, cfgA.Fingerprint())
	}
	if !cp.Matches(cfgA, w, base, base.shards()) {
		t.Error("checkpoint rejects the config that produced it")
	}
	cfgB := *cfgA
	cfgB.NumFFs++
	if cp.Matches(&cfgB, w, base, base.shards()) {
		t.Error("checkpoint accepted a different accelerator config")
	}
}

// TestStudyTelemetryCounts: the collector's experiment counter and per-model
// outcome tallies must agree with the StudyResult.
func TestStudyTelemetryCounts(t *testing.T) {
	w := engineWorkload(t)
	tel := telemetry.New()
	opts := StudyOptions{Samples: 40, Inputs: 2, Tolerance: 0.1, Seed: 5, Workers: 4, Telemetry: tel}
	res, err := Study(context.Background(), accel.NVDLASmall(), w, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := tel.Experiments(); got != int64(res.Experiments) {
		t.Errorf("telemetry experiments = %d, result = %d", got, res.Experiments)
	}
	snap := tel.Snapshot()
	if len(snap.Models) != len(faultmodel.AllIDs()) {
		t.Errorf("telemetry models = %d, want %d", len(snap.Models), len(faultmodel.AllIDs()))
	}
	var phases []string
	for _, p := range snap.Phases {
		phases = append(phases, p.Name)
	}
	for _, want := range []string{"trace", "inject", "fit"} {
		found := false
		for _, p := range phases {
			if p == want {
				found = true
			}
		}
		if !found {
			t.Errorf("phase %q missing from telemetry (have %v)", want, phases)
		}
	}
}

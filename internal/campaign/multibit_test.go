package campaign

import (
	"math/rand"
	"testing"

	"fidelity/internal/accel"
	"fidelity/internal/nn"
	"fidelity/internal/rtlsim"
)

// Multi-bit single-register faults (the paper's extended abstraction) must
// still match the software fault models exactly for datapath registers.
func TestMultiBitRegisterFaultsMatch(t *testing.T) {
	ws, err := TableIIIWorkloads()
	if err != nil {
		t.Fatal(err)
	}
	cfg := accel.NVDLASmall()
	w := ws[0] // inception conv
	golden, err := rtlsim.Run(cfg, w.RTL, nil)
	if err != nil {
		t.Fatal(err)
	}
	start, end, err := rtlsim.ComputeWindow(cfg, w.RTL)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	rep := &ValidationReport{}
	checked := 0
	for trial := 0; trial < 200 && checked < 25; trial++ {
		cyc := start + rng.Int63n(end-start)
		si, err := rtlsim.Locate(cfg, w.RTL, cyc)
		if err != nil {
			t.Fatal(err)
		}
		if si.Phase != rtlsim.PhaseMAC {
			continue
		}
		mac := rng.Intn(cfg.AtomicK)
		_, wIdx, err := si.OperandIndices(cfg, w.RTL, mac)
		if err != nil || wIdx < 0 {
			continue
		}
		f := &rtlsim.Fault{
			FF: rtlsim.FFWReg, Mac: mac,
			Bit:       rng.Intn(16),
			ExtraBits: []int{rng.Intn(16), rng.Intn(16)},
			Cycle:     cyc,
		}
		faulty, err := rtlsim.Run(cfg, w.RTL, f)
		if err != nil {
			t.Fatal(err)
		}
		if faulty.TimedOut || len(golden.Out.DiffIndices(faulty.Out, 0)) == 0 {
			continue
		}
		checked++
		ov := &nn.Override{Kind: nn.OperandWeight, Flat: wIdx}
		set := weightNeurons(cfg, w, si, mac, si.Dx)
		if err := rep.checkRecomputeAt(w, golden.Out, faulty.Out, ov, f, set); err != nil {
			t.Fatal(err)
		}
	}
	if checked < 10 {
		t.Fatalf("only %d multi-bit faults checked", checked)
	}
	if rep.DatapathExact != rep.DatapathChecked {
		t.Errorf("multi-bit exact matches %d/%d: %v", rep.DatapathExact, rep.DatapathChecked, rep.Mismatches)
	}
}

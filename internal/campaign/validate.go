package campaign

import (
	"fmt"
	"math/rand"

	"fidelity/internal/accel"
	"fidelity/internal/faultmodel"
	"fidelity/internal/nn"
	"fidelity/internal/numerics"
	"fidelity/internal/rtlsim"
	"fidelity/internal/tensor"
)

// ValWorkload is one Table III validation workload: a single DNN layer
// realized both as an rtlsim layer (the golden reference) and as an nn site
// (the software fault-model target), sharing operand data.
type ValWorkload struct {
	Name  string
	RTL   *rtlsim.Layer
	Site  nn.Site
	Input *tensor.Tensor // software-layer input (operand A)
}

// TableIIIWorkloads builds the validation workload set of paper Table III:
// 3×3 conv layers (Inception, ResNet, Yolo), FC layers (Transformer
// feed-forward, RNN/LSTM gate), and an attention MatMul, all FP16.
func TableIIIWorkloads() ([]*ValWorkload, error) {
	codec, err := numerics.NewCodec(numerics.FP16, 0)
	if err != nil {
		return nil, err
	}
	var out []*ValWorkload

	conv := func(name string, seed int64, h, w, inC, outC, kh, stride, pad int) {
		rng := rand.New(faultmodel.NewStreamSource(seed))
		c := nn.NewConv2D(name, kh, kh, inC, outC, stride, pad, codec).InitRandom(rng, 0.4)
		x := tensor.New(1, h, w, inC)
		x.RandNormal(rng, 1)
		out = append(out, &ValWorkload{
			Name:  name,
			RTL:   rtlsim.ConvLayer(x, c.W, c.B.Data(), stride, pad, codec),
			Site:  c,
			Input: x,
		})
	}
	fc := func(name string, seed int64, rows, in, outN int) {
		rng := rand.New(faultmodel.NewStreamSource(seed))
		d := nn.NewDense(name, in, outN, codec).InitRandom(rng, 0.3)
		x := tensor.New(rows, in)
		x.RandNormal(rng, 1)
		out = append(out, &ValWorkload{
			Name:  name,
			RTL:   rtlsim.MatMulLayer(accel.LayerFC, x, d.W, d.B.Data(), codec),
			Site:  d,
			Input: x,
		})
	}

	conv("inception-conv3x3", 101, 8, 8, 4, 18, 3, 1, 1)
	conv("resnet-conv3x3", 102, 9, 7, 3, 20, 3, 1, 1)
	conv("yolo-conv3x3", 103, 10, 10, 4, 12, 3, 2, 1)
	fc("transformer-fc", 104, 20, 24, 18)
	fc("rnn-lstm-fc", 105, 8, 30, 16)

	// Attention MatMul.
	rng := rand.New(faultmodel.NewStreamSource(106))
	mm := nn.NewMatMulSite("transformer-matmul", false, 0, codec)
	a := tensor.New(18, 16)
	b := tensor.New(16, 18)
	a.RandNormal(rng, 1)
	b.RandNormal(rng, 1)
	out = append(out, &ValWorkload{
		Name:  "transformer-matmul",
		RTL:   rtlsim.MatMulLayer(accel.LayerMatMul, a, b, nil, codec),
		Site:  mm,
		Input: a,
	})
	return out, nil
}

// operands builds the software operand view for a validation workload,
// with Out initialized to the golden output.
func (w *ValWorkload) operands(golden *tensor.Tensor) *nn.Operands {
	op := &nn.Operands{Out: golden.Clone()}
	switch s := w.Site.(type) {
	case *nn.Conv2D:
		op.In, op.W, op.B = w.Input, s.W, s.B
	case *nn.Dense:
		op.In, op.W, op.B = w.Input, s.W, s.B
	case *nn.MatMulSite:
		op.In, op.W = w.Input, w.RTL.W
	}
	return op
}

// ValidationReport tallies the Sec. IV comparison.
type ValidationReport struct {
	// Total is the number of RTL fault-injection experiments run.
	Total int
	// Fired counts experiments whose fault hit a live FF.
	Fired int
	// NonMasked counts experiments with output errors or time-outs.
	NonMasked int
	// Timeouts counts system time-outs (all from global control faults).
	Timeouts int

	// DatapathChecked/DatapathExact: non-masked datapath cases where the
	// software fault model's faulty neuron set AND values were compared /
	// matched exactly.
	DatapathChecked, DatapathExact int
	// SetChecked/SetMatch: RF=1 cases (products, valid bits) where the
	// faulty neuron location is deterministic but the value is not; the
	// comparison is on the neuron set.
	SetChecked, SetMatch int
	// LocalChecked/LocalMatch: local-control cases (RF = 1, same neuron).
	LocalChecked, LocalMatch int
	// GlobalFired/GlobalMasked: active global-control faults and how many
	// of them were nevertheless masked (the paper observed ~9.5%).
	GlobalFired, GlobalMasked int

	// Mismatches holds diagnostics for any disagreement.
	Mismatches []string
}

// GlobalMaskedFrac returns the fraction of active global-control faults that
// were masked.
func (r *ValidationReport) GlobalMaskedFrac() float64 {
	if r.GlobalFired == 0 {
		return 0
	}
	return float64(r.GlobalMasked) / float64(r.GlobalFired)
}

// datapathFFs lists the (FF, weight) sampling choices for datapath faults,
// weighted by the census fractions of their categories.
type ffChoice struct {
	ff     rtlsim.FF
	weight float64
}

// Validate runs the Sec. IV validation campaign: samplesPerWorkload RTL
// fault injections per Table III workload, with each non-masked case
// compared against the corresponding software fault model.
func Validate(cfg *accel.Config, workloads []*ValWorkload, samplesPerWorkload int, seed int64) (*ValidationReport, error) {
	models, err := faultmodel.Derive(cfg)
	if err != nil {
		return nil, err
	}
	frac := func(id faultmodel.ID) float64 {
		m, err := faultmodel.ByID(models, id)
		if err != nil {
			return 0
		}
		return m.FFFrac
	}
	choices := []ffChoice{
		{rtlsim.FFCDMAIn0, frac(faultmodel.BeforeCBUFInput) / 2},
		{rtlsim.FFCDMAIn1, frac(faultmodel.BeforeCBUFInput) / 2},
		{rtlsim.FFCDMAWt0, frac(faultmodel.BeforeCBUFWeight) / 2},
		{rtlsim.FFCDMAWt1, frac(faultmodel.BeforeCBUFWeight) / 2},
		{rtlsim.FFInputReg, frac(faultmodel.CBUFMACInput)},
		{rtlsim.FFWLoad, frac(faultmodel.CBUFMACWeight) / 2},
		{rtlsim.FFWReg, frac(faultmodel.CBUFMACWeight) / 2},
		{rtlsim.FFProd, frac(faultmodel.OutputPSum) / 2},
		{rtlsim.FFOutReg, frac(faultmodel.OutputPSum) / 2},
		{rtlsim.FFValid, frac(faultmodel.LocalControl)},
		{rtlsim.FFCfgPos, frac(faultmodel.GlobalControl) / 7},
		{rtlsim.FFCfgCh, frac(faultmodel.GlobalControl) / 7},
		{rtlsim.FFCfgRed, frac(faultmodel.GlobalControl) / 7},
		{rtlsim.FFCtrBlk, frac(faultmodel.GlobalControl) / 7},
		{rtlsim.FFCtrGrp, frac(faultmodel.GlobalControl) / 7},
		{rtlsim.FFCtrR, frac(faultmodel.GlobalControl) / 7},
		{rtlsim.FFCtrDx, frac(faultmodel.GlobalControl) / 7},
	}
	var totalW float64
	for _, c := range choices {
		totalW += c.weight
	}

	rng := rand.New(faultmodel.NewStreamSource(seed))
	rep := &ValidationReport{}
	for _, w := range workloads {
		golden, err := rtlsim.Run(cfg, w.RTL, nil)
		if err != nil {
			return nil, fmt.Errorf("campaign: golden run of %s: %w", w.Name, err)
		}
		fetchEnd, computeEnd, err := rtlsim.ComputeWindow(cfg, w.RTL)
		if err != nil {
			return nil, err
		}
		for i := 0; i < samplesPerWorkload; i++ {
			// Sample an FF group by census weight, then a cycle in the
			// design's full execution window and a random bit.
			r := rng.Float64() * totalW
			var ff rtlsim.FF
			for _, c := range choices {
				r -= c.weight
				if r <= 0 {
					ff = c.ff
					break
				}
			}
			if ff == "" {
				ff = choices[len(choices)-1].ff
			}
			f := &rtlsim.Fault{
				FF:    ff,
				Mac:   rng.Intn(cfg.AtomicK),
				Bit:   rng.Intn(16),
				Cycle: rng.Int63n(computeEnd),
			}
			if ff.Class() == accel.GlobalControl {
				// Config/counter faults are only meaningful during compute.
				f.Cycle = fetchEnd + rng.Int63n(computeEnd-fetchEnd)
			}
			if err := validateOne(cfg, w, golden.Out, f, rep); err != nil {
				return nil, fmt.Errorf("campaign: %s fault %v: %w", w.Name, f, err)
			}
		}
	}
	return rep, nil
}

// validateOne runs one RTL injection and checks it against the software
// fault model's prediction.
func validateOne(cfg *accel.Config, w *ValWorkload, golden *tensor.Tensor, f *rtlsim.Fault, rep *ValidationReport) error {
	rep.Total++
	faulty, err := rtlsim.Run(cfg, w.RTL, f)
	if err != nil {
		return err
	}
	if faulty.FaultApplied {
		rep.Fired++
	}
	if faulty.TimedOut {
		rep.Timeouts++
		rep.NonMasked++
		if f.FF.Class() == accel.GlobalControl {
			rep.GlobalFired++
		} else {
			rep.Mismatches = append(rep.Mismatches,
				fmt.Sprintf("%s: non-global fault %v timed out", w.Name, f))
		}
		return nil
	}
	diffs := golden.DiffIndices(faulty.Out, 0)
	if f.FF.Class() == accel.GlobalControl {
		if faulty.FaultApplied {
			rep.GlobalFired++
			if len(diffs) == 0 {
				rep.GlobalMasked++
			} else {
				rep.NonMasked++
			}
		}
		return nil
	}
	if len(diffs) == 0 {
		return nil // masked; software models only describe non-masked behaviour
	}
	rep.NonMasked++

	si, err := rtlsim.Locate(cfg, w.RTL, f.Cycle)
	if err != nil {
		return err
	}
	switch f.FF {
	case rtlsim.FFCDMAIn0, rtlsim.FFCDMAIn1, rtlsim.FFCDMAWt0, rtlsim.FFCDMAWt1:
		return rep.checkRecompute(w, golden, faulty.Out, cdmaOverride(w, f), f)
	case rtlsim.FFInputReg:
		inIdx, _, err := si.OperandIndices(cfg, w.RTL, 0)
		if err != nil {
			return err
		}
		if inIdx < 0 {
			// Fault on a padding-zero operand: outside the software fault
			// models (no stored tensor element corresponds); count as a
			// set-only check of the affected position/group.
			return rep.checkNeuronSet(cfg, w, golden, faulty.Out, groupNeurons(cfg, w, si))
		}
		ov := &nn.Override{Kind: nn.OperandInput, Flat: inIdx}
		return rep.checkRecomputeAt(w, golden, faulty.Out, ov, f, groupNeurons(cfg, w, si))
	case rtlsim.FFWLoad, rtlsim.FFWReg:
		_, wIdx, err := si.OperandIndices(cfg, w.RTL, f.Mac)
		if err != nil {
			return err
		}
		if wIdx < 0 {
			rep.Mismatches = append(rep.Mismatches,
				fmt.Sprintf("%s: weight fault %v corrupted outputs without a live weight", w.Name, f))
			return nil
		}
		start := si.Dx
		if f.FF == rtlsim.FFWLoad {
			start = 0
		}
		ov := &nn.Override{Kind: nn.OperandWeight, Flat: wIdx}
		return rep.checkRecomputeAt(w, golden, faulty.Out, ov, f, weightNeurons(cfg, w, si, f.Mac, start))
	case rtlsim.FFOutReg:
		p := si.Position(cfg)
		c := si.Channel(cfg, f.Mac)
		idx, err := rtlsim.OutIndexOf(w.RTL, p, c)
		if err != nil {
			return err
		}
		expect := golden.Clone()
		v := expect.At(idx...)
		for _, b := range append([]int{f.Bit}, f.ExtraBits...) {
			v = w.Site.Codec().FlipBit(v, b)
		}
		expect.Set(v, idx...)
		rep.DatapathChecked++
		if len(expect.DiffIndices(faulty.Out, 0)) == 0 {
			rep.DatapathExact++
		} else {
			rep.Mismatches = append(rep.Mismatches,
				fmt.Sprintf("%s: out-reg fault %v value mismatch at %v", w.Name, f, idx))
		}
		return nil
	case rtlsim.FFProd:
		return rep.checkNeuronSet(cfg, w, golden, faulty.Out, singleNeuron(cfg, w, si, f.Mac))
	case rtlsim.FFValid:
		set := singleNeuron(cfg, w, si, f.Mac)
		rep.LocalChecked++
		if setCovers(golden, faulty.Out, set) {
			rep.LocalMatch++
		} else {
			rep.Mismatches = append(rep.Mismatches,
				fmt.Sprintf("%s: valid fault %v outside predicted neuron", w.Name, f))
		}
		return nil
	}
	return nil
}

// cdmaOverride maps a CDMA fault to its software operand override.
func cdmaOverride(w *ValWorkload, f *rtlsim.Fault) *nn.Override {
	elem := int(f.Cycle)
	if f.FF == rtlsim.FFCDMAIn1 || f.FF == rtlsim.FFCDMAWt1 {
		elem--
	}
	kind := nn.OperandInput
	if f.FF == rtlsim.FFCDMAWt0 || f.FF == rtlsim.FFCDMAWt1 {
		kind = nn.OperandWeight
	}
	return &nn.Override{Kind: kind, Flat: elem}
}

// checkRecompute validates an "all users" model: recompute every neuron that
// uses the flipped element and require an exact full-tensor match.
func (rep *ValidationReport) checkRecompute(w *ValWorkload, golden, faulty *tensor.Tensor, ov *nn.Override, f *rtlsim.Fault) error {
	op := w.operands(golden)
	neurons := w.Site.NeuronsUsingOperand(op, ov.Kind, ov.Flat)
	return rep.applyAndCompare(w, op, faulty, ov, f, neurons)
}

// checkRecomputeAt validates a windowed model: recompute exactly the
// predicted neuron set.
func (rep *ValidationReport) checkRecomputeAt(w *ValWorkload, golden, faulty *tensor.Tensor, ov *nn.Override, f *rtlsim.Fault, neurons [][]int) error {
	op := w.operands(golden)
	return rep.applyAndCompare(w, op, faulty, ov, f, neurons)
}

func (rep *ValidationReport) applyAndCompare(w *ValWorkload, op *nn.Operands, faulty *tensor.Tensor, ov *nn.Override, f *rtlsim.Fault, neurons [][]int) error {
	codec := w.Site.Codec()
	var stored float32
	switch ov.Kind {
	case nn.OperandInput:
		stored = op.In.Data()[ov.Flat]
	case nn.OperandWeight:
		stored = op.W.Data()[ov.Flat]
	}
	ov.Value = codec.FlipBit(stored, f.Bit)
	for _, b := range f.ExtraBits {
		ov.Value = codec.FlipBit(ov.Value, b)
	}
	for _, idx := range neurons {
		op.Out.Set(w.Site.ComputeNeuron(op, idx, ov), idx...)
	}
	rep.DatapathChecked++
	if len(op.Out.DiffIndices(faulty, 0)) == 0 {
		rep.DatapathExact++
	} else {
		rep.Mismatches = append(rep.Mismatches,
			fmt.Sprintf("%s: fault %v: software model diverges from RTL at %d neurons",
				w.Name, f, len(op.Out.DiffIndices(faulty, 0))))
	}
	return nil
}

// checkNeuronSet validates set-only predictions (value is non-deterministic
// in the software model): every RTL-corrupted neuron must be inside the
// predicted set.
func (rep *ValidationReport) checkNeuronSet(cfg *accel.Config, w *ValWorkload, golden, faulty *tensor.Tensor, set [][]int) error {
	rep.SetChecked++
	if setCovers(golden, faulty, set) {
		rep.SetMatch++
	} else {
		rep.Mismatches = append(rep.Mismatches,
			fmt.Sprintf("%s: corrupted neurons outside predicted set of %d", w.Name, len(set)))
	}
	return nil
}

// setCovers reports whether all diffs between golden and faulty fall inside
// the predicted neuron set.
func setCovers(golden, faulty *tensor.Tensor, set [][]int) bool {
	pred := map[int]bool{}
	for _, idx := range set {
		pred[golden.Offset(idx...)] = true
	}
	for _, off := range golden.DiffIndices(faulty, 0) {
		if !pred[off] {
			return false
		}
	}
	return true
}

// groupNeurons is the Fig 2a target-a4 prediction: the position's full
// channel group.
func groupNeurons(cfg *accel.Config, w *ValWorkload, si rtlsim.SiteInfo) [][]int {
	_, numCh, _, _ := rtlsim.Dims(cfg, w.RTL)
	p := si.Position(cfg)
	var out [][]int
	for m := 0; m < cfg.AtomicK; m++ {
		c := si.Grp*cfg.AtomicK + m
		if c >= numCh {
			break
		}
		if idx, err := rtlsim.OutIndexOf(w.RTL, p, c); err == nil {
			out = append(out, idx)
		}
	}
	return out
}

// weightNeurons is the Fig 2a target-a1/a2 prediction: the block positions
// from start onward in MAC mac's channel.
func weightNeurons(cfg *accel.Config, w *ValWorkload, si rtlsim.SiteInfo, mac, start int) [][]int {
	numPos, numCh, _, _ := rtlsim.Dims(cfg, w.RTL)
	c := si.Grp*cfg.AtomicK + mac
	if c >= numCh {
		return nil
	}
	var out [][]int
	for dx := start; dx < si.BlockSize; dx++ {
		p := si.Blk*cfg.WeightHoldCycles + dx
		if p >= numPos {
			break
		}
		if idx, err := rtlsim.OutIndexOf(w.RTL, p, c); err == nil {
			out = append(out, idx)
		}
	}
	return out
}

// singleNeuron is the RF=1 prediction.
func singleNeuron(cfg *accel.Config, w *ValWorkload, si rtlsim.SiteInfo, mac int) [][]int {
	_, numCh, _, _ := rtlsim.Dims(cfg, w.RTL)
	p := si.Position(cfg)
	c := si.Channel(cfg, mac)
	numPos, _, _, _ := rtlsim.Dims(cfg, w.RTL)
	if p >= numPos || c >= numCh {
		return nil
	}
	idx, err := rtlsim.OutIndexOf(w.RTL, p, c)
	if err != nil {
		return nil
	}
	return [][]int{idx}
}

package campaign

import (
	"context"
	"testing"

	"fidelity/internal/accel"
	"fidelity/internal/faultmodel"
	"fidelity/internal/model"
	"fidelity/internal/numerics"
)

func runStudy(t *testing.T, net string, prec numerics.Precision, samples int, tol float64) *StudyResult {
	t.Helper()
	w, err := model.Build(net, prec, 42)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Study(context.Background(), accel.NVDLASmall(), w, StudyOptions{
		Samples: samples, Inputs: 2, Tolerance: tol, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestStudyValidation(t *testing.T) {
	w, _ := model.Build("resnet", numerics.FP16, 1)
	if _, err := Study(context.Background(), accel.NVDLASmall(), w, StudyOptions{Samples: 0, Inputs: 1}); err == nil {
		t.Error("zero samples should fail")
	}
}

func TestStudyBasics(t *testing.T) {
	res := runStudy(t, "resnet", numerics.FP16, 30, 0.1)
	if res.Workload != "resnet-lite" || res.Precision != "FP16" {
		t.Errorf("identity: %s/%s", res.Workload, res.Precision)
	}
	if res.Experiments < 30*len(faultmodel.AllIDs()) {
		t.Errorf("experiments = %d", res.Experiments)
	}
	// Global control is always unmasked by construction.
	if res.Masked[faultmodel.GlobalControl].Mean() != 0 {
		t.Error("global control masking must be 0")
	}
	// All masking probabilities valid.
	for id, p := range res.Masked {
		if m := p.Mean(); m < 0 || m > 1 {
			t.Errorf("%v: masking %v", id, m)
		}
		if p.Trials == 0 {
			t.Errorf("%v: no samples", id)
		}
	}
	if res.FIT == nil || res.FIT.Total <= 0 {
		t.Fatal("FIT missing")
	}
	// Fig 6: protecting global control strictly reduces FIT but leaves a
	// datapath/local residue.
	if res.FITProtected.Total >= res.FIT.Total {
		t.Error("protected FIT must be lower")
	}
	if res.FITProtected.Total <= 0 {
		t.Error("protected FIT must remain positive")
	}
	if res.FITProtected.ByClass[accel.GlobalControl] != 0 {
		t.Error("protected global contribution must be zero")
	}
}

// Key Result 1 shape: the unprotected accelerator's FIT is far above the 0.2
// ASIL-D FF budget.
func TestStudyKeyResult1Shape(t *testing.T) {
	res := runStudy(t, "yolo", numerics.FP16, 25, 0.1)
	if res.FIT.Total < 0.2 {
		t.Errorf("unprotected FIT %v should exceed the 0.2 budget", res.FIT.Total)
	}
	// Global control dominates (paper: largest portion).
	if res.FIT.ByClass[accel.GlobalControl] < res.FIT.ByClass[accel.LocalControl] {
		t.Error("global control should outweigh local control")
	}
}

// Key Result 3 shape: a looser tolerance cannot increase FIT.
func TestStudyKeyResult3Shape(t *testing.T) {
	tight := runStudy(t, "transformer", numerics.FP16, 25, 0.1)
	loose := runStudy(t, "transformer", numerics.FP16, 25, 0.2)
	// Compare the non-global portion (global is tolerance-independent).
	tightDP := tight.FIT.Total - tight.FIT.ByClass[accel.GlobalControl]
	looseDP := loose.FIT.Total - loose.FIT.ByClass[accel.GlobalControl]
	if looseDP > tightDP*1.25 {
		t.Errorf("20%% tolerance FIT %v should not exceed 10%% FIT %v", looseDP, tightDP)
	}
}

// Sensitivity analysis: bounds must bracket the point estimate and respond
// to the deltas without re-running injections.
func TestSensitivityBounds(t *testing.T) {
	cfg := accel.NVDLASmall()
	res := runStudy(t, "resnet", numerics.FP16, 20, 0.1)
	lo, hi, err := SensitivityBounds(context.Background(), cfg, res, 0.3, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if !(lo <= res.FIT.Total && res.FIT.Total <= hi) {
		t.Errorf("bounds [%v, %v] do not bracket %v", lo, hi, res.FIT.Total)
	}
	lo2, hi2, err := SensitivityBounds(context.Background(), cfg, res, 0.05, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if hi2-lo2 >= hi-lo {
		t.Errorf("smaller deltas should tighten bounds: [%v,%v] vs [%v,%v]", lo2, hi2, lo, hi)
	}
	if _, _, err := SensitivityBounds(context.Background(), cfg, res, -1, 0); err == nil {
		t.Error("negative delta should fail")
	}
	if _, _, err := SensitivityBounds(context.Background(), cfg, &StudyResult{}, 0.1, 0.1); err == nil {
		t.Error("result without layers should fail")
	}
}

func TestStudyQuantizedPath(t *testing.T) {
	res := runStudy(t, "mobilenet", numerics.INT8, 20, 0.1)
	if res.FIT.Total <= 0 {
		t.Error("INT8 study failed to produce FIT")
	}
}

// Parallel execution must produce valid statistics and the same experiment
// count as sequential.
func TestStudyParallelWorkers(t *testing.T) {
	w, err := model.Build("resnet", numerics.FP16, 42)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Study(context.Background(), accel.NVDLASmall(), w, StudyOptions{
		Samples: 24, Inputs: 2, Tolerance: 0.1, Seed: 9, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Study(context.Background(), accel.NVDLASmall(), w, StudyOptions{
		Samples: 24, Inputs: 2, Tolerance: 0.1, Seed: 9, Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if par.Experiments != seq.Experiments {
		t.Errorf("parallel experiments %d != sequential %d", par.Experiments, seq.Experiments)
	}
	for id, p := range par.Masked {
		if p.Trials != seq.Masked[id].Trials {
			t.Errorf("%v: parallel trials %d != sequential %d", id, p.Trials, seq.Masked[id].Trials)
		}
	}
	if par.FIT.Total <= 0 {
		t.Error("parallel FIT missing")
	}
}

// Per-layer mode estimates Prob_SWmask(cat, r) for every layer execution
// (the exact Eq. 2 form) and still yields a valid FIT.
func TestStudyPerLayer(t *testing.T) {
	w, err := model.Build("rnn", numerics.FP16, 42)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Study(context.Background(), accel.NVDLASmall(), w, StudyOptions{
		Samples: 6, Inputs: 1, Tolerance: 0.1, Seed: 3, PerLayer: true, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FIT.Total <= 0 {
		t.Error("per-layer FIT missing")
	}
	// rnn has 49 gate executions + fc: experiments must scale with layers.
	if res.Experiments < 6*len(res.Layers) {
		t.Errorf("experiments = %d for %d layers", res.Experiments, len(res.Layers))
	}
	// Per-layer masking must actually differ across at least two layers.
	cat := accel.Category{Class: accel.Datapath, Var: accel.VarOutput, Pos: accel.InsideMAC}
	seen := map[float64]bool{}
	for _, l := range res.Layers {
		seen[l.ProbMasked[cat]] = true
	}
	if len(seen) < 2 {
		t.Logf("warning: all layers show identical masking %v (possible at tiny samples)", seen)
	}
}

// The paper notes that other raw FF FIT rates (voltage noise, other nodes)
// can be substituted "and the general conclusions remain the same": Eq. 2 is
// linear in the raw rate, so all FIT ratios are invariant.
func TestRawRateScaleInvariance(t *testing.T) {
	w, err := model.Build("resnet", numerics.FP16, 42)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Study(context.Background(), accel.NVDLASmall(), w, StudyOptions{
		Samples: 20, Inputs: 1, Tolerance: 0.1, Seed: 13, RawFITPerMB: 600,
	})
	if err != nil {
		t.Fatal(err)
	}
	scaled, err := Study(context.Background(), accel.NVDLASmall(), w, StudyOptions{
		Samples: 20, Inputs: 1, Tolerance: 0.1, Seed: 13, RawFITPerMB: 6000,
	})
	if err != nil {
		t.Fatal(err)
	}
	ratio := scaled.FIT.Total / base.FIT.Total
	if ratio < 9.99 || ratio > 10.01 {
		t.Errorf("10x raw rate should scale FIT 10x, got %v", ratio)
	}
	// The class breakdown shares are invariant.
	for class, v := range base.FIT.ByClass {
		bs := v / base.FIT.Total
		ss := scaled.FIT.ByClass[class] / scaled.FIT.Total
		if bs-ss > 1e-9 || ss-bs > 1e-9 {
			t.Errorf("%v share changed: %v vs %v", class, bs, ss)
		}
	}
}

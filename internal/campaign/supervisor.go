package campaign

// The supervision layer: the fault-injection framework must itself be
// resilient to faults. A campaign of millions of experiments will eventually
// hit a panicking recompute hook, a convergence loop wedged by a NaN blowup,
// or a checkpoint-write hiccup; none of those may discard hours of shard
// progress. The supervisor wraps every experiment in a recovery boundary
// (panics are caught and the experiment quarantined), bounds each
// experiment's wall-clock time with a per-shard watchdog (hangs are
// abandoned and quarantined), charges quarantines against a per-shard
// failure budget (systematic failures degrade the study into a flagged
// partial result instead of spinning), and retries transient checkpoint I/O
// failures with bounded exponential backoff.
//
// Determinism survives all of this because every experiment draws from an
// independent random stream derived from (seed, shard, cursor): a failed
// experiment cannot perturb any other experiment's draws, so a chaos-ridden
// campaign produces exactly the tallies of a clean run minus the quarantined
// cursors — and a resume skips quarantined cursors bit-identically without
// replaying them.

import (
	"fmt"
	"time"

	"fidelity/internal/telemetry"
)

// Supervision defaults, selected by zero values in StudyOptions.
const (
	// DefaultFailureBudget is the per-shard quarantine cap: one shard may
	// lose this many experiments to panics/timeouts before it stops
	// contributing and the study degrades to a partial result.
	DefaultFailureBudget = 16
	// DefaultIORetries is how many times a failed checkpoint/manifest write
	// is retried before the error propagates.
	DefaultIORetries = 3
	// DefaultIOBackoff is the initial retry backoff; it doubles per attempt.
	DefaultIOBackoff = 100 * time.Millisecond
)

// frameworkFault describes a supervised failure of the framework itself
// during one experiment.
type frameworkFault struct {
	reason string // ReasonPanic or ReasonTimeout
	detail string
}

// experimentSeed derives the independent stream seed of one experiment from
// its shard seed and cursor (splitmix64-style mixing). Streams depend only
// on campaign identity and position — never on execution history — which is
// what makes quarantine skips and resumes bit-identical.
func experimentSeed(shardSeed int64, cur Cursor) int64 {
	z := uint64(shardSeed)
	for _, v := range [...]int{cur.Input, cur.Model, cur.Exec, cur.Sample} {
		z += uint64(v) + 0x9e3779b97f4a7c15
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
	}
	return int64(z)
}

// chaosPolicy is the test-only failure injector of the chaos self-test
// harness; nil in production. experiment runs inside the recovery boundary
// immediately before the injection executes — it may panic (recovered and
// quarantined) or block (watchdog fires and quarantines). save runs before
// every checkpoint write and may return a synthetic I/O error, which is
// retried exactly like a real one.
type chaosPolicy struct {
	experiment func(shard int, cur Cursor)
	save       func(path string) error
}

// ioRetries resolves the transient-I/O retry count.
func (o StudyOptions) ioRetries() int {
	if o.IORetries > 0 {
		return o.IORetries
	}
	return DefaultIORetries
}

// ioBackoff resolves the initial retry backoff.
func (o StudyOptions) ioBackoff() time.Duration {
	if o.IOBackoff > 0 {
		return o.IOBackoff
	}
	return DefaultIOBackoff
}

// failureBudget resolves the per-shard quarantine cap; negative means
// unlimited.
func (o StudyOptions) failureBudget() int {
	switch {
	case o.FailureBudget > 0:
		return o.FailureBudget
	case o.FailureBudget < 0:
		return -1
	default:
		return DefaultFailureBudget
	}
}

// RetryIO runs fn, retrying transient failures up to retries times with
// exponential backoff starting at backoff. It is the shared guard for
// checkpoint and manifest writes: a single NFS hiccup or EINTR must not kill
// a multi-hour campaign. Each retry is counted on tel (when non-nil). The
// last error propagates once the budget is spent.
func RetryIO(tel *telemetry.Collector, retries int, backoff time.Duration, fn func() error) error {
	var err error
	for attempt := 0; ; attempt++ {
		if err = fn(); err == nil {
			return nil
		}
		if attempt >= retries {
			return err
		}
		if tel != nil {
			tel.RecordIORetry()
		}
		time.Sleep(backoff << attempt)
	}
}

// saveCheckpoint persists cp to path with retry-with-backoff. The campaign
// context is deliberately not consulted: the save on interrupt runs after
// cancellation, and its bounded retries must still happen.
func saveCheckpoint(cp *Checkpoint, path string, opts StudyOptions) error {
	return RetryIO(opts.Telemetry, opts.ioRetries(), opts.ioBackoff(), func() error {
		if c := opts.chaos; c != nil && c.save != nil {
			if err := c.save(path); err != nil {
				return fmt.Errorf("campaign: write checkpoint: %w", err)
			}
		}
		return cp.Save(path)
	})
}

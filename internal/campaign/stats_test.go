package campaign

import (
	"math"
	"testing"
)

// TestWilsonReferenceValues checks Wilson(1.96) against hand-computed
// reference intervals (the standard published Wilson score bounds for small
// binomial samples), including the p = 0 and p = 1 edges where the interval
// must clamp to [0, 1].
func TestWilsonReferenceValues(t *testing.T) {
	cases := []struct {
		name   string
		p      Proportion
		lo, hi float64
	}{
		{"half", Proportion{5, 10}, 0.236598, 0.763402},
		{"p=0 edge", Proportion{0, 10}, 0, 0.277539},
		{"low", Proportion{1, 10}, 0.017875, 0.404155},
		{"p=1 edge", Proportion{10, 10}, 0.722461, 1},
		{"empty", Proportion{0, 0}, 0, 1},
		{"single success", Proportion{1, 1}, 0.206543, 1},
	}
	const tol = 5e-4
	for _, tc := range cases {
		lo, hi := tc.p.Wilson(1.96)
		if math.Abs(lo-tc.lo) > tol || math.Abs(hi-tc.hi) > tol {
			t.Errorf("%s: Wilson(%d/%d) = [%.6f, %.6f], want [%.6f, %.6f]",
				tc.name, tc.p.Successes, tc.p.Trials, lo, hi, tc.lo, tc.hi)
		}
		if lo < 0 || hi > 1 || lo > hi {
			t.Errorf("%s: interval [%.6f, %.6f] leaves [0,1] or is inverted", tc.name, lo, hi)
		}
	}
}

func TestHalfWidth(t *testing.T) {
	// No data: the interval is the whole unit line, half-width 0.5.
	if hw := (Proportion{}).HalfWidth(); hw != 0.5 {
		t.Errorf("HalfWidth(0/0) = %v, want 0.5", hw)
	}
	// The worst case at fixed n is the estimate nearest 0.5.
	for _, n := range []int{2, 10, 50, 400} {
		worst := Proportion{n / 2, n}.HalfWidth()
		for s := 0; s <= n; s++ {
			if hw := (Proportion{s, n}).HalfWidth(); hw > worst+1e-12 {
				t.Fatalf("HalfWidth(%d/%d) = %v exceeds the p≈0.5 worst case %v", s, n, hw, worst)
			}
		}
	}
	// More data never widens the worst case by more than the odd/even wiggle;
	// across even sample sizes it is strictly decreasing.
	prev := math.Inf(1)
	for n := 2; n <= 1000; n += 2 {
		hw := worstHalfWidth(n)
		if hw >= prev {
			t.Fatalf("worstHalfWidth(%d) = %v did not decrease from %v", n, hw, prev)
		}
		prev = hw
	}
}

// TestSamplesForExactInversion: SamplesFor must return the smallest n whose
// worst-case Wilson half-width meets the target — the defining property of
// the exact inversion that replaced the normal-approximation formula.
func TestSamplesForExactInversion(t *testing.T) {
	for _, w := range []float64{0.5, 0.3, 0.2, 0.1, 0.05, 0.02, 0.01, 0.005} {
		n := SamplesFor(w)
		if n < 1 {
			t.Fatalf("SamplesFor(%g) = %d", w, n)
		}
		if hw := worstHalfWidth(n); hw > w {
			t.Errorf("SamplesFor(%g) = %d, but worstHalfWidth(%d) = %v > %g", w, n, n, hw, w)
		}
		if n > 1 {
			if hw := worstHalfWidth(n - 1); hw <= w {
				t.Errorf("SamplesFor(%g) = %d is not minimal: worstHalfWidth(%d) = %v <= %g",
					w, n, n-1, hw, w)
			}
		}
	}
}

func TestSamplesForAgainstNormalApprox(t *testing.T) {
	// The Wilson interval's effective sample size is n + z², so the exact
	// inversion lands about z² ≈ 3.84 samples under the Wald-based
	// approximation n = z²/(4w²) — never above it.
	for _, w := range []float64{0.1, 0.05, 0.02, 0.01} {
		exact := SamplesFor(w)
		approx := int(math.Ceil(1.96 * 1.96 / (4 * w * w)))
		if exact > approx {
			t.Errorf("SamplesFor(%g) = %d exceeds the normal approximation %d", w, exact, approx)
		}
		if approx-exact > 6 {
			t.Errorf("SamplesFor(%g) = %d is implausibly far below the approximation %d", w, exact, approx)
		}
	}
	// Degenerate targets: unreachable width.
	if got := SamplesFor(0); got != math.MaxInt32 {
		t.Errorf("SamplesFor(0) = %d, want MaxInt32", got)
	}
	if got := SamplesFor(-0.1); got != math.MaxInt32 {
		t.Errorf("SamplesFor(-0.1) = %d, want MaxInt32", got)
	}
}

package campaign

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"fidelity/internal/accel"
	"fidelity/internal/faultmodel"
	"fidelity/internal/model"
)

// checkpointVersion guards the on-disk format; bump on incompatible change.
//
// v2 (supervised campaigns): every experiment draws from an independent
// random stream derived from (seed, shard, cursor), so the cursor alone
// positions a resume — the v1 per-shard sampler draw counter is gone. v2
// also pins the accelerator config fingerprint and persists the quarantine
// list of experiments the supervisor removed after framework failures.
//
// v3 (adaptive campaigns): the campaign identity gains TargetCI and every
// shard carries its adaptive round state (completed rounds, the per-round
// per-stratum allocation history, and the convergence flag). A v2 cursor is
// meaningless under round-structured sampling — the same Cursor names a
// different experiment — so v2 files are rejected instead of misresumed.
const checkpointVersion = 3

// Cursor addresses the next experiment of a shard inside the campaign's
// deterministic loop nest: input → fault model (AllIDs order) → layer
// execution (per-layer mode only) → sample.
type Cursor struct {
	Input  int `json:"input"`
	Model  int `json:"model"`
	Exec   int `json:"exec"`
	Sample int `json:"sample"`
}

// before orders cursors by the campaign loop nest.
func (c Cursor) before(o Cursor) bool {
	if c.Input != o.Input {
		return c.Input < o.Input
	}
	if c.Model != o.Model {
		return c.Model < o.Model
	}
	if c.Exec != o.Exec {
		return c.Exec < o.Exec
	}
	return c.Sample < o.Sample
}

// Quarantine reasons recorded by the campaign supervisor.
const (
	// ReasonPanic marks an experiment whose injection code panicked; the
	// panic was recovered and the experiment removed from the study.
	ReasonPanic = "panic"
	// ReasonTimeout marks an experiment that exceeded
	// StudyOptions.ExperimentTimeout and was abandoned by the watchdog.
	ReasonTimeout = "timeout"
)

// QuarantinedExperiment records one experiment the supervision layer removed
// from the campaign after a framework-level failure. Because experiment
// streams are cursor-derived, a resumed campaign skips a quarantined cursor
// bit-identically: no other experiment's draws depend on it.
type QuarantinedExperiment struct {
	Shard  int    `json:"shard"`
	Cursor Cursor `json:"cursor"`
	// Model names the fault model the experiment would have exercised.
	Model string `json:"model"`
	// Reason is ReasonPanic or ReasonTimeout.
	Reason string `json:"reason"`
	// Detail carries the panic value or the exceeded timeout. Deliberately
	// deterministic (no stack traces): a resumed run must reproduce the
	// quarantine list of an uninterrupted one byte for byte.
	Detail string `json:"detail,omitempty"`
}

// ShardCheckpoint is one logical shard's resumable state: the Proportion
// tallies accumulated so far, the cursor of the next experiment to run, and
// the experiments quarantined by the supervisor. A shard restored from this
// state continues bit-identically to an uninterrupted run.
type ShardCheckpoint struct {
	Index  int    `json:"index"`
	Done   bool   `json:"done,omitempty"`
	Cursor Cursor `json:"cursor"`
	// Experiments counts this shard's completed injection runs.
	Experiments int                            `json:"experiments"`
	Masked      map[faultmodel.ID]Proportion   `json:"masked"`
	PerLayer    []map[faultmodel.ID]Proportion `json:"per_layer,omitempty"`
	Perturb     PerturbationStats              `json:"perturb"`
	// Quarantine lists this shard's supervisor-removed experiments, in
	// cursor order. Resume skips them without re-running.
	Quarantine []QuarantinedExperiment `json:"quarantine,omitempty"`
	// Adaptive carries the shard's round state in adaptive (TargetCI)
	// campaigns: nil in fixed-count campaigns.
	Adaptive *AdaptiveShardState `json:"adaptive,omitempty"`
}

// Checkpoint is a resumable snapshot of an in-flight Study. The identity
// fields pin the exact campaign (accelerator config, workload, options,
// seed, shard count); a checkpoint only resumes a Study whose parameters
// match, so stale files are ignored rather than silently corrupting results.
type Checkpoint struct {
	Version int `json:"version"`
	// Config is the accelerator description's fingerprint
	// (accel.Config.Fingerprint): results are a function of the config, so
	// resuming under a different one would corrupt them.
	Config    string  `json:"config"`
	Workload  string  `json:"workload"`
	Precision string  `json:"precision"`
	Tolerance float64 `json:"tolerance"`
	Samples   int     `json:"samples"`
	// TargetCI is the adaptive campaign's per-stratum 95% Wilson half-width
	// target (0 for fixed-count campaigns). Like Samples it is part of the
	// campaign identity: the round structure is a function of it.
	TargetCI float64 `json:"target_ci,omitempty"`
	Inputs   int     `json:"inputs"`
	Seed     int64   `json:"seed"`
	Shards   int     `json:"shards"`
	PerLayer bool    `json:"per_layer,omitempty"`
	// Hardening fingerprints the mitigation config installed on the network
	// (empty for unhardened campaigns). It is part of the campaign identity:
	// clamps change every experiment's forward pass, so a hardened and an
	// unhardened campaign must never share checkpoints.
	Hardening string `json:"hardening,omitempty"`
	// Experiments is the total completed across shards (convenience).
	Experiments int `json:"experiments"`
	// Quarantined is the total quarantine count across shards (convenience).
	Quarantined int               `json:"quarantined,omitempty"`
	Shard       []ShardCheckpoint `json:"shard"`
}

// Matches reports whether the checkpoint belongs to the campaign defined by
// (cfg, w, opts) with the given resolved shard count.
func (c *Checkpoint) Matches(cfg *accel.Config, w *model.Workload, opts StudyOptions, shards int) bool {
	return c != nil &&
		c.Version == checkpointVersion &&
		c.Config == cfg.Fingerprint() &&
		c.Workload == w.Net.Name() &&
		c.Precision == w.Net.Precision.String() &&
		c.Tolerance == opts.Tolerance &&
		c.Samples == opts.Samples &&
		c.TargetCI == opts.TargetCI &&
		c.Inputs == opts.Inputs &&
		c.Seed == opts.Seed &&
		c.Shards == shards &&
		c.PerLayer == opts.PerLayer &&
		c.Hardening == opts.Hardening &&
		len(c.Shard) == shards
}

// NewShardCheckpoint returns the canonical empty state of one logical shard:
// the checkpoint a shard publishes before running its first experiment, with
// every fault model's tally present and zero.
func NewShardCheckpoint(index int) ShardCheckpoint {
	sc := ShardCheckpoint{
		Index:  index,
		Masked: make(map[faultmodel.ID]Proportion, len(faultmodel.AllIDs())),
	}
	for _, id := range faultmodel.AllIDs() {
		sc.Masked[id] = Proportion{}
	}
	return sc
}

// NewCheckpoint assembles per-shard states into one campaign checkpoint whose
// identity fields pin (cfg, w, opts). The shards slice must hold one entry
// per logical shard, in index order — exactly what a completed or interrupted
// run of every shard produces.
func NewCheckpoint(cfg *accel.Config, w *model.Workload, opts StudyOptions, shards []ShardCheckpoint) *Checkpoint {
	cp := &Checkpoint{
		Version:   checkpointVersion,
		Config:    cfg.Fingerprint(),
		Workload:  w.Net.Name(),
		Precision: w.Net.Precision.String(),
		Tolerance: opts.Tolerance,
		Samples:   opts.Samples,
		TargetCI:  opts.TargetCI,
		Inputs:    opts.Inputs,
		Seed:      opts.Seed,
		Shards:    opts.shards(),
		PerLayer:  opts.PerLayer,
		Hardening: opts.Hardening,
	}
	for _, sc := range shards {
		cp.Experiments += sc.Experiments
		cp.Quarantined += len(sc.Quarantine)
		cp.Shard = append(cp.Shard, sc)
	}
	return cp
}

// Save writes the checkpoint as JSON, atomically and durably: temp file +
// fsync + rename + directory fsync, so a crash at any point leaves either
// the old checkpoint or the complete new one — never a truncated or lost
// file. The checkpoint is wrapped in the content-checksum envelope
// (AtomicWriteSealedJSON), so bit rot or a torn file is detected at load
// instead of silently resuming a corrupted campaign.
func (c *Checkpoint) Save(path string) error {
	return AtomicWriteSealedJSON(path, c)
}

// sealVersion tags the integrity envelope persisted artifacts are wrapped
// in. Version 1: hex SHA-256 over the payload's compact JSON encoding.
const sealVersion = 1

// ErrCorruptArtifact marks a persisted artifact whose content checksum did
// not verify: the file was torn, bit-flipped, or hand-edited since it was
// sealed. Callers distinguish it from ordinary parse or identity errors
// with errors.Is, because the right reaction differs — corrupted resumable
// state is quarantined and re-derived (the engine's determinism makes
// re-execution safe), never loaded.
var ErrCorruptArtifact = errors.New("campaign: artifact failed integrity check")

// sealedEnvelope is the on-disk integrity wrapper: a version tag, the
// checksum algorithm, the hex digest of the payload's compact encoding, and
// the payload itself. Files written before the envelope existed are plain
// payloads with no "sealed" key; they load unverified (legacy path).
type sealedEnvelope struct {
	Sealed  int             `json:"sealed"`
	Algo    string          `json:"algo"`
	Sum     string          `json:"sum"`
	Payload json.RawMessage `json:"payload"`
}

// SumJSON returns the hex SHA-256 of v's compact canonical JSON encoding —
// the content identity the integrity envelope and the distributed audit
// pass both compare. encoding/json sorts map keys, so the digest is a pure
// function of the value, not of map iteration or source formatting.
func SumJSON(v any) (string, error) {
	blob, err := json.Marshal(v)
	if err != nil {
		return "", fmt.Errorf("campaign: sum: %w", err)
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:]), nil
}

// sumRaw digests an already-encoded payload, compacting first so the digest
// matches SumJSON regardless of the indentation the envelope was stored with.
func sumRaw(raw json.RawMessage) (string, error) {
	var buf bytes.Buffer
	if err := json.Compact(&buf, raw); err != nil {
		return "", err
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:]), nil
}

// AtomicWriteSealedJSON writes v through AtomicWriteJSON wrapped in the
// content-checksum envelope. Readers go through OpenSealedJSON (or
// LoadCheckpoint), which verifies the digest before trusting a byte of the
// payload.
func AtomicWriteSealedJSON(path string, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("campaign: encode %s: %w", filepath.Base(path), err)
	}
	sum := sha256.Sum256(payload)
	return AtomicWriteJSON(path, &sealedEnvelope{
		Sealed:  sealVersion,
		Algo:    "sha256",
		Sum:     hex.EncodeToString(sum[:]),
		Payload: payload,
	})
}

// OpenSealedJSON parses blob — a sealed envelope or a legacy unchecksummed
// artifact — verifies the checksum when one is present, and unmarshals the
// payload into v. A digest mismatch returns an error satisfying
// errors.Is(err, ErrCorruptArtifact); legacy files (no "sealed" key) load
// without verification so state written before the envelope existed keeps
// working.
func OpenSealedJSON(blob []byte, v any) error {
	var env sealedEnvelope
	if err := json.Unmarshal(blob, &env); err != nil || env.Sealed == 0 {
		// Legacy unchecksummed artifact (or not an envelope at all): the
		// whole blob is the payload.
		return json.Unmarshal(blob, v)
	}
	if env.Sealed != sealVersion {
		return fmt.Errorf("campaign: artifact sealed with envelope version %d, want %d", env.Sealed, sealVersion)
	}
	if env.Algo != "sha256" {
		return fmt.Errorf("campaign: artifact sealed with unknown algorithm %q", env.Algo)
	}
	sum, err := sumRaw(env.Payload)
	if err != nil {
		return fmt.Errorf("%w: payload is not valid JSON: %v", ErrCorruptArtifact, err)
	}
	if sum != env.Sum {
		return fmt.Errorf("%w: payload sha256 %s, envelope says %s", ErrCorruptArtifact, sum, env.Sum)
	}
	return json.Unmarshal(env.Payload, v)
}

// ReadSealedJSON reads path and opens it through OpenSealedJSON.
func ReadSealedJSON(path string, v any) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("campaign: read %s: %w", filepath.Base(path), err)
	}
	if err := OpenSealedJSON(blob, v); err != nil {
		return fmt.Errorf("campaign: parse %s: %w", path, err)
	}
	return nil
}

// AtomicWriteJSON is the checkpoint machinery's durable-write primitive,
// exported for other resumable state (the distributed coordinator's lease
// table rides on it): v is marshalled as indented JSON and published via
// temp file + fsync + rename + directory fsync, so a crash at any point
// leaves either the old file or the complete new one — never a truncated or
// lost one.
func AtomicWriteJSON(path string, v any) error {
	blob, err := json.MarshalIndent(v, "", " ")
	if err != nil {
		return fmt.Errorf("campaign: encode %s: %w", filepath.Base(path), err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return fmt.Errorf("campaign: write %s: %w", filepath.Base(path), err)
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("campaign: write %s: %w", filepath.Base(path), err)
	}
	if _, err := tmp.Write(blob); err != nil {
		return fail(err)
	}
	// Flush the contents before the rename publishes the name: a crash right
	// after the rename must not be able to surface an empty file.
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("campaign: write %s: %w", filepath.Base(path), err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("campaign: write %s: %w", filepath.Base(path), err)
	}
	// And fsync the directory so the rename itself is durable.
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("campaign: sync directory of %s: %w", filepath.Base(path), err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("campaign: sync directory of %s: %w", filepath.Base(path), err)
	}
	return nil
}

// LoadCheckpoint reads a checkpoint file written by Save, verifying the
// content-checksum envelope when present (errors.Is ErrCorruptArtifact on a
// mismatch). Checkpoints written before the envelope existed load
// unverified.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("campaign: read checkpoint: %w", err)
	}
	var c Checkpoint
	if err := OpenSealedJSON(blob, &c); err != nil {
		return nil, fmt.Errorf("campaign: parse checkpoint %s: %w", path, err)
	}
	if c.Version != checkpointVersion {
		return nil, fmt.Errorf("campaign: checkpoint %s has version %d, want %d "+
			"(v1 predates quarantine tracking and cursor-derived sampling; v2 predates "+
			"adaptive sampling rounds, so its cursors name different experiments under v3; "+
			"rerun the campaign)",
			path, c.Version, checkpointVersion)
	}
	return &c, nil
}

// Interrupted is returned by Study when its context is cancelled
// mid-campaign. It carries the checkpoint of the completed work; resume by
// passing it (or a reload of Path) via StudyOptions.Resume. It unwraps to
// the context's error, so errors.Is(err, context.Canceled) works.
type Interrupted struct {
	Checkpoint *Checkpoint
	// Path is the file the checkpoint was saved to ("" if no
	// CheckpointPath was configured).
	Path  string
	Cause error
}

func (e *Interrupted) Error() string {
	where := "in memory only"
	if e.Path != "" {
		where = "saved to " + e.Path
	}
	return fmt.Sprintf("campaign: study interrupted after %d experiments (checkpoint %s): %v",
		e.Checkpoint.Experiments, where, e.Cause)
}

func (e *Interrupted) Unwrap() error { return e.Cause }

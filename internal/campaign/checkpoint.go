package campaign

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"fidelity/internal/faultmodel"
	"fidelity/internal/model"
)

// checkpointVersion guards the on-disk format; bump on incompatible change.
const checkpointVersion = 1

// Cursor addresses the next experiment of a shard inside the campaign's
// deterministic loop nest: input → fault model (AllIDs order) → layer
// execution (per-layer mode only) → sample.
type Cursor struct {
	Input  int `json:"input"`
	Model  int `json:"model"`
	Exec   int `json:"exec"`
	Sample int `json:"sample"`
}

// ShardCheckpoint is one logical shard's resumable state: the Proportion
// tallies accumulated so far, the sampler's position in its random stream,
// and the cursor of the next experiment to run. A shard restored from this
// state continues bit-identically to an uninterrupted run.
type ShardCheckpoint struct {
	Index   int                     `json:"index"`
	Done    bool                    `json:"done,omitempty"`
	Sampler faultmodel.SamplerState `json:"sampler"`
	Cursor  Cursor                  `json:"cursor"`
	// Experiments counts this shard's completed injection runs.
	Experiments int                            `json:"experiments"`
	Masked      map[faultmodel.ID]Proportion   `json:"masked"`
	PerLayer    []map[faultmodel.ID]Proportion `json:"per_layer,omitempty"`
	Perturb     PerturbationStats              `json:"perturb"`
}

// Checkpoint is a resumable snapshot of an in-flight Study. The identity
// fields pin the exact campaign (workload, options, seed, shard count); a
// checkpoint only resumes a Study whose parameters match, so stale files are
// ignored rather than silently corrupting results.
type Checkpoint struct {
	Version   int     `json:"version"`
	Workload  string  `json:"workload"`
	Precision string  `json:"precision"`
	Tolerance float64 `json:"tolerance"`
	Samples   int     `json:"samples"`
	Inputs    int     `json:"inputs"`
	Seed      int64   `json:"seed"`
	Shards    int     `json:"shards"`
	PerLayer  bool    `json:"per_layer,omitempty"`
	// Experiments is the total completed across shards (convenience).
	Experiments int               `json:"experiments"`
	Shard       []ShardCheckpoint `json:"shard"`
}

// Matches reports whether the checkpoint belongs to the campaign defined by
// (w, opts) with the given resolved shard count.
func (c *Checkpoint) Matches(w *model.Workload, opts StudyOptions, shards int) bool {
	return c != nil &&
		c.Version == checkpointVersion &&
		c.Workload == w.Net.Name() &&
		c.Precision == w.Net.Precision.String() &&
		c.Tolerance == opts.Tolerance &&
		c.Samples == opts.Samples &&
		c.Inputs == opts.Inputs &&
		c.Seed == opts.Seed &&
		c.Shards == shards &&
		c.PerLayer == opts.PerLayer &&
		len(c.Shard) == shards
}

// Save writes the checkpoint as JSON, atomically (temp file + rename), so a
// crash mid-write never leaves a truncated checkpoint behind.
func (c *Checkpoint) Save(path string) error {
	blob, err := json.MarshalIndent(c, "", " ")
	if err != nil {
		return fmt.Errorf("campaign: encode checkpoint: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return fmt.Errorf("campaign: write checkpoint: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("campaign: write checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("campaign: write checkpoint: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("campaign: write checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpoint reads a checkpoint file written by Save.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("campaign: read checkpoint: %w", err)
	}
	var c Checkpoint
	if err := json.Unmarshal(blob, &c); err != nil {
		return nil, fmt.Errorf("campaign: parse checkpoint %s: %w", path, err)
	}
	if c.Version != checkpointVersion {
		return nil, fmt.Errorf("campaign: checkpoint %s has version %d, want %d",
			path, c.Version, checkpointVersion)
	}
	return &c, nil
}

// Interrupted is returned by Study when its context is cancelled
// mid-campaign. It carries the checkpoint of the completed work; resume by
// passing it (or a reload of Path) via StudyOptions.Resume. It unwraps to
// the context's error, so errors.Is(err, context.Canceled) works.
type Interrupted struct {
	Checkpoint *Checkpoint
	// Path is the file the checkpoint was saved to ("" if no
	// CheckpointPath was configured).
	Path  string
	Cause error
}

func (e *Interrupted) Error() string {
	where := "in memory only"
	if e.Path != "" {
		where = "saved to " + e.Path
	}
	return fmt.Sprintf("campaign: study interrupted after %d experiments (checkpoint %s): %v",
		e.Checkpoint.Experiments, where, e.Cause)
}

func (e *Interrupted) Unwrap() error { return e.Cause }

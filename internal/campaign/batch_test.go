package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"testing"

	"fidelity/internal/accel"
	"fidelity/internal/faultmodel"
	"fidelity/internal/inject"
	"fidelity/internal/model"
	"fidelity/internal/nn"
	"fidelity/internal/numerics"
	"fidelity/internal/telemetry"
)

// The differential equivalence suite for the tiled-kernel + dirty-region +
// site-grouped-batching optimization stack. Every switch in the stack must be
// a pure performance optimization: StudyResult JSON and checkpoints must be
// byte-identical across all of
//
//   - tiled kernels vs the frozen reference kernels,
//   - dirty-region sweeps vs whole-layer recomputes,
//   - any experiment batch window vs the unbatched loop,
//
// including under deterministic interruption and cross-mode resume.

// studyJSON runs a study and marshals its result.
func studyJSON(t *testing.T, w *model.Workload, opts StudyOptions) []byte {
	t.Helper()
	res, err := Study(context.Background(), accel.NVDLASmall(), w, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestBatchTilingDifferential compares the fully optimized configuration
// (tiled kernels, region sweep, default batch window) against the fully
// de-optimized one (reference kernels, whole-layer recomputes, unbatched) and
// several intermediate points, requiring byte-identical StudyResult JSON for
// every zoo topology at FP16 plus mobilenet across the integer precisions.
func TestBatchTilingDifferential(t *testing.T) {
	type config struct {
		name string
		ref  bool // reference (pre-tiling) kernels
		opts func(*StudyOptions)
	}
	configs := []config{
		{"optimized", false, func(o *StudyOptions) {}},
		{"reference-kernels", true, func(o *StudyOptions) {}},
		{"no-region", false, func(o *StudyOptions) { o.DisableRegionSweep = true }},
		{"unbatched", false, func(o *StudyOptions) { o.ExperimentBatch = 1 }},
		{"batch-5", false, func(o *StudyOptions) { o.ExperimentBatch = 5 }},
		{"no-golden-share", false, func(o *StudyOptions) { o.DisableGoldenShare = true }},
		{"all-off", true, func(o *StudyOptions) {
			o.DisableRegionSweep = true
			o.ExperimentBatch = 1
			o.DisableGoldenShare = true
		}},
	}
	type cell struct {
		net  string
		prec numerics.Precision
	}
	var cells []cell
	for _, name := range model.Names() {
		cells = append(cells, cell{name, numerics.FP16})
	}
	cells = append(cells, cell{"mobilenet", numerics.INT16}, cell{"mobilenet", numerics.INT8})
	for _, cell := range cells {
		t.Run(cell.net+"/"+cell.prec.String(), func(t *testing.T) {
			w, err := model.Build(cell.net, cell.prec, 42)
			if err != nil {
				t.Fatal(err)
			}
			var want []byte
			for _, c := range configs {
				opts := StudyOptions{Samples: 12, Inputs: 1, Tolerance: 0.1, Seed: 7, Workers: 4}
				c.opts(&opts)
				nn.SetReferenceKernels(c.ref)
				got := studyJSON(t, w, opts)
				nn.SetReferenceKernels(false)
				if want == nil {
					want = got
					continue
				}
				if !bytes.Equal(want, got) {
					t.Errorf("StudyResult JSON differs for %s:\noptimized: %s\n%s: %s",
						c.name, want, c.name, got)
				}
			}
		})
	}
}

// TestBatchCheckpointIdentity interrupts the same campaign deterministically
// with batching on and off, requires byte-identical checkpoints, and then
// cross-resumes each checkpoint under the opposite batching mode (and with
// the region sweep flipped) — all four resumes must reproduce the
// uninterrupted result exactly. This is the proof that batch windows commit
// at experiment boundaries only: an interrupt can never surface a
// half-committed batch.
func TestBatchCheckpointIdentity(t *testing.T) {
	w := engineWorkload(t)
	cfg := accel.NVDLASmall()
	base := StudyOptions{Samples: 160, Inputs: 2, Tolerance: 0.1, Seed: 13, Workers: 1}

	baseline, err := Study(context.Background(), cfg, w, base)
	if err != nil {
		t.Fatal(err)
	}

	// Workers=1 plus a synchronous observer makes the interruption point
	// exact: both modes stop after the same committed experiments. The
	// cancellation lands mid-batch for the batched run (batch window 16, stop
	// at 100 observes), exercising the partial-batch discard path.
	interrupt := func(batch int) *Checkpoint {
		t.Helper()
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		opts := base
		opts.ExperimentBatch = batch
		count := 0
		opts.observe = func(int, Cursor, faultmodel.ID, inject.Result) {
			if count++; count == 100 {
				cancel()
			}
		}
		_, err := Study(ctx, cfg, w, opts)
		var intr *Interrupted
		if !errors.As(err, &intr) {
			t.Fatalf("batch=%d: interrupted study returned %v, want *Interrupted", batch, err)
		}
		return intr.Checkpoint
	}
	cpBatched := interrupt(16)
	cpSeq := interrupt(1)
	bBatched, err := json.Marshal(cpBatched)
	if err != nil {
		t.Fatal(err)
	}
	bSeq, err := json.Marshal(cpSeq)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bBatched, bSeq) {
		t.Errorf("checkpoints differ between batched and sequential interrupt:\nbatched: %s\nseq:     %s",
			bBatched, bSeq)
	}

	// ExperimentBatch and DisableRegionSweep are deliberately not part of the
	// checkpoint identity: resuming under any combination must finish to the
	// same result.
	resume := func(label string, cp *Checkpoint, batch int, noRegion bool) {
		t.Helper()
		opts := base
		opts.ExperimentBatch = batch
		opts.DisableRegionSweep = noRegion
		opts.Resume = cp
		res, err := Study(context.Background(), cfg, w, opts)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		requireEqualResults(t, label, baseline, res)
	}
	resume("batched checkpoint resumed sequentially", cpBatched, 1, false)
	resume("sequential checkpoint resumed batched", cpSeq, 16, false)
	resume("batched checkpoint resumed batched without region sweep", cpBatched, 16, true)
	resume("sequential checkpoint resumed sequentially without region sweep", cpSeq, 1, true)
}

// TestBatchTelemetryPresence checks the batch telemetry block's
// nil-when-unbatched contract, and that batched runs report site groups
// bounded by the batch count times the window size.
func TestBatchTelemetryPresence(t *testing.T) {
	w := engineWorkload(t)
	cfg := accel.NVDLASmall()
	base := StudyOptions{Samples: 24, Inputs: 1, Tolerance: 0.1, Seed: 3}

	tel := telemetry.New()
	opts := base
	opts.Telemetry = tel
	opts.ExperimentBatch = 8
	if _, err := Study(context.Background(), cfg, w, opts); err != nil {
		t.Fatal(err)
	}
	bs := tel.Snapshot().Batch
	if bs == nil {
		t.Fatal("batched study produced no telemetry Batch block")
	}
	if bs.Batches <= 0 || bs.Experiments <= 0 {
		t.Errorf("batch counters not populated: %+v", bs)
	}
	if bs.SiteGroups <= 0 || bs.SiteGroups > bs.Experiments {
		t.Errorf("SiteGroups = %d, want in (0, %d]", bs.SiteGroups, bs.Experiments)
	}
	if ks := tel.Snapshot().Kernels; ks == nil || ks.Tiles <= 0 {
		t.Errorf("tiled-kernel telemetry missing or zero: %+v", ks)
	}

	tel = telemetry.New()
	opts = base
	opts.Telemetry = tel
	opts.ExperimentBatch = 1
	if _, err := Study(context.Background(), cfg, w, opts); err != nil {
		t.Fatal(err)
	}
	if got := tel.Snapshot().Batch; got != nil {
		t.Errorf("unbatched study produced a telemetry Batch block: %+v", got)
	}
}

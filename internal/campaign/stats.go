// Package campaign orchestrates FIdelity's experiment campaigns: the
// Sec. IV validation campaign (software fault models vs. the cycle-level
// golden reference) and the Sec. V large-scale resilience study, including
// the statistics machinery (binomial proportions with Wilson 95% confidence
// intervals) used to size and report them.
package campaign

import (
	"fmt"
	"math"
)

// Proportion is a binomial estimate with its sample size.
type Proportion struct {
	Successes, Trials int
}

// Add records one Bernoulli outcome.
func (p *Proportion) Add(success bool) {
	p.Trials++
	if success {
		p.Successes++
	}
}

// Mean returns the point estimate (0 for empty samples).
func (p Proportion) Mean() float64 {
	if p.Trials == 0 {
		return 0
	}
	return float64(p.Successes) / float64(p.Trials)
}

// Wilson returns the Wilson score interval at confidence z (1.96 for 95%).
func (p Proportion) Wilson(z float64) (lo, hi float64) {
	n := float64(p.Trials)
	if n == 0 {
		return 0, 1
	}
	phat := p.Mean()
	z2 := z * z
	denom := 1 + z2/n
	center := (phat + z2/(2*n)) / denom
	margin := z / denom * math.Sqrt(phat*(1-phat)/n+z2/(4*n*n))
	lo, hi = center-margin, center+margin
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// HalfWidth returns the 95% Wilson half-width, the paper's "95% confidence
// interval" sizing criterion.
func (p Proportion) HalfWidth() float64 {
	lo, hi := p.Wilson(1.96)
	return (hi - lo) / 2
}

// String renders the estimate with its interval.
func (p Proportion) String() string {
	lo, hi := p.Wilson(1.96)
	return fmt.Sprintf("%.4f [%.4f, %.4f] (n=%d)", p.Mean(), lo, hi, p.Trials)
}

// worstHalfWidth is the largest achievable 95% Wilson half-width at sample
// size n: the interval is widest when the point estimate sits as close to
// 0.5 as n integer successes allow.
func worstHalfWidth(n int) float64 {
	return Proportion{Successes: n / 2, Trials: n}.HalfWidth()
}

// SamplesFor returns the smallest number of Bernoulli samples whose
// worst-case 95% Wilson half-width is at most w.
//
// Earlier versions used the normal-approximation sizing n = z²/(4w²), which
// inverts the *Wald* interval, not the Wilson interval the rest of this
// package reports: the Wilson interval shrinks by an extra z² in the
// effective sample size (half-width z/(2·sqrt(n+z²)) at p = 0.5), so the
// approximation overshoots by about z² ≈ 4 samples at every width and the
// "needed" count never agreed with the HalfWidth the campaign actually
// measured. This version inverts HalfWidth exactly: exponential search for
// an upper bound, binary search for the crossing, then a short backward scan
// to absorb the odd/even wiggle of the achievable worst case (at odd n the
// estimate closest to 0.5 is floor(n/2)/n, so worstHalfWidth is not quite
// monotone step to step).
func SamplesFor(w float64) int {
	if w <= 0 {
		return math.MaxInt32
	}
	hi := 1
	for worstHalfWidth(hi) > w {
		if hi >= math.MaxInt32/2 {
			return math.MaxInt32
		}
		hi *= 2
	}
	lo := hi / 2 // worstHalfWidth(lo) > w (or lo == 0)
	for lo+1 < hi {
		mid := lo + (hi-lo)/2
		if worstHalfWidth(mid) <= w {
			hi = mid
		} else {
			lo = mid
		}
	}
	for hi > 1 && worstHalfWidth(hi-1) <= w {
		hi--
	}
	return hi
}

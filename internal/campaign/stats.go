// Package campaign orchestrates FIdelity's experiment campaigns: the
// Sec. IV validation campaign (software fault models vs. the cycle-level
// golden reference) and the Sec. V large-scale resilience study, including
// the statistics machinery (binomial proportions with Wilson 95% confidence
// intervals) used to size and report them.
package campaign

import (
	"fmt"
	"math"
)

// Proportion is a binomial estimate with its sample size.
type Proportion struct {
	Successes, Trials int
}

// Add records one Bernoulli outcome.
func (p *Proportion) Add(success bool) {
	p.Trials++
	if success {
		p.Successes++
	}
}

// Mean returns the point estimate (0 for empty samples).
func (p Proportion) Mean() float64 {
	if p.Trials == 0 {
		return 0
	}
	return float64(p.Successes) / float64(p.Trials)
}

// Wilson returns the Wilson score interval at confidence z (1.96 for 95%).
func (p Proportion) Wilson(z float64) (lo, hi float64) {
	n := float64(p.Trials)
	if n == 0 {
		return 0, 1
	}
	phat := p.Mean()
	z2 := z * z
	denom := 1 + z2/n
	center := (phat + z2/(2*n)) / denom
	margin := z / denom * math.Sqrt(phat*(1-phat)/n+z2/(4*n*n))
	lo, hi = center-margin, center+margin
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// HalfWidth returns the 95% Wilson half-width, the paper's "95% confidence
// interval" sizing criterion.
func (p Proportion) HalfWidth() float64 {
	lo, hi := p.Wilson(1.96)
	return (hi - lo) / 2
}

// String renders the estimate with its interval.
func (p Proportion) String() string {
	lo, hi := p.Wilson(1.96)
	return fmt.Sprintf("%.4f [%.4f, %.4f] (n=%d)", p.Mean(), lo, hi, p.Trials)
}

// SamplesFor returns the number of Bernoulli samples needed for a Wilson
// half-width of at most w at 95% confidence in the worst case (p = 0.5).
func SamplesFor(w float64) int {
	if w <= 0 {
		return math.MaxInt32
	}
	// Normal-approximation sizing: n = z²/(4w²).
	return int(math.Ceil(1.96 * 1.96 / (4 * w * w)))
}

package campaign

import (
	"math/rand"
	"testing"

	"fidelity/internal/accel"
	"fidelity/internal/nn"
	"fidelity/internal/numerics"
	"fidelity/internal/rtlsim"
	"fidelity/internal/tensor"
)

// int8Workloads builds a quantized validation set. The paper validates at
// FP16 only (Table III); this extends the validation to the INT8 datapath,
// where the software fault models must remain exact because the codec
// arithmetic is shared end to end.
func int8Workloads(t *testing.T) []*ValWorkload {
	t.Helper()
	codec, err := numerics.NewCodec(numerics.INT8, 8)
	if err != nil {
		t.Fatal(err)
	}
	var out []*ValWorkload

	rng := rand.New(rand.NewSource(201))
	conv := nn.NewConv2D("int8-conv", 3, 3, 3, 12, 1, 1, codec).InitRandom(rng, 0.5)
	x := tensor.New(1, 8, 8, 3)
	x.RandNormal(rng, 1.5)
	out = append(out, &ValWorkload{
		Name:  "int8-conv",
		RTL:   rtlsim.ConvLayer(x, conv.W, conv.B.Data(), 1, 1, codec),
		Site:  conv,
		Input: x,
	})

	fc := nn.NewDense("int8-fc", 20, 14, codec).InitRandom(rng, 0.4)
	xf := tensor.New(10, 20)
	xf.RandNormal(rng, 1.5)
	out = append(out, &ValWorkload{
		Name:  "int8-fc",
		RTL:   rtlsim.MatMulLayer(accel.LayerFC, xf, fc.W, fc.B.Data(), codec),
		Site:  fc,
		Input: xf,
	})
	return out
}

func TestValidationCampaignINT8(t *testing.T) {
	cfg := accel.NVDLASmall()
	rep, err := Validate(cfg, int8Workloads(t), 250, 11)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range rep.Mismatches {
		t.Errorf("INT8 mismatch: %s", m)
	}
	if rep.DatapathChecked == 0 {
		t.Fatal("no INT8 datapath cases checked")
	}
	if rep.DatapathExact != rep.DatapathChecked {
		t.Errorf("INT8 datapath exact %d/%d", rep.DatapathExact, rep.DatapathChecked)
	}
	if rep.SetMatch != rep.SetChecked {
		t.Errorf("INT8 set matches %d/%d", rep.SetMatch, rep.SetChecked)
	}
}

// INT16 spot-check with the same machinery.
func TestValidationCampaignINT16(t *testing.T) {
	codec, err := numerics.NewCodec(numerics.INT16, 8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(202))
	conv := nn.NewConv2D("int16-conv", 3, 3, 2, 8, 2, 1, codec).InitRandom(rng, 0.5)
	x := tensor.New(1, 9, 9, 2)
	x.RandNormal(rng, 1.5)
	w := &ValWorkload{
		Name:  "int16-conv",
		RTL:   rtlsim.ConvLayer(x, conv.W, conv.B.Data(), 2, 1, codec),
		Site:  conv,
		Input: x,
	}
	cfg := accel.NVDLASmall()
	rep, err := Validate(cfg, []*ValWorkload{w}, 250, 12)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range rep.Mismatches {
		t.Errorf("INT16 mismatch: %s", m)
	}
	if rep.DatapathExact != rep.DatapathChecked || rep.DatapathChecked == 0 {
		t.Errorf("INT16 datapath exact %d/%d", rep.DatapathExact, rep.DatapathChecked)
	}
}

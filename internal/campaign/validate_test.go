package campaign

import (
	"math"
	"testing"

	"fidelity/internal/accel"
	"fidelity/internal/rtlsim"
)

func TestWilsonInterval(t *testing.T) {
	var p Proportion
	for i := 0; i < 100; i++ {
		p.Add(i < 30)
	}
	if p.Mean() != 0.3 {
		t.Fatalf("mean = %v", p.Mean())
	}
	lo, hi := p.Wilson(1.96)
	if !(lo < 0.3 && 0.3 < hi) {
		t.Errorf("interval [%v, %v] must contain the mean", lo, hi)
	}
	if hi-lo > 0.2 {
		t.Errorf("interval too wide for n=100: %v", hi-lo)
	}
	if p.String() == "" {
		t.Error("empty string")
	}
}

func TestWilsonEmpty(t *testing.T) {
	var p Proportion
	lo, hi := p.Wilson(1.96)
	if lo != 0 || hi != 1 {
		t.Errorf("empty interval = [%v, %v]", lo, hi)
	}
	if p.Mean() != 0 {
		t.Error("empty mean must be 0")
	}
}

// Interval width shrinks as ~1/√n.
func TestWilsonShrinks(t *testing.T) {
	widths := []float64{}
	for _, n := range []int{10, 100, 1000} {
		var p Proportion
		for i := 0; i < n; i++ {
			p.Add(i%2 == 0)
		}
		widths = append(widths, p.HalfWidth())
	}
	if !(widths[0] > widths[1] && widths[1] > widths[2]) {
		t.Errorf("widths not shrinking: %v", widths)
	}
}

func TestSamplesFor(t *testing.T) {
	n := SamplesFor(0.01)
	if n < 9000 || n > 11000 {
		t.Errorf("SamplesFor(0.01) = %d, want ~9604", n)
	}
	if SamplesFor(0) != math.MaxInt32 {
		t.Error("zero width must be unbounded")
	}
}

func TestTableIIIWorkloads(t *testing.T) {
	ws, err := TableIIIWorkloads()
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 6 {
		t.Fatalf("workloads = %d, want 6 (Table III)", len(ws))
	}
	// Every workload's golden RTL run must agree with the software layer.
	cfg := accel.NVDLASmall()
	for _, w := range ws {
		o, err := rtlsim.Run(cfg, w.RTL, nil)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if o.TimedOut {
			t.Fatalf("%s: golden timed out", w.Name)
		}
	}
}

// The core validation claim (paper Sec. IV-C): across a sampled campaign,
// every checked datapath case matches the software fault model exactly,
// every local-control case lands on the predicted neuron, and global faults
// are mostly non-masked.
func TestValidationCampaign(t *testing.T) {
	ws, err := TableIIIWorkloads()
	if err != nil {
		t.Fatal(err)
	}
	cfg := accel.NVDLASmall()
	rep, err := Validate(cfg, ws, 120, 7)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != 120*len(ws) {
		t.Fatalf("total = %d", rep.Total)
	}
	if rep.NonMasked == 0 {
		t.Fatal("campaign produced no non-masked cases")
	}
	if rep.DatapathChecked == 0 {
		t.Fatal("no datapath cases checked")
	}
	for _, m := range rep.Mismatches {
		t.Errorf("mismatch: %s", m)
	}
	if rep.DatapathExact != rep.DatapathChecked {
		t.Errorf("datapath exact matches %d/%d", rep.DatapathExact, rep.DatapathChecked)
	}
	if rep.SetMatch != rep.SetChecked {
		t.Errorf("set matches %d/%d", rep.SetMatch, rep.SetChecked)
	}
	if rep.LocalChecked > 0 && rep.LocalMatch != rep.LocalChecked {
		t.Errorf("local matches %d/%d", rep.LocalMatch, rep.LocalChecked)
	}
	if rep.GlobalFired > 0 {
		frac := rep.GlobalMaskedFrac()
		// Paper: ~9.5% of active global-control faults are masked. Accept a
		// generous band around that.
		if frac > 0.5 {
			t.Errorf("global masked fraction %v too high for the always-fail model", frac)
		}
	}
}

// Time-outs must occur in a large enough campaign and must all come from
// global control faults (paper: all 72 time-outs were global).
func TestValidationTimeoutsAreGlobal(t *testing.T) {
	ws, err := TableIIIWorkloads()
	if err != nil {
		t.Fatal(err)
	}
	cfg := accel.NVDLASmall()
	rep, err := Validate(cfg, ws[:2], 300, 99)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range rep.Mismatches {
		t.Errorf("mismatch: %s", m)
	}
	if rep.Timeouts == 0 {
		t.Log("no timeouts in this sample (acceptable but unusual)")
	}
}

func TestGlobalMaskedFracEmpty(t *testing.T) {
	r := &ValidationReport{}
	if r.GlobalMaskedFrac() != 0 {
		t.Error("empty report should report 0")
	}
}

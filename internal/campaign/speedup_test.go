package campaign

import (
	"context"
	"testing"

	"fidelity/internal/accel"
)

func TestMeasureSpeedupValidation(t *testing.T) {
	if _, err := MeasureSpeedup(context.Background(), accel.NVDLASmall(), nil, 0, 1); err == nil {
		t.Error("zero iters should fail")
	}
}

// Sec. VI shape: software fault injection is orders of magnitude faster
// than RTL simulation and faster than the cycle-level (mixed-mode analog)
// simulator for every Table III workload.
func TestSpeedupShape(t *testing.T) {
	ws, err := TableIIIWorkloads()
	if err != nil {
		t.Fatal(err)
	}
	cfg := accel.NVDLASmall()
	reports, err := MeasureSpeedup(context.Background(), cfg, ws[:3], 50, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 {
		t.Fatalf("reports = %d", len(reports))
	}
	for _, r := range reports {
		if r.Cycles <= 0 || r.SoftwareSec <= 0 || r.MixedSec <= 0 {
			t.Fatalf("%s: empty measurements %+v", r.Workload, r)
		}
		if r.VsRTL < 100 {
			t.Errorf("%s: speedup vs RTL %v implausibly low", r.Workload, r.VsRTL)
		}
		if r.VsMixed < 1 {
			t.Errorf("%s: software FI should beat the cycle simulator, got %vx", r.Workload, r.VsMixed)
		}
	}
}

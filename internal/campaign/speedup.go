package campaign

import (
	"context"
	"fmt"
	"time"

	"fidelity/internal/accel"
	"fidelity/internal/faultmodel"
	"fidelity/internal/rtlsim"
)

// VCSCyclesPerSec estimates the simulation rate of full-design RTL
// simulation (Synopsys-VCS class) for an NVDLA-sized design: a few hundred
// cycles per second. The paper reports FIdelity achieving >10000× over RTL;
// the exact constant only scales the reported factor, not its shape.
const VCSCyclesPerSec = 300.0

// Speedup quantifies the Sec. VI comparison for one validation workload:
// the wall-clock cost of one fault-injection experiment under three
// techniques.
type Speedup struct {
	Workload string
	// Cycles is the layer's simulated cycle count.
	Cycles int64
	// SoftwareSec is the measured per-injection cost of FIdelity's software
	// fault injection (plan + apply + output diff).
	SoftwareSec float64
	// MixedSec is the measured per-injection cost of the cycle-level
	// simulator — the mixed-mode analog (RTL for the injected layer,
	// software elsewhere).
	MixedSec float64
	// RTLSec is the estimated per-injection cost of full RTL simulation at
	// VCSCyclesPerSec.
	RTLSec float64
	// VsRTL and VsMixed are the speedup factors of software injection.
	VsRTL, VsMixed float64
}

// MeasureSpeedup times software fault injection against the cycle-level
// reference for each workload, running iters injections of each kind.
// Cancelling ctx stops the measurement at the next workload boundary —
// the cycle-level reference runs can take seconds per workload.
func MeasureSpeedup(ctx context.Context, cfg *accel.Config, workloads []*ValWorkload, iters int, seed int64) ([]Speedup, error) {
	if iters <= 0 {
		return nil, fmt.Errorf("campaign: iters must be positive")
	}
	models, err := faultmodel.Derive(cfg)
	if err != nil {
		return nil, err
	}
	var out []Speedup
	for _, w := range workloads {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sampler, err := faultmodel.NewSampler(models, seed)
		if err != nil {
			return nil, err
		}
		golden, err := rtlsim.Run(cfg, w.RTL, nil)
		if err != nil {
			return nil, err
		}
		op := w.operands(golden.Out)

		// Software fault injection: plan + apply + restore.
		//lint:allow wallclock the Sec. VI speedup comparison IS a wall-clock measurement deliverable
		swStart := time.Now()
		for i := 0; i < iters; i++ {
			plan, err := sampler.Plan(faultmodel.CBUFMACWeight, w.Site, 0, op)
			if err != nil {
				return nil, err
			}
			changes := faultmodel.Apply(plan, w.Site, op)
			for _, c := range changes { // restore for the next iteration
				op.Out.Data()[c.Flat] = c.Golden
			}
		}
		//lint:allow wallclock the Sec. VI speedup comparison IS a wall-clock measurement deliverable
		swSec := time.Since(swStart).Seconds() / float64(iters)

		// Cycle-level (mixed-mode analog) injection: full simulation per
		// fault.
		start, end, err := rtlsim.ComputeWindow(cfg, w.RTL)
		if err != nil {
			return nil, err
		}
		rng := sampler.Rand()
		mixIters := iters
		if mixIters > 10 {
			mixIters = 10 // the cycle simulator is orders slower; sample it
		}
		//lint:allow wallclock the Sec. VI speedup comparison IS a wall-clock measurement deliverable
		mmStart := time.Now()
		for i := 0; i < mixIters; i++ {
			f := &rtlsim.Fault{
				FF: rtlsim.FFWReg, Mac: rng.Intn(cfg.AtomicK),
				Bit: rng.Intn(16), Cycle: start + rng.Int63n(end-start),
			}
			if _, err := rtlsim.Run(cfg, w.RTL, f); err != nil {
				return nil, err
			}
		}
		//lint:allow wallclock the Sec. VI speedup comparison IS a wall-clock measurement deliverable
		mmSec := time.Since(mmStart).Seconds() / float64(mixIters)

		cycles, err := rtlsim.GoldenCycles(cfg, w.RTL)
		if err != nil {
			return nil, err
		}
		s := Speedup{
			Workload:    w.Name,
			Cycles:      cycles,
			SoftwareSec: swSec,
			MixedSec:    mmSec,
			RTLSec:      float64(cycles) / VCSCyclesPerSec,
		}
		if swSec > 0 {
			s.VsRTL = s.RTLSec / swSec
			s.VsMixed = mmSec / swSec
		}
		out = append(out, s)
	}
	return out, nil
}

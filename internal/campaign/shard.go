package campaign

// The per-shard entry points of the campaign engine, exported so a
// distributed fabric (internal/distrib) can relocate shards onto remote
// workers. A logical shard is a perfectly relocatable unit of work: its
// experiment stream is derived from (Seed, Shards, cursor) alone, its
// resumable state is one ShardCheckpoint, and RunShard + AssembleResult are
// the exact code paths the in-process Study uses — so a campaign fanned out
// over any number of workers, with any pattern of lease expiries and
// re-runs, assembles a StudyResult byte-identical to a single-process run.

import (
	"context"
	"fmt"
	"sort"
	"time"

	"fidelity/internal/accel"
	"fidelity/internal/activeness"
	"fidelity/internal/dataset"
	"fidelity/internal/faultmodel"
	"fidelity/internal/fit"
	"fidelity/internal/model"
	"fidelity/internal/nn"
)

// ShardRun configures one RunShard call.
type ShardRun struct {
	// Index is the logical shard to execute, in [0, opts.shards()).
	Index int
	// Resume, when non-nil, is a previously published checkpoint of this
	// shard; execution continues bit-identically from its cursor. The caller
	// is responsible for campaign-identity matching (a coordinator checks the
	// enclosing Checkpoint.Matches before handing shards out).
	Resume *ShardCheckpoint
	// OnProgress, when non-nil, receives consistent point-in-time shard
	// checkpoints: every Interval while the shard runs, and one final call
	// with the shard's terminal state before RunShard returns. Calls are
	// never concurrent with each other.
	OnProgress func(ShardCheckpoint)
	// Interval is the OnProgress streaming cadence (0 = final call only).
	Interval time.Duration
	// PublishEvery overrides the experiment cadence between published
	// snapshots (0 = the engine default). Streamed checkpoints can be at
	// most this many experiments stale; distributed workers lower it so a
	// re-leased shard loses little work.
	PublishEvery int
}

// RunShard executes one logical shard of the campaign defined by
// (cfg, w, opts) and returns its final published checkpoint. It is the
// exported form of the per-shard run loop Study drives on its worker pool,
// and obeys the same contract:
//
//   - nil error: the shard completed every experiment (checkpoint.Done).
//   - ErrShardExhausted: the shard spent its failure budget and degraded;
//     the checkpoint is consistent and resumable.
//   - a context error: the run was cancelled at an experiment boundary; the
//     checkpoint is consistent and resumable.
//   - any other error: a campaign failure (bad configuration, dataset error);
//     the checkpoint carries the shard's state at the failure boundary.
//
// Adaptive campaigns (opts.TargetCI > 0) add one terminal form: a nil error
// with a checkpoint that is not Done but AdaptiveParked — the shard executed
// every round its checkpoint records and is waiting at the round barrier for
// the planner (the in-process barrier loop or a distributed coordinator) to
// extend its History or finalize it.
func RunShard(ctx context.Context, cfg *accel.Config, w *model.Workload, opts StudyOptions, run ShardRun) (ShardCheckpoint, error) {
	if err := opts.validate(); err != nil {
		return ShardCheckpoint{}, err
	}
	shards := opts.shards()
	if run.Index < 0 || run.Index >= shards {
		return ShardCheckpoint{}, fmt.Errorf("campaign: shard index %d out of range [0, %d)", run.Index, shards)
	}
	if run.Resume != nil && run.Resume.Index != run.Index {
		return ShardCheckpoint{}, fmt.Errorf("campaign: resume checkpoint is for shard %d, not %d", run.Resume.Index, run.Index)
	}
	models, err := faultmodel.Derive(cfg)
	if err != nil {
		return ShardCheckpoint{}, err
	}
	if !opts.DisableGoldenShare {
		opts.golden = &goldenCache{}
	}
	sh := newShardState(run.Index, shardSeed(opts.Seed, run.Index), w, models, opts)
	if run.PublishEvery > 0 {
		sh.publishEvery = run.PublishEvery
	}
	if run.Resume != nil {
		sh.restore(*run.Resume)
	}

	var runErr error
	if !sh.done {
		stopStream := func() {}
		if run.OnProgress != nil && run.Interval > 0 {
			stop := make(chan struct{})
			done := make(chan struct{})
			go func() {
				defer close(done)
				t := time.NewTicker(run.Interval)
				defer t.Stop()
				for {
					select {
					case <-t.C:
						run.OnProgress(sh.snapshot())
					case <-stop:
						return
					}
				}
			}()
			stopStream = func() { close(stop); <-done }
		}
		runErr = sh.run(ctx)
		stopStream()
	}
	final := sh.snapshot()
	if run.OnProgress != nil {
		run.OnProgress(final)
	}
	return final, runErr
}

// AssembleResult computes the StudyResult of a campaign from its terminal
// per-shard checkpoints — one entry per logical shard, in index order, each
// either completed (Done) or degraded by an exhausted failure budget (not
// Done; the result is flagged Partial). It is the same assembly an
// in-process Study performs on its own shards' final snapshots, so a
// coordinator that collected checkpoints from remote workers produces a
// byte-identical StudyResult.
func AssembleResult(cfg *accel.Config, w *model.Workload, opts StudyOptions, shards []ShardCheckpoint) (*StudyResult, error) {
	models, err := faultmodel.Derive(cfg)
	if err != nil {
		return nil, err
	}
	tel := opts.Telemetry
	phaseStart(tel, "trace")
	x0, err := dataset.Sample(w.Dataset, 0)
	if err != nil {
		phaseEnd(tel, "trace")
		return nil, err
	}
	_, execs := w.Net.Trace(x0)
	phaseEnd(tel, "trace")
	return assembleResult(cfg, w, opts, shards, execs, models)
}

// assembleResult aggregates terminal shard checkpoints and computes the
// Eq. 2 FIT rates. Integer tally sums commute, so the aggregate is
// independent of both worker scheduling and shard order; every downstream
// number is a pure function of the tallies.
func assembleResult(cfg *accel.Config, w *model.Workload, opts StudyOptions, shards []ShardCheckpoint,
	execs []nn.SiteExecution, models []faultmodel.Model) (*StudyResult, error) {
	if opts.RawFITPerMB == 0 {
		opts.RawFITPerMB = fit.RawFFFITPerMB
	}
	if n := opts.shards(); len(shards) != n {
		return nil, fmt.Errorf("campaign: assembling %d shard checkpoints, campaign has %d shards", len(shards), n)
	}
	res := &StudyResult{
		Workload:  w.Net.Name(),
		Precision: w.Net.Precision.String(),
		Tolerance: opts.Tolerance,
		Masked:    map[faultmodel.ID]*Proportion{},
	}
	for _, id := range faultmodel.AllIDs() {
		res.Masked[id] = &Proportion{}
	}

	var perLayer []map[faultmodel.ID]*Proportion
	if opts.PerLayer {
		perLayer = make([]map[faultmodel.ID]*Proportion, len(execs))
		for e := range perLayer {
			perLayer[e] = map[faultmodel.ID]*Proportion{}
			for _, id := range faultmodel.AllIDs() {
				perLayer[e][id] = &Proportion{}
			}
		}
	}
	for i, sc := range shards {
		if sc.Index != i {
			return nil, fmt.Errorf("campaign: shard checkpoint %d carries index %d", i, sc.Index)
		}
		if !sc.Done {
			// A terminal but not-done shard stopped early after exhausting
			// its failure budget: the campaign degrades to a partial result,
			// exactly as Study flags an ErrShardExhausted shard.
			res.Partial = true
		}
		for id, p := range sc.Masked {
			res.Masked[id].Successes += p.Successes
			res.Masked[id].Trials += p.Trials
		}
		for e, m := range sc.PerLayer {
			if perLayer == nil || e >= len(perLayer) {
				return nil, fmt.Errorf("campaign: shard %d carries per-layer tallies the campaign options do not", i)
			}
			for id, p := range m {
				perLayer[e][id].Successes += p.Successes
				perLayer[e][id].Trials += p.Trials
			}
		}
		res.Perturb.SmallFail.Successes += sc.Perturb.SmallFail.Successes
		res.Perturb.SmallFail.Trials += sc.Perturb.SmallFail.Trials
		res.Perturb.LargeFail.Successes += sc.Perturb.LargeFail.Successes
		res.Perturb.LargeFail.Trials += sc.Perturb.LargeFail.Trials
		res.Experiments += sc.Experiments
		res.Quarantined = append(res.Quarantined, sc.Quarantine...)
	}
	sort.Slice(res.Quarantined, func(i, j int) bool {
		a, b := res.Quarantined[i], res.Quarantined[j]
		if a.Shard != b.Shard {
			return a.Shard < b.Shard
		}
		return a.Cursor.before(b.Cursor)
	})

	// Assemble Eq. 2 inputs: per-layer activeness and exec time from the
	// performance model, masking probabilities from the campaign aggregate.
	tel := opts.Telemetry
	phaseStart(tel, "fit")
	defer phaseEnd(tel, "fit")
	specs, err := specsFromTrace(w, execs)
	if err != nil {
		return nil, err
	}
	perf, err := activeness.NewModel(cfg)
	if err != nil {
		return nil, err
	}
	var layers []fit.LayerStats
	for li, spec := range specs {
		an, err := activeness.Analyze(cfg, perf, spec)
		if err != nil {
			return nil, err
		}
		ls := fit.LayerStats{
			Layer:        spec.Name,
			ExecTime:     float64(an.Breakdown.TotalCycles),
			ProbInactive: an.ProbInactive,
			ProbMasked:   map[accel.Category]float64{},
		}
		for _, m := range models {
			p := res.Masked[m.ID]
			if perLayer != nil && m.ID != faultmodel.GlobalControl {
				if lp := perLayer[li][m.ID]; lp.Trials > 0 {
					p = lp
				}
			}
			ls.ProbMasked[m.Cat] = p.Mean()
		}
		layers = append(layers, ls)
	}
	raw := fit.RawFITPerFF(opts.RawFITPerMB)
	res.Layers = layers
	res.RawPerFF = raw
	res.FIT, err = fit.Compute(cfg, raw, layers)
	if err != nil {
		return nil, err
	}
	res.FITProtected, err = fit.ComputeProtected(cfg, raw, layers)
	if err != nil {
		return nil, err
	}
	return res, nil
}

package campaign

// The chaos self-test harness: synthetic framework failures — panics, hangs,
// and checkpoint I/O errors — are injected into live campaigns through the
// test-only chaosPolicy hook, and the supervision layer must recover every
// one deterministically. The central contract under test: a chaos-ridden
// campaign produces exactly the tallies of a clean run minus the quarantined
// experiments, independent of worker count, and a chaos run interrupted and
// resumed reproduces the uninterrupted chaos run bit for bit. Run with -race:
// the watchdog's abandoned-goroutine protocol is part of what is verified.

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fidelity/internal/accel"
	"fidelity/internal/faultmodel"
	"fidelity/internal/inject"
	"fidelity/internal/telemetry"
)

// chaosKey addresses one experiment for targeted failure injection.
type chaosKey struct {
	shard int
	cur   Cursor
}

// chaosBase is the small campaign the chaos tests perturb: Samples=120 over
// Inputs=2 puts 60 samples per input on 16 shards, so shards 0-11 run 4
// samples per (input, model) and shards 12-15 run 3.
func chaosBase() StudyOptions {
	return StudyOptions{Samples: 120, Inputs: 2, Tolerance: 0.1, Seed: 21}
}

// observeClean runs the campaign without chaos, recording the outcome of
// every experiment in targets, and returns the clean result plus the
// recorded outcomes.
func observeClean(t *testing.T, opts StudyOptions, targets map[chaosKey]bool) (*StudyResult, map[chaosKey]observed) {
	t.Helper()
	var mu sync.Mutex
	seen := map[chaosKey]observed{}
	opts.Workers = 4
	opts.observe = func(shard int, cur Cursor, id faultmodel.ID, r inject.Result) {
		k := chaosKey{shard, cur}
		if !targets[k] {
			return
		}
		mu.Lock()
		seen[k] = observed{id: id, r: r}
		mu.Unlock()
	}
	res, err := Study(context.Background(), accel.NVDLASmall(), engineWorkload(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	for k := range targets {
		if _, ok := seen[k]; !ok {
			t.Fatalf("chaos target %+v never ran in the clean campaign; fix the target cursors", k)
		}
	}
	return res, seen
}

type observed struct {
	id faultmodel.ID
	r  inject.Result
}

// subtractExperiment removes one completed experiment's contribution from
// cloned campaign tallies — building the expected "clean minus quarantined"
// result by hand.
func subtractExperiment(res *StudyResult, o observed) {
	res.Experiments--
	p := res.Masked[o.id]
	p.Trials--
	masked := o.r.Outcome == inject.Masked
	if masked {
		p.Successes--
	}
	if o.r.FaultyNeurons == 1 {
		pp := &res.Perturb.LargeFail
		if o.r.MaxPerturbation <= 100 {
			pp = &res.Perturb.SmallFail
		}
		pp.Trials--
		if !masked {
			pp.Successes--
		}
	}
}

// cloneTallies deep-copies the fields compareTallies inspects.
func cloneTallies(res *StudyResult) *StudyResult {
	c := &StudyResult{
		Experiments: res.Experiments,
		Perturb:     res.Perturb,
		Masked:      map[faultmodel.ID]*Proportion{},
	}
	for id, p := range res.Masked {
		cp := *p
		c.Masked[id] = &cp
	}
	return c
}

// compareTallies is requireEqualResults without the FIT fields, for
// comparisons against hand-adjusted expected tallies (which carry no
// recomputed FIT).
func compareTallies(t *testing.T, label string, want, got *StudyResult) {
	t.Helper()
	if want.Experiments != got.Experiments {
		t.Errorf("%s: experiments %d != %d", label, want.Experiments, got.Experiments)
	}
	for _, id := range faultmodel.AllIDs() {
		pa, pb := want.Masked[id], got.Masked[id]
		if pa.Successes != pb.Successes || pa.Trials != pb.Trials {
			t.Errorf("%s: %v tally %d/%d != %d/%d",
				label, id, pa.Successes, pa.Trials, pb.Successes, pb.Trials)
		}
	}
	if want.Perturb != got.Perturb {
		t.Errorf("%s: perturbation stats %+v != %+v", label, want.Perturb, got.Perturb)
	}
}

// TestChaosRecoversToCleanTallies injects panics and a hang into a campaign
// and requires the supervised run to produce exactly the clean run's tallies
// minus the quarantined experiments — at every worker count, under -race.
func TestChaosRecoversToCleanTallies(t *testing.T) {
	base := chaosBase()
	panicAt := map[chaosKey]bool{
		{shard: 0, cur: Cursor{Input: 0, Model: 0, Sample: 0}}: true,
		{shard: 3, cur: Cursor{Input: 0, Model: 1, Sample: 2}}: true,
		{shard: 7, cur: Cursor{Input: 1, Model: 6, Sample: 1}}: true, // GlobalControl
	}
	hangAt := chaosKey{shard: 9, cur: Cursor{Input: 1, Model: 2, Sample: 0}}
	targets := map[chaosKey]bool{hangAt: true}
	for k := range panicAt {
		targets[k] = true
	}

	clean, seen := observeClean(t, base, targets)
	expected := cloneTallies(clean)
	for k := range targets {
		subtractExperiment(expected, seen[k])
	}

	// The deadline must sit far above a legitimate experiment's duration
	// (tens of ms, but 10-100x that under -race with loaded workers): only
	// the synthetic hang — which blocks until cleanup — may trip it.
	const deadline = 5 * time.Second
	release := make(chan struct{})
	t.Cleanup(func() { close(release) })
	chaos := &chaosPolicy{
		experiment: func(shard int, cur Cursor) {
			k := chaosKey{shard, cur}
			if panicAt[k] {
				panic("chaos: synthetic panic")
			}
			if k == hangAt {
				<-release
			}
		},
	}

	run := func(workers int) *StudyResult {
		opts := base
		opts.Workers = workers
		opts.ExperimentTimeout = deadline
		opts.chaos = chaos
		opts.Telemetry = telemetry.New()
		res, err := Study(context.Background(), accel.NVDLASmall(), engineWorkload(t), opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Partial {
			t.Errorf("workers=%d: %d quarantines within budget flagged the result partial", workers, len(res.Quarantined))
		}
		if len(res.Quarantined) != len(targets) {
			t.Fatalf("workers=%d: quarantined %d experiments, want %d: %+v",
				workers, len(res.Quarantined), len(targets), res.Quarantined)
		}
		for _, q := range res.Quarantined {
			k := chaosKey{q.Shard, q.Cursor}
			switch {
			case panicAt[k]:
				if q.Reason != ReasonPanic || q.Detail != "chaos: synthetic panic" {
					t.Errorf("workers=%d: %+v quarantined as (%s, %q), want recovered panic", workers, k, q.Reason, q.Detail)
				}
			case k == hangAt:
				if q.Reason != ReasonTimeout {
					t.Errorf("workers=%d: hung experiment quarantined as %s, want %s", workers, q.Reason, ReasonTimeout)
				}
			default:
				t.Errorf("workers=%d: unexpected quarantine %+v", workers, q)
			}
			if q.Model != seen[k].id.String() {
				t.Errorf("workers=%d: quarantine %+v names model %s, want %s", workers, k, q.Model, seen[k].id)
			}
		}
		rec := res1Recovery(t, opts.Telemetry)
		if rec.PanicsRecovered != int64(len(panicAt)) || rec.Timeouts != 1 || rec.Quarantined != int64(len(targets)) {
			t.Errorf("workers=%d: recovery counters %+v, want %d panics / 1 timeout / %d quarantined",
				workers, rec, len(panicAt), len(targets))
		}
		return res
	}

	serial := run(1)
	compareTallies(t, "chaos vs clean-minus-quarantined", expected, serial)
	requireEqualResults(t, "chaos workers=1 vs workers=8", serial, run(8))
}

// res1Recovery fetches the telemetry recovery snapshot, failing if absent.
func res1Recovery(t *testing.T, tel *telemetry.Collector) *telemetry.RecoverySnapshot {
	t.Helper()
	rec := tel.Snapshot().Recovery
	if rec == nil {
		t.Fatal("chaos campaign produced no telemetry recovery snapshot")
	}
	return rec
}

// TestChaosResumeRoundTrip interrupts a chaos-ridden campaign mid-flight and
// resumes it from the saved v2 checkpoint; the resumed run must reproduce the
// uninterrupted chaos run's StudyResult and quarantine list exactly.
func TestChaosResumeRoundTrip(t *testing.T) {
	base := chaosBase()
	base.Workers = 4
	panicAt := map[chaosKey]bool{
		{shard: 1, cur: Cursor{Input: 0, Model: 0, Sample: 1}}:  true,
		{shard: 5, cur: Cursor{Input: 0, Model: 3, Sample: 0}}:  true,
		{shard: 13, cur: Cursor{Input: 1, Model: 4, Sample: 2}}: true,
	}
	chaos := &chaosPolicy{
		experiment: func(shard int, cur Cursor) {
			if panicAt[chaosKey{shard, cur}] {
				panic("chaos: synthetic panic")
			}
		},
	}
	w := engineWorkload(t)
	cfg := accel.NVDLASmall()

	full := base
	full.chaos = chaos
	baseline, err := Study(context.Background(), cfg, w, full)
	if err != nil {
		t.Fatal(err)
	}
	if len(baseline.Quarantined) != len(panicAt) {
		t.Fatalf("uninterrupted chaos run quarantined %d, want %d", len(baseline.Quarantined), len(panicAt))
	}

	// Interrupt a second chaos run mid-flight.
	ckptPath := filepath.Join(t.TempDir(), "chaos.checkpoint.json")
	tel := telemetry.New()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stop := make(chan struct{})
	go func() {
		defer cancel()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if tel.Experiments() >= int64(baseline.Experiments)/2 {
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	opts := full
	opts.Telemetry = tel
	opts.CheckpointPath = ckptPath
	_, err = Study(ctx, cfg, w, opts)
	close(stop)
	var intr *Interrupted
	if !errors.As(err, &intr) {
		t.Fatalf("interrupted chaos study returned %v, want *Interrupted", err)
	}

	// Resume from the checkpoint file, chaos still active: targets not yet
	// reached fail on the resumed run; already-quarantined ones are skipped.
	saved, err := LoadCheckpoint(ckptPath)
	if err != nil {
		t.Fatal(err)
	}
	if saved.Version != checkpointVersion {
		t.Errorf("saved checkpoint has version %d, want %d", saved.Version, checkpointVersion)
	}
	resume := full
	resume.Resume = saved
	res, err := Study(context.Background(), cfg, w, resume)
	if err != nil {
		t.Fatal(err)
	}
	requireEqualResults(t, "chaos resume", baseline, res)
	if !reflect.DeepEqual(baseline.Quarantined, res.Quarantined) {
		t.Errorf("resumed quarantine list diverged:\nfull:   %+v\nresume: %+v",
			baseline.Quarantined, res.Quarantined)
	}
}

// TestCheckpointV1Rejected: v1 checkpoints predate quarantine tracking and
// cursor-derived sampling; loading one must fail loudly, and a fabricated v1
// Checkpoint value must never match a campaign.
func TestCheckpointV1Rejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v1.json")
	v1 := `{"version":1,"workload":"mobilenet","precision":"fp16","tolerance":0.1,` +
		`"samples":120,"inputs":2,"seed":21,"shards":16,"experiments":0,"shard":[]}`
	if err := os.WriteFile(path, []byte(v1), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := LoadCheckpoint(path)
	if err == nil || !strings.Contains(err.Error(), "version 1") {
		t.Errorf("loading a v1 checkpoint returned %v, want a version error", err)
	}

	w := engineWorkload(t)
	cfg := accel.NVDLASmall()
	opts := chaosBase()
	cp := &Checkpoint{
		Version: 1, Config: cfg.Fingerprint(),
		Workload: w.Net.Name(), Precision: w.Net.Precision.String(),
		Tolerance: opts.Tolerance, Samples: opts.Samples, Inputs: opts.Inputs,
		Seed: opts.Seed, Shards: opts.shards(), Shard: make([]ShardCheckpoint, opts.shards()),
	}
	if cp.Matches(cfg, w, opts, opts.shards()) {
		t.Error("a v1 checkpoint matched a v2 campaign")
	}
	cp.Version = checkpointVersion
	if !cp.Matches(cfg, w, opts, opts.shards()) {
		t.Error("the same checkpoint at v2 must match (test is self-consistent)")
	}
}

// TestChaosCheckpointIOErrors injects synthetic checkpoint-write failures.
// Transient ones must be absorbed by the retry loop (and counted); a
// persistent failure of the on-interrupt save must surface as an error.
func TestChaosCheckpointIOErrors(t *testing.T) {
	w := engineWorkload(t)
	cfg := accel.NVDLASmall()
	base := chaosBase()
	base.Workers = 4
	base.IOBackoff = time.Millisecond

	t.Run("transient", func(t *testing.T) {
		clean, err := Study(context.Background(), cfg, w, base)
		if err != nil {
			t.Fatal(err)
		}

		// Interrupt mid-flight with a save path that fails twice per write:
		// the on-cancel checkpoint save must retry through it.
		var attempts atomic.Int64
		tel := telemetry.New()
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		stop := make(chan struct{})
		go func() {
			defer cancel()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if tel.Experiments() >= int64(clean.Experiments)/2 {
					return
				}
				time.Sleep(time.Millisecond)
			}
		}()
		ckptPath := filepath.Join(t.TempDir(), "transient.json")
		opts := base
		opts.Telemetry = tel
		opts.CheckpointPath = ckptPath
		opts.chaos = &chaosPolicy{save: func(string) error {
			if attempts.Add(1)%3 != 0 {
				return errors.New("chaos: synthetic EIO")
			}
			return nil
		}}
		_, err = Study(ctx, cfg, w, opts)
		close(stop)
		var intr *Interrupted
		if !errors.As(err, &intr) {
			t.Fatalf("got %v, want *Interrupted (the transient failures must be retried through)", err)
		}
		if intr.Path != ckptPath {
			t.Fatalf("checkpoint not saved despite retries (path %q)", intr.Path)
		}
		if rec := res1Recovery(t, tel); rec.IORetries < 2 {
			t.Errorf("telemetry counted %d I/O retries, want >= 2", rec.IORetries)
		}

		// The retried-through checkpoint is intact: resuming completes to the
		// clean result.
		saved, err := LoadCheckpoint(ckptPath)
		if err != nil {
			t.Fatal(err)
		}
		resume := base
		resume.Resume = saved
		res, err := Study(context.Background(), cfg, w, resume)
		if err != nil {
			t.Fatal(err)
		}
		requireEqualResults(t, "resume after transient save failures", clean, res)
	})

	t.Run("persistent", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		opts := base
		opts.IORetries = 2
		opts.CheckpointPath = filepath.Join(t.TempDir(), "never.json")
		opts.chaos = &chaosPolicy{save: func(string) error {
			return errors.New("chaos: synthetic EIO")
		}}
		_, err := Study(ctx, cfg, w, opts)
		if err == nil || !strings.Contains(err.Error(), "saving the checkpoint failed") {
			t.Errorf("persistently failing save returned %v, want a checkpoint-save error", err)
		}
		var intr *Interrupted
		if errors.As(err, &intr) {
			t.Error("a lost checkpoint must not be reported as a clean interrupt")
		}
	})
}

// TestChaosFailureBudget drives one shard's quarantines past its failure
// budget: the shard must stop contributing and the study degrade into a
// flagged partial result — while an unlimited budget grinds through every
// failure.
func TestChaosFailureBudget(t *testing.T) {
	w := engineWorkload(t)
	cfg := accel.NVDLASmall()
	base := chaosBase()
	base.Workers = 4
	const badShard = 3
	chaos := &chaosPolicy{experiment: func(shard int, cur Cursor) {
		if shard == badShard {
			panic("chaos: shard cursed")
		}
	}}

	// The cursed shard's full experiment count, from the deterministic
	// partition arithmetic (see chaosBase).
	shardTotal := 0
	for input := 0; input < base.Inputs; input++ {
		per := base.Samples / base.Inputs
		if input < base.Samples%base.Inputs {
			per++
		}
		mine := per / base.shards()
		if badShard < per%base.shards() {
			mine++
		}
		shardTotal += mine * len(faultmodel.AllIDs())
	}

	t.Run("exhausted", func(t *testing.T) {
		tel := telemetry.New()
		opts := base
		opts.chaos = chaos
		opts.FailureBudget = 5
		opts.Telemetry = tel
		res, err := Study(context.Background(), cfg, w, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Partial {
			t.Error("exhausted failure budget did not flag the result partial")
		}
		if len(res.Quarantined) != opts.FailureBudget+1 {
			t.Errorf("quarantined %d experiments, want %d (budget + the exceeding one)",
				len(res.Quarantined), opts.FailureBudget+1)
		}
		for _, q := range res.Quarantined {
			if q.Shard != badShard {
				t.Errorf("quarantine leaked to shard %d: %+v", q.Shard, q)
			}
		}
		rec := res1Recovery(t, tel)
		found := false
		for _, s := range rec.Shards {
			if s.Shard == badShard {
				found = true
				if !s.Exhausted || s.Failures != int64(opts.FailureBudget+1) || s.Budget != int64(opts.FailureBudget) {
					t.Errorf("shard budget state %+v, want exhausted at %d/%d", s, opts.FailureBudget+1, opts.FailureBudget)
				}
			}
		}
		if !found {
			t.Error("telemetry recovery snapshot misses the exhausted shard")
		}
	})

	t.Run("unlimited", func(t *testing.T) {
		opts := base
		opts.chaos = chaos
		opts.FailureBudget = -1
		res, err := Study(context.Background(), cfg, w, opts)
		if err != nil {
			t.Fatal(err)
		}
		if res.Partial {
			t.Error("unlimited budget flagged the result partial")
		}
		if len(res.Quarantined) != shardTotal {
			t.Errorf("quarantined %d experiments, want the cursed shard's full %d", len(res.Quarantined), shardTotal)
		}
	})
}

// TestExperimentSeedStability pins the cursor-derived stream mixing: the
// checkpoint format (v2) depends on every experiment's stream being a pure
// function of (shard seed, cursor), so a change here is a format break.
func TestExperimentSeedStability(t *testing.T) {
	a := experimentSeed(shardSeed(21, 3), Cursor{Input: 1, Model: 2, Sample: 4})
	b := experimentSeed(shardSeed(21, 3), Cursor{Input: 1, Model: 2, Sample: 4})
	if a != b {
		t.Fatalf("experimentSeed is not deterministic: %d != %d", a, b)
	}
	seen := map[int64]Cursor{}
	for input := 0; input < 4; input++ {
		for sample := 0; sample < 64; sample++ {
			cur := Cursor{Input: input, Sample: sample}
			s := experimentSeed(shardSeed(21, 3), cur)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision between cursors %+v and %+v", prev, cur)
			}
			seen[s] = cur
		}
	}
	if fmt.Sprintf("%d", experimentSeed(0, Cursor{})) == "0" {
		t.Error("zero inputs must still mix to a non-trivial seed")
	}
}

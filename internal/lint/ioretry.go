package lint

import (
	"go/ast"
)

// ioRetryScope lists the packages that persist campaign artifacts —
// checkpoints, manifests, results, telemetry exports. Raw os.WriteFile
// there loses both guarantees PR 2/5 established: atomicity (temp file +
// fsync + rename, so a crash never leaves a torn checkpoint) and retry
// (transient EBUSY/ENOSPC on network filesystems). Bench tooling
// (cmd/benchjson) writes throwaway measurement files and is deliberately
// out of scope.
var ioRetryScope = []string{
	"internal/campaign",
	"internal/distrib",
	"internal/telemetry",
	"cmd/study",
	"cmd/fidelity",
	"cmd/fidelityd",
}

// ioWriteFuncs are the os entry points that create or truncate files.
var ioWriteFuncs = map[string]bool{
	"WriteFile": true,
	"Create":    true,
	"OpenFile":  true,
}

// ioSanctionedFuncs are the campaign-package functions allowed to touch os
// write primitives directly: they ARE the safe wrappers.
var ioSanctionedFuncs = map[string]bool{
	"AtomicWriteJSON": true,
	"RetryIO":         true,
}

// IORetry flags artifact writes that bypass the atomic/retry wrappers.
var IORetry = &Analyzer{
	Name: "ioretry",
	Doc: `ioretry: artifact writes go through campaign.AtomicWriteJSON / RetryIO

Checkpoints, manifests, and results are the engine's durable state; PR 2
made their writes atomic (temp + fsync + rename, so resume never reads a
torn file) and PR 5 made them retried (lease churn on network filesystems
surfaces as transient write errors). A raw os.WriteFile / os.Create /
os.OpenFile in a persistence package silently sheds both guarantees.

The wrappers themselves (campaign.AtomicWriteJSON, campaign.RetryIO) are
the sanctioned home for raw os calls. Writes that are genuinely not
campaign artifacts (a debug dump, a pprof profile) carry a
//lint:allow ioretry <reason>.`,
	Run: runIORetry,
}

func runIORetry(pass *Pass) {
	if !pathMatchesAny(pass.Pkg.Path(), ioRetryScope) {
		return
	}
	inCampaign := pathMatches(pass.Pkg.Path(), "internal/campaign")
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if inCampaign && ioSanctionedFuncs[fd.Name.Name] {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				pkg, name := pkgFunc(pass.Info, call)
				if pkg != "os" || !ioWriteFuncs[name] {
					return true
				}
				pass.Reportf(call.Pos(),
					"os.%s bypasses the atomic+retry write path; persist campaign artifacts via campaign.AtomicWriteJSON (inside campaign.RetryIO for transient-error tolerance)", name)
				return true
			})
		}
	}
}

package lint

import (
	"go/ast"
	"go/parser"
	"go/types"
	"strings"
	"testing"
)

// analyzeSource runs analyzers over one in-memory file placed at an
// in-scope engine import path and returns the surviving diagnostics.
func analyzeSource(t *testing.T, src string, analyzers ...*Analyzer) []Diagnostic {
	t.Helper()
	l := loader()
	fset := l.fset
	f, err := parser.ParseFile(fset, "suppress_fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Uses:  map[*ast.Ident]types.Object{},
		Defs:  map[*ast.Ident]types.Object{},
	}
	cfg := types.Config{Importer: l}
	pkg, err := cfg.Check("fidelity/internal/suppressfix", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return Run(&Package{Fset: fset, Files: []*ast.File{f}, Pkg: pkg, Info: info}, analyzers)
}

func messages(diags []Diagnostic) []string {
	var out []string
	for _, d := range diags {
		out = append(out, d.Analyzer+": "+d.Message)
	}
	return out
}

func TestSuppressionConsumesFinding(t *testing.T) {
	const src = `package suppressfix

import "time"

func standalone() time.Time {
	//lint:allow wallclock reviewed: liveness read
	return time.Now()
}

func trailing() time.Time {
	return time.Now() //lint:allow wallclock reviewed: liveness read
}
`
	diags := analyzeSource(t, src, WallClock)
	if len(diags) != 0 {
		t.Fatalf("suppressed findings survived: %v", messages(diags))
	}
}

func TestSuppressionOnlyCoversItsLine(t *testing.T) {
	const src = `package suppressfix

import "time"

func covered() time.Time {
	//lint:allow wallclock reviewed
	return time.Now()
}

func uncovered() time.Time {
	return time.Now()
}
`
	diags := analyzeSource(t, src, WallClock)
	if len(diags) != 1 || diags[0].Analyzer != "wallclock" || diags[0].Position.Line != 11 {
		t.Fatalf("want exactly the line-11 wallclock finding, got %v", messages(diags))
	}
}

func TestUnusedSuppressionReported(t *testing.T) {
	const src = `package suppressfix

//lint:allow wallclock nothing here reads the clock
var x = 1
`
	diags := analyzeSource(t, src, WallClock)
	if len(diags) != 1 || diags[0].Analyzer != "suppression" ||
		!strings.Contains(diags[0].Message, "unused suppression for wallclock") {
		t.Fatalf("want one unused-suppression finding, got %v", messages(diags))
	}
}

func TestUnusedSuppressionIgnoredWhenAnalyzerDidNotRun(t *testing.T) {
	const src = `package suppressfix

//lint:allow detrand justified elsewhere
var x = 1
`
	// Only wallclock runs, so the detrand allow cannot be judged unused.
	diags := analyzeSource(t, src, WallClock)
	if len(diags) != 0 {
		t.Fatalf("allow for a non-running analyzer was reported: %v", messages(diags))
	}
}

func TestMalformedSuppressions(t *testing.T) {
	const src = `package suppressfix

//lint:allow
var a = 1

//lint:allow nosuchanalyzer some reason
var b = 1

//lint:allow wallclock
var c = 1
`
	diags := analyzeSource(t, src, WallClock)
	if len(diags) != 3 {
		t.Fatalf("want 3 suppression findings, got %v", messages(diags))
	}
	wants := []string{
		"malformed suppression",
		"unknown analyzer nosuchanalyzer",
		"lacks a reason",
	}
	for i, w := range wants {
		if diags[i].Analyzer != "suppression" || !strings.Contains(diags[i].Message, w) {
			t.Errorf("diagnostic %d = %q, want it to contain %q", i, diags[i].Message, w)
		}
	}
}

func TestSuppressionSkippedInTestFiles(t *testing.T) {
	// Run filters _test.go files entirely, so a finding there never
	// surfaces and its absence of suppression never matters.
	l := loader()
	f, err := parser.ParseFile(l.fset, "clocky_test.go", `package suppressfix

import "time"

func helper() time.Time { return time.Now() }
`, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Uses:  map[*ast.Ident]types.Object{},
		Defs:  map[*ast.Ident]types.Object{},
	}
	cfg := types.Config{Importer: l}
	pkg, err := cfg.Check("fidelity/internal/suppressfix", l.fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(&Package{Fset: l.fset, Files: []*ast.File{f}, Pkg: pkg, Info: info}, []*Analyzer{WallClock})
	if len(diags) != 0 {
		t.Fatalf("test file was analyzed: %v", messages(diags))
	}
}

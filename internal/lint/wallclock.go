package lint

import (
	"go/ast"
)

// wallClockExempt lists packages whose job is measuring or reporting wall
// time: telemetry owns timing instrumentation, and benchmark tooling exists
// to measure elapsed time. Everywhere else in internal/, a time.Now read in
// a decision path makes the outcome depend on when the run happened —
// breaking replay bit-exactness (PR 4) and checkpoint identity (PR 2).
var wallClockExempt = []string{
	"internal/telemetry",
	"internal/bench",
}

// wallClockFuncs are the time package functions that read the wall clock.
// time.Sleep and timers are deliberately not flagged: they control pacing,
// not computed results.
var wallClockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

// WallClock forbids wall-clock reads in engine packages.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc: `wallclock: engine decision paths must not read the wall clock

time.Now / time.Since / time.Until in engine code make results a function
of when the campaign ran: replay (PR 4) recomputes a fault's downstream
cone and must reproduce the original bits; checkpoints (PR 2) must hash
identically on resume. Telemetry owns timing instrumentation
(internal/telemetry) and benchmark code measures elapsed time by design;
both are exempt. Code outside internal/ (cmd/ binaries stamping manifest
timestamps) is out of scope.

Legitimate wall-clock uses inside the engine — lease TTL liveness in the
distrib coordinator, the Sec. VI speedup measurement that IS a timing
deliverable — carry a //lint:allow wallclock <reason> at the call site, so
every such read is an audited decision.`,
	Run: runWallClock,
}

func runWallClock(pass *Pass) {
	pkgPath := pass.Pkg.Path()
	if !pathMatches(pkgPath, "internal") {
		return
	}
	if pathMatchesAny(pkgPath, wallClockExempt) {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, name := pkgFunc(pass.Info, call)
			if pkg != "time" || !wallClockFuncs[name] {
				return true
			}
			pass.Reportf(call.Pos(),
				"time.%s reads the wall clock in engine code; timing belongs to telemetry — if this read is genuinely about liveness or measurement, annotate it with //lint:allow wallclock <reason>", name)
			return true
		})
	}
}

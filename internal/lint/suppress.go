package lint

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// allowPrefix introduces a suppression comment:
//
//	//lint:allow <analyzer> <reason>
//
// It suppresses that analyzer's findings on the same line, or — for a
// comment standing on its own line — on the next line. The reason is
// mandatory: a suppression is a reviewed decision, and the comment is where
// the review lives.
const allowPrefix = "lint:allow"

// allow is one parsed suppression comment.
type allow struct {
	analyzer string
	reason   string
	pos      token.Position
	used     bool
	// line is the source line the allow applies to (its own line for a
	// trailing comment, the following line for a standalone one).
	line int
}

// parseAllows extracts every suppression comment from the files. Malformed
// suppressions (missing analyzer or reason, unknown analyzer name) are
// reported immediately: a suppression that silently fails to parse would
// otherwise look like a fixed finding.
func parseAllows(fset *token.FileSet, files []*ast.File, analyzers []*Analyzer, diags *[]Diagnostic) []*allow {
	known := map[string]bool{}
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	report := func(pos token.Pos, msg string) {
		*diags = append(*diags, Diagnostic{
			Analyzer: "suppression",
			Position: fset.Position(pos),
			Message:  msg,
		})
	}
	var allows []*allow
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, allowPrefix))
				if len(fields) == 0 {
					report(c.Pos(), "malformed suppression: want //lint:allow <analyzer> <reason>")
					continue
				}
				if !known[fields[0]] {
					report(c.Pos(), "suppression names unknown analyzer "+fields[0])
					continue
				}
				if len(fields) < 2 {
					report(c.Pos(), "suppression for "+fields[0]+" lacks a reason; every allow must say why")
					continue
				}
				pos := fset.Position(c.Pos())
				line := pos.Line
				if onOwnLine(fset, f, c) {
					line++
				}
				allows = append(allows, &allow{
					analyzer: fields[0],
					reason:   strings.Join(fields[1:], " "),
					pos:      pos,
					line:     line,
				})
			}
		}
	}
	return allows
}

// onOwnLine reports whether comment c is the first thing on its source line
// (i.e. not trailing code).
func onOwnLine(fset *token.FileSet, f *ast.File, c *ast.Comment) bool {
	cpos := fset.Position(c.Pos())
	first := true
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || !first {
			return false
		}
		// Any code token that starts before the comment on the same line
		// makes it a trailing comment.
		npos := fset.Position(n.Pos())
		if npos.Line == cpos.Line && npos.Column < cpos.Column {
			if _, isFile := n.(*ast.File); !isFile {
				first = false
				return false
			}
		}
		return true
	})
	return first
}

// applySuppressions filters diags through the files' allow comments. A
// matched allow consumes the diagnostics of its analyzer on its target
// line; an allow that matches nothing — for an analyzer that actually ran —
// is reported as unused, so stale suppressions surface instead of hiding
// future regressions.
func applySuppressions(fset *token.FileSet, files []*ast.File, analyzers []*Analyzer, diags []Diagnostic) []Diagnostic {
	var out []Diagnostic
	allows := parseAllows(fset, files, analyzers, &out)
	byKey := map[string][]*allow{}
	for _, al := range allows {
		// Allows are file-scoped: key by (file, line, analyzer).
		key := al.pos.Filename + "\x00" + al.analyzer
		byKey[key] = append(byKey[key], al)
	}
	for _, d := range diags {
		suppressed := false
		for _, al := range byKey[d.Position.Filename+"\x00"+d.Analyzer] {
			if al.line == d.Position.Line {
				al.used = true
				suppressed = true
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	ran := map[string]bool{}
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	for _, al := range allows {
		if !al.used && ran[al.analyzer] {
			out = append(out, Diagnostic{
				Analyzer: "suppression",
				Position: al.pos,
				Message:  "unused suppression for " + al.analyzer + ": nothing to allow on line " + strconv.Itoa(al.line),
			})
		}
	}
	return out
}

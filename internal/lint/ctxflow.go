package lint

import (
	"go/ast"
)

// ctxFlowScope lists the engine packages whose exported API does
// long-running work — iterating experiments, coordinating shards, touching
// the filesystem or network. Cancellation must be able to reach that work:
// the distributed coordinator (PR 5) re-leases shards from workers that
// stop responding, which only functions if a worker's long loops actually
// observe ctx.Done.
var ctxFlowScope = []string{
	"internal/campaign",
	"internal/distrib",
	"internal/inject",
	"internal/core",
}

// CtxFlow requires engine API to accept and forward context.Context.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc: `ctxflow: engine API must accept and forward context.Context

Two rules in campaign/distrib/inject/core:

  - Library code never conjures its own root context:
    context.Background() / context.TODO() sever the caller's cancellation
    chain, so a cancelled campaign keeps burning CPU (or holding leases)
    in whatever subtree re-rooted itself.
  - An exported function that calls into context-aware machinery (any
    callee whose first parameter is a context.Context) must itself take a
    ctx parameter and forward it. Otherwise the API forces its callers to
    the first problem.

Functions that do purely synchronous in-memory work are untouched: the
analyzer keys on what the body calls, not on the function's name.`,
	Run: runCtxFlow,
}

func runCtxFlow(pass *Pass) {
	if !pathMatchesAny(pass.Pkg.Path(), ctxFlowScope) {
		return
	}
	for _, f := range pass.Files {
		// Rule 1: no context.Background()/TODO() anywhere in library code.
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, name := pkgFunc(pass.Info, call)
			if pkg == "context" && (name == "Background" || name == "TODO") {
				pass.Reportf(call.Pos(),
					"context.%s roots a fresh context in library code, cutting the caller's cancellation chain; accept a ctx parameter and pass it down", name)
			}
			return true
		})

		// Rule 2: exported functions reaching context-aware callees must
		// take a ctx themselves.
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			if declHasContext(pass, fd) {
				continue
			}
			// Find the first call to a context-aware callee in the body.
			var firstPos ast.Node
			var calleeName string
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if firstPos != nil {
					return false
				}
				// Do not descend into function literals: a closure that
				// takes its own ctx (e.g. handed to an errgroup-style
				// runner) is a separate scope.
				if _, isLit := n.(*ast.FuncLit); isLit {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				csig := calleeSignature(pass.Info, call)
				if csig == nil || csig.Params().Len() == 0 {
					return true
				}
				if isContextType(csig.Params().At(0).Type()) {
					firstPos = call
					calleeName = exprString(call.Fun)
				}
				return true
			})
			if firstPos != nil {
				pass.Reportf(fd.Name.Pos(),
					"exported %s calls context-aware %s but takes no context.Context; accept ctx and forward it so cancellation reaches the work", fd.Name.Name, calleeName)
			}
		}
	}
}

// declHasContext reports whether the function declaration has a
// context.Context parameter (receiver excluded).
func declHasContext(pass *Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		tv, ok := pass.Info.Types[field.Type]
		if ok && isContextType(tv.Type) {
			return true
		}
	}
	return false
}

// Package lint implements fidelitylint: a suite of static analyzers that
// enforce the engine's determinism and robustness invariants at compile
// time, instead of waiting for a differential test to catch a violation
// after it ships.
//
// Every correctness claim the reproduction makes — golden/faulty
// equivalence, shard determinism (results depend only on Seed and shard
// count, PR 1), byte-identical checkpoint resume (PR 2), replay
// bit-exactness (PR 4), lease re-issue safety (PR 5), and site-grouped
// batching (PR 6) — rests on a handful of code disciplines that are easy to
// break silently: one stray math/rand global call, one unsorted map
// iteration in a snapshot assembly path, one wall-clock read in a decision
// path. The analyzers encode those disciplines:
//
//   - detrand: all engine randomness flows through
//     faultmodel.NewStreamSource-seeded streams; the math/rand global RNG
//     and ad-hoc rand.NewSource construction are forbidden in engine
//     packages.
//   - maporder: ranging over a map while feeding an order-sensitive sink
//     (slice assembly, an encoder, a writer, a hash) requires a
//     deterministic sort.
//   - ctxflow: exported engine API accepts and forwards context.Context;
//     library code never conjures context.Background().
//   - wallclock: time.Now/Since/Until stay out of engine decision paths;
//     telemetry owns the wall clock.
//   - ioretry: checkpoint/manifest/result writes go through
//     campaign.AtomicWriteJSON / campaign.RetryIO, never raw os.WriteFile.
//
// The suite runs as `go vet -vettool=$(fidelitylint binary)` (see
// cmd/fidelitylint) and standalone. Findings that are intentional are
// suppressed in place with an auditable comment:
//
//	//lint:allow <analyzer> <reason>
//
// placed on the offending line or the line directly above it. The reason is
// mandatory; malformed or unused suppressions are themselves diagnostics,
// so the suppression inventory cannot rot.
package lint

package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path"
	"sort"
	"strings"
)

// Analyzer is one invariant checker. The shape deliberately mirrors
// golang.org/x/tools/go/analysis so the suite could migrate to the upstream
// framework without rewriting the checkers; it is implemented on the
// standard library alone so the module stays dependency-free and the vet
// tool builds offline.
type Analyzer struct {
	// Name is the analyzer's identifier, used in diagnostics, suppression
	// comments, and the -only flag of cmd/fidelitylint.
	Name string
	// Doc is the one-paragraph description printed by `fidelitylint help`.
	Doc string
	// Run inspects one type-checked package and reports findings via
	// pass.Reportf.
	Run func(pass *Pass)
}

// Pass carries one type-checked package through an analyzer.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	analyzer *Analyzer
	diags    *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.analyzer.Name,
		Position: p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Position token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Position, d.Analyzer, d.Message)
}

// Analyzers returns the full suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{DetRand, MapOrder, CtxFlow, WallClock, IORetry}
}

// ByName resolves a comma-separated analyzer list; an unknown name is an
// error so a typo in CI configuration cannot silently disable a checker.
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return Analyzers(), nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range Analyzers() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// Package bundles everything the runner needs for one package.
type Package struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Run executes the given analyzers over one package and returns the
// surviving diagnostics: test files are skipped (tests exercise
// nondeterminism deliberately), `//lint:allow` suppressions are applied, and
// malformed or unused suppressions are reported as findings of their own.
// Diagnostics come back sorted by position.
func Run(p *Package, analyzers []*Analyzer) []Diagnostic {
	files := make([]*ast.File, 0, len(p.Files))
	for _, f := range p.Files {
		if strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		files = append(files, f)
	}
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Fset:     p.Fset,
			Files:    files,
			Pkg:      p.Pkg,
			Info:     p.Info,
			analyzer: a,
			diags:    &diags,
		}
		a.Run(pass)
	}
	diags = applySuppressions(p.Fset, files, analyzers, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Position, diags[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags
}

// pathMatches reports whether pkgPath contains pattern as a slash-bounded
// sub-path. pattern itself may span segments ("internal/campaign",
// "cmd/study"). Matching is positional, not prefix-based, so the module
// root "fidelity" never matches "fidelity/internal/..." by accident.
func pathMatches(pkgPath, pattern string) bool {
	if pkgPath == pattern {
		return true
	}
	if strings.HasSuffix(pkgPath, "/"+pattern) {
		return true
	}
	return strings.Contains(pkgPath, "/"+pattern+"/") || strings.HasPrefix(pkgPath, pattern+"/")
}

// pathMatchesAny reports whether pkgPath matches any of patterns.
func pathMatchesAny(pkgPath string, patterns []string) bool {
	for _, p := range patterns {
		if pathMatches(pkgPath, p) {
			return true
		}
	}
	return false
}

// pkgFunc resolves a call to a package-level function and returns its
// package path and name ("", "" when the call is anything else: a method, a
// conversion, a local function value).
func pkgFunc(info *types.Info, call *ast.CallExpr) (pkgPath, name string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return "", ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Type().(*types.Signature).Recv() != nil {
		return "", ""
	}
	return pn.Imported().Path(), sel.Sel.Name
}

// calleeSignature returns the type signature of a call's callee, nil when
// unresolvable (conversions, invalid code).
func calleeSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[call.Fun]
	if !ok {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// hasContextParam reports whether any parameter of sig is a context.Context.
func hasContextParam(sig *types.Signature) bool {
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isContextType(params.At(i).Type()) {
			return true
		}
	}
	return false
}

// exprString renders a simple expression (identifier / selector / index
// chains) to a canonical string for structural matching, e.g. "m.Sources".
// Unsupported forms render with a position marker so they never collide.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[" + exprString(e.Index) + "]"
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.ParenExpr:
		return exprString(e.X)
	case *ast.BasicLit:
		return e.Value
	case *ast.CallExpr:
		return exprString(e.Fun) + "(…)"
	default:
		return fmt.Sprintf("«%T@%d»", e, e.Pos())
	}
}

// baseFile returns the basename of the file containing pos.
func baseFile(fset *token.FileSet, pos token.Pos) string {
	return path.Base(fset.Position(pos).Filename)
}

package lint

// The fixture harness mirrors x/tools' analysistest on the standard
// library: fixture packages live under testdata/src/<importpath>, carry
// `// want `+"`regexp`"+` comments on the lines where diagnostics are
// expected, and are type-checked with fidelity/... imports resolved to
// fixture doubles (testdata/src/fidelity/internal/faultmodel is a stub of
// the real stream package) and everything else resolved by compiling the
// standard library from GOROOT source — no network, no export data needed.

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// fixtureLoader type-checks fixture packages, memoized so the expensive
// source-importer work for stdlib dependencies happens once per run.
type fixtureLoader struct {
	fset *token.FileSet
	std  types.Importer
	pkgs map[string]*fixturePkg
}

type fixturePkg struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
	err   error
}

var (
	loaderOnce   sync.Once
	sharedLoader *fixtureLoader
)

func loader() *fixtureLoader {
	loaderOnce.Do(func() {
		fset := token.NewFileSet()
		sharedLoader = &fixtureLoader{
			fset: fset,
			std:  importer.ForCompiler(fset, "source", nil),
			pkgs: map[string]*fixturePkg{},
		}
	})
	return sharedLoader
}

// Import implements types.Importer: fixture packages shadow everything
// else, so a fixture's `import "fidelity/internal/faultmodel"` resolves to
// the stub under testdata.
func (l *fixtureLoader) Import(path string) (*types.Package, error) {
	if st, err := os.Stat(fixtureDir(path)); err == nil && st.IsDir() {
		fp := l.load(path)
		return fp.pkg, fp.err
	}
	return l.std.Import(path)
}

func fixtureDir(importPath string) string {
	return filepath.Join("testdata", "src", filepath.FromSlash(importPath))
}

func (l *fixtureLoader) load(path string) *fixturePkg {
	if fp, ok := l.pkgs[path]; ok {
		return fp
	}
	fp := &fixturePkg{}
	l.pkgs[path] = fp
	entries, err := os.ReadDir(fixtureDir(path))
	if err != nil {
		fp.err = err
		return fp
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(fixtureDir(path), e.Name()), nil, parser.ParseComments)
		if err != nil {
			fp.err = err
			return fp
		}
		fp.files = append(fp.files, f)
	}
	fp.info = &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Uses:  map[*ast.Ident]types.Object{},
		Defs:  map[*ast.Ident]types.Object{},
	}
	cfg := types.Config{Importer: l}
	fp.pkg, fp.err = cfg.Check(path, l.fset, fp.files, fp.info)
	return fp
}

// wantRe extracts want-expectations of the form `want ...` from fixture comments.
var wantRe = regexp.MustCompile("want `([^`]+)`")

type wantSpec struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*wantSpec {
	t.Helper()
	var out []*wantSpec
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("bad want pattern %q: %v", m[1], err)
					}
					pos := fset.Position(c.Pos())
					out = append(out, &wantSpec{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return out
}

// runFixture analyzes one fixture package and checks its diagnostics
// against the want comments: every diagnostic must match a want on its
// line, every want must be consumed.
func runFixture(t *testing.T, importPath string, analyzers ...*Analyzer) {
	t.Helper()
	l := loader()
	fp := l.load(importPath)
	if fp.err != nil {
		t.Fatalf("fixture %s: %v", importPath, fp.err)
	}
	diags := Run(&Package{Fset: l.fset, Files: fp.files, Pkg: fp.pkg, Info: fp.info}, analyzers)
	wants := collectWants(t, l.fset, fp.files)
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.used && w.file == d.Position.Filename && w.line == d.Position.Line && w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: want %q matched no diagnostic", w.file, w.line, w.re)
		}
	}
}

func TestDetRand(t *testing.T) {
	t.Run("positive", func(t *testing.T) { runFixture(t, "fidelity/internal/campaign/detrandpos", DetRand) })
	t.Run("negative", func(t *testing.T) { runFixture(t, "fidelity/internal/campaign/detrandneg", DetRand) })
	t.Run("out-of-scope", func(t *testing.T) { runFixture(t, "fidelity/internal/report/detrandoos", DetRand) })
}

func TestMapOrder(t *testing.T) {
	t.Run("positive", func(t *testing.T) { runFixture(t, "fidelity/internal/mapfixpos", MapOrder) })
	t.Run("negative", func(t *testing.T) { runFixture(t, "fidelity/internal/mapfixneg", MapOrder) })
	t.Run("out-of-scope", func(t *testing.T) { runFixture(t, "fidelity/examples/mapfixoos", MapOrder) })
}

func TestCtxFlow(t *testing.T) {
	t.Run("positive", func(t *testing.T) { runFixture(t, "fidelity/internal/campaign/ctxfixpos", CtxFlow) })
	t.Run("negative", func(t *testing.T) { runFixture(t, "fidelity/internal/campaign/ctxfixneg", CtxFlow) })
	t.Run("out-of-scope", func(t *testing.T) { runFixture(t, "fidelity/internal/report/ctxfixoos", CtxFlow) })
}

func TestWallClock(t *testing.T) {
	t.Run("positive", func(t *testing.T) { runFixture(t, "fidelity/internal/wallfixpos", WallClock) })
	t.Run("telemetry-exempt", func(t *testing.T) { runFixture(t, "fidelity/internal/telemetry/wallfixneg", WallClock) })
	t.Run("cmd-exempt", func(t *testing.T) { runFixture(t, "fidelity/cmd/wallfixoos", WallClock) })
}

func TestIORetry(t *testing.T) {
	t.Run("positive", func(t *testing.T) { runFixture(t, "fidelity/internal/campaign/iofixpos", IORetry) })
	t.Run("negative", func(t *testing.T) { runFixture(t, "fidelity/internal/campaign/iofixneg", IORetry) })
	t.Run("out-of-scope", func(t *testing.T) { runFixture(t, "fidelity/internal/reuse/iofixoos", IORetry) })
}

func TestByName(t *testing.T) {
	all, err := ByName("")
	if err != nil || len(all) != len(Analyzers()) {
		t.Fatalf("ByName(\"\") = %d analyzers, err %v; want the full suite", len(all), err)
	}
	subset, err := ByName("detrand, wallclock")
	if err != nil || len(subset) != 2 || subset[0] != DetRand || subset[1] != WallClock {
		t.Fatalf("ByName subset = %v, err %v", subset, err)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("ByName accepted an unknown analyzer name")
	}
}

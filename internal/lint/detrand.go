package lint

import (
	"go/ast"
)

// engineRandScope lists the packages whose randomness is part of campaign
// identity: the campaign engine proper (campaign, inject, faultmodel,
// distrib, nn) plus every package that generates seeded campaign inputs —
// model weights, datasets, the naive baseline, tensor fills, reuse
// sampling. A stray global-RNG call or ad-hoc source in any of them shifts
// draws between runs or between Go releases, silently breaking shard
// determinism (PR 1), checkpoint resume (PR 2), and batch target
// prediction (PR 6).
var engineRandScope = []string{
	"internal/campaign",
	"internal/inject",
	"internal/faultmodel",
	"internal/distrib",
	"internal/nn",
	"internal/model",
	"internal/reuse",
	"internal/dataset",
	"internal/baseline",
	"internal/tensor",
}

// randPkgs are the math/rand flavors detrand polices. v2 is included even
// though the repo pins go1.22 semantics: the moment someone reaches for
// rand/v2 in an engine package the same discipline applies.
var randPkgs = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

// randConstructors are package-level functions of math/rand that build
// values from an explicit source or generator rather than touching the
// global RNG. rand.New over a deterministic source is the sanctioned way to
// wrap faultmodel.NewStreamSource; the source constructors themselves are
// reported separately.
var randConstructors = map[string]bool{
	"New":     true,
	"NewZipf": true,
}

// randSourceConstructors seed math/rand's own source types, bypassing the
// engine's stream discipline (SplitMix64 streams derived from
// (Seed, Shard, Cursor); see faultmodel.NewStreamSource).
var randSourceConstructors = map[string]bool{
	"NewSource": true,
	// math/rand/v2 source constructors.
	"NewPCG":     true,
	"NewChaCha8": true,
}

// DetRand forbids the math/rand global RNG and ad-hoc source construction
// in engine packages.
var DetRand = &Analyzer{
	Name: "detrand",
	Doc: `detrand: engine randomness must flow through faultmodel.NewStreamSource

In engine packages (campaign, inject, faultmodel, distrib, nn, and the
seeded input generators), all randomness derives from SplitMix64 streams
seeded from (Seed, Shard, Cursor). Two constructions break that:

  - math/rand top-level functions (rand.Intn, rand.Float64, rand.Shuffle,
    ...) draw from the process-global RNG, whose state is shared across
    goroutines and packages — results would depend on execution
    interleaving and unrelated callers.
  - rand.NewSource / rand/v2 source constructors build math/rand's own
    generators, whose seeding semantics differ from the engine's pinned
    SplitMix64 stream (and whose warm-up cost the engine deliberately
    avoids; see faultmodel/stream.go).

Passing an already-seeded *rand.Rand parameter and wrapping a stream with
rand.New(faultmodel.NewStreamSource(seed)) are both fine.`,
	Run: runDetRand,
}

func runDetRand(pass *Pass) {
	if !pathMatchesAny(pass.Pkg.Path(), engineRandScope) {
		return
	}
	inFaultModel := pathMatches(pass.Pkg.Path(), "internal/faultmodel")
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, name := pkgFunc(pass.Info, call)
			if !randPkgs[pkg] {
				return true
			}
			switch {
			case randSourceConstructors[name]:
				if inFaultModel {
					// faultmodel owns the stream discipline; constructing a
					// source there is how NewStreamSource-style primitives
					// get built in the first place.
					return true
				}
				pass.Reportf(call.Pos(),
					"ad-hoc rand.%s builds a non-stream source; seed engine randomness via faultmodel.NewStreamSource(seed) so draws stay pinned to (Seed, Shard, Cursor)", name)
			case randConstructors[name]:
				// rand.New / rand.NewZipf over an explicit source is the
				// sanctioned wrapper; the source argument is vetted by the
				// case above.
			default:
				pass.Reportf(call.Pos(),
					"rand.%s draws from the process-global math/rand RNG; engine randomness must come from a faultmodel.NewStreamSource-seeded generator", name)
			}
			return true
		})
	}
}

// Package wallfixoos is a cmd package: manifest timestamps and other
// operator-facing wall-clock reads are out of wallclock's scope.
package wallfixoos

import "time"

func Stamp() time.Time { return time.Now() }

// Package mapfixoos sits outside maporder's internal/+cmd/ scope.
package mapfixoos

import "fmt"

func printUnsorted(m map[string]int) {
	for k := range m {
		fmt.Println(k)
	}
}

// Package mapfixneg holds the sanctioned map-iteration shapes maporder must
// stay quiet on.
package mapfixneg

import "sort"

// collectThenSort is the canonical escape: the appended slice is sorted
// before it can become output.
func collectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// innerSlice appends to a slice scoped to one iteration; map order cannot
// leak through it.
func innerSlice(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		n += len(local)
	}
	return n
}

// mapWrite builds another map: key-addressed, order-insensitive.
func mapWrite(m map[string]int) map[string]int {
	out := map[string]int{}
	for k, v := range m {
		out[k] = v
	}
	return out
}

// aggregate folds commutatively over integers.
func aggregate(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// sortSlice uses sort.Slice on a struct slice, the other common escape.
func sortSlice(m map[string]int) []int {
	var vals []int
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

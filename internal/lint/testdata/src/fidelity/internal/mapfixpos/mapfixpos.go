// Package mapfixpos holds maporder violations: map ranges feeding
// order-sensitive sinks with no deterministic sort.
package mapfixpos

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash"
)

func appendUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want `appends to keys without a deterministic sort`
		keys = append(keys, k)
	}
	return keys
}

func writeUnsorted(m map[string]int, buf *bytes.Buffer) {
	for k := range m { // want `order-sensitive sink`
		buf.WriteString(k)
	}
}

func hashUnsorted(m map[string][]byte, h hash.Hash) {
	for _, v := range m { // want `order-sensitive sink`
		h.Write(v)
	}
}

func encodeUnsorted(m map[string]int, enc *json.Encoder) {
	for _, v := range m { // want `order-sensitive sink`
		enc.Encode(v)
	}
}

func printUnsorted(m map[string]int) {
	for k := range m { // want `order-sensitive sink`
		fmt.Println(k)
	}
}

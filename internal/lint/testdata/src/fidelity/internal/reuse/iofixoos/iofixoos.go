// Package iofixoos sits outside ioretry's persistence scope.
package iofixoos

import "os"

func dump(path string, blob []byte) error { return os.WriteFile(path, blob, 0o644) }

// Package wallfixpos holds wallclock violations plus one audited
// suppression.
package wallfixpos

import "time"

func stamp() time.Time {
	return time.Now() // want `time.Now reads the wall clock`
}

func elapsed(t0 time.Time) float64 {
	return time.Since(t0).Seconds() // want `time.Since reads the wall clock`
}

func remaining(deadline time.Time) time.Duration {
	return time.Until(deadline) // want `time.Until reads the wall clock`
}

// pace sleeps without reading the clock: pacing is not flagged.
func pace() { time.Sleep(time.Millisecond) }

// audited demonstrates the suppression contract: the allow on the line
// above consumes the finding.
func audited() time.Time {
	//lint:allow wallclock fixture demonstrates an audited liveness read
	return time.Now()
}

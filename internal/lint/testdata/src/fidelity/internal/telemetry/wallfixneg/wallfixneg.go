// Package wallfixneg sits under internal/telemetry, the package family that
// owns the wall clock; wallclock must stay quiet here.
package wallfixneg

import "time"

func Stamp() time.Time { return time.Now() }

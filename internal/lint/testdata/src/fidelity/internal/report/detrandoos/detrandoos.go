// Package detrandoos sits outside detrand's engine scope: global RNG use
// here is out of the analyzer's jurisdiction.
package detrandoos

import "math/rand"

func anything() int { return rand.Int() }

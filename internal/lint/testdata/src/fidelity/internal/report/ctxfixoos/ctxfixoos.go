// Package ctxfixoos sits outside ctxflow's engine scope.
package ctxfixoos

import "context"

func rooted() context.Context { return context.Background() }

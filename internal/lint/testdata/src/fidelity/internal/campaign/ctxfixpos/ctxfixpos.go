// Package ctxfixpos holds ctxflow violations: rooted contexts in library
// code and exported API that swallows the cancellation chain.
package ctxfixpos

import "context"

func doWork(ctx context.Context) error { return ctx.Err() }

// rooted is unexported so only rule 1 (no fresh roots) fires.
func rooted() error {
	return doWork(context.Background()) // want `context.Background roots a fresh context`
}

// todoRooted exercises the TODO variant.
func todoRooted() error {
	return doWork(context.TODO()) // want `context.TODO roots a fresh context`
}

func Orphan() error { // want `exported Orphan calls context-aware doWork but takes no context.Context`
	return doWork(nil)
}

// Package detrandpos holds detrand violations: global-RNG calls and ad-hoc
// source construction inside an engine package.
package detrandpos

import (
	"math/rand"
	randv2 "math/rand/v2"
)

func globals() int {
	rand.Shuffle(3, func(i, j int) {}) // want `rand.Shuffle draws from the process-global`
	return rand.Intn(10)               // want `rand.Intn draws from the process-global`
}

func adHocSource(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // want `ad-hoc rand.NewSource builds a non-stream source`
}

func v2Global() int {
	return randv2.IntN(5) // want `rand.IntN draws from the process-global`
}

func v2Source(seed uint64) *randv2.Rand {
	return randv2.New(randv2.NewPCG(seed, 0)) // want `ad-hoc rand.NewPCG builds a non-stream source`
}

// Package ctxfixneg holds the sanctioned context shapes ctxflow must stay
// quiet on.
package ctxfixneg

import "context"

func doWork(ctx context.Context) error { return ctx.Err() }

// Forward accepts and forwards the caller's context.
func Forward(ctx context.Context) error { return doWork(ctx) }

// Pure does no context-aware work; no ctx parameter required.
func Pure(a, b int) int { return a + b }

// Spawn returns a context-taking closure: the closure is its own
// cancellation scope, the constructor needs no ctx.
func Spawn() func(context.Context) error {
	return func(ctx context.Context) error { return doWork(ctx) }
}

// orphanButUnexported is package-internal plumbing; rule 2 only polices the
// exported surface.
func orphanButUnexported() error { return doWork(nil) }

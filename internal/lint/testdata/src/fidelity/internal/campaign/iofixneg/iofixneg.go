// Package iofixneg holds the sanctioned I/O shapes: the wrapper functions
// themselves may touch os write primitives, and reads are always fine.
package iofixneg

import "os"

// AtomicWriteJSON stands in for the real wrapper: raw os calls are its job.
func AtomicWriteJSON(path string, blob []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(blob); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// RetryIO likewise owns its primitives.
func RetryIO(path string, blob []byte) error {
	return os.WriteFile(path, blob, 0o644)
}

// load only reads; ioretry polices writes.
func load(path string) ([]byte, error) { return os.ReadFile(path) }

// Package detrandneg holds the sanctioned randomness patterns detrand must
// stay quiet on inside an engine package.
package detrandneg

import (
	"math/rand"

	"fidelity/internal/faultmodel"
)

// stream wraps the engine's deterministic stream: the sanctioned pattern.
func stream(seed int64) *rand.Rand {
	return rand.New(faultmodel.NewStreamSource(seed))
}

// use draws from a caller-provided generator; whoever seeded it owns the
// determinism contract.
func use(rng *rand.Rand) int { return rng.Intn(4) }

// zipf builds a derived distribution over an explicit generator.
func zipf(rng *rand.Rand) *rand.Zipf { return rand.NewZipf(rng, 1.1, 1, 100) }

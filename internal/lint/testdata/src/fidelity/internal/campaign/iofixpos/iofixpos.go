// Package iofixpos holds ioretry violations: raw os write primitives in a
// persistence package.
package iofixpos

import "os"

func saveManifest(path string, blob []byte) error {
	return os.WriteFile(path, blob, 0o644) // want `os.WriteFile bypasses the atomic`
}

func createResults(path string) (*os.File, error) {
	return os.Create(path) // want `os.Create bypasses the atomic`
}

func appendLog(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644) // want `os.OpenFile bypasses the atomic`
}

// Package faultmodel is a fixture double of the engine's stream package:
// just enough surface for fixtures to demonstrate the sanctioned
// rand.New(faultmodel.NewStreamSource(seed)) pattern.
package faultmodel

import "math/rand"

type splitMix struct{ state uint64 }

func (s *splitMix) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	return s.state
}

func (s *splitMix) Int63() int64 { return int64(s.Uint64() >> 1) }

func (s *splitMix) Seed(int64) {}

// NewStreamSource mirrors the real package's signature.
func NewStreamSource(seed int64) rand.Source64 { return &splitMix{state: uint64(seed)} }

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// mapOrderSinkMethods are method names whose call order is observable:
// stream writers, encoders, hashes, printers. Feeding one from a map range
// bakes Go's randomized iteration order into the output.
var mapOrderSinkMethods = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
	"Encode":      true,
	"Print":       true,
	"Printf":      true,
	"Println":     true,
}

// MapOrder flags map iteration that feeds order-sensitive sinks unsorted.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: `maporder: map iteration feeding an ordered sink needs a deterministic sort

Go randomizes map iteration order per run. Ranging over a map while
appending to an outer slice, writing to an encoder/writer/hash, or
printing produces byte-different output on every execution — the classic
silent killer of byte-identical StudyResults (PR 2) and replay transcripts
(PR 4).

Two sanctioned shapes stay quiet:

  - collect-then-sort: append keys/values to a slice inside the range,
    then pass that same slice to sort.* / slices.Sort* (or any *Sort*
    helper) later in the function;
  - per-iteration state: appending to a slice declared inside the loop
    body, or writing map entries (out[k] = v), is order-insensitive.

Everything else gets a finding at the range statement.`,
	Run: runMapOrder,
}

func runMapOrder(pass *Pass) {
	pkgPath := pass.Pkg.Path()
	if !pathMatches(pkgPath, "internal") && !pathMatches(pkgPath, "cmd") {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkMapRanges(pass, fd.Body)
		}
	}
}

// checkMapRanges inspects one function body: finds every range over a
// map-typed expression, looks for order-sensitive sinks in the loop body,
// and applies the collect-then-sort escape before reporting.
func checkMapRanges(pass *Pass, body *ast.BlockStmt) {
	// sortedExprs maps the canonical render of every expression passed to a
	// sort-like call to the position of that call. "Sort-like" is any
	// function from package sort or slices, or any callee whose name
	// contains "Sort" (covering repo-local helpers).
	sortedExprs := map[string][]token.Pos{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		if !isSortLike(pass.Info, call) {
			return true
		}
		key := exprString(call.Args[0])
		sortedExprs[key] = append(sortedExprs[key], call.Pos())
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.Info.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		if sink, target := findOrderSink(pass, rng); sink != nil {
			if target != "" {
				// Append sink: quiet if that slice is sorted later in the
				// same function, after the loop.
				for _, pos := range sortedExprs[target] {
					if pos > rng.End() {
						return true
					}
				}
				pass.Reportf(rng.Pos(),
					"map iteration appends to %s without a deterministic sort afterwards; sort the slice (or iterate sorted keys) before it becomes output", target)
				return true
			}
			pass.Reportf(rng.Pos(),
				"map iteration feeds an order-sensitive sink (%s); iterate sorted keys so the output is byte-identical across runs", describeSink(pass, sink))
		}
		return true
	})
}

// isSortLike reports whether the call is a sorting operation: anything from
// package sort or slices, or a callee whose name contains "Sort".
func isSortLike(info *types.Info, call *ast.CallExpr) bool {
	if pkg, _ := pkgFunc(info, call); pkg == "sort" || pkg == "slices" {
		return true
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return strings.Contains(fun.Name, "Sort")
	case *ast.SelectorExpr:
		return strings.Contains(fun.Sel.Name, "Sort")
	}
	return false
}

// findOrderSink scans a map-range body for the first order-sensitive sink.
// It returns the sink node and, for append sinks, the canonical render of
// the appended-to expression (so the caller can apply the
// collect-then-sort escape); for writer/encoder/print sinks target is "".
func findOrderSink(pass *Pass, rng *ast.RangeStmt) (sink ast.Node, target string) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if sink != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			// x = append(x, ...) with x declared outside the loop.
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(pass.Info, call) || i >= len(n.Lhs) {
					continue
				}
				if declaredOutside(pass.Info, n.Lhs[i], rng) {
					sink, target = n, exprString(n.Lhs[i])
					return false
				}
			}
		case *ast.CallExpr:
			pkg, name := pkgFunc(pass.Info, n)
			if pkg == "fmt" && (strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")) {
				sink = n
				return false
			}
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if fn, ok := pass.Info.Uses[sel.Sel].(*types.Func); ok {
					if fn.Type().(*types.Signature).Recv() != nil && mapOrderSinkMethods[sel.Sel.Name] {
						sink = n
						return false
					}
				}
			}
		}
		return true
	})
	return sink, target
}

// isBuiltinAppend reports whether the call is the append builtin.
func isBuiltinAppend(info *types.Info, c *ast.CallExpr) bool {
	id, ok := ast.Unparen(c.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// declaredOutside reports whether the root identifier of expr is declared
// outside the range statement — an inner-declared slice resets each
// iteration, so map order cannot leak through it.
func declaredOutside(info *types.Info, expr ast.Expr, rng *ast.RangeStmt) bool {
	root := expr
	for {
		switch e := root.(type) {
		case *ast.SelectorExpr:
			root = e.X
		case *ast.IndexExpr:
			root = e.X
		case *ast.StarExpr:
			root = e.X
		case *ast.ParenExpr:
			root = e.X
		default:
			goto done
		}
	}
done:
	id, ok := root.(*ast.Ident)
	if !ok {
		// Unresolvable shape: assume outer, better a reviewable finding
		// than a silent miss.
		return true
	}
	obj := info.ObjectOf(id)
	if obj == nil {
		return true
	}
	return obj.Pos() < rng.Pos() || obj.Pos() > rng.End()
}

// describeSink renders a short human label for a non-append sink node.
func describeSink(pass *Pass, n ast.Node) string {
	if c, ok := n.(*ast.CallExpr); ok {
		return exprString(c.Fun)
	}
	return "write"
}

// Package fit implements step 3 of the FIdelity flow: the
// Accelerator_FIT_rate computation of paper Eq. 2, plus the ISO 26262
// ASIL-D budget check used in Key Result 1.
package fit

import (
	"fmt"

	"fidelity/internal/accel"
)

// RawFFFITPerMB is the raw FF FIT rate the paper uses: 600 FIT per megabyte
// of flip-flops for soft errors (Jagannathan et al., 40 nm). Other rates
// (voltage noise, different nodes) can be substituted; Eq. 2 is linear in it.
const RawFFFITPerMB = 600.0

// RawFITPerFF converts a per-MB rate to a per-flip-flop rate (one FF stores
// one bit; 1 MB = 8·2^20 bits).
func RawFITPerFF(perMB float64) float64 {
	return perMB / (8 * 1024 * 1024)
}

// ASILDChipFIT is the ISO 26262 ASIL-D budget for an entire self-driving
// chipset (< 10 FIT).
const ASILDChipFIT = 10.0

// NVDLAFFAreaShare is the area fraction of the chipset occupied by the
// accelerator's FFs (~2% for NVDLA-class accelerators on an FSD-class chip),
// used to apportion the chip budget to the FFs under study.
const NVDLAFFAreaShare = 0.02

// FFBudget returns the FIT budget allocated to the accelerator's FFs by the
// standard area-proportional apportioning: < 0.2 for NVDLA.
func FFBudget() float64 {
	return ASILDChipFIT * NVDLAFFAreaShare
}

// LayerStats carries, for one layer r of a DNN application, the quantities
// Eq. 2 needs per FF category.
type LayerStats struct {
	// Layer names the layer (diagnostics only).
	Layer string
	// ExecTime is exec_time(r): the layer's execution time in cycles (or any
	// consistent unit; Eq. 2 normalizes by the total).
	ExecTime float64
	// ProbInactive maps category -> Prob_inactive(cat, r) from the
	// activeness analysis.
	ProbInactive map[accel.Category]float64
	// ProbMasked maps category -> Prob_SWmask(cat, r) from the software
	// fault-injection campaign. Global control categories must be 0 by
	// construction (FIdelity models active global-control faults as always
	// failing).
	ProbMasked map[accel.Category]float64
}

// Result is the Eq. 2 output with the paper's Fig 4/5 breakdown by FF class.
type Result struct {
	// Total is the Accelerator_FIT_rate.
	Total float64
	// ByClass splits the total into datapath / local control / global
	// control contributions.
	ByClass map[accel.FFClass]float64
	// ByCategory splits the total per census category.
	ByCategory map[accel.Category]float64
	// ByLayer splits the total per layer name — the ranking signal the
	// selective-duplication planner consumes (Eq. 2 is additive per
	// (layer, category), so per-layer removal is exactly subtractive).
	ByLayer map[string]float64
}

// Compute evaluates Eq. 2:
//
//	FIT = FIT_raw × N_ff × Σ_r [ exec_time(r) × Σ_cat FF_Perc(cat)
//	      × (1 − Prob_inactive(cat,r)) × (1 − Prob_SWmask(cat,r)) ] / Σ_r exec_time(r)
//
// rawPerFF is the per-FF raw FIT rate (see RawFITPerFF).
func Compute(cfg *accel.Config, rawPerFF float64, layers []LayerStats) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(layers) == 0 {
		return nil, fmt.Errorf("fit: no layers provided")
	}
	if rawPerFF < 0 {
		return nil, fmt.Errorf("fit: negative raw FIT rate %v", rawPerFF)
	}
	var totalTime float64
	for _, r := range layers {
		if r.ExecTime <= 0 {
			return nil, fmt.Errorf("fit: layer %s has non-positive exec time %v", r.Layer, r.ExecTime)
		}
		totalTime += r.ExecTime
	}

	res := &Result{
		ByClass:    map[accel.FFClass]float64{},
		ByCategory: map[accel.Category]float64{},
		ByLayer:    map[string]float64{},
	}
	scale := rawPerFF * float64(cfg.NumFFs)
	for _, r := range layers {
		w := r.ExecTime / totalTime
		for _, g := range cfg.Census {
			pin, ok := r.ProbInactive[g.Cat]
			if !ok {
				return nil, fmt.Errorf("fit: layer %s lacks Prob_inactive for %v", r.Layer, g.Cat)
			}
			pm, ok := r.ProbMasked[g.Cat]
			if !ok {
				return nil, fmt.Errorf("fit: layer %s lacks Prob_SWmask for %v", r.Layer, g.Cat)
			}
			if pin < 0 || pin > 1 || pm < 0 || pm > 1 {
				return nil, fmt.Errorf("fit: layer %s has out-of-range probabilities for %v (inactive=%v, masked=%v)",
					r.Layer, g.Cat, pin, pm)
			}
			contrib := scale * w * g.Frac * (1 - pin) * (1 - pm)
			res.Total += contrib
			res.ByClass[g.Cat.Class] += contrib
			res.ByCategory[g.Cat] += contrib
			res.ByLayer[r.Layer] += contrib
		}
	}
	return res, nil
}

// ComputeProtected re-evaluates Eq. 2 with the raw FIT rate of all global
// control FFs set to zero — the "global control FFs are protected" scenario
// of paper Fig 6 (Key Result 2).
func ComputeProtected(cfg *accel.Config, rawPerFF float64, layers []LayerStats) (*Result, error) {
	masked := make([]LayerStats, len(layers))
	for i, r := range layers {
		m := LayerStats{
			Layer: r.Layer, ExecTime: r.ExecTime,
			ProbInactive: r.ProbInactive,
			ProbMasked:   map[accel.Category]float64{},
		}
		for cat, p := range r.ProbMasked {
			if cat.Class == accel.GlobalControl {
				p = 1 // fully protected: never contributes
			}
			m.ProbMasked[cat] = p
		}
		masked[i] = m
	}
	return Compute(cfg, rawPerFF, masked)
}

// MeetsASILD reports whether a FIT result fits the area-apportioned ASIL-D
// budget for the accelerator's FFs.
func MeetsASILD(r *Result) bool {
	return r.Total < FFBudget()
}

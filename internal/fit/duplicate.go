package fit

import (
	"fmt"
	"sort"

	"fidelity/internal/accel"
)

// This file plans selective duplication: re-executing the most vulnerable
// layers redundantly (SentinelNN-style) so faults in the datapath and local
// control FFs active during those layers are detected and corrected. The
// ranking signal is the campaign-measured per-layer FIT contribution; the
// cost is the duplicated execution-time share. Global control FFs are out of
// duplication's reach — they steer the whole accelerator, not one layer's
// computation — so meeting a tight budget usually also requires hardened
// (e.g. DICE) global-control FFs, modeled by protectGlobal.

// DuplicationChoice is one layer selected for duplication.
type DuplicationChoice struct {
	// Layer names the duplicated layer execution (site#visit).
	Layer string
	// FITRemoved is the non-global-control FIT contribution the duplication
	// eliminates.
	FITRemoved float64
	// TimeShare is the layer's share of total execution time — the relative
	// cost of re-executing it.
	TimeShare float64
}

// DuplicationPlan is a minimal-cost selective duplication scheme.
type DuplicationPlan struct {
	// Choices lists the duplicated layers in selection order (highest
	// FIT-per-time density first; name-ordered on ties for determinism).
	Choices []DuplicationChoice
	// BaseFIT is the FIT rate before duplication (after global-control
	// protection when ProtectGlobal is set).
	BaseFIT float64
	// ResidualFIT is the FIT rate after duplication.
	ResidualFIT float64
	// DupTimeShare is the total execution-time share that runs twice.
	DupTimeShare float64
	// ProtectGlobal records whether global-control FFs were assumed hardened.
	ProtectGlobal bool
	// Meets reports whether ResidualFIT is under the budget.
	Meets bool
}

// Duplicated returns the set of duplicated layer names.
func (p *DuplicationPlan) Duplicated() []string {
	out := make([]string, len(p.Choices))
	for i, c := range p.Choices {
		out[i] = c.Layer
	}
	sort.Strings(out)
	return out
}

// String renders the plan.
func (p *DuplicationPlan) String() string {
	s := ""
	for _, c := range p.Choices {
		s += fmt.Sprintf("  duplicate %-20s removes %7.4f FIT, re-executes %5.1f%% of time\n",
			c.Layer, c.FITRemoved, c.TimeShare*100)
	}
	verdict := "meets budget"
	if !p.Meets {
		verdict = "still over budget"
	}
	return fmt.Sprintf("%sresidual FIT %.4f with %.1f%% of time duplicated (%s)",
		s, p.ResidualFIT, p.DupTimeShare*100, verdict)
}

// DuplicateLayers returns a copy of layers with Prob_SWmask forced to 1 for
// every non-global-control category of the layers in dup — the Eq. 2 model
// of duplicated-and-corrected execution. Global-control probabilities are
// untouched: duplicating one layer cannot cover faults in the FFs that steer
// the whole accelerator.
func DuplicateLayers(layers []LayerStats, dup map[string]bool) []LayerStats {
	out := make([]LayerStats, len(layers))
	for i, r := range layers {
		m := LayerStats{
			Layer: r.Layer, ExecTime: r.ExecTime,
			ProbInactive: r.ProbInactive,
			ProbMasked:   r.ProbMasked,
		}
		if dup[r.Layer] {
			m.ProbMasked = map[accel.Category]float64{}
			for cat, p := range r.ProbMasked {
				if cat.Class != accel.GlobalControl {
					p = 1
				}
				m.ProbMasked[cat] = p
			}
		}
		out[i] = m
	}
	return out
}

// PlanDuplication greedily selects layers to duplicate — densest
// FIT-removed-per-time-share first — until the residual FIT fits the budget.
// protectGlobal computes the base FIT with global-control FFs hardened
// (ComputeProtected); without it, the global-control floor alone usually
// exceeds any ASIL-D-class budget and no amount of duplication can meet it.
// Eq. 2 is additive per (layer, category), so removal is exactly
// subtractive. An input already under budget returns an empty plan.
func PlanDuplication(cfg *accel.Config, rawPerFF float64, layers []LayerStats, budget float64, protectGlobal bool) (*DuplicationPlan, error) {
	if budget <= 0 {
		return nil, fmt.Errorf("fit: budget must be positive, got %v", budget)
	}
	base, err := Compute(cfg, rawPerFF, layers)
	if err != nil {
		return nil, err
	}
	if protectGlobal {
		base, err = ComputeProtected(cfg, rawPerFF, layers)
		if err != nil {
			return nil, err
		}
	}

	var totalTime float64
	for _, r := range layers {
		totalTime += r.ExecTime
	}
	// Per-layer removable FIT: the non-global-control contribution, which is
	// what duplicated execution covers.
	scale := rawPerFF * float64(cfg.NumFFs)
	type cand struct {
		layer     string
		removable float64
		timeShare float64
	}
	var cands []cand
	for _, r := range layers {
		w := r.ExecTime / totalTime
		var removable float64
		for _, g := range cfg.Census {
			if g.Cat.Class == accel.GlobalControl {
				continue
			}
			removable += scale * w * g.Frac * (1 - r.ProbInactive[g.Cat]) * (1 - r.ProbMasked[g.Cat])
		}
		if removable > 0 {
			cands = append(cands, cand{layer: r.Layer, removable: removable, timeShare: w})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		di, dj := cands[i].removable/cands[i].timeShare, cands[j].removable/cands[j].timeShare
		if di != dj {
			return di > dj
		}
		return cands[i].layer < cands[j].layer
	})

	plan := &DuplicationPlan{BaseFIT: base.Total, ResidualFIT: base.Total, ProtectGlobal: protectGlobal}
	for _, c := range cands {
		if plan.ResidualFIT < budget {
			break
		}
		plan.Choices = append(plan.Choices, DuplicationChoice{
			Layer: c.layer, FITRemoved: c.removable, TimeShare: c.timeShare,
		})
		plan.ResidualFIT -= c.removable
		plan.DupTimeShare += c.timeShare
	}
	if plan.ResidualFIT < 0 {
		plan.ResidualFIT = 0
	}
	plan.Meets = plan.ResidualFIT < budget
	return plan, nil
}

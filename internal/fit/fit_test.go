package fit

import (
	"math"
	"testing"

	"fidelity/internal/accel"
)

// uniformStats builds LayerStats with constant probabilities for testing.
func uniformStats(cfg *accel.Config, name string, exec, inactive, masked float64) LayerStats {
	s := LayerStats{
		Layer: name, ExecTime: exec,
		ProbInactive: map[accel.Category]float64{},
		ProbMasked:   map[accel.Category]float64{},
	}
	for _, g := range cfg.Census {
		s.ProbInactive[g.Cat] = inactive
		pm := masked
		if g.Cat.Class == accel.GlobalControl {
			pm = 0
		}
		s.ProbMasked[g.Cat] = pm
	}
	return s
}

func TestRawFITPerFF(t *testing.T) {
	perFF := RawFITPerFF(RawFFFITPerMB)
	want := 600.0 / (8 * 1024 * 1024)
	if math.Abs(perFF-want) > 1e-15 {
		t.Errorf("RawFITPerFF = %v, want %v", perFF, want)
	}
}

func TestFFBudget(t *testing.T) {
	if b := FFBudget(); math.Abs(b-0.2) > 1e-12 {
		t.Errorf("ASIL-D FF budget = %v, want 0.2", b)
	}
}

// With no masking and no inactivity, Eq. 2 reduces to FIT_raw × N_ff.
func TestComputeUpperBound(t *testing.T) {
	cfg := accel.NVDLASmall()
	raw := RawFITPerFF(RawFFFITPerMB)
	res, err := Compute(cfg, raw, []LayerStats{uniformStats(cfg, "l0", 100, 0, 0)})
	if err != nil {
		t.Fatal(err)
	}
	want := raw * float64(cfg.NumFFs)
	if math.Abs(res.Total-want)/want > 1e-9 {
		t.Errorf("unmasked FIT = %v, want %v", res.Total, want)
	}
}

// Full masking of everything non-global leaves exactly the global share.
func TestComputeGlobalOnly(t *testing.T) {
	cfg := accel.NVDLASmall()
	raw := RawFITPerFF(RawFFFITPerMB)
	res, err := Compute(cfg, raw, []LayerStats{uniformStats(cfg, "l0", 10, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	want := raw * float64(cfg.NumFFs) * 0.113
	if math.Abs(res.Total-want)/want > 1e-9 {
		t.Errorf("global-only FIT = %v, want %v", res.Total, want)
	}
	if math.Abs(res.ByClass[accel.GlobalControl]-res.Total) > 1e-12 {
		t.Error("all FIT should be attributed to global control")
	}
}

// Exec-time weighting: a layer with twice the time dominates the average.
func TestComputeTimeWeighting(t *testing.T) {
	cfg := accel.NVDLASmall()
	raw := 1.0
	a := uniformStats(cfg, "fast", 1, 0, 1) // only global contributes
	b := uniformStats(cfg, "slow", 3, 0, 0) // everything contributes
	res, err := Compute(cfg, raw, []LayerStats{a, b})
	if err != nil {
		t.Fatal(err)
	}
	// Expected: N_ff × [1/4 × 0.113 + 3/4 × 1.0].
	want := float64(cfg.NumFFs) * (0.25*0.113 + 0.75)
	if math.Abs(res.Total-want)/want > 1e-9 {
		t.Errorf("time-weighted FIT = %v, want %v", res.Total, want)
	}
}

// Inactivity scales contributions down.
func TestComputeInactivity(t *testing.T) {
	cfg := accel.NVDLASmall()
	full, _ := Compute(cfg, 1, []LayerStats{uniformStats(cfg, "l", 1, 0, 0)})
	half, err := Compute(cfg, 1, []LayerStats{uniformStats(cfg, "l", 1, 0.5, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(half.Total-full.Total/2)/full.Total > 1e-9 {
		t.Errorf("50%% inactivity should halve FIT: %v vs %v", half.Total, full.Total)
	}
}

func TestComputeValidation(t *testing.T) {
	cfg := accel.NVDLASmall()
	if _, err := Compute(cfg, 1, nil); err == nil {
		t.Error("no layers should fail")
	}
	if _, err := Compute(cfg, -1, []LayerStats{uniformStats(cfg, "l", 1, 0, 0)}); err == nil {
		t.Error("negative raw rate should fail")
	}
	bad := uniformStats(cfg, "l", 0, 0, 0)
	if _, err := Compute(cfg, 1, []LayerStats{bad}); err == nil {
		t.Error("zero exec time should fail")
	}
	missing := uniformStats(cfg, "l", 1, 0, 0)
	delete(missing.ProbMasked, accel.Category{Class: accel.GlobalControl})
	if _, err := Compute(cfg, 1, []LayerStats{missing}); err == nil {
		t.Error("missing category should fail")
	}
	oor := uniformStats(cfg, "l", 1, 0, 0)
	oor.ProbMasked[accel.Category{Class: accel.LocalControl}] = 1.5
	if _, err := Compute(cfg, 1, []LayerStats{oor}); err == nil {
		t.Error("out-of-range probability should fail")
	}
	badCfg := accel.NVDLASmall()
	badCfg.NumFFs = 0
	if _, err := Compute(badCfg, 1, []LayerStats{uniformStats(cfg, "l", 1, 0, 0)}); err == nil {
		t.Error("invalid config should fail")
	}
}

// Fig 6 scenario: protecting global control removes exactly the global
// contribution.
func TestComputeProtected(t *testing.T) {
	cfg := accel.NVDLASmall()
	stats := uniformStats(cfg, "l", 1, 0, 0.5)
	base, err := Compute(cfg, 1, []LayerStats{stats})
	if err != nil {
		t.Fatal(err)
	}
	prot, err := ComputeProtected(cfg, 1, []LayerStats{stats})
	if err != nil {
		t.Fatal(err)
	}
	if prot.ByClass[accel.GlobalControl] != 0 {
		t.Error("protected run must have zero global contribution")
	}
	wantTotal := base.Total - base.ByClass[accel.GlobalControl]
	if math.Abs(prot.Total-wantTotal) > 1e-9 {
		t.Errorf("protected total = %v, want %v", prot.Total, wantTotal)
	}
	// Key Result 2's shape: datapath + local contributions survive.
	if prot.Total <= 0 {
		t.Error("datapath/local contributions must remain")
	}
}

func TestMeetsASILD(t *testing.T) {
	if MeetsASILD(&Result{Total: 9.5}) {
		t.Error("9.5 FIT must fail the 0.2 budget")
	}
	if !MeetsASILD(&Result{Total: 0.1}) {
		t.Error("0.1 FIT must pass")
	}
}

// Class and category breakdowns must sum to the total.
func TestBreakdownConsistency(t *testing.T) {
	cfg := accel.NVDLASmall()
	res, err := Compute(cfg, 1, []LayerStats{
		uniformStats(cfg, "a", 2, 0.3, 0.6),
		uniformStats(cfg, "b", 5, 0.1, 0.2),
	})
	if err != nil {
		t.Fatal(err)
	}
	var byClass, byCat float64
	for _, v := range res.ByClass {
		byClass += v
	}
	for _, v := range res.ByCategory {
		byCat += v
	}
	if math.Abs(byClass-res.Total) > 1e-9*res.Total || math.Abs(byCat-res.Total) > 1e-9*res.Total {
		t.Errorf("breakdowns don't sum: class=%v cat=%v total=%v", byClass, byCat, res.Total)
	}
}

package fit

import (
	"fmt"
	"sort"

	"fidelity/internal/accel"
)

// This file implements the paper's Architectural Insights: "selectively
// protecting only the FFs in [resilience-critical] categories may be
// sufficient to achieve a given resilience target while minimizing
// system-level costs."

// ProtectionChoice is one category selected for hardening (e.g. parity or
// DICE FFs), with the FIT it removes and the FF share it costs.
type ProtectionChoice struct {
	Cat accel.Category
	// FITRemoved is the category's contribution eliminated by protecting it.
	FITRemoved float64
	// FFShare is the fraction of the design's FFs that must be hardened.
	FFShare float64
}

// ProtectionPlan is a minimal-cost selective protection scheme.
type ProtectionPlan struct {
	// Choices lists the protected categories in selection order (highest
	// FIT-per-FF density first).
	Choices []ProtectionChoice
	// ResidualFIT is the FIT rate after protection.
	ResidualFIT float64
	// ProtectedFFShare is the total fraction of FFs hardened.
	ProtectedFFShare float64
	// Meets reports whether ResidualFIT is under the budget.
	Meets bool
}

// PlanProtection greedily selects FF categories to protect — densest
// FIT-per-hardened-FF first — until the residual FIT fits the budget.
// Greedy-by-density is the natural heuristic for this fractional-cost cover;
// categories with zero measured contribution are never selected.
func PlanProtection(cfg *accel.Config, r *Result, budget float64) (*ProtectionPlan, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if budget <= 0 {
		return nil, fmt.Errorf("fit: budget must be positive, got %v", budget)
	}
	type cand struct {
		cat     accel.Category
		contrib float64
		share   float64
	}
	var cands []cand
	for _, g := range cfg.Census {
		c := r.ByCategory[g.Cat]
		if c > 0 && g.Frac > 0 {
			cands = append(cands, cand{cat: g.Cat, contrib: c, share: g.Frac})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		return cands[i].contrib/cands[i].share > cands[j].contrib/cands[j].share
	})
	plan := &ProtectionPlan{ResidualFIT: r.Total}
	for _, c := range cands {
		if plan.ResidualFIT < budget {
			break
		}
		plan.Choices = append(plan.Choices, ProtectionChoice{
			Cat: c.cat, FITRemoved: c.contrib, FFShare: c.share,
		})
		plan.ResidualFIT -= c.contrib
		plan.ProtectedFFShare += c.share
	}
	if plan.ResidualFIT < 0 {
		plan.ResidualFIT = 0
	}
	plan.Meets = plan.ResidualFIT < budget
	return plan, nil
}

// String renders the plan.
func (p *ProtectionPlan) String() string {
	s := ""
	for _, c := range p.Choices {
		s += fmt.Sprintf("  protect %-28v removes %7.3f FIT, hardens %5.1f%% of FFs\n",
			c.Cat, c.FITRemoved, c.FFShare*100)
	}
	verdict := "meets budget"
	if !p.Meets {
		verdict = "still over budget"
	}
	return fmt.Sprintf("%sresidual FIT %.3f with %.1f%% of FFs hardened (%s)",
		s, p.ResidualFIT, p.ProtectedFFShare*100, verdict)
}

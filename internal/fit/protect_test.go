package fit

import (
	"strings"
	"testing"

	"fidelity/internal/accel"
)

func TestPlanProtectionValidation(t *testing.T) {
	cfg := accel.NVDLASmall()
	r := &Result{Total: 1, ByCategory: map[accel.Category]float64{}}
	if _, err := PlanProtection(cfg, r, 0); err == nil {
		t.Error("zero budget should fail")
	}
	bad := accel.NVDLASmall()
	bad.NumFFs = 0
	if _, err := PlanProtection(bad, r, 0.2); err == nil {
		t.Error("invalid config should fail")
	}
}

func TestPlanProtectionGreedyDensity(t *testing.T) {
	cfg := accel.NVDLASmall()
	res, err := Compute(cfg, 1, []LayerStats{uniformStats(cfg, "l", 1, 0, 0.5)})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanProtection(cfg, res, 0.2*res.Total)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Meets {
		t.Fatalf("plan should meet the budget: %+v", plan)
	}
	// Global control (unmasked, 11.3% of FFs) has the highest density with
	// uniform masking elsewhere; it must be picked first.
	if len(plan.Choices) == 0 || plan.Choices[0].Cat.Class != accel.GlobalControl {
		t.Errorf("first choice should be global control, got %+v", plan.Choices)
	}
	// Densities must be non-increasing.
	for i := 1; i < len(plan.Choices); i++ {
		d0 := plan.Choices[i-1].FITRemoved / plan.Choices[i-1].FFShare
		d1 := plan.Choices[i].FITRemoved / plan.Choices[i].FFShare
		if d1 > d0+1e-9 {
			t.Errorf("densities not sorted: %v then %v", d0, d1)
		}
	}
	// Residual accounting must be consistent.
	var removed float64
	for _, c := range plan.Choices {
		removed += c.FITRemoved
	}
	if diff := res.Total - removed - plan.ResidualFIT; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("residual accounting off by %v", diff)
	}
	if plan.String() == "" || !strings.Contains(plan.String(), "residual FIT") {
		t.Error("plan string malformed")
	}
}

func TestPlanProtectionAlreadyUnderBudget(t *testing.T) {
	cfg := accel.NVDLASmall()
	r := &Result{Total: 0.01, ByCategory: map[accel.Category]float64{}}
	plan, err := PlanProtection(cfg, r, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Choices) != 0 || !plan.Meets {
		t.Errorf("no protection needed: %+v", plan)
	}
}

func TestPlanProtectionImpossibleBudget(t *testing.T) {
	cfg := accel.NVDLASmall()
	// Only part of the FIT is attributable to categories; an absurdly small
	// budget cannot be met even protecting everything.
	by := map[accel.Category]float64{}
	for _, g := range cfg.Census {
		by[g.Cat] = 1
	}
	r := &Result{Total: 100, ByCategory: by}
	plan, err := PlanProtection(cfg, r, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Meets {
		t.Error("7 FIT of removable contributions cannot reach 1e-6 from 100")
	}
	if len(plan.Choices) != len(cfg.Census) {
		t.Errorf("should protect everything available, got %d", len(plan.Choices))
	}
}

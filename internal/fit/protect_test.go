package fit

import (
	"strings"
	"testing"

	"fidelity/internal/accel"
)

func TestPlanProtectionValidation(t *testing.T) {
	cfg := accel.NVDLASmall()
	r := &Result{Total: 1, ByCategory: map[accel.Category]float64{}}
	if _, err := PlanProtection(cfg, r, 0); err == nil {
		t.Error("zero budget should fail")
	}
	bad := accel.NVDLASmall()
	bad.NumFFs = 0
	if _, err := PlanProtection(bad, r, 0.2); err == nil {
		t.Error("invalid config should fail")
	}
}

func TestPlanProtectionGreedyDensity(t *testing.T) {
	cfg := accel.NVDLASmall()
	res, err := Compute(cfg, 1, []LayerStats{uniformStats(cfg, "l", 1, 0, 0.5)})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanProtection(cfg, res, 0.2*res.Total)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Meets {
		t.Fatalf("plan should meet the budget: %+v", plan)
	}
	// Global control (unmasked, 11.3% of FFs) has the highest density with
	// uniform masking elsewhere; it must be picked first.
	if len(plan.Choices) == 0 || plan.Choices[0].Cat.Class != accel.GlobalControl {
		t.Errorf("first choice should be global control, got %+v", plan.Choices)
	}
	// Densities must be non-increasing.
	for i := 1; i < len(plan.Choices); i++ {
		d0 := plan.Choices[i-1].FITRemoved / plan.Choices[i-1].FFShare
		d1 := plan.Choices[i].FITRemoved / plan.Choices[i].FFShare
		if d1 > d0+1e-9 {
			t.Errorf("densities not sorted: %v then %v", d0, d1)
		}
	}
	// Residual accounting must be consistent.
	var removed float64
	for _, c := range plan.Choices {
		removed += c.FITRemoved
	}
	if diff := res.Total - removed - plan.ResidualFIT; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("residual accounting off by %v", diff)
	}
	if plan.String() == "" || !strings.Contains(plan.String(), "residual FIT") {
		t.Error("plan string malformed")
	}
}

func TestPlanProtectionAlreadyUnderBudget(t *testing.T) {
	cfg := accel.NVDLASmall()
	r := &Result{Total: 0.01, ByCategory: map[accel.Category]float64{}}
	plan, err := PlanProtection(cfg, r, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Choices) != 0 || !plan.Meets {
		t.Errorf("no protection needed: %+v", plan)
	}
}

func TestPlanProtectionNegativeBudget(t *testing.T) {
	cfg := accel.NVDLASmall()
	r := &Result{Total: 1, ByCategory: map[accel.Category]float64{}}
	if _, err := PlanProtection(cfg, r, -0.5); err == nil {
		t.Error("negative budget should fail")
	}
}

// TestPlanProtectionEmptyResult: a result with no per-category contributions
// (e.g. assembled from an empty campaign) yields no candidates — the plan is
// well-formed, selects nothing, and honestly reports missing the budget.
func TestPlanProtectionEmptyResult(t *testing.T) {
	cfg := accel.NVDLASmall()
	r := &Result{Total: 5, ByCategory: map[accel.Category]float64{}}
	plan, err := PlanProtection(cfg, r, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Choices) != 0 {
		t.Errorf("nothing attributable should select nothing, got %+v", plan.Choices)
	}
	if plan.Meets || plan.ResidualFIT != 5 {
		t.Errorf("residual must stay at the unattributed total: %+v", plan)
	}
}

func TestPlanDuplicationValidation(t *testing.T) {
	cfg := accel.NVDLASmall()
	layers := []LayerStats{uniformStats(cfg, "l#0", 1, 0, 0.5)}
	if _, err := PlanDuplication(cfg, 1, layers, 0, true); err == nil {
		t.Error("zero budget should fail")
	}
	if _, err := PlanDuplication(cfg, 1, layers, -1, true); err == nil {
		t.Error("negative budget should fail")
	}
	if _, err := PlanDuplication(cfg, 1, nil, 0.2, true); err == nil {
		t.Error("empty layer stats should fail")
	}
}

func TestPlanDuplicationAlreadyUnderBudget(t *testing.T) {
	cfg := accel.NVDLASmall()
	// Everything non-global fully masked: with global control protected the
	// residual is zero, so no duplication is needed.
	layers := []LayerStats{uniformStats(cfg, "l#0", 1, 0, 1)}
	plan, err := PlanDuplication(cfg, 1, layers, 0.2, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Choices) != 0 || !plan.Meets || plan.DupTimeShare != 0 {
		t.Errorf("input already under budget should plan nothing: %+v", plan)
	}
}

// TestPlanDuplicationGreedyAndExact: duplication picks the densest layers
// first, accounts residuals exactly (Eq. 2 additivity), and without
// global-control protection cannot beat the global floor.
func TestPlanDuplicationGreedyAndExact(t *testing.T) {
	cfg := accel.NVDLASmall()
	// Three layers, equal exec time, increasingly well masked: l#0 is the
	// most vulnerable and must be duplicated first.
	layers := []LayerStats{
		uniformStats(cfg, "l#0", 1, 0, 0.2),
		uniformStats(cfg, "l#1", 1, 0, 0.6),
		uniformStats(cfg, "l#2", 1, 0, 0.9),
	}
	base, err := ComputeProtected(cfg, 1, layers)
	if err != nil {
		t.Fatal(err)
	}
	budget := 0.4 * base.Total
	plan, err := PlanDuplication(cfg, 1, layers, budget, true)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Meets {
		t.Fatalf("budget is reachable by duplicating everything: %+v", plan)
	}
	if len(plan.Choices) == 0 || plan.Choices[0].Layer != "l#0" {
		t.Errorf("most vulnerable layer should be duplicated first, got %+v", plan.Choices)
	}
	var removed float64
	for _, c := range plan.Choices {
		removed += c.FITRemoved
	}
	if diff := plan.BaseFIT - removed - plan.ResidualFIT; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("residual accounting off by %v", diff)
	}
	// Modeled check: recomputing Eq. 2 with the chosen layers duplicated
	// reproduces the plan's residual (additivity makes removal exact).
	dup := map[string]bool{}
	for _, c := range plan.Choices {
		dup[c.Layer] = true
	}
	re, err := ComputeProtected(cfg, 1, DuplicateLayers(layers, dup))
	if err != nil {
		t.Fatal(err)
	}
	if diff := re.Total - plan.ResidualFIT; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("recomputed residual %v != planned %v", re.Total, plan.ResidualFIT)
	}

	// Without global protection the global-control floor (Prob_SWmask = 0 by
	// construction) survives full duplication: ask for a budget below the
	// floor and watch the plan miss it.
	all := map[string]bool{"l#0": true, "l#1": true, "l#2": true}
	floor, err := Compute(cfg, 1, DuplicateLayers(layers, all))
	if err != nil {
		t.Fatal(err)
	}
	if floor.Total <= 0 {
		t.Fatalf("global-control floor should be positive, got %v", floor.Total)
	}
	noGC, err := PlanDuplication(cfg, 1, layers, floor.Total/2, false)
	if err != nil {
		t.Fatal(err)
	}
	if noGC.Meets {
		t.Error("duplication alone cannot remove the global-control floor")
	}
	if noGC.ResidualFIT <= 0 {
		t.Errorf("global floor should survive, residual = %v", noGC.ResidualFIT)
	}
	if plan.String() == "" || !strings.Contains(plan.String(), "residual FIT") {
		t.Error("plan string malformed")
	}
}

// TestDuplicateLayers: pm flips to 1 only for non-global categories of
// duplicated layers; everything else is untouched.
func TestDuplicateLayers(t *testing.T) {
	cfg := accel.NVDLASmall()
	layers := []LayerStats{
		uniformStats(cfg, "dup#0", 1, 0, 0.3),
		uniformStats(cfg, "keep#0", 1, 0, 0.3),
	}
	out := DuplicateLayers(layers, map[string]bool{"dup#0": true})
	for _, g := range cfg.Census {
		gc := g.Cat.Class == accel.GlobalControl
		switch {
		case gc && out[0].ProbMasked[g.Cat] != 0:
			t.Errorf("duplication must not touch global control %v", g.Cat)
		case !gc && out[0].ProbMasked[g.Cat] != 1:
			t.Errorf("duplicated layer's %v should be fully masked", g.Cat)
		}
		if out[1].ProbMasked[g.Cat] != layers[1].ProbMasked[g.Cat] {
			t.Errorf("non-duplicated layer's %v changed", g.Cat)
		}
	}
	// The input must not be mutated.
	for _, g := range cfg.Census {
		if g.Cat.Class != accel.GlobalControl && layers[0].ProbMasked[g.Cat] != 0.3 {
			t.Fatalf("DuplicateLayers mutated its input for %v", g.Cat)
		}
	}
}

func TestPlanProtectionImpossibleBudget(t *testing.T) {
	cfg := accel.NVDLASmall()
	// Only part of the FIT is attributable to categories; an absurdly small
	// budget cannot be met even protecting everything.
	by := map[accel.Category]float64{}
	for _, g := range cfg.Census {
		by[g.Cat] = 1
	}
	r := &Result{Total: 100, ByCategory: by}
	plan, err := PlanProtection(cfg, r, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Meets {
		t.Error("7 FIT of removable contributions cannot reach 1e-6 from 100")
	}
	if len(plan.Choices) != len(cfg.Census) {
		t.Errorf("should protect everything available, got %d", len(plan.Choices))
	}
}

package accel

import (
	"fmt"

	"fidelity/internal/numerics"
)

// LayerKind enumerates the workload layer types that have distinct fault
// models and performance behaviour (Table II columns).
type LayerKind int

const (
	// LayerConv is a 2-D convolution.
	LayerConv LayerKind = iota
	// LayerFC is a fully connected layer.
	LayerFC
	// LayerMatMul is a general matrix multiplication.
	LayerMatMul
)

// String returns the Table II name.
func (k LayerKind) String() string {
	switch k {
	case LayerConv:
		return "Conv"
	case LayerFC:
		return "FC"
	case LayerMatMul:
		return "MatMul"
	default:
		return fmt.Sprintf("LayerKind(%d)", int(k))
	}
}

// LayerSpec is the workload description FIdelity consumes for one DNN layer:
// geometry, precision, and data-layout properties. This corresponds to input
// 1 of the framework ("DNN workload: layer type, kernel size, etc.", Fig 3).
type LayerSpec struct {
	Name string
	Kind LayerKind

	// Batch applies to all kinds.
	Batch int

	// Convolution geometry (Kind == LayerConv); FC uses InC→OutC with
	// OutH=OutW=KH=KW=1; MatMul uses Batch=M rows, InC=K, OutC=N.
	OutH, OutW int
	OutC       int
	KH, KW     int
	InC        int
	Stride     int

	// Precision is the datapath format the layer executes at.
	Precision numerics.Precision
	// WeightsCompressed reports whether the weight stream is compressed
	// (activates the decompression unit — Class 1 activeness).
	WeightsCompressed bool
}

// ConvSpec builds a convolution layer spec.
func ConvSpec(name string, batch, outH, outW, outC, kh, kw, inC, stride int, p numerics.Precision) LayerSpec {
	return LayerSpec{
		Name: name, Kind: LayerConv, Batch: batch,
		OutH: outH, OutW: outW, OutC: outC, KH: kh, KW: kw, InC: inC, Stride: stride,
		Precision: p,
	}
}

// FCSpec builds a fully connected layer spec.
func FCSpec(name string, batch, in, out int, p numerics.Precision) LayerSpec {
	return LayerSpec{
		Name: name, Kind: LayerFC, Batch: batch,
		OutH: 1, OutW: 1, OutC: out, KH: 1, KW: 1, InC: in, Stride: 1,
		Precision: p,
	}
}

// MatMulSpec builds an M×K · K×N matrix-multiplication spec.
func MatMulSpec(name string, m, k, n int, p numerics.Precision) LayerSpec {
	return LayerSpec{
		Name: name, Kind: LayerMatMul, Batch: 1,
		OutH: m, OutW: 1, OutC: n, KH: 1, KW: 1, InC: k, Stride: 1,
		Precision: p,
	}
}

// OutNeurons returns the number of output neurons the layer produces.
func (l LayerSpec) OutNeurons() int64 {
	return int64(l.Batch) * int64(l.OutH) * int64(l.OutW) * int64(l.OutC)
}

// MACs returns the number of multiply-accumulate operations.
func (l LayerSpec) MACs() int64 {
	return l.OutNeurons() * int64(l.KH) * int64(l.KW) * int64(l.InC)
}

// elemBytes returns the storage size of one value.
func (l LayerSpec) elemBytes() int64 {
	b := l.Precision.Bits() / 8
	if b == 0 {
		b = 2
	}
	return int64(b)
}

// InputBytes returns the activation traffic fetched for the layer.
func (l LayerSpec) InputBytes() int64 {
	switch l.Kind {
	case LayerConv:
		inH := l.OutH*l.Stride + l.KH - 1
		inW := l.OutW*l.Stride + l.KW - 1
		return int64(l.Batch) * int64(inH) * int64(inW) * int64(l.InC) * l.elemBytes()
	default:
		return int64(l.Batch) * int64(l.OutH) * int64(l.InC) * l.elemBytes()
	}
}

// WeightBytes returns the weight traffic fetched for the layer.
func (l LayerSpec) WeightBytes() int64 {
	switch l.Kind {
	case LayerMatMul:
		return int64(l.InC) * int64(l.OutC) * l.elemBytes()
	default:
		return int64(l.KH) * int64(l.KW) * int64(l.InC) * int64(l.OutC) * l.elemBytes()
	}
}

// Validate checks the geometry.
func (l LayerSpec) Validate() error {
	if l.Batch <= 0 || l.OutH <= 0 || l.OutW <= 0 || l.OutC <= 0 ||
		l.KH <= 0 || l.KW <= 0 || l.InC <= 0 || l.Stride <= 0 {
		return fmt.Errorf("accel: layer %s has non-positive geometry: %+v", l.Name, l)
	}
	return nil
}

package accel

import (
	"fmt"
	"hash/fnv"
)

// Fingerprint returns a short stable hash over every Config field that
// influences derived fault models, activeness, or the FIT computation.
// Campaign checkpoints pin it so a checkpoint taken under one accelerator
// description can never silently resume a study of another: two configs
// share a fingerprint iff their analysable content is identical.
func (c *Config) Fingerprint() string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d|%d|%d|%d|%d|%d",
		c.Name, c.AtomicK, c.AtomicC, c.WeightHoldCycles,
		c.NumFFs, c.FetchBytesPerCycle, c.CBUFBytes)
	for _, g := range c.Census {
		fmt.Fprintf(h, "|%d/%d/%d@%d:%g:%g:%g:%g",
			g.Cat.Class, g.Cat.Var, g.Cat.Pos, g.Component,
			g.Frac, g.DecompressFrac, g.FPOnlyFrac, g.IntOnlyFrac)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

package accel

import (
	"math"
	"testing"

	"fidelity/internal/numerics"
)

func TestNVDLASmallValid(t *testing.T) {
	c := NVDLASmall()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.AtomicK != 16 || c.WeightHoldCycles != 16 {
		t.Errorf("NVDLA atomics k=%d t=%d, want 16/16", c.AtomicK, c.WeightHoldCycles)
	}
}

func TestNVDLACensusMatchesTableII(t *testing.T) {
	c := NVDLASmall()
	want := map[string]float64{
		"before CBUF/input":         0.025,
		"before CBUF/weight":        0.048,
		"between CBUF & MAC/input":  0.162,
		"between CBUF & MAC/weight": 0.216,
		"inside MAC/output":         0.379,
		"local control":             0.057,
		"global control":            0.113,
	}
	got := map[string]float64{}
	for _, g := range c.Census {
		got[g.Cat.String()] = g.Frac
	}
	for k, v := range want {
		if math.Abs(got[k]-v) > 1e-9 {
			t.Errorf("census %q = %v, want %v", k, got[k], v)
		}
	}
	if len(got) != len(want) {
		t.Errorf("census has %d groups, want %d", len(got), len(want))
	}
}

func TestConfigValidateCatchesErrors(t *testing.T) {
	c := NVDLASmall()
	c.AtomicK = 0
	if err := c.Validate(); err == nil {
		t.Error("zero atomic-K should fail")
	}
	c = NVDLASmall()
	c.Census[0].Frac = 0.5
	if err := c.Validate(); err == nil {
		t.Error("non-normalized census should fail")
	}
	c = NVDLASmall()
	c.Census[1].DecompressFrac = 1.5
	if err := c.Validate(); err == nil {
		t.Error("excess sub-fractions should fail")
	}
	c = NVDLASmall()
	c.NumFFs = 0
	if err := c.Validate(); err == nil {
		t.Error("zero FF count should fail")
	}
	c = NVDLASmall()
	c.FetchBytesPerCycle = 0
	if err := c.Validate(); err == nil {
		t.Error("zero bandwidth should fail")
	}
}

func TestGroupLookup(t *testing.T) {
	c := NVDLASmall()
	g, err := c.Group(Category{Class: GlobalControl})
	if err != nil || g.Frac != 0.113 {
		t.Errorf("global control lookup: %v, %v", g, err)
	}
	if _, err := c.Group(Category{Class: Datapath, Var: VarBias, Pos: AfterMAC}); err == nil {
		t.Error("missing category should error")
	}
	if dp := c.DatapathGroups(); len(dp) != 5 {
		t.Errorf("datapath groups = %d, want 5", len(dp))
	}
}

func TestEyerissLike(t *testing.T) {
	c := EyerissLike(12, 7)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.AtomicK != 12 || c.WeightHoldCycles != 7 {
		t.Errorf("eyeriss atomics = %d/%d", c.AtomicK, c.WeightHoldCycles)
	}
}

func TestLayerSpecCounts(t *testing.T) {
	l := ConvSpec("c", 1, 8, 8, 32, 3, 3, 16, 1, numerics.FP16)
	if l.OutNeurons() != 8*8*32 {
		t.Errorf("OutNeurons = %d", l.OutNeurons())
	}
	if l.MACs() != 8*8*32*3*3*16 {
		t.Errorf("MACs = %d", l.MACs())
	}
	if l.WeightBytes() != 3*3*16*32*2 {
		t.Errorf("WeightBytes = %d", l.WeightBytes())
	}
	if l.InputBytes() != int64(10*10*16*2) {
		t.Errorf("InputBytes = %d", l.InputBytes())
	}
	if err := l.Validate(); err != nil {
		t.Error(err)
	}
}

func TestFCAndMatMulSpecs(t *testing.T) {
	fc := FCSpec("f", 4, 128, 10, numerics.INT8)
	if fc.OutNeurons() != 40 || fc.MACs() != 4*128*10 {
		t.Errorf("FC counts: %d neurons, %d MACs", fc.OutNeurons(), fc.MACs())
	}
	if fc.WeightBytes() != 128*10 {
		t.Errorf("FC INT8 WeightBytes = %d", fc.WeightBytes())
	}
	mm := MatMulSpec("m", 32, 64, 48, numerics.FP16)
	if mm.OutNeurons() != 32*48 || mm.MACs() != 32*64*48 {
		t.Errorf("MatMul counts: %d neurons, %d MACs", mm.OutNeurons(), mm.MACs())
	}
	if mm.WeightBytes() != 64*48*2 {
		t.Errorf("MatMul WeightBytes = %d", mm.WeightBytes())
	}
}

func TestLayerSpecValidate(t *testing.T) {
	bad := ConvSpec("c", 1, 0, 8, 32, 3, 3, 16, 1, numerics.FP16)
	if err := bad.Validate(); err == nil {
		t.Error("zero output height should fail")
	}
}

func TestStringers(t *testing.T) {
	if BeforeCBUF.String() == "" || CBUFToMAC.String() == "" || InsideMAC.String() == "" || AfterMAC.String() == "" {
		t.Error("position strings empty")
	}
	for _, v := range []VarType{VarInput, VarWeight, VarBias, VarPartialSum, VarOutput} {
		if v.String() == "" {
			t.Error("vartype string empty")
		}
	}
	for _, c := range []Component{CompFetch, CompSequencer, CompMAC, CompPost, CompConfig} {
		if c.String() == "" {
			t.Error("component string empty")
		}
	}
	for _, k := range []LayerKind{LayerConv, LayerFC, LayerMatMul} {
		if k.String() == "" {
			t.Error("layerkind string empty")
		}
	}
	if (Category{Class: Datapath, Var: VarInput, Pos: BeforeCBUF}).String() != "before CBUF/input" {
		t.Error("category string format changed")
	}
}

// TestFingerprint: stable for identical configs, sensitive to every
// analysis-relevant field — campaign checkpoints pin results to it.
func TestFingerprint(t *testing.T) {
	a, b := NVDLASmall(), NVDLASmall()
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical configs fingerprint differently")
	}
	mutations := []struct {
		name string
		mut  func(*Config)
	}{
		{"Name", func(c *Config) { c.Name = "other" }},
		{"AtomicK", func(c *Config) { c.AtomicK++ }},
		{"AtomicC", func(c *Config) { c.AtomicC++ }},
		{"WeightHoldCycles", func(c *Config) { c.WeightHoldCycles++ }},
		{"NumFFs", func(c *Config) { c.NumFFs++ }},
		{"FetchBytesPerCycle", func(c *Config) { c.FetchBytesPerCycle++ }},
		{"CBUFBytes", func(c *Config) { c.CBUFBytes++ }},
		{"Census frac", func(c *Config) {
			cs := append([]FFGroup(nil), c.Census...)
			cs[0].Frac += 0.001
			c.Census = cs
		}},
		{"Census dropped", func(c *Config) { c.Census = c.Census[1:] }},
	}
	for _, m := range mutations {
		c := *NVDLASmall()
		m.mut(&c)
		if c.Fingerprint() == a.Fingerprint() {
			t.Errorf("mutating %s did not change the fingerprint", m.name)
		}
	}
}

// Package accel describes deep-learning accelerator designs at the level of
// detail FIdelity needs: the hardware configuration parameters, the
// scheduling/reuse algorithm parameters, and the flip-flop census — which
// fraction of the design's FFs falls in each datapath/control category.
//
// This is deliberately *high-level* information: everything in a Config can
// be read off a block diagram or architectural description (or estimated and
// varied for sensitivity analysis), which is the paper's central claim — no
// RTL access is required to derive accurate software fault models.
package accel

import (
	"fmt"
	"strings"
)

// Position is the pipeline position of a datapath FF, following the
// partitioning of Table I.
type Position int

const (
	// BeforeCBUF covers FFs on the path from DRAM to each level of on-chip
	// memory (NVDLA: the CDMA pipeline feeding CBUF).
	BeforeCBUF Position = iota
	// CBUFToMAC covers FFs between the L1 on-chip memory and the MAC array
	// (NVDLA: the CSC sequencing pipeline), and operand registers inside MACs.
	CBUFToMAC
	// InsideMAC covers FFs inside MAC units (partial sums, product registers).
	InsideMAC
	// AfterMAC covers FFs downstream of accumulation (NVDLA: CACC output
	// registers and the SDP pipeline before write-back).
	AfterMAC
)

// String returns the Table I name of the position.
func (p Position) String() string {
	switch p {
	case BeforeCBUF:
		return "before CBUF"
	case CBUFToMAC:
		return "between CBUF & MAC"
	case InsideMAC:
		return "inside MAC"
	case AfterMAC:
		return "after MAC"
	default:
		return fmt.Sprintf("Position(%d)", int(p))
	}
}

// VarType is the variable type a datapath FF stores (Accelerator Property 2:
// datapath FFs only ever hold software-visible DNN variables).
type VarType int

const (
	// VarInput marks input/activation values.
	VarInput VarType = iota
	// VarWeight marks weight values.
	VarWeight
	// VarBias marks bias values.
	VarBias
	// VarPartialSum marks accumulator partial sums.
	VarPartialSum
	// VarOutput marks completed output values.
	VarOutput
)

// String returns the variable-type name.
func (v VarType) String() string {
	switch v {
	case VarInput:
		return "input"
	case VarWeight:
		return "weight"
	case VarBias:
		return "bias"
	case VarPartialSum:
		return "partial sum"
	case VarOutput:
		return "output"
	default:
		return fmt.Sprintf("VarType(%d)", int(v))
	}
}

// FFClass separates datapath FFs from the two control categories of
// Sec. III-B3.
type FFClass int

const (
	// Datapath FFs store DNN variable values.
	Datapath FFClass = iota
	// LocalControl FFs are coupled to a deterministic set of datapath FFs
	// (valid bits, mux selects).
	LocalControl
	// GlobalControl FFs hold layer configuration or memory sequencing state
	// and affect a large number of (or all) output neurons.
	GlobalControl
)

// String returns the class name.
func (c FFClass) String() string {
	switch c {
	case Datapath:
		return "datapath"
	case LocalControl:
		return "local control"
	case GlobalControl:
		return "global control"
	default:
		return fmt.Sprintf("FFClass(%d)", int(c))
	}
}

// Component identifies the hardware block an FF group belongs to, used by
// the activeness analysis (a component that is idle makes all of its FFs
// temporally inactive — Class 3).
type Component int

const (
	// CompFetch is the DMA/fetch pipeline feeding the on-chip buffer.
	CompFetch Component = iota
	// CompSequencer is the on-chip-buffer-to-MAC sequencing logic.
	CompSequencer
	// CompMAC is the MAC array.
	CompMAC
	// CompPost is the post-processing pipeline (bias/activation/pooling,
	// write-back).
	CompPost
	// CompConfig is the global configuration/CSR block.
	CompConfig
)

// String returns the component name.
func (c Component) String() string {
	switch c {
	case CompFetch:
		return "fetch"
	case CompSequencer:
		return "sequencer"
	case CompMAC:
		return "mac"
	case CompPost:
		return "post"
	case CompConfig:
		return "config"
	default:
		return fmt.Sprintf("Component(%d)", int(c))
	}
}

// Category is the software-fault-model category of an FF: its class, and for
// datapath FFs the (variable type, pipeline position) pair that determines
// its reuse behaviour (Datapath RF Property 3: all FFs in one category share
// one RF).
type Category struct {
	Class FFClass
	Var   VarType  // meaningful when Class == Datapath
	Pos   Position // meaningful when Class == Datapath
}

// String renders the category the way Table II labels rows.
func (c Category) String() string {
	switch c.Class {
	case Datapath:
		return fmt.Sprintf("%s/%s", c.Pos, c.Var)
	default:
		return c.Class.String()
	}
}

// MarshalText lets Category key JSON maps (the per-category FIT breakdowns),
// using the Table II row label.
func (c Category) MarshalText() ([]byte, error) { return []byte(c.String()), nil }

// UnmarshalText parses the Table II row label back into a Category, so a
// Config (whose census rows carry categories) round-trips through JSON — a
// distributed worker receives its accelerator description over the wire.
func (c *Category) UnmarshalText(text []byte) error {
	s := string(text)
	if i := strings.LastIndex(s, "/"); i >= 0 {
		pos, vt := s[:i], s[i+1:]
		c.Class = Datapath
		switch pos {
		case BeforeCBUF.String():
			c.Pos = BeforeCBUF
		case CBUFToMAC.String():
			c.Pos = CBUFToMAC
		case InsideMAC.String():
			c.Pos = InsideMAC
		case AfterMAC.String():
			c.Pos = AfterMAC
		default:
			return fmt.Errorf("accel: unknown pipeline position %q", pos)
		}
		for _, v := range []VarType{VarInput, VarWeight, VarBias, VarPartialSum, VarOutput} {
			if vt == v.String() {
				c.Var = v
				return nil
			}
		}
		return fmt.Errorf("accel: unknown variable type %q", vt)
	}
	c.Var, c.Pos = 0, 0
	switch s {
	case Datapath.String():
		c.Class = Datapath
	case LocalControl.String():
		c.Class = LocalControl
	case GlobalControl.String():
		c.Class = GlobalControl
	default:
		return fmt.Errorf("accel: unknown FF category %q", s)
	}
	return nil
}

// FFGroup is one census row: a category, the component it lives in, and the
// fraction of the design's FFs it contains, plus the sub-fractions that the
// activeness analysis needs.
type FFGroup struct {
	Cat       Category
	Component Component
	// Frac is this group's share of all FFs in the design (Table II "%FF").
	Frac float64
	// DecompressFrac is the share of the group inside the weight
	// decompression unit — Class 1 inactive whenever weights are
	// uncompressed.
	DecompressFrac float64
	// FPOnlyFrac is the share of the group used only for floating-point
	// arithmetic — Class 2 inactive for integer workloads.
	FPOnlyFrac float64
	// IntOnlyFrac is the share used only for integer arithmetic — Class 2
	// inactive for FP workloads.
	IntOnlyFrac float64
}

// Config is the complete high-level description of an accelerator that
// FIdelity consumes.
type Config struct {
	// Name identifies the design (e.g. "nvdla-small").
	Name string

	// AtomicK is the number of output channels computed in parallel each
	// cycle (the k² parallel MAC groups of Fig 2a; NVDLA: 16).
	AtomicK int
	// AtomicC is the number of input channels each MAC consumes per cycle
	// (NVDLA atomic-C; affects MAC cycle counts, not reuse sets).
	AtomicC int
	// WeightHoldCycles is t of Fig 2a: the number of cycles a weight value
	// is held and reused inside a MAC (NVDLA: 16).
	WeightHoldCycles int

	// NumFFs is the total flip-flop count of the design. An estimate is
	// sufficient; it scales the FIT rate linearly (Eq. 2).
	NumFFs int
	// FetchBytesPerCycle is the on-chip-buffer fill bandwidth, used by the
	// performance model for Class 3 activeness.
	FetchBytesPerCycle int
	// CBUFBytes is the size of the L1 on-chip buffer.
	CBUFBytes int

	// Census lists the FF groups. Fracs must sum to 1.
	Census []FFGroup
}

// Validate checks internal consistency.
func (c *Config) Validate() error {
	if c.AtomicK <= 0 || c.WeightHoldCycles <= 0 || c.AtomicC <= 0 {
		return fmt.Errorf("accel: %s: atomics must be positive (k=%d, c=%d, t=%d)",
			c.Name, c.AtomicK, c.AtomicC, c.WeightHoldCycles)
	}
	if c.NumFFs <= 0 {
		return fmt.Errorf("accel: %s: NumFFs must be positive", c.Name)
	}
	if c.FetchBytesPerCycle <= 0 || c.CBUFBytes <= 0 {
		return fmt.Errorf("accel: %s: memory parameters must be positive", c.Name)
	}
	var sum float64
	for _, g := range c.Census {
		if g.Frac < 0 || g.Frac > 1 {
			return fmt.Errorf("accel: %s: census fraction %v out of range for %v", c.Name, g.Frac, g.Cat)
		}
		if g.DecompressFrac < 0 || g.FPOnlyFrac < 0 || g.IntOnlyFrac < 0 ||
			g.DecompressFrac+g.FPOnlyFrac+g.IntOnlyFrac > 1+1e-9 {
			return fmt.Errorf("accel: %s: sub-fractions of %v exceed 1", c.Name, g.Cat)
		}
		sum += g.Frac
	}
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("accel: %s: census fractions sum to %v, want 1", c.Name, sum)
	}
	return nil
}

// Group returns the census row for a category.
func (c *Config) Group(cat Category) (FFGroup, error) {
	for _, g := range c.Census {
		if g.Cat == cat {
			return g, nil
		}
	}
	return FFGroup{}, fmt.Errorf("accel: %s: no census group for %v", c.Name, cat)
}

// DatapathGroups returns census rows for datapath FFs only.
func (c *Config) DatapathGroups() []FFGroup {
	var out []FFGroup
	for _, g := range c.Census {
		if g.Cat.Class == Datapath {
			out = append(out, g)
		}
	}
	return out
}

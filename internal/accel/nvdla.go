package accel

// NVDLASmall returns the NVDLA-like configuration used throughout the paper's
// case study: the Fig 2(a) datapath with k = 4 (k² = 16 parallel MAC groups,
// each computing one output channel per cycle) and t = 16 (a weight value is
// held and reused for 16 consecutive MAC operations).
//
// The census fractions are the paper's Table II "%FF" column. The sub-
// fractions (decompression share, FP-only share, INT-only share) are the
// kind of estimate the paper obtains from block diagrams; they can be varied
// for sensitivity analysis.
//
// NumFFs is an estimate of the sequential-element count of the NVDLA
// configuration the paper studies, calibrated so that the reproduced
// Accelerator_FIT_rate magnitudes land in the paper's reported range — the
// paper's headline Yolo@10% FIT of ~9.5 pins it at ~830K FFs given our
// measured masking rates (the paper never states the absolute FF count, and
// Eq. 2 is linear in it; see EXPERIMENTS.md).
func NVDLASmall() *Config {
	return &Config{
		Name:               "nvdla-small",
		AtomicK:            16,
		AtomicC:            16,
		WeightHoldCycles:   16,
		NumFFs:             830_000,
		FetchBytesPerCycle: 32,
		CBUFBytes:          512 * 1024,
		Census: []FFGroup{
			{
				Cat:       Category{Class: Datapath, Var: VarInput, Pos: BeforeCBUF},
				Component: CompFetch,
				Frac:      0.025,
			},
			{
				Cat:            Category{Class: Datapath, Var: VarWeight, Pos: BeforeCBUF},
				Component:      CompFetch,
				Frac:           0.048,
				DecompressFrac: 0.30, // CDMA weight decompression unit
			},
			{
				Cat:         Category{Class: Datapath, Var: VarInput, Pos: CBUFToMAC},
				Component:   CompMAC,
				Frac:        0.162,
				FPOnlyFrac:  0.25,
				IntOnlyFrac: 0.10,
			},
			{
				Cat:         Category{Class: Datapath, Var: VarWeight, Pos: CBUFToMAC},
				Component:   CompMAC,
				Frac:        0.216,
				FPOnlyFrac:  0.25,
				IntOnlyFrac: 0.10,
			},
			{
				Cat:         Category{Class: Datapath, Var: VarOutput, Pos: InsideMAC},
				Component:   CompMAC,
				Frac:        0.379,
				FPOnlyFrac:  0.25,
				IntOnlyFrac: 0.10,
			},
			{
				Cat:       Category{Class: LocalControl},
				Component: CompMAC,
				Frac:      0.057,
			},
			{
				Cat:       Category{Class: GlobalControl},
				Component: CompConfig,
				Frac:      0.113,
			},
		},
	}
}

// EyerissLike returns a configuration for the Fig 2(b) systolic design:
// a k × k MAC array in which weights travel horizontally (reused across k
// output rows) and inputs travel diagonally (reused across t output
// channels within a column). Only the reuse parameters matter for the Fig 2
// reuse-factor examples; the census reuses NVDLA-like proportions.
func EyerissLike(k, t int) *Config {
	c := NVDLASmall()
	c.Name = "eyeriss-like"
	c.AtomicK = k
	c.WeightHoldCycles = t
	return c
}

// Package metrics implements the application correctness metrics of paper
// Table IV: Top-1 label match for classifiers, BLEU-score difference for
// translation, and detection-precision difference for object detection.
// Every metric compares a faulty application output against the fault-free
// output of the same run, exactly as the paper's methodology does.
package metrics

import (
	"math"

	"fidelity/internal/tensor"
)

// Top1Match reports whether the faulty classifier output predicts the same
// top-1 label as the golden output.
func Top1Match(golden, faulty *tensor.Tensor) bool {
	return golden.ArgMax() == faulty.ArgMax()
}

// BLEU computes a sentence-level BLEU score of hyp against ref: geometric
// mean of modified n-gram precisions up to 4-grams with add-one smoothing
// and a brevity penalty. Identical sequences score 1.
func BLEU(ref, hyp []int) float64 {
	if len(hyp) == 0 {
		if len(ref) == 0 {
			return 1
		}
		return 0
	}
	logSum := 0.0
	for n := 1; n <= 4; n++ {
		match, total := ngramOverlap(ref, hyp, n)
		// Add-one smoothing keeps short sentences meaningful.
		p := (float64(match) + 1) / (float64(total) + 1)
		logSum += math.Log(p)
	}
	bleu := math.Exp(logSum / 4)
	if len(hyp) < len(ref) {
		bleu *= math.Exp(1 - float64(len(ref))/float64(len(hyp)))
	}
	return bleu
}

// ngramOverlap counts clipped n-gram matches of hyp against ref.
func ngramOverlap(ref, hyp []int, n int) (match, total int) {
	if len(hyp) < n {
		return 0, 0
	}
	refCount := map[string]int{}
	for i := 0; i+n <= len(ref); i++ {
		refCount[key(ref[i:i+n])]++
	}
	hypCount := map[string]int{}
	for i := 0; i+n <= len(hyp); i++ {
		hypCount[key(hyp[i:i+n])]++
		total++
	}
	for k, c := range hypCount {
		if rc := refCount[k]; rc < c {
			match += rc
		} else {
			match += c
		}
	}
	return match, total
}

func key(gram []int) string {
	b := make([]byte, 0, len(gram)*3)
	for _, g := range gram {
		b = append(b, byte(g), byte(g>>8), ',')
	}
	return string(b)
}

// Box is an axis-aligned detection with a class label.
type Box struct {
	X, Y, W, H float64
	Class      int
	Score      float64
}

// IoU computes intersection over union of two boxes.
func IoU(a, b Box) float64 {
	x1 := math.Max(a.X, b.X)
	y1 := math.Max(a.Y, b.Y)
	x2 := math.Min(a.X+a.W, b.X+b.W)
	y2 := math.Min(a.Y+a.H, b.Y+b.H)
	if x2 <= x1 || y2 <= y1 {
		return 0
	}
	inter := (x2 - x1) * (y2 - y1)
	union := a.W*a.H + b.W*b.H - inter
	if union <= 0 {
		return 0
	}
	return inter / union
}

// DetectionF1 scores a faulty detection set against the golden set: greedy
// one-to-one matching at IoU >= 0.5 with class agreement, returning the F1
// of matched boxes. Identical sets score 1; an empty golden and faulty pair
// scores 1.
func DetectionF1(golden, faulty []Box) float64 {
	if len(golden) == 0 && len(faulty) == 0 {
		return 1
	}
	if len(golden) == 0 || len(faulty) == 0 {
		return 0
	}
	used := make([]bool, len(golden))
	matched := 0
	for _, f := range faulty {
		best, bestIoU := -1, 0.5
		for i, g := range golden {
			if used[i] || g.Class != f.Class {
				continue
			}
			if iou := IoU(g, f); iou >= bestIoU {
				best, bestIoU = i, iou
			}
		}
		if best >= 0 {
			used[best] = true
			matched++
		}
	}
	precision := float64(matched) / float64(len(faulty))
	recall := float64(matched) / float64(len(golden))
	if precision+recall == 0 {
		return 0
	}
	return 2 * precision * recall / (precision + recall)
}

// WithinTolerance reports whether a quality score stays within frac of the
// fault-free score (the "< 10%/20% score difference" criteria of Table IV).
// The fault-free score of a self-referential metric is 1.
func WithinTolerance(score, frac float64) bool {
	return score >= 1-frac
}

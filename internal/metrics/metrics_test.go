package metrics

import (
	"math"
	"math/rand"
	"testing"

	"fidelity/internal/tensor"
)

func TestTop1Match(t *testing.T) {
	g := tensor.FromSlice([]float32{0.1, 0.7, 0.2}, 3)
	f1 := tensor.FromSlice([]float32{0.2, 0.5, 0.3}, 3)
	f2 := tensor.FromSlice([]float32{0.5, 0.2, 0.3}, 3)
	if !Top1Match(g, f1) {
		t.Error("same argmax should match")
	}
	if Top1Match(g, f2) {
		t.Error("different argmax should not match")
	}
}

func TestBLEUIdentity(t *testing.T) {
	s := []int{1, 2, 3, 4, 5, 6, 7, 8}
	if b := BLEU(s, s); b != 1 {
		t.Errorf("self-BLEU = %v", b)
	}
}

func TestBLEUProperties(t *testing.T) {
	ref := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	oneOff := append([]int(nil), ref...)
	oneOff[5] = 99
	manyOff := []int{99, 98, 97, 96, 95, 94, 93, 92, 91, 90}
	b1 := BLEU(ref, oneOff)
	bm := BLEU(ref, manyOff)
	if !(1 > b1 && b1 > bm) {
		t.Errorf("BLEU ordering violated: 1 > %v > %v", b1, bm)
	}
	if bm > 0.2 {
		t.Errorf("fully wrong sentence scored %v", bm)
	}
}

func TestBLEUBrevityPenalty(t *testing.T) {
	ref := []int{1, 2, 3, 4, 5, 6, 7, 8}
	short := ref[:4]
	full := BLEU(ref, ref)
	trunc := BLEU(ref, short)
	if trunc >= full {
		t.Errorf("truncation should be penalized: %v vs %v", trunc, full)
	}
}

func TestBLEUEmpty(t *testing.T) {
	if BLEU(nil, nil) != 1 {
		t.Error("empty vs empty = 1")
	}
	if BLEU([]int{1, 2}, nil) != 0 {
		t.Error("empty hypothesis = 0")
	}
}

func TestIoU(t *testing.T) {
	a := Box{X: 0, Y: 0, W: 2, H: 2}
	if iou := IoU(a, a); math.Abs(iou-1) > 1e-12 {
		t.Errorf("self IoU = %v", iou)
	}
	b := Box{X: 1, Y: 1, W: 2, H: 2}
	// Intersection 1, union 7.
	if iou := IoU(a, b); math.Abs(iou-1.0/7) > 1e-12 {
		t.Errorf("IoU = %v, want 1/7", iou)
	}
	c := Box{X: 5, Y: 5, W: 1, H: 1}
	if IoU(a, c) != 0 {
		t.Error("disjoint IoU must be 0")
	}
}

func TestDetectionF1(t *testing.T) {
	g := []Box{
		{X: 0, Y: 0, W: 1, H: 1, Class: 0},
		{X: 3, Y: 3, W: 1, H: 1, Class: 1},
	}
	if f := DetectionF1(g, g); f != 1 {
		t.Errorf("self F1 = %v", f)
	}
	// One box missing: precision 1, recall 0.5, F1 = 2/3.
	if f := DetectionF1(g, g[:1]); math.Abs(f-2.0/3) > 1e-9 {
		t.Errorf("partial F1 = %v, want 2/3", f)
	}
	// Class mismatch kills the match.
	wrong := []Box{{X: 0, Y: 0, W: 1, H: 1, Class: 1}, {X: 3, Y: 3, W: 1, H: 1, Class: 0}}
	if f := DetectionF1(g, wrong); f != 0 {
		t.Errorf("class-mismatched F1 = %v", f)
	}
	if DetectionF1(nil, nil) != 1 {
		t.Error("empty/empty = 1")
	}
	if DetectionF1(g, nil) != 0 || DetectionF1(nil, g) != 0 {
		t.Error("one-sided empty = 0")
	}
}

// Greedy matching must be one-to-one: duplicated predictions can't inflate
// the score.
func TestDetectionF1OneToOne(t *testing.T) {
	g := []Box{{X: 0, Y: 0, W: 1, H: 1, Class: 0}}
	dup := []Box{
		{X: 0, Y: 0, W: 1, H: 1, Class: 0},
		{X: 0.01, Y: 0, W: 1, H: 1, Class: 0},
	}
	f := DetectionF1(g, dup)
	// matched=1, precision=0.5, recall=1, F1=2/3.
	if math.Abs(f-2.0/3) > 1e-9 {
		t.Errorf("duplicate-prediction F1 = %v, want 2/3", f)
	}
}

func TestWithinTolerance(t *testing.T) {
	if !WithinTolerance(0.95, 0.1) {
		t.Error("0.95 within 10%")
	}
	if WithinTolerance(0.85, 0.1) {
		t.Error("0.85 not within 10%")
	}
	if !WithinTolerance(0.85, 0.2) {
		t.Error("0.85 within 20%")
	}
}

// Property: BLEU is symmetric-ish in degradation — adding noise monotonically
// degrades the expected score.
func TestBLEUDegradesWithNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ref := make([]int, 30)
	for i := range ref {
		ref[i] = rng.Intn(50)
	}
	prev := 1.0
	for _, corrupt := range []int{1, 5, 15, 30} {
		var sum float64
		for trial := 0; trial < 20; trial++ {
			hyp := append([]int(nil), ref...)
			for j := 0; j < corrupt; j++ {
				hyp[rng.Intn(len(hyp))] = 50 + rng.Intn(50)
			}
			sum += BLEU(ref, hyp)
		}
		avg := sum / 20
		if avg >= prev {
			t.Errorf("BLEU did not degrade at corruption %d: %v >= %v", corrupt, avg, prev)
		}
		prev = avg
	}
}

// Package tensor implements the dense multi-dimensional arrays used by the
// DNN substrate. Tensors are float32-backed with row-major layout; image
// tensors use NHWC order (batch, height, width, channel), matching the output
// neuron coordinate system (batch, height, width, channel) of the paper's
// Reuse Factor Analysis.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a dense row-major float32 array with an explicit shape.
type Tensor struct {
	shape   []int
	strides []int
	data    []float32
}

// New allocates a zero tensor of the given shape. Every dimension must be
// positive.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	t := &Tensor{
		shape: append([]int(nil), shape...),
		data:  make([]float32, n),
	}
	t.strides = computeStrides(t.shape)
	return t
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); its length must equal the shape volume.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	if len(data) != n {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (volume %d)", len(data), shape, n))
	}
	t := &Tensor{shape: append([]int(nil), shape...), data: data}
	t.strides = computeStrides(t.shape)
	return t
}

func computeStrides(shape []int) []int {
	strides := make([]int, len(shape))
	s := 1
	for i := len(shape) - 1; i >= 0; i-- {
		strides[i] = s
		s *= shape[i]
	}
	return strides
}

// Shape returns the tensor's dimensions. The returned slice must not be
// modified.
func (t *Tensor) Shape() []int { return t.shape }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Size returns the total number of elements.
func (t *Tensor) Size() int { return len(t.data) }

// Data returns the backing slice in row-major order.
func (t *Tensor) Data() []float32 { return t.data }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Offset converts a multi-index to a flat offset, panicking on out-of-range
// indices.
func (t *Tensor) Offset(idx ...int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match tensor rank %d", len(idx), len(t.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off += x * t.strides[i]
	}
	return off
}

// At returns the element at a multi-index.
func (t *Tensor) At(idx ...int) float32 { return t.data[t.Offset(idx...)] }

// Set stores v at a multi-index.
func (t *Tensor) Set(v float32, idx ...int) { t.data[t.Offset(idx...)] = v }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// Reshape returns a view with a new shape of the same volume, sharing data.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape volume %d to %v", len(t.data), shape))
	}
	return FromSlice(t.data, shape...)
}

// SameShape reports whether t and u have identical shapes.
func (t *Tensor) SameShape(u *Tensor) bool {
	if len(t.shape) != len(u.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != u.shape[i] {
			return false
		}
	}
	return true
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Apply replaces every element x with f(x).
func (t *Tensor) Apply(f func(float32) float32) {
	for i, x := range t.data {
		t.data[i] = f(x)
	}
}

// Map returns a new tensor whose elements are f applied to t's elements.
func (t *Tensor) Map(f func(float32) float32) *Tensor {
	c := t.Clone()
	c.Apply(f)
	return c
}

// RandNormal fills the tensor with N(0, stddev²) values from rng.
func (t *Tensor) RandNormal(rng *rand.Rand, stddev float32) {
	for i := range t.data {
		t.data[i] = float32(rng.NormFloat64()) * stddev
	}
}

// RandUniform fills the tensor with uniform values in [lo, hi).
func (t *Tensor) RandUniform(rng *rand.Rand, lo, hi float32) {
	for i := range t.data {
		t.data[i] = lo + (hi-lo)*rng.Float32()
	}
}

// MaxAbs returns the largest absolute element value (0 for all-zero tensors;
// NaNs are ignored).
func (t *Tensor) MaxAbs() float32 {
	var m float32
	for _, x := range t.data {
		a := float32(math.Abs(float64(x)))
		if a > m && !math.IsNaN(float64(a)) {
			m = a
		}
	}
	return m
}

// ArgMax returns the flat index of the maximum element. For DNN classifier
// outputs this is the predicted label. NaN elements never win.
func (t *Tensor) ArgMax() int {
	best, bestv := 0, float32(math.Inf(-1))
	for i, x := range t.data {
		if x > bestv {
			best, bestv = i, x
		}
	}
	return best
}

// Equal reports whether t and u have the same shape and identical elements.
// NaN elements compare equal to NaN at the same position.
func (t *Tensor) Equal(u *Tensor) bool {
	if !t.SameShape(u) {
		return false
	}
	for i := range t.data {
		a, b := t.data[i], u.data[i]
		if a != b && !(math.IsNaN(float64(a)) && math.IsNaN(float64(b))) {
			return false
		}
	}
	return true
}

// DiffIndices returns the flat indices where t and u differ by more than tol
// (or where exactly one of the two is NaN). It panics if shapes differ.
func (t *Tensor) DiffIndices(u *Tensor, tol float32) []int {
	if !t.SameShape(u) {
		panic(fmt.Sprintf("tensor: shape mismatch %v vs %v", t.shape, u.shape))
	}
	var diffs []int
	for i := range t.data {
		a, b := float64(t.data[i]), float64(u.data[i])
		if math.IsNaN(a) != math.IsNaN(b) {
			diffs = append(diffs, i)
			continue
		}
		if math.IsNaN(a) {
			continue
		}
		if math.Abs(a-b) > float64(tol) {
			diffs = append(diffs, i)
		}
	}
	return diffs
}

// Unflatten converts a flat offset back to a multi-index.
func (t *Tensor) Unflatten(off int) []int {
	if off < 0 || off >= len(t.data) {
		panic(fmt.Sprintf("tensor: offset %d out of range for size %d", off, len(t.data)))
	}
	idx := make([]int, len(t.shape))
	for i := range t.shape {
		idx[i] = off / t.strides[i]
		off %= t.strides[i]
	}
	return idx
}

// String renders small tensors fully and large ones as a summary.
func (t *Tensor) String() string {
	if len(t.data) <= 16 {
		return fmt.Sprintf("Tensor%v%v", t.shape, t.data)
	}
	return fmt.Sprintf("Tensor%v[%d elements, maxAbs=%g]", t.shape, len(t.data), t.MaxAbs())
}

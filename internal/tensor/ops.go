package tensor

import (
	"fmt"
	"math"
)

// Add returns t + u elementwise. Shapes must match.
func Add(t, u *Tensor) *Tensor {
	if !t.SameShape(u) {
		panic(fmt.Sprintf("tensor: Add shape mismatch %v vs %v", t.shape, u.shape))
	}
	out := t.Clone()
	for i := range out.data {
		out.data[i] += u.data[i]
	}
	return out
}

// Sub returns t - u elementwise.
func Sub(t, u *Tensor) *Tensor {
	if !t.SameShape(u) {
		panic(fmt.Sprintf("tensor: Sub shape mismatch %v vs %v", t.shape, u.shape))
	}
	out := t.Clone()
	for i := range out.data {
		out.data[i] -= u.data[i]
	}
	return out
}

// Mul returns t * u elementwise (Hadamard product).
func Mul(t, u *Tensor) *Tensor {
	if !t.SameShape(u) {
		panic(fmt.Sprintf("tensor: Mul shape mismatch %v vs %v", t.shape, u.shape))
	}
	out := t.Clone()
	for i := range out.data {
		out.data[i] *= u.data[i]
	}
	return out
}

// Scale returns t * s.
func Scale(t *Tensor, s float32) *Tensor {
	return t.Map(func(x float32) float32 { return x * s })
}

// MatMul panel sizes: one B panel (matMulBlockK × matMulBlockN float32s,
// 128 KiB) plus the touched A and out stripes fit in L2, and the panel is
// reused across every row of A before the next one is loaded.
const (
	matMulBlockK = 128
	matMulBlockN = 256
)

// MatMul computes the matrix product of a (m×k) and b (k×n). Both tensors
// must be rank 2.
//
// The loop is cache-blocked over (k, n) panels of B. For every output
// element the depth index p is still visited in strictly increasing order
// (panels advance outer-to-inner), so the float accumulation order — and
// therefore every bit of the result, NaN payloads excepted — is identical to
// the naive i/p/j loop, which matMulRef preserves as the test oracle.
func MatMul(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMul requires rank-2 operands, got %v and %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimensions %d and %d differ", k, k2))
	}
	out := New(m, n)
	for p0 := 0; p0 < k; p0 += matMulBlockK {
		p1 := p0 + matMulBlockK
		if p1 > k {
			p1 = k
		}
		for j0 := 0; j0 < n; j0 += matMulBlockN {
			j1 := j0 + matMulBlockN
			if j1 > n {
				j1 = n
			}
			for i := 0; i < m; i++ {
				arow := a.data[i*k+p0 : i*k+p1]
				orow := out.data[i*n+j0 : i*n+j1 : i*n+j1]
				for pi, av := range arow {
					// Skipping av==0 must stay: matMulRef skips it too, and
					// 0*Inf would otherwise turn into NaN under faults.
					if av == 0 {
						continue
					}
					brow := b.data[(p0+pi)*n+j0 : (p0+pi)*n+j1 : (p0+pi)*n+j1]
					for j, bv := range brow {
						orow[j] += av * bv
					}
				}
			}
		}
	}
	return out
}

// matMulRef is the pre-blocking MatMul loop, frozen as the bit-exactness
// oracle for the property tests.
func matMulRef(a, b *Tensor) *Tensor {
	m, k := a.shape[0], a.shape[1]
	n := b.shape[1]
	out := New(m, n)
	for i := 0; i < m; i++ {
		arow := a.data[i*k : (i+1)*k]
		orow := out.data[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b.data[p*n : (p+1)*n]
			for j := 0; j < n; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
	return out
}

// Transpose returns the rank-2 transpose of t.
func Transpose(t *Tensor) *Tensor {
	if t.Rank() != 2 {
		panic(fmt.Sprintf("tensor: Transpose requires rank 2, got %v", t.shape))
	}
	m, n := t.shape[0], t.shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.data[j*m+i] = t.data[i*n+j]
		}
	}
	return out
}

// Softmax applies a numerically stable softmax along the last dimension.
func Softmax(t *Tensor) *Tensor {
	last := t.shape[len(t.shape)-1]
	rows := t.Size() / last
	out := t.Clone()
	for r := 0; r < rows; r++ {
		row := out.data[r*last : (r+1)*last]
		maxv := float32(math.Inf(-1))
		for _, x := range row {
			if x > maxv {
				maxv = x
			}
		}
		var sum float64
		for i, x := range row {
			e := math.Exp(float64(x - maxv))
			row[i] = float32(e)
			sum += e
		}
		if sum == 0 || math.IsNaN(sum) {
			// Degenerate row (all -Inf or NaN): emit uniform distribution so
			// downstream argmax remains well-defined under faults.
			for i := range row {
				row[i] = 1 / float32(last)
			}
			continue
		}
		for i := range row {
			row[i] /= float32(sum)
		}
	}
	return out
}

// Concat concatenates tensors along the given axis. All other dimensions
// must match.
func Concat(axis int, ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("tensor: Concat of nothing")
	}
	rank := ts[0].Rank()
	if axis < 0 || axis >= rank {
		panic(fmt.Sprintf("tensor: Concat axis %d out of range for rank %d", axis, rank))
	}
	outShape := append([]int(nil), ts[0].shape...)
	total := ts[0].shape[axis]
	for _, t := range ts[1:] {
		if t.Rank() != rank {
			panic("tensor: Concat rank mismatch")
		}
		for d := 0; d < rank; d++ {
			if d != axis && t.shape[d] != outShape[d] {
				panic(fmt.Sprintf("tensor: Concat shape mismatch at dim %d: %v vs %v", d, t.shape, outShape))
			}
		}
		total += t.shape[axis]
	}
	outShape[axis] = total
	out := New(outShape...)

	// Copy block by block: outer = product of dims before axis,
	// inner = product of dims after axis.
	outer := 1
	for d := 0; d < axis; d++ {
		outer *= outShape[d]
	}
	inner := 1
	for d := axis + 1; d < rank; d++ {
		inner *= outShape[d]
	}
	outAxisStride := total * inner
	offset := 0
	for _, t := range ts {
		blk := t.shape[axis] * inner
		for o := 0; o < outer; o++ {
			src := t.data[o*blk : (o+1)*blk]
			dst := out.data[o*outAxisStride+offset*inner:]
			copy(dst[:blk], src)
		}
		offset += t.shape[axis]
	}
	return out
}

// Pad2D zero-pads an NHWC tensor by p rows/cols on each spatial side.
func Pad2D(t *Tensor, p int) *Tensor {
	if t.Rank() != 4 {
		panic(fmt.Sprintf("tensor: Pad2D requires NHWC rank 4, got %v", t.shape))
	}
	if p == 0 {
		return t.Clone()
	}
	n, h, w, c := t.shape[0], t.shape[1], t.shape[2], t.shape[3]
	out := New(n, h+2*p, w+2*p, c)
	for b := 0; b < n; b++ {
		for y := 0; y < h; y++ {
			srcOff := t.Offset(b, y, 0, 0)
			dstOff := out.Offset(b, y+p, p, 0)
			copy(out.data[dstOff:dstOff+w*c], t.data[srcOff:srcOff+w*c])
		}
	}
	return out
}

// Sum returns the sum of all elements in float64 for accuracy.
func Sum(t *Tensor) float64 {
	var s float64
	for _, x := range t.data {
		s += float64(x)
	}
	return s
}

// Dot computes the float64 inner product of two equal-length tensors.
func Dot(a, b *Tensor) float64 {
	if a.Size() != b.Size() {
		panic(fmt.Sprintf("tensor: Dot size mismatch %d vs %d", a.Size(), b.Size()))
	}
	var s float64
	for i := range a.data {
		s += float64(a.data[i]) * float64(b.data[i])
	}
	return s
}

package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndIndexing(t *testing.T) {
	x := New(2, 3, 4)
	if x.Size() != 24 || x.Rank() != 3 {
		t.Fatalf("size/rank = %d/%d", x.Size(), x.Rank())
	}
	x.Set(7, 1, 2, 3)
	if got := x.At(1, 2, 3); got != 7 {
		t.Errorf("At(1,2,3) = %v", got)
	}
	if off := x.Offset(1, 2, 3); off != 23 {
		t.Errorf("Offset(1,2,3) = %d, want 23", off)
	}
	if x.Dim(1) != 3 {
		t.Errorf("Dim(1) = %d", x.Dim(1))
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) should panic")
		}
	}()
	New(2, 0)
}

func TestOffsetPanicsOutOfRange(t *testing.T) {
	x := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range index should panic")
		}
	}()
	x.At(2, 0)
}

func TestFromSliceAndReshape(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	if x.At(1, 2) != 6 {
		t.Errorf("At(1,2) = %v", x.At(1, 2))
	}
	y := x.Reshape(3, 2)
	if y.At(2, 1) != 6 {
		t.Errorf("reshaped At(2,1) = %v", y.At(2, 1))
	}
	// Views share data.
	y.Set(99, 0, 0)
	if x.At(0, 0) != 99 {
		t.Error("Reshape should share backing data")
	}
}

func TestUnflattenRoundTrip(t *testing.T) {
	x := New(3, 4, 5)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		idx := []int{rng.Intn(3), rng.Intn(4), rng.Intn(5)}
		off := x.Offset(idx...)
		back := x.Unflatten(off)
		for d := range idx {
			if back[d] != idx[d] {
				t.Fatalf("Unflatten(%d) = %v, want %v", off, back, idx)
			}
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	x := FromSlice([]float32{1, 2}, 2)
	y := x.Clone()
	y.Set(5, 0)
	if x.At(0) != 1 {
		t.Error("Clone must not share data")
	}
}

func TestArgMaxAndMaxAbs(t *testing.T) {
	x := FromSlice([]float32{-3, 1, 2, -5}, 4)
	if x.ArgMax() != 2 {
		t.Errorf("ArgMax = %d", x.ArgMax())
	}
	if x.MaxAbs() != 5 {
		t.Errorf("MaxAbs = %v", x.MaxAbs())
	}
	nan := FromSlice([]float32{float32(math.NaN()), 1}, 2)
	if nan.ArgMax() != 1 {
		t.Errorf("ArgMax with NaN = %d, want 1", nan.ArgMax())
	}
}

func TestEqualAndDiff(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3}, 3)
	b := FromSlice([]float32{1, 2.5, 3}, 3)
	if a.Equal(b) {
		t.Error("a should not equal b")
	}
	if d := a.DiffIndices(b, 0.1); len(d) != 1 || d[0] != 1 {
		t.Errorf("DiffIndices = %v", d)
	}
	if d := a.DiffIndices(b, 1); len(d) != 0 {
		t.Errorf("DiffIndices tol=1 = %v", d)
	}
	nan := float32(math.NaN())
	c := FromSlice([]float32{1, nan, 3}, 3)
	d := FromSlice([]float32{1, nan, 3}, 3)
	if !c.Equal(d) {
		t.Error("NaN at same position should compare equal")
	}
	if diffs := a.DiffIndices(c, 0); len(diffs) != 1 || diffs[0] != 1 {
		t.Errorf("NaN vs number should diff: %v", diffs)
	}
}

func TestAddSubMulScale(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 2)
	b := FromSlice([]float32{3, 5}, 2)
	if got := Add(a, b); got.At(0) != 4 || got.At(1) != 7 {
		t.Errorf("Add = %v", got)
	}
	if got := Sub(b, a); got.At(0) != 2 || got.At(1) != 3 {
		t.Errorf("Sub = %v", got)
	}
	if got := Mul(a, b); got.At(0) != 3 || got.At(1) != 10 {
		t.Errorf("Mul = %v", got)
	}
	if got := Scale(a, 2); got.At(1) != 4 {
		t.Errorf("Scale = %v", got)
	}
}

func TestMatMulKnown(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float32{58, 64, 139, 154}
	for i, w := range want {
		if c.Data()[i] != w {
			t.Errorf("MatMul[%d] = %v, want %v", i, c.Data()[i], w)
		}
	}
}

// Property: (A·B)ᵀ = Bᵀ·Aᵀ.
func TestMatMulTransposeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		m, k, n := 1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(6)
		a, b := New(m, k), New(k, n)
		a.RandNormal(rng, 1)
		b.RandNormal(rng, 1)
		lhs := Transpose(MatMul(a, b))
		rhs := MatMul(Transpose(b), Transpose(a))
		if len(lhs.DiffIndices(rhs, 1e-4)) != 0 {
			t.Fatalf("transpose property violated for %dx%dx%d", m, k, n)
		}
	}
}

func TestMatMulValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched inner dims should panic")
		}
	}()
	MatMul(New(2, 3), New(4, 2))
}

func TestSoftmaxProperties(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 1000, 1001, 1002}, 2, 3)
	s := Softmax(x)
	for r := 0; r < 2; r++ {
		var sum float32
		for j := 0; j < 3; j++ {
			v := s.At(r, j)
			if v < 0 || v > 1 || math.IsNaN(float64(v)) {
				t.Fatalf("softmax out of range: %v", v)
			}
			sum += v
		}
		if math.Abs(float64(sum-1)) > 1e-5 {
			t.Fatalf("softmax row %d sums to %v", r, sum)
		}
	}
	// Monotonicity within a row.
	if !(s.At(0, 0) < s.At(0, 1) && s.At(0, 1) < s.At(0, 2)) {
		t.Error("softmax should preserve order")
	}
}

func TestSoftmaxDegenerateRow(t *testing.T) {
	inf := float32(math.Inf(-1))
	x := FromSlice([]float32{inf, inf, inf}, 1, 3)
	s := Softmax(x)
	for j := 0; j < 3; j++ {
		if got := s.At(0, j); math.Abs(float64(got)-1.0/3) > 1e-6 {
			t.Errorf("degenerate softmax[%d] = %v, want 1/3", j, got)
		}
	}
}

func TestConcat(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 1, 2, 2)
	b := FromSlice([]float32{5, 6, 7, 8}, 1, 2, 2)
	c := Concat(2, a, b) // channels
	if c.Dim(2) != 4 {
		t.Fatalf("concat dim = %d", c.Dim(2))
	}
	want := []float32{1, 2, 5, 6, 3, 4, 7, 8}
	for i, w := range want {
		if c.Data()[i] != w {
			t.Errorf("Concat[%d] = %v, want %v", i, c.Data()[i], w)
		}
	}
	c0 := Concat(0, a, b)
	if c0.Dim(0) != 2 || c0.At(1, 0, 0) != 5 {
		t.Errorf("Concat axis 0 wrong: %v", c0)
	}
}

func TestPad2D(t *testing.T) {
	x := New(1, 2, 2, 1)
	x.Fill(3)
	p := Pad2D(x, 1)
	if p.Dim(1) != 4 || p.Dim(2) != 4 {
		t.Fatalf("pad shape = %v", p.Shape())
	}
	if p.At(0, 0, 0, 0) != 0 || p.At(0, 1, 1, 0) != 3 || p.At(0, 3, 3, 0) != 0 {
		t.Error("padding content wrong")
	}
	// Property: padded sum equals original sum.
	if Sum(p) != Sum(x) {
		t.Errorf("pad changed sum: %v vs %v", Sum(p), Sum(x))
	}
}

func TestSumDot(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3}, 3)
	b := FromSlice([]float32{4, 5, 6}, 3)
	if Sum(a) != 6 {
		t.Errorf("Sum = %v", Sum(a))
	}
	if Dot(a, b) != 32 {
		t.Errorf("Dot = %v", Dot(a, b))
	}
}

// Property: Fill then MaxAbs returns |v|.
func TestFillMaxAbsProperty(t *testing.T) {
	f := func(v float32) bool {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			return true
		}
		x := New(3, 3)
		x.Fill(v)
		return x.MaxAbs() == float32(math.Abs(float64(v)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestStringForms(t *testing.T) {
	small := New(2, 2)
	if s := small.String(); s == "" {
		t.Error("empty String for small tensor")
	}
	big := New(10, 10)
	if s := big.String(); s == "" {
		t.Error("empty String for big tensor")
	}
}

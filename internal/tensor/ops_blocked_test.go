package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// bitsEqual compares two tensors bit-for-bit, signed zeros included — the
// contract the blocked MatMul must meet against the frozen reference loop.
// NaNs compare equal regardless of payload: which payload an x86 ADDSS
// propagates depends on register allocation (it differs between -race and
// plain builds of the very same loop), so payloads are codegen-defined and
// explicitly outside the contract.
func bitsEqual(a, b *Tensor) bool {
	if !a.SameShape(b) {
		return false
	}
	for i := range a.data {
		x, y := a.data[i], b.data[i]
		if math.IsNaN(float64(x)) && math.IsNaN(float64(y)) {
			continue
		}
		if math.Float32bits(x) != math.Float32bits(y) {
			return false
		}
	}
	return true
}

// TestMatMulBlockedMatchesReference sweeps shapes that land on every panel
// geometry — smaller than a panel, exact multiples, ragged remainders in k
// and n, degenerate single rows/columns — and requires the blocked loop to
// be bit-identical to matMulRef on dense random operands.
func TestMatMulBlockedMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	shapes := [][3]int{
		{1, 1, 1},
		{3, 5, 7},
		{8, matMulBlockK, matMulBlockN},
		{4, matMulBlockK + 1, matMulBlockN + 1},
		{5, matMulBlockK - 1, 2*matMulBlockN + 3},
		{2, 3 * matMulBlockK, 17},
		{1, 300, 1},
		{17, 1, 300},
	}
	for _, s := range shapes {
		m, k, n := s[0], s[1], s[2]
		a := New(m, k)
		a.RandNormal(rng, 1)
		b := New(k, n)
		b.RandNormal(rng, 1)
		if got, want := MatMul(a, b), matMulRef(a, b); !bitsEqual(got, want) {
			t.Errorf("MatMul(%dx%d, %dx%d) differs from reference", m, k, n, n)
		}
	}
}

// TestMatMulBlockedSpecialValues covers the fault-injection regime: operands
// holding NaN, ±Inf, signed zeros and exact zeros (the skip-zero path). The
// blocked loop must reproduce the reference bit-for-bit even where float
// arithmetic is non-associative or poisoning.
func TestMatMulBlockedSpecialValues(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	specials := []float32{
		0, float32(math.Copysign(0, -1)), 1, -1,
		float32(math.Inf(1)), float32(math.Inf(-1)), float32(math.NaN()),
		math.Float32frombits(0x7fc00001), // NaN with a payload
	}
	for trial := 0; trial < 20; trial++ {
		m, k, n := 1+rng.Intn(6), 1+rng.Intn(2*matMulBlockK), 1+rng.Intn(2*matMulBlockN)
		a := New(m, k)
		b := New(k, n)
		for i := range a.data {
			if rng.Intn(4) == 0 {
				a.data[i] = specials[rng.Intn(len(specials))]
			} else {
				a.data[i] = float32(rng.NormFloat64())
			}
		}
		for i := range b.data {
			if rng.Intn(4) == 0 {
				b.data[i] = specials[rng.Intn(len(specials))]
			} else {
				b.data[i] = float32(rng.NormFloat64())
			}
		}
		if got, want := MatMul(a, b), matMulRef(a, b); !bitsEqual(got, want) {
			t.Errorf("trial %d (%dx%dx%d): blocked MatMul differs from reference on special values", trial, m, k, n)
		}
	}
}

package telemetry

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// TestSnapshotSource: a collector's snapshots carry its attribution label,
// and the JSONL form exposes it as "source" (omitted when unset).
func TestSnapshotSource(t *testing.T) {
	c := New()
	c.RecordExperiment("psum", OutcomeMasked)
	if got := c.Snapshot().Source; got != "" {
		t.Errorf("unattributed collector snapshot has source %q", got)
	}
	blob, err := json.Marshal(c.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(blob), `"source"`) {
		t.Errorf("unattributed snapshot serializes a source field: %s", blob)
	}

	c.SetSource("worker-7")
	snap := c.Snapshot()
	if snap.Source != "worker-7" {
		t.Errorf("snapshot source = %q, want worker-7", snap.Source)
	}
	blob, err = json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), `"source":"worker-7"`) {
		t.Errorf("snapshot JSON missing source attribution: %s", blob)
	}
}

// TestMerge: worker snapshots merge into one attributable coordinator view —
// counters sum, the clock is the concurrent maximum, rates recompute, and
// the constituent sources are recorded sorted.
func TestMerge(t *testing.T) {
	a := Snapshot{
		Source: "worker-b", ElapsedSec: 10, Experiments: 100,
		Models: map[string]OutcomeCounts{
			"psum": {Masked: 60, OutputError: 40},
		},
		Phases:   []PhaseSnapshot{{Name: "inject", Seconds: 9}},
		Recovery: &RecoverySnapshot{Quarantined: 2, PanicsRecovered: 2, Shards: []ShardBudgetState{{Shard: 3, Failures: 1, Budget: 16}}},
		Replay:   &ReplaySnapshot{LayersSkipped: 30, LayersRecomputed: 10, CacheHitRatio: 0.75},
	}
	b := Snapshot{
		Source: "worker-a", ElapsedSec: 4, Experiments: 50,
		Models: map[string]OutcomeCounts{
			"psum":  {Masked: 20, OutputError: 30},
			"input": {Masked: 5},
		},
		Phases:   []PhaseSnapshot{{Name: "inject", Seconds: 3, Running: true}},
		Recovery: &RecoverySnapshot{Quarantined: 1, Timeouts: 1, Shards: []ShardBudgetState{{Shard: 3, Failures: 2, Budget: 16}}},
		Replay:   &ReplaySnapshot{LayersSkipped: 10, LayersRecomputed: 10, CacheHitRatio: 0.5},
	}

	m := Merge("coordinator", a, b)
	if m.Source != "coordinator" {
		t.Errorf("merged source = %q", m.Source)
	}
	if want := []string{"worker-a", "worker-b"}; !reflect.DeepEqual(m.Sources, want) {
		t.Errorf("merged sources = %v, want %v", m.Sources, want)
	}
	if m.Experiments != 150 {
		t.Errorf("merged experiments = %d, want 150", m.Experiments)
	}
	if m.ElapsedSec != 10 {
		t.Errorf("merged elapsed = %v, want the concurrent max 10", m.ElapsedSec)
	}
	if m.PerSec != 15 {
		t.Errorf("merged rate = %v, want 150/10", m.PerSec)
	}
	if got := m.Models["psum"]; got.Masked != 80 || got.OutputError != 70 {
		t.Errorf("merged psum outcomes = %+v", got)
	}
	if got := m.Models["input"]; got.Masked != 5 {
		t.Errorf("merged input outcomes = %+v", got)
	}
	if len(m.Phases) != 1 || m.Phases[0].Seconds != 12 || !m.Phases[0].Running {
		t.Errorf("merged phases = %+v", m.Phases)
	}
	if m.Recovery == nil || m.Recovery.Quarantined != 3 || m.Recovery.PanicsRecovered != 2 || m.Recovery.Timeouts != 1 {
		t.Errorf("merged recovery = %+v", m.Recovery)
	}
	// Shard 3 appeared in both workers (a re-leased shard): the merged view
	// keeps the entry with the most failures charged, not the sum.
	if got := m.Recovery.Shards; len(got) != 1 || got[0].Shard != 3 || got[0].Failures != 2 {
		t.Errorf("merged shard budgets = %+v", got)
	}
	if m.Replay == nil || m.Replay.LayersSkipped != 40 || m.Replay.CacheHitRatio != 0.4/0.6 {
		t.Errorf("merged replay = %+v", m.Replay)
	}

	// Merging nothing still yields a labelled, zero-valued snapshot.
	empty := Merge("coordinator")
	if empty.Source != "coordinator" || empty.Experiments != 0 || empty.Recovery != nil || empty.Replay != nil {
		t.Errorf("empty merge = %+v", empty)
	}
}

// TestMergeHarden: harden telemetry merges by summing clamp activity and
// taking the maximum duplicated-site count — duplication is config state every
// worker reports identically, not a running tally.
func TestMergeHarden(t *testing.T) {
	a := Snapshot{
		Source: "w1",
		Harden: &HardenSnapshot{ClampApplications: 100, SaturatedValues: 7, DuplicatedSites: 3},
	}
	b := Snapshot{
		Source: "w2",
		Harden: &HardenSnapshot{ClampApplications: 40, SaturatedValues: 2, DuplicatedSites: 3},
	}

	m := Merge("coordinator", a, b)
	if m.Harden == nil {
		t.Fatal("merged snapshot dropped the harden block")
	}
	if m.Harden.ClampApplications != 140 || m.Harden.SaturatedValues != 9 {
		t.Errorf("merged clamp counters = %+v, want sums 140/9", m.Harden)
	}
	if m.Harden.DuplicatedSites != 3 {
		t.Errorf("merged duplicated sites = %d, want max 3, not a sum", m.Harden.DuplicatedSites)
	}

	// Unhardened snapshots merge to no harden block — the field is evidence
	// of hardening, not a default.
	if plain := Merge("all", Snapshot{Source: "x"}, Snapshot{Source: "y"}); plain.Harden != nil {
		t.Errorf("harden block materialized from nothing: %+v", plain.Harden)
	}
}

// TestMergeAudit: audit telemetry from multiple sources merges by summing the
// counters and concatenating the failure records sorted by shard, and
// corrupt-artifact counts sum alongside the rest of recovery.
func TestMergeAudit(t *testing.T) {
	a := Snapshot{
		Source: "coord-1",
		Audit: &AuditSnapshot{
			Sampled: 4, Pending: 1, Passed: 2, Failed: 1,
			Failures: []AuditFailure{{Shard: 5, Worker: "w2", AuditWorker: "w1", Sum: "aa", AuditSum: "bb"}},
		},
		Recovery: &RecoverySnapshot{CorruptArtifacts: 2},
	}
	b := Snapshot{
		Source: "coord-2",
		Audit: &AuditSnapshot{
			Sampled: 3, Passed: 2, Failed: 1,
			Failures: []AuditFailure{{Shard: 1, Worker: "w9", AuditWorker: "w3", Sum: "cc", AuditSum: "dd"}},
		},
		Recovery: &RecoverySnapshot{CorruptArtifacts: 1},
	}

	m := Merge("all", a, b)
	if m.Audit == nil {
		t.Fatal("merged snapshot dropped the audit block")
	}
	if m.Audit.Sampled != 7 || m.Audit.Pending != 1 || m.Audit.Passed != 4 || m.Audit.Failed != 2 {
		t.Errorf("merged audit counters = %+v", m.Audit)
	}
	if len(m.Audit.Failures) != 2 || m.Audit.Failures[0].Shard != 1 || m.Audit.Failures[1].Shard != 5 {
		t.Errorf("merged audit failures = %+v, want both records sorted by shard", m.Audit.Failures)
	}
	if m.Recovery == nil || m.Recovery.CorruptArtifacts != 3 {
		t.Errorf("merged corrupt artifacts = %+v, want 3", m.Recovery)
	}

	// Snapshots without audit blocks merge to no audit block — the field is
	// evidence of auditing, not a default.
	if plain := Merge("all", Snapshot{Source: "x"}, Snapshot{Source: "y"}); plain.Audit != nil {
		t.Errorf("audit block materialized from nothing: %+v", plain.Audit)
	}
}

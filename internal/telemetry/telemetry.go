// Package telemetry instruments long-running injection campaigns: lock-free
// experiment and per-fault-model outcome counters, per-phase wall-clock
// timings, and point-in-time snapshots. Campaign workers call
// RecordExperiment from many goroutines; observers (progress emitters, run
// manifests) call Snapshot concurrently without stopping the campaign.
package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Outcome labels matching inject.Outcome.String(); telemetry stays decoupled
// from the inject package by counting on the string form.
const (
	OutcomeMasked        = "masked"
	OutcomeOutputError   = "output-error"
	OutcomeSystemAnomaly = "system-anomaly"
)

// Collector aggregates campaign progress. The zero value is not usable; call
// New. All methods are safe for concurrent use.
type Collector struct {
	start       time.Time
	experiments atomic.Int64
	models      sync.Map // model name -> *Outcomes

	mu     sync.Mutex
	phases []*phaseTiming // in first-start order
	byName map[string]*phaseTiming
}

// Outcomes tallies experiment classifications for one fault model.
type Outcomes struct {
	Masked, OutputError, SystemAnomaly, Other atomic.Int64
}

type phaseTiming struct {
	name    string
	total   time.Duration
	started time.Time
	running int
}

// New returns a collector whose elapsed clock starts now.
func New() *Collector {
	return &Collector{start: time.Now(), byName: map[string]*phaseTiming{}}
}

// RecordExperiment counts one finished experiment for a fault model with the
// given outcome label. The hot path is atomic-only after the first call per
// model.
func (c *Collector) RecordExperiment(model, outcome string) {
	c.experiments.Add(1)
	v, ok := c.models.Load(model)
	if !ok {
		v, _ = c.models.LoadOrStore(model, &Outcomes{})
	}
	t := v.(*Outcomes)
	switch outcome {
	case OutcomeMasked:
		t.Masked.Add(1)
	case OutcomeOutputError:
		t.OutputError.Add(1)
	case OutcomeSystemAnomaly:
		t.SystemAnomaly.Add(1)
	default:
		t.Other.Add(1)
	}
}

// Experiments returns the total experiments recorded so far.
func (c *Collector) Experiments() int64 { return c.experiments.Load() }

// StartPhase begins (or re-enters) timing a named phase. Phases may be
// entered repeatedly — e.g. one "inject" phase accumulated across the cells
// of a multi-workload figure — and concurrently; the wall clock runs while
// at least one entry is open.
func (c *Collector) StartPhase(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p := c.byName[name]
	if p == nil {
		p = &phaseTiming{name: name}
		c.byName[name] = p
		c.phases = append(c.phases, p)
	}
	if p.running == 0 {
		p.started = time.Now()
	}
	p.running++
}

// EndPhase closes one StartPhase entry, accumulating wall-clock time when
// the last concurrent entry closes. Unbalanced calls are ignored.
func (c *Collector) EndPhase(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p := c.byName[name]
	if p == nil || p.running == 0 {
		return
	}
	p.running--
	if p.running == 0 {
		p.total += time.Since(p.started)
	}
}

// OutcomeCounts is the immutable snapshot form of Outcomes.
type OutcomeCounts struct {
	Masked        int64 `json:"masked"`
	OutputError   int64 `json:"output_error"`
	SystemAnomaly int64 `json:"system_anomaly"`
	Other         int64 `json:"other,omitempty"`
}

// Total sums all outcome classes.
func (o OutcomeCounts) Total() int64 {
	return o.Masked + o.OutputError + o.SystemAnomaly + o.Other
}

// PhaseSnapshot reports one phase's accumulated wall-clock time.
type PhaseSnapshot struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
	Running bool    `json:"running,omitempty"`
}

// Snapshot is a point-in-time view of the collector, serializable as one
// JSONL progress line or embedded in a run manifest.
type Snapshot struct {
	ElapsedSec  float64                  `json:"elapsed_sec"`
	Experiments int64                    `json:"experiments"`
	PerSec      float64                  `json:"experiments_per_sec"`
	Models      map[string]OutcomeCounts `json:"models,omitempty"`
	Phases      []PhaseSnapshot          `json:"phases,omitempty"`
}

// Snapshot captures the current counters. Model keys are sorted into a map
// (deterministic when serialized by encoding/json), phases keep first-start
// order.
func (c *Collector) Snapshot() Snapshot {
	s := Snapshot{
		ElapsedSec:  time.Since(c.start).Seconds(),
		Experiments: c.experiments.Load(),
	}
	if s.ElapsedSec > 0 {
		s.PerSec = float64(s.Experiments) / s.ElapsedSec
	}
	models := map[string]OutcomeCounts{}
	c.models.Range(func(k, v any) bool {
		t := v.(*Outcomes)
		models[k.(string)] = OutcomeCounts{
			Masked:        t.Masked.Load(),
			OutputError:   t.OutputError.Load(),
			SystemAnomaly: t.SystemAnomaly.Load(),
			Other:         t.Other.Load(),
		}
		return true
	})
	if len(models) > 0 {
		s.Models = models
	}
	c.mu.Lock()
	for _, p := range c.phases {
		total := p.total
		if p.running > 0 {
			total += time.Since(p.started)
		}
		s.Phases = append(s.Phases, PhaseSnapshot{
			Name: p.name, Seconds: total.Seconds(), Running: p.running > 0,
		})
	}
	c.mu.Unlock()
	return s
}

// RateSince returns the experiments/sec over the window between prev and s,
// for interval (rather than cumulative) progress rates. Returns 0 when the
// window is empty or inverted.
func (s Snapshot) RateSince(prev Snapshot) float64 {
	dt := s.ElapsedSec - prev.ElapsedSec
	if dt <= 0 {
		return 0
	}
	return float64(s.Experiments-prev.Experiments) / dt
}

// ModelNames returns the snapshot's fault-model keys in sorted order, for
// deterministic textual reports.
func (s Snapshot) ModelNames() []string {
	names := make([]string, 0, len(s.Models))
	for n := range s.Models {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

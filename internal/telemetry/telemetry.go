// Package telemetry instruments long-running injection campaigns: lock-free
// experiment and per-fault-model outcome counters, per-phase wall-clock
// timings, and point-in-time snapshots. Campaign workers call
// RecordExperiment from many goroutines; observers (progress emitters, run
// manifests) call Snapshot concurrently without stopping the campaign.
package telemetry

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Outcome labels matching inject.Outcome.String(); telemetry stays decoupled
// from the inject package by counting on the string form.
const (
	OutcomeMasked         = "masked"
	OutcomeOutputError    = "output-error"
	OutcomeSystemAnomaly  = "system-anomaly"
	OutcomeFrameworkFault = "framework-fault"
)

// Quarantine reason labels matching the campaign supervisor's.
const (
	ReasonPanic   = "panic"
	ReasonTimeout = "timeout"
)

// Collector aggregates campaign progress. The zero value is not usable; call
// New. All methods are safe for concurrent use.
type Collector struct {
	start       time.Time
	source      atomic.Value // string: snapshot attribution label
	experiments atomic.Int64
	models      sync.Map // model name -> *Outcomes

	mu     sync.Mutex
	phases []*phaseTiming // in first-start order
	byName map[string]*phaseTiming

	// Recovery counters: the supervision layer's record of framework-level
	// failures it survived during the campaign.
	panics, timeouts, ioRetries, quarantined atomic.Int64
	corruptArtifacts                         atomic.Int64
	shardBudgets                             sync.Map // shard index (int) -> *shardBudget

	// Replay counters: the incremental replay engine's cumulative savings.
	replaySkipped, replayRecomputed, replayRegion, replayArena atomic.Int64
	replayMACs                                                 atomic.Uint64 // Float64bits-encoded sum

	// Batch counters: site-grouped experiment batching in the campaign shard
	// loop (batches executed, distinct target-site groups, experiments run
	// through batches).
	batches, batchGroups, batchExps atomic.Int64

	// kernelTiles counts compute-kernel tiles executed by the tiled
	// Conv2D/Dense/MatMul kernels during the campaign's inject phase.
	kernelTiles atomic.Int64

	// Harden counters: range-restriction clamp activity on a hardened
	// network (clamp.go), plus the installed duplicated-site count.
	clampApplications, clampSaturated atomic.Int64
	duplicatedSites                   atomic.Int64

	// strata is the adaptive campaign's latest per-stratum view, replaced
	// wholesale at each shard-barrier round by the planner (SetStrata). Nil
	// for fixed-count campaigns.
	strataMu sync.Mutex
	strata   *StrataSnapshot
}

// Outcomes tallies experiment classifications for one fault model.
type Outcomes struct {
	Masked, OutputError, SystemAnomaly, FrameworkFault, Other atomic.Int64
}

// shardBudget is one shard's live failure-budget state.
type shardBudget struct {
	failures  atomic.Int64
	budget    atomic.Int64
	exhausted atomic.Bool
}

type phaseTiming struct {
	name    string
	total   time.Duration
	started time.Time
	running int
}

// New returns a collector whose elapsed clock starts now.
func New() *Collector {
	return &Collector{start: time.Now(), byName: map[string]*phaseTiming{}}
}

// SetSource labels every snapshot this collector emits with an attribution
// source — "local" for an in-process campaign, a worker ID for a distributed
// worker's stream — so merged coordinator progress streams can tell whose
// counters each line carries.
func (c *Collector) SetSource(source string) { c.source.Store(source) }

// RecordExperiment counts one finished experiment for a fault model with the
// given outcome label. The hot path is atomic-only after the first call per
// model.
func (c *Collector) RecordExperiment(model, outcome string) {
	c.experiments.Add(1)
	v, ok := c.models.Load(model)
	if !ok {
		v, _ = c.models.LoadOrStore(model, &Outcomes{})
	}
	t := v.(*Outcomes)
	switch outcome {
	case OutcomeMasked:
		t.Masked.Add(1)
	case OutcomeOutputError:
		t.OutputError.Add(1)
	case OutcomeSystemAnomaly:
		t.SystemAnomaly.Add(1)
	case OutcomeFrameworkFault:
		t.FrameworkFault.Add(1)
	default:
		t.Other.Add(1)
	}
}

// Experiments returns the total experiments recorded so far.
func (c *Collector) Experiments() int64 { return c.experiments.Load() }

// RecordQuarantine counts one experiment the campaign supervisor removed
// from the study after a framework-level failure. reason is ReasonPanic or
// ReasonTimeout.
func (c *Collector) RecordQuarantine(shard int, reason string) {
	c.quarantined.Add(1)
	switch reason {
	case ReasonPanic:
		c.panics.Add(1)
	case ReasonTimeout:
		c.timeouts.Add(1)
	}
}

// RecordIORetry counts one retried transient I/O failure (checkpoint or
// manifest write).
func (c *Collector) RecordIORetry() { c.ioRetries.Add(1) }

// RecordCorruptArtifact counts one persisted artifact (checkpoint,
// coordinator state) whose content checksum failed verification at load and
// was quarantined instead of trusted. The campaign recovers by re-deriving
// the state (shard determinism makes re-execution safe), so this is a
// survived failure, not a crash — but operators should know their storage
// is eating bits.
func (c *Collector) RecordCorruptArtifact() { c.corruptArtifacts.Add(1) }

// RecordReplay accumulates one experiment's incremental-replay savings:
// layer executions skipped vs. recomputed (and the region-swept subset of the
// recomputes), arena buffer reuses, and the estimated MAC work avoided. Not
// called when replay is disabled, so full-forward snapshots carry no Replay
// block.
func (c *Collector) RecordReplay(skipped, recomputed, regionSwept int, arenaReuses int64, macsAvoided float64) {
	c.replaySkipped.Add(int64(skipped))
	c.replayRecomputed.Add(int64(recomputed))
	c.replayRegion.Add(int64(regionSwept))
	c.replayArena.Add(arenaReuses)
	for {
		old := c.replayMACs.Load()
		next := math.Float64bits(math.Float64frombits(old) + macsAvoided)
		if c.replayMACs.CompareAndSwap(old, next) {
			return
		}
	}
}

// RecordBatch counts one executed experiment batch: groups is the number of
// distinct target-site groups the batch collapsed into, experiments the
// number of experiments it ran.
func (c *Collector) RecordBatch(groups, experiments int) {
	c.batches.Add(1)
	c.batchGroups.Add(int64(groups))
	c.batchExps.Add(int64(experiments))
}

// AddKernelTiles accumulates compute-kernel tile executions (from the tiled
// Conv2D/Dense/MatMul kernels) attributed to this collector's campaign.
func (c *Collector) AddKernelTiles(n int64) { c.kernelTiles.Add(n) }

// RecordHarden accumulates one experiment's range-restriction clamp
// activity: site executions bounds-checked and values saturated back into
// the profiled envelope. Not called for unhardened networks, so their
// snapshots carry no Harden block.
func (c *Collector) RecordHarden(applications, saturated int64) {
	c.clampApplications.Add(applications)
	c.clampSaturated.Add(saturated)
}

// SetDuplicatedSites publishes the number of sites marked for selective
// duplication in the hardening config under study. It is configuration
// state, not a running tally, so merges keep the maximum rather than sum.
func (c *Collector) SetDuplicatedSites(n int) { c.duplicatedSites.Store(int64(n)) }

// SetShardBudget publishes one shard's failure-budget state: quarantines
// charged so far, the budget limit (negative = unlimited), and whether the
// shard stopped after exhausting it.
func (c *Collector) SetShardBudget(shard, failures, budget int, exhausted bool) {
	v, ok := c.shardBudgets.Load(shard)
	if !ok {
		v, _ = c.shardBudgets.LoadOrStore(shard, &shardBudget{})
	}
	b := v.(*shardBudget)
	b.failures.Store(int64(failures))
	b.budget.Store(int64(budget))
	b.exhausted.Store(exhausted)
}

// StartPhase begins (or re-enters) timing a named phase. Phases may be
// entered repeatedly — e.g. one "inject" phase accumulated across the cells
// of a multi-workload figure — and concurrently; the wall clock runs while
// at least one entry is open.
func (c *Collector) StartPhase(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p := c.byName[name]
	if p == nil {
		p = &phaseTiming{name: name}
		c.byName[name] = p
		c.phases = append(c.phases, p)
	}
	if p.running == 0 {
		p.started = time.Now()
	}
	p.running++
}

// EndPhase closes one StartPhase entry, accumulating wall-clock time when
// the last concurrent entry closes. Unbalanced calls are ignored.
func (c *Collector) EndPhase(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p := c.byName[name]
	if p == nil || p.running == 0 {
		return
	}
	p.running--
	if p.running == 0 {
		p.total += time.Since(p.started)
	}
}

// OutcomeCounts is the immutable snapshot form of Outcomes.
type OutcomeCounts struct {
	Masked         int64 `json:"masked"`
	OutputError    int64 `json:"output_error"`
	SystemAnomaly  int64 `json:"system_anomaly"`
	FrameworkFault int64 `json:"framework_fault,omitempty"`
	Other          int64 `json:"other,omitempty"`
}

// Total sums all outcome classes.
func (o OutcomeCounts) Total() int64 {
	return o.Masked + o.OutputError + o.SystemAnomaly + o.FrameworkFault + o.Other
}

// ShardBudgetState is one shard's failure-budget snapshot.
type ShardBudgetState struct {
	Shard     int   `json:"shard"`
	Failures  int64 `json:"failures"`
	Budget    int64 `json:"budget"` // negative = unlimited
	Exhausted bool  `json:"exhausted,omitempty"`
}

// RecoverySnapshot reports the supervision layer's recovery counters:
// framework failures survived (and quarantined) rather than crashed on.
type RecoverySnapshot struct {
	Quarantined     int64 `json:"quarantined"`
	PanicsRecovered int64 `json:"panics_recovered"`
	Timeouts        int64 `json:"timeouts"`
	IORetries       int64 `json:"io_retries"`
	// CorruptArtifacts counts persisted artifacts that failed their content
	// checksum at load and were quarantined (state re-derived from scratch).
	CorruptArtifacts int64              `json:"corrupt_artifacts,omitempty"`
	Shards           []ShardBudgetState `json:"shards,omitempty"` // shards with failures, ascending
}

// AuditFailure records one completed shard whose audit re-execution by a
// second worker produced a byte-different checkpoint. Shard determinism
// makes the two executions identical by construction, so a mismatch is
// proof that a worker or the transport corrupted the result — which of the
// two copies is poisoned cannot be decided, so the campaign is flagged
// Partial instead of trusting either.
type AuditFailure struct {
	Shard int `json:"shard"`
	// Worker produced the accepted (primary) checkpoint; AuditWorker the
	// re-execution.
	Worker      string `json:"worker,omitempty"`
	AuditWorker string `json:"audit_worker,omitempty"`
	// Sum and AuditSum are the mismatching content digests.
	Sum      string `json:"sum,omitempty"`
	AuditSum string `json:"audit_sum,omitempty"`
}

// AuditSnapshot reports the coordinator's result-audit pass: how many
// completed shards were deterministically sampled for re-execution by a
// second worker, and how the byte-comparisons came out.
type AuditSnapshot struct {
	// Sampled counts shards selected for audit (a pure function of the
	// campaign seed, the shard index, and the audit fraction).
	Sampled int64 `json:"sampled"`
	// Pending counts sampled shards whose audit has not finished yet.
	Pending int64 `json:"pending,omitempty"`
	// Passed counts audits whose re-executed checkpoint was byte-identical
	// to the accepted one.
	Passed int64 `json:"passed"`
	// Failed counts mismatches; Failures carries their details, ascending
	// by shard.
	Failed   int64          `json:"failed,omitempty"`
	Failures []AuditFailure `json:"failures,omitempty"`
}

// ReplaySnapshot reports the incremental replay engine's cumulative savings
// across all experiments so far.
type ReplaySnapshot struct {
	LayersSkipped    int64 `json:"layers_skipped"`
	LayersRecomputed int64 `json:"layers_recomputed"`
	// RegionSwept is the subset of recomputes served by the dirty-region
	// sweep (only the fault's output box was recomputed).
	RegionSwept int64 `json:"region_swept,omitempty"`
	// CacheHitRatio is skipped / (skipped + recomputed).
	CacheHitRatio  float64 `json:"cache_hit_ratio"`
	ArenaReuses    int64   `json:"arena_reuses"`
	MACsAvoidedEst float64 `json:"macs_avoided_est"`
}

// BatchSnapshot reports the campaign shard loop's site-grouped experiment
// batching: how many batch windows ran, how many distinct target-site groups
// they collapsed into, and the experiments routed through them.
type BatchSnapshot struct {
	Batches     int64 `json:"batches"`
	SiteGroups  int64 `json:"site_groups"`
	Experiments int64 `json:"experiments"`
	// AvgGroupSize is experiments / site groups — how many same-site
	// experiments each golden prefix and arena working set was amortized
	// over.
	AvgGroupSize float64 `json:"avg_group_size,omitempty"`
}

// KernelSnapshot reports compute-kernel execution counters.
type KernelSnapshot struct {
	// Tiles counts tiled Conv2D/Dense/MatMul kernel tiles executed.
	Tiles int64 `json:"tiles"`
}

// HardenSnapshot reports a hardened campaign's range-restriction and
// duplication state: cumulative clamp activity plus the configured
// duplicated-site count.
type HardenSnapshot struct {
	// ClampApplications counts site executions whose output was
	// bounds-checked.
	ClampApplications int64 `json:"clamp_applications"`
	// SaturatedValues counts individual values forced back into the
	// profiled envelope (zero on clean data).
	SaturatedValues int64 `json:"saturated_values"`
	// DuplicatedSites is the number of sites marked for selective
	// duplication in the hardening config (configuration state: merged by
	// max, not summed).
	DuplicatedSites int64 `json:"duplicated_sites,omitempty"`
}

// StratumState is one adaptive-sampling stratum's view at a round barrier:
// its merged tally across all shards, the resulting Wilson interval, and
// whether the planner has stopped allocating to it.
type StratumState struct {
	// Model is the fault model's short name; Exec is the execution (layer)
	// index, or -1 for a stratum not split per layer.
	Model     string  `json:"model"`
	Exec      int     `json:"exec"`
	N         int     `json:"n"`
	Mean      float64 `json:"mean"`
	HalfWidth float64 `json:"half_width"`
	Stopped   bool    `json:"stopped,omitempty"`
}

// StrataSnapshot reports an adaptive campaign's per-stratum progress as of
// the most recent shard-barrier round: how many rounds have been planned,
// the target half-width, and every stratum's state in canonical (model-major,
// execution-minor) order.
type StrataSnapshot struct {
	Rounds   int            `json:"rounds"`
	TargetCI float64        `json:"target_ci"`
	Strata   []StratumState `json:"strata"`
}

// SetStrata publishes the adaptive planner's per-stratum state computed at a
// shard-barrier round, replacing any previous snapshot.
func (c *Collector) SetStrata(s StrataSnapshot) {
	c.strataMu.Lock()
	c.strata = &s
	c.strataMu.Unlock()
}

// PhaseSnapshot reports one phase's accumulated wall-clock time.
type PhaseSnapshot struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
	Running bool    `json:"running,omitempty"`
}

// Snapshot is a point-in-time view of the collector, serializable as one
// JSONL progress line or embedded in a run manifest.
type Snapshot struct {
	// Source attributes the snapshot: "local" for an in-process campaign,
	// a worker ID for a distributed worker, a coordinator label for merged
	// streams. Empty for unattributed (pre-distribution) collectors.
	Source string `json:"source,omitempty"`
	// Sources lists the constituent snapshot sources of a merged snapshot
	// (see Merge), sorted; nil for first-hand snapshots.
	Sources     []string                 `json:"sources,omitempty"`
	ElapsedSec  float64                  `json:"elapsed_sec"`
	Experiments int64                    `json:"experiments"`
	PerSec      float64                  `json:"experiments_per_sec"`
	Models      map[string]OutcomeCounts `json:"models,omitempty"`
	Phases      []PhaseSnapshot          `json:"phases,omitempty"`
	// Recovery is present only when the campaign survived at least one
	// framework failure or retried an I/O operation, so clean-run snapshots
	// are unchanged.
	Recovery *RecoverySnapshot `json:"recovery,omitempty"`
	// Audit is present only on coordinator snapshots of campaigns running a
	// result-audit pass (CoordinatorOptions.AuditFraction > 0).
	Audit *AuditSnapshot `json:"audit,omitempty"`
	// Replay is present only when the incremental replay engine ran (it is
	// omitted entirely when replay is disabled).
	Replay *ReplaySnapshot `json:"replay,omitempty"`
	// Batch is present only when the campaign ran site-grouped experiment
	// batches (omitted for unbatched runs).
	Batch *BatchSnapshot `json:"batch,omitempty"`
	// Kernels is present only when kernel tile counts were attributed to
	// this collector.
	Kernels *KernelSnapshot `json:"kernels,omitempty"`
	// Harden is present only on hardened campaigns (clamps installed or
	// sites duplicated); unhardened snapshots are unchanged.
	Harden *HardenSnapshot `json:"harden,omitempty"`
	// Strata is present only on adaptive campaigns (StudyOptions.TargetCI >
	// 0): the per-stratum state as of the most recent planning round.
	Strata *StrataSnapshot `json:"strata,omitempty"`
}

// Snapshot captures the current counters. Model keys are sorted into a map
// (deterministic when serialized by encoding/json), phases keep first-start
// order.
func (c *Collector) Snapshot() Snapshot {
	s := Snapshot{
		ElapsedSec:  time.Since(c.start).Seconds(),
		Experiments: c.experiments.Load(),
	}
	if src, ok := c.source.Load().(string); ok {
		s.Source = src
	}
	if s.ElapsedSec > 0 {
		s.PerSec = float64(s.Experiments) / s.ElapsedSec
	}
	models := map[string]OutcomeCounts{}
	c.models.Range(func(k, v any) bool {
		t := v.(*Outcomes)
		models[k.(string)] = OutcomeCounts{
			Masked:         t.Masked.Load(),
			OutputError:    t.OutputError.Load(),
			SystemAnomaly:  t.SystemAnomaly.Load(),
			FrameworkFault: t.FrameworkFault.Load(),
			Other:          t.Other.Load(),
		}
		return true
	})
	if len(models) > 0 {
		s.Models = models
	}
	rec := RecoverySnapshot{
		Quarantined:      c.quarantined.Load(),
		PanicsRecovered:  c.panics.Load(),
		Timeouts:         c.timeouts.Load(),
		IORetries:        c.ioRetries.Load(),
		CorruptArtifacts: c.corruptArtifacts.Load(),
	}
	c.shardBudgets.Range(func(k, v any) bool {
		b := v.(*shardBudget)
		rec.Shards = append(rec.Shards, ShardBudgetState{
			Shard:     k.(int),
			Failures:  b.failures.Load(),
			Budget:    b.budget.Load(),
			Exhausted: b.exhausted.Load(),
		})
		return true
	})
	sort.Slice(rec.Shards, func(i, j int) bool { return rec.Shards[i].Shard < rec.Shards[j].Shard })
	if rec.Quarantined > 0 || rec.IORetries > 0 || rec.CorruptArtifacts > 0 || len(rec.Shards) > 0 {
		s.Recovery = &rec
	}
	skipped, recomputed := c.replaySkipped.Load(), c.replayRecomputed.Load()
	if skipped+recomputed > 0 {
		rep := &ReplaySnapshot{
			LayersSkipped:    skipped,
			LayersRecomputed: recomputed,
			RegionSwept:      c.replayRegion.Load(),
			CacheHitRatio:    float64(skipped) / float64(skipped+recomputed),
			ArenaReuses:      c.replayArena.Load(),
			MACsAvoidedEst:   math.Float64frombits(c.replayMACs.Load()),
		}
		s.Replay = rep
	}
	if batches := c.batches.Load(); batches > 0 {
		bs := &BatchSnapshot{
			Batches:     batches,
			SiteGroups:  c.batchGroups.Load(),
			Experiments: c.batchExps.Load(),
		}
		if bs.SiteGroups > 0 {
			bs.AvgGroupSize = float64(bs.Experiments) / float64(bs.SiteGroups)
		}
		s.Batch = bs
	}
	if tiles := c.kernelTiles.Load(); tiles > 0 {
		s.Kernels = &KernelSnapshot{Tiles: tiles}
	}
	apps, sat, dup := c.clampApplications.Load(), c.clampSaturated.Load(), c.duplicatedSites.Load()
	if apps > 0 || sat > 0 || dup > 0 {
		s.Harden = &HardenSnapshot{ClampApplications: apps, SaturatedValues: sat, DuplicatedSites: dup}
	}
	c.strataMu.Lock()
	if st := c.strata; st != nil {
		cp := *st
		cp.Strata = append([]StratumState(nil), st.Strata...)
		s.Strata = &cp
	}
	c.strataMu.Unlock()
	c.mu.Lock()
	for _, p := range c.phases {
		total := p.total
		if p.running > 0 {
			total += time.Since(p.started)
		}
		s.Phases = append(s.Phases, PhaseSnapshot{
			Name: p.name, Seconds: total.Seconds(), Running: p.running > 0,
		})
	}
	c.mu.Unlock()
	return s
}

// RateSince returns the experiments/sec over the window between prev and s,
// for interval (rather than cumulative) progress rates. Returns 0 when the
// window is empty or inverted.
func (s Snapshot) RateSince(prev Snapshot) float64 {
	dt := s.ElapsedSec - prev.ElapsedSec
	if dt <= 0 {
		return 0
	}
	return float64(s.Experiments-prev.Experiments) / dt
}

// ModelNames returns the snapshot's fault-model keys in sorted order, for
// deterministic textual reports.
func (s Snapshot) ModelNames() []string {
	names := make([]string, 0, len(s.Models))
	for n := range s.Models {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

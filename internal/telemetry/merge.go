package telemetry

import "sort"

// Merge aggregates point-in-time snapshots from independent collectors —
// typically one per distributed worker — into one campaign-wide view for a
// coordinator's progress stream or run manifest. Counters (experiments,
// per-model outcomes, recovery, replay, phase seconds) are summed; the
// elapsed clock is the maximum, since the constituents ran concurrently;
// rates are recomputed from the merged totals. The merged snapshot is
// labelled source and records the constituent sources, sorted, so every
// line of a merged JSONL stream stays attributable.
//
// Merged counters measure work *executed*, not logical campaign progress: a
// shard that a worker ran partially before its lease expired and another
// worker re-ran is counted by both. Campaign results deduplicate by shard
// checkpoint; telemetry deliberately does not.
func Merge(source string, snaps ...Snapshot) Snapshot {
	m := Snapshot{Source: source}
	sources := map[string]bool{}
	models := map[string]OutcomeCounts{}
	phaseOrder := []string{}
	phases := map[string]*PhaseSnapshot{}
	var rec RecoverySnapshot
	var rep ReplaySnapshot
	var bat BatchSnapshot
	var ker KernelSnapshot
	var aud AuditSnapshot
	var har HardenSnapshot
	haveRec, haveRep, haveBat, haveKer, haveAud, haveHar := false, false, false, false, false, false
	for _, s := range snaps {
		if s.Source != "" {
			sources[s.Source] = true
		}
		for _, src := range s.Sources {
			sources[src] = true
		}
		if s.ElapsedSec > m.ElapsedSec {
			m.ElapsedSec = s.ElapsedSec
		}
		m.Experiments += s.Experiments
		for name, oc := range s.Models {
			t := models[name]
			t.Masked += oc.Masked
			t.OutputError += oc.OutputError
			t.SystemAnomaly += oc.SystemAnomaly
			t.FrameworkFault += oc.FrameworkFault
			t.Other += oc.Other
			models[name] = t
		}
		for _, p := range s.Phases {
			t := phases[p.Name]
			if t == nil {
				t = &PhaseSnapshot{Name: p.Name}
				phases[p.Name] = t
				phaseOrder = append(phaseOrder, p.Name)
			}
			t.Seconds += p.Seconds
			t.Running = t.Running || p.Running
		}
		if r := s.Recovery; r != nil {
			haveRec = true
			rec.Quarantined += r.Quarantined
			rec.PanicsRecovered += r.PanicsRecovered
			rec.Timeouts += r.Timeouts
			rec.IORetries += r.IORetries
			rec.CorruptArtifacts += r.CorruptArtifacts
			rec.Shards = append(rec.Shards, r.Shards...)
		}
		if a := s.Audit; a != nil {
			haveAud = true
			aud.Sampled += a.Sampled
			aud.Pending += a.Pending
			aud.Passed += a.Passed
			aud.Failed += a.Failed
			aud.Failures = append(aud.Failures, a.Failures...)
		}
		if r := s.Replay; r != nil {
			haveRep = true
			rep.LayersSkipped += r.LayersSkipped
			rep.LayersRecomputed += r.LayersRecomputed
			rep.RegionSwept += r.RegionSwept
			rep.ArenaReuses += r.ArenaReuses
			rep.MACsAvoidedEst += r.MACsAvoidedEst
		}
		if b := s.Batch; b != nil {
			haveBat = true
			bat.Batches += b.Batches
			bat.SiteGroups += b.SiteGroups
			bat.Experiments += b.Experiments
		}
		if k := s.Kernels; k != nil {
			haveKer = true
			ker.Tiles += k.Tiles
		}
		if h := s.Harden; h != nil {
			haveHar = true
			har.ClampApplications += h.ClampApplications
			har.SaturatedValues += h.SaturatedValues
			// DuplicatedSites is configuration state shared by every
			// constituent of one hardened campaign, not a running tally:
			// keep the maximum rather than summing.
			if h.DuplicatedSites > har.DuplicatedSites {
				har.DuplicatedSites = h.DuplicatedSites
			}
		}
		// Strata is planner state, not a counter: every constituent carrying
		// it saw the same barrier sequence, so keep the most advanced view
		// rather than summing.
		if st := s.Strata; st != nil && (m.Strata == nil || st.Rounds > m.Strata.Rounds) {
			cp := *st
			cp.Strata = append([]StratumState(nil), st.Strata...)
			m.Strata = &cp
		}
	}
	if m.ElapsedSec > 0 {
		m.PerSec = float64(m.Experiments) / m.ElapsedSec
	}
	if len(models) > 0 {
		m.Models = models
	}
	for _, name := range phaseOrder {
		m.Phases = append(m.Phases, *phases[name])
	}
	if haveRec {
		// A shard may appear under several workers (re-leased after an
		// expiry); keep the entry with the most failures charged, which is
		// the latest view of that shard's budget.
		byShard := map[int]ShardBudgetState{}
		for _, sb := range rec.Shards {
			if have, ok := byShard[sb.Shard]; !ok || sb.Failures > have.Failures {
				byShard[sb.Shard] = sb
			}
		}
		rec.Shards = rec.Shards[:0]
		for _, sb := range byShard {
			rec.Shards = append(rec.Shards, sb)
		}
		sort.Slice(rec.Shards, func(i, j int) bool { return rec.Shards[i].Shard < rec.Shards[j].Shard })
		if len(rec.Shards) == 0 {
			rec.Shards = nil
		}
		m.Recovery = &rec
	}
	if haveRep {
		if total := rep.LayersSkipped + rep.LayersRecomputed; total > 0 {
			rep.CacheHitRatio = float64(rep.LayersSkipped) / float64(total)
		}
		m.Replay = &rep
	}
	if haveBat {
		if bat.SiteGroups > 0 {
			bat.AvgGroupSize = float64(bat.Experiments) / float64(bat.SiteGroups)
		}
		m.Batch = &bat
	}
	if haveKer {
		m.Kernels = &ker
	}
	if haveHar {
		m.Harden = &har
	}
	if haveAud {
		sort.Slice(aud.Failures, func(i, j int) bool { return aud.Failures[i].Shard < aud.Failures[j].Shard })
		m.Audit = &aud
	}
	for src := range sources {
		m.Sources = append(m.Sources, src)
	}
	sort.Strings(m.Sources)
	return m
}

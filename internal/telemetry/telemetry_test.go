package telemetry

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRecordAndSnapshot(t *testing.T) {
	c := New()
	c.RecordExperiment("cbuf2mac/input", OutcomeMasked)
	c.RecordExperiment("cbuf2mac/input", OutcomeOutputError)
	c.RecordExperiment("global-control", OutcomeSystemAnomaly)
	c.RecordExperiment("global-control", "weird")
	s := c.Snapshot()
	if s.Experiments != 4 {
		t.Errorf("experiments = %d", s.Experiments)
	}
	in := s.Models["cbuf2mac/input"]
	if in.Masked != 1 || in.OutputError != 1 || in.Total() != 2 {
		t.Errorf("input tallies: %+v", in)
	}
	gc := s.Models["global-control"]
	if gc.SystemAnomaly != 1 || gc.Other != 1 {
		t.Errorf("global tallies: %+v", gc)
	}
	if s.PerSec <= 0 {
		t.Errorf("rate = %v", s.PerSec)
	}
	if got := s.ModelNames(); len(got) != 2 || got[0] != "cbuf2mac/input" {
		t.Errorf("model names: %v", got)
	}
}

func TestPhases(t *testing.T) {
	c := New()
	c.StartPhase("trace")
	time.Sleep(5 * time.Millisecond)
	c.EndPhase("trace")
	c.StartPhase("inject")
	s := c.Snapshot()
	if len(s.Phases) != 2 {
		t.Fatalf("phases: %+v", s.Phases)
	}
	if s.Phases[0].Name != "trace" || s.Phases[0].Seconds <= 0 || s.Phases[0].Running {
		t.Errorf("trace phase: %+v", s.Phases[0])
	}
	if s.Phases[1].Name != "inject" || !s.Phases[1].Running {
		t.Errorf("inject phase: %+v", s.Phases[1])
	}
	// Re-entering accumulates rather than resetting.
	c.EndPhase("inject")
	before := c.Snapshot().Phases[1].Seconds
	c.StartPhase("inject")
	time.Sleep(2 * time.Millisecond)
	c.EndPhase("inject")
	if after := c.Snapshot().Phases[1].Seconds; after <= before {
		t.Errorf("inject did not accumulate: %v -> %v", before, after)
	}
	// Unbalanced EndPhase is a no-op.
	c.EndPhase("nope")
	c.EndPhase("trace")
	c.EndPhase("trace")
}

func TestRateSince(t *testing.T) {
	prev := Snapshot{ElapsedSec: 1, Experiments: 100}
	cur := Snapshot{ElapsedSec: 3, Experiments: 300}
	if r := cur.RateSince(prev); r != 100 {
		t.Errorf("interval rate = %v", r)
	}
	if r := prev.RateSince(cur); r != 0 {
		t.Errorf("inverted window rate = %v", r)
	}
}

func TestSnapshotJSON(t *testing.T) {
	c := New()
	c.RecordExperiment("m", OutcomeMasked)
	c.StartPhase("inject")
	blob, err := json.Marshal(c.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Experiments != 1 || back.Models["m"].Masked != 1 {
		t.Errorf("round trip: %+v", back)
	}
}

// TestRecoveryCounters: the supervision layer's quarantine, retry, and
// failure-budget counters must surface in the snapshot — and only when the
// campaign actually survived something, so clean-run snapshots are unchanged.
func TestRecoveryCounters(t *testing.T) {
	c := New()
	if c.Snapshot().Recovery != nil {
		t.Fatal("clean collector carries a recovery snapshot")
	}

	c.RecordExperiment("local-control", OutcomeFrameworkFault)
	c.RecordQuarantine(3, ReasonPanic)
	c.RecordQuarantine(3, ReasonPanic)
	c.RecordQuarantine(7, ReasonTimeout)
	c.RecordIORetry()
	c.SetShardBudget(7, 1, 16, false)
	c.SetShardBudget(3, 2, 16, false)
	c.SetShardBudget(3, 3, 2, true)

	s := c.Snapshot()
	if s.Models["local-control"].FrameworkFault != 1 {
		t.Errorf("framework-fault outcome tally: %+v", s.Models["local-control"])
	}
	if got := s.Models["local-control"].Total(); got != 1 {
		t.Errorf("framework faults excluded from Total: %d", got)
	}
	rec := s.Recovery
	if rec == nil {
		t.Fatal("recovery snapshot missing after quarantines")
	}
	if rec.Quarantined != 3 || rec.PanicsRecovered != 2 || rec.Timeouts != 1 || rec.IORetries != 1 {
		t.Errorf("recovery counters: %+v", rec)
	}
	if len(rec.Shards) != 2 || rec.Shards[0].Shard != 3 || rec.Shards[1].Shard != 7 {
		t.Fatalf("shard budget states not sorted ascending: %+v", rec.Shards)
	}
	if s3 := rec.Shards[0]; s3.Failures != 3 || s3.Budget != 2 || !s3.Exhausted {
		t.Errorf("shard 3 budget state (last write wins): %+v", s3)
	}
	if s7 := rec.Shards[1]; s7.Failures != 1 || s7.Budget != 16 || s7.Exhausted {
		t.Errorf("shard 7 budget state: %+v", s7)
	}
}

// TestRecoveryJSON: the recovery block must round-trip through JSON and be
// omitted entirely from clean snapshots.
func TestRecoveryJSON(t *testing.T) {
	c := New()
	c.RecordExperiment("m", OutcomeMasked)
	blob, err := json.Marshal(c.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if bytes := string(blob); strings.Contains(bytes, "recovery") {
		t.Errorf("clean snapshot serializes a recovery block: %s", bytes)
	}

	c.RecordQuarantine(0, ReasonTimeout)
	blob, err = json.Marshal(c.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Recovery == nil || back.Recovery.Timeouts != 1 || back.Recovery.Quarantined != 1 {
		t.Errorf("recovery round trip: %+v", back.Recovery)
	}
}

// Concurrent recording from many goroutines with snapshots interleaved —
// exercised under -race in CI.
func TestConcurrentRecording(t *testing.T) {
	c := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				c.RecordExperiment("m", OutcomeMasked)
				if i%100 == 0 {
					c.StartPhase("p")
					c.RecordQuarantine(g, ReasonPanic)
					c.RecordIORetry()
					c.SetShardBudget(g, i/100+1, 16, false)
					c.Snapshot()
					c.EndPhase("p")
				}
			}
		}(g)
	}
	wg.Wait()
	if n := c.Experiments(); n != 4000 {
		t.Errorf("experiments = %d", n)
	}
}

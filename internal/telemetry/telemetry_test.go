package telemetry

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestRecordAndSnapshot(t *testing.T) {
	c := New()
	c.RecordExperiment("cbuf2mac/input", OutcomeMasked)
	c.RecordExperiment("cbuf2mac/input", OutcomeOutputError)
	c.RecordExperiment("global-control", OutcomeSystemAnomaly)
	c.RecordExperiment("global-control", "weird")
	s := c.Snapshot()
	if s.Experiments != 4 {
		t.Errorf("experiments = %d", s.Experiments)
	}
	in := s.Models["cbuf2mac/input"]
	if in.Masked != 1 || in.OutputError != 1 || in.Total() != 2 {
		t.Errorf("input tallies: %+v", in)
	}
	gc := s.Models["global-control"]
	if gc.SystemAnomaly != 1 || gc.Other != 1 {
		t.Errorf("global tallies: %+v", gc)
	}
	if s.PerSec <= 0 {
		t.Errorf("rate = %v", s.PerSec)
	}
	if got := s.ModelNames(); len(got) != 2 || got[0] != "cbuf2mac/input" {
		t.Errorf("model names: %v", got)
	}
}

func TestPhases(t *testing.T) {
	c := New()
	c.StartPhase("trace")
	time.Sleep(5 * time.Millisecond)
	c.EndPhase("trace")
	c.StartPhase("inject")
	s := c.Snapshot()
	if len(s.Phases) != 2 {
		t.Fatalf("phases: %+v", s.Phases)
	}
	if s.Phases[0].Name != "trace" || s.Phases[0].Seconds <= 0 || s.Phases[0].Running {
		t.Errorf("trace phase: %+v", s.Phases[0])
	}
	if s.Phases[1].Name != "inject" || !s.Phases[1].Running {
		t.Errorf("inject phase: %+v", s.Phases[1])
	}
	// Re-entering accumulates rather than resetting.
	c.EndPhase("inject")
	before := c.Snapshot().Phases[1].Seconds
	c.StartPhase("inject")
	time.Sleep(2 * time.Millisecond)
	c.EndPhase("inject")
	if after := c.Snapshot().Phases[1].Seconds; after <= before {
		t.Errorf("inject did not accumulate: %v -> %v", before, after)
	}
	// Unbalanced EndPhase is a no-op.
	c.EndPhase("nope")
	c.EndPhase("trace")
	c.EndPhase("trace")
}

func TestRateSince(t *testing.T) {
	prev := Snapshot{ElapsedSec: 1, Experiments: 100}
	cur := Snapshot{ElapsedSec: 3, Experiments: 300}
	if r := cur.RateSince(prev); r != 100 {
		t.Errorf("interval rate = %v", r)
	}
	if r := prev.RateSince(cur); r != 0 {
		t.Errorf("inverted window rate = %v", r)
	}
}

func TestSnapshotJSON(t *testing.T) {
	c := New()
	c.RecordExperiment("m", OutcomeMasked)
	c.StartPhase("inject")
	blob, err := json.Marshal(c.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Experiments != 1 || back.Models["m"].Masked != 1 {
		t.Errorf("round trip: %+v", back)
	}
}

// Concurrent recording from many goroutines with snapshots interleaved —
// exercised under -race in CI.
func TestConcurrentRecording(t *testing.T) {
	c := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				c.RecordExperiment("m", OutcomeMasked)
				if i%100 == 0 {
					c.StartPhase("p")
					c.Snapshot()
					c.EndPhase("p")
				}
			}
		}(g)
	}
	wg.Wait()
	if n := c.Experiments(); n != 4000 {
		t.Errorf("experiments = %d", n)
	}
}

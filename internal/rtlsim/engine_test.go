package rtlsim

import (
	"math/rand"
	"testing"

	"fidelity/internal/accel"
	"fidelity/internal/nn"
	"fidelity/internal/numerics"
	"fidelity/internal/tensor"
)

func nvdla() *accel.Config { return accel.NVDLASmall() }

// randConvLayer builds matching rtlsim and nn conv layers.
func randConvLayer(seed int64, codec numerics.Codec, h, w, inC, outC, kh, stride, pad int) (*Layer, *nn.Conv2D, *tensor.Tensor) {
	rng := rand.New(rand.NewSource(seed))
	conv := nn.NewConv2D("conv", kh, kh, inC, outC, stride, pad, codec).InitRandom(rng, 0.4)
	x := tensor.New(1, h, w, inC)
	x.RandNormal(rng, 1)
	l := ConvLayer(x, conv.W, conv.B.Data(), stride, pad, codec)
	return l, conv, x
}

// The golden (fault-free) simulation must agree bit-for-bit with the
// software layer at every precision — the foundation of the validation
// methodology.
func TestGoldenMatchesSoftwareConv(t *testing.T) {
	for _, p := range []numerics.Precision{numerics.FP32, numerics.FP16, numerics.INT16, numerics.INT8} {
		codec := numerics.MustCodec(p, 8)
		l, conv, x := randConvLayer(1, codec, 6, 7, 3, 20, 3, 1, 1)
		o, err := Run(nvdla(), l, nil)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if o.TimedOut {
			t.Fatalf("%v: golden run timed out", p)
		}
		ref := conv.Forward(x, nil)
		if diffs := o.Out.DiffIndices(ref, 0); len(diffs) != 0 {
			t.Errorf("%v: golden disagrees with software at %d/%d neurons",
				p, len(diffs), ref.Size())
		}
	}
}

func TestGoldenMatchesSoftwareMatMul(t *testing.T) {
	codec := numerics.MustCodec(numerics.FP16, 0)
	rng := rand.New(rand.NewSource(2))
	a, b := tensor.New(21, 12), tensor.New(12, 19)
	a.RandNormal(rng, 1)
	b.RandNormal(rng, 1)
	mm := nn.NewMatMulSite("mm", false, 0, codec)
	ref := mm.Run(a, b, nil)
	l := MatMulLayer(accel.LayerMatMul, a, b, nil, codec)
	o, err := Run(nvdla(), l, nil)
	if err != nil {
		t.Fatal(err)
	}
	if diffs := o.Out.DiffIndices(ref, 0); len(diffs) != 0 {
		t.Errorf("matmul golden disagrees at %d neurons", len(diffs))
	}
}

func TestGoldenMatchesSoftwareFC(t *testing.T) {
	codec := numerics.MustCodec(numerics.FP16, 0)
	rng := rand.New(rand.NewSource(3))
	fc := nn.NewDense("fc", 30, 17, codec).InitRandom(rng, 0.3)
	x := tensor.New(9, 30)
	x.RandNormal(rng, 1)
	ref := fc.Forward(x, nil)
	l := MatMulLayer(accel.LayerFC, x, fc.W, fc.B.Data(), codec)
	o, err := Run(nvdla(), l, nil)
	if err != nil {
		t.Fatal(err)
	}
	if diffs := o.Out.DiffIndices(ref, 0); len(diffs) != 0 {
		t.Errorf("fc golden disagrees at %d neurons", len(diffs))
	}
}

func TestLayerValidation(t *testing.T) {
	codec := numerics.MustCodec(numerics.FP16, 0)
	bad := MatMulLayer(accel.LayerMatMul, tensor.New(3, 4), tensor.New(5, 2), nil, codec)
	if _, err := Run(nvdla(), bad, nil); err == nil {
		t.Error("inner-dim mismatch should fail")
	}
	badConv := ConvLayer(tensor.New(2, 3), tensor.New(3, 3, 1, 1), nil, 1, 0, codec)
	if _, err := Run(nvdla(), badConv, nil); err == nil {
		t.Error("non-NHWC conv input should fail")
	}
	badBias := MatMulLayer(accel.LayerFC, tensor.New(3, 4), tensor.New(4, 2), []float32{1}, codec)
	if _, err := Run(nvdla(), badBias, nil); err == nil {
		t.Error("bias length mismatch should fail")
	}
	cfg := nvdla()
	cfg.AtomicK = 0
	good := MatMulLayer(accel.LayerFC, tensor.New(3, 4), tensor.New(4, 2), nil, codec)
	if _, err := Run(cfg, good, nil); err == nil {
		t.Error("invalid config should fail")
	}
}

// faultDiff runs golden and faulty simulations and returns the changed
// output positions.
func faultDiff(t *testing.T, l *Layer, f *Fault) (*Outcome, []int, *tensor.Tensor) {
	t.Helper()
	golden, err := Run(nvdla(), l, nil)
	if err != nil {
		t.Fatal(err)
	}
	faulty, err := Run(nvdla(), l, f)
	if err != nil {
		t.Fatal(err)
	}
	if faulty.TimedOut {
		return faulty, nil, golden.Out
	}
	return faulty, golden.Out.DiffIndices(faulty.Out, 0), golden.Out
}

// A CDMA input fault corrupts one CBUF element and therefore all neurons
// that use the value (before CBUF / input model).
func TestFaultCDMAInput(t *testing.T) {
	codec := numerics.MustCodec(numerics.FP16, 0)
	l, conv, x := randConvLayer(4, codec, 5, 5, 2, 4, 3, 1, 1)
	elem := 12 // input element streamed at cycle 12 through stage 0
	f := &Fault{FF: FFCDMAIn0, Bit: 14, Cycle: int64(elem)}
	faulty, diffs, golden := faultDiff(t, l, f)
	if !faulty.FaultApplied {
		t.Fatal("fault did not fire")
	}
	if len(diffs) == 0 {
		t.Fatal("exponent-bit CDMA fault should corrupt outputs")
	}
	// The changed set must equal the full reuse set of the element, with
	// values matching a software recomputation with the flipped element.
	x2 := x.Clone()
	x2.Data()[elem] = codec.FlipBit(x2.Data()[elem], 14)
	ref := conv.Forward(x2, nil)
	if rd := ref.DiffIndices(faulty.Out, 0); len(rd) != 0 {
		t.Errorf("faulty RTL output differs from software bit-flip reference at %d neurons", len(rd))
	}
	_ = golden
}

// A CDMA weight fault corrupts all spatial positions of one output channel.
func TestFaultCDMAWeight(t *testing.T) {
	codec := numerics.MustCodec(numerics.FP16, 0)
	l, conv, x := randConvLayer(5, codec, 5, 5, 2, 4, 3, 1, 1)
	elem := 20
	f := &Fault{FF: FFCDMAWt1, Bit: 13, Cycle: int64(elem) + 1} // stage1 holds element c-1
	faulty, diffs, _ := faultDiff(t, l, f)
	if len(diffs) == 0 {
		t.Fatal("CDMA weight fault should corrupt outputs")
	}
	oc := conv.W.Unflatten(elem)[3]
	for _, off := range diffs {
		idx := faulty.Out.Unflatten(off)
		if idx[3] != oc {
			t.Errorf("weight fault leaked into channel %d, want only %d", idx[3], oc)
		}
	}
	w2 := conv.W.Clone()
	w2.Data()[elem] = codec.FlipBit(w2.Data()[elem], 13)
	ref := nn.NewConv2D("ref", 3, 3, 2, 4, 1, 1, codec)
	ref.W, ref.B = w2, conv.B
	refOut := ref.Forward(x, nil)
	if rd := refOut.DiffIndices(faulty.Out, 0); len(rd) != 0 {
		t.Errorf("faulty RTL output differs from software reference at %d neurons", len(rd))
	}
}

// An input-register fault (Fig 2a target a4) corrupts at most k neurons at
// one position spanning one channel group.
func TestFaultInputReg(t *testing.T) {
	codec := numerics.MustCodec(numerics.FP16, 0)
	l, _, _ := randConvLayer(6, codec, 5, 5, 2, 32, 3, 1, 1)
	start, end, err := ComputeWindow(nvdla(), l)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	found := false
	for trial := 0; trial < 20 && !found; trial++ {
		f := &Fault{FF: FFInputReg, Bit: 14, Cycle: start + rng.Int63n(end-start)}
		faulty, diffs, _ := faultDiff(t, l, f)
		if !faulty.FaultApplied || len(diffs) == 0 {
			continue
		}
		found = true
		if len(diffs) > 16 {
			t.Fatalf("input-reg fault corrupted %d neurons, want <= 16", len(diffs))
		}
		first := faulty.Out.Unflatten(diffs[0])
		group := first[3] / 16
		for _, off := range diffs {
			idx := faulty.Out.Unflatten(off)
			if idx[0] != first[0] || idx[1] != first[1] || idx[2] != first[2] {
				t.Errorf("input-reg fault crossed positions: %v vs %v", idx, first)
			}
			if idx[3]/16 != group {
				t.Errorf("input-reg fault crossed channel groups")
			}
		}
	}
	if !found {
		t.Error("no live input-reg fault found in 20 trials")
	}
}

// A held-weight-register fault (target a2) corrupts a suffix of consecutive
// positions within one block, in a single output channel.
func TestFaultWReg(t *testing.T) {
	codec := numerics.MustCodec(numerics.FP16, 0)
	l, _, _ := randConvLayer(7, codec, 8, 8, 2, 4, 3, 1, 1)
	start, end, err := ComputeWindow(nvdla(), l)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	sizes := map[int]bool{}
	for trial := 0; trial < 40; trial++ {
		f := &Fault{FF: FFWReg, Mac: rng.Intn(4), Bit: 14, Cycle: start + rng.Int63n(end-start)}
		faulty, diffs, _ := faultDiff(t, l, f)
		if !faulty.FaultApplied || len(diffs) == 0 {
			continue
		}
		if len(diffs) > 16 {
			t.Fatalf("wreg fault corrupted %d neurons, want <= 16", len(diffs))
		}
		sizes[len(diffs)] = true
		oc := faulty.Out.Unflatten(diffs[0])[3]
		for _, off := range diffs {
			if faulty.Out.Unflatten(off)[3] != oc {
				t.Error("wreg fault crossed output channels")
			}
		}
	}
	if len(sizes) < 2 {
		t.Errorf("wreg fault sizes should vary with injection cycle, got %v", sizes)
	}
}

// A weight-staging-register fault (target a1) corrupts the weight for the
// whole upcoming hold window.
func TestFaultWLoad(t *testing.T) {
	codec := numerics.MustCodec(numerics.FP16, 0)
	l, _, _ := randConvLayer(8, codec, 8, 8, 2, 4, 3, 1, 1)
	start, _, err := ComputeWindow(nvdla(), l)
	if err != nil {
		t.Fatal(err)
	}
	// Cycle `start` is the first load cycle of block 0 / group 0 / r 0.
	f := &Fault{FF: FFWLoad, Mac: 1, Bit: 14, Cycle: start}
	faulty, diffs, _ := faultDiff(t, l, f)
	if !faulty.FaultApplied {
		t.Fatal("wload fault did not fire")
	}
	// The first block spans t=16 positions; all of them (channel 1) should
	// be corrupted (output W dim is 8, so the block covers 16 row-major
	// positions).
	if len(diffs) == 0 || len(diffs) > 16 {
		t.Fatalf("wload fault corrupted %d neurons, want 1..16", len(diffs))
	}
	for _, off := range diffs {
		if faulty.Out.Unflatten(off)[3] != 1 {
			t.Error("wload fault must stay in MAC 1's channel")
		}
	}
}

// Product and output-register faults have RF = 1.
func TestFaultProdAndOutRegRF1(t *testing.T) {
	codec := numerics.MustCodec(numerics.FP16, 0)
	l, _, _ := randConvLayer(9, codec, 5, 5, 2, 4, 3, 1, 1)
	start, end, err := ComputeWindow(nvdla(), l)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for _, ff := range []FF{FFProd, FFOutReg} {
		hits := 0
		for trial := 0; trial < 30; trial++ {
			f := &Fault{FF: ff, Mac: rng.Intn(4), Bit: 14, Cycle: start + rng.Int63n(end-start)}
			faulty, diffs, _ := faultDiff(t, l, f)
			if !faulty.FaultApplied || len(diffs) == 0 {
				continue
			}
			hits++
			if len(diffs) != 1 {
				t.Fatalf("%s fault corrupted %d neurons, want 1", ff, len(diffs))
			}
		}
		if hits == 0 {
			t.Errorf("no live %s fault in 30 trials", ff)
		}
	}
}

// Valid-bit faults (local control) drop one product: RF = 1.
func TestFaultValidRF1(t *testing.T) {
	codec := numerics.MustCodec(numerics.FP16, 0)
	l, _, _ := randConvLayer(10, codec, 5, 5, 2, 4, 3, 1, 1)
	start, end, err := ComputeWindow(nvdla(), l)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(10))
	hits := 0
	for trial := 0; trial < 30; trial++ {
		f := &Fault{FF: FFValid, Mac: rng.Intn(4), Bit: 0, Cycle: start + rng.Int63n(end-start)}
		faulty, diffs, _ := faultDiff(t, l, f)
		if !faulty.FaultApplied || len(diffs) == 0 {
			continue
		}
		hits++
		if len(diffs) != 1 {
			t.Fatalf("valid fault corrupted %d neurons, want 1", len(diffs))
		}
	}
	if hits == 0 {
		t.Error("no visible valid-bit fault in 30 trials")
	}
}

// Global control faults produce massive corruption or time-out.
func TestFaultGlobalControl(t *testing.T) {
	codec := numerics.MustCodec(numerics.FP16, 0)
	l, _, _ := randConvLayer(11, codec, 6, 6, 2, 8, 3, 1, 1)
	start, end, err := ComputeWindow(nvdla(), l)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	ffs := []FF{FFCfgPos, FFCfgCh, FFCfgRed, FFCtrBlk, FFCtrGrp, FFCtrR, FFCtrDx}
	fired, severe := 0, 0
	for trial := 0; trial < 60; trial++ {
		f := &Fault{
			FF:    ffs[rng.Intn(len(ffs))],
			Bit:   rng.Intn(16),
			Cycle: start + rng.Int63n(end-start),
		}
		faulty, diffs, golden := faultDiff(t, l, f)
		if !faulty.FaultApplied {
			continue
		}
		fired++
		if faulty.TimedOut || len(diffs) > golden.Size()/20 {
			severe++
		}
	}
	if fired == 0 {
		t.Fatal("no global-control fault fired")
	}
	// The large majority of active global-control faults must be severe
	// (paper: ~90.5% of global faults are not masked).
	if float64(severe) < 0.5*float64(fired) {
		t.Errorf("only %d/%d global faults were severe", severe, fired)
	}
}

// A high bit flip in the reduction-length config register must trip the
// watchdog (system time-out).
func TestFaultTimeout(t *testing.T) {
	codec := numerics.MustCodec(numerics.FP16, 0)
	l, _, _ := randConvLayer(12, codec, 5, 5, 2, 4, 3, 1, 1)
	start, _, err := ComputeWindow(nvdla(), l)
	if err != nil {
		t.Fatal(err)
	}
	f := &Fault{FF: FFCfgRed, Bit: 19, Cycle: start + 5}
	o, err := Run(nvdla(), l, f)
	if err != nil {
		t.Fatal(err)
	}
	if !o.TimedOut {
		t.Error("2^19 reduction-length corruption should time out")
	}
}

// A fault aimed at a cycle where the target FF is inactive must be masked.
func TestInactiveFaultMasked(t *testing.T) {
	codec := numerics.MustCodec(numerics.FP16, 0)
	l, _, _ := randConvLayer(13, codec, 5, 5, 2, 4, 3, 1, 1)
	// MAC-side FF during the fetch phase: never live.
	f := &Fault{FF: FFWReg, Mac: 0, Bit: 5, Cycle: 3}
	faulty, diffs, _ := faultDiff(t, l, f)
	if faulty.FaultApplied {
		t.Error("MAC fault during fetch should not fire")
	}
	if len(diffs) != 0 {
		t.Error("inactive fault must be masked")
	}
	// CDMA fault beyond the stream length: also inactive.
	f = &Fault{FF: FFCDMAIn0, Bit: 5, Cycle: int64(l.Input.Size()) + 1}
	faulty, diffs, _ = faultDiff(t, l, f)
	if faulty.FaultApplied || len(diffs) != 0 {
		t.Error("out-of-stream CDMA fault must be masked")
	}
}

func TestFFClassification(t *testing.T) {
	if FFInputReg.Class() != accel.Datapath || FFWReg.Class() != accel.Datapath {
		t.Error("datapath FFs misclassified")
	}
	if FFValid.Class() != accel.LocalControl {
		t.Error("valid bit must be local control")
	}
	for _, ff := range []FF{FFCfgPos, FFCfgCh, FFCfgRed, FFCtrBlk, FFCtrGrp, FFCtrR, FFCtrDx} {
		if ff.Class() != accel.GlobalControl {
			t.Errorf("%s must be global control", ff)
		}
	}
}

func TestGoldenCyclesAndWindows(t *testing.T) {
	codec := numerics.MustCodec(numerics.FP16, 0)
	l, _, _ := randConvLayer(14, codec, 5, 5, 2, 4, 3, 1, 1)
	gc, err := GoldenCycles(nvdla(), l)
	if err != nil {
		t.Fatal(err)
	}
	o, err := Run(nvdla(), l, nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.Cycles != gc {
		t.Errorf("golden run took %d cycles, estimate %d", o.Cycles, gc)
	}
	fw, err := FetchWindow(nvdla(), l)
	if err != nil {
		t.Fatal(err)
	}
	if fw <= 0 || fw >= gc {
		t.Errorf("fetch window %d outside (0, %d)", fw, gc)
	}
	if (&Fault{FF: FFWReg, Mac: 1, Bit: 2, Cycle: 3}).String() == "" {
		t.Error("fault string empty")
	}
}

// Randomized geometry sweep: the golden simulation must match the software
// layer bit-for-bit across random conv shapes, strides, paddings and
// precisions — the foundation that makes value-exact fault validation
// meaningful everywhere in the space.
func TestGoldenEquivalenceRandomSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	precs := []numerics.Precision{numerics.FP32, numerics.FP16, numerics.INT16, numerics.INT8}
	for trial := 0; trial < 12; trial++ {
		kh := 1 + rng.Intn(3)
		stride := 1 + rng.Intn(2)
		pad := rng.Intn(2)
		inC := 1 + rng.Intn(4)
		outC := 1 + rng.Intn(20)
		h := kh + rng.Intn(6)
		w := kh + rng.Intn(6)
		codec := numerics.MustCodec(precs[trial%len(precs)], 8)

		conv := nn.NewConv2D("c", kh, kh, inC, outC, stride, pad, codec).InitRandom(rng, 0.4)
		x := tensor.New(1, h, w, inC)
		x.RandNormal(rng, 1)
		ref := conv.Forward(x, nil)

		l := ConvLayer(x, conv.W, conv.B.Data(), stride, pad, codec)
		o, err := Run(nvdla(), l, nil)
		if err != nil {
			// Degenerate output geometry is a layer error, not a mismatch.
			continue
		}
		if diffs := o.Out.DiffIndices(ref, 0); len(diffs) != 0 {
			t.Fatalf("trial %d (k=%d s=%d p=%d %dx%dx%d->%d %v): %d mismatches",
				trial, kh, stride, pad, h, w, inC, outC, codec.Precision(), len(diffs))
		}
	}
}

package rtlsim

import (
	"math/rand"
	"testing"

	"fidelity/internal/numerics"
)

// The locator's schedule arithmetic must agree with the engine: injecting a
// WReg fault at a located MAC cycle must corrupt exactly the suffix of the
// located block in the located MAC's channel.
func TestLocateAgreesWithEngine(t *testing.T) {
	codec := numerics.MustCodec(numerics.FP16, 0)
	cfg := nvdla()
	l, _, _ := randConvLayer(21, codec, 8, 8, 2, 4, 3, 1, 1)
	start, end, err := ComputeWindow(cfg, l)
	if err != nil {
		t.Fatal(err)
	}
	golden, err := Run(cfg, l, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	checked := 0
	for trial := 0; trial < 60 && checked < 15; trial++ {
		cyc := start + rng.Int63n(end-start)
		si, err := Locate(cfg, l, cyc)
		if err != nil {
			t.Fatal(err)
		}
		if si.Phase != PhaseMAC {
			continue
		}
		mac := rng.Intn(4)
		ch := si.Channel(cfg, mac)
		_, wIdx, err := si.OperandIndices(cfg, l, mac)
		if err != nil {
			t.Fatal(err)
		}
		if wIdx < 0 {
			continue
		}
		f := &Fault{FF: FFWReg, Mac: mac, Bit: 14, Cycle: cyc}
		faulty, err := Run(cfg, l, f)
		if err != nil {
			t.Fatal(err)
		}
		diffs := golden.Out.DiffIndices(faulty.Out, 0)
		if len(diffs) == 0 {
			continue
		}
		checked++
		numPos, _, _, _ := Dims(cfg, l)
		// Predicted faulty set: positions p = blk*t+dx .. block end, channel ch.
		predicted := map[int]bool{}
		for dx := si.Dx; dx < si.BlockSize; dx++ {
			p := si.Blk*cfg.WeightHoldCycles + dx
			if p >= numPos {
				break
			}
			idx, err := OutIndexOf(l, p, ch)
			if err != nil {
				t.Fatal(err)
			}
			predicted[golden.Out.Offset(idx...)] = true
		}
		for _, off := range diffs {
			if !predicted[off] {
				t.Fatalf("cycle %d: corrupted neuron %v outside predicted set (site %+v)",
					cyc, golden.Out.Unflatten(off), si)
			}
		}
	}
	if checked < 5 {
		t.Fatalf("only %d visible wreg faults located", checked)
	}
}

// Located input-register faults must corrupt only the located position's
// channel group.
func TestLocateInputRegGroup(t *testing.T) {
	codec := numerics.MustCodec(numerics.FP16, 0)
	cfg := nvdla()
	l, _, _ := randConvLayer(22, codec, 6, 6, 2, 32, 3, 1, 1)
	start, end, _ := ComputeWindow(cfg, l)
	golden, _ := Run(cfg, l, nil)
	rng := rand.New(rand.NewSource(22))
	checked := 0
	for trial := 0; trial < 80 && checked < 10; trial++ {
		cyc := start + rng.Int63n(end-start)
		si, _ := Locate(cfg, l, cyc)
		if si.Phase != PhaseMAC {
			continue
		}
		inIdx, _, _ := si.OperandIndices(cfg, l, 0)
		if inIdx < 0 {
			continue // padding operand
		}
		f := &Fault{FF: FFInputReg, Bit: 14, Cycle: cyc}
		faulty, _ := Run(cfg, l, f)
		diffs := golden.Out.DiffIndices(faulty.Out, 0)
		if len(diffs) == 0 {
			continue
		}
		checked++
		p := si.Position(cfg)
		for _, off := range diffs {
			idx := golden.Out.Unflatten(off)
			gotP := (idx[0]*golden.Out.Dim(1)+idx[1])*golden.Out.Dim(2) + idx[2]
			if gotP != p {
				t.Fatalf("input-reg fault at position %d corrupted position %d", p, gotP)
			}
			if idx[3]/cfg.AtomicK != si.Grp {
				t.Fatalf("input-reg fault crossed channel group")
			}
		}
	}
	if checked < 3 {
		t.Fatalf("only %d visible input-reg faults located", checked)
	}
}

// Phase layout: cycle 0 is fetch; the first compute cycle is a load; the
// cycle after the last is idle.
func TestLocatePhases(t *testing.T) {
	codec := numerics.MustCodec(numerics.FP16, 0)
	cfg := nvdla()
	l, _, _ := randConvLayer(23, codec, 5, 5, 2, 4, 3, 1, 1)
	si, err := Locate(cfg, l, 0)
	if err != nil || si.Phase != PhaseFetch {
		t.Errorf("cycle 0: %v, %v", si.Phase, err)
	}
	start, end, _ := ComputeWindow(cfg, l)
	si, _ = Locate(cfg, l, start)
	if si.Phase != PhaseLoad || si.Blk != 0 || si.Grp != 0 || si.R != 0 {
		t.Errorf("first compute cycle: %+v", si)
	}
	si, _ = Locate(cfg, l, start+1)
	if si.Phase != PhaseMAC || si.Dx != 0 {
		t.Errorf("second compute cycle: %+v", si)
	}
	si, _ = Locate(cfg, l, end)
	if si.Phase != PhaseIdle {
		t.Errorf("post-end cycle: %+v", si)
	}
	for _, p := range []Phase{PhaseFetch, PhaseLoad, PhaseMAC, PhaseWB, PhaseIdle} {
		if p.String() == "" {
			t.Error("empty phase name")
		}
	}
}

// Every compute cycle must locate to a non-idle phase, and the WB positions/
// channels must be in range.
func TestLocateCoverageExhaustive(t *testing.T) {
	codec := numerics.MustCodec(numerics.FP16, 0)
	cfg := nvdla()
	l, _, _ := randConvLayer(24, codec, 5, 5, 2, 4, 3, 1, 1)
	start, end, _ := ComputeWindow(cfg, l)
	numPos, numCh, _, _ := Dims(cfg, l)
	for cyc := start; cyc < end; cyc++ {
		si, err := Locate(cfg, l, cyc)
		if err != nil {
			t.Fatal(err)
		}
		if si.Phase == PhaseIdle || si.Phase == PhaseFetch {
			t.Fatalf("compute cycle %d located as %v", cyc, si.Phase)
		}
		if si.Phase == PhaseWB {
			if p := si.Position(cfg); p < 0 || p >= numPos {
				t.Fatalf("wb position %d out of range at cycle %d", p, cyc)
			}
			if c := si.Channel(cfg, 0); c < 0 || c >= ((numCh+15)/16)*16 {
				t.Fatalf("wb channel %d out of range at cycle %d", c, cyc)
			}
		}
	}
}

// Package rtlsim is the validation golden reference of this reproduction: a
// cycle-level microarchitectural simulator of the NVDLA-like accelerator of
// paper Fig 2(a), with named flip-flops that can suffer single-cycle
// bit-flips at chosen cycles. It plays the role that Synopsys VCS RTL
// simulation of NVDLA plays in the paper's Sec. IV: for a sampled fault
// site, the simulator produces the ground-truth set of faulty output
// neurons, their values, and time-out behaviour, against which FIdelity's
// software fault models are checked.
//
// The simulated design executes one DNN layer (Conv, FC, or MatMul) with the
// NVDLA schedule: k parallel MAC units compute the output neurons of k
// consecutive channels at one position per cycle; weight registers hold each
// value for up to t consecutive positions (temporal reuse); one input value
// per cycle is broadcast to all MACs (spatial reuse). FC and MatMul map onto
// the same engine with positions = matrix rows and channels = output
// columns, exactly as NVDLA runs them on the convolution pipeline.
package rtlsim

import (
	"fmt"

	"fidelity/internal/accel"
	"fidelity/internal/numerics"
	"fidelity/internal/tensor"
)

// Layer describes one workload layer together with its operand data.
type Layer struct {
	Kind accel.LayerKind

	// Convolution geometry (Kind == LayerConv). Input is NHWC and W is
	// (KH, KW, InC, OutC).
	KH, KW, Stride, Pad int

	// Input is the activation tensor: NHWC for conv, (M, K) for FC/MatMul.
	Input *tensor.Tensor
	// W is the weight tensor: (KH, KW, InC, OutC) for conv, (K, N) for
	// FC/MatMul.
	W *tensor.Tensor
	// Bias is an optional per-channel bias (length OutC / N).
	Bias []float32

	// Codec is the datapath number format.
	Codec numerics.Codec
}

// ConvLayer builds a conv workload.
func ConvLayer(input, w *tensor.Tensor, bias []float32, stride, pad int, codec numerics.Codec) *Layer {
	return &Layer{
		Kind: accel.LayerConv, KH: w.Dim(0), KW: w.Dim(1), Stride: stride, Pad: pad,
		Input: input, W: w, Bias: bias, Codec: codec,
	}
}

// MatMulLayer builds an FC/MatMul workload over (M,K)·(K,N).
func MatMulLayer(kind accel.LayerKind, a, w *tensor.Tensor, bias []float32, codec numerics.Codec) *Layer {
	return &Layer{Kind: kind, Input: a, W: w, Bias: bias, Codec: codec}
}

// schedule captures the iteration-space mapping of the layer onto the
// engine: positions (outer spatial scan), channels (parallel MACs), and
// reduction indices (MAC operand pairs). This is precisely the information
// the paper's "scheduling/reuse algorithm" input provides.
type schedule struct {
	numPos, numCh, numRed int

	// conv geometry cache
	conv               bool
	batch, inH, inW    int
	inC, outH, outW    int
	kh, kw, stride, pd int
}

func (l *Layer) newSchedule() (*schedule, error) {
	s := &schedule{}
	switch l.Kind {
	case accel.LayerConv:
		if l.Input.Rank() != 4 || l.W.Rank() != 4 {
			return nil, fmt.Errorf("rtlsim: conv needs NHWC input and 4-D weights, got %v / %v",
				l.Input.Shape(), l.W.Shape())
		}
		s.conv = true
		s.batch, s.inH, s.inW, s.inC = l.Input.Dim(0), l.Input.Dim(1), l.Input.Dim(2), l.Input.Dim(3)
		s.kh, s.kw, s.stride, s.pd = l.KH, l.KW, l.Stride, l.Pad
		if l.W.Dim(2) != s.inC {
			return nil, fmt.Errorf("rtlsim: weight input channels %d != input %d", l.W.Dim(2), s.inC)
		}
		s.outH = (s.inH+2*s.pd-s.kh)/s.stride + 1
		s.outW = (s.inW+2*s.pd-s.kw)/s.stride + 1
		if s.outH <= 0 || s.outW <= 0 {
			return nil, fmt.Errorf("rtlsim: conv output is empty")
		}
		s.numPos = s.batch * s.outH * s.outW
		s.numCh = l.W.Dim(3)
		s.numRed = s.kh * s.kw * s.inC
	case accel.LayerFC, accel.LayerMatMul:
		if l.Input.Rank() != 2 || l.W.Rank() != 2 {
			return nil, fmt.Errorf("rtlsim: matmul needs rank-2 operands, got %v / %v",
				l.Input.Shape(), l.W.Shape())
		}
		if l.Input.Dim(1) != l.W.Dim(0) {
			return nil, fmt.Errorf("rtlsim: inner dims %d vs %d", l.Input.Dim(1), l.W.Dim(0))
		}
		s.numPos = l.Input.Dim(0)
		s.numCh = l.W.Dim(1)
		s.numRed = l.Input.Dim(1)
	default:
		return nil, fmt.Errorf("rtlsim: unsupported layer kind %v", l.Kind)
	}
	if l.Bias != nil && len(l.Bias) != s.numCh {
		return nil, fmt.Errorf("rtlsim: bias length %d != channels %d", len(l.Bias), s.numCh)
	}
	return s, nil
}

// aIndex returns the flat index into the input buffer of the operand used at
// (position p, reduction r), or -1 for padding (value 0).
func (s *schedule) aIndex(p, r int) int {
	if !s.conv {
		return p*s.numRed + r
	}
	// p -> (b, oy, ox); r -> (ky, kx, ic), both row-major.
	ox := p % s.outW
	oy := (p / s.outW) % s.outH
	b := p / (s.outW * s.outH)
	ic := r % s.inC
	kx := (r / s.inC) % s.kw
	ky := r / (s.inC * s.kw)
	iy := oy*s.stride + ky - s.pd
	ix := ox*s.stride + kx - s.pd
	if iy < 0 || iy >= s.inH || ix < 0 || ix >= s.inW {
		return -1
	}
	return ((b*s.inH+iy)*s.inW+ix)*s.inC + ic
}

// wIndex returns the flat index into the weight buffer of the operand used
// at (reduction r, channel c).
func (s *schedule) wIndex(r, c int) int {
	if !s.conv {
		return r*s.numCh + c
	}
	// W layout (KH, KW, InC, OutC) is exactly reduction-major, channel-minor.
	return r*s.numCh + c
}

// outShape returns the output tensor shape.
func (s *schedule) outShape() []int {
	if s.conv {
		return []int{s.batch, s.outH, s.outW, s.numCh}
	}
	return []int{s.numPos, s.numCh}
}

// outIndex converts (position, channel) to the output multi-index.
func (s *schedule) outIndex(p, c int) []int {
	if s.conv {
		ox := p % s.outW
		oy := (p / s.outW) % s.outH
		b := p / (s.outW * s.outH)
		return []int{b, oy, ox, c}
	}
	return []int{p, c}
}

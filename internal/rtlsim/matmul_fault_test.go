package rtlsim

import (
	"math/rand"
	"testing"

	"fidelity/internal/accel"
	"fidelity/internal/nn"
	"fidelity/internal/numerics"
	"fidelity/internal/tensor"
)

// Fault-pattern checks for the FC/MatMul execution mode (positions = matrix
// rows, channels = output columns), mirroring the conv-mode tests.

func fcLayer(seed int64, rows, in, out int) (*Layer, *nn.Dense, *tensor.Tensor) {
	codec := numerics.MustCodec(numerics.FP16, 0)
	rng := rand.New(rand.NewSource(seed))
	d := nn.NewDense("fc", in, out, codec).InitRandom(rng, 0.3)
	x := tensor.New(rows, in)
	x.RandNormal(rng, 1)
	return MatMulLayer(accel.LayerFC, x, d.W, d.B.Data(), codec), d, x
}

// A held-weight fault in FC mode corrupts one output column index across a
// suffix of consecutive rows — exactly the Table II FC-weight pattern
// ("one out of 16 output neurons faulty, total <= 16").
func TestFCWeightFaultPattern(t *testing.T) {
	cfg := nvdla()
	l, _, _ := fcLayer(41, 40, 12, 8)
	golden, err := Run(cfg, l, nil)
	if err != nil {
		t.Fatal(err)
	}
	start, end, _ := ComputeWindow(cfg, l)
	rng := rand.New(rand.NewSource(41))
	hits := 0
	for trial := 0; trial < 60 && hits < 15; trial++ {
		f := &Fault{FF: FFWReg, Mac: rng.Intn(8), Bit: 14, Cycle: start + rng.Int63n(end-start)}
		faulty, err := Run(cfg, l, f)
		if err != nil {
			t.Fatal(err)
		}
		diffs := golden.Out.DiffIndices(faulty.Out, 0)
		if !faulty.FaultApplied || len(diffs) == 0 {
			continue
		}
		hits++
		if len(diffs) > 16 {
			t.Fatalf("FC weight fault corrupted %d neurons, want <= 16", len(diffs))
		}
		col := golden.Out.Unflatten(diffs[0])[1]
		prevRow := -1
		for _, off := range diffs {
			idx := golden.Out.Unflatten(off)
			if idx[1] != col {
				t.Fatalf("FC weight fault crossed output columns: %v", idx)
			}
			if prevRow >= 0 && idx[0] != prevRow+1 {
				t.Fatalf("FC weight fault rows not consecutive")
			}
			prevRow = idx[0]
		}
	}
	if hits < 5 {
		t.Fatalf("only %d live FC weight faults", hits)
	}
}

// A broadcast-input fault in FC mode corrupts up to 16 consecutive output
// columns of one row (the Table II FC-input pattern).
func TestFCInputFaultPattern(t *testing.T) {
	cfg := nvdla()
	l, _, _ := fcLayer(42, 20, 10, 40)
	golden, err := Run(cfg, l, nil)
	if err != nil {
		t.Fatal(err)
	}
	start, end, _ := ComputeWindow(cfg, l)
	rng := rand.New(rand.NewSource(42))
	hits := 0
	for trial := 0; trial < 60 && hits < 15; trial++ {
		f := &Fault{FF: FFInputReg, Bit: 14, Cycle: start + rng.Int63n(end-start)}
		faulty, err := Run(cfg, l, f)
		if err != nil {
			t.Fatal(err)
		}
		diffs := golden.Out.DiffIndices(faulty.Out, 0)
		if !faulty.FaultApplied || len(diffs) == 0 {
			continue
		}
		hits++
		if len(diffs) > 16 {
			t.Fatalf("FC input fault corrupted %d neurons, want <= 16", len(diffs))
		}
		row := golden.Out.Unflatten(diffs[0])[0]
		group := golden.Out.Unflatten(diffs[0])[1] / 16
		for _, off := range diffs {
			idx := golden.Out.Unflatten(off)
			if idx[0] != row || idx[1]/16 != group {
				t.Fatalf("FC input fault escaped row/group: %v", idx)
			}
		}
	}
	if hits < 5 {
		t.Fatalf("only %d live FC input faults", hits)
	}
}

// CDMA faults in matmul mode corrupt exactly the users of the struck word.
func TestMatMulCDMAFault(t *testing.T) {
	cfg := nvdla()
	codec := numerics.MustCodec(numerics.FP16, 0)
	rng := rand.New(rand.NewSource(43))
	a, b := tensor.New(12, 9), tensor.New(9, 11)
	a.RandNormal(rng, 1)
	b.RandNormal(rng, 1)
	l := MatMulLayer(accel.LayerMatMul, a, b, nil, codec)
	golden, err := Run(cfg, l, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one element of A: its row's neurons are the only candidates.
	elem := a.Offset(4, 2)
	f := &Fault{FF: FFCDMAIn0, Bit: 13, Cycle: int64(elem)}
	faulty, err := Run(cfg, l, f)
	if err != nil {
		t.Fatal(err)
	}
	diffs := golden.Out.DiffIndices(faulty.Out, 0)
	if len(diffs) == 0 {
		t.Fatal("A-element fault should corrupt outputs")
	}
	for _, off := range diffs {
		if golden.Out.Unflatten(off)[0] != 4 {
			t.Fatalf("A[4,2] fault corrupted row %d", golden.Out.Unflatten(off)[0])
		}
	}
	// Flip one element of B: only its column can change.
	elem = b.Offset(3, 7)
	f = &Fault{FF: FFCDMAWt0, Bit: 13, Cycle: int64(elem)}
	faulty, err = Run(cfg, l, f)
	if err != nil {
		t.Fatal(err)
	}
	for _, off := range golden.Out.DiffIndices(faulty.Out, 0) {
		if golden.Out.Unflatten(off)[1] != 7 {
			t.Fatalf("B[3,7] fault corrupted column %d", golden.Out.Unflatten(off)[1])
		}
	}
}

package rtlsim

import (
	"fmt"

	"fidelity/internal/accel"
	"fidelity/internal/numerics"
	"fidelity/internal/tensor"
)

// FF names the simulated flip-flop groups. Per-MAC FFs additionally carry a
// MAC index in the Fault.
type FF string

// Datapath FFs.
const (
	// FFCDMAIn0 and FFCDMAIn1 are the two input-fetch pipeline registers
	// before the on-chip buffer (paper category: before CBUF / input).
	FFCDMAIn0 FF = "cdma.in0"
	FFCDMAIn1 FF = "cdma.in1"
	// FFCDMAWt0 and FFCDMAWt1 are the weight-fetch pipeline registers
	// (before CBUF / weight).
	FFCDMAWt0 FF = "cdma.wt0"
	FFCDMAWt1 FF = "cdma.wt1"
	// FFInputReg is the broadcast input register feeding all MACs
	// (between CBUF & MAC / input — Fig 2a target a4).
	FFInputReg FF = "csc.input"
	// FFWLoad is a MAC's weight staging register (Fig 2a target a1).
	FFWLoad FF = "mac.wload"
	// FFWReg is a MAC's held weight register, value reused for up to t
	// cycles (Fig 2a target a2).
	FFWReg FF = "mac.wreg"
	// FFProd is a MAC's multiplier output register (partial sum, RF = 1).
	FFProd FF = "mac.prod"
	// FFOutReg is the post-accumulation output register at write-back
	// (output, RF = 1).
	FFOutReg FF = "sdp.out"
)

// Local control FFs.
const (
	// FFValid is a MAC's product-valid bit: flipping it drops or corrupts
	// exactly the neuron the MAC is computing that cycle (local control).
	FFValid FF = "mac.valid"
)

// Global control FFs.
const (
	// FFCfgPos, FFCfgCh and FFCfgRed are layer configuration registers
	// (output positions, channels, reduction length).
	FFCfgPos FF = "cfg.pos"
	FFCfgCh  FF = "cfg.ch"
	FFCfgRed FF = "cfg.red"
	// FFCtrBlk, FFCtrGrp, FFCtrR and FFCtrDx are the sequencer counters.
	FFCtrBlk FF = "csc.blk"
	FFCtrGrp FF = "csc.grp"
	FFCtrR   FF = "csc.r"
	FFCtrDx  FF = "csc.dx"
)

// Class returns the FF's fault-model class.
func (f FF) Class() accel.FFClass {
	switch f {
	case FFValid:
		return accel.LocalControl
	case FFCfgPos, FFCfgCh, FFCfgRed, FFCtrBlk, FFCtrGrp, FFCtrR, FFCtrDx:
		return accel.GlobalControl
	default:
		return accel.Datapath
	}
}

// Fault is a single-cycle fault in a single FF register: one bit flip, or —
// per the paper's fault abstraction, which also covers "multiple single-cycle
// bit-flips in a single register" — several bits flipped in the same cycle.
type Fault struct {
	FF FF
	// Mac selects the MAC unit for per-MAC FFs (ignored otherwise).
	Mac int
	// Bit is the flipped bit position.
	Bit int
	// ExtraBits lists additional bit positions flipped in the same cycle
	// (multi-bit upsets in one register).
	ExtraBits []int
	// Cycle is the absolute cycle at which the flip occurs.
	Cycle int64
}

// bits returns all flipped bit positions.
func (f *Fault) bits() []int {
	return append([]int{f.Bit}, f.ExtraBits...)
}

// Outcome is the result of one simulation run.
type Outcome struct {
	// Out is the layer output (valid even on time-out: whatever was written).
	Out *tensor.Tensor
	// Cycles is the number of simulated cycles.
	Cycles int64
	// TimedOut reports that the run exceeded the watchdog limit — the
	// "system anomaly" outcome.
	TimedOut bool
	// FaultApplied reports whether the fault's target was live at the fault
	// cycle (a fault aimed at an inactive FF or out-of-range cycle never
	// fires and is trivially masked).
	FaultApplied bool
}

// Engine simulates one layer execution.
type Engine struct {
	cfg   *accel.Config
	l     *Layer
	sched *schedule
	codec numerics.Codec
	k, t  int

	// CBUF contents (copied from DRAM through the CDMA registers).
	cbufIn, cbufW []float32

	// Datapath registers.
	inputReg float32
	wload    []float32
	wreg     []float32
	prod     []float32
	valid    []bool
	acc      [][]float32 // acc[dx][m]

	// Config registers and sequencer counters (bit-flippable state).
	cfgPos, cfgCh, cfgRed int64
	blk, grp, r, dx, wb   int64
	phase                 int

	out       *tensor.Tensor
	cycle     int64
	fault     *Fault
	memFaults []MemFault
	fired     bool
	maxCyc    int64
}

const (
	phaseLoad = iota
	phaseMAC
	phaseWB
	phaseDone
)

// NewEngine prepares a simulation of layer l on design cfg with an optional
// fault (nil for a golden run).
func NewEngine(cfg *accel.Config, l *Layer, fault *Fault) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sched, err := l.newSchedule()
	if err != nil {
		return nil, err
	}
	k := cfg.AtomicK
	t := cfg.WeightHoldCycles
	e := &Engine{
		cfg: cfg, l: l, sched: sched, codec: l.Codec,
		k: k, t: t,
		wload: make([]float32, k), wreg: make([]float32, k),
		prod: make([]float32, k), valid: make([]bool, k),
		acc:    make([][]float32, t),
		cfgPos: int64(sched.numPos), cfgCh: int64(sched.numCh), cfgRed: int64(sched.numRed),
		out:   tensor.New(sched.outShape()...),
		fault: fault,
	}
	for i := range e.acc {
		e.acc[i] = make([]float32, k)
	}
	if fault != nil {
		if fault.Mac < 0 || fault.Mac >= k {
			fault.Mac = ((fault.Mac % k) + k) % k
		}
	}
	return e, nil
}

// goldenCycles estimates the fault-free cycle count for the watchdog.
func (e *Engine) goldenCycles() int64 {
	s := e.sched
	blocks := (s.numPos + e.t - 1) / e.t
	groups := (s.numCh + e.k - 1) / e.k
	var compute int64
	for b := 0; b < blocks; b++ {
		bs := s.numPos - b*e.t
		if bs > e.t {
			bs = e.t
		}
		perGroup := int64(s.numRed)*int64(1+bs) + int64(bs)*int64(e.k)
		compute += int64(groups) * perGroup
	}
	return e.fetchCycles() + compute
}

// fetchCycles is the CDMA streaming time: input and weight streams run in
// parallel, one element per cycle, through two pipeline registers.
func (e *Engine) fetchCycles() int64 {
	n := e.l.Input.Size()
	if w := e.l.W.Size(); w > n {
		n = w
	}
	return int64(n) + 2
}

// Run executes the simulation to completion or time-out.
func (e *Engine) Run() (*Outcome, error) {
	e.maxCyc = 4*e.goldenCycles() + 1024
	e.fetch()
	e.phase = phaseLoad
	for e.phase != phaseDone {
		if e.cycle > e.maxCyc {
			return &Outcome{Out: e.out, Cycles: e.cycle, TimedOut: true, FaultApplied: e.fired}, nil
		}
		e.step()
		e.cycle++
	}
	return &Outcome{Out: e.out, Cycles: e.cycle, FaultApplied: e.fired}, nil
}

// fetch streams the operands into the CBUF through the CDMA registers,
// applying CDMA faults to the element occupying the targeted register at the
// fault cycle.
func (e *Engine) fetch() {
	in := e.l.Input.Data()
	w := e.l.W.Data()
	e.cbufIn = append([]float32(nil), in...)
	e.cbufW = append([]float32(nil), w...)
	// Values are stored in the datapath format.
	for i, v := range e.cbufIn {
		e.cbufIn[i] = e.codec.Round(v)
	}
	for i, v := range e.cbufW {
		e.cbufW[i] = e.codec.Round(v)
	}
	fc := e.fetchCycles()
	if f := e.fault; f != nil && f.Cycle < fc {
		var buf []float32
		var elem int64
		switch f.FF {
		case FFCDMAIn0:
			buf, elem = e.cbufIn, f.Cycle
		case FFCDMAIn1:
			buf, elem = e.cbufIn, f.Cycle-1
		case FFCDMAWt0:
			buf, elem = e.cbufW, f.Cycle
		case FFCDMAWt1:
			buf, elem = e.cbufW, f.Cycle-1
		}
		if buf != nil && elem >= 0 && elem < int64(len(buf)) {
			for _, b := range f.bits() {
				buf[elem] = e.codec.FlipBit(buf[elem], b)
			}
			e.fired = true
		}
	}
	for _, m := range e.memFaults {
		buf := e.cbufIn
		if m.Weight {
			buf = e.cbufW
		}
		if m.Word < 0 || m.Word >= len(buf) {
			continue
		}
		for _, b := range m.Bits {
			buf[m.Word] = e.codec.FlipBit(buf[m.Word], b)
		}
		e.fired = true
	}
	e.cycle = fc
}

// faultNow reports whether the fault targets ff (and MAC m, when >= 0) at
// the current cycle.
func (e *Engine) faultNow(ff FF, m int) bool {
	f := e.fault
	if f == nil || f.Cycle != e.cycle || f.FF != ff {
		return false
	}
	if m >= 0 && f.Mac != m {
		return false
	}
	return true
}

// flip32 applies the codec bit flips and marks the fault as fired.
func (e *Engine) flip32(v float32) float32 {
	e.fired = true
	for _, b := range e.fault.bits() {
		v = e.codec.FlipBit(v, b)
	}
	return v
}

// flipCtr flips bits of a counter/config register, masked to 20 bits to
// bound runaway loops (the watchdog catches the rest).
func (e *Engine) flipCtr(v int64) int64 {
	e.fired = true
	for _, b := range e.fault.bits() {
		v ^= 1 << uint(b%20)
	}
	return v
}

// applyControlFaults handles config/counter targets at the start of a cycle.
func (e *Engine) applyControlFaults() {
	f := e.fault
	if f == nil || f.Cycle != e.cycle {
		return
	}
	switch f.FF {
	case FFCfgPos:
		e.cfgPos = e.flipCtr(e.cfgPos)
	case FFCfgCh:
		e.cfgCh = e.flipCtr(e.cfgCh)
	case FFCfgRed:
		e.cfgRed = e.flipCtr(e.cfgRed)
	case FFCtrBlk:
		e.blk = e.flipCtr(e.blk)
	case FFCtrGrp:
		e.grp = e.flipCtr(e.grp)
	case FFCtrR:
		e.r = e.flipCtr(e.r)
	case FFCtrDx:
		e.dx = e.flipCtr(e.dx)
	}
}

// geometry derived combinationally from the (possibly corrupted) config regs.
func (e *Engine) numBlocks() int64 {
	if e.cfgPos <= 0 {
		return 0
	}
	return (e.cfgPos + int64(e.t) - 1) / int64(e.t)
}

func (e *Engine) numGroups() int64 {
	if e.cfgCh <= 0 {
		return 0
	}
	return (e.cfgCh + int64(e.k) - 1) / int64(e.k)
}

func (e *Engine) blockSize() int64 {
	bs := e.cfgPos - e.blk*int64(e.t)
	if bs > int64(e.t) {
		bs = int64(e.t)
	}
	if bs < 1 {
		bs = 1
	}
	return bs
}

// readIn fetches an input operand from CBUF with address clamping (a
// corrupted sequencer can generate out-of-range addresses; real hardware
// would read whatever the wrapped address holds). pad reports a zero-padding
// operand: the sequencer gates the corresponding MAC (no accumulation), so a
// non-finite weight cannot poison padded positions.
func (e *Engine) readIn(p, r int64) (v float32, pad bool) {
	s := e.sched
	np, nr := int64(s.numPos), int64(s.numRed)
	pi := int(((p % np) + np) % np)
	ri := int(((r % nr) + nr) % nr)
	idx := s.aIndex(pi, ri)
	if idx < 0 {
		return 0, true
	}
	return e.cbufIn[idx], false
}

// readW fetches a weight operand with clamping.
func (e *Engine) readW(r, c int64) float32 {
	s := e.sched
	nr, nc := int64(s.numRed), int64(s.numCh)
	ri := int(((r % nr) + nr) % nr)
	ci := int(((c % nc) + nc) % nc)
	return e.cbufW[s.wIndex(ri, ci)]
}

// step advances the state machine one cycle.
func (e *Engine) step() {
	e.applyControlFaults()
	switch e.phase {
	case phaseLoad:
		// Parallel load of the group's weights into the staging registers.
		for m := 0; m < e.k; m++ {
			c := e.grp*int64(e.k) + int64(m)
			if c < e.cfgCh && c < int64(e.sched.numCh) {
				e.wload[m] = e.readW(e.r, c)
			} else {
				e.wload[m] = 0
			}
			if e.faultNow(FFWLoad, m) {
				e.wload[m] = e.flip32(e.wload[m])
			}
		}
		e.dx = 0
		e.phase = phaseMAC

	case phaseMAC:
		if e.dx == 0 {
			copy(e.wreg, e.wload)
		}
		// Held weight registers can be struck at any MAC cycle; the flip
		// persists for the rest of the hold window (Fig 2a target a2).
		for m := 0; m < e.k; m++ {
			if e.faultNow(FFWReg, m) {
				e.wreg[m] = e.flip32(e.wreg[m])
			}
		}
		p := e.blk*int64(e.t) + e.dx
		in, pad := e.readIn(p, e.r)
		e.inputReg = in
		if e.faultNow(FFInputReg, -1) {
			e.inputReg = e.flip32(e.inputReg)
		}
		dxi := int(e.dx) % e.t
		for m := 0; m < e.k; m++ {
			e.prod[m] = e.codec.Mul(e.wreg[m], e.inputReg)
			if e.faultNow(FFProd, m) {
				e.prod[m] = e.flip32(e.prod[m])
			}
			e.valid[m] = !pad
			if e.faultNow(FFValid, m) {
				e.valid[m] = false // drop this product
				e.fired = true
			}
			if e.valid[m] {
				e.acc[dxi][m] += e.prod[m]
			}
		}
		e.dx++
		if e.dx >= e.blockSize() {
			e.dx = 0
			e.r++
			if e.r >= e.cfgRed {
				e.r = 0
				e.wb = 0
				e.phase = phaseWB
			} else {
				e.phase = phaseLoad
			}
		} else {
			// Same weight value continues to be reused; next cycle stays in
			// the MAC phase (a new input is fetched each cycle).
			e.phase = phaseMAC
		}
		// NOTE: the NVDLA schedule interleaves the reduction loop over the
		// full block with a single weight load per (r, group); the state
		// transitions above reproduce that: one load cycle per reduction
		// index, then blockSize MAC cycles.

	case phaseWB:
		bs := e.blockSize()
		dxw := e.wb / int64(e.k)
		m := int(e.wb % int64(e.k))
		p := e.blk*int64(e.t) + dxw
		c := e.grp*int64(e.k) + int64(m)
		acc := e.acc[int(dxw)%e.t][m]
		if e.l.Bias != nil && c >= 0 && c < int64(len(e.l.Bias)) {
			acc += e.l.Bias[c]
		}
		outv := e.codec.Saturate(acc)
		if e.faultNow(FFOutReg, -1) || e.faultNow(FFOutReg, m) {
			outv = e.flip32(outv)
		}
		if p >= 0 && p < int64(e.sched.numPos) && c >= 0 && c < int64(e.sched.numCh) {
			e.out.Set(outv, e.sched.outIndex(int(p), int(c))...)
		}
		e.acc[int(dxw)%e.t][m] = 0
		e.wb++
		if e.wb >= bs*int64(e.k) {
			e.grp++
			if e.grp >= e.numGroups() {
				e.grp = 0
				e.blk++
				if e.blk >= e.numBlocks() {
					e.phase = phaseDone
					return
				}
			}
			e.phase = phaseLoad
		}
	}
}

// MemFault is a memory error: bit flips in one word of the on-chip buffer,
// present from the moment the buffer is filled (paper Sec. III-E).
type MemFault struct {
	// Weight selects the weight buffer; false selects the input buffer.
	Weight bool
	// Word is the flat element index.
	Word int
	// Bits are the flipped bit positions.
	Bits []int
}

// RunWithMemoryFaults simulates layer l with a set of memory errors in the
// on-chip buffer (and no FF fault).
func RunWithMemoryFaults(cfg *accel.Config, l *Layer, mems []MemFault) (*Outcome, error) {
	e, err := NewEngine(cfg, l, nil)
	if err != nil {
		return nil, err
	}
	e.memFaults = mems
	return e.Run()
}

// Run is the package-level convenience: simulate layer l on cfg with fault f
// (nil for golden).
func Run(cfg *accel.Config, l *Layer, f *Fault) (*Outcome, error) {
	var fc *Fault
	if f != nil {
		c := *f
		fc = &c
	}
	e, err := NewEngine(cfg, l, fc)
	if err != nil {
		return nil, err
	}
	return e.Run()
}

// GoldenCycles returns the fault-free cycle count of layer l on cfg, used by
// validation to sample fault cycles and by the speedup comparison.
func GoldenCycles(cfg *accel.Config, l *Layer) (int64, error) {
	e, err := NewEngine(cfg, l, nil)
	if err != nil {
		return 0, err
	}
	return e.goldenCycles(), nil
}

// ComputeWindow returns the [start, end) cycle range of the compute phase,
// the live window for MAC-side fault targets.
func ComputeWindow(cfg *accel.Config, l *Layer) (start, end int64, err error) {
	e, err := NewEngine(cfg, l, nil)
	if err != nil {
		return 0, 0, err
	}
	return e.fetchCycles(), e.goldenCycles(), nil
}

// FetchWindow returns the [0, end) cycle range of the CDMA fetch phase, the
// live window for before-CBUF fault targets.
func FetchWindow(cfg *accel.Config, l *Layer) (int64, error) {
	e, err := NewEngine(cfg, l, nil)
	if err != nil {
		return 0, err
	}
	return e.fetchCycles(), nil
}

// String renders a fault for diagnostics.
func (f *Fault) String() string {
	return fmt.Sprintf("%s[mac=%d] bit %d @ cycle %d", f.FF, f.Mac, f.Bit, f.Cycle)
}

package rtlsim

import (
	"fmt"

	"fidelity/internal/accel"
)

// Phase names the pipeline phase a cycle falls in.
type Phase int

const (
	// PhaseFetch is the CDMA streaming phase.
	PhaseFetch Phase = iota
	// PhaseLoad is a weight-load cycle.
	PhaseLoad
	// PhaseMAC is a multiply-accumulate cycle.
	PhaseMAC
	// PhaseWB is a write-back cycle.
	PhaseWB
	// PhaseIdle is past the end of execution.
	PhaseIdle
)

// String names the phase.
func (p Phase) String() string {
	switch p {
	case PhaseFetch:
		return "fetch"
	case PhaseLoad:
		return "load"
	case PhaseMAC:
		return "mac"
	case PhaseWB:
		return "wb"
	default:
		return "idle"
	}
}

// SiteInfo is the schedule-level meaning of one (FF, cycle) fault site: which
// loop iteration the sequencer is in at that cycle. This is pure
// scheduling/reuse-algorithm arithmetic — exactly the information the paper
// says suffices to derive software fault models, with no datapath state.
type SiteInfo struct {
	Phase Phase
	// Blk, Grp, R index the position block, channel group, and reduction
	// step (valid in load/mac/wb phases).
	Blk, Grp, R int
	// Dx is the offset within the position block (mac phase).
	Dx int
	// WB is the write-back index within the block (wb phase).
	WB int
	// BlockSize is the number of positions in this block.
	BlockSize int
}

// Locate maps an absolute cycle to its schedule coordinates for layer l on
// design cfg.
func Locate(cfg *accel.Config, l *Layer, cycle int64) (SiteInfo, error) {
	if err := cfg.Validate(); err != nil {
		return SiteInfo{}, err
	}
	s, err := l.newSchedule()
	if err != nil {
		return SiteInfo{}, err
	}
	e := Engine{l: l, sched: s, k: cfg.AtomicK, t: cfg.WeightHoldCycles}
	fc := e.fetchCycles()
	if cycle < fc {
		return SiteInfo{Phase: PhaseFetch}, nil
	}
	k, t := cfg.AtomicK, cfg.WeightHoldCycles
	groups := (s.numCh + k - 1) / k
	blocks := (s.numPos + t - 1) / t
	c := cycle - fc
	for blk := 0; blk < blocks; blk++ {
		bs := s.numPos - blk*t
		if bs > t {
			bs = t
		}
		perGroup := int64(s.numRed)*int64(1+bs) + int64(bs)*int64(k)
		for grp := 0; grp < groups; grp++ {
			if c >= perGroup {
				c -= perGroup
				continue
			}
			info := SiteInfo{Blk: blk, Grp: grp, BlockSize: bs}
			redPart := int64(s.numRed) * int64(1+bs)
			if c < redPart {
				r := int(c / int64(1+bs))
				off := int(c % int64(1+bs))
				info.R = r
				if off == 0 {
					info.Phase = PhaseLoad
				} else {
					info.Phase = PhaseMAC
					info.Dx = off - 1
				}
				return info, nil
			}
			info.Phase = PhaseWB
			info.WB = int(c - redPart)
			return info, nil
		}
	}
	return SiteInfo{Phase: PhaseIdle}, nil
}

// Position returns the output position index the site touches (mac: the
// position being multiplied; wb: the position being written).
func (si SiteInfo) Position(cfg *accel.Config) int {
	switch si.Phase {
	case PhaseMAC:
		return si.Blk*cfg.WeightHoldCycles + si.Dx
	case PhaseWB:
		return si.Blk*cfg.WeightHoldCycles + si.WB/cfg.AtomicK
	default:
		return si.Blk * cfg.WeightHoldCycles
	}
}

// Channel returns the output channel MAC m computes in this group (wb: the
// channel being written).
func (si SiteInfo) Channel(cfg *accel.Config, mac int) int {
	if si.Phase == PhaseWB {
		return si.Grp*cfg.AtomicK + si.WB%cfg.AtomicK
	}
	return si.Grp*cfg.AtomicK + mac
}

// OperandIndices resolves the input element (for the broadcast input
// register) and weight element (for MAC m's weight registers) live at the
// site. A negative input index means the operand is a padding zero.
func (si SiteInfo) OperandIndices(cfg *accel.Config, l *Layer, mac int) (inIdx, wIdx int, err error) {
	s, err := l.newSchedule()
	if err != nil {
		return 0, 0, err
	}
	p := si.Position(cfg)
	ch := si.Grp*cfg.AtomicK + mac
	inIdx = -1
	if si.Phase == PhaseMAC && p < s.numPos && si.R < s.numRed {
		inIdx = s.aIndex(p, si.R)
	}
	wIdx = -1
	if (si.Phase == PhaseLoad || si.Phase == PhaseMAC) && ch < s.numCh && si.R < s.numRed {
		wIdx = s.wIndex(si.R, ch)
	}
	return inIdx, wIdx, nil
}

// Dims exposes the schedule extents needed by validation harnesses.
func Dims(cfg *accel.Config, l *Layer) (numPos, numCh, numRed int, err error) {
	s, err := l.newSchedule()
	if err != nil {
		return 0, 0, 0, err
	}
	return s.numPos, s.numCh, s.numRed, nil
}

// OutIndexOf converts (position, channel) to the output tensor multi-index.
func OutIndexOf(l *Layer, p, c int) ([]int, error) {
	s, err := l.newSchedule()
	if err != nil {
		return nil, err
	}
	if p < 0 || p >= s.numPos || c < 0 || c >= s.numCh {
		return nil, fmt.Errorf("rtlsim: (p=%d, c=%d) outside %dx%d", p, c, s.numPos, s.numCh)
	}
	return s.outIndex(p, c), nil
}

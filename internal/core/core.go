// Package core assembles the FIdelity framework of paper Fig 3: given an
// accelerator description and a DNN workload, it derives software fault
// models (Reuse Factor Analysis → Table II), performs FF activeness analysis
// (Eq. 1), runs software fault-injection campaigns, and computes the
// Accelerator_FIT_rate (Eq. 2) — plus the validation flow of Sec. IV and the
// report renderers for every table and figure.
package core

import (
	"context"
	"fmt"

	"fidelity/internal/accel"
	"fidelity/internal/baseline"
	"fidelity/internal/campaign"
	"fidelity/internal/faultmodel"
	"fidelity/internal/fit"
	"fidelity/internal/model"
	"fidelity/internal/numerics"
	"fidelity/internal/report"
)

// Framework is a FIdelity instance bound to one accelerator design.
type Framework struct {
	Config *accel.Config
	Models []faultmodel.Model
}

// New derives the software fault models for a design and returns the bound
// framework.
func New(cfg *accel.Config) (*Framework, error) {
	models, err := faultmodel.Derive(cfg)
	if err != nil {
		return nil, err
	}
	return &Framework{Config: cfg, Models: models}, nil
}

// Analyze runs the full Fig 3 flow for one workload: build the network at
// the requested precision, inject faults per software fault model, and
// compute the FIT rate. Cancelling ctx interrupts the campaign cleanly; see
// campaign.Study for checkpoint/resume semantics.
func (f *Framework) Analyze(ctx context.Context, netName string, prec numerics.Precision, opts campaign.StudyOptions) (*campaign.StudyResult, error) {
	w, err := model.Build(netName, prec, 42)
	if err != nil {
		return nil, err
	}
	return campaign.Study(ctx, f.Config, w, opts)
}

// Validate runs the Sec. IV validation campaign on the Table III workloads.
func (f *Framework) Validate(samplesPerWorkload int, seed int64) (*campaign.ValidationReport, error) {
	ws, err := campaign.TableIIIWorkloads()
	if err != nil {
		return nil, err
	}
	return campaign.Validate(f.Config, ws, samplesPerWorkload, seed)
}

// NaiveBaseline runs the naive single-bit-flip technique of Sec. VI for
// comparison.
func (f *Framework) NaiveBaseline(netName string, prec numerics.Precision, opts baseline.Options) (*baseline.Result, error) {
	w, err := model.Build(netName, prec, 42)
	if err != nil {
		return nil, err
	}
	return baseline.Run(f.Config, w, opts)
}

// Speedup measures the Sec. VI per-injection cost comparison.
func (f *Framework) Speedup(ctx context.Context, iters int, seed int64) ([]campaign.Speedup, error) {
	ws, err := campaign.TableIIIWorkloads()
	if err != nil {
		return nil, err
	}
	return campaign.MeasureSpeedup(ctx, f.Config, ws, iters, seed)
}

// TableI renders the Reuse Factor Analysis summary (paper Table I).
func (f *Framework) TableI() *report.Table {
	t := report.NewTable("Table I: Reuse Factor Analysis summary for datapath FFs",
		"Faulty FF position", "Variable types", "RF / faulty neurons")
	t.Add("before each level of on-chip memory", "input, weight, bias",
		"all users of the value (from scheduling/reuse algorithm)")
	t.Add("between L1 on-chip memory & MAC, inside MAC", "input, weight, bias",
		"from Algorithm 1 (Reuse Factor Analysis)")
	t.Add("inside and after MAC units", "partial sum, output", "RF = 1")
	t.Add("after MAC units", "bias", "neurons using the bias (Algorithm 1)")
	return t
}

// TableII renders the derived software fault models (paper Table II).
func (f *Framework) TableII() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Table II: software fault models for %s", f.Config.Name),
		"Model", "Category", "%FF", "RF", "Software fault model")
	for _, m := range f.Models {
		rf := fmt.Sprintf("%d", m.RF)
		desc := ""
		switch {
		case m.RFAllUsers:
			rf = "all users"
			desc = "bit-flip at one value; all neurons using it recomputed"
		case m.RFAll:
			rf = "ALL"
			desc = "system failure"
		case m.ID == faultmodel.LocalControl:
			desc = "random value at one output neuron"
		case m.ID == faultmodel.OutputPSum:
			desc = "bit-flip at one output neuron / partial sum"
		default:
			desc = fmt.Sprintf("bit-flip at one value; <= %d windowed neurons recomputed", m.RF)
		}
		t.Addf("%s|%s|%.1f%%|%s|%s", m.ID, m.Cat, m.FFFrac*100, rf, desc)
	}
	return t
}

// FITChart renders a Fig 4/5-style stacked FIT chart for a set of study
// results, with the ASIL-D FF budget as the reference line.
func FITChart(title string, results []*campaign.StudyResult, protected bool) *report.BarChart {
	c := &report.BarChart{Title: title, Width: 50, RefLine: fit.FFBudget(), RefLabel: "ASIL-D FF budget"}
	for _, r := range results {
		res := r.FIT
		if protected {
			res = r.FITProtected
		}
		label := fmt.Sprintf("%s/%s", r.Workload, r.Precision)
		if r.Tolerance > 0 {
			label += fmt.Sprintf("@%g%%", r.Tolerance*100)
		}
		c.Add(label,
			report.Segment{Name: "datapath", Value: res.ByClass[accel.Datapath]},
			report.Segment{Name: "local", Value: res.ByClass[accel.LocalControl]},
			report.Segment{Name: "global", Value: res.ByClass[accel.GlobalControl]},
		)
	}
	return c
}

// MaskingTable renders a study's Prob_SWmask estimates with their Wilson
// 95% confidence intervals — the step-2 output of the Fig 3 flow.
func MaskingTable(res *campaign.StudyResult) *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Prob_SWmask for %s (%s, tol %g)", res.Workload, res.Precision, res.Tolerance),
		"Fault model", "masked", "95% CI", "n")
	for _, id := range faultmodel.AllIDs() {
		p, ok := res.Masked[id]
		if !ok {
			continue
		}
		lo, hi := p.Wilson(1.96)
		t.Addf("%v|%.4f|[%.4f, %.4f]|%d", id, p.Mean(), lo, hi, p.Trials)
	}
	return t
}

// ValidationTable renders the Sec. IV validation summary.
func ValidationTable(rep *campaign.ValidationReport) *report.Table {
	t := report.NewTable("Validation vs cycle-level golden reference (paper Sec. IV)",
		"Quantity", "Value")
	t.Addf("RTL fault injections|%d", rep.Total)
	t.Addf("fired (live FF at fault cycle)|%d", rep.Fired)
	t.Addf("non-masked cases|%d", rep.NonMasked)
	t.Addf("system time-outs (all global)|%d", rep.Timeouts)
	t.Addf("datapath cases checked|%d", rep.DatapathChecked)
	t.Addf("datapath exact matches (set+values)|%d", rep.DatapathExact)
	t.Addf("RF=1 set-only cases checked|%d", rep.SetChecked)
	t.Addf("RF=1 set matches|%d", rep.SetMatch)
	t.Addf("local-control cases checked|%d", rep.LocalChecked)
	t.Addf("local-control neuron matches|%d", rep.LocalMatch)
	t.Addf("active global-control faults|%d", rep.GlobalFired)
	t.Addf("global-control masked fraction|%.3f", rep.GlobalMaskedFrac())
	t.Addf("model mismatches|%d", len(rep.Mismatches))
	return t
}

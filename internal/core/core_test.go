package core

import (
	"context"
	"strings"
	"testing"

	"fidelity/internal/accel"
	"fidelity/internal/baseline"
	"fidelity/internal/campaign"
	"fidelity/internal/numerics"
)

func TestNewRejectsBadConfig(t *testing.T) {
	cfg := accel.NVDLASmall()
	cfg.AtomicK = 0
	if _, err := New(cfg); err == nil {
		t.Error("invalid config should fail")
	}
}

func TestFrameworkAnalyze(t *testing.T) {
	fw, err := New(accel.NVDLASmall())
	if err != nil {
		t.Fatal(err)
	}
	res, err := fw.Analyze(context.Background(), "mobilenet", numerics.FP16, campaign.StudyOptions{
		Samples: 14, Inputs: 2, Tolerance: 0.1, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FIT.Total <= 0 {
		t.Error("FIT must be positive")
	}
	if _, err := fw.Analyze(context.Background(), "vgg", numerics.FP16, campaign.StudyOptions{Samples: 1, Inputs: 1}); err == nil {
		t.Error("unknown network should fail")
	}
}

func TestFrameworkValidateSmall(t *testing.T) {
	fw, err := New(accel.NVDLASmall())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := fw.Validate(25, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DatapathExact != rep.DatapathChecked {
		t.Errorf("datapath matches %d/%d: %v", rep.DatapathExact, rep.DatapathChecked, rep.Mismatches)
	}
	s := ValidationTable(rep).String()
	if !strings.Contains(s, "RTL fault injections") {
		t.Error("validation table malformed")
	}
}

func TestFrameworkBaselineAndSpeedup(t *testing.T) {
	fw, err := New(accel.NVDLASmall())
	if err != nil {
		t.Fatal(err)
	}
	nb, err := fw.NaiveBaseline("resnet", numerics.FP16, baseline.Options{
		Samples: 10, Inputs: 1, Tolerance: 0.1, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if nb.Experiments != 10 {
		t.Errorf("experiments = %d", nb.Experiments)
	}
	sp, err := fw.Speedup(context.Background(), 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sp) != 6 {
		t.Errorf("speedup rows = %d, want 6 workloads", len(sp))
	}
}

func TestFITChart(t *testing.T) {
	fw, _ := New(accel.NVDLASmall())
	res, err := fw.Analyze(context.Background(), "rnn", numerics.FP16, campaign.StudyOptions{
		Samples: 7, Inputs: 1, Tolerance: 0.1, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := FITChart("Fig 4", []*campaign.StudyResult{res}, false)
	s := c.String()
	if !strings.Contains(s, "rnn-lite/FP16") || !strings.Contains(s, "ASIL-D") {
		t.Errorf("chart malformed:\n%s", s)
	}
	p := FITChart("Fig 6", []*campaign.StudyResult{res}, true)
	if !strings.Contains(p.String(), "rnn-lite") {
		t.Error("protected chart malformed")
	}
}

func TestTableRendering(t *testing.T) {
	fw, _ := New(accel.NVDLASmall())
	if !strings.Contains(fw.TableI().String(), "Algorithm 1") {
		t.Error("Table I content")
	}
	t2 := fw.TableII().String()
	for _, frac := range []string{"2.5%", "4.8%", "16.2%", "21.6%", "37.9%", "5.7%", "11.3%"} {
		if !strings.Contains(t2, frac) {
			t.Errorf("Table II missing %s", frac)
		}
	}
}

func TestMaskingTable(t *testing.T) {
	fw, _ := New(accel.NVDLASmall())
	res, err := fw.Analyze(context.Background(), "rnn", numerics.FP16, campaign.StudyOptions{
		Samples: 7, Inputs: 1, Tolerance: 0.1, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := MaskingTable(res).String()
	for _, want := range []string{"global-control", "output/psum", "95% CI"} {
		if !strings.Contains(s, want) {
			t.Errorf("masking table missing %q:\n%s", want, s)
		}
	}
}

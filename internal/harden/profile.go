package harden

import (
	"fmt"
	"sort"

	"fidelity/internal/dataset"
	"fidelity/internal/model"
	"fidelity/internal/nn"
)

// Envelope is one compute site's profiled activation range: the min and max
// output value observed across every golden forward pass of the profiling
// inputs (all visits merged — clamps install per site, not per visit).
type Envelope struct {
	Site string  `json:"site"`
	Lo   float32 `json:"lo"`
	Hi   float32 `json:"hi"`
}

// Profile runs the workload's golden inference over inputs 0..inputs-1 —
// the same deterministic input set a campaign with StudyOptions.Inputs =
// inputs uses — and returns every compute site's min/max activation
// envelope, sorted by site name. Profiling the exact campaign input set is
// what makes the clamps the identity on every campaign golden trace: each
// golden activation is inside its own envelope by construction.
//
// The workload must be unhardened: profiling through installed clamps would
// measure the clamped range, not the golden one.
func Profile(w *model.Workload, inputs int) ([]Envelope, error) {
	if w.Net.Hardened() {
		return nil, fmt.Errorf("harden: cannot profile a hardened network (clamps already installed)")
	}
	if inputs <= 0 {
		return nil, fmt.Errorf("harden: inputs must be positive, got %d", inputs)
	}
	env := map[string]*Envelope{}
	for idx := 0; idx < inputs; idx++ {
		x, err := dataset.Sample(w.Dataset, idx)
		if err != nil {
			return nil, err
		}
		w.Net.ForwardWithHook(x, func(site nn.Layer, _ int, op *nn.Operands) {
			s, ok := site.(nn.Site)
			if !ok {
				return
			}
			e := env[s.Name()]
			if e == nil {
				d := op.Out.Data()
				e = &Envelope{Site: s.Name(), Lo: d[0], Hi: d[0]}
				env[s.Name()] = e
			}
			for _, v := range op.Out.Data() {
				if v < e.Lo {
					e.Lo = v
				}
				if v > e.Hi {
					e.Hi = v
				}
			}
		})
	}
	if len(env) == 0 {
		return nil, fmt.Errorf("harden: workload %s has no compute sites to profile", w.Net.Name())
	}
	out := make([]Envelope, 0, len(env))
	for _, e := range env {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Site < out[j].Site })
	return out, nil
}

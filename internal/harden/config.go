package harden

import (
	"fmt"
	"sort"

	"fidelity/internal/campaign"
	"fidelity/internal/nn"
)

// Config is a complete hardening configuration: the clamp set installed in
// the forward path, the layer executions marked for duplicated execution,
// and whether global-control FFs are assumed hardened. It serializes
// canonically (Clamps sorted by site, Duplicated sorted), so its fingerprint
// is stable and can join a campaign's checkpoint identity.
type Config struct {
	// Clamps are the per-site range-restriction envelopes, sorted by site.
	Clamps []Envelope `json:"clamps,omitempty"`
	// Duplicated lists the duplicated layer executions ("site#visit",
	// sorted). Duplication is a cost model over Eq. 2, not an execution-path
	// change, so it does not affect experiment results — it still joins the
	// fingerprint because the config is one artifact.
	Duplicated []string `json:"duplicated,omitempty"`
	// ProtectGlobal assumes hardened (e.g. DICE) global-control FFs.
	ProtectGlobal bool `json:"protect_global,omitempty"`
}

// Zero reports whether the config applies no mitigation at all.
func (c *Config) Zero() bool {
	return len(c.Clamps) == 0 && len(c.Duplicated) == 0 && !c.ProtectGlobal
}

// Fingerprint returns the content digest of the canonicalized config, or ""
// for the zero config — so an unhardened campaign's checkpoint identity is
// byte-identical to one written before hardening existed. Campaigns over a
// hardened network must carry this in StudyOptions.Hardening: clamps change
// every experiment's forward pass, so checkpoints of different configs must
// never be interchangeable.
func (c *Config) Fingerprint() (string, error) {
	if c.Zero() {
		return "", nil
	}
	canon := Config{
		Clamps:        append([]Envelope(nil), c.Clamps...),
		Duplicated:    append([]string(nil), c.Duplicated...),
		ProtectGlobal: c.ProtectGlobal,
	}
	sort.Slice(canon.Clamps, func(i, j int) bool { return canon.Clamps[i].Site < canon.Clamps[j].Site })
	sort.Strings(canon.Duplicated)
	return campaign.SumJSON(canon)
}

// Apply installs the clamp set on net. Call before any forward pass of the
// hardened campaign; envelopes are read-only afterwards, so concurrent
// workers can share the network.
func (c *Config) Apply(net *nn.Network) error {
	for _, e := range c.Clamps {
		if e.Lo > e.Hi {
			return fmt.Errorf("harden: envelope for %s is inverted [%v, %v]", e.Site, e.Lo, e.Hi)
		}
		s, err := net.SiteByName(e.Site)
		if err != nil {
			return err
		}
		net.SetClamp(s, nn.Bound{Lo: e.Lo, Hi: e.Hi})
	}
	return nil
}

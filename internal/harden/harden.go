// Package harden closes the loop from resilience measurement to protection
// (ROADMAP item 4): it turns a campaign-measured FIT breakdown into a
// concrete mitigation config — Ranger-style activation range restriction,
// SentinelNN-style selective duplication of the most vulnerable layers, and
// hardened global-control FFs — and re-measures the hardened network under
// the same campaign engine, so the before/after FIT comparison rests on
// injection experiments, not on modeling alone.
//
// The three mitigation families share the Mitigation interface: each one
// extends a hardening Config from a measured campaign result. Range
// restriction installs per-site activation clamps derived from golden-trace
// min/max profiles; because the bounds contain every golden activation, the
// clamp is the identity on clean data and the hardened network's golden
// behavior — and therefore replay bit-exactness and shard determinism — is
// unchanged (DESIGN.md §11). Selective duplication ranks layer executions by
// their measured FIT contribution and re-executes the top ones redundantly,
// costed as execution-time share through fit.PlanDuplication. The
// recommendation search explores duplication fraction × global-control
// protection for the cheapest config meeting the ASIL-D FF budget.
package harden

import (
	"fmt"
	"sort"

	"fidelity/internal/accel"
	"fidelity/internal/campaign"
	"fidelity/internal/fit"
)

// Mitigation is one protection family: given the accelerator description
// and a measured campaign result, it extends a hardening config with its own
// protection choices. Implementations never mutate base's slices.
type Mitigation interface {
	// Name identifies the mitigation family.
	Name() string
	// Plan returns base extended with this family's choices, derived from
	// the measured study.
	Plan(acfg *accel.Config, study *campaign.StudyResult, base Config) (Config, error)
}

// RangeRestriction installs the profiled activation envelopes as per-site
// clamps (Ranger-style). Its FIT effect is not modeled: the hardened
// campaign re-run measures it directly, as higher Prob_SWmask.
type RangeRestriction struct {
	// Envelopes are the golden-trace min/max profiles (see Profile).
	Envelopes []Envelope
}

// Name implements Mitigation.
func (RangeRestriction) Name() string { return "range-restriction" }

// Plan implements Mitigation. The study is unused: clamps are derived from
// the golden profile, not from injection outcomes.
func (m RangeRestriction) Plan(_ *accel.Config, _ *campaign.StudyResult, base Config) (Config, error) {
	clamps := append([]Envelope(nil), m.Envelopes...)
	sort.Slice(clamps, func(i, j int) bool { return clamps[i].Site < clamps[j].Site })
	for _, e := range clamps {
		if e.Lo > e.Hi {
			return base, fmt.Errorf("harden: envelope for %s is inverted [%v, %v]", e.Site, e.Lo, e.Hi)
		}
	}
	base.Clamps = clamps
	return base, nil
}

// SelectiveDuplication duplicates the layer executions with the highest
// measured FIT contribution until the residual fits Budget, ranking by
// FIT-removed per duplicated-time-share (SentinelNN-style selective
// protection, driven by measured sensitivity per Salami et al.).
type SelectiveDuplication struct {
	// Budget is the FIT target (0 = the area-apportioned ASIL-D FF budget).
	Budget float64
	// ProtectGlobal assumes hardened global-control FFs; without it the
	// global-control floor usually exceeds any ASIL-D-class budget.
	ProtectGlobal bool
}

// Name implements Mitigation.
func (SelectiveDuplication) Name() string { return "selective-duplication" }

// Plan implements Mitigation.
func (m SelectiveDuplication) Plan(acfg *accel.Config, study *campaign.StudyResult, base Config) (Config, error) {
	budget := m.Budget
	if budget <= 0 {
		budget = fit.FFBudget()
	}
	plan, err := fit.PlanDuplication(acfg, study.RawPerFF, study.Layers, budget, m.ProtectGlobal)
	if err != nil {
		return base, err
	}
	base.Duplicated = plan.Duplicated()
	base.ProtectGlobal = m.ProtectGlobal
	return base, nil
}

// RecommendationSearch explores protection configs — global-control
// protection on/off crossed with the duplication fraction the greedy planner
// needs under each — and keeps the cheapest one meeting Budget. Hardware
// cost order: duplication time share first, hardened global-control FFs
// second; so the search tries the cheaper no-global-protection variant
// first and only escalates when it cannot meet the budget.
type RecommendationSearch struct {
	// Budget is the FIT target (0 = the area-apportioned ASIL-D FF budget).
	Budget float64
}

// Name implements Mitigation.
func (RecommendationSearch) Name() string { return "recommendation-search" }

// Plan implements Mitigation. When no explored config meets the budget, the
// most protective one (global protection plus full duplication) is returned
// with its residual; the caller sees Meets=false in the final FIT check.
func (m RecommendationSearch) Plan(acfg *accel.Config, study *campaign.StudyResult, base Config) (Config, error) {
	budget := m.Budget
	if budget <= 0 {
		budget = fit.FFBudget()
	}
	best := base
	found := false
	bestShare := 0.0
	for _, gc := range []bool{false, true} {
		plan, err := fit.PlanDuplication(acfg, study.RawPerFF, study.Layers, budget, gc)
		if err != nil {
			return base, err
		}
		cand := base
		cand.Duplicated = plan.Duplicated()
		cand.ProtectGlobal = gc
		if plan.Meets && (!found || plan.DupTimeShare < bestShare) {
			best, found, bestShare = cand, true, plan.DupTimeShare
		}
		if !found {
			// Track the most protective fallback so a hopeless budget still
			// yields a concrete (if insufficient) recommendation.
			best = cand
		}
	}
	return best, nil
}

package harden

import (
	"context"
	"fmt"

	"fidelity/internal/accel"
	"fidelity/internal/campaign"
	"fidelity/internal/fit"
	"fidelity/internal/model"
	"fidelity/internal/numerics"
	"fidelity/internal/telemetry"
)

// workloadSeed matches core.Framework.Analyze, so the hardened pipeline
// measures the same deterministic networks as every other campaign entry
// point.
const workloadSeed = 42

// Options configures the closed hardening loop.
type Options struct {
	// Net names the zoo workload; Precision its datapath format.
	Net       string
	Precision numerics.Precision
	// Samples, Inputs, Tolerance, Seed, Workers configure both campaigns
	// (campaign.StudyOptions semantics). The baseline and hardened runs use
	// identical options except for the hardening fingerprint.
	Samples   int
	Inputs    int
	Tolerance float64
	Seed      int64
	Workers   int
	// Budget is the FIT target (0 = the area-apportioned ASIL-D FF budget,
	// fit.FFBudget()).
	Budget float64
	// Telemetry, when non-nil, collects both campaigns' counters plus the
	// harden block (clamp activity, duplicated-site count).
	Telemetry *telemetry.Collector
}

// FITSummary is one campaign's FIT view in the hardening report.
type FITSummary struct {
	// FIT is the Eq. 2 total; FITGlobalProtected assumes hardened
	// global-control FFs (paper Fig 6).
	FIT                float64 `json:"fit"`
	FITGlobalProtected float64 `json:"fit_global_protected"`
	// Experiments counts the campaign's injection runs.
	Experiments int `json:"experiments"`
}

// Report is the before/after hardening report `fidelity harden` emits as
// JSON.
type Report struct {
	Workload  string  `json:"workload"`
	Precision string  `json:"precision"`
	BudgetFIT float64 `json:"budget_fit"`
	// Config is the recommended mitigation config; Fingerprint its content
	// digest (the hardened campaign's checkpoint-identity component).
	Config      Config `json:"config"`
	Fingerprint string `json:"fingerprint"`
	// Before measures the unhardened network; After re-measures it with the
	// clamps installed.
	Before FITSummary `json:"before"`
	After  FITSummary `json:"after"`
	// HardenedFIT is the final residual after the full config: measured
	// clamp effect, modeled duplication, and global-control protection when
	// the config includes it.
	HardenedFIT float64 `json:"hardened_fit"`
	// DupTimeShare is the execution-time share the duplicated layers re-run.
	DupTimeShare float64 `json:"duplicated_time_share"`
	// MeetsASILD reports whether HardenedFIT fits the budget-equivalent
	// ASIL-D check (fit.MeetsASILD when BudgetFIT is the FF budget).
	MeetsASILD bool `json:"meets_asil_d"`
	// Partial marks a degraded run: a shard of either campaign exhausted
	// its failure budget.
	Partial bool `json:"partial,omitempty"`
}

// Run executes the closed hardening loop: measure the unhardened network
// per layer, profile its golden activation envelopes, install the clamps,
// re-measure under the identical campaign (same seed and shard structure,
// distinct checkpoint identity), then search duplication × global-control
// protection for the cheapest config meeting the budget. Both campaigns are
// shard-deterministic, so the whole report is a pure function of
// (accelerator config, Options).
func Run(ctx context.Context, acfg *accel.Config, opts Options) (*Report, error) {
	if opts.Budget <= 0 {
		opts.Budget = fit.FFBudget()
	}
	base := campaign.StudyOptions{
		Samples:   opts.Samples,
		Inputs:    opts.Inputs,
		Tolerance: opts.Tolerance,
		Seed:      opts.Seed,
		Workers:   opts.Workers,
		PerLayer:  true, // duplication ranks layer executions, so Eq. 2 needs per-layer Prob_SWmask
		Telemetry: opts.Telemetry,
	}

	w, err := model.Build(opts.Net, opts.Precision, workloadSeed)
	if err != nil {
		return nil, err
	}
	baseline, err := campaign.Study(ctx, acfg, w, base)
	if err != nil {
		return nil, err
	}

	prof, err := Profile(w, opts.Inputs)
	if err != nil {
		return nil, err
	}
	cfg, err := RangeRestriction{Envelopes: prof}.Plan(acfg, baseline, Config{})
	if err != nil {
		return nil, err
	}

	// Re-measure on a freshly built copy of the workload with the clamps
	// installed. The fingerprint at this point covers exactly the
	// forward-path-changing part of the config (the clamp set), giving the
	// hardened campaign its own checkpoint identity.
	hw, err := model.Build(opts.Net, opts.Precision, workloadSeed)
	if err != nil {
		return nil, err
	}
	if err := cfg.Apply(hw.Net); err != nil {
		return nil, err
	}
	hardenedOpts := base
	if hardenedOpts.Hardening, err = cfg.Fingerprint(); err != nil {
		return nil, err
	}
	clamped, err := campaign.Study(ctx, acfg, hw, hardenedOpts)
	if err != nil {
		return nil, err
	}

	// Search duplication × global-control protection on the post-clamp
	// measurement.
	cfg, err = RecommendationSearch{Budget: opts.Budget}.Plan(acfg, clamped, cfg)
	if err != nil {
		return nil, err
	}
	if opts.Telemetry != nil {
		opts.Telemetry.SetDuplicatedSites(len(cfg.Duplicated))
	}

	dup := make(map[string]bool, len(cfg.Duplicated))
	for _, l := range cfg.Duplicated {
		dup[l] = true
	}
	layers := fit.DuplicateLayers(clamped.Layers, dup)
	var hardened *fit.Result
	if cfg.ProtectGlobal {
		hardened, err = fit.ComputeProtected(acfg, clamped.RawPerFF, layers)
	} else {
		hardened, err = fit.Compute(acfg, clamped.RawPerFF, layers)
	}
	if err != nil {
		return nil, err
	}

	rep := &Report{
		Workload:  opts.Net,
		Precision: opts.Precision.String(),
		BudgetFIT: opts.Budget,
		Config:    cfg,
		Before: FITSummary{
			FIT:                baseline.FIT.Total,
			FITGlobalProtected: baseline.FITProtected.Total,
			Experiments:        baseline.Experiments,
		},
		After: FITSummary{
			FIT:                clamped.FIT.Total,
			FITGlobalProtected: clamped.FITProtected.Total,
			Experiments:        clamped.Experiments,
		},
		HardenedFIT: hardened.Total,
		// With the default budget this is exactly fit.MeetsASILD(hardened);
		// a custom budget substitutes its own threshold.
		MeetsASILD: hardened.Total < opts.Budget,
		Partial:    baseline.Partial || clamped.Partial,
	}
	if rep.Fingerprint, err = cfg.Fingerprint(); err != nil {
		return nil, err
	}
	var totalTime float64
	for _, l := range clamped.Layers {
		totalTime += l.ExecTime
	}
	if totalTime > 0 {
		for _, l := range clamped.Layers {
			if dup[l.Layer] {
				rep.DupTimeShare += l.ExecTime / totalTime
			}
		}
	}
	if rep.Partial {
		return rep, fmt.Errorf("harden: partial result (a shard exhausted its failure budget)")
	}
	return rep, nil
}

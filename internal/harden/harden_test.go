package harden

import (
	"context"
	"encoding/json"
	"errors"
	"path/filepath"
	"testing"
	"time"

	"fidelity/internal/accel"
	"fidelity/internal/campaign"
	"fidelity/internal/dataset"
	"fidelity/internal/fit"
	"fidelity/internal/model"
	"fidelity/internal/nn"
	"fidelity/internal/numerics"
	"fidelity/internal/telemetry"
)

// buildWorkload returns a fresh deterministic zoo workload.
func buildWorkload(t *testing.T, name string) *model.Workload {
	t.Helper()
	w, err := model.Build(name, numerics.FP16, 42)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// hardenedWorkload profiles w's golden envelopes over the campaign input
// set and returns a fresh copy with the clamps installed, plus the config.
func hardenedWorkload(t *testing.T, name string, inputs int) (*model.Workload, Config) {
	t.Helper()
	w := buildWorkload(t, name)
	prof, err := Profile(w, inputs)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := RangeRestriction{Envelopes: prof}.Plan(nil, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	hw := buildWorkload(t, name)
	if err := cfg.Apply(hw.Net); err != nil {
		t.Fatal(err)
	}
	return hw, cfg
}

// TestProfileEnvelopeIdentity is the fixed-point property the whole design
// rests on: clamps derived from golden envelopes are the identity on golden
// forward passes, so the hardened network's clean behavior is bit-identical
// to the unhardened one.
func TestProfileEnvelopeIdentity(t *testing.T) {
	const inputs = 2
	for _, name := range []string{"mobilenet", "inception"} {
		plain := buildWorkload(t, name)
		hw, cfg := hardenedWorkload(t, name, inputs)
		if !hw.Net.Hardened() {
			t.Fatalf("%s: clamps did not install", name)
		}
		if len(cfg.Clamps) == 0 {
			t.Fatalf("%s: empty clamp set", name)
		}
		for idx := 0; idx < inputs; idx++ {
			x, err := dataset.Sample(plain.Dataset, idx)
			if err != nil {
				t.Fatal(err)
			}
			want := plain.Net.Forward(x).Data()
			got := hw.Net.Forward(x).Data()
			if len(want) != len(got) {
				t.Fatalf("%s input %d: output sizes differ", name, idx)
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("%s input %d: hardened golden differs at %d: %v != %v",
						name, idx, i, got[i], want[i])
				}
			}
		}
	}
}

// TestClampSaturation: a deliberately shrunken envelope must saturate
// out-of-range values and count them, and every output value must land
// inside the bound.
func TestClampSaturation(t *testing.T) {
	w := buildWorkload(t, "mobilenet")
	x, err := dataset.Sample(w.Dataset, 0)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := Profile(w, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Halve the first site's envelope so golden values saturate.
	tight := prof[0]
	tight.Lo, tight.Hi = tight.Lo/2, tight.Hi/2
	hw := buildWorkload(t, "mobilenet")
	if err := (&Config{Clamps: []Envelope{tight}}).Apply(hw.Net); err != nil {
		t.Fatal(err)
	}
	ctx := nn.NewContext(nil)
	hw.Net.ForwardWithContext(x, ctx)
	hs := ctx.HardenStats()
	if hs.ClampApplications == 0 {
		t.Fatal("clamped site executed but ClampApplications == 0")
	}
	if hs.Saturated == 0 {
		t.Fatal("shrunken envelope saturated nothing — profile range was not exercised")
	}
}

// TestConfigFingerprint: zero config is the empty fingerprint (legacy
// checkpoint compatibility); non-zero configs digest canonically
// (order-insensitive) and every field participates.
func TestConfigFingerprint(t *testing.T) {
	var zero Config
	fp, err := zero.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fp != "" {
		t.Fatalf("zero config fingerprint = %q, want empty", fp)
	}

	a := Config{Clamps: []Envelope{{Site: "a", Lo: -1, Hi: 1}, {Site: "b", Lo: 0, Hi: 2}}}
	b := Config{Clamps: []Envelope{{Site: "b", Lo: 0, Hi: 2}, {Site: "a", Lo: -1, Hi: 1}}}
	fa, err := a.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	fb, err := b.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fa == "" || fa != fb {
		t.Fatalf("clamp order changed the fingerprint: %q vs %q", fa, fb)
	}
	c := a
	c.ProtectGlobal = true
	fc, err := c.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fc == fa {
		t.Fatal("ProtectGlobal did not change the fingerprint")
	}
	d := a
	d.Duplicated = []string{"conv#0"}
	fd, err := d.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fd == fa || fd == fc {
		t.Fatal("Duplicated did not change the fingerprint")
	}
}

// TestHardenedCampaignWorkerDeterminism: the hardened campaign's StudyResult
// must be byte-identical across {1, 2, 4} workers and with replay on vs off
// — clamps live inside the replay-aware forward path, so none of the
// engine's determinism contracts may erode. Run with -race.
func TestHardenedCampaignWorkerDeterminism(t *testing.T) {
	cfg := accel.NVDLASmall()
	hw, hcfg := hardenedWorkload(t, "mobilenet", 2)
	fp, err := hcfg.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	base := campaign.StudyOptions{
		Samples: 60, Inputs: 2, Tolerance: 0.1, Seed: 9, Hardening: fp,
	}
	run := func(workers int, noReplay bool) []byte {
		opts := base
		opts.Workers = workers
		opts.DisableReplay = noReplay
		res, err := campaign.Study(context.Background(), cfg, hw, opts)
		if err != nil {
			t.Fatalf("workers=%d replay=%v: %v", workers, !noReplay, err)
		}
		enc, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return enc
	}
	ref := run(1, false)
	for _, workers := range []int{2, 4} {
		if got := run(workers, false); string(got) != string(ref) {
			t.Errorf("workers=%d: hardened StudyResult bytes differ from workers=1", workers)
		}
	}
	if got := run(4, true); string(got) != string(ref) {
		t.Error("replay off: hardened StudyResult bytes differ from replay on")
	}
}

// TestHardenedInterruptResume: a hardened campaign interrupted mid-flight
// and resumed from its checkpoint reproduces the uninterrupted result
// byte-for-byte, and its checkpoint carries the hardening fingerprint so an
// unhardened campaign refuses to resume from it (and vice versa).
func TestHardenedInterruptResume(t *testing.T) {
	cfg := accel.NVDLASmall()
	hw, hcfg := hardenedWorkload(t, "mobilenet", 2)
	fp, err := hcfg.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	base := campaign.StudyOptions{
		Samples: 240, Inputs: 2, Tolerance: 0.1, Seed: 11, Workers: 4, Hardening: fp,
	}
	baseline, err := campaign.Study(context.Background(), cfg, hw, base)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(baseline)
	if err != nil {
		t.Fatal(err)
	}

	ckptPath := filepath.Join(t.TempDir(), "harden.checkpoint.json")
	tel := telemetry.New()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stop := make(chan struct{})
	go func() {
		defer cancel()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if tel.Experiments() >= 150 {
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	opts := base
	opts.Telemetry = tel
	opts.CheckpointPath = ckptPath
	_, err = campaign.Study(ctx, cfg, hw, opts)
	close(stop)
	var intr *campaign.Interrupted
	if !errors.As(err, &intr) {
		t.Fatalf("interrupted hardened study returned %v, want *Interrupted", err)
	}
	cp := intr.Checkpoint
	if cp.Hardening != fp {
		t.Fatalf("checkpoint hardening = %q, want %q", cp.Hardening, fp)
	}

	// The hardened checkpoint must not match an unhardened campaign (or a
	// differently hardened one), and an unhardened checkpoint must not match
	// the hardened options.
	plain := base
	plain.Hardening = ""
	if cp.Matches(cfg, hw, plain, cp.Shards) {
		t.Error("hardened checkpoint matched unhardened options")
	}
	other := base
	other.Hardening = "not-the-fingerprint"
	if cp.Matches(cfg, hw, other, cp.Shards) {
		t.Error("hardened checkpoint matched a different hardening fingerprint")
	}
	if !cp.Matches(cfg, hw, base, cp.Shards) {
		t.Error("hardened checkpoint did not match its own options")
	}

	resume := base
	resume.Resume = cp
	res, err := campaign.Study(context.Background(), cfg, hw, resume)
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Error("resumed hardened StudyResult bytes differ from uninterrupted run")
	}
}

// TestHardenTelemetry: hardened campaigns must surface the harden snapshot
// block (clamp applications; saturations only under injected faults), and
// unhardened campaigns must not.
func TestHardenTelemetry(t *testing.T) {
	cfg := accel.NVDLASmall()
	hw, _ := hardenedWorkload(t, "mobilenet", 1)
	tel := telemetry.New()
	_, err := campaign.Study(context.Background(), cfg, hw, campaign.StudyOptions{
		Samples: 20, Inputs: 1, Tolerance: 0.1, Seed: 5, Workers: 2, Telemetry: tel,
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := tel.Snapshot()
	if snap.Harden == nil {
		t.Fatal("hardened campaign snapshot has no harden block")
	}
	if snap.Harden.ClampApplications == 0 {
		t.Error("hardened campaign recorded no clamp applications")
	}

	plainTel := telemetry.New()
	w := buildWorkload(t, "mobilenet")
	_, err = campaign.Study(context.Background(), cfg, w, campaign.StudyOptions{
		Samples: 20, Inputs: 1, Tolerance: 0.1, Seed: 5, Workers: 2, Telemetry: plainTel,
	})
	if err != nil {
		t.Fatal(err)
	}
	if plainTel.Snapshot().Harden != nil {
		t.Error("unhardened campaign snapshot carries a harden block")
	}
}

// TestRecommendationSearch: the search must include global-control
// protection exactly when the measured global floor exceeds the budget, and
// return a config whose modeled residual meets the budget when one exists.
func TestRecommendationSearch(t *testing.T) {
	cfg := accel.NVDLASmall()
	hw, hcfg := hardenedWorkload(t, "mobilenet", 1)
	fp, err := hcfg.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	study, err := campaign.Study(context.Background(), cfg, hw, campaign.StudyOptions{
		Samples: 12, Inputs: 1, Tolerance: 0.1, Seed: 7, Workers: 2, PerLayer: true, Hardening: fp,
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := RecommendationSearch{}.Plan(cfg, study, hcfg)
	if err != nil {
		t.Fatal(err)
	}
	if !out.ProtectGlobal {
		t.Error("recommendation left global-control FFs unprotected, but their floor exceeds the FF budget")
	}
	dup := make(map[string]bool, len(out.Duplicated))
	for _, l := range out.Duplicated {
		dup[l] = true
	}
	res, err := fit.ComputeProtected(cfg, study.RawPerFF, fit.DuplicateLayers(study.Layers, dup))
	if err != nil {
		t.Fatal(err)
	}
	if !fit.MeetsASILD(res) {
		t.Errorf("recommended config's modeled residual %.4f misses the FF budget %.4f", res.Total, fit.FFBudget())
	}
}

// TestPipelineRun: the closed loop end to end on the cheapest workload, with
// determinism across repeat runs.
func TestPipelineRun(t *testing.T) {
	opts := Options{
		Net: "mobilenet", Precision: numerics.FP16,
		Samples: 8, Inputs: 1, Tolerance: 0.1, Seed: 3, Workers: 2,
	}
	rep, err := Run(context.Background(), accel.NVDLASmall(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Before.Experiments == 0 || rep.After.Experiments == 0 {
		t.Fatal("pipeline ran no experiments")
	}
	if rep.Fingerprint == "" {
		t.Error("pipeline produced an empty hardening fingerprint")
	}
	if len(rep.Config.Clamps) == 0 {
		t.Error("pipeline recommended no clamps")
	}
	if rep.HardenedFIT > rep.After.FIT {
		t.Errorf("hardened FIT %.4f exceeds the measured clamped FIT %.4f", rep.HardenedFIT, rep.After.FIT)
	}
	if !rep.MeetsASILD {
		t.Errorf("recommended config misses the budget: hardened FIT %.4f vs %.4f", rep.HardenedFIT, rep.BudgetFIT)
	}

	again, err := Run(context.Background(), accel.NVDLASmall(), opts)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(rep)
	b, _ := json.Marshal(again)
	if string(a) != string(b) {
		t.Error("pipeline report is not deterministic across identical runs")
	}
}

package numerics

import (
	"fmt"
	"math"
)

// Quantizer maps real values to signed fixed-point codes using a symmetric
// affine scheme (zero point 0), matching TensorFlow's symmetric quantization
// that the paper uses to train its INT16/INT8 networks. A Quantizer for n
// bits maps f to clamp(round(f/Scale), -2^(n-1), 2^(n-1)-1).
type Quantizer struct {
	// Scale is the real value of one least-significant code step.
	Scale float32
	// Bits is the code width: 16 for INT16, 8 for INT8.
	Bits int
}

// NewQuantizer builds a symmetric quantizer covering [-maxAbs, +maxAbs] with
// the given code width. maxAbs must be positive and bits must be 8 or 16.
func NewQuantizer(maxAbs float32, bits int) (Quantizer, error) {
	if maxAbs <= 0 || math.IsNaN(float64(maxAbs)) || math.IsInf(float64(maxAbs), 0) {
		return Quantizer{}, fmt.Errorf("numerics: quantizer range must be positive and finite, got %v", maxAbs)
	}
	if bits != 8 && bits != 16 {
		return Quantizer{}, fmt.Errorf("numerics: quantizer width must be 8 or 16 bits, got %d", bits)
	}
	qmax := float32(int32(1)<<(bits-1)) - 1
	return Quantizer{Scale: maxAbs / qmax, Bits: bits}, nil
}

// MustQuantizer is NewQuantizer for statically known-good parameters.
func MustQuantizer(maxAbs float32, bits int) Quantizer {
	q, err := NewQuantizer(maxAbs, bits)
	if err != nil {
		panic(err)
	}
	return q
}

// ForPrecision builds a quantizer for p (INT16 or INT8) over [-maxAbs, maxAbs].
func ForPrecision(maxAbs float32, p Precision) (Quantizer, error) {
	switch p {
	case INT16, INT8:
		return NewQuantizer(maxAbs, p.Bits())
	default:
		return Quantizer{}, fmt.Errorf("numerics: precision %v is not quantized", p)
	}
}

// qlimits returns the inclusive code range.
func (q Quantizer) qlimits() (lo, hi int32) {
	hi = int32(1)<<(q.Bits-1) - 1
	return -hi - 1, hi
}

// Quantize maps a real value to its code, saturating at the code range. NaN
// quantizes to 0, mirroring hardware converters that flush invalid inputs.
func (q Quantizer) Quantize(f float32) int32 {
	if q.Scale == 0 || math.IsNaN(float64(f)) {
		return 0
	}
	lo, hi := q.qlimits()
	v := float64(f) / float64(q.Scale)
	r := math.RoundToEven(v)
	switch {
	case r < float64(lo):
		return lo
	case r > float64(hi):
		return hi
	default:
		return int32(r)
	}
}

// Dequantize maps a code back to its real value.
func (q Quantizer) Dequantize(code int32) float32 {
	return float32(code) * q.Scale
}

// Round passes f through the quantized encoding and back, modeling a value
// stored in an INT16/INT8 datapath register.
func (q Quantizer) Round(f float32) float32 {
	return q.Dequantize(q.Quantize(f))
}

// Encode returns the two's-complement bit pattern of the code for f, masked
// to q.Bits bits. This is the flip-flop content for the stored value.
func (q Quantizer) Encode(f float32) uint32 {
	code := q.Quantize(f)
	mask := uint32(1)<<uint(q.Bits) - 1
	return uint32(code) & mask
}

// Decode interprets a q.Bits-wide two's-complement bit pattern as a real
// value.
func (q Quantizer) Decode(bits uint32) float32 {
	shift := 32 - uint(q.Bits)
	code := int32(bits<<shift) >> shift
	return q.Dequantize(code)
}

// FlipBit returns the real value obtained by flipping bit i of the stored
// encoding of f (bit q.Bits-1 is the sign bit).
func (q Quantizer) FlipBit(f float32, i int) float32 {
	enc := q.Encode(f)
	enc ^= 1 << uint(i%q.Bits)
	return q.Decode(enc)
}

// MaxAbs returns the largest representable magnitude.
func (q Quantizer) MaxAbs() float32 {
	_, hi := q.qlimits()
	return q.Dequantize(hi)
}

package numerics

import (
	"fmt"
	"math"
)

// Codec encapsulates the storage encoding of one datapath precision so that
// fault models can flip bits of a stored value without caring which format
// the accelerator is configured for. For quantized precisions the codec
// carries the layer's calibrated quantizer.
type Codec struct {
	prec  Precision
	quant Quantizer // valid when prec is INT16/INT8
}

// NewCodec builds a codec for p. maxAbs calibrates the quantizer range for
// INT16/INT8 and is ignored for floating-point precisions.
func NewCodec(p Precision, maxAbs float32) (Codec, error) {
	c := Codec{prec: p}
	switch p {
	case FP32, FP16:
		return c, nil
	case INT16, INT8:
		q, err := ForPrecision(maxAbs, p)
		if err != nil {
			return Codec{}, err
		}
		c.quant = q
		return c, nil
	default:
		return Codec{}, fmt.Errorf("numerics: unsupported precision %v", p)
	}
}

// MustCodec is NewCodec for statically known-good parameters.
func MustCodec(p Precision, maxAbs float32) Codec {
	c, err := NewCodec(p, maxAbs)
	if err != nil {
		panic(err)
	}
	return c
}

// Precision returns the codec's precision.
func (c Codec) Precision() Precision { return c.prec }

// Quantizer returns the calibrated quantizer for INT16/INT8 codecs; for
// floating-point codecs it returns the zero Quantizer.
func (c Codec) Quantizer() Quantizer { return c.quant }

// Bits returns the stored width of one value.
func (c Codec) Bits() int { return c.prec.Bits() }

// Round stores f in the codec's format and reads it back, i.e. the value as
// observed after passing through one datapath register of this precision.
func (c Codec) Round(f float32) float32 {
	switch c.prec {
	case FP32:
		return f
	case FP16:
		return RoundHalf(f)
	default:
		return c.quant.Round(f)
	}
}

// FlipBit returns the value read back after flipping bit i of the stored
// encoding of f. Bit 0 is the LSB; bit Bits()-1 is the sign bit.
func (c Codec) FlipBit(f float32, i int) float32 {
	switch c.prec {
	case FP32:
		return math.Float32frombits(math.Float32bits(f) ^ 1<<uint(i&31))
	case FP16:
		return HalfFromFloat32(f).FlipBit(i).Float32()
	default:
		return c.quant.FlipBit(f, i)
	}
}

// Encode returns the stored bit pattern of f, masked to Bits() bits.
func (c Codec) Encode(f float32) uint32 {
	switch c.prec {
	case FP32:
		return math.Float32bits(f)
	case FP16:
		return uint32(HalfFromFloat32(f))
	default:
		return c.quant.Encode(f)
	}
}

// Decode interprets a stored bit pattern as a real value.
func (c Codec) Decode(bits uint32) float32 {
	switch c.prec {
	case FP32:
		return math.Float32frombits(bits)
	case FP16:
		return Half(bits & 0xffff).Float32()
	default:
		return c.quant.Decode(bits)
	}
}

// Mul multiplies a and b as the configured multiplier hardware would.
func (c Codec) Mul(a, b float32) float32 {
	switch c.prec {
	case FP32:
		return a * b
	case FP16:
		return HalfMul(a, b)
	default:
		// Fixed-point multipliers produce a double-width exact product that
		// is accumulated at higher precision; no rounding at the multiplier.
		return c.quant.Round(a) * c.quant.Round(b)
	}
}

// MulPre multiplies two operands that are already stored in the codec's
// format (i.e. Round has been applied), skipping the operand rounding that
// Mul performs. MulPre(Round(a), Round(b)) == Mul(a, b) for every codec;
// layer fast paths pre-round their operand buffers once and use MulPre in
// the inner loop.
func (c Codec) MulPre(a, b float32) float32 {
	if c.prec == FP16 {
		return RoundHalf(a * b)
	}
	return a * b
}

// RoundSlice returns a copy of data with every element passed through the
// codec's storage rounding.
func (c Codec) RoundSlice(data []float32) []float32 {
	out := make([]float32, len(data))
	if c.prec == FP32 {
		copy(out, data)
		return out
	}
	for i, v := range data {
		out[i] = c.Round(v)
	}
	return out
}

// Saturate clamps f to the representable range of the codec, modeling the
// converter at the accumulator output. Floating-point codecs clamp to the
// FP16 range (overflow becomes ±Inf in real FP16 hardware, but NVDLA's SDP
// converter saturates; we saturate to keep outputs finite and comparable).
func (c Codec) Saturate(f float32) float32 {
	switch c.prec {
	case FP32:
		return f
	case FP16:
		if f > HalfMax.Float32() {
			return HalfMax.Float32()
		}
		if f < HalfMin.Float32() {
			return HalfMin.Float32()
		}
		return RoundHalf(f)
	default:
		m := c.quant.MaxAbs()
		if f > m {
			return m
		}
		if f < -m-c.quant.Scale {
			return -m - c.quant.Scale
		}
		return c.quant.Round(f)
	}
}

// Package numerics provides the bit-accurate number formats used by the
// simulated accelerator datapath: IEEE-754 binary16 ("half") floating point
// and affine-quantized INT16/INT8 fixed point.
//
// Fault injection operates on the *stored encoding* of a value (the bits that
// would actually sit in a hardware flip-flop), so every format exposes its
// encoding and a bit-flip primitive. This is the property that distinguishes
// FIdelity-style injection from naive "perturb a float64" injection: an
// exponent-bit flip in FP16 and a sign-bit flip in INT8 have very different
// perturbation distributions, and those distributions drive the paper's key
// results (4) and (5).
package numerics

import "math"

// Half is an IEEE-754 binary16 value stored in its 16-bit encoding:
// 1 sign bit, 5 exponent bits (bias 15), 10 mantissa bits.
type Half uint16

// Canonical Half constants.
const (
	HalfPosInf  Half = 0x7c00
	HalfNegInf  Half = 0xfc00
	HalfNaN     Half = 0x7e00
	HalfZero    Half = 0x0000
	HalfNegZero Half = 0x8000
	HalfMax     Half = 0x7bff // 65504
	HalfMin     Half = 0xfbff // -65504

	halfExpBias  = 15
	halfExpMask  = 0x7c00
	halfManMask  = 0x03ff
	halfSignMask = 0x8000
)

// HalfBits is the number of bits in the Half encoding.
const HalfBits = 16

// HalfFromFloat32 converts f to the nearest Half using round-to-nearest-even,
// the rounding mode used by NVDLA's FP16 datapath. Values whose magnitude
// exceeds the Half range become infinities; NaN payloads are canonicalized.
func HalfFromFloat32(f float32) Half {
	b := math.Float32bits(f)
	sign := Half(b>>16) & halfSignMask
	exp := int32(b>>23) & 0xff
	man := b & 0x7fffff

	switch {
	case exp == 0xff: // Inf or NaN
		if man != 0 {
			return sign | HalfNaN
		}
		return sign | HalfPosInf
	case exp == 0 && man == 0: // signed zero
		return sign
	}

	// Unbiased exponent of the float32 value.
	e := exp - 127
	switch {
	case e > 15: // overflow to infinity
		return sign | HalfPosInf
	case e >= -14: // normal half range
		// 10-bit mantissa with round-to-nearest-even on the truncated 13 bits.
		he := uint32(e+halfExpBias) << 10
		hm := man >> 13
		rem := man & 0x1fff
		if rem > 0x1000 || (rem == 0x1000 && hm&1 == 1) {
			hm++
			if hm == 0x400 { // mantissa carry: bump exponent
				hm = 0
				he += 1 << 10
				if he >= halfExpMask {
					return sign | HalfPosInf
				}
			}
		}
		return sign | Half(he) | Half(hm)
	case e >= -24: // subnormal half range
		// Implicit leading 1 becomes explicit; shift right by (-14 - e).
		m := man | 0x800000
		shift := uint32(-14 - e + 13)
		hm := m >> shift
		rem := m & ((1 << shift) - 1)
		half := uint32(1) << (shift - 1)
		if rem > half || (rem == half && hm&1 == 1) {
			hm++ // may carry into the normal range, which is fine: 0x0400 == smallest normal
		}
		return sign | Half(hm)
	default: // underflow to signed zero
		return sign
	}
}

// Float32 converts h to float32 exactly (every Half is representable).
func (h Half) Float32() float32 {
	sign := uint32(h&halfSignMask) << 16
	exp := uint32(h&halfExpMask) >> 10
	man := uint32(h & halfManMask)

	switch {
	case exp == 0x1f: // Inf/NaN
		if man != 0 {
			return math.Float32frombits(sign | 0x7fc00000 | man<<13)
		}
		return math.Float32frombits(sign | 0x7f800000)
	case exp == 0:
		if man == 0 {
			return math.Float32frombits(sign)
		}
		// Subnormal: normalize.
		e := uint32(127 - 14)
		for man&0x400 == 0 {
			man <<= 1
			e--
		}
		man &= halfManMask
		return math.Float32frombits(sign | e<<23 | man<<13)
	default:
		return math.Float32frombits(sign | (exp-halfExpBias+127)<<23 | man<<13)
	}
}

// IsNaN reports whether h encodes a NaN.
func (h Half) IsNaN() bool {
	return h&halfExpMask == halfExpMask && h&halfManMask != 0
}

// IsInf reports whether h encodes an infinity of either sign.
func (h Half) IsInf() bool {
	return h&halfExpMask == halfExpMask && h&halfManMask == 0
}

// FlipBit returns h with bit i (0 = LSB of the mantissa, 15 = sign) inverted.
// This is the single-FF single-cycle bit-flip abstraction applied to a value
// stored in an FP16 datapath register.
func (h Half) FlipBit(i int) Half {
	return h ^ (1 << uint(i&0xf))
}

// RoundHalf rounds f through the Half encoding and back, modeling a value
// passing through an FP16 register or functional-unit output.
//
// This is the single hottest function of the injection datapath (one call per
// MAC on FP16 networks), so the common case — a float32 whose exponent lands
// in the normal half range — is handled with pure integer arithmetic on the
// float32 bit pattern instead of a full encode/decode round trip: adding
// 0x0fff plus the round bit performs round-to-nearest-even on the 13 mantissa
// bits a half discards, with mantissa overflow carrying into the exponent
// field for free. Exact zeros get their own branch: post-ReLU tensors are
// about half zeros, and ±0 round-trips to itself. Values outside both cases
// (subnormals, overflow, Inf/NaN) take the exact reference path.
// RoundHalfRef proves the paths agree bit-for-bit; TestRoundHalfFastPath
// sweeps the boundary cases.
func RoundHalf(f float32) float32 {
	b := math.Float32bits(f)
	if e := b >> 23 & 0xff; e-113 < 30 { // exponent in [-14, 15]: normal half
		r := (b + 0x0fff + (b >> 13 & 1)) &^ 0x1fff
		if r&0x7fffffff > 0x477fe000 { // rounded past HalfMax: overflow to Inf
			return math.Float32frombits(b&0x80000000 | 0x7f800000)
		}
		return math.Float32frombits(r)
	}
	if b&0x7fffffff == 0 { // ±0
		return f
	}
	return HalfFromFloat32(f).Float32()
}

// RoundHalfRef is the reference implementation of RoundHalf via a full
// encode/decode round trip. It exists so tests can prove the fast path
// bit-exact and so the reference (pre-tiling) kernels measure the historical
// baseline cost honestly.
func RoundHalfRef(f float32) float32 {
	return HalfFromFloat32(f).Float32()
}

// HalfMul multiplies two float32 values as an FP16 multiplier would: operands
// are rounded to half, multiplied exactly in float32 (an FP16×FP16 product
// fits), and the product rounded back to half precision.
func HalfMul(a, b float32) float32 {
	return RoundHalf(RoundHalf(a) * RoundHalf(b))
}

// HalfAdd adds two float32 values with FP16 operand and result rounding.
func HalfAdd(a, b float32) float32 {
	return RoundHalf(RoundHalf(a) + RoundHalf(b))
}

package numerics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHalfSpecialValues(t *testing.T) {
	cases := []struct {
		name string
		h    Half
		want float32
	}{
		{"zero", HalfZero, 0},
		{"one", 0x3c00, 1},
		{"negTwo", 0xc000, -2},
		{"max", HalfMax, 65504},
		{"min", HalfMin, -65504},
		{"smallestSubnormal", 0x0001, 5.9604645e-08},
		{"largestSubnormal", 0x03ff, 6.097555e-05},
		{"smallestNormal", 0x0400, 6.1035156e-05},
		{"half", 0x3800, 0.5},
		{"third", 0x3555, 0.33325195},
	}
	for _, c := range cases {
		if got := c.h.Float32(); got != c.want {
			t.Errorf("%s: Half(%#04x).Float32() = %v, want %v", c.name, uint16(c.h), got, c.want)
		}
	}
}

func TestHalfFromFloat32Exact(t *testing.T) {
	cases := []struct {
		f    float32
		want Half
	}{
		{0, HalfZero},
		{float32(math.Copysign(0, -1)), HalfNegZero},
		{1, 0x3c00},
		{-1, 0xbc00},
		{65504, HalfMax},
		{-65504, HalfMin},
		{0.5, 0x3800},
		{2, 0x4000},
		{1024, 0x6400},
	}
	for _, c := range cases {
		if got := HalfFromFloat32(c.f); got != c.want {
			t.Errorf("HalfFromFloat32(%v) = %#04x, want %#04x", c.f, uint16(got), uint16(c.want))
		}
	}
}

func TestHalfOverflowToInf(t *testing.T) {
	if got := HalfFromFloat32(65520); got != HalfPosInf {
		// 65520 rounds to 65536 which overflows half range.
		t.Errorf("HalfFromFloat32(65520) = %#04x, want +Inf", uint16(got))
	}
	if got := HalfFromFloat32(-1e9); got != HalfNegInf {
		t.Errorf("HalfFromFloat32(-1e9) = %#04x, want -Inf", uint16(got))
	}
	if got := HalfFromFloat32(float32(math.Inf(1))); got != HalfPosInf {
		t.Errorf("HalfFromFloat32(+Inf) = %#04x, want +Inf", uint16(got))
	}
}

func TestHalfNaN(t *testing.T) {
	h := HalfFromFloat32(float32(math.NaN()))
	if !h.IsNaN() {
		t.Fatalf("HalfFromFloat32(NaN) = %#04x, not NaN", uint16(h))
	}
	if f := h.Float32(); !math.IsNaN(float64(f)) {
		t.Errorf("NaN half decodes to %v, want NaN", f)
	}
	if HalfPosInf.IsNaN() || !HalfPosInf.IsInf() {
		t.Error("Inf misclassified")
	}
}

func TestHalfUnderflowToZero(t *testing.T) {
	if got := HalfFromFloat32(1e-10); got != HalfZero {
		t.Errorf("HalfFromFloat32(1e-10) = %#04x, want +0", uint16(got))
	}
	if got := HalfFromFloat32(-1e-10); got != HalfNegZero {
		t.Errorf("HalfFromFloat32(-1e-10) = %#04x, want -0", uint16(got))
	}
}

func TestHalfRoundToNearestEven(t *testing.T) {
	// 1 + 2^-11 is exactly halfway between 1.0 and the next half (1+2^-10);
	// ties go to even mantissa, i.e. down to 1.0.
	f := float32(1) + float32(math.Exp2(-11))
	if got := HalfFromFloat32(f); got != 0x3c00 {
		t.Errorf("tie rounding of 1+2^-11: got %#04x, want 0x3c00", uint16(got))
	}
	// 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9; tie goes up to even.
	f = float32(1) + 3*float32(math.Exp2(-11))
	if got := HalfFromFloat32(f); got != 0x3c02 {
		t.Errorf("tie rounding of 1+3*2^-11: got %#04x, want 0x3c02", uint16(got))
	}
}

// Property: decoding any Half and re-encoding is the identity for all 65536
// encodings except NaN payload canonicalization.
func TestHalfRoundTripAllEncodings(t *testing.T) {
	for i := 0; i < 1<<16; i++ {
		h := Half(i)
		if h.IsNaN() {
			if !HalfFromFloat32(h.Float32()).IsNaN() {
				t.Fatalf("NaN %#04x did not survive round trip", i)
			}
			continue
		}
		got := HalfFromFloat32(h.Float32())
		if got != h {
			t.Fatalf("round trip %#04x -> %v -> %#04x", i, h.Float32(), uint16(got))
		}
	}
}

// Property: RoundHalf is idempotent.
func TestRoundHalfIdempotent(t *testing.T) {
	f := func(x float32) bool {
		r := RoundHalf(x)
		if math.IsNaN(float64(r)) {
			return math.IsNaN(float64(RoundHalf(r)))
		}
		return RoundHalf(r) == r
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// Property: rounding error of a value in normal half range is within half an
// ULP of the value's magnitude.
func TestRoundHalfErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		x := float32(rng.NormFloat64()) * 100
		r := RoundHalf(x)
		ulp := math.Abs(float64(x)) * math.Exp2(-10)
		if math.Abs(float64(r-x)) > ulp/2+1e-12 {
			t.Fatalf("RoundHalf(%v) = %v, error %v exceeds half ULP %v", x, r, r-x, ulp/2)
		}
	}
}

// Property: a single bit flip always changes the encoded value, and flipping
// the same bit twice restores it.
func TestHalfFlipBitInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		h := Half(rng.Intn(1 << 16))
		bit := rng.Intn(16)
		flipped := h.FlipBit(bit)
		if flipped == h {
			t.Fatalf("FlipBit(%d) left %#04x unchanged", bit, uint16(h))
		}
		if back := flipped.FlipBit(bit); back != h {
			t.Fatalf("double flip of bit %d: %#04x -> %#04x -> %#04x", bit, uint16(h), uint16(flipped), uint16(back))
		}
	}
}

func TestHalfSignBitFlip(t *testing.T) {
	h := HalfFromFloat32(3.5)
	if got := h.FlipBit(15).Float32(); got != -3.5 {
		t.Errorf("sign flip of 3.5 = %v, want -3.5", got)
	}
}

// Exponent-bit flips produce large multiplicative perturbations — the
// mechanism behind the paper's Key Result 5.
func TestHalfExponentFlipMagnitude(t *testing.T) {
	h := HalfFromFloat32(1.0) // 0x3c00, exponent 15
	// Flipping the top exponent bit (bit 14) takes exponent 15 -> 31: Inf... no,
	// 0x3c00 ^ 0x4000 = 0x7c00 which is +Inf.
	if f := h.FlipBit(14); f != HalfPosInf {
		t.Errorf("flip bit 14 of 1.0 = %#04x, want +Inf", uint16(f))
	}
	// Flipping exponent bit 10 takes the biased exponent 15 -> 14, i.e. 0.5.
	if got := h.FlipBit(10).Float32(); got != 0.5 {
		t.Errorf("flip bit 10 of 1.0 = %v, want 0.5", got)
	}
	// For 2.0 (biased exponent 16 = 0b10000), flipping bit 10 gives 4.0.
	if got := HalfFromFloat32(2).FlipBit(10).Float32(); got != 4.0 {
		t.Errorf("flip bit 10 of 2.0 = %v, want 4.0", got)
	}
}

func TestHalfMulAdd(t *testing.T) {
	if got := HalfMul(3, 4); got != 12 {
		t.Errorf("HalfMul(3,4) = %v", got)
	}
	if got := HalfAdd(1.5, 2.25); got != 3.75 {
		t.Errorf("HalfAdd(1.5,2.25) = %v", got)
	}
	// Product rounding: 0.33325195 (closest half to 1/3) squared.
	third := RoundHalf(1.0 / 3.0)
	got := HalfMul(third, third)
	want := RoundHalf(third * third)
	if got != want {
		t.Errorf("HalfMul rounding: got %v want %v", got, want)
	}
}

func TestPrecisionStringAndBits(t *testing.T) {
	cases := []struct {
		p    Precision
		s    string
		bits int
	}{
		{FP32, "FP32", 32}, {FP16, "FP16", 16}, {INT16, "INT16", 16}, {INT8, "INT8", 8},
	}
	for _, c := range cases {
		if c.p.String() != c.s || c.p.Bits() != c.bits {
			t.Errorf("%v: got (%s,%d), want (%s,%d)", c.p, c.p.String(), c.p.Bits(), c.s, c.bits)
		}
	}
	if Precision(99).Bits() != 0 {
		t.Error("unknown precision should have 0 bits")
	}
}

func TestParsePrecision(t *testing.T) {
	for _, s := range []string{"fp32", "fp16", "int16", "int8", "FP16", "INT8"} {
		if _, err := ParsePrecision(s); err != nil {
			t.Errorf("ParsePrecision(%q) failed: %v", s, err)
		}
	}
	if _, err := ParsePrecision("bf16"); err == nil {
		t.Error("ParsePrecision(bf16) should fail")
	}
}

// TestRoundHalfFastPath proves the integer fast path of RoundHalf bit-exact
// against the reference encode/decode round trip. The sweep covers every half
// encoding, every float32 exponent with the mantissa patterns that straddle
// the round-to-nearest-even boundaries, and a large random sample.
func TestRoundHalfFastPath(t *testing.T) {
	check := func(f float32) {
		got, want := RoundHalf(f), RoundHalfRef(f)
		if math.Float32bits(got) != math.Float32bits(want) {
			t.Fatalf("RoundHalf(%v [%#08x]) = %v [%#08x], want %v [%#08x]",
				f, math.Float32bits(f), got, math.Float32bits(got), want, math.Float32bits(want))
		}
	}
	// Every exact half value, both signs.
	for h := 0; h <= 0xffff; h++ {
		check(Half(h).Float32())
	}
	// Every float32 exponent × rounding-boundary mantissa patterns. The low 13
	// bits are what RNE discards; 0x1000 is the tie, 0x0fff/0x1001 bracket it,
	// and all-ones mantissas exercise the carry into the exponent.
	mans := []uint32{0x000000, 0x000001, 0x000fff, 0x001000, 0x001001,
		0x001fff, 0x002000, 0x003000, 0x7fe000, 0x7fefff, 0x7ff000, 0x7fffff}
	for exp := uint32(0); exp <= 0xff; exp++ {
		for _, man := range mans {
			bits := exp<<23 | man
			check(math.Float32frombits(bits))
			check(math.Float32frombits(bits | 0x80000000))
		}
	}
	// The overflow boundary around HalfMax (65504): values in (65504, 65520)
	// round down, 65520 and above round to +Inf.
	for _, f := range []float32{65503.9, 65504, 65504.01, 65519.996, 65520, 65521, 65535, 65536, 70000} {
		check(f)
		check(-f)
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2_000_000; i++ {
		check(math.Float32frombits(rng.Uint32()))
	}
}

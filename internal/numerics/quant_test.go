package numerics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewQuantizerValidation(t *testing.T) {
	if _, err := NewQuantizer(0, 8); err == nil {
		t.Error("zero range should fail")
	}
	if _, err := NewQuantizer(-1, 8); err == nil {
		t.Error("negative range should fail")
	}
	if _, err := NewQuantizer(1, 12); err == nil {
		t.Error("12-bit width should fail")
	}
	if _, err := NewQuantizer(float32(math.NaN()), 8); err == nil {
		t.Error("NaN range should fail")
	}
	if _, err := NewQuantizer(1, 8); err != nil {
		t.Errorf("valid quantizer failed: %v", err)
	}
}

func TestQuantizeBasics(t *testing.T) {
	q := MustQuantizer(127, 8) // scale = 1.0
	cases := []struct {
		f    float32
		want int32
	}{
		{0, 0}, {1, 1}, {-1, -1}, {126.4, 126}, {127, 127},
		{1000, 127}, {-1000, -128}, {0.4, 0}, {0.6, 1}, {-0.6, -1},
	}
	for _, c := range cases {
		if got := q.Quantize(c.f); got != c.want {
			t.Errorf("Quantize(%v) = %d, want %d", c.f, got, c.want)
		}
	}
}

func TestQuantizeNaN(t *testing.T) {
	q := MustQuantizer(10, 16)
	if got := q.Quantize(float32(math.NaN())); got != 0 {
		t.Errorf("Quantize(NaN) = %d, want 0", got)
	}
}

func TestQuantizerSaturation(t *testing.T) {
	q := MustQuantizer(1, 8)
	if got := q.Quantize(float32(math.Inf(1))); got != 127 {
		t.Errorf("Quantize(+Inf) = %d, want 127", got)
	}
	if got := q.Quantize(float32(math.Inf(-1))); got != -128 {
		t.Errorf("Quantize(-Inf) = %d, want -128", got)
	}
}

// Property: Round is idempotent and the error of a value inside the range is
// at most half a scale step.
func TestQuantizerRoundProperties(t *testing.T) {
	q := MustQuantizer(8, 16)
	f := func(x float32) bool {
		if math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
			return true
		}
		r := q.Round(x)
		if q.Round(r) != r {
			return false
		}
		if x >= -q.MaxAbs() && x <= q.MaxAbs() {
			return math.Abs(float64(r-x)) <= float64(q.Scale)/2+1e-7
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// Property: Quantize is monotone non-decreasing.
func TestQuantizeMonotone(t *testing.T) {
	q := MustQuantizer(5, 8)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 3000; i++ {
		a := float32(rng.NormFloat64() * 4)
		b := float32(rng.NormFloat64() * 4)
		if a > b {
			a, b = b, a
		}
		if q.Quantize(a) > q.Quantize(b) {
			t.Fatalf("monotonicity violated: Q(%v)=%d > Q(%v)=%d", a, q.Quantize(a), b, q.Quantize(b))
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, bits := range []int{8, 16} {
		q := MustQuantizer(4, bits)
		rng := rand.New(rand.NewSource(4))
		for i := 0; i < 2000; i++ {
			x := float32(rng.NormFloat64() * 3)
			enc := q.Encode(x)
			if enc >= 1<<uint(bits) {
				t.Fatalf("%d-bit encode of %v = %#x exceeds width", bits, x, enc)
			}
			if got := q.Decode(enc); got != q.Round(x) {
				t.Fatalf("%d-bit decode(encode(%v)) = %v, want %v", bits, x, got, q.Round(x))
			}
		}
	}
}

func TestQuantizerSignBitFlip(t *testing.T) {
	q := MustQuantizer(127, 8) // scale 1
	// Code 3 = 0b00000011; flipping bit 7 gives 0b10000011 = -125.
	if got := q.FlipBit(3, 7); got != -125 {
		t.Errorf("sign-bit flip of 3 = %v, want -125", got)
	}
	// LSB flip of 3 gives 2.
	if got := q.FlipBit(3, 0); got != 2 {
		t.Errorf("LSB flip of 3 = %v, want 2", got)
	}
}

// Property: flipping the same bit twice restores the rounded value.
func TestQuantizerFlipInvolution(t *testing.T) {
	q := MustQuantizer(6, 16)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		x := q.Round(float32(rng.NormFloat64() * 2))
		bit := rng.Intn(16)
		y := q.FlipBit(x, bit)
		if back := q.FlipBit(y, bit); back != x {
			t.Fatalf("double flip of bit %d: %v -> %v -> %v", bit, x, y, back)
		}
	}
}

// INT8's coarser scale means the same bit position flips a larger real
// perturbation than INT16 with the same calibration — the mechanism the
// paper hypothesizes for Key Result 4 (INT8 FIT > INT16 FIT).
func TestInt8PerturbationLargerThanInt16(t *testing.T) {
	q8 := MustQuantizer(8, 8)
	q16 := MustQuantizer(8, 16)
	x := float32(1.0)
	d8 := math.Abs(float64(q8.FlipBit(x, 2) - q8.Round(x)))
	d16 := math.Abs(float64(q16.FlipBit(x, 2) - q16.Round(x)))
	if d8 <= d16 {
		t.Errorf("INT8 perturbation %v should exceed INT16 perturbation %v at same bit", d8, d16)
	}
}

func TestCodecRoundDispatch(t *testing.T) {
	c32 := MustCodec(FP32, 0)
	if c32.Round(1.23456789) != 1.23456789 {
		t.Error("FP32 codec must be exact")
	}
	c16 := MustCodec(FP16, 0)
	if c16.Round(1.0/3.0) != RoundHalf(1.0/3.0) {
		t.Error("FP16 codec should round to half")
	}
	ci8 := MustCodec(INT8, 4)
	if ci8.Round(0.5) != ci8.Quantizer().Round(0.5) {
		t.Error("INT8 codec should use quantizer rounding")
	}
	if _, err := NewCodec(Precision(42), 1); err == nil {
		t.Error("unknown precision should fail")
	}
	if _, err := NewCodec(INT8, -1); err == nil {
		t.Error("bad quantizer range should fail")
	}
}

func TestCodecFlipBitMatchesFormat(t *testing.T) {
	c := MustCodec(FP16, 0)
	if got, want := c.FlipBit(3.5, 15), float32(-3.5); got != want {
		t.Errorf("FP16 codec sign flip = %v, want %v", got, want)
	}
	ci := MustCodec(INT8, 127)
	if got := ci.FlipBit(3, 0); got != 2 {
		t.Errorf("INT8 codec LSB flip of 3 = %v, want 2", got)
	}
	cf := MustCodec(FP32, 0)
	if got := cf.FlipBit(1.0, 31); got != -1.0 {
		t.Errorf("FP32 codec sign flip = %v, want -1", got)
	}
}

func TestCodecEncodeDecode(t *testing.T) {
	for _, p := range []Precision{FP32, FP16, INT16, INT8} {
		c := MustCodec(p, 8)
		x := c.Round(2.5)
		if got := c.Decode(c.Encode(x)); got != x {
			t.Errorf("%v: decode(encode(%v)) = %v", p, x, got)
		}
	}
}

func TestCodecSaturate(t *testing.T) {
	c := MustCodec(FP16, 0)
	if got := c.Saturate(1e9); got != HalfMax.Float32() {
		t.Errorf("FP16 saturate(1e9) = %v, want %v", got, HalfMax.Float32())
	}
	if got := c.Saturate(-1e9); got != HalfMin.Float32() {
		t.Errorf("FP16 saturate(-1e9) = %v", got)
	}
	ci := MustCodec(INT8, 127)
	if got := ci.Saturate(500); got != 127 {
		t.Errorf("INT8 saturate(500) = %v, want 127", got)
	}
	if got := ci.Saturate(-500); got != -128 {
		t.Errorf("INT8 saturate(-500) = %v, want -128", got)
	}
	cf := MustCodec(FP32, 0)
	if got := cf.Saturate(1e30); got != 1e30 {
		t.Errorf("FP32 saturate should be identity, got %v", got)
	}
}

func TestCodecMul(t *testing.T) {
	c := MustCodec(INT16, 16)
	got := c.Mul(1.5, 2.0)
	want := c.Quantizer().Round(1.5) * c.Quantizer().Round(2.0)
	if got != want {
		t.Errorf("INT16 Mul = %v, want %v", got, want)
	}
	if MustCodec(FP32, 0).Mul(3, 4) != 12 {
		t.Error("FP32 Mul exact")
	}
}

func TestForPrecisionRejectsFloat(t *testing.T) {
	if _, err := ForPrecision(1, FP16); err == nil {
		t.Error("ForPrecision(FP16) should fail")
	}
}

package numerics

import "fmt"

// Precision identifies a datapath number format. NVDLA supports FP16 and
// INT16/INT8 fixed point; the paper's large-scale study (Table IV) sweeps
// all three for the CNN workloads.
type Precision int

const (
	// FP32 is the reference precision used for golden software math.
	FP32 Precision = iota
	// FP16 is IEEE-754 binary16.
	FP16
	// INT16 is 16-bit affine-quantized fixed point.
	INT16
	// INT8 is 8-bit affine-quantized fixed point.
	INT8
)

// String returns the conventional name of the precision.
func (p Precision) String() string {
	switch p {
	case FP32:
		return "FP32"
	case FP16:
		return "FP16"
	case INT16:
		return "INT16"
	case INT8:
		return "INT8"
	default:
		return fmt.Sprintf("Precision(%d)", int(p))
	}
}

// Bits returns the width of the stored encoding, i.e. the number of
// flip-flops one value of this precision occupies in a datapath register.
func (p Precision) Bits() int {
	switch p {
	case FP32:
		return 32
	case FP16, INT16:
		return 16
	case INT8:
		return 8
	default:
		return 0
	}
}

// ParsePrecision converts a name such as "fp16" or "INT8" to a Precision.
func ParsePrecision(s string) (Precision, error) {
	switch s {
	case "fp32", "FP32":
		return FP32, nil
	case "fp16", "FP16":
		return FP16, nil
	case "int16", "INT16":
		return INT16, nil
	case "int8", "INT8":
		return INT8, nil
	}
	return 0, fmt.Errorf("numerics: unknown precision %q", s)
}

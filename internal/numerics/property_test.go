package numerics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: for every codec, Decode(Encode(x)) == Round(x), Encode stays
// within the declared bit width, and MulPre on pre-rounded operands equals
// Mul on raw operands.
func TestCodecAlgebraAllPrecisions(t *testing.T) {
	codecs := []Codec{
		MustCodec(FP32, 0),
		MustCodec(FP16, 0),
		MustCodec(INT16, 8),
		MustCodec(INT8, 8),
	}
	rng := rand.New(rand.NewSource(61))
	for _, c := range codecs {
		for i := 0; i < 3000; i++ {
			x := float32(rng.NormFloat64() * 4)
			y := float32(rng.NormFloat64() * 4)

			enc := c.Encode(x)
			if c.Bits() < 32 && enc >= 1<<uint(c.Bits()) {
				t.Fatalf("%v: Encode(%v) = %#x exceeds %d bits", c.Precision(), x, enc, c.Bits())
			}
			if got, want := c.Decode(enc), c.Round(x); got != want {
				t.Fatalf("%v: Decode(Encode(%v)) = %v, want %v", c.Precision(), x, got, want)
			}
			if got, want := c.MulPre(c.Round(x), c.Round(y)), c.Mul(x, y); got != want {
				t.Fatalf("%v: MulPre(Round,Round) = %v, Mul = %v", c.Precision(), got, want)
			}
		}
	}
}

// Property: RoundSlice(x)[i] == Round(x[i]) and input is not mutated.
func TestRoundSliceProperty(t *testing.T) {
	c := MustCodec(FP16, 0)
	f := func(raw []float32) bool {
		in := append([]float32(nil), raw...)
		out := c.RoundSlice(in)
		if len(out) != len(in) {
			return false
		}
		for i := range in {
			if in[i] != raw[i] {
				return false // mutated input
			}
			want := c.Round(raw[i])
			if out[i] != want && !(math.IsNaN(float64(out[i])) && math.IsNaN(float64(want))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: saturation is idempotent and order-preserving for finite inputs.
func TestSaturateProperties(t *testing.T) {
	for _, c := range []Codec{MustCodec(FP16, 0), MustCodec(INT8, 8)} {
		rng := rand.New(rand.NewSource(62))
		for i := 0; i < 2000; i++ {
			x := float32(rng.NormFloat64() * 1e5)
			y := float32(rng.NormFloat64() * 1e5)
			sx, sy := c.Saturate(x), c.Saturate(y)
			if c.Saturate(sx) != sx {
				t.Fatalf("%v: Saturate not idempotent at %v", c.Precision(), x)
			}
			if x <= y && sx > sy {
				t.Fatalf("%v: Saturate not monotone: %v<=%v but %v>%v", c.Precision(), x, y, sx, sy)
			}
		}
	}
}

// Property: a single-bit flip never yields the same stored encoding.
func TestFlipBitAlwaysChangesEncoding(t *testing.T) {
	for _, c := range []Codec{MustCodec(FP16, 0), MustCodec(INT16, 8), MustCodec(INT8, 8)} {
		rng := rand.New(rand.NewSource(63))
		for i := 0; i < 2000; i++ {
			x := c.Round(float32(rng.NormFloat64() * 3))
			bit := rng.Intn(c.Bits())
			if c.Encode(c.FlipBit(x, bit)) == c.Encode(x) {
				t.Fatalf("%v: flip of bit %d left encoding of %v unchanged", c.Precision(), bit, x)
			}
		}
	}
}

// Command fidelityd is the distributed campaign daemon: the same resilience
// study `study` runs in one process, fanned out over machines.
//
// Usage:
//
//	fidelityd serve -addr :9090 -net mobilenet [-samples N] [-state F] ...
//	fidelityd work  -coordinator http://host:9090 [-id NAME] ...
//
// `serve` runs the coordinator: it partitions the campaign into the engine's
// deterministic logical shards, hands them to workers as time-bounded leases
// over a JSON/HTTP API, collects streamed shard checkpoints, re-leases
// shards whose heartbeats lapse, and assembles the final StudyResult — byte
// identical to an in-process run with the same -seed and -shards, whatever
// the worker count or failure pattern. With -state the lease table and
// collected checkpoints persist through the campaign engine's fsync'd
// checkpoint machinery, so a restarted coordinator resumes the campaign
// instead of restarting it.
//
// `work` runs a worker: it polls the coordinator for leases with
// retry/backoff (surviving coordinator restarts), executes shards via the
// campaign engine, and streams checkpoints and telemetry back as heartbeats.
//
// Exit codes follow `study`: 0 complete, 1 error, 2 usage, 3 partial result
// (a shard exhausted its failure budget), 130 interrupted.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fidelity/internal/campaign"
	"fidelity/internal/distrib"
	"fidelity/internal/telemetry"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var err error
	switch cmd := os.Args[1]; cmd {
	case "serve":
		err = serve(ctx, os.Args[2:])
	case "work":
		err = work(ctx, os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	switch {
	case err == nil:
	case errors.Is(err, context.Canceled):
		fmt.Fprintln(os.Stderr, "fidelityd: interrupted")
		os.Exit(130)
	case errors.Is(err, errPartial):
		fmt.Fprintln(os.Stderr, "fidelityd:", err)
		os.Exit(3)
	default:
		fmt.Fprintln(os.Stderr, "fidelityd:", err)
		os.Exit(1)
	}
}

// errPartial marks a campaign that completed degraded: every shard is
// terminal but at least one exhausted its failure budget or failed its
// audit re-run.
var errPartial = errors.New("partial result (a shard exhausted its failure budget or failed its audit)")

func usage() {
	fmt.Fprintln(os.Stderr, `usage: fidelityd <serve|work> [flags]

  serve  run the campaign coordinator (lease shards to workers over HTTP)
  work   run a worker against a coordinator

run "fidelityd serve -h" or "fidelityd work -h" for flags`)
}

// usageError prints the message and the flag set's usage, then exits 2 — the
// same contract as an unknown subcommand.
func usageError(fs *flag.FlagSet, format string, args ...any) {
	fmt.Fprintf(os.Stderr, "fidelityd: "+format+"\n", args...)
	fs.Usage()
	os.Exit(2)
}

func serve(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":9090", "listen address for the coordinator API")
	netName := fs.String("net", "mobilenet", "workload model name")
	precision := fs.String("precision", "fp16", "numeric precision (fp16, int16, int8)")
	tolerance := fs.Float64("tolerance", 0.1, "application output-error tolerance")
	samples := fs.Int("samples", 400, "injection experiments per fault model per input")
	targetCI := fs.Float64("target-ci", 0, "adaptive stratified sampling: the coordinator plans rounds until every stratum's 95% Wilson CI half-width reaches this target (mutually exclusive with -samples; in (0, 0.5])")
	inputs := fs.Int("inputs", 4, "distinct dataset inputs")
	seed := fs.Int64("seed", 1, "sampling seed (campaign identity)")
	shards := fs.Int("shards", 0, "deterministic sampling shards (0 = default; campaign identity like -seed)")
	perLayer := fs.Bool("perlayer", false, "estimate Prob_SWmask per layer (multiplies experiment count)")
	noReplay := fs.Bool("no-replay", false, "workers run full forward passes instead of incremental golden replay")
	batch := fs.Int("batch", campaign.DefaultExperimentBatch, "experiment batch window for site-grouped execution (1 = unbatched; byte-identical results for every value)")
	expTimeout := fs.Duration("experiment-timeout", 0, "per-experiment watchdog deadline on workers (0 = off)")
	failBudget := fs.Int("failure-budget", 0, "max quarantined experiments per shard before it degrades (0 = default)")
	leaseTTL := fs.Duration("lease-ttl", distrib.DefaultLeaseTTL, "per-lease heartbeat budget; lapsed leases are re-issued")
	auditFraction := fs.Float64("audit-fraction", 0, "fraction of completed shards re-run on a second worker and byte-compared (0 = off, 1 = all; mismatch flags the campaign partial)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "on SIGTERM/SIGINT, refuse new leases and wait up to this long for in-flight reports before persisting and exiting (0 = exit immediately)")
	state := fs.String("state", "", "persist lease table + checkpoints here; restart resumes the campaign (empty = in-memory)")
	result := fs.String("result", "", "write the final StudyResult JSON here (empty = stdout)")
	progress := fs.Duration("progress", 0, "emit merged JSONL telemetry snapshots to stderr at this interval (0 = off)")
	manifest := fs.String("manifest", "", "write a machine-readable run manifest to this file (empty disables)")
	fs.Parse(args)
	if *targetCI != 0 {
		samplesSet := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "samples" {
				samplesSet = true
			}
		})
		if samplesSet {
			usageError(fs, "-samples and -target-ci are mutually exclusive (the adaptive planner sizes each stratum itself)")
		}
		if *targetCI < 0 || *targetCI > 0.5 {
			usageError(fs, "-target-ci must be in (0, 0.5] (got %g)", *targetCI)
		}
		*samples = 0
	} else if *samples <= 0 {
		usageError(fs, "-samples must be positive (got %d)", *samples)
	}
	if *inputs <= 0 {
		usageError(fs, "-inputs must be positive (got %d)", *inputs)
	}
	if *shards < 0 {
		usageError(fs, "-shards must be non-negative (got %d)", *shards)
	}
	if *leaseTTL <= 0 {
		usageError(fs, "-lease-ttl must be positive (got %v)", *leaseTTL)
	}
	if *batch <= 0 {
		usageError(fs, "-batch must be positive (got %d; 1 disables batching)", *batch)
	}
	if *auditFraction < 0 || *auditFraction > 1 {
		usageError(fs, "-audit-fraction must be in [0,1] (got %g)", *auditFraction)
	}
	if *drainTimeout < 0 {
		usageError(fs, "-drain-timeout must be non-negative (got %v)", *drainTimeout)
	}

	tel := telemetry.New()
	tel.SetSource("coordinator")
	spec := distrib.CampaignSpec{
		Workload:          *netName,
		Precision:         *precision,
		WorkloadSeed:      42,
		Tolerance:         *tolerance,
		Samples:           *samples,
		TargetCI:          *targetCI,
		Inputs:            *inputs,
		Seed:              *seed,
		Shards:            *shards,
		PerLayer:          *perLayer,
		DisableReplay:     *noReplay,
		ExperimentBatch:   *batch,
		ExperimentTimeout: *expTimeout,
		FailureBudget:     *failBudget,
	}
	c, err := distrib.NewCoordinator(distrib.CoordinatorOptions{
		Spec:          spec,
		LeaseTTL:      *leaseTTL,
		StatePath:     *state,
		AuditFraction: *auditFraction,
		Telemetry:     tel,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// Bounded timeouts so one stalled client cannot wedge the coordinator;
	// request bodies are capped by the handler's integrity layer.
	srv := &http.Server{
		Handler:           c.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	defer func() {
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(shutCtx)
	}()
	fmt.Fprintf(os.Stderr, "fidelityd: serving campaign %s/%s (%d shards) on %s\n",
		spec.Workload, spec.Precision, c.Spec().Shards, ln.Addr())

	stopProgress := emitProgress(*progress, func() telemetry.Snapshot { return c.Status().Telemetry })
	start := time.Now()
	res, resErr := c.Result(ctx)
	if resErr != nil && ctx.Err() != nil {
		// Graceful drain: stop handing out leases, give in-flight reports a
		// bounded window to land, then persist whatever was accepted. Workers
		// polling during the drain are told Draining and keep polling, so a
		// restarted coordinator picks them straight back up.
		c.StartDrain()
		fmt.Fprintf(os.Stderr, "fidelityd: draining: refusing new leases, waiting up to %v for in-flight reports\n", *drainTimeout)
		waitDrain(c, *drainTimeout)
		if r, done, ferr := c.Finished(); done && ferr == nil {
			// The last reports landed during the drain: finish normally.
			res, resErr = r, nil
		}
	}
	stopProgress()
	writeManifest(*manifest, "serve", start, c.Status(), res)
	if resErr != nil {
		select {
		case err := <-serveErr:
			if err != nil && !errors.Is(err, http.ErrServerClosed) {
				return err
			}
		default:
		}
		if ctx.Err() != nil && *state != "" {
			if perr := c.PersistNow(); perr != nil {
				fmt.Fprintln(os.Stderr, "fidelityd:", perr)
			}
			fmt.Fprintf(os.Stderr, "fidelityd: state saved to %s; restart with the same -state to resume\n", *state)
		}
		return resErr
	}
	if err := emitResult(*result, res); err != nil {
		return err
	}
	if res.Partial {
		// Degraded campaign: keep the state file — re-serving it after the
		// failure is fixed completes the study instead of repeating it.
		return errPartial
	}
	// The campaign completed: a leftover state file would only replay the
	// finished run, so clean it up (same contract as study's checkpoints).
	if *state != "" {
		if _, statErr := os.Stat(*state); statErr == nil {
			os.Remove(*state)
		}
	}
	return nil
}

// waitDrain blocks until the coordinator has no live leases (every in-flight
// shard reported or lapsed), the campaign finishes, the timeout lapses, or a
// second interrupt demands an immediate exit.
func waitDrain(c *distrib.Coordinator, timeout time.Duration) {
	if timeout <= 0 {
		return
	}
	// signal.NotifyContext consumed the first signal; register a fresh
	// channel so a second one can cut the drain short.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	deadline := time.After(timeout)
	tick := time.NewTicker(50 * time.Millisecond)
	defer tick.Stop()
	for {
		if c.Idle() {
			return
		}
		if _, done, _ := c.Finished(); done {
			return
		}
		select {
		case <-tick.C:
		case <-deadline:
			fmt.Fprintln(os.Stderr, "fidelityd: drain timeout; exiting with leases still in flight")
			return
		case <-sig:
			fmt.Fprintln(os.Stderr, "fidelityd: second interrupt; skipping drain")
			return
		}
	}
}

// emitResult writes the StudyResult durably to path, or to stdout when
// path is empty.
func emitResult(path string, res *campaign.StudyResult) error {
	if path == "" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", " ")
		return enc.Encode(res)
	}
	if err := campaign.AtomicWriteJSON(path, res); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "fidelityd: result written to %s (FIT=%.2f, %d experiments)\n",
		path, res.FIT.Total, res.Experiments)
	return nil
}

func work(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("work", flag.ExitOnError)
	coordinator := fs.String("coordinator", "", "coordinator base URL, e.g. http://host:9090 (required)")
	id := fs.String("id", "", "worker name for leases and telemetry attribution (default host-pid)")
	poll := fs.Duration("poll", distrib.DefaultPoll, "lease poll cadence and retry backoff base")
	publishEvery := fs.Int("publish-every", 16, "experiments between streamed shard checkpoints (bounds re-lease loss)")
	progress := fs.Duration("progress", 0, "emit JSONL telemetry snapshots to stderr at this interval (0 = off)")
	fs.Parse(args)
	if *coordinator == "" {
		usageError(fs, "-coordinator is required")
	}
	if *poll <= 0 {
		usageError(fs, "-poll must be positive (got %v)", *poll)
	}
	if *publishEvery < 0 {
		usageError(fs, "-publish-every must be non-negative (got %d)", *publishEvery)
	}
	if *id == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		*id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	tel := telemetry.New()
	stopProgress := emitProgress(*progress, tel.Snapshot)
	defer stopProgress()
	fmt.Fprintf(os.Stderr, "fidelityd: worker %s polling %s\n", *id, *coordinator)
	return distrib.Work(ctx, distrib.WorkerOptions{
		BaseURL:      *coordinator,
		ID:           *id,
		Poll:         *poll,
		Telemetry:    tel,
		PublishEvery: *publishEvery,
	})
}

// emitProgress starts a periodic JSONL telemetry emitter on stderr and
// returns its stop function.
func emitProgress(interval time.Duration, snap func() telemetry.Snapshot) func() {
	if interval <= 0 {
		return func() {}
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		enc := json.NewEncoder(os.Stderr)
		for {
			select {
			case <-t.C:
				_ = enc.Encode(snap())
			case <-stop:
				return
			}
		}
	}()
	return func() { close(stop); <-done }
}

// daemonManifest is the serve-mode run summary: the campaign spec, the final
// lease-table status, and the merged (per-source attributed) telemetry of
// every worker that reported.
type daemonManifest struct {
	Command   string               `json:"command"`
	Mode      string               `json:"mode"`
	Args      []string             `json:"args"`
	Start     time.Time            `json:"start"`
	End       time.Time            `json:"end"`
	Spec      distrib.CampaignSpec `json:"spec"`
	Status    distrib.StatusReply  `json:"status"`
	FIT       float64              `json:"fit,omitempty"`
	Partial   bool                 `json:"partial,omitempty"`
	Completed bool                 `json:"completed"`
}

func writeManifest(path, mode string, start time.Time, st distrib.StatusReply, res *campaign.StudyResult) {
	if path == "" {
		return
	}
	m := daemonManifest{
		Command: "fidelityd", Mode: mode, Args: os.Args[2:],
		Start: start, End: time.Now(),
		Spec: st.Spec, Status: st, Completed: st.Completed,
	}
	if res != nil {
		m.FIT = res.FIT.Total
		m.Partial = res.Partial
	}
	if err := campaign.AtomicWriteJSON(path, &m); err != nil {
		fmt.Fprintln(os.Stderr, "fidelityd: manifest:", err)
	}
}

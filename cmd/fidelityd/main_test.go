package main

import (
	"bytes"
	"os"
	"os/exec"
	"strings"
	"testing"
)

func TestMain(m *testing.M) {
	if os.Getenv("FIDELITYD_CLI_TEST") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func runCLI(t *testing.T, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "FIDELITYD_CLI_TEST=1")
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	err := cmd.Run()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("run %v: %v", args, err)
	}
	return buf.String(), code
}

// serve's flag validation runs before any listener binds, so rejected
// invocations exit immediately without touching the network.
func TestServeBatchFlagRejectsNonPositive(t *testing.T) {
	for _, bad := range []string{"0", "-8"} {
		out, code := runCLI(t, "serve", "-batch", bad)
		if code != 2 {
			t.Errorf("serve -batch %s: exit %d, want usage exit 2\n%s", bad, code, out)
		}
		if !strings.Contains(out, "-batch must be positive") {
			t.Errorf("serve -batch %s: missing validation message:\n%s", bad, out)
		}
	}
}

func TestServeTargetCIExcludesSamples(t *testing.T) {
	out, code := runCLI(t, "serve", "-target-ci", "0.05", "-samples", "100")
	if code != 2 || !strings.Contains(out, "mutually exclusive") {
		t.Fatalf("serve -target-ci with -samples: exit %d, output:\n%s", code, out)
	}
}

func TestServeTargetCIRangeValidated(t *testing.T) {
	for _, bad := range []string{"0.7", "-0.05"} {
		out, code := runCLI(t, "serve", "-target-ci", bad)
		if code != 2 || !strings.Contains(out, "-target-ci must be in (0, 0.5]") {
			t.Errorf("serve -target-ci %s: exit %d, output:\n%s", bad, code, out)
		}
	}
}

func TestServeLeaseTTLStillValidated(t *testing.T) {
	out, code := runCLI(t, "serve", "-lease-ttl", "-1s")
	if code != 2 || !strings.Contains(out, "-lease-ttl must be positive") {
		t.Fatalf("serve -lease-ttl -1s: exit %d, output:\n%s", code, out)
	}
}

func TestServeAuditFractionValidated(t *testing.T) {
	for _, bad := range []string{"-0.1", "1.5"} {
		out, code := runCLI(t, "serve", "-audit-fraction", bad)
		if code != 2 {
			t.Errorf("serve -audit-fraction %s: exit %d, want usage exit 2\n%s", bad, code, out)
		}
		if !strings.Contains(out, "-audit-fraction must be in [0,1]") {
			t.Errorf("serve -audit-fraction %s: missing validation message:\n%s", bad, out)
		}
	}
}

func TestServeDrainTimeoutValidated(t *testing.T) {
	out, code := runCLI(t, "serve", "-drain-timeout", "-5s")
	if code != 2 || !strings.Contains(out, "-drain-timeout must be non-negative") {
		t.Fatalf("serve -drain-timeout -5s: exit %d, output:\n%s", code, out)
	}
}

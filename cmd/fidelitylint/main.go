// Command fidelitylint runs the internal/lint analyzer suite — the
// determinism and robustness invariants described in DESIGN.md §8 — over Go
// packages. It is built on the standard library alone, so it compiles and
// runs with no network access.
//
// Two modes:
//
//	fidelitylint [-only detrand,maporder] ./...
//	    Standalone: re-executes `go vet -vettool=<self> <patterns>` so the
//	    Go toolchain handles package loading and export data.
//
//	go vet -vettool=$(pwd)/bin/fidelitylint ./...
//	    Vettool: speaks the cmd/vet unitchecker protocol (-V=full, -flags,
//	    then a single path/to/vet.cfg argument per package).
//
// `fidelitylint help` lists the analyzers with their documentation.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"fidelity/internal/lint"
)

const version = "fidelitylint version v1.0.0"

// vetConfig mirrors the JSON config cmd/vet hands to analysis tools. Field
// names must match the toolchain's (cmd/go/internal/work.vetConfig).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func main() {
	vFlag := flag.String("V", "", "print version and exit (vettool protocol)")
	flagsFlag := flag.Bool("flags", false, "print analyzer flags as JSON and exit (vettool protocol)")
	onlyFlag := flag.String("only", "", "comma-separated analyzer subset to run (default: all)")
	flag.Usage = usage
	flag.Parse()

	// Protocol handshake: `go vet` probes the tool with -V=full before
	// anything else, then asks for its flag inventory.
	if *vFlag != "" {
		fmt.Println(version)
		return
	}
	if *flagsFlag {
		fmt.Println("[]")
		return
	}

	analyzers, err := lint.ByName(*onlyFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fidelitylint:", err)
		os.Exit(2)
	}

	args := flag.Args()
	switch {
	case len(args) == 1 && args[0] == "help":
		printHelp()
	case len(args) == 1 && strings.HasSuffix(args[0], ".cfg"):
		runVetCfg(args[0], analyzers)
	case len(args) > 0:
		runStandalone(args, *onlyFlag)
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  fidelitylint [-only a,b] ./...        run via the local go toolchain
  go vet -vettool=fidelitylint ./...    run as a vet tool
  fidelitylint help                     describe the analyzers
`)
}

func printHelp() {
	fmt.Println("fidelitylint enforces the engine's determinism and robustness invariants.")
	fmt.Println()
	for _, a := range lint.Analyzers() {
		fmt.Printf("%s\n", a.Name)
		for _, line := range strings.Split(a.Doc, "\n") {
			fmt.Printf("    %s\n", line)
		}
		fmt.Println()
	}
	fmt.Println("Suppress a reviewed finding in place with: //lint:allow <analyzer> <reason>")
}

// runStandalone re-executes the tool through `go vet -vettool=<self>` so the
// toolchain does package loading; diagnostics pass through verbatim.
func runStandalone(patterns []string, only string) {
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "fidelitylint:", err)
		os.Exit(1)
	}
	vetArgs := []string{"vet", "-vettool=" + self}
	if only != "" {
		// go vet forwards unrecognized tool flags declared via -flags; we
		// declare none, so thread the subset through the environment.
		os.Setenv(onlyEnv, only)
	}
	vetArgs = append(vetArgs, patterns...)
	cmd := exec.Command("go", vetArgs...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Env = os.Environ()
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintln(os.Stderr, "fidelitylint:", err)
		os.Exit(1)
	}
}

// onlyEnv threads the -only selection from the standalone front-end to the
// vettool child processes go vet spawns.
const onlyEnv = "FIDELITYLINT_ONLY"

// runVetCfg handles one unitchecker invocation: parse and type-check the
// package described by the .cfg, run the analyzers, print diagnostics to
// stderr. Exit codes follow the protocol: 0 clean, 1 hard error, 2
// diagnostics found (go vet turns 2 into its own exit 1 after printing).
func runVetCfg(cfgPath string, analyzers []*lint.Analyzer) {
	if only := os.Getenv(onlyEnv); only != "" {
		var err error
		analyzers, err = lint.ByName(only)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fidelitylint:", err)
			os.Exit(1)
		}
	}
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fidelitylint:", err)
		os.Exit(1)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "fidelitylint: parsing %s: %v\n", cfgPath, err)
		os.Exit(1)
	}

	// The facts file must exist even when empty — go vet caches it and
	// feeds it back as PackageVetx for dependents.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "fidelitylint:", err)
			os.Exit(1)
		}
	}
	if cfg.VetxOnly {
		return
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return
			}
			fmt.Fprintln(os.Stderr, "fidelitylint:", err)
			os.Exit(1)
		}
		files = append(files, f)
	}

	// Resolve imports from the export data the toolchain already built,
	// exactly as cmd/vet's own checkers do.
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	tcfg := types.Config{
		Importer: importer.ForCompiler(fset, cfg.Compiler, lookup),
		Sizes:    types.SizesFor(cfg.Compiler, "amd64"),
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Uses:  map[*ast.Ident]types.Object{},
		Defs:  map[*ast.Ident]types.Object{},
	}
	pkg, err := tcfg.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return
		}
		fmt.Fprintf(os.Stderr, "fidelitylint: typechecking %s: %v\n", cfg.ImportPath, err)
		os.Exit(1)
	}

	diags := lint.Run(&lint.Package{Fset: fset, Files: files, Pkg: pkg, Info: info}, analyzers)
	if len(diags) == 0 {
		return
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d.String())
	}
	os.Exit(2)
}

package main

import (
	"bytes"
	"os"
	"os/exec"
	"strings"
	"testing"
)

func TestMain(m *testing.M) {
	if os.Getenv("FIDELITYLINT_CLI_TEST") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func runCLI(t *testing.T, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "FIDELITYLINT_CLI_TEST=1")
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	err := cmd.Run()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("run %v: %v", args, err)
	}
	return buf.String(), code
}

// The vettool handshake: go vet probes with -V=full and -flags before
// handing over a vet.cfg; both must succeed and print the expected shapes.
func TestVettoolHandshake(t *testing.T) {
	out, code := runCLI(t, "-V=full")
	if code != 0 || !strings.HasPrefix(out, "fidelitylint version ") {
		t.Fatalf("-V=full: exit %d, output %q", code, out)
	}
	out, code = runCLI(t, "-flags")
	if code != 0 || strings.TrimSpace(out) != "[]" {
		t.Fatalf("-flags: exit %d, output %q", code, out)
	}
}

func TestHelpListsEveryAnalyzer(t *testing.T) {
	out, code := runCLI(t, "help")
	if code != 0 {
		t.Fatalf("help: exit %d\n%s", code, out)
	}
	for _, name := range []string{"detrand", "maporder", "ctxflow", "wallclock", "ioretry", "lint:allow"} {
		if !strings.Contains(out, name) {
			t.Errorf("help output lacks %q", name)
		}
	}
}

func TestUnknownAnalyzerRejected(t *testing.T) {
	out, code := runCLI(t, "-only", "nosuch", "help")
	if code != 2 || !strings.Contains(out, "unknown analyzer") {
		t.Fatalf("-only nosuch: exit %d, output %q", code, out)
	}
}

func TestNoArgsPrintsUsage(t *testing.T) {
	out, code := runCLI(t)
	if code != 2 || !strings.Contains(out, "usage:") {
		t.Fatalf("no args: exit %d, output %q", code, out)
	}
}
